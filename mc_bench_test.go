// Micro-benchmarks for the parallel Monte Carlo decision engine: the
// three probabilistic auditors' Decide hot paths per worker-pool size,
// plus the coloring-chain sample unit that dominates maxminprob. Run
// with -benchmem to see the per-worker scratch reuse (the steady-state
// sample loop should not allocate per sample beyond the synopsis clone).
package main

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"queryaudit/internal/audit/sumprob"
	"queryaudit/internal/coloring"
	"queryaudit/internal/mcpar"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/synopsis"
)

// benchWorkerCounts returns the deduplicated, sorted per-decision caps
// the Decide benchmarks sweep: sequential, 2, 4, 8, and whatever the
// runner offers. The sweep is fixed (not GOMAXPROCS-relative) so BENCH
// archives from different machines hold the same rows.
func benchWorkerCounts() []int {
	set := map[int]bool{1: true, 2: true, 4: true, 8: true, runtime.GOMAXPROCS(0): true}
	counts := make([]int, 0, len(set))
	for w := range set {
		counts = append(counts, w)
	}
	sort.Ints(counts)
	return counts
}

// sampleCounter tallies evaluated samples across decisions — the
// "samples" column of the bench archive, which exposes both the
// early-exit savings and any overshoot regression (evaluated should be
// within workers of the deterministic certificate point).
type sampleCounter struct{ evaluated, budget atomic.Int64 }

func (c *sampleCounter) ObserveMC(budget, evaluated, votes, workers int, wall, busy time.Duration) {
	c.evaluated.Add(int64(evaluated))
	c.budget.Add(int64(budget))
}

// BenchmarkSumProbDecide measures one Section 3.3-style sum decision
// (hit-and-run polytope sampling per hypothetical dataset), per
// per-decision worker cap. The outer Monte Carlo loop is what the
// shared scheduler parallelizes; each sample runs its own short chain
// warm-started from the session's posterior state. One untimed warm
// decision precedes the loop: the cold first decision of a session pays
// the full polytope burn-in once, while every decision after it rides
// the posterior cache — the steady-state cost is what an analyst's
// stream pays per decision (the archive's p50).
func BenchmarkSumProbDecide(b *testing.B) {
	const n = 32
	set := make([]int, n)
	for i := range set {
		set[i] = i
	}
	q := query.New(query.Sum, set...)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			a, err := sumprob.New(n, sumprob.Params{
				Lambda: 0.6, Gamma: 4, Delta: 0.2, T: 10,
				OuterSamples: 32, InnerSamples: 300,
				Workers: workers, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := a.Decide(q); err != nil { // warm the posterior cache
				b.Fatal(err)
			}
			var samples sampleCounter
			a.SetMCObserver(&samples)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.Decide(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(samples.evaluated.Load())/float64(b.N), "samples/op")
		})
	}
}

// BenchmarkSumProbDecideDefaultBudget is the deployment-default decision
// cost (OuterSamples/InnerSamples zero → the auditor's own defaults):
// the latency a single analyst pays per sum decision on a served
// instance. One untimed warm decision precedes the loop (see
// BenchmarkSumProbDecide), so the archived figure is the steady-state
// per-decision cost — the "p50 under default budget" acceptance row is
// read straight off the bench stream.
func BenchmarkSumProbDecideDefaultBudget(b *testing.B) {
	const n = 32
	set := make([]int, n)
	for i := range set {
		set[i] = i
	}
	q := query.New(query.Sum, set...)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			a, err := sumprob.New(n, sumprob.Params{
				Lambda: 0.6, Gamma: 4, Delta: 0.2, T: 10,
				Workers: workers, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := a.Decide(q); err != nil { // warm the posterior cache
				b.Fatal(err)
			}
			var samples sampleCounter
			a.SetMCObserver(&samples)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.Decide(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(samples.evaluated.Load())/float64(b.N), "samples/op")
		})
	}
}

// BenchmarkAggregateDecideQPS measures the serving-shape throughput the
// scheduler rework targets: many analysts' sessions (one sumprob auditor
// each, as the session manager builds them) deciding concurrently over
// ONE shared assist pool. The metric is aggregate decisions per second
// across all sessions — the number that regressed when every decision
// spun up its own worker pool.
func BenchmarkAggregateDecideQPS(b *testing.B) {
	const n = 32
	const analysts = 4
	set := make([]int, n)
	for i := range set {
		set[i] = i
	}
	q := query.New(query.Sum, set...)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sched := mcpar.NewScheduler(workers)
			defer sched.Close()
			auds := make([]*sumprob.Auditor, analysts)
			for i := range auds {
				a, err := sumprob.New(n, sumprob.Params{
					Lambda: 0.6, Gamma: 4, Delta: 0.2, T: 10,
					OuterSamples: 32, InnerSamples: 300,
					Workers: workers, Seed: int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				a.SetScheduler(sched)
				if _, err := a.Decide(q); err != nil { // warm the posterior cache
					b.Fatal(err)
				}
				auds[i] = a
			}
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			var decisions atomic.Int64
			for i := range auds {
				wg.Add(1)
				go func(a *sumprob.Auditor) {
					defer wg.Done()
					for j := 0; j < b.N; j++ {
						if _, err := a.Decide(q); err != nil {
							b.Error(err)
							return
						}
						decisions.Add(1)
					}
				}(auds[i])
			}
			wg.Wait()
			b.ReportMetric(float64(decisions.Load())/time.Since(start).Seconds(), "decisions/s")
		})
	}
}

// TestSumProbWorkerScalingGuard is the workers>1 regression tripwire:
// with per-decision state hoisted out of the sample loop, a parallel cap
// must never cost materially more wall time than the sequential run of
// the identical decision. Before the fix, workers=4 rebuilt the polytope
// factorization per SAMPLE and lost to workers=1 outright. Env-gated
// (MC_BENCH_GUARD=1, set by `make bench-guard`): wall-clock assertions
// have no place in a default `go test` on a loaded CI box.
func TestSumProbWorkerScalingGuard(t *testing.T) {
	if os.Getenv("MC_BENCH_GUARD") == "" {
		t.Skip("set MC_BENCH_GUARD=1 (make bench-guard) to run the wall-clock scaling guard")
	}
	const n, rounds = 32, 8
	set := make([]int, n)
	for i := range set {
		set[i] = i
	}
	q := query.New(query.Sum, set...)
	timeWorkers := func(workers int) time.Duration {
		a, err := sumprob.New(n, sumprob.Params{
			Lambda: 0.6, Gamma: 4, Delta: 0.2, T: 10,
			OuterSamples: 32, InnerSamples: 300,
			Workers: workers, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Decide(q); err != nil { // warm the caches
			t.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if _, err := a.Decide(q); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	seq := timeWorkers(1)
	par := timeWorkers(4)
	t.Logf("workers=1: %v for %d decisions; workers=4: %v", seq, rounds, par)
	// 1.5× headroom absorbs scheduling noise; the pre-fix regression was
	// integer multiples, not percentages.
	if par > seq+seq/2 {
		t.Fatalf("workers=4 wall time %v exceeds 1.5× workers=1 (%v): per-decision state is leaking back into the sample loop", par, seq)
	}
}

// BenchmarkColoringChain measures maxminprob's per-sample unit — rebase
// the chain on the initial coloring, mix, draw a dataset — in the two
// forms the engine can run it: allocating a fresh sampler and dataset
// per sample ("fresh", the pre-scratch behaviour) versus reusing a
// per-worker sampler and output buffers ("scratch", what mcpar workers
// do). The -benchmem delta between the two is the allocation the
// scratch design removes from the hot loop.
func BenchmarkColoringChain(b *testing.B) {
	const n = 60
	rng := randx.New(1)
	syn := synopsis.NewMaxMin(n, 0, 1)
	xs := randx.DuplicateFreeDataset(rng, n, 0, 1)
	for t := 0; t < 10; t++ {
		set := query.NewSet(randx.SubsetSizeBetween(rng, n, 20, 50)...)
		q := query.Query{Set: set, Kind: query.Max}
		if t%2 == 1 {
			q.Kind = query.Min
		}
		ans := q.Eval(xs)
		var err error
		if q.Kind == query.Max {
			err = syn.AddMax(set, ans)
		} else {
			err = syn.AddMin(set, ans)
		}
		if err != nil {
			b.Fatalf("building synopsis: %v", err)
		}
	}
	g, err := coloring.Build(syn)
	if err != nil {
		b.Fatal(err)
	}
	init, err := g.InitialColoring()
	if err != nil {
		b.Fatal(err)
	}
	const mixFactor = 2

	b.Run("fresh", func(b *testing.B) {
		rng := randx.New(2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := coloring.NewSamplerFrom(g, rng, init)
			if err != nil {
				b.Fatal(err)
			}
			s.Mix(mixFactor)
			if ds := s.SampleDataset(rng); len(ds) != n {
				b.Fatal("short dataset")
			}
		}
	})
	b.Run("scratch", func(b *testing.B) {
		rng := randx.New(2)
		s, err := coloring.NewSamplerFrom(g, rng, init)
		if err != nil {
			b.Fatal(err)
		}
		ds := make([]float64, n)
		fixed := make([]bool, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Reset(rng, init); err != nil {
				b.Fatal(err)
			}
			s.Mix(mixFactor)
			s.SampleDatasetInto(rng, ds, fixed)
		}
	})
}
