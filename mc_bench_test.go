// Micro-benchmarks for the parallel Monte Carlo decision engine: the
// three probabilistic auditors' Decide hot paths per worker-pool size,
// plus the coloring-chain sample unit that dominates maxminprob. Run
// with -benchmem to see the per-worker scratch reuse (the steady-state
// sample loop should not allocate per sample beyond the synopsis clone).
package main

import (
	"fmt"
	"runtime"
	"sort"
	"testing"

	"queryaudit/internal/audit/sumprob"
	"queryaudit/internal/coloring"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/synopsis"
)

// benchWorkerCounts returns the deduplicated, sorted pool sizes the
// Decide benchmarks sweep: sequential, 2, 4, and whatever the runner
// offers. On a single-core runner this collapses to {1, 2, 4}.
func benchWorkerCounts() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.GOMAXPROCS(0): true}
	counts := make([]int, 0, len(set))
	for w := range set {
		counts = append(counts, w)
	}
	sort.Ints(counts)
	return counts
}

// BenchmarkSumProbDecide measures one Section 3.3-style sum decision
// (hit-and-run polytope sampling per hypothetical dataset), per
// worker-pool size. The outer Monte Carlo loop is what parallelizes;
// each sample runs its own short chain from the shared base point.
func BenchmarkSumProbDecide(b *testing.B) {
	const n = 32
	set := make([]int, n)
	for i := range set {
		set[i] = i
	}
	q := query.New(query.Sum, set...)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			a, err := sumprob.New(n, sumprob.Params{
				Lambda: 0.6, Gamma: 4, Delta: 0.2, T: 10,
				OuterSamples: 32, InnerSamples: 300,
				Workers: workers, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.Decide(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkColoringChain measures maxminprob's per-sample unit — rebase
// the chain on the initial coloring, mix, draw a dataset — in the two
// forms the engine can run it: allocating a fresh sampler and dataset
// per sample ("fresh", the pre-scratch behaviour) versus reusing a
// per-worker sampler and output buffers ("scratch", what mcpar workers
// do). The -benchmem delta between the two is the allocation the
// scratch design removes from the hot loop.
func BenchmarkColoringChain(b *testing.B) {
	const n = 60
	rng := randx.New(1)
	syn := synopsis.NewMaxMin(n, 0, 1)
	xs := randx.DuplicateFreeDataset(rng, n, 0, 1)
	for t := 0; t < 10; t++ {
		set := query.NewSet(randx.SubsetSizeBetween(rng, n, 20, 50)...)
		q := query.Query{Set: set, Kind: query.Max}
		if t%2 == 1 {
			q.Kind = query.Min
		}
		ans := q.Eval(xs)
		var err error
		if q.Kind == query.Max {
			err = syn.AddMax(set, ans)
		} else {
			err = syn.AddMin(set, ans)
		}
		if err != nil {
			b.Fatalf("building synopsis: %v", err)
		}
	}
	g, err := coloring.Build(syn)
	if err != nil {
		b.Fatal(err)
	}
	init, err := g.InitialColoring()
	if err != nil {
		b.Fatal(err)
	}
	const mixFactor = 2

	b.Run("fresh", func(b *testing.B) {
		rng := randx.New(2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := coloring.NewSamplerFrom(g, rng, init)
			if err != nil {
				b.Fatal(err)
			}
			s.Mix(mixFactor)
			if ds := s.SampleDataset(rng); len(ds) != n {
				b.Fatal("short dataset")
			}
		}
	})
	b.Run("scratch", func(b *testing.B) {
		rng := randx.New(2)
		s, err := coloring.NewSamplerFrom(g, rng, init)
		if err != nil {
			b.Fatal(err)
		}
		ds := make([]float64, n)
		fixed := make([]bool, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Reset(rng, init); err != nil {
				b.Fatal(err)
			}
			s.Mix(mixFactor)
			s.SampleDatasetInto(rng, ds, fixed)
		}
	})
}
