package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// The exit-code contract: 0 on a clean tree, 1 when findings survive
// suppression, 2 on load/usage errors — stable across -analyzers
// subsets and -json, because CI and the pre-commit hook both branch on
// it. Exercised against the real binary over throwaway modules.

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

func auditlintBin(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "auditlint-bin")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "auditlint")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			buildErr = err
			t.Logf("build output: %s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building auditlint: %v", buildErr)
	}
	return binPath
}

// run executes the binary and returns stdout, stderr and the exit code.
func run(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(auditlintBin(t), args...)
	var stdout, stderr strings.Builder
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running auditlint %v: %v", args, err)
	}
	return stdout.String(), stderr.String(), code
}

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func cleanModule(t *testing.T) string {
	return writeModule(t, map[string]string{
		"go.mod":  "module queryaudit\n\ngo 1.22\n",
		"util.go": "package util\n\nfunc Add(a, b int) int { return a + b }\n",
	})
}

// dirtyModule impersonates the repo's module: a decision-path package
// (queryaudit/internal/audit) reaches time.Now through a TWO-call chain
// in a helper package — the interprocedural regression fixture.
func dirtyModule(t *testing.T) string {
	return writeModule(t, map[string]string{
		"go.mod": "module queryaudit\n\ngo 1.22\n",
		"internal/timeutil/timeutil.go": "package timeutil\n\nimport \"time\"\n\n" +
			"// Stamp returns the current unix time via a private helper.\n" +
			"func Stamp() int64 { return nowUnix() }\n\n" +
			"func nowUnix() int64 { return time.Now().Unix() }\n",
		"internal/audit/decide.go": "package audit\n\nimport \"queryaudit/internal/timeutil\"\n\n" +
			"// Choose wrongly folds a timestamp into a decision.\n" +
			"func Choose(n int) int64 {\n\tif n > 0 {\n\t\treturn timeutil.Stamp()\n\t}\n\treturn 0\n}\n",
	})
}

func TestExitCodeCleanTree(t *testing.T) {
	dir := cleanModule(t)
	for _, args := range [][]string{
		{"-C", dir, "./..."},
		{"-C", dir, "-json", "./..."},
		{"-C", dir, "-analyzers", "detrand,errsink", "./..."},
	} {
		if out, errOut, code := run(t, args...); code != 0 {
			t.Errorf("%v: exit %d, want 0\nstdout: %s\nstderr: %s", args, code, out, errOut)
		}
	}
}

func TestExitCodeFindings(t *testing.T) {
	dir := dirtyModule(t)
	out, _, code := run(t, "-C", dir, "./...")
	if code != 1 {
		t.Fatalf("dirty module: exit %d, want 1\n%s", code, out)
	}
	for _, needle := range []string{
		"call to internal/timeutil.Stamp reaches a wall-clock read in a decision path",
		"internal/audit.Choose → internal/timeutil.Stamp → internal/timeutil.nowUnix → time.Now",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("finding output missing %q:\n%s", needle, out)
		}
	}
}

func TestExitCodeAnalyzerSubsets(t *testing.T) {
	dir := dirtyModule(t)
	// The flagging analyzer alone still exits 1; subsets that cannot see
	// the defect — including each of the new passes — exit 0.
	if _, _, code := run(t, "-C", dir, "-analyzers", "detrand", "./..."); code != 1 {
		t.Errorf("-analyzers detrand: exit %d, want 1", code)
	}
	for _, subset := range []string{"floateq", "lockorder", "ctxleak", "errsink", "lockorder,ctxleak,errsink"} {
		if out, _, code := run(t, "-C", dir, "-analyzers", subset, "./..."); code != 0 {
			t.Errorf("-analyzers %s: exit %d, want 0\n%s", subset, code, out)
		}
	}
}

func TestExitCodeLoadAndUsageErrors(t *testing.T) {
	dir := cleanModule(t)
	if _, errOut, code := run(t, "-C", dir, "-analyzers", "nosuch", "./..."); code != 2 || !strings.Contains(errOut, "unknown analyzer") {
		t.Errorf("unknown analyzer: exit %d (%s), want 2", code, errOut)
	}
	if _, _, code := run(t, "-C", dir, "./does/not/exist"); code != 2 {
		t.Errorf("bad pattern: exit %d, want 2", code)
	}
	broken := writeModule(t, map[string]string{
		"go.mod": "module queryaudit\n\ngo 1.22\n",
		"bad.go": "package bad\n\nfunc Broken() int { return undefinedSymbol }\n",
	})
	if _, _, code := run(t, "-C", broken, "./..."); code != 2 {
		t.Errorf("type error: exit %d, want 2", code)
	}
	if _, _, code := run(t, "-C", dir, "-why", "no.Such", "./..."); code != 2 {
		t.Errorf("-why unknown function: exit %d, want 2", code)
	}
}

// TestWhyPrintsWitnessChain is the -why acceptance case: the helper
// whose summary reaches time.Now two calls down must explain itself
// with the full chain.
func TestWhyPrintsWitnessChain(t *testing.T) {
	dir := dirtyModule(t)
	out, _, code := run(t, "-C", dir, "-why", "timeutil.Stamp", "./...")
	if code != 0 {
		t.Fatalf("-why exit %d, want 0\n%s", code, out)
	}
	for _, needle := range []string{
		"internal/timeutil.Stamp",
		"reaches a wall-clock read: internal/timeutil.Stamp → internal/timeutil.nowUnix → time.Now",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("-why output missing %q:\n%s", needle, out)
		}
	}
	// The in-scope caller explains with the same chain, one hop longer.
	out, _, code = run(t, "-C", dir, "-why", "audit.Choose", "./...")
	if code != 0 || !strings.Contains(out, "audit.Choose → internal/timeutil.Stamp → internal/timeutil.nowUnix → time.Now") {
		t.Errorf("-why audit.Choose: exit %d, missing chain:\n%s", code, out)
	}
}

type report struct {
	Schema    int      `json:"schema"`
	Analyzers []string `json:"analyzers"`
	Packages  []string `json:"packages"`
	Cache     string   `json:"cache"`
	Findings  []struct {
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
		Witness  []struct {
			Func string `json:"func"`
			Note string `json:"note"`
		} `json:"witness"`
	} `json:"findings"`
}

func decodeReport(t *testing.T, out string) report {
	t.Helper()
	var r report
	if err := json.Unmarshal([]byte(out), &r); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, out)
	}
	return r
}

func TestJSONSchemaV2(t *testing.T) {
	dir := dirtyModule(t)
	out, _, code := run(t, "-C", dir, "-json", "./...")
	if code != 1 {
		t.Fatalf("-json dirty: exit %d, want 1", code)
	}
	r := decodeReport(t, out)
	if r.Schema != 2 || r.Cache != "off" || len(r.Analyzers) != 8 {
		t.Fatalf("envelope = schema %d, cache %q, %d analyzers", r.Schema, r.Cache, len(r.Analyzers))
	}
	if len(r.Findings) == 0 {
		t.Fatal("no findings in the JSON report")
	}
	f := r.Findings[0]
	if f.Analyzer != "detrand" || len(f.Witness) < 3 || f.Witness[len(f.Witness)-1].Note != "root" {
		t.Fatalf("finding lacks a rooted witness chain: %+v", f)
	}
	if !strings.Contains(strings.Join(r.Packages, " "), "queryaudit/internal/audit") {
		t.Fatalf("packages list missing the analyzed package: %v", r.Packages)
	}
}

func TestCacheHitAndInvalidation(t *testing.T) {
	dir := dirtyModule(t)
	out1, _, code1 := run(t, "-C", dir, "-cache", "-json", "./...")
	r1 := decodeReport(t, out1)
	if code1 != 1 || r1.Cache != "miss" {
		t.Fatalf("cold run: exit %d, cache %q; want 1, miss", code1, r1.Cache)
	}
	out2, _, code2 := run(t, "-C", dir, "-cache", "-json", "./...")
	r2 := decodeReport(t, out2)
	if code2 != 1 || r2.Cache != "hit" {
		t.Fatalf("warm run: exit %d, cache %q; want 1, hit", code2, r2.Cache)
	}
	if len(r2.Findings) != len(r1.Findings) || r2.Findings[0].Message != r1.Findings[0].Message {
		t.Fatal("cached findings differ from the analyzed ones")
	}
	// The exit code must come from the cached findings too — and editing
	// a file must invalidate.
	decide := filepath.Join(dir, "internal", "audit", "decide.go")
	fixed := "package audit\n\n// Choose no longer consults the clock.\n" +
		"func Choose(n int) int64 {\n\tif n > 0 {\n\t\treturn int64(n)\n\t}\n\treturn 0\n}\n"
	if err := os.WriteFile(decide, []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	out3, errOut3, code3 := run(t, "-C", dir, "-cache", "-json", "./...")
	r3 := decodeReport(t, out3)
	if code3 != 0 || r3.Cache != "miss" || len(r3.Findings) != 0 {
		t.Fatalf("edited run: exit %d, cache %q, %d findings; want 0, miss, 0", code3, r3.Cache, len(r3.Findings))
	}
	if !strings.Contains(errOut3, "queryaudit/internal/audit") {
		t.Errorf("miss diagnostic does not name the invalidating package: %s", errOut3)
	}
}

// TestCacheWarmFasterThanCold is the CI smoke assertion: over the real
// module, a warm cache run must beat the cold one. Wall-clock
// assertions belong on a quiet machine, so it is env-gated
// (LINT_CACHE_SMOKE=1, `make lint-cache-smoke`).
func TestCacheWarmFasterThanCold(t *testing.T) {
	if os.Getenv("LINT_CACHE_SMOKE") == "" {
		t.Skip("set LINT_CACHE_SMOKE=1 to run the warm-vs-cold wall-clock smoke")
	}
	root := "../.."
	cacheDir := filepath.Join(t.TempDir(), "cache")
	timed := func() time.Duration {
		t.Helper()
		start := time.Now()
		if _, errOut, code := run(t, "-C", root, "-cache", "-cache-dir", cacheDir, "./..."); code != 0 {
			t.Fatalf("lint over the repo: exit %d\n%s", code, errOut)
		}
		return time.Since(start)
	}
	cold := timed()
	warm := timed()
	t.Logf("cold %v, warm %v", cold, warm)
	if warm >= cold {
		t.Fatalf("warm run (%v) not faster than cold (%v)", warm, cold)
	}
}
