// Command auditlint runs the repo's custom static-analysis suite (see
// internal/lint and docs/LINTING.md) over the module:
//
//	go run ./cmd/auditlint ./...
//
// It prints one diagnostic per finding as file:line:col: [analyzer]
// message (fix: hint), followed by the witness call chain for
// interprocedural findings, and exits 1 if anything unsuppressed was
// found, 2 on load/usage errors, 0 on a clean tree. Findings are
// suppressed only by an explicit //auditlint:allow <analyzer> <reason>
// comment.
//
// -json emits the schema-2 envelope: analyzers run, packages analyzed,
// cache disposition, and the findings with their witness chains.
// -why pkg.Func prints the engine's interprocedural facts for one
// function (which taints reach it, and the chains proving it).
// -cache reuses the previous run's findings when no analysis input
// changed (see internal/lint cache.go).
//
// The tool is built purely on the Go standard library (go/parser,
// go/ast, go/types, export data served by `go list -export`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"queryaudit/internal/lint"
)

// jsonReport is the -json schema-2 envelope.
type jsonReport struct {
	Schema    int            `json:"schema"`
	Tool      string         `json:"tool"`
	Analyzers []string       `json:"analyzers"`
	Packages  []string       `json:"packages"`
	Cache     string         `json:"cache"` // "off", "hit" or "miss"
	Findings  []lint.Finding `json:"findings"`
}

func main() {
	var (
		listOnly = flag.Bool("list", false, "list analyzers and exit")
		jsonOut  = flag.Bool("json", false, "emit the schema-2 JSON report")
		only     = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
		chdir    = flag.String("C", ".", "directory to resolve packages from")
		why      = flag.String("why", "", "explain the engine's facts for a function (e.g. mcpar.Vote) and exit")
		useCache = flag.Bool("cache", false, "reuse cached findings when no analysis input changed")
		cacheDir = flag.String("cache-dir", "", "cache directory (default <module root>/.auditlint-cache)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: auditlint [flags] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	if *listOnly {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "auditlint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}
	var names []string
	for _, a := range analyzers {
		names = append(names, a.Name)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	list, err := lint.ListPackages(*chdir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "auditlint:", err)
		os.Exit(2)
	}

	if *why != "" {
		prog, err := list.Load()
		if err != nil {
			fmt.Fprintln(os.Stderr, "auditlint:", err)
			os.Exit(2)
		}
		text, ok := lint.Explain(prog, *why)
		if !ok {
			fmt.Fprintf(os.Stderr, "auditlint: no module function matches %q\n", *why)
			os.Exit(2)
		}
		fmt.Print(text)
		return
	}

	cacheState := "off"
	var cache *lint.Cache
	var key string
	var perPkg map[string]string
	var findings []lint.Finding
	pkgPaths := list.MainPackages()
	cached := false
	if *useCache {
		dir := *cacheDir
		if dir == "" {
			root, err := lint.ModuleRoot(*chdir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "auditlint:", err)
				os.Exit(2)
			}
			dir = lint.DefaultCacheDir(root)
		}
		cache = &lint.Cache{Dir: dir}
		key, perPkg, err = list.Fingerprint(names)
		if err != nil {
			fmt.Fprintln(os.Stderr, "auditlint:", err)
			os.Exit(2)
		}
		if fs, ok := cache.Lookup(key); ok {
			findings, cached, cacheState = fs, true, "hit"
		} else {
			cacheState = "miss"
			if stale := cache.Invalidated(perPkg); len(stale) > 0 {
				fmt.Fprintf(os.Stderr, "auditlint: cache invalidated by %s\n", strings.Join(stale, ", "))
			}
		}
	}
	if !cached {
		prog, err := list.Load()
		if err != nil {
			fmt.Fprintln(os.Stderr, "auditlint:", err)
			os.Exit(2)
		}
		findings = lint.Run(prog, analyzers)
		if cache != nil {
			if err := cache.Store(key, perPkg, findings); err != nil {
				fmt.Fprintln(os.Stderr, "auditlint: writing cache:", err)
			}
		}
	}

	if *jsonOut {
		rep := jsonReport{
			Schema:    2,
			Tool:      "auditlint",
			Analyzers: names,
			Packages:  pkgPaths,
			Cache:     cacheState,
			Findings:  findings,
		}
		if rep.Findings == nil {
			rep.Findings = []lint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "auditlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "auditlint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}
