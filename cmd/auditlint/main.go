// Command auditlint runs the repo's custom static-analysis suite (see
// internal/lint and docs/LINTING.md) over the module:
//
//	go run ./cmd/auditlint ./...
//
// It prints one diagnostic per finding as file:line:col: [analyzer]
// message (fix: hint) and exits 1 if anything unsuppressed was found, 2
// on load/usage errors, 0 on a clean tree. Findings are suppressed only
// by an explicit //auditlint:allow <analyzer> <reason> comment.
//
// The tool is built purely on the Go standard library (go/parser,
// go/ast, go/types, export data served by `go list -export`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"queryaudit/internal/lint"
)

func main() {
	var (
		listOnly = flag.Bool("list", false, "list analyzers and exit")
		jsonOut  = flag.Bool("json", false, "emit findings as JSON")
		only     = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
		chdir    = flag.String("C", ".", "directory to resolve packages from")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: auditlint [flags] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	if *listOnly {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "auditlint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := lint.LoadPackages(*chdir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "auditlint:", err)
		os.Exit(2)
	}
	findings := lint.Run(prog, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "auditlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "auditlint: %d finding(s) across %d package(s)\n", len(findings), len(prog.Pkgs))
		}
		os.Exit(1)
	}
}
