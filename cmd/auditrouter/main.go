// Command auditrouter is the stateless routing tier of a sharded
// auditserver fleet. It maps every analyst onto its owning shard with
// the same consistent-hash ring the shards themselves use
// (internal/cluster), so router and nodes agree on placement from the
// shared fleet descriptor alone — no coordination service.
//
//	auditrouter -cluster-config fleet.json -addr :8090
//
//	curl -s -X POST localhost:8090/v1/query \
//	     -H 'X-Analyst-ID: alice' \
//	     -d '{"sql":"SELECT sum(salary) WHERE age BETWEEN 30 AND 40"}'
//	curl -s localhost:8090/v1/cluster
//	curl -s -X POST localhost:8090/v1/cluster/rebalance \
//	     -d @new-fleet.json
//
// Analyst-scoped endpoints (/v1/query, /v1/queryset, /v1/prime,
// /v1/stats, /v1/knowledge) are forwarded to the owning shard's active
// member. Dataset updates (/v1/update) broadcast to every shard.
// /v1/sessions and GET /v1/cluster fan in from all shards;
// /v1/metrics, /healthz and /readyz are served by the router itself.
//
// Failures are handled in two layers. A member that answers 421 names
// the shard's real primary in its body; the router adopts it and
// retries once — this is how the router converges on a promotion it
// did not witness. A member that stops answering at all trips a
// circuit breaker after -breaker-failures consecutive transport
// errors: the router fails over to the shard's replica and re-probes
// the primary after -breaker-cooldown.
//
// POST /v1/cluster/rebalance moves the fleet onto a new descriptor:
// sessions whose owner changes are journal-shipped, replayed and
// digest-verified on the new owner before the old one drops them, then
// the descriptor is pushed to every node and the router's ring swaps.
// See docs/DEPLOYMENT.md §14 for the runbook.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"queryaudit/internal/cluster"
)

func main() {
	var (
		addr        = flag.String("addr", ":8090", "listen address")
		configPath  = flag.String("cluster-config", "", "path to the fleet descriptor (required)")
		maxBody     = flag.Int64("max-body-bytes", 1<<20, "maximum request body size in bytes")
		breakerN    = flag.Int("breaker-failures", 3, "consecutive transport failures before failing a shard over to its replica")
		breakerWait = flag.Duration("breaker-cooldown", 5*time.Second, "how long a tripped shard stays on its replica before the primary is re-probed")
		reqTimeout  = flag.Duration("request-timeout", 30*time.Second, "per-upstream-request timeout")
		migRetries  = flag.Int("migrate-retries", 3, "export re-rounds per migrated session when live traffic keeps landing on it")
		drain       = flag.Duration("shutdown-timeout", 10*time.Second, "graceful drain window on SIGINT/SIGTERM")
		quiet       = flag.Bool("quiet", false, "disable failover and rebalance logging")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "auditrouter ", log.LstdFlags|log.Lmsgprefix)
	if *configPath == "" {
		logger.Fatalf("-cluster-config is required (the fleet descriptor defines the ring)")
	}
	fleet, err := cluster.LoadFleet(*configPath)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	rtLogger := logger
	if *quiet {
		rtLogger = log.New(discard{}, "", 0)
	}
	rt, err := newRouter(fleet, routerConfig{
		Logger:          rtLogger,
		MaxBodyBytes:    *maxBody,
		BreakerFailures: *breakerN,
		BreakerCooldown: *breakerWait,
		RequestTimeout:  *reqTimeout,
		MigrateRetries:  *migRetries,
	})
	if err != nil {
		logger.Fatalf("%v", err)
	}

	srv := &http.Server{
		Handler:           rt,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	logger.Printf("routing %d shards (seed %d, vnodes %d) from %s",
		len(fleet.Shards), fleet.Seed, fleet.VNodes, *configPath)
	logger.Printf("listening on %s", ln.Addr())

	select {
	case <-ctx.Done():
		stop()
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
		<-done
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Fatalf("serve: %v", err)
		}
	}
	logger.Printf("bye")
}

// discard satisfies io.Writer for the -quiet logger.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
