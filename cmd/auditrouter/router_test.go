package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/maxminfull"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/cluster"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/server"
	"queryaudit/internal/session"
)

func quietRouter(t *testing.T, fleetDoc string) *router {
	t.Helper()
	fleet, err := cluster.ParseFleet(strings.NewReader(fleetDoc))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := newRouter(fleet, routerConfig{
		Logger:          log.New(io.Discard, "", 0),
		MaxBodyBytes:    1 << 20,
		BreakerFailures: 2,
		BreakerCooldown: time.Minute,
		RequestTimeout:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// echoShard is a minimal fake shard: it answers every request with its
// shard ID (header and body) and tallies the analysts it saw.
type echoShard struct {
	id   string
	mu   sync.Mutex
	seen map[string]int
}

func newEchoShard(t *testing.T, id string) (*echoShard, string) {
	t.Helper()
	es := &echoShard{id: id, seen: make(map[string]int)}
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		es.mu.Lock()
		es.seen[r.Header.Get("X-Analyst-ID")]++
		es.mu.Unlock()
		w.Header().Set("X-Shard-ID", es.id)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"shard":%q}`, es.id)
	}))
	t.Cleanup(hs.Close)
	return es, hs.URL
}

func twoEchoFleet(t *testing.T) (string, *echoShard, *echoShard) {
	t.Helper()
	esA, urlA := newEchoShard(t, "shard-a")
	esB, urlB := newEchoShard(t, "shard-b")
	doc := fmt.Sprintf(`{"shards": [
		{"id": "shard-a", "primary": %q},
		{"id": "shard-b", "primary": %q}
	]}`, urlA, urlB)
	return doc, esA, esB
}

func postQueryVia(t *testing.T, rt *router, analyst string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/queryset", strings.NewReader(`{"kind":"sum","indices":[0,1]}`))
	req.Header.Set("X-Analyst-ID", analyst)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	return rec
}

// TestRouterRoutesByRingOwner: every analyst lands on exactly the shard
// the descriptor's ring assigns, and the response names that shard.
func TestRouterRoutesByRingOwner(t *testing.T) {
	doc, esA, esB := twoEchoFleet(t)
	rt := quietRouter(t, doc)
	fleet, _ := cluster.ParseFleet(strings.NewReader(doc))
	for i := 0; i < 20; i++ {
		analyst := fmt.Sprintf("analyst-%d", i)
		owner, err := fleet.Owner(analyst)
		if err != nil {
			t.Fatal(err)
		}
		rec := postQueryVia(t, rt, analyst)
		if rec.Code != http.StatusOK {
			t.Fatalf("analyst %s: %d %s", analyst, rec.Code, rec.Body)
		}
		if got := rec.Header().Get("X-Shard-ID"); got != owner.ID {
			t.Fatalf("analyst %s answered by %s, ring owner is %s", analyst, got, owner.ID)
		}
	}
	esA.mu.Lock()
	sawA := len(esA.seen)
	esA.mu.Unlock()
	esB.mu.Lock()
	sawB := len(esB.seen)
	esB.mu.Unlock()
	if sawA == 0 || sawB == 0 {
		t.Fatalf("degenerate placement: shard-a saw %d analysts, shard-b saw %d", sawA, sawB)
	}
}

// TestRouterFollowsSameShard421: a member that is no longer primary
// answers 421 naming its successor; the router must adopt the named URL
// as the shard's active member and retry the request there — this is
// how it converges on a promotion it did not witness.
func TestRouterFollowsSameShard421(t *testing.T) {
	_, promotedURL := newEchoShard(t, "shard-a")
	demoted := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusMisdirectedRequest)
		_ = json.NewEncoder(w).Encode(cluster.MisdirectedBody{
			Error: "not primary", Shard: "shard-a", Role: "replica", PrimaryURL: promotedURL,
		})
	}))
	t.Cleanup(demoted.Close)

	doc := fmt.Sprintf(`{"shards": [{"id": "shard-a", "primary": %q, "replica": %q}]}`, demoted.URL, promotedURL)
	rt := quietRouter(t, doc)
	rec := postQueryVia(t, rt, "alice")
	if rec.Code != http.StatusOK {
		t.Fatalf("after 421 follow: %d %s", rec.Code, rec.Body)
	}
	st, err := rt.ownerState("alice")
	if err != nil {
		t.Fatal(err)
	}
	if active, _ := st.view(time.Now()); active != promotedURL {
		t.Fatalf("router active = %s, want the promoted member %s", active, promotedURL)
	}
	// Subsequent requests go straight to the promoted member.
	if rec := postQueryVia(t, rt, "alice"); rec.Code != http.StatusOK {
		t.Fatalf("second request: %d %s", rec.Code, rec.Body)
	}
}

// TestRouterCrossShard421Hop: an ownership 421 (mid-rebalance window)
// is followed for exactly one hop without touching the routing view.
func TestRouterCrossShard421Hop(t *testing.T) {
	_, realOwnerURL := newEchoShard(t, "shard-b")
	var fencer *httptest.Server
	fencer = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusMisdirectedRequest)
		_ = json.NewEncoder(w).Encode(cluster.MisdirectedBody{
			Error: "moved", Shard: "shard-b", PrimaryURL: realOwnerURL,
		})
	}))
	t.Cleanup(fencer.Close)

	// A one-shard fleet: the ring sends everything to the fencing node,
	// which redirects cross-shard (the descriptor the router holds is
	// stale mid-rebalance).
	doc := fmt.Sprintf(`{"shards": [{"id": "shard-a", "primary": %q}]}`, fencer.URL)
	rt := quietRouter(t, doc)
	rec := postQueryVia(t, rt, "alice")
	if rec.Code != http.StatusOK {
		t.Fatalf("after ownership hop: %d %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Shard-ID"); got != "shard-b" {
		t.Fatalf("answered by %s, want shard-b", got)
	}
	st, err := rt.ownerState("alice")
	if err != nil {
		t.Fatal(err)
	}
	if active, _ := st.view(time.Now()); active != fencer.URL {
		t.Fatalf("ownership hop mutated the routing view: active = %s", active)
	}
}

// deadURL returns an address nothing listens on.
func deadURL(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + l.Addr().String()
	l.Close()
	return url
}

// TestRouterBreakerFailsOverToReplica: consecutive transport failures
// on the primary trip the breaker and the request is retried on the
// replica within the SAME request once the threshold is met.
func TestRouterBreakerFailsOverToReplica(t *testing.T) {
	_, replicaURL := newEchoShard(t, "shard-a")
	doc := fmt.Sprintf(`{"shards": [{"id": "shard-a", "primary": %q, "replica": %q}]}`, deadURL(t), replicaURL)
	rt := quietRouter(t, doc) // BreakerFailures: 2

	// First request: one failure recorded, below threshold → 502.
	if rec := postQueryVia(t, rt, "alice"); rec.Code != http.StatusBadGateway {
		t.Fatalf("first request: %d, want 502 while breaker counts", rec.Code)
	}
	// Second request: threshold reached, breaker flips, replica answers.
	rec := postQueryVia(t, rt, "alice")
	if rec.Code != http.StatusOK {
		t.Fatalf("second request: %d %s, want failover to replica", rec.Code, rec.Body)
	}
	st, err := rt.ownerState("alice")
	if err != nil {
		t.Fatal(err)
	}
	if active, open := st.view(time.Now()); active != replicaURL || !open {
		t.Fatalf("breaker state: active=%s open=%v, want replica with open breaker", active, open)
	}
}

// TestRouterUpdateBroadcast: a dataset update must land on every shard.
func TestRouterUpdateBroadcast(t *testing.T) {
	var hitA, hitB atomic.Int64
	mk := func(hits *atomic.Int64, id string) string {
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/update" {
				hits.Add(1)
			}
			w.Header().Set("X-Shard-ID", id)
			fmt.Fprint(w, `{"ok":true}`)
		}))
		t.Cleanup(hs.Close)
		return hs.URL
	}
	doc := fmt.Sprintf(`{"shards": [
		{"id": "shard-a", "primary": %q},
		{"id": "shard-b", "primary": %q}
	]}`, mk(&hitA, "shard-a"), mk(&hitB, "shard-b"))
	rt := quietRouter(t, doc)

	req := httptest.NewRequest(http.MethodPost, "/v1/update", strings.NewReader(`{"index":0,"value":3}`))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("update: %d %s", rec.Code, rec.Body)
	}
	if hitA.Load() != 1 || hitB.Load() != 1 {
		t.Fatalf("update hit shard-a %d times, shard-b %d times; want 1 and 1", hitA.Load(), hitB.Load())
	}
}

// --- end-to-end rebalance over real shard servers ---

func shardSpec(n int) *core.EngineSpec {
	ds := dataset.UniformDuplicateFree(randx.New(5), n, 1, 100)
	sp := core.NewEngineSpec(ds)
	sp.Register(func() (audit.Auditor, error) { return sumfull.New(n), nil }, query.Sum)
	sp.Register(func() (audit.Auditor, error) { return maxminfull.New(n), nil }, query.Max, query.Min)
	return sp
}

// lateServer lets us allocate a URL before the handler exists (node
// views need the descriptor, the descriptor needs the URLs).
func lateServer(t *testing.T) (setHandler func(http.Handler), url string) {
	t.Helper()
	var h atomic.Value
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler, _ := h.Load().(http.Handler)
		if handler == nil {
			http.Error(w, "not up yet", http.StatusServiceUnavailable)
			return
		}
		handler.ServeHTTP(w, r)
	}))
	t.Cleanup(hs.Close)
	return func(handler http.Handler) { h.Store(handler) }, hs.URL
}

func newShardNode(t *testing.T, doc, shardID string, setHandler func(http.Handler)) *session.Manager {
	t.Helper()
	fleet, err := cluster.ParseFleet(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	view, err := cluster.NewNodeView(fleet, shardID)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := session.NewManager(shardSpec(8), session.Config{NoJanitor: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	setHandler(server.NewWithSessions(mgr, "salary", server.WithCluster(view)))
	return mgr
}

// TestRouterRebalanceScaleOut grows a one-shard fleet to two shards
// through POST /v1/cluster/rebalance and verifies the tentpole's whole
// promise end to end: sessions whose owner changes are shipped with
// their exact journal position, the old shard keeps nothing it no
// longer owns, the fleet keeps answering through the router afterwards,
// and a second identical rebalance is a no-op.
func TestRouterRebalanceScaleOut(t *testing.T) {
	setA, urlA := lateServer(t)
	setB, urlB := lateServer(t)
	oneShard := fmt.Sprintf(`{"shards": [{"id": "shard-a", "primary": %q}]}`, urlA)
	twoShards := fmt.Sprintf(`{"shards": [
		{"id": "shard-a", "primary": %q},
		{"id": "shard-b", "primary": %q}
	]}`, urlA, urlB)

	mgrA := newShardNode(t, oneShard, "shard-a", setA)
	// The new node boots already holding the target descriptor, as a
	// freshly provisioned shard would.
	mgrB := newShardNode(t, twoShards, "shard-b", setB)
	rt := quietRouter(t, oneShard)

	// Seed sessions through the router: all land on shard-a.
	analysts := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	for _, a := range analysts {
		for i := 0; i < 3; i++ {
			if rec := postQueryVia(t, rt, a); rec.Code != http.StatusOK && rec.Code != http.StatusForbidden {
				t.Fatalf("seeding %s: %d %s", a, rec.Code, rec.Body)
			}
		}
	}
	// The server also tracks the shared default session; it migrates like
	// any other analyst, so include it in the accounting.
	tracked := append([]string{}, analysts...)
	tracked = append(tracked, session.DefaultAnalyst)
	seqBefore := map[string]uint64{}
	for _, a := range tracked {
		seq, ok := mgrA.SeqOf(a)
		if !ok {
			t.Fatalf("analyst %s has no session on shard-a before rebalance", a)
		}
		seqBefore[a] = seq
	}

	rebalance := func() rebalanceResponse {
		body, _ := json.Marshal(cluster.ConfigRequest{Fleet: json.RawMessage(twoShards)})
		req := httptest.NewRequest(http.MethodPost, "/v1/cluster/rebalance", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		rt.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("rebalance: %d %s", rec.Code, rec.Body)
		}
		var rr rebalanceResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
			t.Fatal(err)
		}
		return rr
	}

	target, _ := cluster.ParseFleet(strings.NewReader(twoShards))
	wantMoved := 0
	for _, a := range tracked {
		owner, _ := target.Owner(a)
		if owner.ID == "shard-b" {
			wantMoved++
		}
	}
	if wantMoved == 0 {
		t.Fatal("degenerate fixture: no analyst moves to the new shard")
	}

	rr := rebalance()
	if len(rr.Failures) > 0 {
		t.Fatalf("rebalance failures: %v", rr.Failures)
	}
	if rr.Moved != wantMoved {
		t.Fatalf("moved %d sessions, ring says %d change owner", rr.Moved, wantMoved)
	}

	// Every migrated session is at its exact pre-migration position on
	// the new owner, and gone from the old one.
	for _, a := range tracked {
		owner, _ := target.Owner(a)
		if owner.ID == "shard-a" {
			if seq, ok := mgrA.SeqOf(a); !ok || seq != seqBefore[a] {
				t.Fatalf("unmoved analyst %s: (seq %d, %v), want %d on shard-a", a, seq, ok, seqBefore[a])
			}
			continue
		}
		if seq, ok := mgrB.SeqOf(a); !ok || seq != seqBefore[a] {
			t.Fatalf("moved analyst %s: (seq %d, %v) on shard-b, want %d", a, seq, ok, seqBefore[a])
		}
		if _, ok := mgrA.SeqOf(a); ok {
			t.Fatalf("moved analyst %s still has a session on shard-a", a)
		}
	}

	// The fleet keeps answering through the router, each analyst on its
	// new owner.
	for _, a := range analysts {
		owner, _ := target.Owner(a)
		rec := postQueryVia(t, rt, a)
		if rec.Code != http.StatusOK && rec.Code != http.StatusForbidden {
			t.Fatalf("post-rebalance query for %s: %d %s", a, rec.Code, rec.Body)
		}
		if got := rec.Header().Get("X-Shard-ID"); got != owner.ID {
			t.Fatalf("post-rebalance %s answered by %s, want %s", a, got, owner.ID)
		}
	}

	// Idempotence: the same descriptor again moves nothing.
	if rr := rebalance(); rr.Moved != 0 || len(rr.Failures) > 0 {
		t.Fatalf("second rebalance: %+v, want no moves and no failures", rr)
	}
}

// failingBody yields some bytes, then an error, simulating an upstream
// replica dying mid-response.
type failingBody struct {
	data string
	read bool
}

func (f *failingBody) Read(p []byte) (int, error) {
	if !f.read {
		f.read = true
		return copy(p, f.data), nil
	}
	return 0, io.ErrUnexpectedEOF
}

func (f *failingBody) Close() error { return nil }

// copyResponse used to swallow mid-stream copy errors, relaying a
// truncated body under a clean 200 (errsink finding). It must now abort
// the handler so the client sees a broken connection it can retry.
func TestCopyResponseAbortsOnTruncatedUpstream(t *testing.T) {
	rec := httptest.NewRecorder()
	resp := &http.Response{
		StatusCode: http.StatusOK,
		Header:     http.Header{"Content-Type": {"application/json"}},
		Body:       &failingBody{data: `{"partial":`},
	}
	defer func() {
		if r := recover(); r != http.ErrAbortHandler {
			t.Fatalf("recovered %v, want http.ErrAbortHandler", r)
		}
	}()
	copyResponse(rec, resp)
	t.Fatal("copyResponse returned normally on a truncated upstream body")
}

func TestCopyResponseRelaysIntactUpstream(t *testing.T) {
	rec := httptest.NewRecorder()
	resp := &http.Response{
		StatusCode: http.StatusAccepted,
		Header:     http.Header{"X-Shard-ID": {"s1"}},
		Body:       io.NopCloser(strings.NewReader("whole body")),
	}
	copyResponse(rec, resp)
	if rec.Code != http.StatusAccepted || rec.Body.String() != "whole body" {
		t.Fatalf("relayed %d %q", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Shard-ID"); got != "s1" {
		t.Fatalf("X-Shard-ID = %q, want s1", got)
	}
}
