package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"queryaudit/internal/cluster"
	"queryaudit/internal/metrics"
	"queryaudit/internal/server"
	"queryaudit/internal/session"
)

// router is the stateless routing tier: it holds no session state, only
// the fleet descriptor and per-shard liveness bookkeeping, so any number
// of router processes can run side by side and agree on placement (the
// ring is a pure function of the descriptor). Time-dependent logic —
// the circuit breaker, retry pacing — lives here and NOT in
// internal/cluster, which stays deterministic for auditlint.
type router struct {
	logger *log.Logger
	client *http.Client
	reg    *metrics.Registry
	m      *metrics.ClusterRouterMetrics
	mig    *cluster.Migrator

	maxBody         int64
	breakerFailures int
	breakerCooldown time.Duration

	// mu guards the routing view (fleet, ring, shards). Swapped wholesale
	// by rebalance; per-request reads take the read lock only long enough
	// to resolve a shard.
	mu     sync.RWMutex
	fleet  *cluster.Fleet
	ring   *cluster.Ring
	shards map[string]*shardState // auditlint:guardedby(mu)

	// rebalanceMu serializes rebalances (one topology change at a time).
	rebalanceMu sync.Mutex

	mux http.Handler
}

// shardState is the router's liveness view of one shard pair: which
// member URL requests currently go to, and the consecutive-failure
// count driving the primary→replica circuit breaker.
type shardState struct {
	spec cluster.ShardSpec

	mu          sync.Mutex
	active      string    // auditlint:guardedby(mu)
	fails       int       // auditlint:guardedby(mu)
	brokenUntil time.Time // auditlint:guardedby(mu)
}

func newShardState(spec cluster.ShardSpec) *shardState {
	return &shardState{spec: spec, active: spec.Primary}
}

// pick returns the URL the next request should target. Once the breaker
// cooldown elapses the primary is probed again (half-open): a healthy
// primary resumes service, a still-dead one re-trips after the
// configured failures.
func (st *shardState) pick(now time.Time) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.active != st.spec.Primary && !st.brokenUntil.IsZero() && now.After(st.brokenUntil) {
		st.active = st.spec.Primary
		st.fails = 0
		st.brokenUntil = time.Time{}
	}
	return st.active
}

// reportFailure records one transport failure against url. When the
// consecutive count reaches the threshold on the primary and a replica
// exists, the breaker trips: the active URL flips to the replica for at
// least cooldown. Returns the replacement URL when it flipped.
func (st *shardState) reportFailure(url string, threshold int, cooldown time.Duration, now time.Time) (string, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.active != url {
		return "", false // a concurrent request already moved on
	}
	st.fails++
	if st.fails >= threshold && st.spec.Replica != "" && st.active == st.spec.Primary {
		st.active = st.spec.Replica
		st.fails = 0
		st.brokenUntil = now.Add(cooldown)
		return st.active, true
	}
	return "", false
}

// reportSuccess clears the failure count after a response from url.
func (st *shardState) reportSuccess(url string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.active == url {
		st.fails = 0
	}
}

// setActive adopts a member URL learned from a same-shard 421 (a
// promoted replica naming itself, or a demoted primary naming its
// successor): believe the shard pair over our own guess.
func (st *shardState) setActive(url string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.active = url
	st.fails = 0
	st.brokenUntil = time.Time{}
}

// view reports the state for the status endpoint.
func (st *shardState) view(now time.Time) (active string, breakerOpen bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	open := st.active != st.spec.Primary && now.Before(st.brokenUntil)
	return st.active, open
}

type routerConfig struct {
	Logger          *log.Logger
	MaxBodyBytes    int64
	BreakerFailures int
	BreakerCooldown time.Duration
	RequestTimeout  time.Duration
	MigrateRetries  int
}

func newRouter(fleet *cluster.Fleet, cfg routerConfig) (*router, error) {
	ring, err := fleet.Ring()
	if err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: cfg.RequestTimeout}
	reg := metrics.NewRegistry()
	shards := make(map[string]*shardState, len(fleet.Shards))
	for _, spec := range fleet.Shards {
		shards[spec.ID] = newShardState(spec)
	}
	rt := &router{
		logger:          cfg.Logger,
		client:          client,
		reg:             reg,
		m:               metrics.NewClusterRouterMetrics(reg),
		mig:             cluster.NewMigrator(client, cfg.MigrateRetries),
		maxBody:         cfg.MaxBodyBytes,
		breakerFailures: cfg.BreakerFailures,
		breakerCooldown: cfg.BreakerCooldown,
		fleet:           fleet,
		ring:            ring,
		shards:          shards,
	}
	rt.m.RegisterShards(fleet.ShardIDs())

	mux := http.NewServeMux()
	// Analyst-scoped endpoints: hash to the owning shard.
	mux.HandleFunc("POST /v1/query", rt.handleAnalyst)
	mux.HandleFunc("POST /v1/queryset", rt.handleAnalyst)
	mux.HandleFunc("POST /v1/prime", rt.handleAnalyst)
	mux.HandleFunc("GET /v1/stats", rt.handleAnalyst)
	mux.HandleFunc("GET /v1/knowledge", rt.handleAnalyst)
	// Dataset-scoped: every shard audits the same table, so an update
	// must land everywhere or the fleet's synopses diverge.
	mux.HandleFunc("POST /v1/update", rt.handleUpdate)
	// Fan-in reads and router-local endpoints.
	mux.HandleFunc("GET /v1/schema", rt.handleSchema)
	mux.HandleFunc("GET /v1/sessions", rt.handleSessions)
	mux.HandleFunc("GET /v1/cluster", rt.handleCluster)
	mux.HandleFunc("POST /v1/cluster/rebalance", rt.handleRebalance)
	mux.HandleFunc("GET /v1/metrics", rt.handleMetrics)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleHealthz)
	rt.mux = mux
	return rt, nil
}

func (rt *router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

func (rt *router) now() time.Time { return time.Now() }

// ownerState resolves the shard owning analyst under the current ring.
func (rt *router) ownerState(analyst string) (*shardState, error) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	id := rt.ring.Owner(analyst)
	st, ok := rt.shards[id]
	if !ok {
		return nil, fmt.Errorf("ring owner %q not in shard table", id)
	}
	return st, nil
}

// snapshotShards returns the shard states in sorted-ID order.
func (rt *router) snapshotShards() []*shardState {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]*shardState, 0, len(rt.shards))
	for _, st := range rt.shards {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].spec.ID < out[j].spec.ID })
	return out
}

const maxAnalystIDLen = 128

// analystID mirrors the server's extraction: X-Analyst-ID header, then
// ?analyst=, else the shared default session. The router must hash the
// exact identity the shard will session on, or placement and ownership
// disagree.
func analystID(r *http.Request) (string, error) {
	a := r.Header.Get("X-Analyst-ID")
	if a == "" {
		a = r.URL.Query().Get("analyst")
	}
	if a == "" {
		return session.DefaultAnalyst, nil
	}
	if len(a) > maxAnalystIDLen {
		return "", errors.New("analyst id longer than " + strconv.Itoa(maxAnalystIDLen) + " bytes")
	}
	for i := 0; i < len(a); i++ {
		if a[i] < 0x21 || a[i] > 0x7e {
			return "", errors.New("analyst id must be printable ASCII without spaces")
		}
	}
	return a, nil
}

type errorResponse struct {
	Error string `json:"error"`
}

func (rt *router) writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes()) //auditlint:allow errsink client disconnect mid-response is the client's failure to retry, not router state
}

// bufferBody reads the request body so it can be replayed on a retry
// (the breaker flip and the 421 follow both re-send it).
func (rt *router) bufferBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Body == nil {
		return nil, true
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.maxBody+1))
	if err != nil {
		rt.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "reading request body: " + err.Error()})
		return nil, false
	}
	if int64(len(body)) > rt.maxBody {
		rt.writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: "request body too large"})
		return nil, false
	}
	return body, true
}

// do performs one upstream round trip. Only the headers the shards act
// on are forwarded; hop-by-hop headers stay at the router.
func (rt *router) do(r *http.Request, base, pathAndQuery string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, strings.TrimSuffix(base, "/")+pathAndQuery, rd)
	if err != nil {
		return nil, err
	}
	for _, h := range []string{"X-Analyst-ID", "Content-Type", "Accept"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	return rt.client.Do(req)
}

// handleAnalyst forwards one analyst-scoped request to its owning
// shard, relaying the response verbatim (denials included — a 403 is an
// auditor decision, not a proxy failure).
func (rt *router) handleAnalyst(w http.ResponseWriter, r *http.Request) {
	analyst, err := analystID(r)
	if err != nil {
		rt.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	body, ok := rt.bufferBody(w, r)
	if !ok {
		return
	}
	st, err := rt.ownerState(analyst)
	if err != nil {
		rt.writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	rt.relay(w, r, st, body, true)
}

// relay sends the buffered request to the shard, following at most one
// breaker failover and one 421 redirect:
//
//   - transport failure → report to the breaker; if it trips, retry once
//     on the replica.
//   - 421 naming OUR shard → a role fence inside the pair (the member we
//     hit is not the primary). Adopt the named primary as the shard's
//     active URL and retry once — this is how the router converges after
//     a promotion it did not witness.
//   - 421 naming ANOTHER shard → ownership moved (mid-rebalance window).
//     Follow the named primary for one hop without touching our view;
//     the descriptor push that follows the migration corrects the ring.
func (rt *router) relay(w http.ResponseWriter, r *http.Request, st *shardState, body []byte, followOwnership bool) {
	pathAndQuery := r.URL.Path
	if r.URL.RawQuery != "" {
		pathAndQuery += "?" + r.URL.RawQuery
	}
	url := st.pick(rt.now())
	var hopped, flipped bool
	for {
		resp, err := rt.do(r, url, pathAndQuery, body)
		if err != nil {
			if next, tripped := st.reportFailure(url, rt.breakerFailures, rt.breakerCooldown, rt.now()); tripped && !flipped {
				flipped = true
				rt.m.BreakerTrips.Inc()
				rt.m.Failovers.Inc()
				rt.logger.Printf("shard %s: breaker tripped on %s, failing over to %s", st.spec.ID, url, next)
				url = next
				continue
			}
			rt.m.ProxyErrors.Inc()
			rt.writeJSON(w, http.StatusBadGateway, errorResponse{
				Error: "shard " + st.spec.ID + " unreachable: " + err.Error(),
			})
			return
		}
		if resp.StatusCode == http.StatusMisdirectedRequest && !hopped {
			raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			var mb cluster.MisdirectedBody
			if json.Unmarshal(raw, &mb) == nil && mb.PrimaryURL != "" {
				hopped = true
				rt.m.Retried421.Inc()
				if mb.Shard == "" || mb.Shard == st.spec.ID {
					st.setActive(mb.PrimaryURL)
					url = mb.PrimaryURL
					continue
				}
				if followOwnership {
					url = mb.PrimaryURL
					continue
				}
			}
			// Unfollowable (or second) 421: relay it for the client.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusMisdirectedRequest)
			_, _ = w.Write(raw) //auditlint:allow errsink relaying an upstream 421 body; a client disconnect here loses only the error detail
			return
		}
		st.reportSuccess(url)
		shard := resp.Header.Get("X-Shard-ID")
		if shard == "" {
			shard = st.spec.ID
		}
		rt.m.ObserveRouted(shard)
		copyResponse(w, resp)
		return
	}
}

// copyResponse relays an upstream response verbatim. If the upstream
// body breaks mid-stream the handler is aborted so the client sees a
// broken connection, not a clean EOF: a silently truncated audit
// response (a partial decision list, half a snapshot) is worse than an
// error the client can retry.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		panic(http.ErrAbortHandler)
	}
}

// shardCall is relay without a ResponseWriter: one shard round trip
// with the same breaker and same-shard-421 handling, for fan-out and
// fan-in endpoints. The caller owns the returned response body.
func (rt *router) shardCall(r *http.Request, st *shardState, pathAndQuery string, body []byte) (*http.Response, error) {
	url := st.pick(rt.now())
	var hopped, flipped bool
	for {
		resp, err := rt.do(r, url, pathAndQuery, body)
		if err != nil {
			if next, tripped := st.reportFailure(url, rt.breakerFailures, rt.breakerCooldown, rt.now()); tripped && !flipped {
				flipped = true
				rt.m.BreakerTrips.Inc()
				rt.m.Failovers.Inc()
				rt.logger.Printf("shard %s: breaker tripped on %s, failing over to %s", st.spec.ID, url, next)
				url = next
				continue
			}
			return nil, fmt.Errorf("shard %s unreachable: %w", st.spec.ID, err)
		}
		if resp.StatusCode == http.StatusMisdirectedRequest && !hopped {
			raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			var mb cluster.MisdirectedBody
			if json.Unmarshal(raw, &mb) == nil && mb.PrimaryURL != "" && (mb.Shard == "" || mb.Shard == st.spec.ID) {
				hopped = true
				rt.m.Retried421.Inc()
				st.setActive(mb.PrimaryURL)
				url = mb.PrimaryURL
				continue
			}
			return nil, fmt.Errorf("shard %s: misdirected: %s", st.spec.ID, bytes.TrimSpace(raw))
		}
		st.reportSuccess(url)
		return resp, nil
	}
}

// handleUpdate broadcasts a dataset update to every shard. Updates are
// idempotent (set record i to v), so a partial failure is reported and
// safely retried by the client.
func (rt *router) handleUpdate(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.bufferBody(w, r)
	if !ok {
		return
	}
	rt.m.Broadcasts.Inc()
	var failures []string
	for _, st := range rt.snapshotShards() {
		resp, err := rt.shardCall(r, st, "/v1/update", body)
		if err != nil {
			failures = append(failures, err.Error())
			continue
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			failures = append(failures, fmt.Sprintf("shard %s: %s: %s", st.spec.ID, resp.Status, bytes.TrimSpace(raw)))
		}
	}
	if len(failures) > 0 {
		rt.m.ProxyErrors.Inc()
		rt.writeJSON(w, http.StatusBadGateway, errorResponse{
			Error: "update incomplete (retry it): " + strings.Join(failures, "; "),
		})
		return
	}
	rt.writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleSchema proxies the schema from the first shard: every shard
// serves the same table, so any member's answer is the fleet's.
func (rt *router) handleSchema(w http.ResponseWriter, r *http.Request) {
	shards := rt.snapshotShards()
	if len(shards) == 0 {
		rt.writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "no shards configured"})
		return
	}
	rt.relay(w, r, shards[0], nil, false)
}

// fleetSessions is the router's GET /v1/sessions: the per-shard session
// listings plus fleet totals.
type fleetSessions struct {
	Live    int                                `json:"live"`
	Tracked int                                `json:"tracked"`
	Shards  map[string]server.SessionsResponse `json:"shards"`
	Errors  []string                           `json:"errors,omitempty"`
}

func (rt *router) handleSessions(w http.ResponseWriter, r *http.Request) {
	out := fleetSessions{Shards: make(map[string]server.SessionsResponse)}
	for _, st := range rt.snapshotShards() {
		resp, err := rt.shardCall(r, st, "/v1/sessions", nil)
		if err != nil {
			out.Errors = append(out.Errors, err.Error())
			continue
		}
		var sr server.SessionsResponse
		derr := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&sr)
		resp.Body.Close()
		if derr != nil {
			out.Errors = append(out.Errors, "shard "+st.spec.ID+": "+derr.Error())
			continue
		}
		out.Live += sr.Live
		out.Tracked += sr.Tracked
		out.Shards[st.spec.ID] = sr
	}
	rt.writeJSON(w, http.StatusOK, out)
}

func (rt *router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "text/plain") {
		// Buffer-first, as in the server: a render failure is a clean
		// 500, never a torn 200 the scraper ingests as a partial set.
		var buf bytes.Buffer
		if err := metrics.WritePrometheus(&buf, rt.reg.Snapshot()); err != nil {
			http.Error(w, "metrics render failed", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", metrics.PrometheusContentType)
		w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(buf.Bytes()) //auditlint:allow errsink a failed scrape write is the scraper's disconnect; nothing durable depends on it
		return
	}
	rt.writeJSON(w, http.StatusOK, rt.reg.Snapshot())
}

// handleHealthz doubles as readiness: the router is stateless, so once
// the descriptor parsed at boot it is both alive and ready.
func (rt *router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	rt.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
