package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"queryaudit/internal/cluster"
	"queryaudit/internal/server"
)

// Fleet-wide status (GET /v1/cluster) and the rebalance driver
// (POST /v1/cluster/rebalance). Rebalancing is replay: each moved
// analyst's journal is shipped to its new owner, replayed there, and
// digest-verified before the old shard drops it (cluster.Migrator), so
// a rebalance can be killed at any instant without forking a timeline.

// memberView is one node of a shard pair in the status response.
type memberView struct {
	URL    string              `json:"url"`
	Status *cluster.NodeStatus `json:"status,omitempty"`
	Error  string              `json:"error,omitempty"`
}

// shardView is one shard pair: descriptor facts plus the router's live
// view (which member it currently targets, breaker state) and both
// members' self-reported status.
type shardView struct {
	ID          string       `json:"id"`
	Epoch       uint64       `json:"epoch"`
	Active      string       `json:"active"`
	BreakerOpen bool         `json:"breaker_open"`
	Members     []memberView `json:"members"`
}

// clusterStatus is the body of GET /v1/cluster.
type clusterStatus struct {
	Shards []shardView `json:"shards"`
	Seed   uint64      `json:"seed"`
	VNodes int         `json:"vnodes"`
}

// getJSON / postJSON are plain node calls (no breaker: status and
// rebalance want the truth about each member, not a failover).
func (rt *router) getJSON(ctx context.Context, base, path string, out any) error {
	return rt.callJSON(ctx, http.MethodGet, base, path, nil, out)
}

func (rt *router) postJSON(ctx context.Context, base, path string, body, out any) error {
	return rt.callJSON(ctx, http.MethodPost, base, path, body, out)
}

func (rt *router) callJSON(ctx context.Context, method, base, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimSuffix(base, "/")+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(out)
}

// handleCluster aggregates every member's GET /v1/cluster/node into the
// fleet-wide view, refreshing the per-shard lag and session gauges as a
// side effect (so scraping /v1/metrics after /v1/cluster sees current
// numbers — the alerting loop in docs/DEPLOYMENT.md §14 does exactly
// that).
func (rt *router) handleCluster(w http.ResponseWriter, r *http.Request) {
	rt.mu.RLock()
	fleet := rt.fleet
	rt.mu.RUnlock()

	out := clusterStatus{Seed: fleet.Seed, VNodes: fleet.VNodes}
	for _, st := range rt.snapshotShards() {
		active, open := st.view(rt.now())
		sv := shardView{
			ID:          st.spec.ID,
			Epoch:       st.spec.Epoch,
			Active:      active,
			BreakerOpen: open,
		}
		urls := []string{st.spec.Primary}
		if st.spec.Replica != "" {
			urls = append(urls, st.spec.Replica)
		}
		for _, u := range urls {
			mv := memberView{URL: u}
			var ns cluster.NodeStatus
			if err := rt.getJSON(r.Context(), u, "/v1/cluster/node", &ns); err != nil {
				mv.Error = err.Error()
			} else {
				mv.Status = &ns
				if u == active {
					rt.m.SetShardSessions(st.spec.ID, ns.SessionsTracked)
				}
				if ns.Role == "replica" {
					rt.m.SetShardLag(st.spec.ID, ns.Lag)
				}
			}
			sv.Members = append(sv.Members, mv)
		}
		out.Shards = append(out.Shards, sv)
	}
	rt.writeJSON(w, http.StatusOK, out)
}

// rebalanceResponse summarizes one rebalance run.
type rebalanceResponse struct {
	Shards       int      `json:"shards"`
	Moved        int      `json:"moved"`
	Skipped      int      `json:"skipped"`
	ConfigPushed int      `json:"config_pushed"`
	Failures     []string `json:"failures,omitempty"`
}

// handleRebalance moves the fleet onto a new descriptor:
//
//  1. First sweep: list every shard's sessions, migrate each analyst
//     whose owner changes under the new ring (journal ship + replay +
//     digest verify + conditional forget). The forget fences the
//     analyst on its old shard, so stragglers 421 to the new owner.
//  2. Push the descriptor to every member of the new fleet
//     (POST /v1/cluster/config) — nodes swap their ownership view.
//  3. Swap the router's own ring.
//  4. Second sweep: catch sessions created on old owners between the
//     first sweep and the config push (now fenced by ownership 421s).
//
// The handler is idempotent: re-POSTing the same descriptor migrates
// nothing and re-pushes the config.
func (rt *router) handleRebalance(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.bufferBody(w, r)
	if !ok {
		return
	}
	var req cluster.ConfigRequest
	if err := json.Unmarshal(body, &req); err != nil || len(req.Fleet) == 0 {
		rt.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "body must be {\"fleet\": {...}}"})
		return
	}
	newFleet, err := cluster.ParseFleet(bytes.NewReader(req.Fleet))
	if err != nil {
		rt.writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}

	rt.rebalanceMu.Lock()
	defer rt.rebalanceMu.Unlock()

	resp := rebalanceResponse{Shards: len(newFleet.Shards)}

	moved, skipped, failures := rt.sweep(r.Context(), newFleet)
	resp.Moved += moved
	resp.Skipped += skipped
	resp.Failures = append(resp.Failures, failures...)

	pushed, pushFailures := rt.pushConfig(r.Context(), req.Fleet, newFleet)
	resp.ConfigPushed = pushed
	resp.Failures = append(resp.Failures, pushFailures...)

	rt.adoptFleet(newFleet)

	moved, skipped, failures = rt.sweep(r.Context(), newFleet)
	resp.Moved += moved
	resp.Skipped += skipped
	resp.Failures = append(resp.Failures, failures...)

	rt.m.Rebalances.Inc()
	status := http.StatusOK
	if len(resp.Failures) > 0 {
		status = http.StatusBadGateway
	}
	rt.logger.Printf("rebalance: shards=%d moved=%d skipped=%d pushed=%d failures=%d",
		resp.Shards, resp.Moved, resp.Skipped, resp.ConfigPushed, len(resp.Failures))
	rt.writeJSON(w, status, resp)
}

// sweep migrates every session that is not on its target-fleet owner.
// It enumerates the CURRENT shard table (where sessions actually live)
// and computes ownership under the TARGET fleet.
func (rt *router) sweep(ctx context.Context, target *cluster.Fleet) (moved, skipped int, failures []string) {
	for _, st := range rt.snapshotShards() {
		var sr server.SessionsResponse
		if err := rt.getJSON(ctx, st.pick(rt.now()), "/v1/sessions", &sr); err != nil {
			failures = append(failures, "listing shard "+st.spec.ID+": "+err.Error())
			continue
		}
		for _, info := range sr.Sessions {
			owner, err := target.Owner(info.Analyst)
			if err != nil {
				failures = append(failures, err.Error())
				continue
			}
			if owner.ID == st.spec.ID {
				continue
			}
			res, err := rt.mig.Migrate(ctx, st.pick(rt.now()), owner.Primary, owner.ID, info.Analyst)
			if err != nil {
				rt.m.MigrationFailures.Inc()
				failures = append(failures, err.Error())
				continue
			}
			if res.Skipped {
				skipped++
				continue
			}
			rt.m.Migrations.Inc()
			moved++
			rt.logger.Printf("rebalance: moved %s from %s to %s at seq %d (attempts %d)",
				info.Analyst, st.spec.ID, owner.ID, res.Seq, res.Attempts)
		}
	}
	return moved, skipped, failures
}

// pushConfig sends the new descriptor to every member of the new
// fleet. Members leaving the fleet are not pushed: a node refuses a
// descriptor that drops its own shard, and its moved-set fence keeps
// redirecting stragglers until it is decommissioned.
func (rt *router) pushConfig(ctx context.Context, raw json.RawMessage, fleet *cluster.Fleet) (pushed int, failures []string) {
	for _, spec := range fleet.Shards {
		urls := []string{spec.Primary}
		if spec.Replica != "" {
			urls = append(urls, spec.Replica)
		}
		for _, u := range urls {
			var cr cluster.ConfigResponse
			if err := rt.postJSON(ctx, u, "/v1/cluster/config", cluster.ConfigRequest{Fleet: raw}, &cr); err != nil {
				failures = append(failures, "config push to "+u+": "+err.Error())
				continue
			}
			pushed++
		}
	}
	return pushed, failures
}

// adoptFleet swaps the router's routing view to the new descriptor,
// carrying over breaker state for shards that persist across the swap.
func (rt *router) adoptFleet(fleet *cluster.Fleet) {
	ring, err := fleet.Ring()
	if err != nil {
		// Unreachable: the fleet was validated by ParseFleet.
		rt.logger.Printf("rebalance: ring build failed: %v", err)
		return
	}
	shards := make(map[string]*shardState, len(fleet.Shards))
	rt.mu.Lock()
	for _, spec := range fleet.Shards {
		if old, ok := rt.shards[spec.ID]; ok && old.spec == spec {
			shards[spec.ID] = old // same pair: keep its breaker state
			continue
		}
		shards[spec.ID] = newShardState(spec)
	}
	rt.fleet = fleet
	rt.ring = ring
	rt.shards = shards
	rt.mu.Unlock()
	rt.m.RegisterShards(fleet.ShardIDs())
	rt.m.RingRebuilds.Inc()
}
