package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"queryaudit/internal/cluster"
)

// TestClusterSmoke is the end-to-end sharded-fleet drill (`make
// cluster-smoke`): two shard pairs (primary + streaming replica each)
// and a router, all real OS processes, driven by the real loadgen
// binary. It verifies the tentpole's operational claims:
//
//   - uniform load splits across the shards evenly (each shard's request
//     share within 25% of the other's) and the per-shard distribution
//     lands in the LOADGEN report;
//   - each pair's replica converges to a bit-identical per-session
//     (seq, digest) transcript;
//   - SIGKILL of a primary mid-churn, followed by an HTTP promote of its
//     replica, loses no acknowledged history: the promoted transcript
//     only ever extends the pre-kill prefix, and the router converges
//     onto the promoted member without a descriptor change.

// smokeProc is one child process under test.
type smokeProc struct {
	name string
	cmd  *exec.Cmd
	addr string
}

// startSmokeProc launches a binary and waits for its "listening on"
// stderr line.
func startSmokeProc(t *testing.T, name, bin string, args ...string) *smokeProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &smokeProc{name: name, cmd: cmd, addr: addr}
	case <-time.After(30 * time.Second):
		t.Fatalf("%s never reported its listen address", name)
		return nil
	}
}

func (p *smokeProc) url(path string) string { return "http://" + p.addr + path }

// reserveAddr grabs a free localhost port and releases it for a child
// process to bind (the descriptor needs the address before the process
// exists).
func reserveAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func smokeGetJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

// smokeTranscript flattens a node's session listing to analyst ->
// "seq:digest".
func smokeTranscript(t *testing.T, base string) map[string]string {
	t.Helper()
	var v struct {
		Sessions []struct {
			Analyst string `json:"analyst"`
			Seq     uint64 `json:"seq"`
			Digest  string `json:"digest"`
		} `json:"sessions"`
	}
	if code := smokeGetJSON(t, base+"/v1/sessions", &v); code != http.StatusOK {
		t.Fatalf("GET %s/v1/sessions: status %d", base, code)
	}
	out := map[string]string{}
	for _, s := range v.Sessions {
		out[s.Analyst] = fmt.Sprintf("%d:%s", s.Seq, s.Digest)
	}
	return out
}

// waitReplicaConverged polls the replica until it has applied the
// primary's current journal head.
func waitReplicaConverged(t *testing.T, primaryURL, replicaURL string) {
	t.Helper()
	var pst struct {
		Head uint64 `json:"head"`
	}
	if code := smokeGetJSON(t, primaryURL+"/v1/replication/status", &pst); code != http.StatusOK {
		t.Fatalf("primary replication status: %d", code)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		var rst struct {
			Applied uint64 `json:"applied"`
		}
		smokeGetJSON(t, replicaURL+"/v1/replication/status", &rst)
		if rst.Applied >= pst.Head {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %s stuck at applied=%d, primary head=%d", replicaURL, rst.Applied, pst.Head)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// diffTranscripts requires two nodes to report identical per-session
// positions.
func diffTranscripts(t *testing.T, label string, want, got map[string]string) {
	t.Helper()
	if len(want) == 0 {
		t.Fatalf("%s: no sessions to compare", label)
	}
	for analyst, pos := range want {
		if got[analyst] != pos {
			t.Fatalf("%s: transcript diverged for %s: %s vs %s", label, analyst, pos, got[analyst])
		}
	}
}

// loadgenReport is the slice of the LOADGEN artifact the drill asserts.
type loadgenReport struct {
	Totals struct {
		Requests        int `json:"requests"`
		HTTP5xx         int `json:"http_5xx"`
		TransportErrors int `json:"transport_errors"`
		Retried421      int `json:"retried_421"`
	} `json:"totals"`
	ByShard []struct {
		Shard    string `json:"shard"`
		Requests int    `json:"requests"`
	} `json:"by_shard"`
}

func runLoadgen(t *testing.T, bin string, out string, args ...string) loadgenReport {
	t.Helper()
	cmd := exec.Command(bin, append(args, "-out", out)...)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgenReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

func buildBinary(t *testing.T, dir, pkg, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	build := exec.Command("go", "build", "-o", bin, pkg)
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("build %s: %v", pkg, err)
	}
	return bin
}

func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping e2e binary test in -short mode")
	}
	dir := t.TempDir()
	serverBin := buildBinary(t, dir, "queryaudit/cmd/auditserver", "auditserver")
	routerBin := buildBinary(t, dir, "queryaudit/cmd/auditrouter", "auditrouter")
	loadgenBin := buildBinary(t, dir, "queryaudit/cmd/loadgen", "loadgen")

	// Fleet: two shard pairs on pre-reserved ports.
	addrA1, addrA2 := reserveAddr(t), reserveAddr(t)
	addrB1, addrB2 := reserveAddr(t), reserveAddr(t)
	fleetDoc := fmt.Sprintf(`{"shards": [
		{"id": "shard-a", "primary": "http://%s", "replica": "http://%s"},
		{"id": "shard-b", "primary": "http://%s", "replica": "http://%s"}
	]}`, addrA1, addrA2, addrB1, addrB2)
	fleetPath := filepath.Join(dir, "fleet.json")
	if err := os.WriteFile(fleetPath, []byte(fleetDoc), 0o644); err != nil {
		t.Fatal(err)
	}

	shardArgs := func(shard, addr string) []string {
		return []string{"-n", "30", "-quiet", "-addr", addr,
			"-cluster-config", fleetPath, "-shard-id", shard}
	}
	primA := startSmokeProc(t, "shard-a primary", serverBin,
		append(shardArgs("shard-a", addrA1), "-role", "primary")...)
	replA := startSmokeProc(t, "shard-a replica", serverBin,
		append(shardArgs("shard-a", addrA2),
			"-role", "replica", "-primary-url", primA.url(""), "-replication-poll-wait", "500ms")...)
	primB := startSmokeProc(t, "shard-b primary", serverBin,
		append(shardArgs("shard-b", addrB1), "-role", "primary")...)
	replB := startSmokeProc(t, "shard-b replica", serverBin,
		append(shardArgs("shard-b", addrB2),
			"-role", "replica", "-primary-url", primB.url(""), "-replication-poll-wait", "500ms")...)

	rt := startSmokeProc(t, "router", routerBin,
		"-addr", "127.0.0.1:0", "-cluster-config", fleetPath,
		"-breaker-failures", "2", "-breaker-cooldown", "30s", "-quiet")

	// Phase 1 — uniform load through the router. 16 steady analysts
	// split 8/8 across this two-shard ring, so the per-shard request
	// counts must land within 25% of each other.
	rep := runLoadgen(t, loadgenBin, filepath.Join(dir, "phase1.json"),
		"-target", rt.url(""), "-analysts", "16", "-requests", "1000",
		"-concurrency", "4", "-seed", "1")
	if rep.Totals.TransportErrors != 0 || rep.Totals.HTTP5xx != 0 {
		t.Fatalf("phase 1: transport_errors=%d http_5xx=%d, want clean run",
			rep.Totals.TransportErrors, rep.Totals.HTTP5xx)
	}
	if len(rep.ByShard) != 2 {
		t.Fatalf("phase 1 report has %d shards in by_shard, want 2: %+v", len(rep.ByShard), rep.ByShard)
	}
	ra, rb := rep.ByShard[0].Requests, rep.ByShard[1].Requests
	max := ra
	if rb > max {
		max = rb
	}
	if diff := ra - rb; diff < 0 {
		diff = -diff
		if float64(diff) > 0.25*float64(max) {
			t.Fatalf("phase 1 shard split %d/%d exceeds 25%% skew", ra, rb)
		}
	} else if float64(diff) > 0.25*float64(max) {
		t.Fatalf("phase 1 shard split %d/%d exceeds 25%% skew", ra, rb)
	}

	// Both replicas converge to bit-identical transcripts.
	waitReplicaConverged(t, primA.url(""), replA.url(""))
	waitReplicaConverged(t, primB.url(""), replB.url(""))
	baselineA := smokeTranscript(t, primA.url(""))
	diffTranscripts(t, "shard-a pair", baselineA, smokeTranscript(t, replA.url("")))
	diffTranscripts(t, "shard-b pair", smokeTranscript(t, primB.url("")), smokeTranscript(t, replB.url("")))

	// Phase 2 — churned load, and SIGKILL shard-a's primary mid-run.
	churn := exec.Command(loadgenBin,
		"-target", rt.url(""), "-analysts", "16", "-churn", "0.2",
		"-duration", "6s", "-concurrency", "4", "-seed", "2",
		"-out", filepath.Join(dir, "phase2.json"))
	if err := churn.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { churn.Process.Kill(); churn.Wait() }()

	time.Sleep(1500 * time.Millisecond)
	primA.cmd.Process.Kill()
	primA.cmd.Wait()
	time.Sleep(500 * time.Millisecond)

	// Promote the orphaned replica over HTTP (the operator runbook step).
	resp, err := http.Post(replA.url("/v1/replication/promote"), "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var promoted struct {
		Role  string `json:"role"`
		Epoch uint64 `json:"epoch"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&promoted)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || promoted.Role != "primary" {
		t.Fatalf("promote: status %d, %+v", resp.StatusCode, promoted)
	}
	_ = churn.Wait() // phase 2 tolerates 5xx during the failover window

	// The router must converge onto the promoted member: a shard-a
	// analyst's query succeeds again without any descriptor change.
	ring, err := cluster.NewRing([]string{"shard-a", "shard-b"}, cluster.DefaultVNodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	shardAAnalyst := ""
	for i := 0; i < 16; i++ {
		if a := fmt.Sprintf("analyst-%d", i); ring.Owner(a) == "shard-a" {
			shardAAnalyst = a
			break
		}
	}
	if shardAAnalyst == "" {
		t.Fatal("no analyst hashes to shard-a")
	}
	askVia := func(analyst string) int {
		raw, _ := json.Marshal(map[string]any{"kind": "sum", "indices": []int{0, 1, 2}})
		req, _ := http.NewRequest(http.MethodPost, rt.url("/v1/queryset"), bytes.NewReader(raw))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Analyst-ID", analyst)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	deadline := time.Now().Add(15 * time.Second)
	for askVia(shardAAnalyst) != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatal("router never converged onto the promoted shard-a member")
		}
		time.Sleep(100 * time.Millisecond)
	}
	// The untouched shard keeps serving throughout.
	bAnalyst := ""
	for i := 0; i < 16; i++ {
		if a := fmt.Sprintf("analyst-%d", i); ring.Owner(a) == "shard-b" {
			bAnalyst = a
			break
		}
	}
	if code := askVia(bAnalyst); code != http.StatusOK {
		t.Fatalf("shard-b analyst through router: %d", code)
	}

	// Zero divergence across the failover: the promoted member's
	// transcript extends — never rewrites — the pre-kill prefix.
	after := smokeTranscript(t, replA.url(""))
	for analyst, pos := range baselineA {
		var beforeSeq, afterSeq uint64
		fmt.Sscanf(pos, "%d:", &beforeSeq)
		fmt.Sscanf(after[analyst], "%d:", &afterSeq)
		if afterSeq < beforeSeq {
			t.Fatalf("promoted transcript for %s regressed: %s -> %s", analyst, pos, after[analyst])
		}
	}
	// And shard-b's pair is still bit-identical.
	waitReplicaConverged(t, primB.url(""), replB.url(""))
	diffTranscripts(t, "shard-b pair after failover", smokeTranscript(t, primB.url("")), smokeTranscript(t, replB.url("")))

	// The router's fleet view reports the promoted member as active for
	// shard-a.
	var cs struct {
		Shards []struct {
			ID     string `json:"id"`
			Active string `json:"active"`
		} `json:"shards"`
	}
	if code := smokeGetJSON(t, rt.url("/v1/cluster"), &cs); code != http.StatusOK {
		t.Fatalf("GET /v1/cluster: %d", code)
	}
	for _, sv := range cs.Shards {
		if sv.ID == "shard-a" && sv.Active != replA.url("") {
			t.Fatalf("router active for shard-a = %s, want promoted member %s", sv.Active, replA.url(""))
		}
	}
}
