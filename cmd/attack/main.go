// Command attack reproduces the denial-leakage attack of the paper's
// Section 2.2 example: against a naive, answer-dependent max auditor the
// attacker converts denials into exact values and strips the database;
// against the simulatable auditor the same strategy learns nothing.
//
// It also runs the classic sum-complement subtraction attack against an
// unaudited engine and the simulatable sum auditor.
//
// Usage:
//
//	attack [-n 40] [-queries 4000] [-seed 1] [-v]
package main

import (
	"flag"
	"fmt"
	"sort"

	"queryaudit/internal/audit/naive"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/experiments"
	"queryaudit/internal/game"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

func main() {
	var (
		n       = flag.Int("n", 40, "database size")
		queries = flag.Int("queries", 4000, "attacker query budget")
		seed    = flag.Int64("seed", 1, "random seed")
		verbose = flag.Bool("v", false, "list every extracted value")
	)
	flag.Parse()

	r := experiments.AttackDemo(*n, *queries, *seed)

	fmt.Println("=== Denial-leakage attack (Section 2.2) ===")
	fmt.Printf("database size: %d, attacker budget: %d queries\n\n", *n, *queries)

	fmt.Println("against the NAIVE (answer-dependent) max auditor:")
	fmt.Printf("  values correctly extracted: %d / %d (%.0f%%)\n",
		r.Naive.Correct, *n, 100*r.NaiveCorrectFrac)
	fmt.Printf("  queries posed: %d, denials observed: %d\n", r.Naive.Queries, r.Naive.Denials)
	if *verbose {
		printRevealed(r.Naive.Revealed)
	}

	fmt.Println("\nagainst the SIMULATABLE max auditor (Section 4):")
	fmt.Printf("  values correctly extracted: %d / %d (%.0f%%)\n",
		r.Simulatable.Correct, *n, 100*r.SimulatableCorrectFrac)
	fmt.Printf("  queries posed: %d, denials observed: %d\n", r.Simulatable.Queries, r.Simulatable.Denials)
	fmt.Println("\nsimulatable denials depend only on the query history, so the")
	fmt.Println("attacker's \"denial ⇒ value\" deduction rule stops working.")

	fmt.Println("\n=== Sum-complement subtraction attack ===")
	xs := randx.UniformDataset(randx.New(*seed), *n, 0, 1)
	open := core.NewEngine(dataset.FromValues(xs))
	open.Use(naive.Oblivious{}, query.Sum)
	rOpen := game.SumComplementAttack(open)
	fmt.Printf("unaudited engine:     %d/%d values extracted (%d queries)\n",
		rOpen.Correct, *n, rOpen.Queries)
	guarded := core.NewEngine(dataset.FromValues(xs))
	guarded.Use(sumfull.New(*n), query.Sum)
	rGuarded := game.SumComplementAttack(guarded)
	fmt.Printf("simulatable auditor:  %d/%d values extracted (%d queries, %d denials)\n",
		rGuarded.Correct, *n, rGuarded.Queries, rGuarded.Denials)
}

func printRevealed(revealed map[int]float64) {
	idx := make([]int, 0, len(revealed))
	for i := range revealed {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	for _, i := range idx {
		fmt.Printf("    x[%d] = %.6f\n", i, revealed[i])
	}
}
