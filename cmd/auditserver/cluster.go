package main

import (
	"errors"
	"fmt"
	"strings"

	"queryaudit/internal/cluster"
)

// clusterSetup validates the sharded-fleet flag combination and builds
// this node's cluster view. Returns (nil, nil, nil) when unclustered.
//
// The combinations are checked at boot instead of first request because
// a misconfigured node does not merely fail — it serves analysts it
// does not own and silently forks their audit timelines:
//
//   - -cluster-config without -shard-id (or vice versa): the node would
//     not know which ring slice is its own.
//   - -shard-id absent from the descriptor: every request would 421.
//   - clustered + the legacy single-session -snapshot mode: that mode
//     pins the shared default session locally, which cannot move during
//     a rebalance.
func clusterSetup(configPath, shardID, legacySnapshot string) (*cluster.NodeView, *cluster.Fleet, error) {
	if configPath == "" && shardID == "" {
		return nil, nil, nil
	}
	if configPath == "" {
		return nil, nil, errors.New("-shard-id requires -cluster-config (the descriptor that defines the shard)")
	}
	if shardID == "" {
		return nil, nil, errors.New("-cluster-config requires -shard-id (which shard of the descriptor this node serves)")
	}
	if legacySnapshot != "" {
		return nil, nil, errors.New("-cluster-config is incompatible with the legacy single-session -snapshot mode (its pinned default session cannot migrate; use -session-snapshot)")
	}
	fleet, err := cluster.LoadFleet(configPath)
	if err != nil {
		return nil, nil, err
	}
	view, err := cluster.NewNodeView(fleet, shardID)
	if err != nil {
		return nil, nil, fmt.Errorf("%v (descriptor lists shards %s)", err, strings.Join(fleet.ShardIDs(), ", "))
	}
	return view, fleet, nil
}
