// Command auditserver serves an audited statistical database over HTTP —
// the census-bureau deployment shape of the paper's introduction. It
// loads (or generates) a company-salary table, guards it with the
// full-disclosure auditors, and answers a JSON API:
//
//	auditserver -n 300 -addr :8080 [-session-snapshot sessions.json]
//
//	curl -s localhost:8080/v1/schema
//	curl -s -X POST localhost:8080/v1/query \
//	     -H 'X-Analyst-ID: alice' \
//	     -d '{"sql":"SELECT sum(salary) WHERE age BETWEEN 30 AND 40"}'
//	curl -s -X POST localhost:8080/v1/queryset \
//	     -H 'X-Analyst-ID: alice' -d '{"kind":"max","indices":[0,1,2,3]}'
//	curl -s -H 'X-Analyst-ID: alice' localhost:8080/v1/stats
//	curl -s localhost:8080/v1/sessions
//	curl -s localhost:8080/v1/metrics
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/readyz
//
// # Multi-analyst sessions
//
// Every request runs in the session of the analyst named by its
// X-Analyst-ID header (or ?analyst= parameter; neither means the shared
// "default" session). Each session is an isolated auditor stack built
// from the same factories, so one analyst's denials never depend on
// another's history — the paper's per-adversary compromise model.
// -max-sessions bounds admitted analysts (beyond it: 503 + Retry-After),
// -session-max-live bounds materialized engines (idle sessions are
// evicted down to their compact query log and rebuilt bit-identically by
// replay on return), -session-ttl expires idle sessions outright, and
// -session-shards sizes the session table's lock striping.
//
// With -auditors=prob the table is instead guarded by the probabilistic
// (λ, δ, γ, T) auditors of Section 3 — maxminprob on max/min, sumprob on
// sum — whose Monte Carlo decisions run on one shared scheduler: an
// assist pool sized by -mc-workers (0 = GOMAXPROCS) multiplexed across
// every session's concurrent decisions, with -mc-workers also capping
// each single decision's share. -mc-adaptive-alpha arms the adaptive
// sample budget (early stopping once a decision's outcome is
// statistically pinned). Decisions are bit-identical at any worker
// count for a fixed -prob-seed; /v1/metrics exports the mc_* and
// mcsched_* counters (samples per decision, early-exit savings,
// parallel speedup, assist-pool split).
//
// With -session-snapshot every session's query log is restored at
// startup (if the file exists) and written back on SIGINT/SIGTERM; the
// server reports ready on /readyz only after replay completes. Works for
// both auditor families (replay reconstructs Monte Carlo state exactly,
// given the same -prob-seed and parameters). The older -snapshot flag
// persists the default session's sum auditor trail directly
// (full-disclosure only) and is mutually exclusive with
// -session-snapshot.
//
// Shutdown is graceful: on the first SIGINT/SIGTERM the server stops
// accepting connections, drains in-flight requests (bounded by
// -shutdown-timeout), flushes the snapshots, and logs the final protocol
// and HTTP counters. A second signal aborts immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"io"
	"io/fs"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/auditlog"
	"queryaudit/internal/core"
	"queryaudit/internal/field"
	"queryaudit/internal/mcpar"
	"queryaudit/internal/metrics"
	"queryaudit/internal/persist"
	"queryaudit/internal/query"
	"queryaudit/internal/replica"
	"queryaudit/internal/server"
	"queryaudit/internal/session"
)

func main() {
	var (
		n           = flag.Int("n", 300, "number of records in the synthetic table")
		seed        = flag.Int64("seed", 1, "random seed for the synthetic table")
		addr        = flag.String("addr", ":8080", "listen address")
		snapshot    = flag.String("snapshot", "", "path for the default session's sum auditor trail (full auditors only; see -session-snapshot)")
		sessSnap    = flag.String("session-snapshot", "", "path for the per-analyst session logs (restored by replay at startup)")
		maxSessions = flag.Int("max-sessions", 4096, "maximum admitted analyst sessions (0 = unlimited; beyond it new analysts get 503)")
		maxLive     = flag.Int("session-max-live", 256, "maximum materialized session engines before LRU eviction to logs (0 = unlimited)")
		sessTTL     = flag.Duration("session-ttl", time.Hour, "idle time before a session (log included) expires (0 = never)")
		sessShards  = flag.Int("session-shards", 16, "lock shards for the session table")
		maxBody     = flag.Int64("max-body-bytes", 1<<20, "maximum POST body size in bytes")
		maxIndices  = flag.Int("max-indices", 100_000, "maximum indices per query set")
		noQIndex    = flag.Bool("no-query-index", false, "resolve SQL with the naive per-request dataset scan instead of the shared query index (baseline/debug)")
		queryCache  = flag.Int("query-cache-entries", 0, "statement/predicate memo size for the query resolver (0 = shared default, negative = unbounded)")
		perClient   = flag.Int("per-client-concurrency", 0, "maximum in-flight requests per client IP (0 = unlimited)")
		drain       = flag.Duration("shutdown-timeout", 10*time.Second, "graceful drain window on SIGINT/SIGTERM")
		quietAccess = flag.Bool("quiet", false, "disable per-request access logging")
		auditors    = flag.String("auditors", "full", "auditor family: full (exact disclosure auditors) or prob (Section 3 probabilistic auditors)")
		mcWorkers   = flag.Int("mc-workers", 0, "per-decision cap on the shared Monte Carlo scheduler for prob auditors (0 = GOMAXPROCS, 1 = sequential); the assist pool itself is sized to this cap and multiplexed across all sessions' decisions")
		mcAlpha     = flag.Float64("mc-adaptive-alpha", 0, "prob auditors: adaptive sample-budget error bound α (0 disables; e.g. 0.01 stops a decision early once its outcome is pinned with 99% confidence — still deterministic per seed)")
		probLambda  = flag.Float64("prob-lambda", 0.45, "prob auditors: tolerated posterior/prior drift λ in (0,1)")
		probGamma   = flag.Int("prob-gamma", 4, "prob auditors: partition intervals γ")
		probDelta   = flag.Float64("prob-delta", 0.2, "prob auditors: attacker winning-probability bound δ")
		probT       = flag.Int("prob-t", 12, "prob auditors: game rounds T")
		probSeed    = flag.Int64("prob-seed", 1, "prob auditors: Monte Carlo seed (decisions are reproducible per seed)")

		role          = flag.String("role", "standalone", "replication role: standalone (no replication), primary (ships its journal), or replica (read-only follower)")
		primaryURL    = flag.String("primary-url", "", "replica: base URL of the primary to stream from (e.g. http://127.0.0.1:8080)")
		replicaListen = flag.String("replica-listen", "", "replica: listen address override (defaults to -addr)")
		replRetention = flag.Int("replication-retention", 4096, "records retained in the replication journal tail (followers further behind resync from a snapshot)")
		replPollWait  = flag.Duration("replication-poll-wait", 10*time.Second, "how long a stream long-poll is held open (heartbeat interval when idle)")
		replMaxBatch  = flag.Int("replication-max-batch", 256, "maximum records per stream response")

		clusterConfig = flag.String("cluster-config", "", "fleet descriptor for sharded deployments (requires -shard-id; see docs/DEPLOYMENT.md §14)")
		shardID       = flag.String("shard-id", "", "this node's shard ID in the -cluster-config descriptor")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "auditserver ", log.LstdFlags|log.Lmsgprefix)
	if *snapshot != "" && *sessSnap != "" {
		logger.Fatalf("-snapshot and -session-snapshot are mutually exclusive (the session snapshot already carries the default session)")
	}
	cview, fleetDesc, err := clusterSetup(*clusterConfig, *shardID, *snapshot)
	if err != nil {
		logger.Fatalf("cluster: %v", err)
	}
	switch *role {
	case "standalone", "primary":
	case "replica":
		if *primaryURL == "" {
			logger.Fatalf("-role=replica requires -primary-url")
		}
		if *replicaListen != "" {
			*addr = *replicaListen
		}
	default:
		logger.Fatalf("unknown -role %q (want standalone, primary or replica)", *role)
	}
	if *role != "replica" && (*primaryURL != "" || *replicaListen != "") {
		logger.Fatalf("-primary-url and -replica-listen only apply to -role=replica")
	}

	// StackConfig is the shared construction path with the offline
	// pipeline (internal/auditlog): an auditreport run handed the same
	// family/N/seed/prob parameters builds a bit-identical stack, which
	// is what makes retrospective verdicts reproduce live ones.
	stack := auditlog.StackConfig{
		Family: *auditors, N: *n, Seed: *seed,
		Lambda: *probLambda, Gamma: *probGamma, Delta: *probDelta, T: *probT,
		MCWorkers: *mcWorkers, AdaptiveAlpha: *mcAlpha, ProbSeed: *probSeed,
	}
	if err := stack.Validate(); err != nil {
		logger.Fatalf("%v (unknown -auditors? want full or prob)", err)
	}
	if *auditors == "prob" && *snapshot != "" {
		logger.Fatalf("-snapshot only supports -auditors=full (use -session-snapshot, which replays either family)")
	}
	ds := stack.NewDataset()

	// One spec builds every session's engine: identical fresh auditors,
	// observers installed at construction (never mid-flight).
	reg := metrics.NewRegistry()
	spec := core.NewEngineSpec(ds)
	spec.SetObserver(metrics.NewEngineCollector(reg))
	spec.SetMCObserver(metrics.NewMCCollector(reg))
	spec.SetMCWorkers(*mcWorkers)
	if err := stack.RegisterAuditors(spec); err != nil {
		logger.Fatalf("auditors: %v", err)
	}
	if *auditors == "prob" {
		// One assist pool for the whole process: every session's decisions
		// multiplex over it, so concurrent analysts share the machine
		// instead of each fanning out their own goroutines.
		sched := mcpar.NewScheduler(*mcWorkers)
		sched.SetObserver(metrics.NewSchedCollector(reg))
		spec.SetMCScheduler(sched)
		logger.Printf("probabilistic auditors: lambda=%g gamma=%d delta=%g T=%d mc-workers=%d sched-pool=%d adaptive-alpha=%g (sensitive values normalized to [0,1])",
			*probLambda, *probGamma, *probDelta, *probT, *mcWorkers, sched.Size(), *mcAlpha)
	}

	mgr, err := session.NewManager(spec, session.Config{
		MaxSessions: *maxSessions,
		MaxLive:     *maxLive,
		TTL:         *sessTTL,
		Shards:      *sessShards,
		Observer:    metrics.NewSessionCollector(reg, *sessShards),
	})
	if err != nil {
		logger.Fatalf("sessions: %v", err)
	}
	defer mgr.Close()

	// Legacy single-analyst trail: restore the sum auditor directly and
	// pin it as the default session (a hand-restored engine is not
	// rebuildable from factories, so it must never be evicted).
	var sumAud *sumfull.Auditor[field.Elem61, field.GF61]
	if *snapshot != "" {
		sumAud = sumfull.New(*n)
		if a, ok := loadSnapshot(logger, *snapshot, *n); ok {
			sumAud = a
		}
		eng, err := spec.Build()
		if err != nil {
			logger.Fatalf("engine: %v", err)
		}
		eng.Use(sumAud, query.Sum)
		mgr.AdoptDefault(eng)
	}

	// Replication node: wired before the server so role gating and the
	// /v1/replication endpoints are in place for the first request. The
	// epoch is adopted from the session snapshot during restore (below),
	// so a restarted node rejoins with the fence it last held.
	var node *replica.Node
	if *role != "standalone" {
		r := replica.RolePrimary
		if *role == "replica" {
			r = replica.RoleReplica
		}
		node = replica.NewNode(mgr, r, 0, *primaryURL, replica.Config{
			Retention: *replRetention,
			PollWait:  *replPollWait,
			MaxBatch:  *replMaxBatch,
			Logger:    logger,
			Observer:  metrics.NewReplicaCollector(reg),
		})
		// A clustered pair boots at the epoch the descriptor last recorded
		// for its shard, so a restarted shard resumes its fence.
		if fleetDesc != nil {
			if sp, ok := fleetDesc.Shard(*shardID); ok && sp.Epoch > 0 {
				node.AdoptEpoch(sp.Epoch)
			}
		}
	}

	opts := server.Defaults()
	opts.MaxBodyBytes = *maxBody
	opts.MaxIndices = *maxIndices
	opts.PerClientConcurrency = *perClient
	opts.ShutdownTimeout = *drain
	opts.DisableQueryIndex = *noQIndex
	opts.QueryCacheEntries = *queryCache
	if !*quietAccess {
		opts.AccessLog = logger
	}
	srvOpts := []server.Option{
		server.WithOptions(opts), server.WithMetrics(reg), server.WithReadinessGate(),
	}
	if node != nil {
		srvOpts = append(srvOpts, server.WithReplication(node))
	}
	if cview != nil {
		srvOpts = append(srvOpts, server.WithCluster(cview))
		logger.Printf("cluster: serving shard %s of %d (descriptor %s)",
			cview.ShardID(), len(fleetDesc.Shards), *clusterConfig)
	}
	srv := server.NewWithSessions(mgr, "salary", srvOpts...)

	// First SIGINT/SIGTERM cancels ctx (graceful drain); a second signal
	// restores default handling, so it kills the process outright. A
	// failed session restore also cancels, via the same context.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithCancel(sigCtx)
	defer cancel()

	logger.Printf("%s", ds.Describe())
	ready := make(chan net.Addr, 1)
	go func() {
		a, ok := <-ready
		if !ok {
			return
		}
		// Restore session logs while the listener already accepts:
		// /healthz answers (liveness) but /readyz and the session-scoped
		// endpoints stay 503 until replay finishes. The "listening on"
		// line is the external go-signal (scripts and the e2e test key
		// on it), so it is only printed once the server is ready.
		if *sessSnap != "" {
			epoch, err := restoreSessions(logger, mgr, *sessSnap)
			if err != nil {
				logger.Printf("session restore failed: %v", err)
				cancel()
				return
			}
			if node != nil && epoch > 0 {
				node.AdoptEpoch(epoch)
				logger.Printf("replication: rejoined at persisted epoch %d", epoch)
			}
		}
		// A replica starts streaming before it reports ready: the follower
		// loop's first act is a full snapshot resync from the primary, so
		// by the time reads land the node serves current (or quarantined)
		// state, not whatever a stale local snapshot held.
		if node != nil && node.Role() == replica.RoleReplica {
			if err := node.StartFollower(ctx); err != nil {
				logger.Printf("replication: %v", err)
				cancel()
				return
			}
		}
		srv.MarkReady()
		if node != nil {
			logger.Printf("replication: role=%s epoch=%d primary=%q", node.Role(), node.Epoch(), node.PrimaryURL())
		}
		logger.Printf("listening on %s", a)
		logger.Printf("ready (sessions live=%d tracked=%d)", mgr.Live(), mgr.Tracked())
	}()
	err = srv.Run(ctx, *addr, ready)
	stop()
	if err != nil {
		logger.Printf("serve: %v", err)
	}

	// Post-drain: stop replication first so no shipped record lands
	// mid-snapshot, then flush the audit trails and report counters.
	if node != nil {
		node.StopFollower()
	}
	exit := 0
	if *snapshot != "" {
		if err := saveSnapshot(*snapshot, sumAud); err != nil {
			logger.Printf("snapshot save failed: %v", err)
			exit = 1
		} else {
			logger.Printf("audit trail saved to %s (rank %d)", *snapshot, sumAud.Rank())
		}
	}
	if *sessSnap != "" {
		logs := mgr.LogSnapshots()
		var epoch uint64
		if node != nil {
			epoch = node.Epoch()
		}
		if err := saveSessions(*sessSnap, logs, epoch); err != nil {
			logger.Printf("session snapshot save failed: %v", err)
			exit = 1
		} else {
			logger.Printf("session logs saved to %s (%d sessions, epoch %d)", *sessSnap, len(logs), epoch)
		}
	}
	st := mgr.Stats(session.DefaultAnalyst)
	logger.Printf("final stats: answered=%d denied=%d records=%d modifications=%d",
		st.Answered, st.Denied, st.Records, st.Modifications)
	snap := reg.Snapshot()
	logger.Printf("sessions: created=%d evicted=%d expired=%d rejected=%d replayed=%d live=%d",
		snap.Counters["sessions_created_total"], snap.Counters["sessions_evicted_total"],
		snap.Counters["sessions_expired_total"], snap.Counters["sessions_rejected_total"],
		snap.Counters["sessions_replayed_total"], snap.Gauges["sessions_live"])
	logger.Printf("http: requests=%d 2xx=%d 4xx=%d 5xx=%d throttled=%d",
		snap.Counters["http_requests_total"], snap.Counters["http_responses_total_2xx"],
		snap.Counters["http_responses_total_4xx"], snap.Counters["http_responses_total_5xx"],
		snap.Counters["http_throttled_total"])
	if h, ok := snap.Histograms["engine_decide_seconds"]; ok && h.Count > 0 {
		logger.Printf("engine: decisions=%d p50=%.4fs p99=%.4fs", h.Count, h.Quantile(0.5), h.Quantile(0.99))
	}
	if err != nil {
		exit = 1
	}
	os.Exit(exit)
}

// restoreSessions replays persisted session logs into the manager and
// returns the persisted replication epoch; a missing file is a clean
// first boot.
func restoreSessions(logger *log.Logger, mgr *session.Manager, path string) (uint64, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	snaps, epoch, err := persist.LoadSessionState(f)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if err := mgr.Restore(snaps); err != nil {
		return 0, err
	}
	logger.Printf("restored %d session logs from %s in %s", len(snaps), path, time.Since(start).Round(time.Millisecond))
	return epoch, nil
}

// saveSessions writes the session logs durably (temp file + fsync +
// atomic rename), tagged with the replication epoch the node last held.
func saveSessions(path string, logs []session.LogSnapshot, epoch uint64) error {
	return persist.WriteAtomic(path, func(w io.Writer) error {
		return persist.SaveSessionState(w, logs, epoch)
	})
}

// loadSnapshot restores the sum auditor from path when present and
// compatible; a missing file is a clean first boot.
func loadSnapshot(logger *log.Logger, path string, n int) (*sumfull.Auditor[field.Elem61, field.GF61], bool) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false
	}
	if err != nil {
		logger.Printf("snapshot: %v (starting fresh)", err)
		return nil, false
	}
	defer f.Close()
	restored, kind, err := persist.Load(f)
	if err != nil {
		logger.Printf("snapshot: %v (starting fresh)", err)
		return nil, false
	}
	a, ok := restored.(*sumfull.Auditor[field.Elem61, field.GF61])
	if !ok || kind != persist.KindSumFull || a.N() != n {
		logger.Printf("snapshot: kind %q / n mismatch (starting fresh)", kind)
		return nil, false
	}
	logger.Printf("restored sum audit trail from %s (rank %d)", path, a.Rank())
	return a, true
}

// saveSnapshot writes the trail durably (temp file + fsync + atomic
// rename), so a crash mid-write cannot truncate a previously good
// snapshot and a crash just after cannot lose the rename.
func saveSnapshot(path string, a *sumfull.Auditor[field.Elem61, field.GF61]) error {
	return persist.WriteAtomic(path, func(w io.Writer) error {
		return persist.Save(w, a)
	})
}
