// Command auditserver serves an audited statistical database over HTTP —
// the census-bureau deployment shape of the paper's introduction. It
// loads (or generates) a company-salary table, guards it with the
// full-disclosure auditors, and answers a JSON API:
//
//	auditserver -n 300 -addr :8080 [-snapshot state.json]
//
//	curl -s localhost:8080/v1/schema
//	curl -s -X POST localhost:8080/v1/query \
//	     -d '{"sql":"SELECT sum(salary) WHERE age BETWEEN 30 AND 40"}'
//	curl -s -X POST localhost:8080/v1/queryset \
//	     -d '{"kind":"max","indices":[0,1,2,3]}'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/v1/metrics
//	curl -s localhost:8080/healthz
//
// With -auditors=prob the table is instead guarded by the probabilistic
// (λ, δ, γ, T) auditors of Section 3 — maxminprob on max/min, sumprob on
// sum — whose per-decision Monte Carlo fans out across -mc-workers
// workers (0 = GOMAXPROCS). Decisions are bit-identical at any worker
// count for a fixed -prob-seed; /v1/metrics exports the mc_* counters
// (samples per decision, early-exit savings, parallel speedup).
//
// With -snapshot the sum auditor's trail is loaded at startup (if the
// file exists) and written back on SIGINT/SIGTERM, so restarting the
// service does not forget what it already revealed. Snapshots apply to
// the full-disclosure auditors only.
//
// Shutdown is graceful: on the first SIGINT/SIGTERM the server stops
// accepting connections, drains in-flight requests (bounded by
// -shutdown-timeout), flushes the audit-trail snapshot, and logs the
// final protocol and HTTP counters. A second signal aborts immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"io/fs"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"queryaudit/internal/audit/maxminfull"
	"queryaudit/internal/audit/maxminprob"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/audit/sumprob"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/field"
	"queryaudit/internal/metrics"
	"queryaudit/internal/persist"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/server"
)

func main() {
	var (
		n           = flag.Int("n", 300, "number of records in the synthetic table")
		seed        = flag.Int64("seed", 1, "random seed for the synthetic table")
		addr        = flag.String("addr", ":8080", "listen address")
		snapshot    = flag.String("snapshot", "", "path for the sum auditor's persisted trail")
		maxBody     = flag.Int64("max-body-bytes", 1<<20, "maximum POST body size in bytes")
		maxIndices  = flag.Int("max-indices", 100_000, "maximum indices per query set")
		perClient   = flag.Int("per-client-concurrency", 0, "maximum in-flight requests per client IP (0 = unlimited)")
		drain       = flag.Duration("shutdown-timeout", 10*time.Second, "graceful drain window on SIGINT/SIGTERM")
		quietAccess = flag.Bool("quiet", false, "disable per-request access logging")
		auditors    = flag.String("auditors", "full", "auditor family: full (exact disclosure auditors) or prob (Section 3 probabilistic auditors)")
		mcWorkers   = flag.Int("mc-workers", 0, "parallel Monte Carlo workers per decision for prob auditors (0 = GOMAXPROCS, 1 = sequential)")
		probLambda  = flag.Float64("prob-lambda", 0.45, "prob auditors: tolerated posterior/prior drift λ in (0,1)")
		probGamma   = flag.Int("prob-gamma", 4, "prob auditors: partition intervals γ")
		probDelta   = flag.Float64("prob-delta", 0.2, "prob auditors: attacker winning-probability bound δ")
		probT       = flag.Int("prob-t", 12, "prob auditors: game rounds T")
		probSeed    = flag.Int64("prob-seed", 1, "prob auditors: Monte Carlo seed (decisions are reproducible per seed)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "auditserver ", log.LstdFlags|log.Lmsgprefix)

	cfg := dataset.DefaultCompanyConfig(*n)
	if *auditors == "prob" {
		// The Section 3 auditors implement the paper's normalized data
		// model: sensitive values i.i.d. uniform on [0,1], which is also
		// the range their interval partition and polytope box protect.
		// Feeding raw salaries would make every recorded answer
		// inconsistent with the [0,1] synopsis.
		cfg.MinSalary, cfg.MaxSalary = 0, 1
	}
	ds := dataset.GenerateCompany(randx.New(*seed), cfg)
	eng := core.NewEngine(ds)

	var sumAud *sumfull.Auditor[field.Elem61, field.GF61]
	switch *auditors {
	case "full":
		sumAud = sumfull.New(*n)
		if *snapshot != "" {
			if a, ok := loadSnapshot(logger, *snapshot, *n); ok {
				sumAud = a
			}
		}
		eng.Use(sumAud, query.Sum)
		eng.Use(maxminfull.New(*n), query.Max, query.Min)
	case "prob":
		if *snapshot != "" {
			logger.Fatalf("-snapshot only supports -auditors=full")
		}
		mmAud, err := maxminprob.New(*n, maxminprob.Params{
			Lambda: *probLambda, Gamma: *probGamma, Delta: *probDelta, T: *probT,
			Workers: *mcWorkers, Seed: *probSeed,
		})
		if err != nil {
			logger.Fatalf("maxminprob: %v", err)
		}
		sAud, err := sumprob.New(*n, sumprob.Params{
			Lambda: *probLambda, Gamma: *probGamma, Delta: *probDelta, T: *probT,
			Workers: *mcWorkers, Seed: *probSeed + 1,
		})
		if err != nil {
			logger.Fatalf("sumprob: %v", err)
		}
		eng.Use(mmAud, query.Max, query.Min)
		eng.Use(sAud, query.Sum)
		logger.Printf("probabilistic auditors: lambda=%g gamma=%d delta=%g T=%d mc-workers=%d (sensitive values normalized to [0,1])",
			*probLambda, *probGamma, *probDelta, *probT, *mcWorkers)
	default:
		logger.Fatalf("unknown -auditors %q (want full or prob)", *auditors)
	}

	opts := server.Defaults()
	opts.MaxBodyBytes = *maxBody
	opts.MaxIndices = *maxIndices
	opts.PerClientConcurrency = *perClient
	opts.ShutdownTimeout = *drain
	opts.MCWorkers = *mcWorkers
	if !*quietAccess {
		opts.AccessLog = logger
	}
	reg := metrics.NewRegistry()
	sdb := core.NewSDB(eng, "salary")
	srv := server.New(sdb, server.WithOptions(opts), server.WithMetrics(reg))

	// First SIGINT/SIGTERM cancels ctx (graceful drain); a second signal
	// restores default handling, so it kills the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logger.Printf("%s", ds.Describe())
	ready := make(chan net.Addr, 1)
	go func() {
		a := <-ready
		logger.Printf("listening on %s", a)
	}()
	err := srv.Run(ctx, *addr, ready)
	stop()
	if err != nil {
		logger.Printf("serve: %v", err)
	}

	// Post-drain: flush the audit trail, then report final counters.
	exit := 0
	if *snapshot != "" {
		if err := saveSnapshot(*snapshot, sumAud); err != nil {
			logger.Printf("snapshot save failed: %v", err)
			exit = 1
		} else {
			logger.Printf("audit trail saved to %s (rank %d)", *snapshot, sumAud.Rank())
		}
	}
	st := eng.Stats()
	logger.Printf("final stats: answered=%d denied=%d records=%d modifications=%d",
		st.Answered, st.Denied, st.Records, st.Modifications)
	snap := reg.Snapshot()
	logger.Printf("http: requests=%d 2xx=%d 4xx=%d 5xx=%d throttled=%d",
		snap.Counters["http_requests_total"], snap.Counters["http_responses_total_2xx"],
		snap.Counters["http_responses_total_4xx"], snap.Counters["http_responses_total_5xx"],
		snap.Counters["http_throttled_total"])
	if h, ok := snap.Histograms["engine_decide_seconds"]; ok && h.Count > 0 {
		logger.Printf("engine: decisions=%d p50=%.4fs p99=%.4fs", h.Count, h.Quantile(0.5), h.Quantile(0.99))
	}
	if err != nil {
		exit = 1
	}
	os.Exit(exit)
}

// loadSnapshot restores the sum auditor from path when present and
// compatible; a missing file is a clean first boot.
func loadSnapshot(logger *log.Logger, path string, n int) (*sumfull.Auditor[field.Elem61, field.GF61], bool) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false
	}
	if err != nil {
		logger.Printf("snapshot: %v (starting fresh)", err)
		return nil, false
	}
	defer f.Close()
	restored, kind, err := persist.Load(f)
	if err != nil {
		logger.Printf("snapshot: %v (starting fresh)", err)
		return nil, false
	}
	a, ok := restored.(*sumfull.Auditor[field.Elem61, field.GF61])
	if !ok || kind != persist.KindSumFull || a.N() != n {
		logger.Printf("snapshot: kind %q / n mismatch (starting fresh)", kind)
		return nil, false
	}
	logger.Printf("restored sum audit trail from %s (rank %d)", path, a.Rank())
	return a, true
}

// saveSnapshot writes the trail atomically (temp file + rename), so a
// crash mid-write cannot truncate a previously good snapshot.
func saveSnapshot(path string, a *sumfull.Auditor[field.Elem61, field.GF61]) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := persist.Save(f, a); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

