// Command auditserver serves an audited statistical database over HTTP —
// the census-bureau deployment shape of the paper's introduction. It
// loads (or generates) a company-salary table, guards it with the
// full-disclosure auditors, and answers a JSON API:
//
//	auditserver -n 300 -addr :8080 [-snapshot state.json]
//
//	curl -s localhost:8080/v1/schema
//	curl -s -X POST localhost:8080/v1/query \
//	     -d '{"sql":"SELECT sum(salary) WHERE age BETWEEN 30 AND 40"}'
//	curl -s -X POST localhost:8080/v1/queryset \
//	     -d '{"kind":"max","indices":[0,1,2,3]}'
//	curl -s localhost:8080/v1/stats
//
// With -snapshot the sum auditor's trail is loaded at startup (if the
// file exists) and written back on SIGINT/SIGTERM, so restarting the
// service does not forget what it already revealed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"queryaudit/internal/audit/maxminfull"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/field"
	"queryaudit/internal/persist"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/server"
)

func main() {
	var (
		n        = flag.Int("n", 300, "number of records in the synthetic table")
		seed     = flag.Int64("seed", 1, "random seed for the synthetic table")
		addr     = flag.String("addr", ":8080", "listen address")
		snapshot = flag.String("snapshot", "", "path for the sum auditor's persisted trail")
	)
	flag.Parse()

	ds := dataset.GenerateCompany(randx.New(*seed), dataset.DefaultCompanyConfig(*n))
	eng := core.NewEngine(ds)

	sumAud := sumfull.New(*n)
	if *snapshot != "" {
		if a, ok := loadSnapshot(*snapshot, *n); ok {
			sumAud = a
		}
	}
	eng.Use(sumAud, query.Sum)
	eng.Use(maxminfull.New(*n), query.Max, query.Min)

	sdb := core.NewSDB(eng, "salary")
	srv := server.New(sdb)

	if *snapshot != "" {
		go saveOnSignal(*snapshot, sumAud)
	}
	fmt.Printf("auditserver: %s\n", ds.Describe())
	if err := srv.ListenAndServe(*addr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// loadSnapshot restores the sum auditor from path when present and
// compatible; a missing file is a clean first boot.
func loadSnapshot(path string, n int) (*sumfull.Auditor[field.Elem61, field.GF61], bool) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "snapshot: %v (starting fresh)\n", err)
		return nil, false
	}
	defer f.Close()
	restored, kind, err := persist.Load(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snapshot: %v (starting fresh)\n", err)
		return nil, false
	}
	a, ok := restored.(*sumfull.Auditor[field.Elem61, field.GF61])
	if !ok || kind != persist.KindSumFull || a.N() != n {
		fmt.Fprintf(os.Stderr, "snapshot: kind %q / n mismatch (starting fresh)\n", kind)
		return nil, false
	}
	fmt.Printf("auditserver: restored sum audit trail from %s (rank %d)\n", path, a.Rank())
	return a, true
}

// saveOnSignal writes the trail on shutdown signals, then exits.
func saveOnSignal(path string, a *sumfull.Auditor[field.Elem61, field.GF61]) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	f, err := os.Create(path)
	if err == nil {
		err = persist.Save(f, a)
		f.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "snapshot save failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("auditserver: audit trail saved to %s\n", path)
	os.Exit(0)
}
