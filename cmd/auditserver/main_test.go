package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestGracefulShutdownWritesSnapshot is an end-to-end check of the
// serving path: build the binary, run it, issue a query, send SIGTERM,
// and verify the process drains, writes its audit-trail snapshot, and
// exits 0.
func TestGracefulShutdownWritesSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping e2e binary test in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "auditserver")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("build: %v", err)
	}

	snap := filepath.Join(dir, "state.json")
	cmd := exec.Command(bin, "-n", "30", "-addr", "127.0.0.1:0", "-snapshot", snap, "-quiet")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Scan stderr for the bound address; keep draining afterwards so the
	// child never blocks on a full pipe.
	addrCh := make(chan string, 1)
	logDone := make(chan string, 1)
	go func() {
		var buf strings.Builder
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			buf.WriteString(line + "\n")
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
		logDone <- buf.String()
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("server never reported its listen address")
	}

	// Answer one query so the snapshot has a non-trivial trail.
	body := bytes.NewReader([]byte(`{"kind":"sum","indices":[0,1,2,3,4]}`))
	resp, err := http.Post("http://"+addr+"/v1/queryset", "application/json", body)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if out["denied"] == true {
		t.Fatalf("fresh sum denied: %v", out)
	}
	// healthz answers too.
	hr, err := http.Get("http://" + addr + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, hr)
	}
	hr.Body.Close()

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Drain stderr to EOF before calling Wait: Wait closes the pipe as
	// soon as the child exits, and calling it concurrently with the
	// scanner can discard the final (snapshot/stats) log lines.
	var logs string
	select {
	case logs = <-logDone:
	case <-time.After(15 * time.Second):
		t.Fatal("process did not exit after SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("process exited with %v\nlog:\n%s", err, logs)
	}
	if !strings.Contains(logs, "audit trail saved") {
		t.Fatalf("no snapshot-save log line:\n%s", logs)
	}
	if !strings.Contains(logs, "final stats: answered=1") {
		t.Fatalf("final stats missing or wrong:\n%s", logs)
	}
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	if !json.Valid(data) {
		t.Fatal("snapshot is not valid JSON")
	}
}
