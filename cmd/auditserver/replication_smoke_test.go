package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// proc is one auditserver child process under test.
type proc struct {
	cmd  *exec.Cmd
	addr string
	logs chan string
}

// startServer launches the binary with the given extra flags and waits
// for its "listening on" line.
func startServer(t *testing.T, bin string, extra ...string) *proc {
	t.Helper()
	args := append([]string{"-n", "30", "-addr", "127.0.0.1:0", "-quiet"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	addrCh := make(chan string, 1)
	logDone := make(chan string, 1)
	go func() {
		var buf strings.Builder
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			buf.WriteString(line + "\n")
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
		logDone <- buf.String()
	}()

	select {
	case addr := <-addrCh:
		return &proc{cmd: cmd, addr: addr, logs: logDone}
	case <-time.After(20 * time.Second):
		t.Fatalf("server (%v) never reported its listen address", extra)
		return nil
	}
}

func (p *proc) url(path string) string { return "http://" + p.addr + path }

// getJSON decodes a GET response into out, returning the status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

type replStatus struct {
	Role    string `json:"role"`
	Epoch   uint64 `json:"epoch"`
	Head    uint64 `json:"head"`
	Applied uint64 `json:"applied"`
}

type sessionsView struct {
	Sessions []struct {
		Analyst string `json:"analyst"`
		Seq     uint64 `json:"seq"`
		Digest  string `json:"digest"`
	} `json:"sessions"`
}

// transcript flattens a sessions listing to comparable analyst->seq/digest.
func transcript(t *testing.T, base string) map[string]string {
	t.Helper()
	var v sessionsView
	if code := getJSON(t, base+"/v1/sessions", &v); code != http.StatusOK {
		t.Fatalf("GET /v1/sessions: status %d", code)
	}
	out := map[string]string{}
	for _, s := range v.Sessions {
		out[s.Analyst] = fmt.Sprintf("%d:%s", s.Seq, s.Digest)
	}
	return out
}

// ask posts one queryset as the given analyst; denials are fine, only
// transport failures are fatal.
func ask(t *testing.T, base, analyst string, indices []int) {
	t.Helper()
	raw, _ := json.Marshal(map[string]any{"kind": "sum", "indices": indices})
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/queryset", bytes.NewReader(raw))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Analyst-ID", analyst)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("query as %s: %v", analyst, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query as %s: status %d", analyst, resp.StatusCode)
	}
}

// TestReplicationSmoke is the end-to-end failover drill (`make
// replication-smoke`): two separate OS processes, 50 queries into the
// primary, transcript diff on the replica, SIGKILL the primary, promote
// the replica over HTTP, and keep serving writes — the §2.2
// simulatability argument exercised across real process boundaries.
func TestReplicationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping e2e binary test in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "auditserver")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("build: %v", err)
	}

	primary := startServer(t, bin, "-role", "primary")
	replica := startServer(t, bin,
		"-role", "replica",
		"-primary-url", "http://"+primary.addr,
		"-replication-poll-wait", "500ms",
	)

	// 50 queries across three analysts; random-ish but deterministic sets.
	analysts := []string{"alice", "bob", "carol"}
	for i := 0; i < 50; i++ {
		lo, hi := i%20, i%20+3+i%7
		set := make([]int, 0, hi-lo)
		for j := lo; j < hi; j++ {
			set = append(set, j)
		}
		ask(t, primary.url(""), analysts[i%len(analysts)], set)
	}

	// The replica must converge on the primary's journal head.
	var pst replStatus
	if code := getJSON(t, primary.url("/v1/replication/status"), &pst); code != http.StatusOK {
		t.Fatalf("primary status: %d", code)
	}
	if pst.Role != "primary" || pst.Head == 0 {
		t.Fatalf("primary status %+v", pst)
	}
	deadline := time.Now().Add(15 * time.Second)
	var rst replStatus
	for {
		getJSON(t, replica.url("/v1/replication/status"), &rst)
		if rst.Applied >= pst.Head {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at applied=%d, primary head=%d", rst.Applied, pst.Head)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Transcript diff: every session's (seq, digest) must be identical.
	want := transcript(t, primary.url(""))
	got := transcript(t, replica.url(""))
	if len(want) == 0 {
		t.Fatal("primary reports no sessions")
	}
	for analyst, pos := range want {
		if got[analyst] != pos {
			t.Fatalf("transcript diverged for %s: primary %s, replica %s", analyst, pos, got[analyst])
		}
	}

	// Writes on the replica are fenced while the primary lives.
	raw, _ := json.Marshal(map[string]any{"kind": "sum", "indices": []int{0, 1, 2}})
	resp, err := http.Post(replica.url("/v1/queryset"), "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("write on replica: status %d, want 421", resp.StatusCode)
	}

	// Hard-kill the primary (no graceful drain) and promote the replica.
	primary.cmd.Process.Kill()
	primary.cmd.Wait()
	resp, err = http.Post(replica.url("/v1/replication/promote"), "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var promoted struct {
		Role  string `json:"role"`
		Epoch uint64 `json:"epoch"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&promoted)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || promoted.Role != "primary" || promoted.Epoch == 0 {
		t.Fatalf("promote: status %d, %+v", resp.StatusCode, promoted)
	}

	// The promoted node serves the remaining traffic; transcripts only
	// ever extend the replicated prefix.
	for i := 0; i < 10; i++ {
		ask(t, replica.url(""), analysts[i%len(analysts)], []int{i, i + 1, i + 2, i + 3})
	}
	after := transcript(t, replica.url(""))
	for analyst, pos := range want {
		var beforeSeq, afterSeq uint64
		fmt.Sscanf(pos, "%d:", &beforeSeq)
		fmt.Sscanf(after[analyst], "%d:", &afterSeq)
		if afterSeq < beforeSeq {
			t.Fatalf("promoted transcript for %s regressed: %s -> %s", analyst, pos, after[analyst])
		}
	}
}
