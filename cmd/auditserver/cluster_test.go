package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFleetFile(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const testFleetDoc = `{
	"shards": [
		{"id": "shard-a", "primary": "http://127.0.0.1:9001", "replica": "http://127.0.0.1:9002", "epoch": 2},
		{"id": "shard-b", "primary": "http://127.0.0.1:9003"}
	]
}`

// TestClusterSetup pins the boot-time flag validation: every
// misconfiguration that would let a node serve analysts it does not own
// (or pin a session that cannot migrate) must fail fast with a message
// naming the offending flag, not surface as 421s or forked timelines
// at request time.
func TestClusterSetup(t *testing.T) {
	good := writeFleetFile(t, testFleetDoc)
	cases := []struct {
		name                    string
		config, shard, snapshot string
		wantErr                 string // "" = success expected
	}{
		{name: "unclustered", config: "", shard: ""},
		{name: "clustered", config: good, shard: "shard-a"},
		{name: "shard-id without config", shard: "shard-a", wantErr: "-shard-id requires -cluster-config"},
		{name: "config without shard-id", config: good, wantErr: "requires -shard-id"},
		{name: "legacy snapshot mode", config: good, shard: "shard-a", snapshot: "/tmp/snap.json",
			wantErr: "incompatible with the legacy single-session -snapshot"},
		{name: "shard absent from descriptor", config: good, shard: "shard-z",
			wantErr: "shard-a, shard-b"}, // error must list the descriptor's shards
		{name: "descriptor unreadable", config: filepath.Join(t.TempDir(), "missing.json"), shard: "shard-a",
			wantErr: "missing.json"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			view, fleet, err := clusterSetup(tc.config, tc.shard, tc.snapshot)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if tc.config == "" {
					if view != nil || fleet != nil {
						t.Fatal("unclustered setup returned a view")
					}
					return
				}
				if view == nil || fleet == nil {
					t.Fatal("clustered setup returned no view")
				}
				if view.ShardID() != tc.shard {
					t.Fatalf("view shard = %s, want %s", view.ShardID(), tc.shard)
				}
				sp, ok := fleet.Shard(tc.shard)
				if !ok || sp.Epoch != 2 {
					t.Fatalf("fleet shard %s = %+v, %v", tc.shard, sp, ok)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
