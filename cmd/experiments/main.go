// Command experiments regenerates every figure of the paper's evaluation
// (Section 6) and the quantitative claims of Sections 2.1, 3 and 5 as
// plain-text series.
//
// Usage:
//
//	experiments -all            # everything, paper-scale (minutes)
//	experiments -all -quick     # everything, reduced scale (seconds)
//	experiments -fig 1          # a single figure (1, 2 or 3)
//	experiments -thm67          # Theorem 6/7 bound check
//	experiments -djl            # Section 2.1 baseline
//	experiments -attack         # Section 2.2 denial-leakage attack
//	experiments -maxprob        # Section 3.1 auditor game
//	experiments -maxminfull     # Section 4 auditor denial curve
//	experiments -maxminprob     # Section 3.2 auditor demo
package main

import (
	"flag"
	"fmt"
	"os"

	"queryaudit/internal/experiments"
)

func main() {
	var (
		all        = flag.Bool("all", false, "run every experiment")
		quick      = flag.Bool("quick", false, "reduced scale for a fast pass")
		fig        = flag.Int("fig", 0, "regenerate figure 1, 2 or 3")
		thm67      = flag.Bool("thm67", false, "check the Theorem 6/7 bounds")
		djl        = flag.Bool("djl", false, "Section 2.1 DJL baseline")
		attack     = flag.Bool("attack", false, "Section 2.2 denial-leakage attack")
		maxProb    = flag.Bool("maxprob", false, "Section 3.1 probabilistic max auditor")
		maxMinFull = flag.Bool("maxminfull", false, "Section 4 max-and-min auditor curve")
		maxMinProb = flag.Bool("maxminprob", false, "Section 3.2 probabilistic max-and-min auditor")
		simPrice   = flag.Bool("simprice", false, "Section 7: price of simulatability")
		collusion  = flag.Bool("collusion", false, "Section 7: collusion, separate vs pooled auditing")
		crossAgg   = flag.Bool("crossagg", false, "Section 4: split vs joint max/min auditing leak")
		maxUtility = flag.Bool("maxutility", false, "max-auditing utility vs database size (open problem, measured)")
		skew       = flag.Bool("skew", false, "Section 5 conjecture: clustered vs uniform workload utility")
		probSweep  = flag.Bool("probsweep", false, "Section 3.1: (λ,γ) utility/privacy trade-off surface")
		seed       = flag.Int64("seed", 1, "base random seed")
	)
	flag.Parse()

	any := *fig != 0 || *thm67 || *djl || *attack || *maxProb || *maxMinFull || *maxMinProb || *simPrice || *collusion || *crossAgg || *maxUtility || *skew || *probSweep
	if !any && !*all {
		flag.Usage()
		os.Exit(2)
	}

	if *all || *fig == 1 {
		runFig1(*quick, *seed)
	}
	if *all || *fig == 2 {
		runFig2(*quick, *seed)
	}
	if *all || *fig == 3 {
		runFig3(*quick, *seed)
	}
	if *all || *thm67 {
		runThm67(*quick, *seed)
	}
	if *all || *djl {
		runDJL(*quick, *seed)
	}
	if *all || *attack {
		runAttack(*quick, *seed)
	}
	if *all || *maxProb {
		runMaxProb(*quick, *seed)
	}
	if *all || *maxMinFull {
		runMaxMinFull(*quick, *seed)
	}
	if *all || *maxMinProb {
		runMaxMinProb(*quick, *seed)
	}
	if *all || *simPrice {
		runSimPrice(*quick, *seed)
	}
	if *all || *collusion {
		runCollusion(*quick, *seed)
	}
	if *all || *crossAgg {
		runCrossAgg(*quick, *seed)
	}
	if *all || *maxUtility {
		runMaxUtility(*quick, *seed)
	}
	if *all || *skew {
		runSkew(*quick, *seed)
	}
	if *all || *probSweep {
		runProbSweep(*quick, *seed)
	}
}

func runProbSweep(quick bool, seed int64) {
	base := experiments.DefaultMaxProb()
	base.Seed = seed
	if quick {
		base.Trials, base.Rounds = 6, 8
	}
	fmt.Println("# Section 3.1: (λ, γ) utility/privacy trade-off (δ=0.2)")
	fmt.Printf("%8s %6s %10s %8s\n", "λ", "γ", "answered", "breach")
	for _, r := range experiments.MaxProbParamSweep([]float64{0.3, 0.45, 0.6}, []int{4, 8}, base) {
		fmt.Printf("%8.2f %6d %10.3f %8.3f\n", r.Lambda, r.Gamma, r.AnsweredFrac, r.BreachFrac)
	}
	fmt.Println()
}

func runSkew(quick bool, seed int64) {
	n, queries, trials := 300, 800, 10
	if quick {
		n, queries, trials = 150, 400, 6
	}
	r := experiments.SkewedWorkload(n, queries, trials, 20, seed)
	fmt.Println("# Section 5 conjecture: workload skew and utility (sum auditing)")
	fmt.Printf("long-run P(denial): uniform %.3f   clustered %.3f\n\n", r.UniformTail, r.ClusteredTail)
}

func runMaxUtility(quick bool, seed int64) {
	sizes := []int{100, 200, 400, 800}
	trials := 6
	if quick {
		sizes, trials = []int{100, 200, 400}, 4
	}
	fmt.Println("# Max-auditing utility vs database size (paper: open problem)")
	fmt.Printf("%8s %18s %18s\n", "n", "plateau (dup[21])", "plateau (nodup §4)")
	for _, r := range experiments.MaxUtilitySweep(sizes, 300, trials, seed) {
		fmt.Printf("%8d %18.3f %18.3f\n", r.N, r.PlateauDup, r.PlateauNo)
	}
	fmt.Println()
}

func runCrossAgg(quick bool, seed int64) {
	cfg := experiments.DefaultCrossAggregate()
	cfg.Seed = seed
	if quick {
		cfg.N, cfg.Queries, cfg.Trials = 30, 50, 15
	}
	r := experiments.CrossAggregate(cfg)
	fmt.Println("# Section 4: why max and min must be audited jointly")
	fmt.Printf("split max+min auditors: %d/%d trials leak a value, %.0f answers/trial\n",
		r.SplitBreaches, r.Trials, r.SplitAnswered)
	fmt.Printf("joint §4 auditor:       %d/%d trials leak,        %.0f answers/trial\n\n",
		r.JointBreaches, r.Trials, r.JointAnswered)
}

func runSimPrice(quick bool, seed int64) {
	cfg := experiments.DefaultSimulatabilityPrice()
	cfg.Seed = seed
	if quick {
		cfg.N, cfg.Queries, cfg.Trials = 100, 250, 4
	}
	r := experiments.SimulatabilityPrice(cfg)
	fmt.Println("# Section 7: price of simulatability (max auditing)")
	fmt.Printf("posed=%d denied=%d conservative=%d  →  %.1f%% of denials would have been safe to answer\n\n",
		r.Posed, r.Denied, r.Conservative, 100*r.ConservativeFrac())
}

func runCollusion(quick bool, seed int64) {
	cfg := experiments.DefaultCollusion()
	cfg.Seed = seed
	if quick {
		cfg.N, cfg.Queries, cfg.Trials = 60, 80, 10
	}
	r := experiments.Collusion(cfg)
	fmt.Println("# Section 7: collusion — per-user vs pooled sum auditing")
	fmt.Printf("separate auditors: %d/%d trials breached, %.0f answers/trial\n",
		r.SeparateBreaches, r.Trials, r.SeparateAnswered)
	fmt.Printf("pooled auditor:    %d/%d trials breached, %.0f answers/trial\n\n",
		r.PooledBreaches, r.Trials, r.PooledAnswered)
}

func runFig1(quick bool, seed int64) {
	cfg := experiments.DefaultFig1()
	cfg.Seed = seed
	if quick {
		cfg.Sizes = []int{50, 100, 200, 400}
		cfg.Trials = 8
	}
	fmt.Print(experiments.FormatFig1(experiments.Fig1(cfg)))
	fmt.Println()
}

func runFig2(quick bool, seed int64) {
	cfg := experiments.DefaultFig2()
	cfg.Seed = seed
	if quick {
		cfg.N, cfg.Queries, cfg.Trials, cfg.Stride = 150, 400, 8, 20
	}
	fmt.Printf("# Figure 2: probability of denial for sum queries (n=%d)\n", cfg.N)
	for _, c := range experiments.Fig2(cfg) {
		fmt.Println(c.Format())
	}
}

func runFig3(quick bool, seed int64) {
	cfg := experiments.DefaultFig3()
	cfg.Seed = seed
	if quick {
		cfg.N, cfg.Queries, cfg.Trials, cfg.Stride = 150, 500, 6, 20
	}
	fmt.Printf("# Figure 3: probability of denial for max queries (n=%d)\n", cfg.N)
	c := experiments.Fig3(cfg) // duplicates-allowed [21] auditor, as in the paper
	fmt.Println(c.Format())
	fmt.Printf("# long-run denial probability (last 30%%): %.3f (paper: ≈0.68)\n\n", c.Tail(0.3))

	cfg.AllowDuplicates = false
	c2 := experiments.Fig3(cfg)
	fmt.Println("# same workload through this paper's no-duplicates Section 4 auditor:")
	fmt.Printf("# long-run denial probability (last 30%%): %.3f (more conservative, as §4 predicts)\n\n", c2.Tail(0.3))
}

func runThm67(quick bool, seed int64) {
	cfg := experiments.DefaultFig1()
	cfg.Seed = seed
	if quick {
		cfg.Sizes = []int{50, 100, 200}
		cfg.Trials = 8
	}
	fmt.Println("# Theorems 6/7: n/4 ≤ E[T_denial] ≤ n + lg n + 1")
	for _, r := range experiments.UtilityBounds(cfg) {
		status := "OK"
		if !r.Holds {
			status = "VIOLATED"
		}
		fmt.Printf("n=%5d  E[T]=%8.1f  in [%.1f, %.1f]  %s\n", r.N, r.MeanTDen, r.Lower, r.Upper, status)
	}
	fmt.Println()
}

func runDJL(quick bool, seed int64) {
	n, c, trials := 500, 5, 10
	if quick {
		n, trials = 200, 5
	}
	r := experiments.DJLBaseline(n, c, trials, seed)
	fmt.Println("# Section 2.1: Dobkin–Jones–Lipton size/overlap baseline")
	fmt.Printf("n=%d k=%d r=%d  theoretical budget=%d  answered(random)=%d  answered(disjoint)=%d\n\n",
		r.N, r.K, r.R, r.Budget, r.AnsweredRandom, r.AnsweredDisjoint)
}

func runAttack(quick bool, seed int64) {
	n, maxQ := 40, 4000
	if quick {
		n, maxQ = 20, 1000
	}
	r := experiments.AttackDemo(n, maxQ, seed)
	fmt.Println("# Section 2.2: denial-leakage attack (max queries)")
	fmt.Printf("naive auditor:        %d/%d values correctly extracted (%d queries, %d denials)\n",
		r.Naive.Correct, n, r.Naive.Queries, r.Naive.Denials)
	fmt.Printf("simulatable auditor:  %d/%d values correctly extracted (%d queries, %d denials)\n\n",
		r.Simulatable.Correct, n, r.Simulatable.Queries, r.Simulatable.Denials)
}

func runMaxProb(quick bool, seed int64) {
	cfg := experiments.DefaultMaxProb()
	cfg.Seed = seed
	if quick {
		cfg.Trials, cfg.Rounds = 6, 8
	}
	r := experiments.MaxProb(cfg)
	fmt.Println("# Section 3.1: probabilistic max auditor — (λ,δ,γ,T) game")
	fmt.Printf("answered fraction: %.3f   empirical breach fraction: %.3f (δ=%.2f)\n\n",
		r.AnsweredFrac, r.BreachFrac, r.Delta)
}

func runMaxMinFull(quick bool, seed int64) {
	cfg := experiments.DefaultMaxMinFull()
	cfg.Seed = seed
	if quick {
		cfg.N, cfg.Queries, cfg.Trials = 100, 200, 4
	}
	fmt.Printf("# Section 4: max-and-min full-disclosure auditor (n=%d)\n", cfg.N)
	c := experiments.MaxMinFull(cfg)
	fmt.Println(c.Format())
	fmt.Printf("# long-run denial probability: %.3f\n\n", c.Tail(0.3))
}

func runMaxMinProb(quick bool, seed int64) {
	cfg := experiments.DefaultMaxMinProb()
	cfg.Seed = seed
	if quick {
		cfg.N, cfg.Trials, cfg.Rounds = 24, 3, 5
	}
	r := experiments.MaxMinProb(cfg)
	fmt.Println("# Section 3.2: probabilistic max-and-min auditor")
	fmt.Printf("answered fraction: %.3f over %d queries\n\n", r.AnsweredFrac, r.Posed)
}
