// Command audittrace replays a session recorded by `auditdb -record`
// against a freshly built engine and reports whether every decision (and
// answer, when the table is regenerated identically) reproduces — the
// upgrade-verification workflow: record under the old build, replay
// under the new one, ship only on a clean report.
//
// Usage:
//
//	audittrace -trace session.jsonl [-n 300] [-seed 1] [-mode full]
//
// Flags must match the auditdb invocation that produced the trace.
package main

import (
	"flag"
	"fmt"
	"os"

	"queryaudit/internal/audit/maxfull"
	"queryaudit/internal/audit/maxminfull"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/trace"
)

func main() {
	var (
		path = flag.String("trace", "", "JSONL trace file to replay (required)")
		n    = flag.Int("n", 300, "number of records (must match the recording)")
		seed = flag.Int64("seed", 1, "table seed (must match the recording)")
		mode = flag.String("mode", "full", "auditing mode (must match the recording)")
	)
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}

	ds := dataset.GenerateCompany(randx.New(*seed), dataset.DefaultCompanyConfig(*n))
	eng := core.NewEngine(ds)
	switch *mode {
	case "full":
		eng.Use(sumfull.New(*n), query.Sum)
		eng.Use(maxfull.New(*n), query.Max)
	case "maxmin":
		eng.Use(sumfull.New(*n), query.Sum)
		eng.Use(maxminfull.New(*n), query.Max, query.Min)
	default:
		fmt.Fprintf(os.Stderr, "replay supports modes full and maxmin, got %q\n", *mode)
		os.Exit(2)
	}

	f, err := os.Open(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()

	rep, err := trace.Replay(f, eng)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("replayed %d queries, %d updates\n", rep.Queries, rep.Updates)
	if rep.Clean() && len(rep.AnswerMismatches) == 0 {
		fmt.Println("CLEAN: every decision and answer reproduced")
		return
	}
	if len(rep.DecisionMismatches) > 0 {
		fmt.Printf("DECISION MISMATCHES at query positions %v\n", rep.DecisionMismatches)
	}
	if len(rep.AnswerMismatches) > 0 {
		fmt.Printf("answer mismatches at query positions %v (expected when the table differs)\n",
			rep.AnswerMismatches)
	}
	os.Exit(1)
}
