// Command auditdb is an interactive audited statistical database: it
// loads a synthetic company-salary table and answers SQL-ish aggregate
// queries through the paper's simulatable auditors, denying any query
// whose answer could be stitched together with past answers to reveal an
// individual salary.
//
// Usage:
//
//	auditdb [-n 300] [-seed 1] [-mode full|partial]
//
// Session commands:
//
//	SELECT sum(salary) WHERE age BETWEEN 30 AND 40
//	SELECT max(salary) WHERE zip = '94305'
//	SELECT avg(salary) WHERE dept = 'eng' AND age >= 40
//	.schema      describe the table
//	.stats       protocol counters
//	.update I V  modify record I's salary to V (full-disclosure mode)
//	.quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"queryaudit/internal/audit"

	"queryaudit/internal/audit/maxfull"
	"queryaudit/internal/audit/maxminfull"
	"queryaudit/internal/audit/maxprob"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/trace"
)

func main() {
	var (
		n    = flag.Int("n", 300, "number of records")
		seed = flag.Int64("seed", 1, "random seed for the synthetic table")
		mode   = flag.String("mode", "full", "privacy mode: full (classical compromise), maxmin (joint §4 max/min auditing), or partial (probabilistic, max only)")
		record  = flag.String("record", "", "append a JSONL trace of the session to this file")
		csvPath = flag.String("csv", "", "load the table from a headered CSV instead of generating one")
		csvSens = flag.String("sensitive", "salary", "sensitive column name for -csv")
		csvNum  = flag.String("numeric", "age", "comma-separated numeric public columns for -csv")
	)
	flag.Parse()

	rng := randx.New(*seed)
	var ds *dataset.Dataset
	if *csvPath != "" {
		f, err := os.Open(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		loaded, err := dataset.LoadCSV(f, dataset.CSVOptions{
			Sensitive:       *csvSens,
			Numeric:         strings.Split(*csvNum, ","),
			RequireDistinct: *mode != "full", // max/min auditors need it
		})
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ds = loaded
		*n = ds.N()
	} else {
		ds = dataset.GenerateCompany(rng, dataset.DefaultCompanyConfig(*n))
	}
	eng := core.NewEngine(ds)

	switch *mode {
	case "full":
		eng.Use(sumfull.New(*n), query.Sum)
		eng.Use(maxfull.New(*n), query.Max)
	case "maxmin":
		eng.Use(sumfull.New(*n), query.Sum)
		joint := maxminfull.New(*n)
		eng.Use(joint, query.Max, query.Min)
	case "partial":
		a, err := maxprob.New(*n, maxprob.Params{
			Lambda: 0.45, Gamma: 4, Delta: 0.2, T: 100, Samples: 64, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		eng.Use(a, query.Max)
		eng.Use(sumfull.New(*n), query.Sum)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	var rec *trace.Recorder
	if *record != "" {
		//auditlint:allow atomicwrite append-only live trace stream; whole-file atomic rewrite does not apply
		f, err := os.OpenFile(*record, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		rec = trace.NewRecorder(eng, f)
		fmt.Printf("recording session to %s\n", *record)
	}

	sdb := core.NewSDB(eng, *csvSens)
	fmt.Printf("auditdb: %s (mode=%s)\n", ds.Describe(), *mode)
	fmt.Println(`type SQL ("SELECT sum(salary) WHERE age BETWEEN 30 AND 40"), or .help`)

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("auditdb> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			if !command(line, eng, rec, ds, *mode) {
				return
			}
			continue
		}
		var resp core.Response
		var err error
		if rec != nil {
			// Route through the recorder so the trace captures the
			// resolved query set.
			var stmt core.Statement
			stmt, err = core.Parse(line)
			if err == nil && stmt.Target != *csvSens {
				err = fmt.Errorf("unknown aggregate target %q (sensitive attribute is %q)", stmt.Target, *csvSens)
			}
			if err == nil {
				set := eng.Dataset().Select(stmt.Predicate())
				if len(set) == 0 {
					err = fmt.Errorf("predicate selects no records")
				} else {
					resp, err = rec.Ask(query.Query{Set: set, Kind: stmt.Agg})
				}
			}
		} else {
			resp, err = sdb.Query(line)
		}
		switch {
		case err != nil:
			fmt.Printf("error: %v\n", err)
		case resp.Denied:
			fmt.Println("DENIED (answering could compromise an individual's salary)")
		default:
			fmt.Printf("%.2f\n", resp.Answer)
		}
	}
}

// printKnowledge shows per-record attacker exposure from every auditor
// that can report it (optionally restricted to one record index).
func printKnowledge(eng *core.Engine, fields []string) {
	only := -1
	if len(fields) == 2 {
		if v, err := strconv.Atoi(fields[1]); err == nil {
			only = v
		}
	}
	shown := false
	seen := map[string]bool{}
	for _, k := range []query.Kind{query.Sum, query.Max, query.Min} {
		a, ok := eng.Auditor(k)
		if !ok || seen[a.Name()] {
			continue
		}
		seen[a.Name()] = true
		kr, ok := a.(audit.KnowledgeReporter)
		if !ok {
			continue
		}
		shown = true
		fmt.Printf("-- %s --\n", a.Name())
		for _, e := range kr.Knowledge() {
			if only >= 0 && e.Index != only {
				continue
			}
			if only < 0 && math.IsInf(e.Lower, -1) && math.IsInf(e.Upper, 1) && !e.Pinned {
				continue // nothing derived; keep the listing short
			}
			lo, hi := "(-inf", "+inf)"
			if !math.IsInf(e.Lower, -1) {
				b := "("
				if !e.LowerStrict {
					b = "["
				}
				lo = fmt.Sprintf("%s%.2f", b, e.Lower)
			}
			if !math.IsInf(e.Upper, 1) {
				b := ")"
				if !e.UpperStrict {
					b = "]"
				}
				hi = fmt.Sprintf("%.2f%s", e.Upper, b)
			}
			pin := ""
			if e.Pinned {
				pin = "  PINNED"
			}
			fmt.Printf("  x[%3d] ∈ %s, %s%s\n", e.Index, lo, hi, pin)
		}
	}
	if !shown {
		fmt.Println("no registered auditor reports knowledge")
	}
}

// command handles dot-commands; it returns false on .quit.
func command(line string, eng *core.Engine, rec *trace.Recorder, ds *dataset.Dataset, mode string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".quit", ".exit":
		return false
	case ".help":
		fmt.Println(".schema | .stats | .know [I] | .update I V | .quit")
	case ".know":
		printKnowledge(eng, fields)
	case ".schema":
		fmt.Println(ds.Describe())
		fmt.Println("sensitive attribute: salary (aggregate target)")
	case ".stats":
		fmt.Printf("answered=%d denied=%d records=%d modifications=%d\n",
			eng.Answered(), eng.Denied(), ds.N(), ds.Modifications())
	case ".update":
		if mode != "full" {
			fmt.Println("updates are supported in full-disclosure mode only")
			return true
		}
		if len(fields) != 3 {
			fmt.Println("usage: .update INDEX VALUE")
			return true
		}
		idx, err1 := strconv.Atoi(fields[1])
		val, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			fmt.Println("usage: .update INDEX VALUE")
			return true
		}
		var err error
		if rec != nil {
			err = rec.Update(idx, val) // recorded so replays reproduce
		} else {
			err = eng.Update(idx, val)
		}
		if err != nil {
			fmt.Printf("error: %v\n", err)
		} else {
			fmt.Printf("record %d updated\n", idx)
		}
	default:
		fmt.Printf("unknown command %s (try .help)\n", fields[0])
	}
	return true
}
