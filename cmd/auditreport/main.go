// Command auditreport is the retrospective-auditing pipeline: it
// ingests historical audit logs (pgAudit-style CSV, ndjson, or this
// project's exported session journals), risk-scores every query against
// a sensitivity dictionary, replays each analyst's history offline
// through the same auditor stack a live auditserver runs, and writes a
// deterministic compliance report:
//
//	auditreport -auditors full -n 300 -seed 1 -o report.json audit.ndjson
//	auditreport -auditors prob -prob-seed 7 -verify sessions.json
//
// The stack flags mirror auditserver's: give auditreport the same
// -auditors/-n/-seed (and -prob-*) values the live server ran with and
// the offline stack is construction-identical, so — by the paper's
// simulatability property — the offline verdicts reproduce the recorded
// live verdicts bit-for-bit. -verify makes any divergence (or any
// malformed input line) fatal, turning the pipeline into a compliance
// check; without it the report simply records the mismatches.
//
// Running the pipeline twice over the same inputs yields byte-identical
// reports: the artifact carries input digests instead of timestamps,
// analysts are sorted, and replay order is scheduling-independent.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"io"
	"log"
	"os"

	"queryaudit/internal/auditlog"
	"queryaudit/internal/mcpar"
	"queryaudit/internal/persist"
	"queryaudit/internal/qindex"
)

func main() {
	var (
		format    = flag.String("format", "auto", "input format: auto, pgaudit-csv, ndjson or journal")
		out       = flag.String("o", "report.json", "report output path (\"-\" writes to stdout)")
		enriched  = flag.String("enriched", "", "optional path for the enriched ndjson stream")
		dictPath  = flag.String("dict", "", "sensitivity dictionary JSON (default: built-in company schema)")
		sensitive = flag.String("sensitive", "salary", "aggregate target attribute for SQL resolution")
		topRisk   = flag.Int("top-risk", 10, "rows in the top-risk table")
		workers   = flag.Int("workers", 0, "analyst replay fan-out (0 = GOMAXPROCS)")
		verify    = flag.Bool("verify", false, "exit nonzero on any verdict mismatch or malformed input line")
		quiet     = flag.Bool("quiet", false, "suppress the stderr summary")

		auditors  = flag.String("auditors", "full", "auditor family the history ran against: full or prob")
		n         = flag.Int("n", 300, "number of records in the synthetic table")
		seed      = flag.Int64("seed", 1, "random seed for the synthetic table")
		mcWorkers = flag.Int("mc-workers", 0, "per-decision cap on the shared Monte Carlo scheduler (prob auditors; 0 = GOMAXPROCS)")
		mcAlpha   = flag.Float64("mc-adaptive-alpha", 0, "prob auditors: adaptive sample-budget error bound α (0 disables)")
		probLam   = flag.Float64("prob-lambda", 0.45, "prob auditors: tolerated posterior/prior drift λ in (0,1)")
		probGamma = flag.Int("prob-gamma", 4, "prob auditors: partition intervals γ")
		probDelta = flag.Float64("prob-delta", 0.2, "prob auditors: attacker winning-probability bound δ")
		probT     = flag.Int("prob-t", 12, "prob auditors: game rounds T")
		probSeed  = flag.Int64("prob-seed", 1, "prob auditors: Monte Carlo seed")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "auditreport ", 0)
	if *quiet {
		logger.SetOutput(io.Discard)
	}
	if flag.NArg() == 0 {
		log.New(os.Stderr, "auditreport ", 0).Fatalf("no input files (usage: auditreport [flags] <audit log>...)")
	}
	fatal := func(formatStr string, args ...any) {
		log.New(os.Stderr, "auditreport ", 0).Fatalf(formatStr, args...)
	}

	stack := auditlog.StackConfig{
		Family: *auditors, N: *n, Seed: *seed,
		Lambda: *probLam, Gamma: *probGamma, Delta: *probDelta, T: *probT,
		MCWorkers: *mcWorkers, AdaptiveAlpha: *mcAlpha, ProbSeed: *probSeed,
	}
	if err := stack.Validate(); err != nil {
		fatal("%v", err)
	}
	fmtName, err := auditlog.ParseFormat(*format)
	if err != nil {
		fatal("%v", err)
	}
	dict := auditlog.DefaultDict()
	if *dictPath != "" {
		if dict, err = auditlog.LoadDict(*dictPath); err != nil {
			fatal("%v", err)
		}
	}

	// Parse every source into one position-numbered stream.
	var (
		entries   []auditlog.Entry
		inputs    []auditlog.Input
		malformed int
	)
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal("%v", err)
		}
		es, st, err := auditlog.ParseBytes(data, path, fmtName)
		if err != nil {
			fatal("%v", err)
		}
		sum := sha256.Sum256(data)
		inputs = append(inputs, auditlog.Input{SourceStats: st, SHA256: hex.EncodeToString(sum[:])})
		malformed += st.Malformed
		entries = append(entries, es...)
		logger.Printf("parsed %s (%s): %d entries, %d malformed, %d skipped",
			path, st.Format, st.Entries, st.Malformed, st.Skipped)
	}
	for i := range entries {
		entries[i].Pos = i
	}

	// Enrich: risk-score every query. One indexed resolver over the
	// pristine dataset serves both enrichment breadth and SQL replay
	// (predicates touch only immutable public attributes).
	sel := qindex.NewResolver(stack.NewDataset(), qindex.Options{})
	en := &auditlog.Enricher{Dict: dict, Records: *n, Sensitive: *sensitive, Sel: sel}
	scored := en.Enrich(entries)
	if *enriched != "" {
		err := persist.WriteAtomic(*enriched, func(w io.Writer) error {
			return auditlog.WriteEnriched(w, scored)
		})
		if err != nil {
			fatal("%v", err)
		}
		logger.Printf("enriched stream written to %s (%d records)", *enriched, len(scored))
	}

	// Replay: every analyst's history through a fresh offline stack,
	// all Monte Carlo work multiplexed over one process-wide scheduler
	// exactly like the live server.
	rp := &auditlog.Replayer{Stack: stack, Workers: *workers, Sensitive: *sensitive}
	if stack.Family == "prob" {
		rp.Sched = mcpar.NewScheduler(*mcWorkers)
	}
	result, err := rp.Replay(entries)
	if err != nil {
		fatal("%v", err)
	}

	rep := auditlog.BuildReport(stack, inputs, scored, result, *topRisk)
	if *out == "-" {
		if err := auditlog.EncodeReport(os.Stdout, rep); err != nil {
			fatal("%v", err)
		}
	} else {
		if err := auditlog.WriteReport(*out, rep); err != nil {
			fatal("%v", err)
		}
		logger.Printf("report written to %s", *out)
	}
	logger.Printf("replayed %d entries for %d analysts: compared=%d mismatches=%d skipped=%d",
		rep.Entries, len(rep.Analysts), rep.Compared, rep.Mismatches, rep.Skipped)
	if *verify && (rep.Mismatches > 0 || malformed > 0) {
		fatal("verification failed: %d mismatches, %d malformed lines", rep.Mismatches, malformed)
	}
}
