package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"queryaudit/internal/auditlog"
)

// TestReportSmoke is the end-to-end retrospective-auditing drill
// (`make report-smoke`): start a real auditserver, drive a workload
// through the loadgen binary with -emit-audit-log, export the session
// journals over /v1/journal, then replay both log shapes through the
// auditreport binary configured with the same stack flags. The paper's
// simulatability property says the offline verdicts must reproduce the
// live ones bit-for-bit, so -verify must pass with zero mismatches —
// for the full-information stack and the probabilistic one — and
// running the pipeline twice must yield byte-identical reports.
func TestReportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping e2e binary test in -short mode")
	}
	dir := t.TempDir()
	serverBin := filepath.Join(dir, "auditserver")
	loadgenBin := filepath.Join(dir, "loadgen")
	reportBin := filepath.Join(dir, "auditreport")
	for _, b := range []struct{ bin, pkg string }{
		{serverBin, "queryaudit/cmd/auditserver"},
		{loadgenBin, "queryaudit/cmd/loadgen"},
		{reportBin, "queryaudit/cmd/auditreport"},
	} {
		build := exec.Command("go", "build", "-o", b.bin, b.pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			t.Fatalf("build %s: %v", b.pkg, err)
		}
	}

	cases := []struct {
		family   string
		requests int
		stack    []string // shared auditserver/auditreport stack flags
	}{
		{"full", 80, []string{"-auditors", "full", "-n", "60", "-seed", "3"}},
		// Small prob stack: live Monte Carlo decisions are the cost here.
		{"prob", 24, []string{
			"-auditors", "prob", "-n", "24", "-seed", "3",
			"-prob-lambda", "0.45", "-prob-gamma", "4", "-prob-delta", "0.2",
			"-prob-t", "12", "-prob-seed", "7",
		}},
	}
	for _, tc := range cases {
		t.Run(tc.family, func(t *testing.T) {
			sub := filepath.Join(dir, tc.family)
			if err := os.MkdirAll(sub, 0o755); err != nil {
				t.Fatal(err)
			}
			addr := startServer(t, serverBin, tc.stack)

			// One worker so the emission order of the audit log equals the
			// server's decision order per analyst — the precondition for
			// sequential replay.
			auditLog := filepath.Join(sub, "audit.ndjson")
			lg := exec.Command(loadgenBin,
				"-target", "http://"+addr,
				"-requests", fmt.Sprint(tc.requests),
				"-concurrency", "1",
				"-analysts", "2",
				"-mix", "sum=2,max=1,min=1",
				"-statements", "8",
				"-out", filepath.Join(sub, "loadgen.json"),
				"-emit-audit-log", auditLog,
			)
			lg.Stdout, lg.Stderr = os.Stderr, os.Stderr
			if err := lg.Run(); err != nil {
				t.Fatalf("loadgen run: %v", err)
			}

			// Export both analysts' journals — the server-side record of
			// the same history.
			journal := filepath.Join(sub, "journal.json")
			fetchJournals(t, addr, []string{"analyst-0", "analyst-1"}, journal)

			// Replay each log shape through the same stack; -verify makes
			// any live/offline divergence fatal.
			report1 := runReport(t, reportBin, tc.stack, filepath.Join(sub, "report1.json"), auditLog)
			report2 := runReport(t, reportBin, tc.stack, filepath.Join(sub, "report2.json"), auditLog)
			if !bytes.Equal(report1, report2) {
				t.Fatal("two pipeline runs over the same audit log differ")
			}
			journalReport := runReport(t, reportBin, tc.stack, filepath.Join(sub, "journal-report.json"), journal)

			for name, raw := range map[string][]byte{"audit-log": report1, "journal": journalReport} {
				var rep auditlog.Report
				if err := json.Unmarshal(raw, &rep); err != nil {
					t.Fatalf("%s report not valid JSON: %v", name, err)
				}
				if rep.Mismatches != 0 {
					t.Fatalf("%s replay diverged: %d mismatches", name, rep.Mismatches)
				}
				if rep.Compared == 0 || rep.Queries == 0 {
					t.Fatalf("%s report compared nothing: %+v", name, rep)
				}
				if len(rep.Analysts) != 2 {
					t.Fatalf("%s report has %d analysts, want 2", name, len(rep.Analysts))
				}
			}
		})
	}
}

// startServer launches auditserver on an ephemeral port with the given
// stack flags and returns its address.
func startServer(t *testing.T, bin string, stack []string) string {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-quiet"}, stack...)
	srv := exec.Command(bin, args...)
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Process.Kill(); srv.Wait() })
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return addr
	case <-time.After(20 * time.Second):
		t.Fatal("auditserver never reported its listen address")
		return ""
	}
}

// fetchJournals exports each analyst's journal over /v1/journal and
// writes them as one JSON array — the multi-snapshot shape the parser
// accepts.
func fetchJournals(t *testing.T, addr string, analysts []string, path string) {
	t.Helper()
	var snaps []json.RawMessage
	for _, a := range analysts {
		resp, err := http.Get("http://" + addr + "/v1/journal?analyst=" + a)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/journal?analyst=%s: %d %s", a, resp.StatusCode, body)
		}
		snaps = append(snaps, body)
	}
	data, err := json.Marshal(snaps)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// runReport invokes the auditreport binary in -verify mode and returns
// the report bytes.
func runReport(t *testing.T, bin string, stack []string, out, input string) []byte {
	t.Helper()
	args := append([]string{}, stack...)
	args = append(args, "-verify", "-quiet", "-o", out, input)
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("auditreport %s: %v", input, err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}
