package main

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"queryaudit/internal/persist"
)

// Report is the LOADGEN_<date>.json artifact: enough context to rerun
// the workload (config echo), plus the capacity figures a planner needs
// (latency distribution, achieved throughput, denial rate, QPS within
// SLO). Reports are written atomically so an interrupted run never
// leaves a truncated artifact for a dashboard to choke on.
type Report struct {
	GeneratedAt string       `json:"generated_at"`
	Target      string       `json:"target"`
	Workload    WorkloadEcho `json:"workload"`
	Totals      Totals       `json:"totals"`
	ByKind      []KindStats  `json:"by_kind"`
	ByShard     []ShardStats `json:"by_shard,omitempty"`
	LatencyMS   Latency      `json:"latency_ms"`
	AchievedQPS float64      `json:"achieved_qps"`
	SLO         SLO          `json:"slo"`
}

// WorkloadEcho pins the knobs that shaped the run.
type WorkloadEcho struct {
	Analysts    int     `json:"analysts"`
	Churn       float64 `json:"churn"`
	Arrival     string  `json:"arrival"`
	RateTarget  float64 `json:"rate_target,omitempty"`
	Concurrency int     `json:"concurrency"`
	Mix         string  `json:"mix"`
	Statements  int     `json:"statements"`
	ZipfS       float64 `json:"zipf_s"`
	Seed        int64   `json:"seed"`
	DurationSec float64 `json:"duration_seconds"`
}

// Totals classify every request: answered and denied are protocol
// outcomes; the error rows are harness- or server-side failures.
type Totals struct {
	Requests        int     `json:"requests"`
	Answered        int     `json:"answered"`
	Denied          int     `json:"denied"`
	DenialRate      float64 `json:"denial_rate"`
	HTTP4xx         int     `json:"http_4xx"`
	HTTP5xx         int     `json:"http_5xx"`
	TransportErrors int     `json:"transport_errors"`
	Retried421      int     `json:"retried_421,omitempty"`
}

// ShardStats is the per-shard slice of a clustered run, keyed by the
// X-Shard-ID response header. Uniform analyst load should spread
// requests evenly here (the cluster-smoke drill asserts it); a skewed
// distribution means a hot shard or a stale fleet descriptor.
type ShardStats struct {
	Shard       string  `json:"shard"`
	Requests    int     `json:"requests"`
	Answered    int     `json:"answered"`
	Denied      int     `json:"denied"`
	DenialRate  float64 `json:"denial_rate"`
	AchievedQPS float64 `json:"achieved_qps"`
}

// KindStats is the per-aggregate slice of the totals.
type KindStats struct {
	Kind     string  `json:"kind"`
	Requests int     `json:"requests"`
	Answered int     `json:"answered"`
	Denied   int     `json:"denied"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
}

// Latency is the overall latency distribution in milliseconds.
type Latency struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// SLO is the capacity figure: of the achieved throughput, how much
// landed within the latency target.
type SLO struct {
	ThresholdMS    float64 `json:"threshold_ms"`
	WithinFraction float64 `json:"within_fraction"`
	QPSWithinSLO   float64 `json:"qps_within_slo"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// buildReport folds the samples into the artifact.
func buildReport(cfg config, samples []sample, elapsed time.Duration) *Report {
	rep := &Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Target:      cfg.target,
		Workload: WorkloadEcho{
			Analysts:    cfg.analysts,
			Churn:       cfg.churn,
			Arrival:     cfg.arrival,
			Concurrency: cfg.concurrency,
			Mix:         cfg.mix,
			Statements:  cfg.statements,
			ZipfS:       cfg.zipfS,
			Seed:        cfg.seed,
			DurationSec: elapsed.Seconds(),
		},
	}
	if cfg.arrival != "closed" {
		rep.Workload.RateTarget = cfg.rate
	}

	type kindAgg struct {
		stats KindStats
		lats  []time.Duration
	}
	kinds := map[string]*kindAgg{}
	order := []string{}
	shards := map[string]*ShardStats{}
	shardOrder := []string{}
	within := 0
	var sum time.Duration
	for _, s := range samples {
		rep.Totals.Requests++
		if s.retried {
			rep.Totals.Retried421++
		}
		ka := kinds[s.kind]
		if ka == nil {
			ka = &kindAgg{stats: KindStats{Kind: s.kind}}
			kinds[s.kind] = ka
			order = append(order, s.kind)
		}
		ka.stats.Requests++
		var sa *ShardStats
		if s.shard != "" {
			sa = shards[s.shard]
			if sa == nil {
				sa = &ShardStats{Shard: s.shard}
				shards[s.shard] = sa
				shardOrder = append(shardOrder, s.shard)
			}
			sa.Requests++
		}
		switch {
		case s.failed:
			rep.Totals.TransportErrors++
			continue
		case s.status >= 500:
			rep.Totals.HTTP5xx++
			continue
		case s.status >= 400:
			rep.Totals.HTTP4xx++
			continue
		case s.denied:
			rep.Totals.Denied++
			ka.stats.Denied++
			if sa != nil {
				sa.Denied++
			}
		default:
			rep.Totals.Answered++
			ka.stats.Answered++
			if sa != nil {
				sa.Answered++
			}
		}
		ka.lats = append(ka.lats, s.latency)
		sum += s.latency
		if ms(s.latency) <= cfg.sloMS {
			within++
		}
	}
	decided := rep.Totals.Answered + rep.Totals.Denied
	if decided > 0 {
		rep.Totals.DenialRate = float64(rep.Totals.Denied) / float64(decided)
	}

	all := sortedLatencies(samples)
	if len(all) > 0 {
		rep.LatencyMS = Latency{
			Mean: ms(sum / time.Duration(len(all))),
			P50:  ms(percentile(all, 0.50)),
			P90:  ms(percentile(all, 0.90)),
			P99:  ms(percentile(all, 0.99)),
			Max:  ms(all[len(all)-1]),
		}
	}
	if elapsed > 0 {
		rep.AchievedQPS = float64(rep.Totals.Requests) / elapsed.Seconds()
	}
	rep.SLO = SLO{ThresholdMS: cfg.sloMS}
	if len(all) > 0 {
		rep.SLO.WithinFraction = float64(within) / float64(len(all))
		rep.SLO.QPSWithinSLO = rep.AchievedQPS * rep.SLO.WithinFraction
	}
	for _, k := range order {
		ka := kinds[k]
		ls := ka.lats
		// per-kind latencies were appended in completion order; sort for
		// the percentile cuts.
		sortDurations(ls)
		ka.stats.P50MS = ms(percentile(ls, 0.50))
		ka.stats.P99MS = ms(percentile(ls, 0.99))
		rep.ByKind = append(rep.ByKind, ka.stats)
	}
	sort.Strings(shardOrder)
	for _, id := range shardOrder {
		sa := shards[id]
		if decided := sa.Answered + sa.Denied; decided > 0 {
			sa.DenialRate = float64(sa.Denied) / float64(decided)
		}
		if elapsed > 0 {
			sa.AchievedQPS = float64(sa.Requests) / elapsed.Seconds()
		}
		rep.ByShard = append(rep.ByShard, *sa)
	}
	return rep
}

func sortDurations(d []time.Duration) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j] < d[j-1]; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
}

// write persists the report atomically (temp + fsync + rename), so a
// crash mid-run never leaves a half-written artifact.
func (r *Report) write(path string) error {
	return persist.WriteAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(r)
	})
}

// summary is the one human-readable line printed after a run.
func (r *Report) summary() string {
	s := fmt.Sprintf(
		"loadgen: %d reqs in %.1fs (%.1f qps) | answered %d, denied %d (%.1f%%), 4xx %d, 5xx %d, transport %d | p50 %.2fms p99 %.2fms | %.1f qps within %.0fms SLO (%.1f%%)",
		r.Totals.Requests, r.Workload.DurationSec, r.AchievedQPS,
		r.Totals.Answered, r.Totals.Denied, 100*r.Totals.DenialRate,
		r.Totals.HTTP4xx, r.Totals.HTTP5xx, r.Totals.TransportErrors,
		r.LatencyMS.P50, r.LatencyMS.P99,
		r.SLO.QPSWithinSLO, r.SLO.ThresholdMS, 100*r.SLO.WithinFraction)
	if len(r.ByShard) > 0 {
		parts := make([]string, len(r.ByShard))
		for i, sh := range r.ByShard {
			parts[i] = fmt.Sprintf("%s=%d", sh.Shard, sh.Requests)
		}
		s += fmt.Sprintf(" | shards %s (421 follows %d)", strings.Join(parts, " "), r.Totals.Retried421)
	}
	return s
}
