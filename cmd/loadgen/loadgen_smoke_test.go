package main

import (
	"bufio"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestLoadgenSmoke is the end-to-end capacity-harness drill (`make
// loadgen-smoke`): build both binaries, start a real auditserver on an
// ephemeral port, drive a short mixed workload through the loadgen
// binary, and check the report artifact it writes is coherent — every
// request accounted for, no transport or server errors, a plausible
// latency distribution.
func TestLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping e2e binary test in -short mode")
	}
	dir := t.TempDir()
	serverBin := filepath.Join(dir, "auditserver")
	loadgenBin := filepath.Join(dir, "loadgen")
	for _, b := range []struct{ bin, pkg string }{
		{serverBin, "queryaudit/cmd/auditserver"},
		{loadgenBin, "queryaudit/cmd/loadgen"},
	} {
		build := exec.Command("go", "build", "-o", b.bin, b.pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			t.Fatalf("build %s: %v", b.pkg, err)
		}
	}

	// Start the server and learn its ephemeral address from the log line.
	srv := exec.Command(serverBin, "-n", "50", "-addr", "127.0.0.1:0", "-quiet")
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Process.Kill(); srv.Wait() })
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(20 * time.Second):
		t.Fatal("auditserver never reported its listen address")
	}

	// A short fixed-count mixed run: enough requests to hit every kind,
	// some churned sessions, Zipf repetition to exercise the memo.
	out := filepath.Join(dir, "loadgen-report.json")
	lg := exec.Command(loadgenBin,
		"-target", "http://"+addr,
		"-requests", "120",
		"-concurrency", "4",
		"-analysts", "3",
		"-churn", "0.1",
		"-mix", "sum=2,max=1,min=1",
		"-statements", "12",
		"-zipf", "1.2",
		"-out", out,
	)
	lg.Stdout, lg.Stderr = os.Stderr, os.Stderr
	if err := lg.Run(); err != nil {
		t.Fatalf("loadgen run: %v", err)
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if rep.Totals.Requests != 120 {
		t.Fatalf("report accounts for %d requests, want 120", rep.Totals.Requests)
	}
	if got := rep.Totals.Answered + rep.Totals.Denied + rep.Totals.HTTP4xx +
		rep.Totals.HTTP5xx + rep.Totals.TransportErrors; got != rep.Totals.Requests {
		t.Fatalf("outcome classes sum to %d, want %d", got, rep.Totals.Requests)
	}
	if rep.Totals.TransportErrors != 0 || rep.Totals.HTTP5xx != 0 || rep.Totals.HTTP4xx != 0 {
		t.Fatalf("errors against a healthy server: %+v", rep.Totals)
	}
	if rep.Totals.Answered == 0 {
		t.Fatalf("no queries answered: %+v", rep.Totals)
	}
	if len(rep.ByKind) != 3 {
		t.Fatalf("expected 3 kinds in report, got %d", len(rep.ByKind))
	}
	if rep.LatencyMS.P99 < rep.LatencyMS.P50 || rep.LatencyMS.Max < rep.LatencyMS.P99 {
		t.Fatalf("latency distribution out of order: %+v", rep.LatencyMS)
	}
	if rep.AchievedQPS <= 0 {
		t.Fatalf("achieved QPS %g, want > 0", rep.AchievedQPS)
	}
}
