// Command loadgen is the capacity-planning harness for a live
// auditserver: it drives a configurable synthetic analyst population
// over HTTP — SQL statement mixes across the aggregate kinds, hot-key
// skewed statement repetition, open (uniform/Poisson) or closed arrival
// processes, and session churn — and reports latency percentiles,
// denial rates, throughput and a QPS-vs-SLO figure as a dated JSON
// artifact (LOADGEN_<date>.json) comparable across commits.
//
// The workload shape models what the audit protocol actually sees in
// production: a small set of dashboard statements repeated verbatim
// (the hot keys the query index's statement memo exists for), a long
// tail of ad-hoc predicates, and analysts arriving and leaving (session
// admission, eviction and replay on the server side).
//
//	loadgen -target http://127.0.0.1:8080 -analysts 16 -duration 30s \
//	    -arrival poisson -rate 400 -mix 'sum=4,max=2,min=2' -zipf 1.2
//
// Denials are protocol outcomes, not errors: a healthy audited database
// under sustained load denies an increasing fraction of queries as
// analyst histories accumulate. The report therefore tracks answered
// and denied separately from transport/HTTP failures.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.target, "target", "", "base URL of the auditserver to load (e.g. http://127.0.0.1:8080); required")
	flag.IntVar(&cfg.analysts, "analysts", 8, "size of the steady analyst population (distinct X-Analyst-ID values)")
	flag.Float64Var(&cfg.churn, "churn", 0, "per-request probability of using a brand-new analyst instead of the steady population (session admission/eviction pressure)")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "how long to drive load (ignored when -requests > 0)")
	flag.IntVar(&cfg.requests, "requests", 0, "stop after exactly this many requests (0 = run for -duration)")
	flag.IntVar(&cfg.concurrency, "concurrency", 8, "closed-loop workers; for open arrivals, the in-flight cap")
	flag.StringVar(&cfg.arrival, "arrival", "closed", "arrival process: closed (back-to-back workers), uniform (fixed interarrival at -rate), or poisson (exponential interarrival at -rate)")
	flag.Float64Var(&cfg.rate, "rate", 100, "target request rate for open arrivals (requests/second)")
	flag.StringVar(&cfg.mix, "mix", "sum=4,max=2,min=2", "aggregate mix as kind=weight pairs over sum, max, min, avg")
	flag.IntVar(&cfg.statements, "statements", 32, "distinct SQL statements in the pool (repetition comes from -zipf skew)")
	flag.Float64Var(&cfg.zipfS, "zipf", 1.1, "Zipf skew s > 1 over the statement pool (hot-key shape); 0 selects uniformly")
	flag.Float64Var(&cfg.sloMS, "slo-ms", 50, "latency SLO in milliseconds for the QPS-vs-SLO figure")
	flag.StringVar(&cfg.out, "out", "", "report path (default LOADGEN_<date>.json in the working directory)")
	flag.StringVar(&cfg.auditLog, "emit-audit-log", "", "also emit the workload as ndjson audit-log lines for auditreport (analyst, query, timestamp, outcome)")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload seed (statement pool and arrival draws are reproducible per seed)")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-request HTTP timeout")
	flag.Parse()

	logger := log.New(os.Stderr, "loadgen ", log.LstdFlags|log.Lmsgprefix)
	if cfg.target == "" {
		logger.Fatal("-target is required (base URL of a running auditserver)")
	}
	if cfg.out == "" {
		cfg.out = "LOADGEN_" + time.Now().Format("2006-01-02") + ".json"
	}
	if err := cfg.validate(); err != nil {
		logger.Fatal(err)
	}

	// Refuse to drive load at a server that is not ready: a half-restored
	// server would skew every figure (and 503s are not capacity data).
	client := &http.Client{Timeout: cfg.timeout}
	if err := waitReady(client, cfg.target, 10*time.Second); err != nil {
		logger.Fatalf("target not ready: %v", err)
	}

	pool, err := buildStatements(cfg)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("driving %s: %d statements, mix %q, arrival=%s analysts=%d churn=%g",
		cfg.target, len(pool), cfg.mix, cfg.arrival, cfg.analysts, cfg.churn)

	samples, elapsed := run(cfg, client, pool, logger)
	rep := buildReport(cfg, samples, elapsed)
	if err := rep.write(cfg.out); err != nil {
		logger.Fatal(err)
	}
	logger.Printf("wrote %s", cfg.out)
	if cfg.auditLog != "" {
		if err := writeAuditLog(cfg.auditLog, samples); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("wrote audit log %s (%d lines)", cfg.auditLog, len(samples))
	}
	fmt.Println(rep.summary())
	if rep.Totals.TransportErrors > 0 || rep.Totals.HTTP5xx > 0 {
		os.Exit(1)
	}
}

// waitReady polls GET /readyz until 200 or the deadline.
func waitReady(client *http.Client, base string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return err
			}
			return fmt.Errorf("GET /readyz kept answering non-200")
		}
		time.Sleep(100 * time.Millisecond)
	}
}
