package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"queryaudit/internal/persist"
)

// config are the harness knobs (see main for the flag descriptions).
type config struct {
	target      string
	analysts    int
	churn       float64
	duration    time.Duration
	requests    int
	concurrency int
	arrival     string
	rate        float64
	mix         string
	statements  int
	zipfS       float64
	sloMS       float64
	out         string
	auditLog    string
	seed        int64
	timeout     time.Duration
}

func (c config) validate() error {
	switch c.arrival {
	case "closed", "uniform", "poisson":
	default:
		return fmt.Errorf("unknown -arrival %q (want closed, uniform or poisson)", c.arrival)
	}
	if c.arrival != "closed" && c.rate <= 0 {
		return fmt.Errorf("-rate must be positive for open arrivals, got %g", c.rate)
	}
	if c.analysts < 1 {
		return fmt.Errorf("-analysts must be >= 1, got %d", c.analysts)
	}
	if c.concurrency < 1 {
		return fmt.Errorf("-concurrency must be >= 1, got %d", c.concurrency)
	}
	if c.statements < 1 {
		return fmt.Errorf("-statements must be >= 1, got %d", c.statements)
	}
	if c.zipfS != 0 && c.zipfS <= 1 {
		return fmt.Errorf("-zipf must be > 1 (or 0 for uniform), got %g", c.zipfS)
	}
	if c.churn < 0 || c.churn > 1 {
		return fmt.Errorf("-churn must be in [0,1], got %g", c.churn)
	}
	if _, err := parseMix(c.mix); err != nil {
		return err
	}
	return nil
}

// statement is one pool entry: the SQL text and its aggregate kind (for
// per-kind reporting).
type statement struct {
	sql  string
	kind string
}

// parseMix parses "sum=4,max=2" into ordered kind/weight pairs.
func parseMix(mix string) ([]struct {
	kind   string
	weight int
}, error) {
	var out []struct {
		kind   string
		weight int
	}
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		kind := strings.ToLower(strings.TrimSpace(kv[0]))
		switch kind {
		case "sum", "max", "min", "avg":
		default:
			return nil, fmt.Errorf("unknown aggregate %q in -mix (want sum, max, min or avg)", kind)
		}
		w := 1
		if len(kv) == 2 {
			var err error
			if w, err = strconv.Atoi(strings.TrimSpace(kv[1])); err != nil || w < 1 {
				return nil, fmt.Errorf("bad weight for %q in -mix", kind)
			}
		}
		out = append(out, struct {
			kind   string
			weight int
		}{kind, w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-mix selects no aggregates")
	}
	return out, nil
}

// buildStatements generates the deterministic statement pool over the
// company schema auditserver serves (ages 21–65, the five demo zips,
// the five demo departments). Kinds are assigned by mix weight;
// predicates vary so distinct pool entries resolve distinct row sets.
func buildStatements(cfg config) ([]statement, error) {
	mix, err := parseMix(cfg.mix)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, m := range mix {
		total += m.weight
	}
	kindAt := func(i int) string {
		k := i % total
		for _, m := range mix {
			if k < m.weight {
				return m.kind
			}
			k -= m.weight
		}
		return mix[0].kind
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	zips := []string{"94305", "94301", "94025", "95014", "94040"}
	depts := []string{"eng", "sales", "hr", "finance", "legal"}
	pool := make([]statement, 0, cfg.statements)
	for i := 0; i < cfg.statements; i++ {
		kind := kindAt(i)
		var where string
		switch rng.Intn(4) {
		case 0:
			lo := 21 + rng.Intn(35)
			where = fmt.Sprintf("age BETWEEN %d AND %d", lo, lo+4+rng.Intn(18))
		case 1:
			where = fmt.Sprintf("dept = '%s'", depts[rng.Intn(len(depts))])
		case 2:
			where = fmt.Sprintf("zip = '%s' AND age >= %d", zips[rng.Intn(len(zips))], 21+rng.Intn(25))
		default:
			where = fmt.Sprintf("age >= %d", 21+rng.Intn(35))
		}
		pool = append(pool, statement{
			sql:  fmt.Sprintf("SELECT %s(salary) WHERE %s", kind, where),
			kind: kind,
		})
	}
	return pool, nil
}

// sample is one request's outcome.
type sample struct {
	kind     string
	analyst  string
	sql      string
	ts       string // request start, RFC3339Nano (audit-log emission)
	latency  time.Duration
	status   int
	denied   bool
	answered bool
	answer   float64
	failed   bool   // transport error (no HTTP status)
	shard    string // X-Shard-ID of the answering node (clustered runs)
	retried  bool   // followed one 421 misdirected hop
}

// outcome classifies the sample the way an audit log records it:
// answered and denied are protocol outcomes; everything else (transport
// failure, non-200 status) is "error" — the query may never have
// reached an auditor, and the offline replayer skips such lines.
func (s sample) outcome() string {
	switch {
	case s.answered:
		return "answered"
	case s.status == http.StatusOK && s.denied:
		return "denied"
	default:
		return "error"
	}
}

// run drives the configured arrival process and returns every sample
// plus the measured wall time.
func run(cfg config, client *http.Client, pool []statement, logger interface{ Printf(string, ...any) }) ([]sample, time.Duration) {
	var (
		mu      sync.Mutex
		samples []sample
		churnN  int
	)
	record := func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}
	// analystFor picks the session identity: steady pool or churned-in
	// newcomer. rng access is caller-local.
	analystFor := func(rng *rand.Rand) string {
		if cfg.churn > 0 && rng.Float64() < cfg.churn {
			mu.Lock()
			churnN++
			id := churnN
			mu.Unlock()
			return fmt.Sprintf("churn-%d", id)
		}
		return fmt.Sprintf("analyst-%d", rng.Intn(cfg.analysts))
	}

	deadline := time.Now().Add(cfg.duration)
	var issued sync.WaitGroup
	var count struct {
		sync.Mutex
		n int
	}
	// more reports whether another request may start (closed loop checks
	// time; -requests caps both modes).
	more := func() bool {
		if cfg.requests > 0 {
			count.Lock()
			defer count.Unlock()
			if count.n >= cfg.requests {
				return false
			}
			count.n++
			return true
		}
		return time.Now().Before(deadline)
	}

	start := time.Now()
	switch cfg.arrival {
	case "closed":
		for w := 0; w < cfg.concurrency; w++ {
			issued.Add(1)
			go func(w int) {
				defer issued.Done()
				rng := rand.New(rand.NewSource(cfg.seed + int64(w) + 1))
				pick := newPicker(rng, cfg.zipfS, len(pool))
				for more() {
					st := pool[pick()]
					record(doQuery(client, cfg.target, analystFor(rng), st))
				}
			}(w)
		}
	default: // uniform | poisson open loop
		rng := rand.New(rand.NewSource(cfg.seed))
		pick := newPicker(rng, cfg.zipfS, len(pool))
		sem := make(chan struct{}, cfg.concurrency)
		interarrival := func() time.Duration {
			mean := float64(time.Second) / cfg.rate
			if cfg.arrival == "poisson" {
				return time.Duration(rng.ExpFloat64() * mean)
			}
			return time.Duration(mean)
		}
		for more() {
			st := pool[pick()]
			analyst := analystFor(rng)
			// The in-flight cap bounds memory when the server saturates;
			// blocking here makes the achieved (not offered) rate what the
			// report measures — see docs/DEPLOYMENT.md on capacity runs.
			sem <- struct{}{}
			issued.Add(1)
			go func() {
				defer func() { <-sem; issued.Done() }()
				record(doQuery(client, cfg.target, analyst, st))
			}()
			time.Sleep(interarrival())
		}
	}
	issued.Wait()
	elapsed := time.Since(start)
	logger.Printf("issued %d requests in %s", len(samples), elapsed.Round(time.Millisecond))
	return samples, elapsed
}

// newPicker returns a statement selector: Zipf-skewed over the pool
// (rank 0 hottest) when s > 1, uniform when s == 0.
func newPicker(rng *rand.Rand, s float64, n int) func() int {
	if s == 0 || n == 1 {
		return func() int { return rng.Intn(n) }
	}
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	return func() int { return int(z.Uint64()) }
}

// doQuery posts one SQL statement as the given analyst and classifies
// the outcome. A 421 misdirected response from a clustered node names
// the analyst's real owner; the harness follows it exactly once (the
// same hop a router or well-behaved client makes), so driving a shard
// directly still exercises the whole fleet. The recorded latency spans
// both hops — that IS the cost a misrouted client pays.
func doQuery(client *http.Client, base, analyst string, st statement) sample {
	body, _ := json.Marshal(map[string]string{"sql": st.sql})
	t0 := time.Now()
	out := sample{kind: st.kind, analyst: analyst, sql: st.sql, ts: t0.UTC().Format(time.RFC3339Nano)}
	resp, err := postQuery(client, base, analyst, body)
	if err != nil {
		out.latency = time.Since(t0)
		out.failed = true
		return out
	}
	if resp.StatusCode == http.StatusMisdirectedRequest {
		var mb struct {
			PrimaryURL string `json:"primary_url"`
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if json.Unmarshal(raw, &mb) == nil && mb.PrimaryURL != "" {
			out.retried = true
			resp, err = postQuery(client, mb.PrimaryURL, analyst, body)
			if err != nil {
				out.latency = time.Since(t0)
				out.failed = true
				return out
			}
		} else {
			out.latency = time.Since(t0)
			out.status = http.StatusMisdirectedRequest
			return out
		}
	}
	defer resp.Body.Close()
	out.latency = time.Since(t0)
	out.status = resp.StatusCode
	out.shard = resp.Header.Get("X-Shard-ID")
	var qr struct {
		Denied bool     `json:"denied"`
		Answer *float64 `json:"answer"`
	}
	if resp.StatusCode == http.StatusOK {
		if json.NewDecoder(resp.Body).Decode(&qr) == nil {
			out.denied = qr.Denied
			if !qr.Denied && qr.Answer != nil {
				out.answered = true
				out.answer = *qr.Answer
			}
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return out
}

// postQuery issues one /v1/query POST against base.
func postQuery(client *http.Client, base, analyst string, body []byte) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, strings.TrimSuffix(base, "/")+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Analyst-ID", analyst)
	return client.Do(req)
}

// auditLine is one emitted audit-log record — the ndjson schema
// internal/auditlog ingests (auditlog.FormatNDJSON), so a loadgen run
// plus auditreport forms a closed retrospective pipeline.
type auditLine struct {
	TS      string   `json:"ts"`
	Analyst string   `json:"analyst"`
	SQL     string   `json:"sql"`
	Kind    string   `json:"kind"`
	Outcome string   `json:"outcome"`
	Answer  *float64 `json:"answer,omitempty"`
}

// writeAuditLog emits every sample as one audit-log line, in completion
// order (with -concurrency 1 that is exactly the server's per-analyst
// decision order, which is what bit-for-bit replay verification needs).
func writeAuditLog(path string, samples []sample) error {
	return persist.WriteAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		for _, s := range samples {
			line := auditLine{TS: s.ts, Analyst: s.analyst, SQL: s.sql, Kind: s.kind, Outcome: s.outcome()}
			if s.answered {
				ans := s.answer
				line.Answer = &ans
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
		return nil
	})
}

// percentile returns the p-quantile (0..1) of sorted durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// sortedLatencies extracts and sorts the latencies of non-failed samples.
func sortedLatencies(samples []sample) []time.Duration {
	out := make([]time.Duration, 0, len(samples))
	for _, s := range samples {
		if !s.failed {
			out = append(out, s.latency)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
