// Resolution-path equivalence: the indexed, interned, memoized query
// resolver must be observationally identical to the naive per-request
// dataset scan — not just "same sets", but same DECISIONS, since the
// audit protocol is stateful and a single divergent set would fork every
// decision after it. Two engine stacks (exact full-disclosure auditors
// and the Section 3 probabilistic ones) replay the same SQL workload
// through both paths and must agree answer-for-answer, denial-for-
// denial, with identical transcript digests at the end.
package main

import (
	"fmt"
	"math/rand"
	"testing"

	"queryaudit/internal/audit/maxminfull"
	"queryaudit/internal/audit/maxminprob"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/audit/sumprob"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

// equivWorkload generates a deterministic mixed SQL workload over the
// company schema, with heavy repetition (the hot-key shape the memo is
// for) and occasional malformed/empty statements.
func equivWorkload(rng *rand.Rand, steps int) []string {
	aggs := []string{"sum", "max", "min"}
	depts := []string{"eng", "sales", "hr", "finance", "legal", "nosuch"}
	zips := []string{"94305", "94301", "94025", "95014", "94040"}
	var hot []string
	for i := 0; i < 8; i++ {
		lo := 21 + rng.Intn(30)
		hot = append(hot, fmt.Sprintf("SELECT %s(salary) WHERE age BETWEEN %d AND %d",
			aggs[rng.Intn(len(aggs))], lo, lo+5+rng.Intn(20)))
	}
	out := make([]string, 0, steps)
	for i := 0; i < steps; i++ {
		switch rng.Intn(5) {
		case 0, 1: // hot statement, repeated verbatim
			out = append(out, hot[rng.Intn(len(hot))])
		case 2:
			out = append(out, fmt.Sprintf("SELECT %s(salary) WHERE dept = '%s'",
				aggs[rng.Intn(len(aggs))], depts[rng.Intn(len(depts))]))
		case 3:
			out = append(out, fmt.Sprintf("SELECT %s(salary) WHERE zip = '%s' AND age >= %d",
				aggs[rng.Intn(len(aggs))], zips[rng.Intn(len(zips))], 18+rng.Intn(40)))
		default:
			out = append(out, fmt.Sprintf("SELECT %s(salary) WHERE age <= %d",
				aggs[rng.Intn(len(aggs))], 20+rng.Intn(50)))
		}
	}
	return out
}

func equivStacks(t *testing.T, n int, family string) (naive, indexed *core.SDB) {
	t.Helper()
	build := func() *core.SDB {
		cfg := dataset.DefaultCompanyConfig(n)
		if family == "prob" {
			// The Section 3 auditors protect values normalized to [0,1].
			cfg.MinSalary, cfg.MaxSalary = 0, 1
		}
		ds := dataset.GenerateCompany(randx.New(7), cfg)
		eng := core.NewEngine(ds)
		switch family {
		case "full":
			eng.Use(sumfull.New(n), query.Sum)
			eng.Use(maxminfull.New(n), query.Max, query.Min)
		case "prob":
			mm, err := maxminprob.New(n, maxminprob.Params{
				Lambda: 0.45, Gamma: 4, Delta: 0.2, T: 6, Seed: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			sp, err := sumprob.New(n, sumprob.Params{
				Lambda: 0.45, Gamma: 4, Delta: 0.2, T: 6, Seed: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			eng.Use(mm, query.Max, query.Min)
			eng.Use(sp, query.Sum)
		}
		return core.NewSDB(eng, "salary")
	}
	naive = build()
	naive.SetSelector(naive.Engine().Dataset()) // pre-index behaviour
	indexed = build()
	if !indexed.Resolver().Indexed() || naive.Resolver().Indexed() {
		t.Fatal("stack setup: expected one indexed and one naive resolver")
	}
	return naive, indexed
}

func TestDecisionsIdenticalAcrossResolutionPaths(t *testing.T) {
	families := []string{"full", "prob"}
	for _, family := range families {
		family := family
		t.Run(family, func(t *testing.T) {
			const n = 40
			naive, indexed := equivStacks(t, n, family)
			steps := 300
			if family == "prob" {
				steps = 60 // Monte Carlo decisions are much slower
			}
			workload := equivWorkload(randx.New(99), steps)
			for i, sql := range workload {
				rn, errN := naive.Query(sql)
				ri, errI := indexed.Query(sql)
				if (errN == nil) != (errI == nil) {
					t.Fatalf("step %d %q: error divergence: naive=%v indexed=%v", i, sql, errN, errI)
				}
				if errN != nil {
					if errN.Error() != errI.Error() {
						t.Fatalf("step %d %q: error text divergence: %q vs %q", i, sql, errN, errI)
					}
					continue
				}
				if rn.Denied != ri.Denied || rn.Answer != ri.Answer {
					t.Fatalf("step %d %q: decision divergence: naive=%+v indexed=%+v", i, sql, rn, ri)
				}
			}
		})
	}
}

// TestIndexedPathInternsRepeats: the serving-path contract behind the
// allocation win — a repeated statement returns the SAME backing array.
func TestIndexedPathInternsRepeats(t *testing.T) {
	const n = 40
	ds := dataset.GenerateCompany(randx.New(7), dataset.DefaultCompanyConfig(n))
	eng := core.NewEngine(ds)
	eng.Use(sumfull.New(n), query.Sum)
	sdb := core.NewSDB(eng, "salary")
	const sql = "SELECT sum(salary) WHERE age >= 30"
	q1, err := sdb.Resolver().ResolveSQL("salary", sql)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := sdb.Resolver().ResolveSQL("salary", sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(q1.Set) == 0 || &q1.Set[0] != &q2.Set[0] {
		t.Fatal("repeated statement did not return the interned canonical set")
	}
}
