// Golden decision fixtures for the probabilistic auditors: a scripted
// game's decisions, frozen in testdata/mc_decisions.json, compared at
// several worker counts. This is the CI drift gate for the Monte Carlo
// engine — any change that shifts a decision (engine scheduling, RNG
// streams, stopping rules, polytope arithmetic) fails here before it can
// silently invalidate persisted session journals, whose replay assumes
// decisions are a pure function of the decision history.
//
// Regenerate deliberately after an intentional semantic change:
//
//	go test -run TestMCDecisionFixtures -update-mc-fixtures .
package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/maxminprob"
	"queryaudit/internal/audit/sumprob"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

var updateMCFixtures = flag.Bool("update-mc-fixtures", false, "rewrite testdata/mc_decisions.json from the current engine")

const mcFixturePath = "testdata/mc_decisions.json"

// fixtureAuditor builds one auditor under test at a given worker count.
type fixtureAuditor struct {
	name  string
	kinds []query.Kind
	build func(workers int) (audit.Auditor, error)
}

func fixtureAuditors() []fixtureAuditor {
	const n = 12
	return []fixtureAuditor{
		{
			name:  "sumprob",
			kinds: []query.Kind{query.Sum},
			build: func(workers int) (audit.Auditor, error) {
				return sumprob.New(n, sumprob.Params{
					Lambda: 0.6, Gamma: 2, Delta: 0.2, T: 2,
					OuterSamples: 8, InnerSamples: 40,
					Workers: workers, Seed: 5,
				})
			},
		},
		{
			name:  "maxminprob",
			kinds: []query.Kind{query.Max, query.Min},
			build: func(workers int) (audit.Auditor, error) {
				return maxminprob.New(n, maxminprob.Params{
					Lambda: 0.45, Gamma: 2, Delta: 0.2, T: 4,
					OuterSamples: 8, InnerSamples: 8, MixFactor: 1,
					Workers: workers, Seed: 6,
				})
			},
		},
	}
}

// playFixture runs the deterministic scripted game: pseudo-random query
// sets over a fixed dataset, recording each answered query's true
// answer, and returns the decision sequence as strings.
func playFixture(t *testing.T, fa fixtureAuditor, workers int) []string {
	t.Helper()
	const n, rounds = 12, 16
	ds := dataset.UniformDuplicateFree(randx.New(9), n, 0, 1)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = ds.Sensitive(i)
	}
	a, err := fa.build(workers)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(77)
	out := make([]string, 0, rounds)
	for r := 0; r < rounds; r++ {
		size := 1 + rng.Intn(n-1)
		perm := rng.Perm(n)
		q := query.New(fa.kinds[rng.Intn(len(fa.kinds))], perm[:size]...)
		dec, err := a.Decide(q)
		switch {
		case err != nil:
			out = append(out, "error")
		case dec == audit.Deny:
			out = append(out, "deny")
		default:
			out = append(out, "answer")
			a.Record(q, q.Eval(xs))
		}
	}
	return out
}

// TestMCDecisionFixtures replays the scripted games at worker counts
// {1, 4} and compares every decision to the frozen fixtures.
func TestMCDecisionFixtures(t *testing.T) {
	got := map[string][]string{}
	for _, fa := range fixtureAuditors() {
		seq := playFixture(t, fa, 1)
		answered, denied := 0, 0
		for _, d := range seq {
			switch d {
			case "answer":
				answered++
			case "deny":
				denied++
			}
		}
		if answered == 0 || denied == 0 {
			t.Fatalf("%s: degenerate fixture (answered=%d denied=%d) exercises only one decision path", fa.name, answered, denied)
		}
		for _, workers := range []int{4} {
			par := playFixture(t, fa, workers)
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("%s: decisions at workers=%d diverge from workers=1:\n  %v\n  %v", fa.name, workers, seq, par)
			}
		}
		got[fa.name] = seq
	}

	if *updateMCFixtures {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(mcFixturePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(mcFixturePath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", mcFixturePath)
		return
	}

	data, err := os.ReadFile(mcFixturePath)
	if err != nil {
		t.Fatalf("reading fixtures (run with -update-mc-fixtures to generate): %v", err)
	}
	want := map[string][]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing %s: %v", mcFixturePath, err)
	}
	for name, seq := range got {
		if !reflect.DeepEqual(want[name], seq) {
			t.Errorf("%s: decisions drifted from %s:\n  fixture: %v\n  current: %v\n(regenerate with -update-mc-fixtures ONLY for an intentional semantic change — drift invalidates persisted session journals)",
				name, mcFixturePath, want[name], seq)
		}
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("fixture %q has no corresponding auditor case", name)
		}
	}
}
