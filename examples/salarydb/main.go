// Salarydb: the paper's motivating scenario — a company database where a
// statistician may learn aggregate salary statistics through SQL-ish
// queries over public attributes (age, zip code, department) but never
// any single employee's salary. Shows answers, denials, and how the
// auditor links queries across predicates the user might think are
// unrelated.
package main

import (
	"fmt"

	"queryaudit/internal/audit/maxfull"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

func main() {
	rng := randx.New(42)
	cfg := dataset.DefaultCompanyConfig(200)
	ds := dataset.GenerateCompany(rng, cfg)

	eng := core.NewEngine(ds)
	eng.Use(sumfull.New(ds.N()), query.Sum)
	eng.Use(maxfull.New(ds.N()), query.Max)
	sdb := core.NewSDB(eng, "salary")

	run := func(sql string) {
		resp, err := sdb.Query(sql)
		switch {
		case err != nil:
			fmt.Printf("%-62s error: %v\n", sql, err)
		case resp.Denied:
			fmt.Printf("%-62s DENIED\n", sql)
		default:
			fmt.Printf("%-62s = %.2f\n", sql, resp.Answer)
		}
	}

	fmt.Printf("company database: %s\n\n", ds.Describe())

	fmt.Println("-- ordinary statistics are answered:")
	run("SELECT count(salary) FROM employees WHERE dept = 'eng'")
	run("SELECT sum(salary)   FROM employees WHERE dept = 'eng'")
	run("SELECT avg(salary)   FROM employees WHERE age BETWEEN 30 AND 40")
	run("SELECT max(salary)   FROM employees WHERE zip = '94305'")

	fmt.Println("\n-- but cross-predicate stitching is caught:")
	// sum over engineers was answered above; the same set minus a thin
	// age slice isolates the salaries inside the slice — denied.
	run("SELECT sum(salary) FROM employees WHERE dept = 'eng' AND age >= 22")
	// A max over an answered max's subset is fine while many employees
	// remain candidates for the maximum (large overlap is the safe case
	// of the paper's no-duplicates discussion)…
	run("SELECT max(salary) FROM employees WHERE zip = '94305' AND age <= 60")

	fmt.Println("\n-- narrow predicates that isolate individuals are denied:")
	run("SELECT sum(salary) FROM employees WHERE age BETWEEN 21 AND 21.6")
	run("SELECT max(salary) FROM employees WHERE age BETWEEN 21 AND 21.6")

	fmt.Printf("\nprotocol counters: answered=%d denied=%d\n", eng.Answered(), eng.Denied())
}
