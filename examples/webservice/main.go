// Webservice: the end-to-end deployment — an audited statistical
// database served over HTTP and a statistician's client session against
// it: schema discovery, aggregate queries, a denial, the DBA's
// per-record exposure report, and an update that restores query room.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"queryaudit/internal/audit/maxminfull"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/server"
)

func main() {
	// Server side: a hospital table guarded by the full-disclosure
	// auditors, exactly as cmd/auditserver wires it.
	n := 80
	ds := dataset.GenerateHospital(randx.New(3), dataset.DefaultHospitalConfig(n))
	eng := core.NewEngine(ds)
	eng.Use(sumfull.New(n), query.Sum)
	eng.Use(maxminfull.New(n), query.Max, query.Min)
	srv := httptest.NewServer(server.New(core.NewSDB(eng, "severity")))
	defer srv.Close()
	fmt.Printf("service up at %s (in-process for the example)\n\n", srv.URL)

	get := func(path string) map[string]any {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return out
	}
	post := func(path string, body any) map[string]any {
		raw, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return out
	}
	ask := func(sql string) {
		out := post("/v1/query", server.QueryRequest{SQL: sql})
		if out["denied"] == true {
			fmt.Printf("%-58s DENIED\n", sql)
		} else if e, ok := out["error"]; ok {
			fmt.Printf("%-58s error: %v\n", sql, e)
		} else {
			fmt.Printf("%-58s = %.4f\n", sql, out["answer"])
		}
	}

	fmt.Println("schema:", get("/v1/schema"))
	fmt.Println()

	ask("SELECT avg(severity) WHERE age BETWEEN 0 AND 99")
	ask("SELECT sum(severity) WHERE county = 'alameda'")
	ask("SELECT max(severity) WHERE county = 'alameda'")
	ask("SELECT min(severity) WHERE county = 'alameda'")
	for _, c := range []string{"santa-clara", "san-mateo", "marin"} {
		ask(fmt.Sprintf("SELECT sum(severity) WHERE county = '%s'", c))
	}
	// The avg above committed the whole-table sum; a client asking for
	// everyone except patient 0 (via the explicit-set endpoint) would
	// expose that patient — denied.
	allButZero := make([]int, n-1)
	for i := range allButZero {
		allButZero[i] = i + 1
	}
	out := post("/v1/queryset", server.QuerySetRequest{Kind: "sum", Indices: allButZero})
	fmt.Printf("%-58s denied=%v\n", "sum(severity) of all patients except #0", out["denied"])

	fmt.Println("\nstats:", get("/v1/stats"))

	// The DBA inspects what the answered history exposed.
	know := get("/v1/knowledge")
	auditors := know["auditors"].(map[string]any)
	for name, raw := range auditors {
		entries := raw.([]any)
		constrained := 0
		for _, e := range entries {
			m := e.(map[string]any)
			if m["upper"].(float64) < 1e308 || m["lower"].(float64) > -1e308 {
				constrained++
			}
		}
		fmt.Printf("knowledge[%s]: %d/%d records carry derived bounds\n", name, constrained, len(entries))
	}

	// An update retires stale constraints and restores query room.
	fmt.Println("\npatient 5's severity is re-assessed …")
	post("/v1/update", server.UpdateRequest{Index: 5, Value: 0.31415926})
	fmt.Println("stats after update:", get("/v1/stats"))
}
