// Updates: the Section 5/6 observation that database updates restore
// utility. The paper's example verbatim — after asking for
// x_a + x_b + x_c, the query x_a + x_b is denied; once x_a is modified,
// the stale equation no longer endangers anyone and the same query is
// answered. The example then measures the long-run effect on a larger
// table (the mechanism behind Figure 2 / Plot 2).
package main

import (
	"fmt"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/workload"
)

func main() {
	fmt.Println("-- the paper's update example --")
	ds := dataset.FromValues([]float64{10, 20, 30})
	eng := core.NewEngine(ds)
	eng.Use(sumfull.New(3), query.Sum)

	show := func(q query.Query) {
		resp, err := eng.Ask(q)
		switch {
		case err != nil:
			fmt.Printf("%-14v error: %v\n", q, err)
		case resp.Denied:
			fmt.Printf("%-14v DENIED\n", q)
		default:
			fmt.Printf("%-14v = %.1f\n", q, resp.Answer)
		}
	}

	show(query.New(query.Sum, 0, 1, 2)) // x_a + x_b + x_c
	show(query.New(query.Sum, 0, 1))    // would reveal x_c: denied
	fmt.Println("… employee 0 gets a raise …")
	if err := eng.Update(0, 15); err != nil {
		panic(err)
	}
	show(query.New(query.Sum, 0, 1)) // now answerable

	fmt.Println("\n-- long-run effect (Figure 2 / Plot 2 mechanism) --")
	const n, queries = 200, 500
	for _, period := range []int{0, 10} {
		rng := randx.New(3)
		a := sumfull.New(n)
		gen := workload.UniformRandom{N: n, Kind: query.Sum, Rng: rng}
		upd := workload.UpdateStream{N: n, Period: period, Lo: 0, Hi: 1, Rng: rng}
		answered := 0
		for t := 0; t < queries; t++ {
			if idx, _, due := upd.Tick(); due {
				a.NoteUpdate(idx)
			}
			q := gen.Next()
			if d, err := a.Decide(q); err == nil && d == audit.Answer {
				a.Record(q, 0)
				answered++
			}
		}
		label := "no updates"
		if period > 0 {
			label = fmt.Sprintf("one update per %d queries", period)
		}
		fmt.Printf("%-28s: %3d/%d random sum queries answered\n", label, answered, queries)
	}
}
