// Hospital: auditing bags of max and min queries (Section 4) over a
// patient-severity database, plus the partial-disclosure (probabilistic)
// max auditor of Section 3.1 side by side. Severity scores are in [0,1),
// the exact model of the paper's probabilistic analysis.
package main

import (
	"fmt"

	"queryaudit/internal/audit/maxminfull"
	"queryaudit/internal/audit/maxprob"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

func main() {
	rng := randx.New(7)
	ds := dataset.GenerateHospital(rng, dataset.DefaultHospitalConfig(120))

	fmt.Printf("hospital database: %s\n", ds.Describe())

	// --- Full disclosure: the Section 4 max∧min auditor. ---
	eng := core.NewEngine(ds)
	mm := maxminfull.New(ds.N())
	eng.Use(mm, query.Max, query.Min)
	sdb := core.NewSDB(eng, "severity")

	run := func(s *core.SDB, sql string) {
		resp, err := s.Query(sql)
		switch {
		case err != nil:
			fmt.Printf("  %-58s error: %v\n", sql, err)
		case resp.Denied:
			fmt.Printf("  %-58s DENIED\n", sql)
		default:
			fmt.Printf("  %-58s = %.4f\n", sql, resp.Answer)
		}
	}

	fmt.Println("\nfull-disclosure auditing of a max/min bag:")
	run(sdb, "SELECT max(severity) WHERE county = 'santa-clara'")
	run(sdb, "SELECT min(severity) WHERE county = 'santa-clara'")
	run(sdb, "SELECT max(severity) WHERE age BETWEEN 40 AND 70")
	run(sdb, "SELECT min(severity) WHERE age BETWEEN 40 AND 70")
	// A query isolating a single patient is always refused.
	resp, err := eng.Ask(query.New(query.Max, 17))
	fmt.Printf("  %-58s denied=%v err=%v\n", "max(severity) of patient #17 alone", resp.Denied, err)

	// --- Partial disclosure: the Section 3.1 probabilistic auditor. ---
	ds2 := dataset.GenerateHospital(randx.New(7), dataset.DefaultHospitalConfig(120))
	eng2 := core.NewEngine(ds2)
	probAud, err := maxprob.New(ds2.N(), maxprob.Params{
		Lambda: 0.45, Gamma: 4, Delta: 0.2, T: 50, Samples: 64, Seed: 11,
	})
	if err != nil {
		panic(err)
	}
	eng2.Use(probAud, query.Max)
	sdb2 := core.NewSDB(eng2, "severity")

	fmt.Println("\npartial-disclosure auditing (λ=0.45, γ=4, δ=0.2):")
	fmt.Println("  broad max queries barely move any posterior — answered;")
	fmt.Println("  narrow ones concentrate it — denied.")
	run(sdb2, "SELECT max(severity) WHERE age BETWEEN 0 AND 99")
	run(sdb2, "SELECT max(severity) WHERE age BETWEEN 20 AND 90")
	run(sdb2, "SELECT max(severity) WHERE age BETWEEN 40 AND 44")

	fmt.Printf("\ncounters: full answered=%d denied=%d | partial answered=%d denied=%d\n",
		eng.Answered(), eng.Denied(), eng2.Answered(), eng2.Denied())
}
