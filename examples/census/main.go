// Census: the Section 7 specialization — counting queries over
// one-dimensional age ranges of boolean data ("how many individuals
// between 15 and 25 have the condition?"). Shows the efficient offline
// auditor over prefix-sum difference constraints, the exact bits a
// published table of range counts gives away, and the provable collapse
// of simulatable online auditing on boolean data.
package main

import (
	"fmt"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/boolrange"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

func main() {
	// 20 individuals sorted by age; the sensitive bit is a diagnosis.
	rng := randx.New(11)
	n := 20
	bits := make([]int, n)
	for i := range bits {
		if randx.Bernoulli(rng, 0.4) {
			bits[i] = 1
		}
	}

	rangeQuery := func(i, j int) query.Query {
		var idx []int
		for k := i; k <= j; k++ {
			idx = append(idx, k)
		}
		return query.New(query.Count, idx...)
	}
	countOf := func(q query.Query) float64 {
		c := 0
		for _, i := range q.Set {
			c += bits[i]
		}
		return float64(c)
	}

	// A published contingency-style table of range counts.
	published := []query.Query{
		rangeQuery(0, 9),
		rangeQuery(10, 19),
		rangeQuery(0, 14),
		rangeQuery(5, 19),
		rangeQuery(8, 11),
		// The last two rows differ by one individual — a classic
		// contingency-table pitfall.
		rangeQuery(0, 13),
	}
	var hist []query.Answered
	fmt.Println("published range counts:")
	for _, q := range published {
		a := countOf(q)
		hist = append(hist, query.Answered{Query: q, Answer: a})
		fmt.Printf("  count[%2d..%2d] = %.0f\n", q.Set[0], q.Set[len(q.Set)-1], a)
	}

	consistent, determined, err := boolrange.OfflineAudit(n, hist)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\noffline audit: consistent=%v\n", consistent)
	if len(determined) == 0 {
		fmt.Println("no individual's bit is determined by the published table")
	} else {
		fmt.Println("the published table DETERMINES these individuals' bits:")
		for _, i := range determined {
			fmt.Printf("  individual %2d: bit = %d\n", i, bits[i])
		}
	}

	// The online simulatable auditor collapses on boolean data: any
	// range could have answered 0 (all zeros) or width (all ones), both
	// of which reveal — so everything is denied up front.
	online := boolrange.New(n)
	d, _ := online.Decide(rangeQuery(3, 12))
	fmt.Printf("\nsimulatable online boolean auditing: count[3..12] → %v\n", d)
	if d == audit.Deny {
		fmt.Println("(provably deny-all on boolean data — one of the reasons the")
		fmt.Println(" paper's partial-disclosure definition exists; see package docs)")
	}
}
