// Quickstart: open an audited statistical database over a handful of
// salaries, ask sum queries, and watch the auditor deny exactly the
// query that would expose an individual value.
package main

import (
	"fmt"

	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
)

func main() {
	// Five employees' salaries — the sensitive attribute.
	salaries := []float64{83_000, 91_500, 62_000, 120_000, 75_250}
	ds := dataset.FromValues(salaries)

	// The classical (full-disclosure) simulatable sum auditor of the
	// paper's Section 5: it denies a sum query exactly when its answer,
	// combined with everything answered before, would pin down some
	// individual's salary.
	eng := core.NewEngine(ds)
	eng.Use(sumfull.New(ds.N()), query.Sum)

	ask := func(indices ...int) {
		q := query.New(query.Sum, indices...)
		resp, err := eng.Ask(q)
		switch {
		case err != nil:
			fmt.Printf("%-16v error: %v\n", q, err)
		case resp.Denied:
			fmt.Printf("%-16v DENIED\n", q)
		default:
			fmt.Printf("%-16v = %.2f\n", q, resp.Answer)
		}
	}

	fmt.Println("auditing sum queries over 5 salaries:")
	ask(0, 1, 2, 3, 4) // whole-company total: fine
	ask(0, 1)          // two-person subtotal: fine
	ask(2, 3, 4)       // complement of the above, given the total:
	//                    answering would reveal nothing new — also fine
	ask(1, 2, 3, 4) // but THIS complement would expose employee 0: denied
	ask(0)          // direct probe: denied

	fmt.Printf("\nprotocol counters: answered=%d denied=%d\n",
		eng.Answered(), eng.Denied())
}
