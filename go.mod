module queryaudit

go 1.22
