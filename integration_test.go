// Integration test: one long randomized session through the whole stack
// — HTTP server → SDB → engine → auditors — with trail persistence and
// trace replay, asserting the global privacy invariant (no record ever
// determined) and protocol bookkeeping at every step.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/maxminfull"
	"queryaudit/internal/audit/offline"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/extreme"
	"queryaudit/internal/persist"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/server"
	"queryaudit/internal/trace"
)

func TestEndToEndSession(t *testing.T) {
	const n = 60
	rng := randx.New(12)
	ds := dataset.GenerateHospital(rng, dataset.DefaultHospitalConfig(n))

	eng := core.NewEngine(ds)
	sumAud := sumfull.New(n)
	mmAud := maxminfull.New(n)
	eng.Use(sumAud, query.Sum)
	eng.Use(mmAud, query.Max, query.Min)

	srv := httptest.NewServer(server.New(core.NewSDB(eng, "severity")))
	defer srv.Close()

	var answeredMaxMin []extreme.Constraint
	var sumHistory []query.Answered
	var traceBuf bytes.Buffer
	recEnc := json.NewEncoder(&traceBuf)

	post := func(body server.QuerySetRequest) (map[string]any, int) {
		raw, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+"/v1/queryset", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return out, resp.StatusCode
	}

	kinds := []query.Kind{query.Sum, query.Max, query.Min}
	answered, denied := 0, 0
	for step := 0; step < 250; step++ {
		kind := kinds[rng.Intn(len(kinds))]
		set := query.NewSet(randx.SubsetSizeBetween(rng, n, 2, n)...)
		out, code := post(server.QuerySetRequest{Kind: kind.String(), Indices: set})
		if code != http.StatusOK {
			t.Fatalf("step %d: status %d (%v)", step, code, out)
		}
		ev := trace.Event{Type: "query", Kind: kind.String(), Indices: set}
		if out["denied"] == true {
			denied++
			ev.Denied = true
		} else {
			answered++
			ans := out["answer"].(float64)
			ev.Answer = ans
			switch kind {
			case query.Sum:
				sumHistory = append(sumHistory, query.Answered{
					Query: query.Query{Set: set, Kind: kind}, Answer: ans,
				})
			default:
				answeredMaxMin = append(answeredMaxMin, extreme.Constraint{
					Set: set, Value: ans, IsMax: kind == query.Max, Rel: extreme.RelEq,
				})
			}
		}
		if err := recEnc.Encode(ev); err != nil {
			t.Fatal(err)
		}

		// Global privacy invariant, re-derived from scratch every 25
		// steps by the independent offline analyses.
		if step%25 == 24 {
			res := extreme.Analyze(n, answeredMaxMin)
			if !res.Consistent {
				t.Fatalf("step %d: answered max/min history inconsistent", step)
			}
			if res.Compromised {
				t.Fatalf("step %d: max/min history determines a record", step)
			}
			sumRes, err := offline.AuditSum(n, sumHistory)
			if err != nil {
				t.Fatal(err)
			}
			if sumRes.Compromised || sumAud.Compromised() {
				t.Fatalf("step %d: sum trail compromised", step)
			}
		}
	}
	if answered == 0 || denied == 0 {
		t.Fatalf("degenerate session: answered=%d denied=%d", answered, denied)
	}
	if eng.Answered() != answered || eng.Denied() != denied {
		t.Fatalf("counter drift: engine (%d,%d) vs observed (%d,%d)",
			eng.Answered(), eng.Denied(), answered, denied)
	}

	// Persist the sum trail, restore it, and check decision agreement.
	var snap bytes.Buffer
	if err := persist.Save(&snap, sumAud); err != nil {
		t.Fatal(err)
	}
	snapBytes := snap.Len()
	restoredAny, _, err := persist.Load(&snap)
	if err != nil {
		t.Fatal(err)
	}
	restored := restoredAny.(interface {
		Decide(query.Query) (audit.Decision, error)
	})
	for probe := 0; probe < 40; probe++ {
		set := query.NewSet(randx.SubsetSizeBetween(rng, n, 2, n)...)
		q := query.Query{Set: set, Kind: query.Sum}
		d1, _ := sumAud.Decide(q)
		d2, _ := restored.Decide(q)
		if d1 != d2 {
			t.Fatalf("restored sum auditor diverged on %v", q)
		}
	}

	// Replay the recorded trace against a fresh identical stack: every
	// decision must reproduce (simulatability makes them functions of
	// the history alone) and answers must match (same data).
	ds2 := dataset.GenerateHospital(randx.New(12), dataset.DefaultHospitalConfig(n))
	eng2 := core.NewEngine(ds2)
	eng2.Use(sumfull.New(n), query.Sum)
	eng2.Use(maxminfull.New(n), query.Max, query.Min)
	rep, err := trace.Replay(bytes.NewReader(traceBuf.Bytes()), eng2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || len(rep.AnswerMismatches) != 0 {
		t.Fatalf("replay drift: %+v", rep)
	}

	// The knowledge endpoint agrees with the synopsis-derived exposure.
	resp, err := http.Get(srv.URL + "/v1/knowledge")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var know server.KnowledgeResponse
	if err := json.NewDecoder(resp.Body).Decode(&know); err != nil {
		t.Fatal(err)
	}
	ks, ok := know.Auditors[mmAud.Name()]
	if !ok || len(ks) != n {
		t.Fatalf("knowledge report missing or wrong size: %v", know.Auditors)
	}
	for _, k := range ks {
		if k.Pinned {
			t.Fatalf("knowledge reports a pinned record %d — privacy invariant broken", k.Index)
		}
		v := ds.Sensitive(k.Index)
		if v < k.Lower || v > k.Upper {
			t.Fatalf("record %d: true value %g outside reported bounds [%g, %g]",
				k.Index, v, k.Lower, k.Upper)
		}
	}
	fmt.Printf("integration session: %d answered, %d denied, trail %d bytes\n",
		answered, denied, snapBytes)
}
