// Ablation benchmarks for the design choices DESIGN.md calls out: the
// O(n) synopsis trail vs raw-history analysis, the GF(2^61−1) field vs
// exact rationals, and the closed-form decision paths vs their
// clone-and-fold references.
package main

import (
	"fmt"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/maxdup"
	"queryaudit/internal/audit/maxfull"
	"queryaudit/internal/audit/offline"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/extreme"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/synopsis"
)

// BenchmarkAblationSynopsisVsRawHistory compares compromise analysis
// through the O(n) synopsis against the same analysis over the raw
// answered query log — the paper's reason for blackbox B.
func BenchmarkAblationSynopsisVsRawHistory(b *testing.B) {
	const n = 300
	rng := randx.New(1)
	xs := randx.DuplicateFreeDataset(rng, n, 0, 1)
	syn := synopsis.NewMaxMin(n, 0, 1)
	var raw []extreme.Constraint
	answered := 0
	for answered < 120 {
		set := query.NewSet(randx.SubsetSizeBetween(rng, n, 20, 150)...)
		q := query.Query{Set: set, Kind: query.Max}
		ans := q.Eval(xs)
		if err := syn.AddMax(set, ans); err != nil {
			continue
		}
		raw = append(raw, extreme.Constraint{Set: set, Value: ans, IsMax: true, Rel: extreme.RelEq})
		answered++
	}
	b.Run("synopsis", func(b *testing.B) {
		cons := extreme.FromSynopsis(syn)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			extreme.Analyze(n, cons)
		}
		b.ReportMetric(float64(len(cons)), "constraints")
	})
	b.Run("raw-history", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			extreme.Analyze(n, raw)
		}
		b.ReportMetric(float64(len(raw)), "constraints")
	})
}

// BenchmarkAblationFieldGF61VsRat compares one sum-auditing decision in
// the fast prime field against exact rationals.
func BenchmarkAblationFieldGF61VsRat(b *testing.B) {
	const n = 200
	setup := func(record func(q query.Query)) []query.Query {
		rng := randx.New(2)
		var probes []query.Query
		for t := 0; t < n-20; t++ {
			q := query.Query{Set: query.NewSet(randx.Subset(rng, n)...), Kind: query.Sum}
			record(q)
		}
		for t := 0; t < 32; t++ {
			probes = append(probes, query.Query{Set: query.NewSet(randx.Subset(rng, n)...), Kind: query.Sum})
		}
		return probes
	}
	b.Run("gf61", func(b *testing.B) {
		a := sumfull.New(n)
		probes := setup(func(q query.Query) {
			if d, _ := a.Decide(q); d == audit.Answer {
				a.Record(q, 0)
			}
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.Decide(probes[i%len(probes)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rat", func(b *testing.B) {
		a := sumfull.NewExact(n)
		probes := setup(func(q query.Query) {
			if d, _ := a.Decide(q); d == audit.Answer {
				a.Record(q, 0)
			}
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.Decide(probes[i%len(probes)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationMaxFastVsReference compares the closed-form candidate
// evaluation of the no-duplicates max auditor against the direct
// clone-and-fold Algorithm 3.
func BenchmarkAblationMaxFastVsReference(b *testing.B) {
	const n = 300
	rng := randx.New(3)
	xs := randx.DuplicateFreeDataset(rng, n, 0, 1)
	a := maxfull.New(n)
	for t := 0; t < 2*n; t++ {
		q := query.Query{Set: query.NewSet(randx.Subset(rng, n)...), Kind: query.Max}
		if d, _ := a.Decide(q); d == audit.Answer {
			a.Record(q, q.Eval(xs))
		}
	}
	probes := make([]query.Query, 32)
	for i := range probes {
		probes[i] = query.Query{Set: query.NewSet(randx.Subset(rng, n)...), Kind: query.Max}
	}
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := a.Decide(probes[i%len(probes)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := a.DecideReference(probes[i%len(probes)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationDuplicatesVsNo compares per-decision cost of the
// duplicates-allowed [21] auditor against the no-duplicates Section 4
// auditor on identical histories.
func BenchmarkAblationDuplicatesVsNo(b *testing.B) {
	const n = 300
	build := func(record func(q query.Query, ans float64) bool) []query.Query {
		rng := randx.New(4)
		xs := randx.DuplicateFreeDataset(rng, n, 0, 1)
		for t := 0; t < 2*n; t++ {
			q := query.Query{Set: query.NewSet(randx.Subset(rng, n)...), Kind: query.Max}
			record(q, q.Eval(xs))
		}
		probes := make([]query.Query, 32)
		for i := range probes {
			probes[i] = query.Query{Set: query.NewSet(randx.Subset(rng, n)...), Kind: query.Max}
		}
		return probes
	}
	b.Run("duplicates-allowed", func(b *testing.B) {
		a := maxdup.New(n)
		probes := build(func(q query.Query, ans float64) bool {
			if d, _ := a.Decide(q); d == audit.Answer {
				a.Record(q, ans)
				return true
			}
			return false
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.Decide(probes[i%len(probes)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("no-duplicates", func(b *testing.B) {
		a := maxfull.New(n)
		probes := build(func(q query.Query, ans float64) bool {
			if d, _ := a.Decide(q); d == audit.Answer {
				a.Record(q, ans)
				return true
			}
			return false
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.Decide(probes[i%len(probes)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOfflineSumMaxGrowth shows the NP-hardness of offline
// sum-and-max auditing operationally: per-decision time grows with the
// witness-assignment space (product of max-query set sizes), unlike the
// polynomial single-aggregate auditors.
func BenchmarkOfflineSumMaxGrowth(b *testing.B) {
	for _, queries := range []int{2, 4, 6, 8} {
		b.Run(fmt.Sprintf("maxqueries-%d", queries), func(b *testing.B) {
			n := 10
			rng := randx.New(int64(queries))
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(rng.Intn(50))
			}
			var hist []query.Answered
			total := query.New(query.Sum, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
			hist = append(hist, query.Answered{Query: total, Answer: total.Eval(xs)})
			for k := 0; k < queries; k++ {
				set := query.NewSet(randx.SubsetOfSize(rng, n, 3)...)
				q := query.Query{Set: set, Kind: query.Max}
				hist = append(hist, query.Answered{Query: q, Answer: q.Eval(xs)})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := offline.AuditSumMax(n, hist, 1<<20); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
