package qindex

import (
	"container/list"
	"sync"

	"queryaudit/internal/query"
)

// Interner hash-conses query sets: structurally equal sets resolve to
// one canonical, pointer-equal (shared backing array) instance, so
// repeated and hot-key-skewed queries allocate nothing after first
// resolution and auditors comparing a query against a logged one can
// short-circuit on identity (&s[0] == &t[0]) before falling back to
// element-wise Equal.
//
// Canonical sets are read-only and capacity-clipped: an append to one
// always reallocates, so no caller can clobber a set another session
// holds. The table is LRU-bounded; evicting an entry only forgets the
// canonical pointer (outstanding references stay valid — sets are
// immutable), so a re-interned set after eviction is merely a fresh
// allocation, never a correctness event.
//
// Hashing is FNV-1a over the index values — deterministic across
// processes and runs, so replay/replication never observe an
// intern-order dependence.
type Interner struct {
	mu  sync.Mutex
	max int
	// table buckets canonical entries by content hash; collisions are
	// resolved by element-wise comparison.
	table map[uint64][]*internEntry // auditlint:guardedby(mu)
	lru   *list.List                // auditlint:guardedby(mu)
	hits  uint64                    // auditlint:guardedby(mu)
	miss  uint64                    // auditlint:guardedby(mu)
	evict uint64                    // auditlint:guardedby(mu)
	// onEvict, when set, fires once per eviction WITH mu held — keep it
	// atomic-only (see Observer).
	onEvict func() // auditlint:guardedby(mu)
}

type internEntry struct {
	hash uint64
	set  query.Set
	elem *list.Element
}

// DefaultInternEntries bounds the interner when the caller passes 0.
const DefaultInternEntries = 8192

// NewInterner returns an interner bounded to max canonical sets
// (0 selects DefaultInternEntries; negative means unbounded).
func NewInterner(max int) *Interner {
	if max == 0 {
		max = DefaultInternEntries
	}
	return &Interner{max: max, table: make(map[uint64][]*internEntry), lru: list.New()}
}

// Intern returns the canonical instance of s, registering s (clipped to
// exact capacity) if no structurally equal set is known. The empty set
// canonicalizes to nil.
func (in *Interner) Intern(s query.Set) query.Set {
	c, _ := in.intern(s)
	return c
}

// intern is Intern plus whether the set was already known (the empty set
// counts as known — it allocates nothing either way).
func (in *Interner) intern(s query.Set) (query.Set, bool) {
	if len(s) == 0 {
		return nil, true
	}
	h := hashSet(s)
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, e := range in.table[h] {
		if e.set.Equal(s) {
			in.hits++
			in.lru.MoveToFront(e.elem)
			return e.set, true
		}
	}
	in.miss++
	e := &internEntry{hash: h, set: s[:len(s):len(s)]}
	e.elem = in.lru.PushFront(e)
	in.table[h] = append(in.table[h], e)
	if in.max > 0 && in.lru.Len() > in.max {
		in.evictOldestLocked()
	}
	return e.set, false
}

// evictOldestLocked drops the least-recently interned set; callers hold mu.
func (in *Interner) evictOldestLocked() {
	back := in.lru.Back()
	if back == nil {
		return
	}
	in.lru.Remove(back)
	e := back.Value.(*internEntry)
	bucket := in.table[e.hash]
	for i, be := range bucket {
		if be == e {
			bucket = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(bucket) == 0 {
		delete(in.table, e.hash)
	} else {
		in.table[e.hash] = bucket
	}
	in.evict++
	if in.onEvict != nil {
		in.onEvict()
	}
}

// setEvictHook installs fn (nil disables), fired on each eviction.
func (in *Interner) setEvictHook(fn func()) {
	in.mu.Lock()
	in.onEvict = fn
	in.mu.Unlock()
}

// InternStats is a point-in-time view of the interner's counters.
type InternStats struct {
	Size      int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Stats returns the interner counters under one lock acquisition.
func (in *Interner) Stats() InternStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return InternStats{Size: in.lru.Len(), Hits: in.hits, Misses: in.miss, Evictions: in.evict}
}

// hashSet is FNV-1a over the little-endian bytes of each index.
func hashSet(s query.Set) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range s {
		x := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	return h
}
