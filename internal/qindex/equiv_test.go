package qindex

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
)

// The index's correctness contract is equivalence with the naive row
// scan over the FULL predicate grammar — including the scan's corner
// cases (unknown attributes, cross-kind comparisons, NaN, inverted and
// unbounded ranges, empty results). These tests are the contract.

// genDataset builds a random dataset exercising every semantic corner:
// numeric duplicates, extreme magnitudes (±MaxFloat64, ±Inf is not
// generatable by predicates on data but MaxFloat64 is), NaN rows, and
// categorical skew.
func genDataset(rng *rand.Rand) *dataset.Dataset {
	n := rng.Intn(60)
	schema := dataset.Schema{
		{Name: "age", Kind: dataset.Numeric},
		{Name: "zip", Kind: dataset.Categorical},
		{Name: "dept", Kind: dataset.Categorical},
		{Name: "big", Kind: dataset.Numeric},
	}
	zips := []string{"94305", "94301", "", "95014"}
	depts := []string{"eng", "sales", "hr"}
	rows := make([]dataset.Record, n)
	for i := range rows {
		age := math.Floor(rng.Float64()*50) + 20 // coarse → duplicates
		big := (rng.Float64() - 0.5) * 2 * math.MaxFloat64
		switch rng.Intn(10) {
		case 0:
			big = math.MaxFloat64
		case 1:
			big = -math.MaxFloat64
		case 2:
			big = math.NaN()
		}
		rows[i] = dataset.Record{
			Public: []dataset.Value{
				dataset.NumValue(age),
				dataset.StrValue(zips[rng.Intn(len(zips))]),
				dataset.StrValue(depts[rng.Intn(len(depts))]),
				dataset.NumValue(big),
			},
			Sensitive: rng.Float64(),
		}
	}
	return dataset.New(schema, rows)
}

// genPred builds a random predicate tree over (mostly) the generated
// schema, deliberately including unknown attributes, string equality on
// numeric attributes, numeric ranges on categorical attributes,
// inverted bounds, NaN bounds, and unbounded (±Inf) bounds.
func genPred(rng *rand.Rand, depth int) dataset.Predicate {
	attrs := []string{"age", "zip", "dept", "big", "nope"}
	attr := attrs[rng.Intn(len(attrs))]
	choice := rng.Intn(6)
	if depth <= 0 && choice >= 4 {
		choice = rng.Intn(4)
	}
	switch choice {
	case 0:
		lo := math.Floor(rng.Float64()*60) + 15
		hi := lo + math.Floor(rng.Float64()*20) - 5 // sometimes inverted
		switch rng.Intn(12) {
		case 0:
			lo = math.Inf(-1)
		case 1:
			hi = math.Inf(1)
		case 2:
			lo, hi = math.Inf(-1), math.Inf(1)
		case 3:
			hi = math.NaN()
		case 4:
			lo = -math.MaxFloat64
			hi = math.MaxFloat64
		}
		return dataset.RangePred{Attr: attr, Lo: lo, Hi: hi}
	case 1:
		vals := []string{"94305", "94301", "", "eng", "sales", "absent"}
		return dataset.EqPred{Attr: attr, Val: vals[rng.Intn(len(vals))]}
	case 2:
		return dataset.TruePred{}
	case 3:
		// Point range (the parser's attr = <num> form).
		x := math.Floor(rng.Float64()*60) + 15
		return dataset.RangePred{Attr: attr, Lo: x, Hi: x}
	case 4:
		sub := make(dataset.AndPred, rng.Intn(4))
		for i := range sub {
			sub[i] = genPred(rng, depth-1)
		}
		return sub
	default:
		sub := make(dataset.OrPred, rng.Intn(4))
		for i := range sub {
			sub[i] = genPred(rng, depth-1)
		}
		return sub
	}
}

func setsEqual(a, b query.Set) bool {
	if len(a) != len(b) {
		return false
	}
	return a.Equal(b)
}

// TestIndexEquivalentToScan is the core property test: for random
// datasets and random predicate trees, indexed resolution equals the
// naive scan exactly.
func TestIndexEquivalentToScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		ds := genDataset(rng)
		ix := Build(ds)
		for p := 0; p < 60; p++ {
			pred := genPred(rng, 2)
			want := ds.Select(pred)
			got := ix.Select(pred)
			if !setsEqual(want, got) {
				t.Fatalf("trial %d: pred %s on %d rows:\n  scan  %v\n  index %v",
					trial, pred, ds.N(), want, got)
			}
		}
	}
}

// TestResolverEquivalentAndStable checks the memoized path: same
// results as the scan, and repeated resolution returns the pointer-
// identical interned set with no new allocation.
func TestResolverEquivalentAndStable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		ds := genDataset(rng)
		r := NewResolver(ds, Options{})
		for p := 0; p < 40; p++ {
			pred := genPred(rng, 2)
			want := ds.Select(pred)
			got1 := r.Select(pred)
			got2 := r.Select(pred)
			if !setsEqual(want, got1) {
				t.Fatalf("trial %d: pred %s: scan %v resolver %v", trial, pred, want, got1)
			}
			if len(got1) > 0 && &got1[0] != &got2[0] {
				t.Fatalf("trial %d: pred %s: repeated resolution not pointer-stable", trial, pred)
			}
		}
	}
}

// TestUnknownPredicateFallsBack checks that predicate types the index
// does not recognize are served by the naive scan, not dropped.
func TestUnknownPredicateFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := genDataset(rng)
	for ds.N() == 0 {
		ds = genDataset(rng)
	}
	ix := Build(ds)
	pred := oddPred{}
	if got, want := ix.Select(pred), ds.Select(pred); !setsEqual(got, want) {
		t.Fatalf("fallback: got %v want %v", got, want)
	}
	// Inside a conjunction the whole tree must fall back.
	and := dataset.AndPred{dataset.TruePred{}, oddPred{}}
	if got, want := ix.Select(and), ds.Select(and); !setsEqual(got, want) {
		t.Fatalf("fallback in AND: got %v want %v", got, want)
	}
}

// oddPred matches every third row — a predicate shape qindex cannot
// index (it is not defined over public attributes).
type oddPred struct{}

func (oddPred) Match(_ *dataset.Dataset, i int) bool { return i%3 == 0 }
func (oddPred) String() string                       { return "ODD" }

// FuzzRangeEquivalence drives the numeric range path with arbitrary
// float bounds (including NaN, ±Inf, denormals) against a fixed dataset.
func FuzzRangeEquivalence(f *testing.F) {
	f.Add(20.0, 40.0)
	f.Add(math.Inf(-1), math.Inf(1))
	f.Add(math.NaN(), 10.0)
	f.Add(40.0, 20.0)
	f.Add(1e308, math.MaxFloat64)
	rng := rand.New(rand.NewSource(19))
	ds := genDataset(rng)
	for ds.N() < 10 {
		ds = genDataset(rng)
	}
	ix := Build(ds)
	f.Fuzz(func(t *testing.T, lo, hi float64) {
		for _, attr := range []string{"age", "big", "zip", "nope"} {
			pred := dataset.RangePred{Attr: attr, Lo: lo, Hi: hi}
			want := ds.Select(pred)
			got := ix.Select(pred)
			if !setsEqual(want, got) {
				t.Fatalf("range [%v,%v] on %s: scan %v index %v", lo, hi, attr, want, got)
			}
		}
	})
}

// FuzzEqEquivalence drives string equality with arbitrary values across
// attributes of both kinds.
func FuzzEqEquivalence(f *testing.F) {
	f.Add("eng", "dept")
	f.Add("", "age")
	f.Add("94305", "zip")
	rng := rand.New(rand.NewSource(23))
	ds := genDataset(rng)
	for ds.N() < 10 {
		ds = genDataset(rng)
	}
	ix := Build(ds)
	f.Fuzz(func(t *testing.T, val, attr string) {
		pred := dataset.EqPred{Attr: attr, Val: val}
		want := ds.Select(pred)
		got := ix.Select(pred)
		if !setsEqual(want, got) {
			t.Fatalf("eq %q on %q: scan %v index %v", val, attr, want, got)
		}
	})
}

// TestEmptyDataset covers the n = 0 boundary of every path.
func TestEmptyDataset(t *testing.T) {
	ds := dataset.New(dataset.Schema{{Name: "age", Kind: dataset.Numeric}}, nil)
	r := NewResolver(ds, Options{})
	for _, pred := range []dataset.Predicate{
		dataset.TruePred{},
		dataset.RangePred{Attr: "age", Lo: 0, Hi: 100},
		dataset.EqPred{Attr: "age", Val: ""},
		dataset.AndPred{},
		dataset.OrPred{},
	} {
		if got := r.Select(pred); len(got) != 0 {
			t.Fatalf("pred %s on empty dataset: got %v", pred, got)
		}
	}
	_ = fmt.Sprint(r.Stats())
}
