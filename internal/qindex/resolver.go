package qindex

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
	"time"

	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
)

// Observer receives resolver cache events for instrumentation. The
// callbacks run on the serving path (some while the resolver lock is
// held) so implementations must be fast and lock-free — atomic counters,
// as in metrics.QIndexCollector.
type Observer interface {
	// ObserveResolve reports one lookup in the named cache layer
	// ("sql" — statement-string memo; "pred" — predicate memo).
	ObserveResolve(layer string, hit bool)
	// ObserveIntern reports one set interning (hit = canonical instance
	// already existed).
	ObserveIntern(hit bool)
	// ObserveEviction reports one LRU eviction from the named layer
	// ("sql", "pred" or "intern").
	ObserveEviction(layer string)
	// ObserveBuild reports one index build: rows covered and wall time.
	ObserveBuild(rows int, elapsed time.Duration)
}

// Options sizes the resolver's caches. Zero values select defaults.
type Options struct {
	// PredEntries bounds the predicate → set memo (default 4096;
	// negative = unbounded).
	PredEntries int
	// SQLEntries bounds the statement-string → query memo (default
	// 4096; negative = unbounded).
	SQLEntries int
	// InternEntries bounds the canonical-set table (default
	// DefaultInternEntries; negative = unbounded).
	InternEntries int
}

// DefaultCacheEntries bounds the pred and sql memos when Options leaves
// them 0.
const DefaultCacheEntries = 4096

// Resolver is the serving-path façade over the index: predicate and
// statement resolution with interned results and LRU memoization. Safe
// for concurrent use. Because public attributes are immutable (dataset
// updates touch only sensitive values), cached entries never go stale;
// the LRU bound exists only to cap memory under adversarial query
// diversity.
type Resolver struct {
	idx *Index
	in  *Interner

	mu    sync.Mutex
	obs   Observer              // auditlint:guardedby(mu)
	preds *lru[query.Set]       // auditlint:guardedby(mu)
	sqls  *lru[cachedStatement] // auditlint:guardedby(mu)

	buildRows    int
	buildElapsed time.Duration
}

// cachedStatement is one memoized statement resolution.
type cachedStatement struct {
	q query.Query
}

// NewResolver builds the index over ds and wraps it with empty caches.
func NewResolver(ds *dataset.Dataset, opt Options) *Resolver {
	start := time.Now() //auditlint:allow detrand build-duration stat for ops visibility; never read by resolution or decisions
	idx := Build(ds)
	r := &Resolver{
		idx:          idx,
		in:           NewInterner(opt.InternEntries),
		preds:        newLRU[query.Set](orDefault(opt.PredEntries, DefaultCacheEntries)),
		sqls:         newLRU[cachedStatement](orDefault(opt.SQLEntries, DefaultCacheEntries)),
		buildRows:    ds.N(),
		buildElapsed: time.Since(start),
	}
	return r
}

func orDefault(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// Index returns the underlying immutable index.
func (r *Resolver) Index() *Index { return r.idx }

// Interner returns the canonical-set table, shared with the explicit
// queryset path so both resolution surfaces yield pointer-equal sets.
func (r *Resolver) Interner() *Interner { return r.in }

// SetObserver installs the instrumentation hook (nil disables) and
// reports the deferred build cost to it, so collectors wired after
// construction still see qindex_build_* populated.
func (r *Resolver) SetObserver(o Observer) {
	r.mu.Lock()
	r.obs = o
	r.mu.Unlock()
	if o != nil {
		r.in.setEvictHook(func() { o.ObserveEviction("intern") })
		o.ObserveBuild(r.buildRows, r.buildElapsed)
	} else {
		r.in.setEvictHook(nil)
	}
}

// Intern canonicalizes an externally built set (the /v1/queryset path).
func (r *Resolver) Intern(s query.Set) query.Set {
	c, hit := r.in.intern(s)
	r.observeIntern(hit)
	return c
}

// Select resolves pred through the memo and index; the result is
// interned, capacity-clipped and shared — callers must not mutate it.
// It implements the core.Selector interface, drop-in for
// (*dataset.Dataset).Select.
func (r *Resolver) Select(pred dataset.Predicate) query.Set {
	key, cacheable := predKey(pred)
	if !cacheable {
		// A predicate type we cannot canonically serialize is resolved
		// fresh every time (the index itself falls back to the scan);
		// the result is still interned so repeats share memory.
		s, hit := r.in.intern(r.idx.Select(pred))
		r.observeIntern(hit)
		return s
	}
	r.mu.Lock()
	if s, ok := r.preds.get(key); ok {
		obs := r.obs
		r.mu.Unlock()
		if obs != nil {
			obs.ObserveResolve("pred", true)
		}
		return s
	}
	r.mu.Unlock()
	// Resolve outside the lock: a slow naive fallback must not block
	// cache hits. A concurrent duplicate miss resolves to an identical,
	// interner-deduplicated set, so double insertion is benign.
	s, hit := r.in.intern(r.idx.Select(pred))
	r.mu.Lock()
	obs := r.obs
	evicted := r.preds.add(key, s)
	r.mu.Unlock()
	if obs != nil {
		obs.ObserveIntern(hit)
		obs.ObserveResolve("pred", false)
		if evicted {
			obs.ObserveEviction("pred")
		}
	}
	return s
}

// CachedQuery memoizes a statement-level resolution under key (the
// normalized SQL text). On a miss, build runs outside the resolver lock
// and its result — when it carries a non-empty set — is interned and
// cached. Errors are never cached: the error path re-parses, keeping
// malformed-query handling identical to the uncached resolver.
func (r *Resolver) CachedQuery(key string, build func() (query.Query, error)) (query.Query, error) {
	r.mu.Lock()
	if c, ok := r.sqls.get(key); ok {
		obs := r.obs
		r.mu.Unlock()
		if obs != nil {
			obs.ObserveResolve("sql", true)
		}
		return c.q, nil
	}
	r.mu.Unlock()
	q, err := build()
	if err != nil {
		r.observeResolve("sql", false)
		return q, err
	}
	s, hit := r.in.intern(q.Set)
	q.Set = s
	r.mu.Lock()
	obs := r.obs
	evicted := r.sqls.add(key, cachedStatement{q: q})
	r.mu.Unlock()
	if obs != nil {
		obs.ObserveIntern(hit)
		obs.ObserveResolve("sql", false)
		if evicted {
			obs.ObserveEviction("sql")
		}
	}
	return q, nil
}

// predKey serializes a predicate tree into an unambiguous cache key.
// pred.String() is NOT usable here: the SQL-ish rendering is ambiguous —
// an empty AndPred and an empty OrPred both print "" (but mean
// "everything" vs "nothing"), and "A AND B OR C" could be either
// AndPred{A, OrPred{B, C}} or OrPred{AndPred{A, B}, C}. The key instead
// tags every node, length-prefixes every string, and renders floats as
// exact hex. ok is false for predicate types this package cannot
// serialize; those bypass the memo.
func predKey(pred dataset.Predicate) (string, bool) {
	var b strings.Builder
	if !appendPredKey(&b, pred) {
		return "", false
	}
	return b.String(), true
}

func appendPredKey(b *strings.Builder, pred dataset.Predicate) bool {
	switch p := pred.(type) {
	case dataset.TruePred:
		b.WriteByte('T')
	case dataset.EqPred:
		b.WriteByte('E')
		writeLenPrefixed(b, p.Attr)
		writeLenPrefixed(b, p.Val)
	case dataset.RangePred:
		b.WriteByte('R')
		writeLenPrefixed(b, p.Attr)
		b.WriteString(strconv.FormatFloat(p.Lo, 'x', -1, 64))
		b.WriteByte(',')
		b.WriteString(strconv.FormatFloat(p.Hi, 'x', -1, 64))
	case dataset.AndPred:
		b.WriteByte('A')
		b.WriteString(strconv.Itoa(len(p)))
		b.WriteByte('(')
		for _, sub := range p {
			if !appendPredKey(b, sub) {
				return false
			}
		}
		b.WriteByte(')')
	case dataset.OrPred:
		b.WriteByte('O')
		b.WriteString(strconv.Itoa(len(p)))
		b.WriteByte('(')
		for _, sub := range p {
			if !appendPredKey(b, sub) {
				return false
			}
		}
		b.WriteByte(')')
	default:
		return false
	}
	return true
}

func writeLenPrefixed(b *strings.Builder, s string) {
	b.WriteString(strconv.Itoa(len(s)))
	b.WriteByte(':')
	b.WriteString(s)
}

func (r *Resolver) observeResolve(layer string, hit bool) {
	r.mu.Lock()
	obs := r.obs
	r.mu.Unlock()
	if obs != nil {
		obs.ObserveResolve(layer, hit)
	}
}

func (r *Resolver) observeIntern(hit bool) {
	r.mu.Lock()
	obs := r.obs
	r.mu.Unlock()
	if obs != nil {
		obs.ObserveIntern(hit)
	}
}

// Stats is a point-in-time view of the resolver's cache occupancy.
type Stats struct {
	PredEntries int
	SQLEntries  int
	Intern      InternStats
}

// Stats reports cache occupancy and interner counters.
func (r *Resolver) Stats() Stats {
	r.mu.Lock()
	st := Stats{PredEntries: r.preds.len(), SQLEntries: r.sqls.len()}
	r.mu.Unlock()
	st.Intern = r.in.Stats()
	return st
}

// lru is a minimal string-keyed LRU map. Not goroutine-safe; the owner
// locks around it.
type lru[V any] struct {
	max int
	m   map[string]*list.Element
	l   *list.List
}

type lruPair[V any] struct {
	key string
	val V
}

func newLRU[V any](max int) *lru[V] {
	return &lru[V]{max: max, m: make(map[string]*list.Element), l: list.New()}
}

func (c *lru[V]) len() int { return c.l.Len() }

func (c *lru[V]) get(key string) (V, bool) {
	if e, ok := c.m[key]; ok {
		c.l.MoveToFront(e)
		return e.Value.(*lruPair[V]).val, true
	}
	var zero V
	return zero, false
}

// add inserts key → val (refreshing an existing key) and reports whether
// an old entry was evicted to stay within the bound.
func (c *lru[V]) add(key string, val V) bool {
	if e, ok := c.m[key]; ok {
		e.Value.(*lruPair[V]).val = val
		c.l.MoveToFront(e)
		return false
	}
	c.m[key] = c.l.PushFront(&lruPair[V]{key: key, val: val})
	if c.max > 0 && c.l.Len() > c.max {
		back := c.l.Back()
		c.l.Remove(back)
		delete(c.m, back.Value.(*lruPair[V]).key)
		return true
	}
	return false
}
