package qindex

import (
	"errors"
	"sync"
	"testing"
	"time"

	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

func companyDS(n int) *dataset.Dataset {
	return dataset.GenerateCompany(randx.New(1), dataset.DefaultCompanyConfig(n))
}

func TestInternerCanonicalizes(t *testing.T) {
	in := NewInterner(0)
	a := in.Intern(query.NewSet(3, 1, 2))
	b := in.Intern(query.NewSet(1, 2, 3))
	if &a[0] != &b[0] {
		t.Fatalf("equal sets not pointer-equal after interning")
	}
	if c := in.Intern(query.NewSet(9)); &c[0] == &a[0] {
		t.Fatalf("distinct sets interned to the same instance")
	}
	if got := in.Intern(nil); got != nil {
		t.Fatalf("empty set should canonicalize to nil, got %v", got)
	}
	st := in.Stats()
	if st.Hits != 1 || st.Size != 2 {
		t.Fatalf("stats = %+v, want 1 hit, 2 entries", st)
	}
}

func TestInternerClipsCapacity(t *testing.T) {
	in := NewInterner(0)
	backing := make(query.Set, 2, 8)
	backing[0], backing[1] = 4, 7
	c := in.Intern(backing)
	if cap(c) != len(c) {
		t.Fatalf("canonical set not capacity-clipped: len %d cap %d", len(c), cap(c))
	}
	// Appending to the canonical set must reallocate, never write into
	// shared memory.
	grown := append(c, 99)
	again := in.Intern(query.NewSet(4, 7))
	if len(again) != 2 || again[0] != 4 || again[1] != 7 {
		t.Fatalf("canonical set clobbered by append: %v (grown %v)", again, grown)
	}
}

func TestInternerEvicts(t *testing.T) {
	in := NewInterner(3)
	for i := 0; i < 10; i++ {
		in.Intern(query.NewSet(i))
	}
	st := in.Stats()
	if st.Size != 3 {
		t.Fatalf("size = %d, want 3 (bounded)", st.Size)
	}
	if st.Evictions != 7 {
		t.Fatalf("evictions = %d, want 7", st.Evictions)
	}
	// An evicted set re-interns cleanly (fresh canonical instance).
	if s := in.Intern(query.NewSet(0)); len(s) != 1 || s[0] != 0 {
		t.Fatalf("re-intern after eviction: %v", s)
	}
}

func TestLRUBasics(t *testing.T) {
	c := newLRU[int](2)
	c.add("a", 1)
	c.add("b", 2)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	if evicted := c.add("c", 3); !evicted {
		t.Fatal("expected eviction adding c")
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b should be the evicted entry (a was refreshed)")
	}
	if v, ok := c.get("a"); !ok || v != 1 {
		t.Fatalf("a = %d,%v", v, ok)
	}
	c.add("a", 9)
	if v, _ := c.get("a"); v != 9 {
		t.Fatalf("refresh did not update value: %d", v)
	}
}

func TestCachedQueryDoesNotCacheErrors(t *testing.T) {
	r := NewResolver(companyDS(50), Options{})
	calls := 0
	build := func() (query.Query, error) {
		calls++
		return query.Query{}, errors.New("nope")
	}
	for i := 0; i < 3; i++ {
		if _, err := r.CachedQuery("bad", build); err == nil {
			t.Fatal("expected error")
		}
	}
	if calls != 3 {
		t.Fatalf("error results must not be cached: build ran %d times, want 3", calls)
	}
	ok := func() (query.Query, error) {
		calls++
		return query.Query{Set: query.NewSet(1, 2), Kind: query.Sum}, nil
	}
	q1, _ := r.CachedQuery("good", ok)
	q2, _ := r.CachedQuery("good", ok)
	if calls != 4 {
		t.Fatalf("successful result not cached: build ran %d times, want 4", calls)
	}
	if &q1.Set[0] != &q2.Set[0] {
		t.Fatal("cached queries should share the interned set")
	}
}

// countingObserver records callback totals for the wiring test.
type countingObserver struct {
	mu        sync.Mutex
	hits      map[string]int
	misses    map[string]int
	internHit int
	internNew int
	evict     map[string]int
	builds    int
	buildRows int
}

func newCountingObserver() *countingObserver {
	return &countingObserver{hits: map[string]int{}, misses: map[string]int{}, evict: map[string]int{}}
}

func (o *countingObserver) ObserveResolve(layer string, hit bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if hit {
		o.hits[layer]++
	} else {
		o.misses[layer]++
	}
}

func (o *countingObserver) ObserveIntern(hit bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if hit {
		o.internHit++
	} else {
		o.internNew++
	}
}

func (o *countingObserver) ObserveEviction(layer string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.evict[layer]++
}

func (o *countingObserver) ObserveBuild(rows int, _ time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.builds++
	o.buildRows += rows
}

func TestObserverSeesResolveEvents(t *testing.T) {
	r := NewResolver(companyDS(80), Options{})
	obs := newCountingObserver()
	r.SetObserver(obs)
	if obs.builds != 1 || obs.buildRows != 80 {
		t.Fatalf("deferred build report: builds=%d rows=%d", obs.builds, obs.buildRows)
	}
	pred := dataset.RangePred{Attr: "age", Lo: 25, Hi: 45}
	r.Select(pred)
	r.Select(pred)
	if obs.misses["pred"] != 1 || obs.hits["pred"] != 1 {
		t.Fatalf("pred layer: hits=%d misses=%d, want 1/1", obs.hits["pred"], obs.misses["pred"])
	}
	build := func() (query.Query, error) {
		return query.Query{Set: r.Select(pred), Kind: query.Sum}, nil
	}
	r.CachedQuery("q1", build)
	r.CachedQuery("q1", build)
	if obs.misses["sql"] != 1 || obs.hits["sql"] != 1 {
		t.Fatalf("sql layer: hits=%d misses=%d, want 1/1", obs.hits["sql"], obs.misses["sql"])
	}
	if obs.internHit == 0 {
		t.Fatal("expected at least one intern hit (sql path reuses the pred set)")
	}
}

// TestPredKeyUnambiguous guards against cache-key collisions between
// predicates whose SQL-ish String() renderings coincide: the empty
// conjunction ("" = everything) vs the empty disjunction ("" = nothing),
// and the flat "A AND B OR C" rendering shared by two different trees.
func TestPredKeyUnambiguous(t *testing.T) {
	ds := companyDS(30)
	r := NewResolver(ds, Options{})
	andEmpty := dataset.AndPred{}
	orEmpty := dataset.OrPred{}
	if got := r.Select(andEmpty); len(got) != ds.N() {
		t.Fatalf("empty AND = %v, want all %d rows", got, ds.N())
	}
	if got := r.Select(orEmpty); len(got) != 0 {
		t.Fatalf("empty OR = %v, want nothing", got)
	}
	a := dataset.EqPred{Attr: "dept", Val: "eng"}
	b := dataset.RangePred{Attr: "age", Lo: 30, Hi: 40}
	c := dataset.EqPred{Attr: "dept", Val: "sales"}
	t1 := dataset.AndPred{a, dataset.OrPred{b, c}} // a AND (b OR c)
	t2 := dataset.OrPred{dataset.AndPred{a, b}, c} // (a AND b) OR c
	if t1.String() != t2.String() {
		t.Fatalf("precondition: renderings differ (%q vs %q)", t1, t2)
	}
	got1, got2 := r.Select(t1), r.Select(t2)
	want1, want2 := ds.Select(t1), ds.Select(t2)
	if !setsEqual(got1, want1) || !setsEqual(got2, want2) {
		t.Fatalf("ambiguous renderings collided in the memo:\n t1 got %v want %v\n t2 got %v want %v",
			got1, want1, got2, want2)
	}
}

func TestResolverConcurrentUse(t *testing.T) {
	ds := companyDS(200)
	r := NewResolver(ds, Options{PredEntries: 8, SQLEntries: 8, InternEntries: 8})
	preds := []dataset.Predicate{
		dataset.RangePred{Attr: "age", Lo: 21, Hi: 30},
		dataset.RangePred{Attr: "age", Lo: 30, Hi: 40},
		dataset.EqPred{Attr: "dept", Val: "eng"},
		dataset.EqPred{Attr: "zip", Val: "94305"},
		dataset.AndPred{dataset.RangePred{Attr: "age", Lo: 25, Hi: 55}, dataset.EqPred{Attr: "dept", Val: "sales"}},
		dataset.TruePred{},
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p := preds[(i+w)%len(preds)]
				got := r.Select(p)
				want := ds.Select(p)
				if !setsEqual(got, want) {
					t.Errorf("concurrent resolve diverged for %s", p)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
