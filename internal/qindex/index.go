// Package qindex accelerates predicate → query-set resolution on the
// serving path. The paper's model fixes the public attributes at
// generation time (updates touch only the sensitive value, dataset
// §5–6), which makes every structure here immutable after Build: an
// inverted index per public attribute — posting lists for string
// equality, a sorted numeric column with binary-searched range cuts —
// plus canonical query.Set interning (intern.go) and memoized resolution
// (resolver.go) so the per-request cost of "WHERE age BETWEEN 30 AND 40"
// drops from a full O(n · preds) interface-dispatched row scan to
// O(log n + |result|), and to a single cache probe for repeated queries.
//
// Semantics are defined by equivalence: for every predicate the index
// can serve, Index.Select returns exactly what dataset.Dataset.Select
// returns (property- and fuzz-tested in equiv_test.go), including the
// scan's corner cases — predicates naming unknown attributes match
// nothing, string equality on a numeric attribute compares against the
// zero Str, numeric ranges on a categorical attribute compare against
// the zero Num, and NaN never satisfies a range. Predicate types the
// index does not recognize fall back to the naive scan.
package qindex

import (
	"math"
	"sort"

	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
)

// Index is an immutable inverted index over one dataset's public
// attributes. It is safe for concurrent use by multiple goroutines
// without locking: all state is frozen by Build.
type Index struct {
	ds  *dataset.Dataset
	all query.Set // every row index; the TruePred / no-WHERE result
	// attrs indexes every schema attribute both ways — postings over the
	// Str field and a sorted column over the Num field — because
	// dataset predicates do not consult the declared attribute Kind:
	// an EqPred on a numeric attribute legitimately (if uselessly)
	// matches rows whose Str field is "".
	attrs map[string]*attrIndex
}

// attrIndex holds both views of one attribute column.
type attrIndex struct {
	// postings maps each distinct Str value to the sorted row indices
	// holding it.
	postings map[string]query.Set
	// byNum is every non-NaN row ordered by (Num, row); NaN rows can
	// never satisfy a range predicate (v >= lo is false for NaN) so they
	// are simply absent.
	byNum []numEntry
}

type numEntry struct {
	val float64
	row int
}

// Build constructs the index for ds. Cost is O(n · attrs · log n) time
// and O(n · attrs) memory, paid once per dataset; the result shares no
// mutable state with ds beyond the row indices themselves.
func Build(ds *dataset.Dataset) *Index {
	n := ds.N()
	idx := &Index{
		ds:    ds,
		all:   make(query.Set, n),
		attrs: make(map[string]*attrIndex, len(ds.Schema())),
	}
	for i := 0; i < n; i++ {
		idx.all[i] = i
	}
	for _, a := range ds.Schema() {
		ai := &attrIndex{
			postings: make(map[string]query.Set),
			byNum:    make([]numEntry, 0, n),
		}
		for i := 0; i < n; i++ {
			v, err := ds.Public(i, a.Name)
			if err != nil {
				continue
			}
			ai.postings[v.Str] = append(ai.postings[v.Str], i)
			if !math.IsNaN(v.Num) {
				ai.byNum = append(ai.byNum, numEntry{val: v.Num, row: i})
			}
		}
		sort.Slice(ai.byNum, func(x, y int) bool {
			if ai.byNum[x].val != ai.byNum[y].val {
				return ai.byNum[x].val < ai.byNum[y].val
			}
			return ai.byNum[x].row < ai.byNum[y].row
		})
		idx.attrs[a.Name] = ai
	}
	return idx
}

// N returns the number of rows the index covers.
func (ix *Index) N() int { return len(ix.all) }

// Dataset returns the dataset the index was built over.
func (ix *Index) Dataset() *dataset.Dataset { return ix.ds }

// All returns the full row set (shared; callers must not mutate).
func (ix *Index) All() query.Set { return ix.all }

// Select resolves pred to its query set, falling back to the naive row
// scan for predicate types the index does not understand. The returned
// set may share memory with the index (posting lists, the full set);
// callers must treat it as read-only — Resolver hands out only
// capacity-clipped interned sets, so appends can never clobber it.
func (ix *Index) Select(pred dataset.Predicate) query.Set {
	if s, ok := ix.lookup(pred); ok {
		return s
	}
	return ix.ds.Select(pred)
}

// lookup resolves the known predicate forms; ok is false when pred (or a
// sub-predicate) is of a type the index cannot serve.
func (ix *Index) lookup(pred dataset.Predicate) (query.Set, bool) {
	switch p := pred.(type) {
	case dataset.TruePred:
		return ix.all, true
	case dataset.EqPred:
		ai, ok := ix.attrs[p.Attr]
		if !ok {
			return nil, true // unknown attribute matches nothing, like Match
		}
		return ai.postings[p.Val], true
	case dataset.RangePred:
		ai, ok := ix.attrs[p.Attr]
		if !ok {
			return nil, true
		}
		return ai.rangeSet(p.Lo, p.Hi, ix.all), true
	case dataset.AndPred:
		return ix.conjunction(p)
	case dataset.OrPred:
		return ix.disjunction(p)
	default:
		return nil, false
	}
}

// rangeSet cuts [lo, hi] out of the sorted column. all is the full row
// set, returned (shared) when the cut covers every row.
func (ai *attrIndex) rangeSet(lo, hi float64, all query.Set) query.Set {
	if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
		return nil // no value satisfies v >= NaN / v <= NaN / an inverted range
	}
	// First entry with val >= lo, first entry with val > hi.
	start := sort.Search(len(ai.byNum), func(i int) bool { return ai.byNum[i].val >= lo })
	end := sort.Search(len(ai.byNum), func(i int) bool { return ai.byNum[i].val > hi })
	if start >= end {
		return nil
	}
	if start == 0 && end == len(ai.byNum) && len(ai.byNum) == len(all) {
		return all
	}
	out := make(query.Set, end-start)
	for i := start; i < end; i++ {
		out[i-start] = ai.byNum[i].row
	}
	sort.Ints(out)
	return out
}

// conjunction intersects sub-predicate sets smallest-first, short-
// circuiting on empty.
func (ix *Index) conjunction(p dataset.AndPred) (query.Set, bool) {
	if len(p) == 0 {
		return ix.all, true // vacuous conjunction matches everything
	}
	sets := make([]query.Set, len(p))
	for i, sub := range p {
		s, ok := ix.lookup(sub)
		if !ok {
			return nil, false
		}
		if len(s) == 0 {
			return nil, true
		}
		sets[i] = s
	}
	sort.Slice(sets, func(a, b int) bool { return len(sets[a]) < len(sets[b]) })
	acc := sets[0]
	for _, s := range sets[1:] {
		acc = acc.Intersect(s)
		if len(acc) == 0 {
			return nil, true
		}
	}
	return acc, true
}

// disjunction unions sub-predicate sets.
func (ix *Index) disjunction(p dataset.OrPred) (query.Set, bool) {
	var acc query.Set
	for _, sub := range p {
		s, ok := ix.lookup(sub)
		if !ok {
			return nil, false
		}
		if len(s) == 0 {
			continue
		}
		if acc == nil {
			acc = s
			continue
		}
		acc = acc.Union(s)
	}
	if len(acc) == len(ix.all) {
		return ix.all, true
	}
	return acc, true
}
