package experiments

import (
	"fmt"
	"testing"
)

// TestSkewedWorkloadConjecture: the paper's conjecture — non-uniform
// (clustered) workloads keep more utility than uniform ones.
func TestSkewedWorkloadConjecture(t *testing.T) {
	r := SkewedWorkload(150, 400, 8, 20, 11)
	fmt.Printf("uniform tail %.3f clustered tail %.3f\n", r.UniformTail, r.ClusteredTail)
	if r.ClusteredTail >= r.UniformTail {
		t.Fatalf("clustered workload should suffer fewer denials: %.3f vs %.3f",
			r.ClusteredTail, r.UniformTail)
	}
	if r.UniformTail < 0.9 {
		t.Fatalf("uniform workload should saturate: %.3f", r.UniformTail)
	}
}
