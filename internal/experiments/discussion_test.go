package experiments

import "testing"

// TestSimulatabilityPrice: the simulatable auditor's denials are partly
// conservative — a positive fraction would have been safe to answer —
// which is exactly the price Section 7 asks about. Both degenerate
// extremes (0%: simulatability free; 100%: all denials unnecessary)
// would indicate a bug.
func TestSimulatabilityPrice(t *testing.T) {
	cfg := SimulatabilityPriceConfig{N: 100, Queries: 250, Trials: 5, Seed: 1}
	r := SimulatabilityPrice(cfg)
	if r.Denied == 0 {
		t.Fatal("expected some denials at this scale")
	}
	frac := r.ConservativeFrac()
	if frac <= 0 || frac >= 1 {
		t.Fatalf("conservative fraction %g must be strictly between 0 and 1 (denied=%d conservative=%d)",
			frac, r.Denied, r.Conservative)
	}
}

// TestCollusionContrast: separately audited users breach when colluding;
// the pooled auditor never does. Separate auditing answers more (that is
// the whole temptation).
func TestCollusionContrast(t *testing.T) {
	cfg := CollusionConfig{N: 60, Queries: 80, Users: 2, Trials: 15, Seed: 2}
	r := Collusion(cfg)
	if r.PooledBreaches != 0 {
		t.Fatalf("pooled auditing breached %d times — auditor bug", r.PooledBreaches)
	}
	if r.SeparateBreaches == 0 {
		t.Fatal("separate auditing should breach under collusion at this scale")
	}
	if r.SeparateAnswered <= r.PooledAnswered {
		t.Fatalf("separate auditing should answer more (%.1f) than pooled (%.1f)",
			r.SeparateAnswered, r.PooledAnswered)
	}
}

// TestCrossAggregateLeak: split max/min auditors leak under the §4
// equal-answer inference; the joint auditor never does, at a measurable
// utility cost.
func TestCrossAggregateLeak(t *testing.T) {
	cfg := CrossAggregateConfig{N: 30, Queries: 50, Trials: 20, Seed: 3}
	r := CrossAggregate(cfg)
	if r.JointBreaches != 0 {
		t.Fatalf("joint auditor breached %d times — auditor bug", r.JointBreaches)
	}
	if r.SplitBreaches == 0 {
		t.Fatal("split auditors should breach under equal max/min answers at this scale")
	}
	if r.SplitAnswered <= r.JointAnswered {
		t.Fatalf("split auditing should answer more (%.1f) than joint (%.1f) — that is its temptation",
			r.SplitAnswered, r.JointAnswered)
	}
}
