// Package experiments regenerates every figure of the paper's Section 6
// and the quantitative claims of Section 5, as text series comparable to
// the published plots:
//
//	Fig. 1 — time to first denial vs database size (sum queries);
//	Fig. 2 — denial probability vs query index for n = 500, three plots:
//	         uniform random, with updates every 10 queries, and
//	         1-D range queries of width 50–100;
//	Fig. 3 — denial probability for random max queries, n = 500;
//	Thm 6/7 — n/4·(1−o(1)) ≤ E[T_denial] ≤ n + lg n + 1;
//	§2.1  — the DJL baseline's (2k−(l+1))/r answer budget;
//	§2.2  — denial leakage of the naive max auditor vs the simulatable
//	         one.
//
// Each runner takes an explicit config (with defaults matching the
// paper's settings where stated) and a seed, and returns plain data the
// CLI and benchmarks print.
package experiments

import (
	"fmt"
	"math"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/djl"
	"queryaudit/internal/audit/maxdup"
	"queryaudit/internal/audit/maxfull"
	"queryaudit/internal/audit/naive"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/game"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/stats"
	"queryaudit/internal/workload"
)

// Fig1Config parameterizes the time-to-first-denial sweep.
type Fig1Config struct {
	// Sizes are the database sizes to sweep (paper: up to ~1000).
	Sizes []int
	// Trials per size.
	Trials int
	// Seed drives all randomness.
	Seed int64
}

// DefaultFig1 mirrors the paper's sweep at laptop-friendly cost.
func DefaultFig1() Fig1Config {
	return Fig1Config{
		Sizes:  []int{100, 200, 300, 400, 500, 600, 700, 800},
		Trials: 15,
		Seed:   1,
	}
}

// Fig1Row is one point of Figure 1 with the Section 5 bounds attached.
type Fig1Row struct {
	N          int
	MeanTDen   float64
	CI95       float64
	LowerBound float64 // n/4 (Theorem 6)
	UpperBound float64 // n + lg n + 1 (Theorem 7)
}

// Fig1 measures the number of uniformly random sum queries answered
// before the first denial, per database size.
func Fig1(cfg Fig1Config) []Fig1Row {
	rows := make([]Fig1Row, 0, len(cfg.Sizes))
	rng := randx.New(cfg.Seed)
	for _, n := range cfg.Sizes {
		times := make([]float64, 0, cfg.Trials)
		for trial := 0; trial < cfg.Trials; trial++ {
			trng := randx.Split(rng)
			a := sumfull.New(n)
			gen := workload.UniformRandom{N: n, Kind: query.Sum, Rng: trng}
			t := 0
			for {
				q := gen.Next()
				d, err := a.Decide(q)
				if err != nil {
					panic(err)
				}
				if d == audit.Deny {
					break
				}
				a.Record(q, 0) // answers are irrelevant to the auditor
				t++
			}
			times = append(times, float64(t))
		}
		rows = append(rows, Fig1Row{
			N:          n,
			MeanTDen:   stats.Mean(times),
			CI95:       stats.CI95(times),
			LowerBound: float64(n) / 4,
			UpperBound: float64(n) + math.Log2(float64(n)) + 1,
		})
	}
	return rows
}

// FormatFig1 renders rows as an aligned table.
func FormatFig1(rows []Fig1Row) string {
	out := "# Figure 1: time to first denial for sum queries\n"
	out += fmt.Sprintf("%8s %14s %8s %10s %12s\n", "n", "E[T_denial]", "±95%", "n/4 (Thm6)", "n+lg n+1")
	for _, r := range rows {
		out += fmt.Sprintf("%8d %14.1f %8.1f %10.1f %12.1f\n", r.N, r.MeanTDen, r.CI95, r.LowerBound, r.UpperBound)
	}
	return out
}

// Fig2Config parameterizes the denial-probability curves.
type Fig2Config struct {
	N            int
	Queries      int
	Trials       int
	UpdatePeriod int // plot 2: one modification per this many queries
	RangeMin     int // plot 3: minimum range width
	RangeMax     int // plot 3: maximum range width
	Stride       int // sampling stride for the output curve
	Seed         int64
}

// DefaultFig2 matches the paper: n = 500, updates every 10 queries,
// ranges of 50–100 elements.
func DefaultFig2() Fig2Config {
	return Fig2Config{
		N: 500, Queries: 1100, Trials: 20,
		UpdatePeriod: 10, RangeMin: 50, RangeMax: 100,
		Stride: 25, Seed: 2,
	}
}

// Fig2 produces the three curves of Figure 2.
func Fig2(cfg Fig2Config) []stats.Curve {
	return []stats.Curve{
		fig2Uniform(cfg),
		fig2Updates(cfg),
		fig2Range(cfg),
	}
}

func fig2Uniform(cfg Fig2Config) stats.Curve {
	rng := randx.New(cfg.Seed)
	var acc stats.Accumulator
	for trial := 0; trial < cfg.Trials; trial++ {
		trng := randx.Split(rng)
		a := sumfull.New(cfg.N)
		gen := workload.UniformRandom{N: cfg.N, Kind: query.Sum, Rng: trng}
		acc.AddTrial(runDenialIndicators(a, gen.Next, cfg.Queries, nil, nil))
	}
	return acc.Curve("plot1-uniform", cfg.Stride)
}

func fig2Updates(cfg Fig2Config) stats.Curve {
	rng := randx.New(cfg.Seed + 1)
	var acc stats.Accumulator
	for trial := 0; trial < cfg.Trials; trial++ {
		trng := randx.Split(rng)
		a := sumfull.New(cfg.N)
		gen := workload.UniformRandom{N: cfg.N, Kind: query.Sum, Rng: trng}
		upd := workload.UpdateStream{N: cfg.N, Period: cfg.UpdatePeriod, Lo: 0, Hi: 1, Rng: trng}
		acc.AddTrial(runDenialIndicators(a, gen.Next, cfg.Queries, &upd, func(idx int) {
			a.NoteUpdate(idx)
		}))
	}
	return acc.Curve("plot2-updates", cfg.Stride)
}

func fig2Range(cfg Fig2Config) stats.Curve {
	rng := randx.New(cfg.Seed + 2)
	var acc stats.Accumulator
	for trial := 0; trial < cfg.Trials; trial++ {
		trng := randx.Split(rng)
		a := sumfull.New(cfg.N)
		gen := workload.RangeQueries{N: cfg.N, MinWidth: cfg.RangeMin, MaxWidth: cfg.RangeMax, Kind: query.Sum, Rng: trng}
		acc.AddTrial(runDenialIndicators(a, gen.Next, cfg.Queries, nil, nil))
	}
	return acc.Curve("plot3-range", cfg.Stride)
}

// runDenialIndicators drives one trial and returns the 0/1 denial
// indicator per query position, applying updates when due.
func runDenialIndicators(a audit.Auditor, next func() query.Query, queries int, upd *workload.UpdateStream, onUpdate func(int)) []float64 {
	ind := make([]float64, queries)
	for t := 0; t < queries; t++ {
		if upd != nil {
			if idx, _, due := upd.Tick(); due {
				onUpdate(idx)
			}
		}
		q := next()
		d, err := a.Decide(q)
		if err != nil {
			panic(err)
		}
		if d == audit.Deny {
			ind[t] = 1
		} else {
			a.Record(q, 0)
		}
	}
	return ind
}

// Fig3Config parameterizes the max-query denial curve.
type Fig3Config struct {
	N       int
	Queries int
	Trials  int
	Stride  int
	Seed    int64
	// AllowDuplicates selects the original [21] auditor (duplicates
	// permitted) — the algorithm behind the paper's actual Figure 3 —
	// instead of this paper's more conservative no-duplicates auditor.
	AllowDuplicates bool
}

// DefaultFig3 matches the paper's n = 500 experiment, including its
// choice of the duplicates-allowed [21] auditor.
func DefaultFig3() Fig3Config {
	return Fig3Config{N: 500, Queries: 1500, Trials: 12, Stride: 25, Seed: 3, AllowDuplicates: true}
}

// Fig3 measures the denial probability of the classical max auditor
// under uniformly random max queries. The paper reports a fast rise to a
// plateau around 0.68 that never reaches 1; its experiment ran the
// duplicates-allowed auditor of [21] (AllowDuplicates: true).
func Fig3(cfg Fig3Config) stats.Curve {
	rng := randx.New(cfg.Seed)
	var acc stats.Accumulator
	name := "fig3-max-noduplicates"
	for trial := 0; trial < cfg.Trials; trial++ {
		trng := randx.Split(rng)
		xs := randx.DuplicateFreeDataset(trng, cfg.N, 0, 1)
		var a audit.Auditor
		if cfg.AllowDuplicates {
			a = maxdup.New(cfg.N)
			name = "fig3-max-duplicates-allowed"
		} else {
			a = maxfull.New(cfg.N)
		}
		gen := workload.UniformRandom{N: cfg.N, Kind: query.Max, Rng: trng}
		ind := make([]float64, cfg.Queries)
		for t := 0; t < cfg.Queries; t++ {
			q := gen.Next()
			d, err := a.Decide(q)
			if err != nil {
				panic(err)
			}
			if d == audit.Deny {
				ind[t] = 1
			} else {
				a.Record(q, q.Eval(xs))
			}
		}
		acc.AddTrial(ind)
	}
	return acc.Curve(name, cfg.Stride)
}

// UtilityBoundsRow reports the Theorem 6/7 check for one size.
type UtilityBoundsRow struct {
	N        int
	MeanTDen float64
	Lower    float64
	Upper    float64
	Holds    bool
}

// UtilityBounds verifies n/4 ≤ E[T_denial] ≤ n + lg n + 1 empirically.
func UtilityBounds(cfg Fig1Config) []UtilityBoundsRow {
	rows := Fig1(cfg)
	out := make([]UtilityBoundsRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, UtilityBoundsRow{
			N:        r.N,
			MeanTDen: r.MeanTDen,
			Lower:    r.LowerBound,
			Upper:    r.UpperBound,
			Holds:    r.MeanTDen >= r.LowerBound && r.MeanTDen <= r.UpperBound,
		})
	}
	return out
}

// DJLRow reports the baseline's utility for one configuration.
type DJLRow struct {
	N, K, R int
	// Budget is the scheme's distinct-answer bound (2k−(l+1))/r.
	Budget int
	// AnsweredRandom is how many of a long stream of uniformly random
	// size-k queries get answered (random sets overlap in ≈ k²/n ≫ r
	// elements, so utility collapses almost immediately).
	AnsweredRandom int
	// AnsweredDisjoint is how many of a best-case stream of pairwise
	// disjoint size-k queries get answered (≈ n/k = c, the "constant
	// number of queries" of Section 2.1).
	AnsweredDisjoint int
}

// DJLBaseline measures the Section 2.1 baseline's utility under both a
// uniformly random and a best-case (disjoint) workload, with k = n/c and
// r = 1.
func DJLBaseline(n int, c int, trials int, seed int64) DJLRow {
	k := n / c
	rng := randx.New(seed)
	randomTotal, disjointTotal := 0, 0
	var budget int
	for trial := 0; trial < trials; trial++ {
		a, err := djl.New(djl.Config{K: k, R: 1, L: 0})
		if err != nil {
			panic(err)
		}
		budget = a.Budget()
		answered := 0
		for t := 0; t < 50*c; t++ {
			set := randx.SubsetOfSize(rng, n, k)
			q := query.New(query.Sum, set...)
			d, _ := a.Decide(q)
			if d == audit.Answer {
				a.Record(q, 0)
				answered++
			}
		}
		randomTotal += answered

		b, err := djl.New(djl.Config{K: k, R: 1, L: 0})
		if err != nil {
			panic(err)
		}
		answered = 0
		perm := rng.Perm(n)
		for start := 0; start+k <= n; start += k {
			q := query.New(query.Sum, perm[start:start+k]...)
			d, _ := b.Decide(q)
			if d == audit.Answer {
				b.Record(q, 0)
				answered++
			}
		}
		disjointTotal += answered
	}
	return DJLRow{
		N: n, K: k, R: 1, Budget: budget,
		AnsweredRandom:   randomTotal / trials,
		AnsweredDisjoint: disjointTotal / trials,
	}
}

// AttackResultPair contrasts the denial-leakage attack against the naive
// and simulatable max auditors.
type AttackResultPair struct {
	Naive       game.DenialAttackResult
	Simulatable game.DenialAttackResult
	// NaiveCorrectFrac / SimulatableCorrectFrac are fractions of the
	// dataset whose values the attacker correctly deduced.
	NaiveCorrectFrac       float64
	SimulatableCorrectFrac float64
}

// AttackDemo runs the Section 2.2 denial-leakage attack against both
// auditors over the same data.
func AttackDemo(n int, maxQueries int, seed int64) AttackResultPair {
	rng := randx.New(seed)
	xs := randx.DuplicateFreeDataset(rng, n, 0, 1)

	dsNaive := dataset.FromValues(xs)
	engNaive := core.NewEngine(dsNaive)
	engNaive.UseAnswerDependent(naive.NewMax(n), query.Max)
	resNaive := game.MaxDenialAttack(engNaive, randx.Split(rng), maxQueries)

	dsSim := dataset.FromValues(xs)
	engSim := core.NewEngine(dsSim)
	engSim.Use(maxfull.New(n), query.Max)
	resSim := game.MaxDenialAttack(engSim, randx.Split(rng), maxQueries)

	return AttackResultPair{
		Naive:                  resNaive,
		Simulatable:            resSim,
		NaiveCorrectFrac:       float64(resNaive.Correct) / float64(n),
		SimulatableCorrectFrac: float64(resSim.Correct) / float64(n),
	}
}
