package experiments

// Section 7 of the paper sketches several open questions about utility.
// This file quantifies two of them on the implemented auditors:
//
//   - the *price of simulatability*: how many denials were conservative —
//     the true answer, had the auditor looked at it, would not have
//     compromised anyone;
//   - the *collusion* cost: what happens when two users are audited
//     separately (unsound) instead of pooled (the paper's implicit
//     assumption).

import (
	"math/rand"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/maxfull"
	"queryaudit/internal/audit/maxminfull"
	"queryaudit/internal/audit/minfull"
	"queryaudit/internal/audit/offline"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/extreme"
	"queryaudit/internal/field"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/stats"
	"queryaudit/internal/workload"
)

// Small aliases keeping SkewedWorkload readable.
type (
	randSource       = rand.Rand
	workloadGen      = workload.Generator
	statsAccumulator = stats.Accumulator
)

// SimulatabilityPriceConfig parameterizes the §7 "price of
// simulatability" measurement for max auditing.
type SimulatabilityPriceConfig struct {
	N       int
	Queries int
	Trials  int
	Seed    int64
}

// DefaultSimulatabilityPrice mirrors Figure 3's scale.
func DefaultSimulatabilityPrice() SimulatabilityPriceConfig {
	return SimulatabilityPriceConfig{N: 200, Queries: 600, Trials: 8, Seed: 8}
}

// SimulatabilityPriceResult reports the split of denials.
type SimulatabilityPriceResult struct {
	Posed  int
	Denied int
	// Conservative counts denials whose true answer would NOT have
	// compromised anyone — the queries an answer-peeking auditor would
	// have answered (at the cost of leaking through its denials).
	Conservative int
}

// ConservativeFrac returns Conservative/Denied (0 when nothing denied).
func (r SimulatabilityPriceResult) ConservativeFrac() float64 {
	if r.Denied == 0 {
		return 0
	}
	return float64(r.Conservative) / float64(r.Denied)
}

// SimulatabilityPrice runs random max queries through the simulatable
// no-duplicates auditor and, for each denial, folds the *true* answer
// into a copy of the trail to see whether it would actually have
// compromised.
func SimulatabilityPrice(cfg SimulatabilityPriceConfig) SimulatabilityPriceResult {
	rng := randx.New(cfg.Seed)
	var res SimulatabilityPriceResult
	for trial := 0; trial < cfg.Trials; trial++ {
		trng := randx.Split(rng)
		xs := randx.DuplicateFreeDataset(trng, cfg.N, 0, 1)
		a := maxfull.New(cfg.N)
		for t := 0; t < cfg.Queries; t++ {
			set := query.NewSet(randx.Subset(trng, cfg.N)...)
			q := query.Query{Set: set, Kind: query.Max}
			res.Posed++
			d, err := a.Decide(q)
			if err != nil {
				panic(err)
			}
			ans := q.Eval(xs)
			if d == audit.Answer {
				a.Record(q, ans)
				continue
			}
			res.Denied++
			trail := a.Synopsis()
			if err := trail.Add(set, ans); err == nil && trail.SingletonEqCount() == 0 {
				res.Conservative++
			}
		}
	}
	return res
}

// CollusionConfig parameterizes the §7 collusion measurement.
type CollusionConfig struct {
	N       int
	Queries int // per user
	Users   int
	Trials  int
	Seed    int64
}

// DefaultCollusion uses two colluding users over sum queries.
func DefaultCollusion() CollusionConfig {
	return CollusionConfig{N: 100, Queries: 120, Users: 2, Trials: 30, Seed: 9}
}

// CollusionResult contrasts per-user auditing with pooled auditing.
type CollusionResult struct {
	Trials int
	// SeparateBreaches counts trials where the union of the separately
	// audited users' answers determines some element.
	SeparateBreaches int
	// SeparateAnswered / PooledAnswered are mean answered counts across
	// the whole collusion, for the utility side of the trade-off.
	SeparateAnswered float64
	PooledAnswered   float64
	// PooledBreaches is always 0 (asserted by tests); reported for the
	// table.
	PooledBreaches int
}

// Collusion runs the same interleaved random sum stream through (a)
// one auditor per user and (b) a single pooled auditor, then audits the
// union offline.
func Collusion(cfg CollusionConfig) CollusionResult {
	rng := randx.New(cfg.Seed)
	res := CollusionResult{Trials: cfg.Trials}
	sepAnswered, poolAnswered := 0, 0
	for trial := 0; trial < cfg.Trials; trial++ {
		trng := randx.Split(rng)
		// The same query stream drives both deployments.
		total := cfg.Queries * cfg.Users
		stream := make([]query.Set, total)
		for i := range stream {
			stream[i] = query.NewSet(randx.Subset(trng, cfg.N)...)
		}

		separate := make([]*sumfull.Auditor[gfElem, gfField], cfg.Users)
		for u := range separate {
			separate[u] = sumfull.New(cfg.N)
		}
		var union []query.Answered
		for i, set := range stream {
			u := i % cfg.Users
			q := query.Query{Set: set, Kind: query.Sum}
			if d, _ := separate[u].Decide(q); d == audit.Answer {
				separate[u].Record(q, 0)
				union = append(union, query.Answered{Query: q})
				sepAnswered++
			}
		}
		r, err := offline.AuditSum(cfg.N, union)
		if err != nil {
			panic(err)
		}
		if r.Compromised {
			res.SeparateBreaches++
		}

		pooled := sumfull.New(cfg.N)
		var pooledUnion []query.Answered
		for _, set := range stream {
			q := query.Query{Set: set, Kind: query.Sum}
			if d, _ := pooled.Decide(q); d == audit.Answer {
				pooled.Record(q, 0)
				pooledUnion = append(pooledUnion, query.Answered{Query: q})
				poolAnswered++
			}
		}
		if r, err := offline.AuditSum(cfg.N, pooledUnion); err != nil || r.Compromised {
			res.PooledBreaches++
		}
	}
	res.SeparateAnswered = float64(sepAnswered) / float64(cfg.Trials)
	res.PooledAnswered = float64(poolAnswered) / float64(cfg.Trials)
	return res
}

// Aliases keeping the generic auditor type readable above.
type gfElem = field.Elem61

type gfField = field.GF61

// CrossAggregateConfig parameterizes the composition-leak measurement.
type CrossAggregateConfig struct {
	N       int
	Queries int
	Trials  int
	Seed    int64
}

// DefaultCrossAggregate keeps the offline analysis fast.
func DefaultCrossAggregate() CrossAggregateConfig {
	return CrossAggregateConfig{N: 40, Queries: 60, Trials: 30, Seed: 10}
}

// CrossAggregateResult contrasts split per-aggregate auditing (a max
// auditor and a min auditor that cannot see each other's answers —
// unsound, because equal max/min answers pin their shared element) with
// the paper's Section 4 joint auditor.
type CrossAggregateResult struct {
	Trials int
	// SplitBreaches counts trials where the union of the split auditors'
	// answers uniquely determines some element.
	SplitBreaches int
	// JointBreaches is always 0 (asserted by tests).
	JointBreaches int
	// SplitAnswered / JointAnswered are mean answered counts.
	SplitAnswered float64
	JointAnswered float64
}

// CrossAggregate runs the same interleaved max/min stream through (a)
// independent maxfull+minfull auditors and (b) the joint maxminfull
// auditor, then audits each union offline with the extreme-element
// analysis. Integer-valued data makes max/min answer collisions — the
// §4 danger case — common.
func CrossAggregate(cfg CrossAggregateConfig) CrossAggregateResult {
	rng := randx.New(cfg.Seed)
	res := CrossAggregateResult{Trials: cfg.Trials}
	splitAns, jointAns := 0, 0
	for trial := 0; trial < cfg.Trials; trial++ {
		trng := randx.Split(rng)
		// Distinct integers: collisions between max and min answers of
		// different queries are likely.
		xs := make([]float64, cfg.N)
		perm := trng.Perm(4 * cfg.N)
		for i := range xs {
			xs[i] = float64(perm[i])
		}
		// Small query sets put max and min answers in the same value
		// range, so the §4 equal-answer collision actually occurs.
		stream := make([]query.Query, cfg.Queries)
		for i := range stream {
			kind := query.Max
			if trng.Intn(2) == 1 {
				kind = query.Min
			}
			set := randx.SubsetSizeBetween(trng, cfg.N, 2, 5)
			stream[i] = query.Query{Set: query.NewSet(set...), Kind: kind}
		}

		maxAud := maxfull.New(cfg.N)
		minAud := minfull.New(cfg.N)
		var union []extreme.Constraint
		for _, q := range stream {
			var d audit.Decision
			if q.Kind == query.Max {
				d, _ = maxAud.Decide(q)
			} else {
				d, _ = minAud.Decide(q)
			}
			if d != audit.Answer {
				continue
			}
			ans := q.Eval(xs)
			if q.Kind == query.Max {
				maxAud.Record(q, ans)
			} else {
				minAud.Record(q, ans)
			}
			union = append(union, extreme.Constraint{
				Set: q.Set, Value: ans, IsMax: q.Kind == query.Max, Rel: extreme.RelEq,
			})
			splitAns++
		}
		if r := extreme.Analyze(cfg.N, union); r.Consistent && r.Compromised {
			res.SplitBreaches++
		}

		joint := maxminfull.New(cfg.N)
		var jointUnion []extreme.Constraint
		for _, q := range stream {
			if d, _ := joint.Decide(q); d == audit.Answer {
				ans := q.Eval(xs)
				joint.Record(q, ans)
				jointUnion = append(jointUnion, extreme.Constraint{
					Set: q.Set, Value: ans, IsMax: q.Kind == query.Max, Rel: extreme.RelEq,
				})
				jointAns++
			}
		}
		if r := extreme.Analyze(cfg.N, jointUnion); !r.Consistent || r.Compromised {
			res.JointBreaches++
		}
	}
	res.SplitAnswered = float64(splitAns) / float64(cfg.Trials)
	res.JointAnswered = float64(jointAns) / float64(cfg.Trials)
	return res
}

// SkewedWorkloadResult contrasts long-run sum-auditing utility under a
// uniform workload against a clustered (correlated-interest) one —
// Section 5's conjecture that realistic non-uniform query distributions
// suffer fewer denials.
type SkewedWorkloadResult struct {
	UniformTail   float64
	ClusteredTail float64
}

// SkewedWorkload measures the long-run denial probability of the sum
// auditor under both workloads at equal query volume.
func SkewedWorkload(n, queries, trials, spread int, seed int64) SkewedWorkloadResult {
	run := func(mk func(rng *randSource) workloadGen) float64 {
		rng := randx.New(seed)
		var acc statsAccumulator
		for trial := 0; trial < trials; trial++ {
			trng := randx.Split(rng)
			a := sumfull.New(n)
			gen := mk(trng)
			ind := make([]float64, queries)
			for t := 0; t < queries; t++ {
				q := gen.Next()
				if d, err := a.Decide(q); err == nil && d == audit.Answer {
					a.Record(q, 0)
				} else {
					ind[t] = 1
				}
			}
			acc.AddTrial(ind)
		}
		return acc.Curve("w", 10).Tail(0.3)
	}
	return SkewedWorkloadResult{
		UniformTail: run(func(rng *randSource) workloadGen {
			return &workload.UniformRandom{N: n, Kind: query.Sum, Rng: rng}
		}),
		ClusteredTail: run(func(rng *randSource) workloadGen {
			return &workload.Clustered{N: n, Spread: spread, Kind: query.Sum, Rng: rng}
		}),
	}
}
