package experiments

import (
	"queryaudit/internal/audit"
	"queryaudit/internal/audit/maxminfull"
	"queryaudit/internal/audit/maxminprob"
	"queryaudit/internal/audit/maxprob"
	"queryaudit/internal/interval"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/stats"
	"queryaudit/internal/synopsis"
)

// MaxProbConfig parameterizes the Section 3.1 auditor experiment.
type MaxProbConfig struct {
	N       int
	Rounds  int
	Trials  int
	Params  maxprob.Params
	MinSize int
	MaxSize int
	Seed    int64
}

// DefaultMaxProb uses parameters under which some queries are answerable
// (λ generous, γ small, large query sets — see Section 3.1's discussion
// of the posterior point mass γ/|S|).
func DefaultMaxProb() MaxProbConfig {
	return MaxProbConfig{
		N: 60, Rounds: 12, Trials: 12,
		Params:  maxprob.Params{Lambda: 0.45, Gamma: 4, Delta: 0.2, T: 12, Samples: 64},
		MinSize: 20, MaxSize: 60,
		Seed: 4,
	}
}

// MaxProbResult summarizes the probabilistic max auditor's behaviour.
type MaxProbResult struct {
	// AnsweredFrac is the fraction of posed queries answered.
	AnsweredFrac float64
	// BreachFrac is the fraction of trials where the true posterior left
	// the λ-window after some answered query (must stay ≲ δ).
	BreachFrac float64
	// Delta echoes the configured bound for comparison.
	Delta float64
}

// MaxProb plays the (λ, δ, γ, T)-privacy game with a random attacker and
// reports utility (answered fraction) and empirical privacy.
func MaxProb(cfg MaxProbConfig) MaxProbResult {
	rng := randx.New(cfg.Seed)
	part := interval.NewPartition(0, 1, cfg.Params.Gamma)
	window := interval.RatioWindow{Lambda: cfg.Params.Lambda}
	answered, posed, breaches := 0, 0, 0
	for trial := 0; trial < cfg.Trials; trial++ {
		trng := randx.Split(rng)
		xs := randx.DuplicateFreeDataset(trng, cfg.N, 0, 1)
		p := cfg.Params
		p.Seed = trng.Int63()
		a, err := maxprob.New(cfg.N, p)
		if err != nil {
			panic(err)
		}
		truth := synopsis.NewMax(cfg.N)
		breached := false
		for round := 0; round < cfg.Rounds; round++ {
			set := randx.SubsetSizeBetween(trng, cfg.N, cfg.MinSize, cfg.MaxSize)
			q := query.New(query.Max, set...)
			posed++
			d, err := a.Decide(q)
			if err != nil {
				panic(err)
			}
			if d == audit.Deny {
				continue
			}
			answered++
			ans := q.Eval(xs)
			a.Record(q, ans)
			if err := truth.Add(q.Set, ans); err != nil {
				panic(err)
			}
			if !maxprob.SafeSynopsis(truth, part, window) {
				breached = true
			}
		}
		if breached {
			breaches++
		}
	}
	return MaxProbResult{
		AnsweredFrac: float64(answered) / float64(posed),
		BreachFrac:   float64(breaches) / float64(cfg.Trials),
		Delta:        cfg.Params.Delta,
	}
}

// MaxMinFullConfig parameterizes the Section 4 auditor's denial curve —
// the paper gives the algorithm without a figure; this experiment
// documents its utility in the same format as Figure 3.
type MaxMinFullConfig struct {
	N       int
	Queries int
	Trials  int
	Stride  int
	Seed    int64
}

// DefaultMaxMinFull mirrors Figure 3's scale at maxmin cost.
func DefaultMaxMinFull() MaxMinFullConfig {
	return MaxMinFullConfig{N: 200, Queries: 400, Trials: 8, Stride: 10, Seed: 5}
}

// MaxMinFull measures the denial probability of the Section 4 auditor
// under an even mix of random max and min queries.
func MaxMinFull(cfg MaxMinFullConfig) stats.Curve {
	rng := randx.New(cfg.Seed)
	var acc stats.Accumulator
	for trial := 0; trial < cfg.Trials; trial++ {
		trng := randx.Split(rng)
		xs := randx.DuplicateFreeDataset(trng, cfg.N, 0, 1)
		a := maxminfull.New(cfg.N)
		ind := make([]float64, cfg.Queries)
		for t := 0; t < cfg.Queries; t++ {
			kind := query.Max
			if trng.Intn(2) == 0 {
				kind = query.Min
			}
			q := query.Query{Set: query.NewSet(randx.Subset(trng, cfg.N)...), Kind: kind}
			d, err := a.Decide(q)
			if err != nil {
				panic(err)
			}
			if d == audit.Deny {
				ind[t] = 1
			} else {
				a.Record(q, q.Eval(xs))
			}
		}
		acc.AddTrial(ind)
	}
	return acc.Curve("maxmin-full", cfg.Stride)
}

// MaxMinProbConfig parameterizes the Section 3.2 auditor demo.
type MaxMinProbConfig struct {
	N      int
	Rounds int
	Trials int
	Params maxminprob.Params
	Seed   int64
}

// DefaultMaxMinProb keeps the MCMC effort laptop-sized.
func DefaultMaxMinProb() MaxMinProbConfig {
	return MaxMinProbConfig{
		N: 40, Rounds: 8, Trials: 6,
		Params: maxminprob.Params{
			Lambda: 0.45, Gamma: 4, Delta: 0.2, T: 8,
			OuterSamples: 12, InnerSamples: 24, MixFactor: 2,
		},
		Seed: 6,
	}
}

// MaxMinProbResult summarizes the Section 3.2 auditor's behaviour.
type MaxMinProbResult struct {
	AnsweredFrac float64
	Posed        int
}

// MaxMinProb drives random max/min bags through the probabilistic
// max∧min auditor and reports the answered fraction.
func MaxMinProb(cfg MaxMinProbConfig) MaxMinProbResult {
	rng := randx.New(cfg.Seed)
	answered, posed := 0, 0
	for trial := 0; trial < cfg.Trials; trial++ {
		trng := randx.Split(rng)
		xs := randx.DuplicateFreeDataset(trng, cfg.N, 0, 1)
		p := cfg.Params
		p.Seed = trng.Int63()
		a, err := maxminprob.New(cfg.N, p)
		if err != nil {
			panic(err)
		}
		for round := 0; round < cfg.Rounds; round++ {
			kind := query.Max
			if trng.Intn(2) == 0 {
				kind = query.Min
			}
			set := randx.SubsetSizeBetween(trng, cfg.N, cfg.N/2, cfg.N)
			q := query.Query{Set: query.NewSet(set...), Kind: kind}
			posed++
			d, err := a.Decide(q)
			if err != nil {
				panic(err)
			}
			if d == audit.Answer {
				answered++
				a.Record(q, q.Eval(xs))
			}
		}
	}
	return MaxMinProbResult{AnsweredFrac: float64(answered) / float64(posed), Posed: posed}
}

// MaxUtilityRow is one point of the max-utility sweep.
type MaxUtilityRow struct {
	N          int
	PlateauDup float64 // duplicates-allowed [21] auditor
	PlateauNo  float64 // no-duplicates §4 auditor
}

// MaxUtilitySweep measures the long-run denial probability of both max
// auditors across database sizes — the empirical face of the question
// Section 6 leaves open ("an exact analysis of utility for max queries
// is an open problem").
func MaxUtilitySweep(sizes []int, queriesPerN int, trials int, seed int64) []MaxUtilityRow {
	rows := make([]MaxUtilityRow, 0, len(sizes))
	for _, n := range sizes {
		cfg := Fig3Config{
			N: n, Queries: queriesPerN * n / 100, Trials: trials,
			Stride: 10, Seed: seed, AllowDuplicates: true,
		}
		if cfg.Queries < 100 {
			cfg.Queries = 100
		}
		dup := Fig3(cfg).Tail(0.3)
		cfg.AllowDuplicates = false
		nodup := Fig3(cfg).Tail(0.3)
		rows = append(rows, MaxUtilityRow{N: n, PlateauDup: dup, PlateauNo: nodup})
	}
	return rows
}

// MaxProbSweepRow is one (λ, γ) cell of the parameter sweep.
type MaxProbSweepRow struct {
	Lambda       float64
	Gamma        int
	AnsweredFrac float64
	BreachFrac   float64
}

// MaxProbParamSweep plays the (λ, δ, γ, T) game across a parameter grid
// — the utility/privacy trade-off surface a DBA actually tunes. The
// breach fraction must stay within δ everywhere (Theorem 1); utility
// grows with λ and shrinks with γ.
func MaxProbParamSweep(lambdas []float64, gammas []int, base MaxProbConfig) []MaxProbSweepRow {
	var rows []MaxProbSweepRow
	for _, l := range lambdas {
		for _, g := range gammas {
			cfg := base
			cfg.Params.Lambda = l
			cfg.Params.Gamma = g
			r := MaxProb(cfg)
			rows = append(rows, MaxProbSweepRow{
				Lambda: l, Gamma: g,
				AnsweredFrac: r.AnsweredFrac, BreachFrac: r.BreachFrac,
			})
		}
	}
	return rows
}
