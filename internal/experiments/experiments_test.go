package experiments

import "testing"

// TestFig1Shape asserts the paper's headline: the time to first denial
// is almost exactly the database size, and sits inside the Theorem 6/7
// bounds.
func TestFig1Shape(t *testing.T) {
	rows := Fig1(Fig1Config{Sizes: []int{50, 100, 200}, Trials: 8, Seed: 1})
	for _, r := range rows {
		if r.MeanTDen < 0.9*float64(r.N) || r.MeanTDen > 1.1*float64(r.N) {
			t.Errorf("n=%d: E[T_denial]=%.1f not ≈ n", r.N, r.MeanTDen)
		}
		if r.MeanTDen < r.LowerBound || r.MeanTDen > r.UpperBound {
			t.Errorf("n=%d: E[T_denial]=%.1f outside [%g, %g]", r.N, r.MeanTDen, r.LowerBound, r.UpperBound)
		}
	}
	if s := FormatFig1(rows); len(s) == 0 {
		t.Error("empty table")
	}
}

// TestFig2Shapes asserts the paper's Figure 2 relationships: plot 1
// steps from 0 to ≈1 around n queries; updates (plot 2) both delay the
// first denial and keep the long-run denial probability strictly below
// plot 1's; range queries (plot 3) stay below the worst case too.
func TestFig2Shapes(t *testing.T) {
	cfg := Fig2Config{
		N: 120, Queries: 360, Trials: 10,
		UpdatePeriod: 10, RangeMin: 20, RangeMax: 40,
		Stride: 10, Seed: 2,
	}
	curves := Fig2(cfg)
	uniform, updates, ranges := curves[0], curves[1], curves[2]

	if y := uniform.Y[0]; y != 0 {
		t.Errorf("plot1 must start at 0, got %g", y)
	}
	if tail := uniform.Tail(0.2); tail < 0.95 {
		t.Errorf("plot1 long-run denial = %g, want ≈ 1", tail)
	}
	th := uniform.StepThreshold(0.5)
	if th < cfg.N-40 || th > cfg.N+60 {
		t.Errorf("plot1 step at %d, want ≈ n=%d", th, cfg.N)
	}

	if u, v := updates.StepThreshold(0.5), uniform.StepThreshold(0.5); u < v {
		t.Errorf("updates must delay the first-denial step: %d < %d", u, v)
	}
	if ut, pt := updates.Tail(0.2), uniform.Tail(0.2); ut >= pt {
		t.Errorf("updates long-run denial %g must stay below plot1's %g", ut, pt)
	}
	if rt, pt := ranges.Tail(0.2), uniform.Tail(0.2); rt >= pt {
		t.Errorf("range long-run denial %g must stay below plot1's %g", rt, pt)
	}
}

// TestFig3Shape asserts Figure 3's qualitative claims: early queries
// answered, then a plateau strictly below the sum auditor's worst case.
func TestFig3Shape(t *testing.T) {
	c := Fig3(Fig3Config{N: 120, Queries: 400, Trials: 6, Stride: 10, Seed: 3})
	if c.Y[0] != 0 {
		t.Errorf("first queries must be answered, got %g", c.Y[0])
	}
	tail := c.Tail(0.3)
	if tail < 0.4 || tail > 0.97 {
		t.Errorf("plateau %g outside the below-worst-case band", tail)
	}
}

// TestUtilityBoundsHold: Theorems 6/7 hold at every size.
func TestUtilityBoundsHold(t *testing.T) {
	for _, r := range UtilityBounds(Fig1Config{Sizes: []int{60, 120}, Trials: 6, Seed: 4}) {
		if !r.Holds {
			t.Errorf("n=%d: E[T]=%.1f outside [%g, %g]", r.N, r.MeanTDen, r.Lower, r.Upper)
		}
	}
}

// TestDJLBaselineShape: random workloads get almost nothing; disjoint
// workloads get ≈ c answers.
func TestDJLBaselineShape(t *testing.T) {
	r := DJLBaseline(200, 5, 5, 5)
	if r.AnsweredDisjoint != 5 {
		t.Errorf("disjoint answers = %d, want c = 5", r.AnsweredDisjoint)
	}
	if r.AnsweredRandom > 3 {
		t.Errorf("random answers = %d, want ≈ 1", r.AnsweredRandom)
	}
	if r.Budget != (2*r.K-1)/r.R {
		t.Errorf("budget = %d", r.Budget)
	}
}

// TestAttackDemoContrast: naive leaks a significant fraction of the
// block maxima; simulatable reduces the attacker to guessing.
func TestAttackDemoContrast(t *testing.T) {
	r := AttackDemo(60, 4000, 6)
	if r.NaiveCorrectFrac <= r.SimulatableCorrectFrac {
		t.Errorf("no contrast: naive %g vs simulatable %g", r.NaiveCorrectFrac, r.SimulatableCorrectFrac)
	}
	if r.Naive.Correct < 5 {
		t.Errorf("naive extraction too weak: %d", r.Naive.Correct)
	}
}

// TestMaxProbGame: utility positive, breaches within δ plus slack.
func TestMaxProbGame(t *testing.T) {
	cfg := DefaultMaxProb()
	cfg.Trials, cfg.Rounds = 8, 8
	r := MaxProb(cfg)
	if r.AnsweredFrac <= 0.1 {
		t.Errorf("answered fraction %g too low — auditing degenerated to deny-all", r.AnsweredFrac)
	}
	if r.BreachFrac > r.Delta+0.2 {
		t.Errorf("breach fraction %g far exceeds δ=%g", r.BreachFrac, r.Delta)
	}
}

// TestMaxMinFullCurve: the Section 4 auditor answers early queries and
// plateaus strictly below 1.
func TestMaxMinFullCurve(t *testing.T) {
	c := MaxMinFull(MaxMinFullConfig{N: 80, Queries: 140, Trials: 4, Stride: 10, Seed: 7})
	if c.Y[0] != 0 {
		t.Errorf("first queries must be answered, got %g", c.Y[0])
	}
	if tail := c.Tail(0.3); tail >= 1 {
		t.Errorf("plateau %g reached the worst case", tail)
	}
}

// TestMaxMinProbRuns: the Section 3.2 auditor answers some broad bags.
func TestMaxMinProbRuns(t *testing.T) {
	cfg := DefaultMaxMinProb()
	cfg.N, cfg.Trials, cfg.Rounds = 24, 3, 5
	r := MaxMinProb(cfg)
	if r.Posed != cfg.Trials*cfg.Rounds {
		t.Fatalf("posed = %d", r.Posed)
	}
	if r.AnsweredFrac < 0 || r.AnsweredFrac > 1 {
		t.Fatalf("fraction %g out of range", r.AnsweredFrac)
	}
}
