package experiments

import (
	"fmt"
	"testing"
)

func TestMaxUtilitySweepShape(t *testing.T) {
	rows := MaxUtilitySweep([]int{100, 200, 400}, 300, 4, 9)
	for _, r := range rows {
		fmt.Printf("n=%4d plateau dup=%.3f nodup=%.3f\n", r.N, r.PlateauDup, r.PlateauNo)
		if r.PlateauDup >= r.PlateauNo {
			t.Errorf("n=%d: duplicates-allowed must deny less (%.3f vs %.3f)", r.N, r.PlateauDup, r.PlateauNo)
		}
		if r.PlateauDup <= 0.2 || r.PlateauNo >= 1 {
			t.Errorf("n=%d: plateaus out of expected band", r.N)
		}
	}
}

// TestMaxProbParamSweep: breach ≤ δ everywhere; utility is monotone in λ
// at fixed γ (more tolerance → fewer denials).
func TestMaxProbParamSweep(t *testing.T) {
	base := DefaultMaxProb()
	base.Trials, base.Rounds = 6, 8
	rows := MaxProbParamSweep([]float64{0.3, 0.45, 0.6}, []int{4, 8}, base)
	byGamma := map[int][]MaxProbSweepRow{}
	for _, r := range rows {
		if r.BreachFrac > base.Params.Delta+0.2 {
			t.Errorf("λ=%.2f γ=%d: breach %.2f ≫ δ", r.Lambda, r.Gamma, r.BreachFrac)
		}
		byGamma[r.Gamma] = append(byGamma[r.Gamma], r)
	}
	for g, rs := range byGamma {
		for i := 1; i < len(rs); i++ {
			if rs[i].AnsweredFrac+0.05 < rs[i-1].AnsweredFrac {
				t.Errorf("γ=%d: utility not monotone in λ: %.3f then %.3f",
					g, rs[i-1].AnsweredFrac, rs[i].AnsweredFrac)
			}
		}
	}
}
