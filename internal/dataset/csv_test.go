package dataset

import (
	"strings"
	"testing"

	"queryaudit/internal/query"
)

const sampleCSV = `age,dept,salary
34,eng,81000
41,sales,92500
29,eng,61000
55,hr,74250
`

func TestLoadCSV(t *testing.T) {
	ds, err := LoadCSV(strings.NewReader(sampleCSV), CSVOptions{
		Sensitive: "salary",
		Numeric:   []string{"age"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 4 {
		t.Fatalf("n = %d", ds.N())
	}
	if ds.Sensitive(1) != 92500 {
		t.Fatalf("sensitive[1] = %g", ds.Sensitive(1))
	}
	v, err := ds.Public(0, "age")
	if err != nil || v.Num != 34 {
		t.Fatalf("age[0] = %v %v", v, err)
	}
	d, err := ds.Public(3, "dept")
	if err != nil || d.Str != "hr" {
		t.Fatalf("dept[3] = %v %v", d, err)
	}
	// Predicates work over loaded attributes.
	set := ds.Select(EqPred{Attr: "dept", Val: "eng"})
	if !set.Equal(query.NewSet(0, 2)) {
		t.Fatalf("eng select = %v", set)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		csv  string
		opts CSVOptions
	}{
		{"missing sensitive", "a,b\n1,2\n", CSVOptions{Sensitive: "salary"}},
		{"no option", sampleCSV, CSVOptions{}},
		{"bad sensitive value", "salary\nnotanumber\n", CSVOptions{Sensitive: "salary"}},
		{"bad numeric", "age,salary\nxyz,5\n", CSVOptions{Sensitive: "salary", Numeric: []string{"age"}}},
		{"empty body", "salary\n", CSVOptions{Sensitive: "salary"}},
		{"duplicate values", "salary\n5\n5\n", CSVOptions{Sensitive: "salary", RequireDistinct: true}},
		{"ragged row", "a,salary\n1\n", CSVOptions{Sensitive: "salary"}},
	}
	for _, c := range cases {
		if _, err := LoadCSV(strings.NewReader(c.csv), c.opts); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestLoadCSVDistinctOK(t *testing.T) {
	ds, err := LoadCSV(strings.NewReader(sampleCSV), CSVOptions{
		Sensitive:       "salary",
		RequireDistinct: true,
	})
	if err != nil || ds.HasDuplicates() {
		t.Fatalf("distinct load failed: %v", err)
	}
}
