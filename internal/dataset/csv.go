package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVOptions configure LoadCSV.
type CSVOptions struct {
	// Sensitive names the column holding the sensitive numeric value.
	Sensitive string
	// Numeric lists public columns to load as numeric attributes; all
	// other columns (except Sensitive) load as categorical.
	Numeric []string
	// RequireDistinct rejects files whose sensitive values contain
	// duplicates — required before using the max/min auditors.
	RequireDistinct bool
}

// LoadCSV reads a headered CSV into a Dataset. Column order in the file
// becomes attribute order in the schema.
func LoadCSV(r io.Reader, opts CSVOptions) (*Dataset, error) {
	if opts.Sensitive == "" {
		return nil, fmt.Errorf("dataset: CSVOptions.Sensitive is required")
	}
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	numeric := make(map[string]bool, len(opts.Numeric))
	for _, c := range opts.Numeric {
		numeric[c] = true
	}
	sensCol := -1
	var schema Schema
	colAttr := make([]int, len(header)) // column -> schema index or -1
	for i, name := range header {
		if name == opts.Sensitive {
			if sensCol >= 0 {
				return nil, fmt.Errorf("dataset: duplicate sensitive column %q", name)
			}
			sensCol = i
			colAttr[i] = -1
			continue
		}
		kind := Categorical
		if numeric[name] {
			kind = Numeric
		}
		colAttr[i] = len(schema)
		schema = append(schema, Attr{Name: name, Kind: kind})
	}
	if sensCol < 0 {
		return nil, fmt.Errorf("dataset: sensitive column %q not in header %v", opts.Sensitive, header)
	}

	var rows []Record
	seen := map[float64]bool{}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
		s, err := strconv.ParseFloat(rec[sensCol], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: sensitive value %q: %w", line, rec[sensCol], err)
		}
		if opts.RequireDistinct {
			if seen[s] {
				return nil, fmt.Errorf("dataset: CSV line %d: duplicate sensitive value %g (max/min auditing requires distinct values)", line, s)
			}
			seen[s] = true
		}
		row := Record{Public: make([]Value, len(schema)), Sensitive: s}
		for i, cell := range rec {
			ai := colAttr[i]
			if ai < 0 {
				continue
			}
			if schema[ai].Kind == Numeric {
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: CSV line %d: numeric column %q value %q: %w",
						line, schema[ai].Name, cell, err)
				}
				row.Public[ai] = NumValue(v)
			} else {
				row.Public[ai] = StrValue(cell)
			}
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: CSV has no data rows")
	}
	return New(schema, rows), nil
}
