package dataset

import (
	"fmt"
	"math/rand"
	"sort"
)

// CompanyConfig parameterizes the synthetic company-salary database used
// by the examples and the SQL-ish experiments (the paper's motivating
// scenario: salaries keyed by public attributes like zip code and age).
type CompanyConfig struct {
	N         int
	MinSalary float64
	MaxSalary float64
	MinAge    float64
	MaxAge    float64
	ZipCodes  []string
	Depts     []string
}

// DefaultCompanyConfig mirrors the scale of the paper's experiments
// (datasets of a few hundred records).
func DefaultCompanyConfig(n int) CompanyConfig {
	return CompanyConfig{
		N:         n,
		MinSalary: 30_000,
		MaxSalary: 250_000,
		MinAge:    21,
		MaxAge:    65,
		ZipCodes:  []string{"94305", "94301", "94025", "95014", "94040"},
		Depts:     []string{"eng", "sales", "hr", "finance", "legal"},
	}
}

// GenerateCompany builds a duplicate-free salary database with public
// attributes age (numeric), zip (categorical) and dept (categorical),
// sorted ascending on age so that 1-D range queries over age select
// contiguous index ranges, as in the Figure 2 / Plot 3 experiment.
func GenerateCompany(rng *rand.Rand, cfg CompanyConfig) *Dataset {
	schema := Schema{
		{Name: "age", Kind: Numeric},
		{Name: "zip", Kind: Categorical},
		{Name: "dept", Kind: Categorical},
	}
	rows := make([]Record, cfg.N)
	ages := make([]float64, cfg.N)
	for i := range ages {
		ages[i] = cfg.MinAge + rng.Float64()*(cfg.MaxAge-cfg.MinAge)
	}
	sortFloats(ages)
	used := make(map[float64]bool, cfg.N)
	for i := range rows {
		salary := cfg.MinSalary + rng.Float64()*(cfg.MaxSalary-cfg.MinSalary)
		for used[salary] {
			salary = cfg.MinSalary + rng.Float64()*(cfg.MaxSalary-cfg.MinSalary)
		}
		used[salary] = true
		rows[i] = Record{
			Public: []Value{
				NumValue(ages[i]),
				StrValue(cfg.ZipCodes[rng.Intn(len(cfg.ZipCodes))]),
				StrValue(cfg.Depts[rng.Intn(len(cfg.Depts))]),
			},
			Sensitive: salary,
		}
	}
	return New(schema, rows)
}

// HospitalConfig parameterizes the synthetic hospital database (the
// paper's second motivating scenario: a sensitive numeric severity score
// keyed by county and age).
type HospitalConfig struct {
	N        int
	Counties []string
	MinAge   float64
	MaxAge   float64
}

// DefaultHospitalConfig returns an n-patient configuration.
func DefaultHospitalConfig(n int) HospitalConfig {
	return HospitalConfig{
		N:        n,
		Counties: []string{"santa-clara", "san-mateo", "alameda", "marin"},
		MinAge:   0,
		MaxAge:   99,
	}
}

// GenerateHospital builds a duplicate-free patient database whose
// sensitive attribute is a severity score in [0, 1), with public
// attributes age (numeric) and county (categorical), sorted on age.
func GenerateHospital(rng *rand.Rand, cfg HospitalConfig) *Dataset {
	schema := Schema{
		{Name: "age", Kind: Numeric},
		{Name: "county", Kind: Categorical},
	}
	rows := make([]Record, cfg.N)
	ages := make([]float64, cfg.N)
	for i := range ages {
		ages[i] = cfg.MinAge + rng.Float64()*(cfg.MaxAge-cfg.MinAge)
	}
	sortFloats(ages)
	used := make(map[float64]bool, cfg.N)
	for i := range rows {
		score := rng.Float64()
		for used[score] {
			score = rng.Float64()
		}
		used[score] = true
		rows[i] = Record{
			Public: []Value{
				NumValue(ages[i]),
				StrValue(cfg.Counties[rng.Intn(len(cfg.Counties))]),
			},
			Sensitive: score,
		}
	}
	return New(schema, rows)
}

func sortFloats(xs []float64) { sort.Float64s(xs) }

// Describe returns a short human-readable summary of the dataset, used by
// the CLI tools.
func (d *Dataset) Describe() string {
	s := fmt.Sprintf("%d records", d.N())
	if len(d.schema) > 0 {
		s += ", public attributes:"
		for _, a := range d.schema {
			kind := "numeric"
			if a.Kind == Categorical {
				kind = "categorical"
			}
			s += fmt.Sprintf(" %s(%s)", a.Name, kind)
		}
	}
	return s
}
