package dataset

import (
	"math/rand"
	"testing"

	"queryaudit/internal/query"
)

// TestFromValuesAndUpdates: versions track modifications.
func TestFromValuesAndUpdates(t *testing.T) {
	ds := FromValues([]float64{1, 2, 3})
	if ds.N() != 3 || ds.Sensitive(1) != 2 {
		t.Fatal("construction broken")
	}
	if ds.Version(1) != 0 || ds.Modifications() != 0 {
		t.Fatal("fresh dataset has versions")
	}
	ds.SetSensitive(1, 9)
	if ds.Sensitive(1) != 9 || ds.Version(1) != 1 || ds.Modifications() != 1 {
		t.Fatal("update not tracked")
	}
	// Values() returns a copy.
	vs := ds.Values()
	vs[0] = 100
	if ds.Sensitive(0) == 100 {
		t.Fatal("Values leaked internal state")
	}
}

// TestEvalMatchesQuery: aggregation delegates to query.Eval.
func TestEvalMatchesQuery(t *testing.T) {
	ds := FromValues([]float64{5, 1, 4})
	if got := ds.Eval(query.New(query.Max, 0, 1, 2)); got != 5 {
		t.Fatalf("max = %g", got)
	}
	if got := ds.Eval(query.New(query.Sum, 1, 2)); got != 5 {
		t.Fatalf("sum = %g", got)
	}
}

// TestPredicates: range, equality, and conjunctions select correctly.
func TestPredicates(t *testing.T) {
	schema := Schema{{Name: "age", Kind: Numeric}, {Name: "dept", Kind: Categorical}}
	rows := []Record{
		{Public: []Value{NumValue(25), StrValue("eng")}, Sensitive: 1},
		{Public: []Value{NumValue(35), StrValue("eng")}, Sensitive: 2},
		{Public: []Value{NumValue(45), StrValue("hr")}, Sensitive: 3},
	}
	ds := New(schema, rows)
	if got := ds.Select(RangePred{Attr: "age", Lo: 30, Hi: 50}); !got.Equal(query.NewSet(1, 2)) {
		t.Errorf("range select = %v", got)
	}
	if got := ds.Select(EqPred{Attr: "dept", Val: "eng"}); !got.Equal(query.NewSet(0, 1)) {
		t.Errorf("eq select = %v", got)
	}
	and := AndPred{RangePred{Attr: "age", Lo: 30, Hi: 50}, EqPred{Attr: "dept", Val: "eng"}}
	if got := ds.Select(and); !got.Equal(query.NewSet(1)) {
		t.Errorf("and select = %v", got)
	}
	or := OrPred{RangePred{Attr: "age", Lo: 0, Hi: 26}, EqPred{Attr: "dept", Val: "hr"}}
	if got := ds.Select(or); !got.Equal(query.NewSet(0, 2)) {
		t.Errorf("or select = %v", got)
	}
	if got := ds.Select(TruePred{}); got.Size() != 3 {
		t.Errorf("true select = %v", got)
	}
	if got := ds.Select(EqPred{Attr: "nope", Val: "x"}); got.Size() != 0 {
		t.Errorf("unknown attribute must select nothing, got %v", got)
	}
}

// TestGenerateCompanyProperties: sorted ages, duplicate-free salaries,
// schema intact.
func TestGenerateCompanyProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := GenerateCompany(rng, DefaultCompanyConfig(150))
	if ds.N() != 150 {
		t.Fatalf("n = %d", ds.N())
	}
	if ds.HasDuplicates() {
		t.Fatal("salaries must be duplicate-free")
	}
	prev := -1.0
	for i := 0; i < ds.N(); i++ {
		v, err := ds.Public(i, "age")
		if err != nil {
			t.Fatal(err)
		}
		if v.Num < prev {
			t.Fatal("ages must be sorted ascending")
		}
		prev = v.Num
	}
	cfg := DefaultCompanyConfig(1)
	for i := 0; i < ds.N(); i++ {
		s := ds.Sensitive(i)
		if s < cfg.MinSalary || s > cfg.MaxSalary {
			t.Fatalf("salary %g out of configured range", s)
		}
	}
}

// TestGenerateHospitalProperties: scores in [0,1), distinct, ages sorted.
func TestGenerateHospitalProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := GenerateHospital(rng, DefaultHospitalConfig(120))
	if ds.HasDuplicates() {
		t.Fatal("severity scores must be duplicate-free")
	}
	for i := 0; i < ds.N(); i++ {
		if s := ds.Sensitive(i); s < 0 || s >= 1 {
			t.Fatalf("severity %g outside [0,1)", s)
		}
	}
}

// TestUniformDuplicateFree: constructor wires through randx.
func TestUniformDuplicateFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := UniformDuplicateFree(rng, 50, 0, 1)
	if ds.N() != 50 || ds.HasDuplicates() {
		t.Fatal("bad uniform dataset")
	}
}

// TestPublicUnknownAttr returns an error, not a panic.
func TestPublicUnknownAttr(t *testing.T) {
	ds := FromValues([]float64{1})
	if _, err := ds.Public(0, "ghost"); err == nil {
		t.Fatal("expected error")
	}
}
