// Package dataset implements the statistical-database substrate of the
// paper's model: n records, each with several public attributes and one
// real-valued sensitive attribute. Query sets are specified by predicates
// over the public attributes; aggregates are taken over the corresponding
// sensitive values (Section 1).
//
// The package also models the update stream of Sections 5–6: records may
// be modified in place, and every modification bumps the record's version
// so that auditors can reason about "past or present" values.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

// AttrKind distinguishes numeric from categorical public attributes.
type AttrKind int

const (
	// Numeric attributes support range predicates.
	Numeric AttrKind = iota
	// Categorical attributes support equality predicates.
	Categorical
)

// Attr describes one public attribute.
type Attr struct {
	Name string
	Kind AttrKind
}

// Schema is the ordered list of public attributes.
type Schema []Attr

// Index returns the position of the named attribute, or -1.
func (s Schema) Index(name string) int {
	for i, a := range s {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Value is a public attribute value: numeric or categorical.
type Value struct {
	Num float64
	Str string
}

// NumValue wraps a numeric attribute value.
func NumValue(v float64) Value { return Value{Num: v} }

// StrValue wraps a categorical attribute value.
func StrValue(v string) Value { return Value{Str: v} }

// Record is one row of the SDB.
type Record struct {
	Public    []Value
	Sensitive float64
	// Version counts modifications of the sensitive value; it starts at 0
	// and increments on every SetSensitive.
	Version int
}

// Dataset is an updatable statistical database.
type Dataset struct {
	schema Schema
	rows   []Record
	// mods counts total sensitive-value modifications across all records,
	// used by auditors that version columns.
	mods int
}

// New builds a dataset from a schema and rows. Rows are copied.
func New(schema Schema, rows []Record) *Dataset {
	d := &Dataset{schema: schema, rows: append([]Record(nil), rows...)}
	for i := range d.rows {
		d.rows[i].Public = append([]Value(nil), rows[i].Public...)
		d.rows[i].Version = 0
	}
	return d
}

// FromValues builds a schemaless dataset holding only sensitive values —
// the bare {x_1..x_n} model most of the paper works in.
func FromValues(xs []float64) *Dataset {
	rows := make([]Record, len(xs))
	for i, x := range xs {
		rows[i].Sensitive = x
	}
	return New(nil, rows)
}

// UniformDuplicateFree draws a dataset of n sensitive values uniformly at
// random from the duplicate-free points of [lo, hi)^n, the distribution
// assumed throughout Sections 3 and 4.
func UniformDuplicateFree(rng *rand.Rand, n int, lo, hi float64) *Dataset {
	return FromValues(randx.DuplicateFreeDataset(rng, n, lo, hi))
}

// N returns the number of records.
func (d *Dataset) N() int { return len(d.rows) }

// Schema returns the public-attribute schema.
func (d *Dataset) Schema() Schema { return d.schema }

// Sensitive returns the current sensitive value of record i.
func (d *Dataset) Sensitive(i int) float64 { return d.rows[i].Sensitive }

// Version returns the number of times record i has been modified.
func (d *Dataset) Version(i int) int { return d.rows[i].Version }

// Modifications returns the total modification count across all records.
func (d *Dataset) Modifications() int { return d.mods }

// Values returns a copy of the current sensitive values in index order.
func (d *Dataset) Values() []float64 {
	xs := make([]float64, len(d.rows))
	for i := range d.rows {
		xs[i] = d.rows[i].Sensitive
	}
	return xs
}

// Public returns the public value of attribute attr for record i.
func (d *Dataset) Public(i int, attr string) (Value, error) {
	ai := d.schema.Index(attr)
	if ai < 0 {
		return Value{}, fmt.Errorf("dataset: no attribute %q", attr)
	}
	return d.rows[i].Public[ai], nil
}

// SetSensitive modifies the sensitive value of record i, bumping its
// version. This is the "update" of Sections 5–6.
func (d *Dataset) SetSensitive(i int, v float64) {
	d.rows[i].Sensitive = v
	d.rows[i].Version++
	d.mods++
}

// SensitiveState is a transportable snapshot of the dataset's mutable
// half: the current sensitive values, per-record versions, and the total
// modification count. Replication ships it with the session snapshot so
// a follower seeded mid-history starts from the same post-update values
// the primary serves, not from the generated originals.
type SensitiveState struct {
	Values   []float64 `json:"values"`
	Versions []int     `json:"versions,omitempty"`
	Mods     int       `json:"mods"`
}

// SensitiveState captures the mutable half of the dataset.
func (d *Dataset) SensitiveState() SensitiveState {
	st := SensitiveState{
		Values:   d.Values(),
		Versions: make([]int, len(d.rows)),
		Mods:     d.mods,
	}
	for i := range d.rows {
		st.Versions[i] = d.rows[i].Version
	}
	return st
}

// RestoreSensitive overwrites the mutable half of the dataset from a
// captured state. The record count must match; versions are optional
// (absent versions are left untouched, which is only correct for a
// fresh dataset with zero versions — the replication path always ships
// them).
func (d *Dataset) RestoreSensitive(st SensitiveState) error {
	if len(st.Values) != len(d.rows) {
		return fmt.Errorf("dataset: sensitive state has %d values, dataset has %d records", len(st.Values), len(d.rows))
	}
	if st.Versions != nil && len(st.Versions) != len(d.rows) {
		return fmt.Errorf("dataset: sensitive state has %d versions, dataset has %d records", len(st.Versions), len(d.rows))
	}
	for i := range d.rows {
		d.rows[i].Sensitive = st.Values[i]
		if st.Versions != nil {
			d.rows[i].Version = st.Versions[i]
		}
	}
	d.mods = st.Mods
	return nil
}

// Eval answers q truthfully against the current values.
func (d *Dataset) Eval(q query.Query) float64 {
	return q.Eval(d.valuesRef())
}

// valuesRef exposes values without copying for internal evaluation.
func (d *Dataset) valuesRef() []float64 {
	xs := make([]float64, len(d.rows))
	for i := range d.rows {
		xs[i] = d.rows[i].Sensitive
	}
	return xs
}

// HasDuplicates reports whether any two sensitive values coincide — the
// max/min auditors of Sections 3–4 require this to be false.
func (d *Dataset) HasDuplicates() bool {
	xs := d.Values()
	sort.Float64s(xs)
	for i := 1; i < len(xs); i++ {
		if xs[i] == xs[i-1] {
			return true
		}
	}
	return false
}

// Predicate selects records by their public attributes.
type Predicate interface {
	// Match reports whether the record at index i of d satisfies the
	// predicate.
	Match(d *Dataset, i int) bool
	String() string
}

// RangePred selects records whose numeric attribute lies in [Lo, Hi].
type RangePred struct {
	Attr   string
	Lo, Hi float64
}

// Match implements Predicate.
func (p RangePred) Match(d *Dataset, i int) bool {
	v, err := d.Public(i, p.Attr)
	if err != nil {
		return false
	}
	return v.Num >= p.Lo && v.Num <= p.Hi
}

func (p RangePred) String() string {
	return fmt.Sprintf("%s BETWEEN %g AND %g", p.Attr, p.Lo, p.Hi)
}

// EqPred selects records whose categorical attribute equals Val.
type EqPred struct {
	Attr string
	Val  string
}

// Match implements Predicate.
func (p EqPred) Match(d *Dataset, i int) bool {
	v, err := d.Public(i, p.Attr)
	if err != nil {
		return false
	}
	return v.Str == p.Val
}

func (p EqPred) String() string {
	return fmt.Sprintf("%s = %q", p.Attr, p.Val)
}

// AndPred is the conjunction of predicates.
type AndPred []Predicate

// Match implements Predicate.
func (p AndPred) Match(d *Dataset, i int) bool {
	for _, sub := range p {
		if !sub.Match(d, i) {
			return false
		}
	}
	return true
}

func (p AndPred) String() string {
	out := ""
	for i, sub := range p {
		if i > 0 {
			out += " AND "
		}
		out += sub.String()
	}
	return out
}

// OrPred is the disjunction of predicates.
type OrPred []Predicate

// Match implements Predicate.
func (p OrPred) Match(d *Dataset, i int) bool {
	for _, sub := range p {
		if sub.Match(d, i) {
			return true
		}
	}
	return false
}

func (p OrPred) String() string {
	out := ""
	for i, sub := range p {
		if i > 0 {
			out += " OR "
		}
		out += sub.String()
	}
	return out
}

// TruePred matches every record.
type TruePred struct{}

// Match implements Predicate.
func (TruePred) Match(*Dataset, int) bool { return true }

func (TruePred) String() string { return "TRUE" }

// Select returns the query set of records matching pred.
func (d *Dataset) Select(pred Predicate) query.Set {
	var q query.Set
	for i := range d.rows {
		if pred.Match(d, i) {
			q = append(q, i)
		}
	}
	return q
}
