package dataset_test

import (
	"fmt"
	"strings"

	"queryaudit/internal/dataset"
)

// ExampleLoadCSV loads a real table: name the sensitive column, declare
// which public columns are numeric, and predicates work immediately.
func ExampleLoadCSV() {
	csv := `age,dept,salary
34,eng,81000
41,sales,92500
29,eng,61000
`
	ds, err := dataset.LoadCSV(strings.NewReader(csv), dataset.CSVOptions{
		Sensitive: "salary",
		Numeric:   []string{"age"},
	})
	if err != nil {
		panic(err)
	}
	engineers := ds.Select(dataset.EqPred{Attr: "dept", Val: "eng"})
	fmt.Println(ds.N(), "records; engineers:", engineers)
	// Output:
	// 3 records; engineers: {0,2}
}

// ExampleDataset_SetSensitive shows update versioning.
func ExampleDataset_SetSensitive() {
	ds := dataset.FromValues([]float64{100, 200})
	ds.SetSensitive(0, 150)
	fmt.Println(ds.Sensitive(0), ds.Version(0), ds.Modifications())
	// Output:
	// 150 1 1
}
