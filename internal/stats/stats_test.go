package stats

import (
	"math"
	"testing"
)

func TestMoments(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %g", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("variance = %g", v)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs")
	}
	if Median(xs) != 4 {
		t.Errorf("median = %g", Median(xs))
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if Quantile(xs, 0) != 2 || Quantile(xs, 1) != 9 {
		t.Error("quantile endpoints")
	}
}

func TestCI95(t *testing.T) {
	xs := []float64{1, 1, 1, 1}
	if CI95(xs) != 0 {
		t.Error("constant data has zero CI")
	}
	if CI95([]float64{1}) != 0 {
		t.Error("single sample has zero CI")
	}
	wide := CI95([]float64{0, 10, 0, 10})
	if wide <= 0 {
		t.Error("CI must be positive for varying data")
	}
}

func TestCurveHelpers(t *testing.T) {
	c := Curve{Name: "x", X: []int{1, 2, 3, 4, 5}, Y: []float64{0, 0, 0.2, 0.8, 0.9}}
	if got := c.StepThreshold(0.5); got != 4 {
		t.Errorf("threshold = %d", got)
	}
	if got := c.StepThreshold(2); got != 5 {
		t.Errorf("unreached threshold must return last x, got %d", got)
	}
	if got := c.Tail(0.4); math.Abs(got-0.85) > 1e-12 {
		t.Errorf("tail = %g", got)
	}
	if s := c.Format(); len(s) == 0 {
		t.Error("empty format")
	}
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	a.AddTrial([]float64{1, 0, 1, 0})
	a.AddTrial([]float64{1, 1, 0, 0})
	c := a.Curve("avg", 1)
	want := []float64{1, 0.5, 0.5, 0}
	for i, y := range want {
		if c.Y[i] != y {
			t.Fatalf("curve %v, want %v", c.Y, want)
		}
	}
	if a.Trials() != 2 {
		t.Errorf("trials = %d", a.Trials())
	}
	// Stride sampling.
	c2 := a.Curve("s", 2)
	if len(c2.X) != 2 || c2.X[0] != 1 || c2.X[1] != 3 {
		t.Errorf("stride curve %v", c2.X)
	}
	// Mismatched lengths panic.
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	a.AddTrial([]float64{1})
}
