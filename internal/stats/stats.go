// Package stats provides the small statistical helpers the experiment
// harness uses: means, confidence intervals, denial-probability curves
// and step-threshold detection.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	t := 0.0
	for _, x := range xs {
		d := x - m
		t += d * d
	}
	return t / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Median returns the lower median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[(len(s)-1)/2]
}

// Quantile returns the q-quantile (nearest-rank), q ∈ [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

// Curve is a denial-probability curve: Y[i] is the probability estimate
// at query index X[i].
type Curve struct {
	Name string
	X    []int
	Y    []float64
}

// StepThreshold estimates where a near-step curve crosses level: the
// first x with y ≥ level (or the last x if never).
func (c Curve) StepThreshold(level float64) int {
	for i, y := range c.Y {
		if y >= level {
			return c.X[i]
		}
	}
	if len(c.X) == 0 {
		return 0
	}
	return c.X[len(c.X)-1]
}

// Tail returns the mean of the final frac portion of the curve — the
// long-run denial probability.
func (c Curve) Tail(frac float64) float64 {
	if len(c.Y) == 0 {
		return 0
	}
	start := int(float64(len(c.Y)) * (1 - frac))
	if start >= len(c.Y) {
		start = len(c.Y) - 1
	}
	return Mean(c.Y[start:])
}

// Format renders the curve as aligned text rows (query index, estimate).
func (c Curve) Format() string {
	out := fmt.Sprintf("# %s\n", c.Name)
	for i := range c.X {
		out += fmt.Sprintf("%8d %.4f\n", c.X[i], c.Y[i])
	}
	return out
}

// Accumulator averages per-position indicator streams across trials.
type Accumulator struct {
	sum   []float64
	count int
}

// AddTrial accumulates one trial's per-position indicators (1 = denial).
func (a *Accumulator) AddTrial(indicators []float64) {
	if a.sum == nil {
		a.sum = make([]float64, len(indicators))
	}
	if len(indicators) != len(a.sum) {
		panic(fmt.Sprintf("stats: trial length %d != %d", len(indicators), len(a.sum)))
	}
	for i, v := range indicators {
		a.sum[i] += v
	}
	a.count++
}

// Curve finalizes the averaged curve, sampling every stride-th position.
func (a *Accumulator) Curve(name string, stride int) Curve {
	if stride < 1 {
		stride = 1
	}
	var c Curve
	c.Name = name
	for i := 0; i < len(a.sum); i += stride {
		c.X = append(c.X, i+1)
		c.Y = append(c.Y, a.sum[i]/float64(a.count))
	}
	return c
}

// Trials returns how many trials were accumulated.
func (a *Accumulator) Trials() int { return a.count }
