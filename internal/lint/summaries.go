package lint

// Seed collectors for the summary-based analyzers: each walks every
// module function body once, recording the functions that DIRECTLY
// perform some fact (read the wall clock, draw from the global RNG,
// write through the persistence layer, loop forever, check a lifecycle
// signal). Graph.Propagate then lifts the fact to transitive callers.
// Keeping the collectors here, next to each other, makes the seed
// definitions — the analyzers' trusted computing base — reviewable in
// one screen per fact.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// wallClockSeeds returns the functions that directly read the wall
// clock (time.Now/Since/Until), seeded at the first such call.
func wallClockSeeds(g *Graph) TaintMap {
	return directCallSeeds(g, func(info *types.Info, call *ast.CallExpr) (string, bool) {
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return "", false
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return "", false
		}
		if !wallClockFuncs[fn.Name()] {
			return "", false
		}
		return "time." + fn.Name(), true
	})
}

// globalRandSeeds returns the functions that directly draw from the
// process-global math/rand source.
func globalRandSeeds(g *Graph) TaintMap {
	return directCallSeeds(g, func(info *types.Info, call *ast.CallExpr) (string, bool) {
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math/rand" {
			return "", false
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return "", false
		}
		if !globalRandFuncs[fn.Name()] {
			return "", false
		}
		return "math/rand." + fn.Name(), true
	})
}

// dropAllowedSeeds removes seeds whose root position carries a valid
// //auditlint:allow for the analyzer: the human certified the root fact,
// so nothing should propagate from it.
func dropAllowedSeeds(prog *Program, analyzer string, seeds TaintMap) TaintMap {
	for fn, t := range seeds {
		if prog.Allowed(analyzer, t.Pos) {
			delete(seeds, fn)
		}
	}
	return seeds
}

// directCallSeeds walks every function body and seeds fn at its first
// call matched by match (first in source order — bodies are walked in
// syntax order).
func directCallSeeds(g *Graph, match func(*types.Info, *ast.CallExpr) (string, bool)) TaintMap {
	seeds := TaintMap{}
	for _, fn := range g.Funcs() {
		info := g.Decls[fn]
		ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
			if _, done := seeds[fn]; done {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if root, ok := match(g.prog.Info, call); ok {
				seeds[fn] = &Taint{Root: root, Pos: call.Pos()}
				return false
			}
			return true
		})
	}
	return seeds
}

// sinkRoot classifies one call as a durable or externally visible write
// whose failure must not be dropped: a call into internal/persist, a
// raw os file mutation, a journal append/mirror, a digest-carrying
// session-log append, or a write onto an http.ResponseWriter. errsink
// seeds on these and propagates to callers: dropping the error of any
// function that reaches one silently forks a replica or tears a
// response.
func sinkRoot(prog *Program, call *ast.CallExpr, persistPaths []string) (string, bool) {
	fn := calleeFunc(prog.Info, call)
	if fn == nil {
		return "", false
	}
	// Any call into the persistence layer.
	if fn.Pkg() != nil && pathMatches(fn.Pkg().Path(), persistPaths) {
		return "persist." + fn.Name(), true
	}
	// Raw file mutations (already confined to internal/persist by
	// atomicwrite, but the seed keeps errsink self-contained).
	if name, bad := rawWriteCall(prog, call); bad {
		return "os." + name, true
	}
	// Any error-returning function handed an http.ResponseWriter where
	// it expects a writer: fmt.Fprintf(w, ...), io.Copy(w, body),
	// metrics.WritePrometheus(w, snap). The callee's write failure IS a
	// response-write failure at this site, whatever the callee is.
	if returnsError(fn) {
		for _, arg := range call.Args {
			if tv, ok := prog.Info.Types[arg]; ok && isResponseWriter(tv.Type) {
				return FuncDisplayName(fn) + "(ResponseWriter)", true
			}
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	// Writes onto an http.ResponseWriter.
	if isResponseWriter(recv) && (fn.Name() == "Write" || fn.Name() == "WriteHeader") {
		return "http.ResponseWriter." + fn.Name(), true
	}
	// (*os.File).Sync: an fsync is only ever issued for durability, so a
	// dropped Sync error always drops a durability violation.
	if named := namedOf(recv); named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File" && fn.Name() == "Sync" {
		return "os.File.Sync", true
	}
	// json.NewEncoder(w).Encode(v): an encode whose destination is
	// visibly a ResponseWriter.
	if named := namedOf(recv); named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "encoding/json" && named.Obj().Name() == "Encoder" && fn.Name() == "Encode" {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if inner, ok := ast.Unparen(sel.X).(*ast.CallExpr); ok &&
				stdCall(prog.Info, inner, "encoding/json", "NewEncoder") && len(inner.Args) == 1 {
				if tv, ok := prog.Info.Types[inner.Args[0]]; ok && isResponseWriter(tv.Type) {
					return "json.Encoder.Encode(ResponseWriter)", true
				}
			}
		}
	}
	// Journal appends and digest-chain updates: the replication journal
	// and the per-session transcript chain.
	if named := namedOf(recv); named != nil && named.Obj().Pkg() != nil {
		pkg, typ := named.Obj().Pkg().Path(), named.Obj().Name()
		switch {
		case pkg == "queryaudit/internal/replica" && typ == "Journal" &&
			(fn.Name() == "Append" || fn.Name() == "Mirror"):
			return "replica.Journal." + fn.Name(), true
		case pkg == "queryaudit/internal/session" && typ == "Log" &&
			(fn.Name() == "RecordDecision" || fn.Name() == "AppendUpdate"):
			return "session.Log." + fn.Name(), true
		}
	}
	return "", false
}

// persistSinkSeeds seeds every function that directly performs a sink
// write (see sinkRoot).
func persistSinkSeeds(g *Graph, persistPaths []string) TaintMap {
	return directCallSeeds(g, func(_ *types.Info, call *ast.CallExpr) (string, bool) {
		return sinkRoot(g.prog, call, persistPaths)
	})
}

// isResponseWriter reports whether t is (or points at) the
// net/http.ResponseWriter interface.
func isResponseWriter(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter"
}

// namedOf unwraps pointers to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// inspectOwn walks n skipping the bodies of nested go statements: code
// a function merely spawns runs on its own schedule, so it neither
// blocks the spawner (loops) nor bounds it (lifecycle checks).
func inspectOwn(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		return f(n)
	})
}

// loopForeverIn returns the first `for {}`/`for { ... }` loop with no
// condition and no range clause in n — the shape of retry and tail
// loops — outside any nested go statement.
func loopForeverIn(n ast.Node) (token.Pos, bool) {
	var pos token.Pos
	found := false
	inspectOwn(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if loop, ok := n.(*ast.ForStmt); ok && loop.Cond == nil {
			pos, found = loop.For, true
			return false
		}
		return true
	})
	return pos, found
}

// loopForeverSeeds returns the functions whose own body (goroutines
// they spawn excluded) contains an unconditional loop. The seed
// position is the loop keyword.
func loopForeverSeeds(g *Graph) TaintMap {
	seeds := TaintMap{}
	for _, fn := range g.Funcs() {
		if pos, ok := loopForeverIn(g.Decls[fn].Decl.Body); ok {
			seeds[fn] = &Taint{Root: "for{}", Pos: pos}
		}
	}
	return seeds
}

// lifecycleObsIn returns the first lifecycle observation in n: a
// ctx.Done()/ctx.Err()/ctx.Deadline() call on a context.Context, or a
// receive from a channel that plausibly signals shutdown (a struct
// field, a package-level variable, or a local whose name says so —
// done, stop, quit, closed, exit). Receives from arbitrary local data
// channels do not count: blocking on data is exactly the leak shape.
func lifecycleObsIn(info *types.Info, n ast.Node) (string, token.Pos, bool) {
	var root string
	var pos token.Pos
	found := false
	inspectOwn(n, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if m := calleeFunc(info, n); m != nil {
				if sig, ok := m.Type().(*types.Signature); ok && sig.Recv() != nil &&
					isContext(sig.Recv().Type()) && (m.Name() == "Done" || m.Name() == "Err" || m.Name() == "Deadline") {
					root, pos, found = "ctx."+m.Name(), n.Pos(), true
					return false
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isLifecycleChan(info, n.X) {
				root, pos, found = "<-"+exprString(n.X), n.Pos(), true
				return false
			}
		}
		return true
	})
	return root, pos, found
}

// lifecycleSeeds returns the functions whose own body directly observes
// a lifecycle bound (see lifecycleObsIn).
func lifecycleSeeds(g *Graph) TaintMap {
	seeds := TaintMap{}
	for _, fn := range g.Funcs() {
		if root, pos, ok := lifecycleObsIn(g.prog.Info, g.Decls[fn].Decl.Body); ok {
			seeds[fn] = &Taint{Root: root, Pos: pos}
		}
	}
	return seeds
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// lifecycleChanNames mark local channel variables that read as shutdown
// signals.
var lifecycleChanNames = map[string]bool{
	"done": true, "stop": true, "stopped": true, "quit": true,
	"closed": true, "closing": true, "exit": true, "shutdown": true,
}

// isLifecycleChan reports whether e is a channel-typed expression that
// plausibly signals shutdown: a struct field (the Manager.stop idiom),
// a package-level var, or a local named like a shutdown signal. The
// result of a method call (j.waitChan()) also counts — accessors hide
// the field.
func isLifecycleChan(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return false
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.IsField() {
			return true
		}
		return false
	case *ast.Ident:
		v, ok := info.Uses[e].(*types.Var)
		if !ok {
			return false
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level signal var
		}
		return lifecycleChanNames[v.Name()]
	case *ast.CallExpr:
		return true // accessor returning the signal channel
	}
	return false
}

// sharedRandReturns computes the functions whose results include a
// *rand.Rand that is NOT freshly constructed — an accessor leaking a
// stored generator, or a wrapper forwarding one. Drawing from such a
// Rand inside a goroutine shares the draw sequence with everything else
// holding the underlying state, exactly the scheduler-dependence
// rngshare exists to stop. Unlike Propagate (all call edges), sharedness
// flows only through RETURN-position calls, so the fixed point is
// computed here directly.
func sharedRandReturns(g *Graph) TaintMap {
	info := g.prog.Info
	shared := TaintMap{}
	type retCall struct {
		callee *types.Func
		pos    token.Pos
	}
	forwards := map[*types.Func][]retCall{}
	for _, fn := range g.Funcs() {
		sig, ok := fn.Type().(*types.Signature)
		if !ok || !signatureReturnsRand(sig) {
			continue
		}
		fi := g.Decls[fn]
		// Locals assigned from a fresh constructor stay clean on return.
		fresh := map[*types.Var]bool{}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if !isFreshRandExpr(info, rhs) {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					if v, ok := info.Defs[id].(*types.Var); ok {
						fresh[v] = true
					} else if v, ok := info.Uses[id].(*types.Var); ok {
						fresh[v] = true
					}
				}
			}
			return true
		})
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if _, done := shared[fn]; done {
				return false
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				tv, ok := info.Types[res]
				if !ok || !isRandRand(tv.Type) {
					continue
				}
				if isFreshRandExpr(info, res) {
					continue
				}
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
					callee := calleeFunc(info, call)
					if callee != nil {
						if _, local := g.Decls[callee]; local {
							// Forwarding a module function's result: shared
							// iff the callee turns out shared (fixed point).
							forwards[fn] = append(forwards[fn], retCall{callee: callee, pos: res.Pos()})
							continue
						}
					}
					// An external call we cannot see into: conservative.
					if g.prog.Allowed("rngshare", res.Pos()) {
						continue
					}
					shared[fn] = &Taint{Root: "externally obtained *rand.Rand", Pos: res.Pos()}
					return false
				}
				if id, ok := ast.Unparen(res).(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok && fresh[v] {
						continue
					}
				}
				if g.prog.Allowed("rngshare", res.Pos()) {
					continue
				}
				shared[fn] = &Taint{Root: "stored *rand.Rand", Pos: res.Pos()}
				return false
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.Funcs() {
			if shared[fn] != nil {
				continue
			}
			for _, rc := range forwards[fn] {
				if t := shared[rc.callee]; t != nil {
					shared[fn] = &Taint{Root: t.Root, Pos: rc.pos, Next: rc.callee}
					changed = true
					break
				}
			}
		}
	}
	return shared
}

func signatureReturnsRand(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isRandRand(res.At(i).Type()) {
			return true
		}
	}
	return false
}

// isFreshRandExpr reports whether e constructs a new generator:
// rand.New(...) or a call into internal/randx (whose streams are
// derived, never shared).
func isFreshRandExpr(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "math/rand":
		return fn.Name() == "New"
	case "queryaudit/internal/randx":
		return true
	}
	return false
}
