package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq returns the float-equality analyzer for the probability and
// bound arithmetic packages (import-path prefixes in paths): `==` / `!=`
// between floating-point operands is flagged. Probabilities and bounds
// accumulate rounding error, so exact comparison is almost always a bug;
// the sanctioned forms are an epsilon comparison, or exact arithmetic
// via internal/field / math/big.Rat. Comparisons that are exact by
// construction (values copied, never recomputed — e.g. the max-auditor's
// μ bookkeeping) document that with //auditlint:allow floateq <reason>.
//
// Constant-folded comparisons (both operands untyped constants) are the
// compiler's business and are skipped.
func FloatEq(paths []string) *Analyzer {
	return &Analyzer{
		Name: "floateq",
		Doc:  "no ==/!= on floating-point operands in probability/bound packages",
		Run: func(prog *Program) []Finding {
			var out []Finding
			for _, pkg := range prog.Pkgs {
				if !pathMatches(pkg.Path, paths) {
					continue
				}
				for _, file := range pkg.Files {
					ast.Inspect(file, func(n ast.Node) bool {
						bin, ok := n.(*ast.BinaryExpr)
						if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
							return true
						}
						xt, xok := prog.Info.Types[bin.X]
						yt, yok := prog.Info.Types[bin.Y]
						if !xok || !yok {
							return true
						}
						if xt.Value != nil && yt.Value != nil {
							return true // constant-folded
						}
						if !isFloat(xt.Type) && !isFloat(yt.Type) {
							return true
						}
						out = append(out, Finding{
							Analyzer: "floateq",
							Pos:      prog.Fset.Position(bin.OpPos),
							Message:  "exact " + bin.Op.String() + " on floating-point operands",
							Hint:     "compare with an epsilon, or use exact field/big.Rat arithmetic; if exact-by-construction, add //auditlint:allow floateq <reason>",
						})
						return true
					})
				}
			}
			return out
		},
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
