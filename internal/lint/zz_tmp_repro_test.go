package lint

import "testing"

func TestTryEdgeShadowsBlocking(t *testing.T) {
	prog, err := LoadDir("/tmp/lofix", "example.com/lofix")
	if err != nil {
		t.Fatal(err)
	}
	fs := Run(prog, []*Analyzer{LockOrder()})
	for _, f := range fs {
		t.Logf("finding: %s", f)
	}
	if len(fs) == 0 {
		t.Errorf("no lockorder finding: blocking A->B (Second) + B->A (Third) cycle missed")
	}
}
