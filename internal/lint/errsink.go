package lint

import (
	"go/ast"
	"go/types"
)

// ErrSink returns the dropped-error analyzer. An error coming back from
// the persistence layer — a persist.WriteAtomic, a journal append, a
// digest-chain update, a response write — is a signal that durable or
// externally visible state may have diverged; discarding it silently
// forks a replica or tears a response, failures the audit layers can
// only detect long after the fact. The pass flags:
//
//   - a call whose results are discarded entirely (an expression
//     statement), and
//   - an error result assigned to the blank identifier,
//
// when the callee either IS a sink (a direct persist call, journal
// append, session-log append, ResponseWriter write, or a visible
// encode/Fprint onto one — see sinkRoot) or is a module function whose
// engine summary transitively reaches one. Deferred calls and go
// statements are exempt: `defer f.Close()` on a read path is idiom, and
// a goroutine has no caller frame to return the error to — both get
// their own discipline elsewhere (ctxleak, atomicwrite).
func ErrSink(persistPaths []string) *Analyzer {
	return &Analyzer{
		Name: "errsink",
		Doc:  "no ignored error results from calls that reach persist writes, journal appends, or response writes",
		Run: func(prog *Program) []Finding {
			g := prog.Engine()
			sinks := g.Propagate(persistSinkSeeds(g, persistPaths))
			var out []Finding
			for _, fn := range g.Funcs() {
				body := g.Decls[fn].Decl.Body
				inspectOwn(body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.DeferStmt:
						return false
					case *ast.ExprStmt:
						if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
							out = append(out, checkSinkCall(prog, g, sinks, call, persistPaths)...)
							// Still descend: the call's arguments may
							// themselves contain flaggable calls.
						}
					case *ast.AssignStmt:
						out = append(out, checkBlankErr(prog, g, sinks, n, persistPaths)...)
					}
					return true
				})
			}
			return out
		},
	}
}

// sinkReach reports whether call's error is one that must not be
// dropped, with the witness chain to the sink root.
func sinkReach(prog *Program, g *Graph, sinks TaintMap, call *ast.CallExpr, persistPaths []string) ([]WitnessStep, bool) {
	fn := calleeFunc(prog.Info, call)
	if fn == nil {
		return nil, false
	}
	// Site-level evidence first: the call itself may visibly be a sink
	// (a ResponseWriter argument, a persist call) even when no summary
	// exists for the callee.
	if root, ok := sinkRoot(prog, call, persistPaths); ok {
		return []WitnessStep{{Func: root, Pos: prog.Fset.Position(call.Pos()), Note: "root"}}, true
	}
	if _, local := g.Decls[fn]; local && sinks[fn] != nil {
		witness := append([]WitnessStep{{
			Func: FuncDisplayName(fn),
			Pos:  prog.Fset.Position(call.Pos()),
			Note: "call",
		}}, g.Chain(fn, sinks)...)
		return witness, true
	}
	return nil, false
}

// checkSinkCall flags an expression-statement call that discards an
// error result while reaching a sink.
func checkSinkCall(prog *Program, g *Graph, sinks TaintMap, call *ast.CallExpr, persistPaths []string) []Finding {
	fn := calleeFunc(prog.Info, call)
	if fn == nil || !returnsError(fn) {
		return nil
	}
	witness, ok := sinkReach(prog, g, sinks, call, persistPaths)
	if !ok {
		return nil
	}
	return []Finding{{
		Analyzer: "errsink",
		Pos:      prog.Fset.Position(call.Pos()),
		Message: "error from " + FuncDisplayName(fn) + " discarded; the call reaches " +
			witness[len(witness)-1].Func,
		Hint:    "handle or propagate the error — a dropped write failure silently diverges durable state",
		Witness: witness,
	}}
}

// checkBlankErr flags `_ = f()` / `v, _ := f()` where the blanked
// result is an error and f reaches a sink.
func checkBlankErr(prog *Program, g *Graph, sinks TaintMap, as *ast.AssignStmt, persistPaths []string) []Finding {
	if len(as.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := calleeFunc(prog.Info, call)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	res := sig.Results()
	if res.Len() != len(as.Lhs) {
		return nil
	}
	blankedErr := false
	for i := 0; i < res.Len(); i++ {
		if !isErrorType(res.At(i).Type()) {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			blankedErr = true
		}
	}
	if !blankedErr {
		return nil
	}
	witness, ok := sinkReach(prog, g, sinks, call, persistPaths)
	if !ok {
		return nil
	}
	return []Finding{{
		Analyzer: "errsink",
		Pos:      prog.Fset.Position(as.Pos()),
		Message: "error from " + FuncDisplayName(fn) + " assigned to _; the call reaches " +
			witness[len(witness)-1].Func,
		Hint:    "handle or propagate the error — a dropped write failure silently diverges durable state",
		Witness: witness,
	}}
}

// returnsError reports whether fn's signature includes an error result.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }
