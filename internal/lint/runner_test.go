package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden harness. Each testdata/src/<analyzer> fixture package
// carries
//
//	// want `regex`
//
// comments on the lines expected to produce findings (analysistest's
// convention, hand-rolled on the stdlib). Fixtures load through LoadDir
// under a caller-chosen import path, so one file doubles as the hit case
// (loaded under a path the analyzer scopes to) and the miss case (a
// neutral path, zero findings expected). The fixtures also embed
// well-formed //auditlint:allow comments; if suppression broke, those
// lines would surface as unexpected findings and fail the golden check.

var wantRE = regexp.MustCompile("// want `([^`]*)`")

type wantSpec struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants scans the fixture directory's Go files for want comments.
func collectWants(t *testing.T, dir string) []wantSpec {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []wantSpec
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
			}
			wants = append(wants, wantSpec{file: path, line: i + 1, re: re})
		}
	}
	if len(wants) == 0 {
		t.Fatalf("no want comments found in %s", dir)
	}
	return wants
}

func loadFixture(t *testing.T, name, importPath string) *Program {
	t.Helper()
	prog, err := LoadDir(filepath.Join("testdata", "src", name), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s as %s: %v", name, importPath, err)
	}
	return prog
}

// checkGolden runs the analyzers over the fixture and requires a 1:1
// match between findings and want comments, by file, line and message.
func checkGolden(t *testing.T, name, importPath string, analyzers ...*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	findings := Run(loadFixture(t, name, importPath), analyzers)
	matchWants(t, findings, collectWants(t, dir))
}

// matchWants requires a 1:1 match between findings and want comments.
func matchWants(t *testing.T, findings []Finding, wants []wantSpec) {
	t.Helper()
	matched := make([]bool, len(wants))
outer:
	for _, f := range findings {
		for i, w := range wants {
			if !matched[i] && f.Pos.Filename == w.file && f.Pos.Line == w.line && w.re.MatchString(f.Message) {
				matched[i] = true
				continue outer
			}
		}
		t.Errorf("unexpected finding: %s", f)
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: want a finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// checkGoldenDirs is the cross-package golden harness: several fixture
// directories loaded as one Program (LoadDirs), want comments collected
// from every directory.
func checkGoldenDirs(t *testing.T, pkgs []FixturePkg, analyzers ...*Analyzer) *Program {
	t.Helper()
	prog, err := LoadDirs(pkgs)
	if err != nil {
		t.Fatalf("loading fixture packages: %v", err)
	}
	var wants []wantSpec
	for _, fp := range pkgs {
		// Only directories carrying want comments contribute specs; an
		// all-clean helper package would trip collectWants's emptiness
		// check, so scan leniently here.
		entries, err := os.ReadDir(fp.Dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(fp.Dir, e.Name())
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(src), "\n") {
				m := wantRE.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
				}
				wants = append(wants, wantSpec{file: path, line: i + 1, re: re})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("no want comments found in any fixture package")
	}
	matchWants(t, Run(prog, analyzers), wants)
	return prog
}

// checkClean runs the analyzers over the fixture under an import path
// they should not scope to and requires zero findings.
func checkClean(t *testing.T, name, importPath string, analyzers ...*Analyzer) {
	t.Helper()
	for _, f := range Run(loadFixture(t, name, importPath), analyzers) {
		t.Errorf("expected no findings under %s, got: %s", importPath, f)
	}
}

func TestDetrandGolden(t *testing.T) {
	checkGolden(t, "detrand", "queryaudit/internal/audit/lintfixture", Detrand(DecisionPathPrefixes))
}

func TestDetrandOffDecisionPath(t *testing.T) {
	checkClean(t, "detrand", "example.com/offpath", Detrand(DecisionPathPrefixes))
}

func TestRNGShareGolden(t *testing.T) {
	// rngshare is path-independent: a neutral import path still fires.
	checkGolden(t, "rngshare", "example.com/anywhere", RNGShare())
}

func TestFloatEqGolden(t *testing.T) {
	checkGolden(t, "floateq", "queryaudit/internal/interval/lintfixture", FloatEq(FloatEqPrefixes))
}

func TestFloatEqOffBoundsPath(t *testing.T) {
	checkClean(t, "floateq", "example.com/offpath", FloatEq(FloatEqPrefixes))
}

func TestAtomicWriteGolden(t *testing.T) {
	checkGolden(t, "atomicwrite", "example.com/anywhere", AtomicWrite(PersistPaths))
}

func TestAtomicWriteExemptInPersist(t *testing.T) {
	checkClean(t, "atomicwrite", "queryaudit/internal/persist/lintfixture", AtomicWrite(PersistPaths))
}

func TestLockcheckGolden(t *testing.T) {
	checkGolden(t, "lockcheck", "example.com/anywhere", Lockcheck())
}

func TestLockOrderGolden(t *testing.T) {
	// lockorder is path-independent.
	checkGolden(t, "lockorder", "example.com/anywhere", LockOrder())
}

func TestCtxLeakGolden(t *testing.T) {
	checkGolden(t, "ctxleak", "queryaudit/internal/replica/lintfixture", CtxLeak(CtxLeakPrefixes))
}

func TestCtxLeakOffServicePath(t *testing.T) {
	checkClean(t, "ctxleak", "example.com/offpath", CtxLeak(CtxLeakPrefixes))
}

func TestErrSinkGolden(t *testing.T) {
	checkGolden(t, "errsink", "example.com/anywhere", ErrSink(PersistPaths))
}

func xfixture(parts ...string) string {
	return filepath.Join(append([]string{"testdata", "src"}, parts...)...)
}

func TestCrossPackageDetrandTaint(t *testing.T) {
	// The wall-clock read is two calls deep in a helper package; the
	// decision-path caller one package over must be flagged.
	prog := checkGoldenDirs(t, []FixturePkg{
		{Dir: xfixture("xdetrand", "clockutil"), ImportPath: "example.com/clockutil"},
		{Dir: xfixture("xdetrand", "decide"), ImportPath: "queryaudit/internal/audit/lintfixture"},
	}, Detrand(DecisionPathPrefixes))

	// The finding must carry the full witness chain down to time.Now.
	findings := Run(prog, []*Analyzer{Detrand(DecisionPathPrefixes)})
	if len(findings) != 1 {
		t.Fatalf("want 1 finding, got %d", len(findings))
	}
	var funcs []string
	for _, w := range findings[0].Witness {
		funcs = append(funcs, w.Func)
	}
	chain := strings.Join(funcs, " → ")
	want := "example.com/clockutil.Stamp → example.com/clockutil.nowUnix → time.Now"
	if chain != want {
		t.Errorf("witness chain = %q, want %q", chain, want)
	}
}

func TestCrossPackageLockCycle(t *testing.T) {
	// Store.mu → Hub.mu exists only through interface dispatch to a type
	// declared in the second package; Hub.mu → Store.mu is a plain call.
	checkGoldenDirs(t, []FixturePkg{
		{Dir: xfixture("xlock", "store"), ImportPath: "example.com/xlock/store"},
		{Dir: xfixture("xlock", "notify"), ImportPath: "example.com/xlock/notify"},
	}, LockOrder())
}

func TestCrossPackageCtxLeak(t *testing.T) {
	// The loop is one call deep in another package: flagged when the ctx
	// is dropped at the go statement, clean when threaded through.
	checkGoldenDirs(t, []FixturePkg{
		{Dir: xfixture("xctx", "runner"), ImportPath: "example.com/xctx/runner"},
		{Dir: xfixture("xctx", "svc"), ImportPath: "queryaudit/internal/replica/lintfixture"},
	}, CtxLeak(CtxLeakPrefixes))
}

func TestExplainWitnessChain(t *testing.T) {
	prog, err := LoadDirs([]FixturePkg{
		{Dir: xfixture("xdetrand", "clockutil"), ImportPath: "example.com/clockutil"},
		{Dir: xfixture("xdetrand", "decide"), ImportPath: "queryaudit/internal/audit/lintfixture"},
	})
	if err != nil {
		t.Fatal(err)
	}
	text, ok := Explain(prog, "clockutil.Stamp")
	if !ok {
		t.Fatal("Explain found no function for clockutil.Stamp")
	}
	for _, needle := range []string{
		"example.com/clockutil.Stamp",
		"reaches a wall-clock read",
		"example.com/clockutil.nowUnix",
		"time.Now",
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("Explain output missing %q:\n%s", needle, text)
		}
	}
	if _, ok := Explain(prog, "no.Such"); ok {
		t.Error("Explain claimed to match no.Such")
	}
}

func TestMalformedAllowIsAFinding(t *testing.T) {
	findings := Run(loadFixture(t, "badallow", "example.com/anywhere"), DefaultAnalyzers())
	if len(findings) != 1 {
		t.Fatalf("want exactly 1 finding, got %d: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "auditlint" || !strings.Contains(f.Message, "malformed") {
		t.Errorf("want a malformed-allow finding, got: %s", f)
	}
}
