package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden harness. Each testdata/src/<analyzer> fixture package
// carries
//
//	// want `regex`
//
// comments on the lines expected to produce findings (analysistest's
// convention, hand-rolled on the stdlib). Fixtures load through LoadDir
// under a caller-chosen import path, so one file doubles as the hit case
// (loaded under a path the analyzer scopes to) and the miss case (a
// neutral path, zero findings expected). The fixtures also embed
// well-formed //auditlint:allow comments; if suppression broke, those
// lines would surface as unexpected findings and fail the golden check.

var wantRE = regexp.MustCompile("// want `([^`]*)`")

type wantSpec struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants scans the fixture directory's Go files for want comments.
func collectWants(t *testing.T, dir string) []wantSpec {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []wantSpec
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
			}
			wants = append(wants, wantSpec{file: path, line: i + 1, re: re})
		}
	}
	if len(wants) == 0 {
		t.Fatalf("no want comments found in %s", dir)
	}
	return wants
}

func loadFixture(t *testing.T, name, importPath string) *Program {
	t.Helper()
	prog, err := LoadDir(filepath.Join("testdata", "src", name), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s as %s: %v", name, importPath, err)
	}
	return prog
}

// checkGolden runs the analyzers over the fixture and requires a 1:1
// match between findings and want comments, by file, line and message.
func checkGolden(t *testing.T, name, importPath string, analyzers ...*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	findings := Run(loadFixture(t, name, importPath), analyzers)
	wants := collectWants(t, dir)
	matched := make([]bool, len(wants))
outer:
	for _, f := range findings {
		for i, w := range wants {
			if !matched[i] && f.Pos.Filename == w.file && f.Pos.Line == w.line && w.re.MatchString(f.Message) {
				matched[i] = true
				continue outer
			}
		}
		t.Errorf("unexpected finding: %s", f)
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: want a finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// checkClean runs the analyzers over the fixture under an import path
// they should not scope to and requires zero findings.
func checkClean(t *testing.T, name, importPath string, analyzers ...*Analyzer) {
	t.Helper()
	for _, f := range Run(loadFixture(t, name, importPath), analyzers) {
		t.Errorf("expected no findings under %s, got: %s", importPath, f)
	}
}

func TestDetrandGolden(t *testing.T) {
	checkGolden(t, "detrand", "queryaudit/internal/audit/lintfixture", Detrand(DecisionPathPrefixes))
}

func TestDetrandOffDecisionPath(t *testing.T) {
	checkClean(t, "detrand", "example.com/offpath", Detrand(DecisionPathPrefixes))
}

func TestRNGShareGolden(t *testing.T) {
	// rngshare is path-independent: a neutral import path still fires.
	checkGolden(t, "rngshare", "example.com/anywhere", RNGShare())
}

func TestFloatEqGolden(t *testing.T) {
	checkGolden(t, "floateq", "queryaudit/internal/interval/lintfixture", FloatEq(FloatEqPrefixes))
}

func TestFloatEqOffBoundsPath(t *testing.T) {
	checkClean(t, "floateq", "example.com/offpath", FloatEq(FloatEqPrefixes))
}

func TestAtomicWriteGolden(t *testing.T) {
	checkGolden(t, "atomicwrite", "example.com/anywhere", AtomicWrite(PersistPaths))
}

func TestAtomicWriteExemptInPersist(t *testing.T) {
	checkClean(t, "atomicwrite", "queryaudit/internal/persist/lintfixture", AtomicWrite(PersistPaths))
}

func TestLockcheckGolden(t *testing.T) {
	checkGolden(t, "lockcheck", "example.com/anywhere", Lockcheck())
}

func TestMalformedAllowIsAFinding(t *testing.T) {
	findings := Run(loadFixture(t, "badallow", "example.com/anywhere"), DefaultAnalyzers())
	if len(findings) != 1 {
		t.Fatalf("want exactly 1 finding, got %d: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "auditlint" || !strings.Contains(f.Message, "malformed") {
		t.Errorf("want a malformed-allow finding, got: %s", f)
	}
}
