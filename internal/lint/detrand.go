package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// globalRandFuncs are the math/rand package-level functions backed by the
// shared global source. Constructors (New, NewSource, NewZipf) are fine:
// they produce or consume explicit seeded state.
var globalRandFuncs = map[string]bool{
	"Seed": true, "Int": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Intn": true, "Uint32": true,
	"Uint64": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Read": true,
}

// wallClockFuncs are the time package functions that read the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// Detrand returns the determinism analyzer for decision-path packages
// (those whose import path starts with one of paths): auditor decisions
// must be bit-identical under replay (§2.2), so decision code may not
// read the wall clock, draw from the global math/rand source, or emit
// output ordered by map iteration. Seeded *rand.Rand / randx streams
// threaded through the call are the sanctioned randomness.
//
// The pass is interprocedural: besides direct time.Now / global
// math/rand calls, a call from a decision-path package to ANY module
// function whose summary transitively reaches one of those roots — a
// helper two packages away, a method dispatched through an interface
// bound in the module — is flagged at the decision-path call site, with
// the full witness chain down to the root. A tainted callee that is
// itself inside the decision path is not re-flagged at its callers; the
// finding surfaces once, at the deepest in-scope site.
//
// The map-iteration check is a heuristic: a `range` over a map is
// flagged only when its body visibly builds ordered output (append, a
// fmt print, or a channel send). Order-insensitive folds (sums, max,
// counting) pass.
func Detrand(paths []string) *Analyzer {
	return &Analyzer{
		Name: "detrand",
		Doc:  "no wall-clock or global math/rand reads — direct or via helpers — in decision paths",
		Run: func(prog *Program) []Finding {
			var out []Finding
			for _, pkg := range prog.Pkgs {
				if !pathMatches(pkg.Path, paths) {
					continue
				}
				for _, file := range pkg.Files {
					ast.Inspect(file, func(n ast.Node) bool {
						switch n := n.(type) {
						case *ast.CallExpr:
							out = append(out, checkDetrandCall(prog, n)...)
						case *ast.RangeStmt:
							out = append(out, checkMapRange(prog, n)...)
						}
						return true
					})
				}
			}
			out = append(out, detrandTaint(prog, paths)...)
			return out
		},
	}
}

// detrandTaint reports decision-path call sites whose callee — resolved
// statically or through module-bound interface dispatch — transitively
// reaches a wall-clock read or a global math/rand draw.
func detrandTaint(prog *Program, paths []string) []Finding {
	g := prog.Engine()
	kinds := []struct {
		tm   TaintMap
		what string
		hint string
	}{
		{g.Propagate(dropAllowedSeeds(prog, "detrand", wallClockSeeds(g))), "a wall-clock read",
			"hoist the time read to the caller or metrics layer, outside the decision path"},
		{g.Propagate(dropAllowedSeeds(prog, "detrand", globalRandSeeds(g))), "the global math/rand source",
			"thread a seeded *rand.Rand (randx.Stream) through the helper instead of the process-global source"},
	}
	var out []Finding
	for _, fn := range g.Funcs() {
		info := g.Decls[fn]
		if !pathMatches(info.Pkg.Path, paths) {
			continue
		}
		seen := map[token.Pos]bool{}
		for _, e := range g.Callees(fn) {
			calleeInfo := g.Decls[e.Callee]
			if calleeInfo == nil || pathMatches(calleeInfo.Pkg.Path, paths) {
				continue // in-scope callees report at their own site
			}
			for _, k := range kinds {
				if k.tm[e.Callee] == nil || seen[e.Pos] {
					continue
				}
				seen[e.Pos] = true
				via := ""
				if e.Dynamic {
					via = " (via interface dispatch)"
				}
				witness := append([]WitnessStep{{
					Func: FuncDisplayName(e.Callee),
					Pos:  prog.Fset.Position(e.Pos),
					Note: "call" + via,
				}}, g.Chain(e.Callee, k.tm)...)
				out = append(out, Finding{
					Analyzer: "detrand",
					Pos:      prog.Fset.Position(e.Pos),
					Message: "call to " + FuncDisplayName(e.Callee) + via + " reaches " + k.what +
						" in a decision path: " + WitnessString(FuncDisplayName(fn), witness),
					Hint:    k.hint,
					Witness: witness,
				})
			}
		}
	}
	return out
}

func checkDetrandCall(prog *Program, call *ast.CallExpr) []Finding {
	fn := calleeFunc(prog.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	pos := prog.Fset.Position(call.Pos())
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			return []Finding{{
				Analyzer: "detrand",
				Pos:      pos,
				Message:  "wall-clock read time." + fn.Name() + " in a decision path",
				Hint:     "decision logic must not depend on real time; hoist timing to the caller or metrics layer",
			}}
		}
	case "math/rand":
		if globalRandFuncs[fn.Name()] {
			return []Finding{{
				Analyzer: "detrand",
				Pos:      pos,
				Message:  "global math/rand." + fn.Name() + " in a decision path",
				Hint:     "thread a seeded *rand.Rand (randx.Stream) through the call instead of the process-global source",
			}}
		}
	}
	return nil
}

// checkMapRange flags `for k := range m` over a map whose body builds
// ordered output: the iteration order is randomized per run, so whatever
// is appended, printed or sent inherits that nondeterminism.
func checkMapRange(prog *Program, rng *ast.RangeStmt) []Finding {
	tv, ok := prog.Info.Types[rng.X]
	if !ok {
		return nil
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return nil
	}
	ordered := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			ordered = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := prog.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					ordered = true
				}
			}
			if fn := calleeFunc(prog.Info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				ordered = true
			}
		}
		return !ordered
	})
	if !ordered {
		return nil
	}
	return []Finding{{
		Analyzer: "detrand",
		Pos:      prog.Fset.Position(rng.Pos()),
		Message:  "map iteration feeds ordered output (append/print/send) in a decision path",
		Hint:     "collect and sort the keys first, or use a slice-backed structure",
	}}
}
