package lint

import (
	"go/token"
	"regexp"
	"strings"
)

// Annotation grammar (see docs/LINTING.md):
//
//	//auditlint:allow <analyzer> <reason...>   suppress findings on this
//	                                           line or the next one
//	// auditlint:guardedby(<mutex>)            on a struct field: accesses
//	                                           require <mutex> held
//	// auditlint:acquires(<mutex>)             on a func: calling it locks
//	                                           <mutex> of its argument or
//	                                           result
//
// The space after // is optional in all three forms.

const directivePrefix = "auditlint:"

// directive strips a comment down to its auditlint payload, e.g.
// "allow floateq exact sentinel" or "guardedby(mu)". Returns "" for
// ordinary comments.
func directive(text string) string {
	s := strings.TrimPrefix(text, "//")
	s = strings.TrimPrefix(s, "/*")
	s = strings.TrimSuffix(s, "*/")
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, directivePrefix) {
		return ""
	}
	return strings.TrimSpace(strings.TrimPrefix(s, directivePrefix))
}

var parenDirectiveRE = regexp.MustCompile(`^(\w+)\(([A-Za-z_][A-Za-z0-9_]*)\)$`)

// parenDirective matches "name(arg)" directives (guardedby, acquires).
func parenDirective(text, name string) (arg string, ok bool) {
	d := directive(text)
	if d == "" {
		return "", false
	}
	m := parenDirectiveRE.FindStringSubmatch(d)
	if m == nil || m[1] != name {
		return "", false
	}
	return m[2], true
}

// allowSet maps file -> line -> analyzer names allowed on that line.
type allowSet map[string]map[int][]string

// suppressed reports whether an allow for analyzer covers pos: the allow
// comment may sit on the finding's line (trailing) or the line above.
func (s allowSet) suppressed(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[l] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// collectAllows gathers every //auditlint:allow comment in the program.
// Malformed allows (missing analyzer name or reason) come back as
// findings so the grammar stays enforced: a suppression must say what it
// suppresses and why.
func collectAllows(prog *Program) (allowSet, []Finding) {
	set := allowSet{}
	var bad []Finding
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					d := directive(c.Text)
					if d == "" || !strings.HasPrefix(d, "allow") {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					fields := strings.Fields(d)
					// fields[0] == "allow" or "allow<garbage>"
					if fields[0] != "allow" || len(fields) < 3 {
						bad = append(bad, Finding{
							Analyzer: "auditlint",
							Pos:      pos,
							Message:  "malformed //auditlint:allow comment: " + c.Text,
							Hint:     "use //auditlint:allow <analyzer> <reason>",
						})
						continue
					}
					lines := set[pos.Filename]
					if lines == nil {
						lines = map[int][]string{}
						set[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], fields[1])
				}
			}
		}
	}
	return set, bad
}
