package lint

// The summary cache. Analysis is a pure function of its inputs: the
// analyzer set, the source of every main-module package, and the
// compiler export data of every out-of-module dependency. Fingerprint
// hashes exactly those inputs from the `go list` phase alone — no
// parsing, no type-checking — and the CLI reuses the previous run's
// findings when the fingerprint matches.
//
// Reuse is deliberately all-or-nothing. Per-package reuse would need
// each package's findings keyed by its import-graph cone, but the
// engine's call graph is NOT confined to that cone: interface-dispatch
// edges run from a package to implementations in packages that import
// it (a lock cycle can span two packages connected only dynamically),
// so a change anywhere in the module can change findings everywhere.
// The manifest still records the per-package hashes so a miss can say
// which packages invalidated it.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"queryaudit/internal/persist"
)

// cacheSchema versions the manifest layout AND the analysis semantics:
// bump it whenever an analyzer's behavior changes, so stale caches
// self-invalidate without anyone remembering to clear them.
const cacheSchema = 2

// Fingerprint hashes every analysis input: the cache schema, the
// analyzer names, and — per listed package, sorted by import path —
// main-module source bytes or dependency export data. It returns the
// combined key and the per-package hashes (import path → hex digest)
// for miss diagnostics.
func (pl *PackageList) Fingerprint(analyzers []string) (string, map[string]string, error) {
	perPkg := map[string]string{}
	sorted := append([]*listPkg(nil), pl.pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	top := sha256.New()
	fmt.Fprintf(top, "schema %d\n", cacheSchema)
	names := append([]string(nil), analyzers...)
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(top, "analyzer %s\n", n)
	}
	for _, p := range sorted {
		h := sha256.New()
		if p.Module != nil && p.Module.Main {
			files := append([]string(nil), p.GoFiles...)
			sort.Strings(files)
			for _, name := range files {
				fmt.Fprintf(h, "file %s\n", name)
				if err := hashFile(h, filepath.Join(p.Dir, name)); err != nil {
					return "", nil, err
				}
			}
		} else if p.Export != "" {
			if err := hashFile(h, p.Export); err != nil {
				return "", nil, err
			}
		}
		digest := hex.EncodeToString(h.Sum(nil))
		perPkg[p.ImportPath] = digest
		fmt.Fprintf(top, "pkg %s %s\n", p.ImportPath, digest)
	}
	return hex.EncodeToString(top.Sum(nil)), perPkg, nil
}

func hashFile(h io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("auditlint: fingerprint: %w", err)
	}
	defer f.Close()
	_, err = io.Copy(h, f)
	return err
}

// Cache is a findings cache rooted at a directory (conventionally
// <module root>/.auditlint-cache, gitignored). The manifest is written
// through persist.WriteAtomic — the same crash-safe path the analyzers
// police — so an interrupted lint run can never leave a torn manifest
// that a later run trusts.
type Cache struct {
	Dir string
}

// DefaultCacheDir is the conventional cache location for a module root.
func DefaultCacheDir(moduleRoot string) string {
	return filepath.Join(moduleRoot, ".auditlint-cache")
}

// cacheManifest is the on-disk layout.
type cacheManifest struct {
	Schema   int               `json:"schema"`
	Key      string            `json:"key"`
	Packages map[string]string `json:"packages"`
	Findings []Finding         `json:"findings"`
}

func (c *Cache) manifestPath() string {
	return filepath.Join(c.Dir, "manifest.json")
}

// Lookup returns the cached findings for key, and whether the cache
// held them. Any unreadable, torn, or schema-mismatched manifest is a
// miss, never an error: the cache is an accelerator, not a dependency.
func (c *Cache) Lookup(key string) ([]Finding, bool) {
	data, err := os.ReadFile(c.manifestPath())
	if err != nil {
		return nil, false
	}
	var m cacheManifest
	if err := json.Unmarshal(data, &m); err != nil || m.Schema != cacheSchema || m.Key != key {
		return nil, false
	}
	if m.Findings == nil {
		m.Findings = []Finding{}
	}
	return m.Findings, true
}

// Store records the findings for key, replacing whatever run was cached
// before.
func (c *Cache) Store(key string, perPkg map[string]string, findings []Finding) error {
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return err
	}
	m := cacheManifest{Schema: cacheSchema, Key: key, Packages: perPkg, Findings: findings}
	if m.Findings == nil {
		m.Findings = []Finding{}
	}
	return persist.WriteAtomic(c.manifestPath(), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// Invalidated compares the manifest's recorded package hashes against a
// fresh fingerprint and lists the import paths whose inputs changed
// (added, removed, or rehashed) — the "why was this a miss" diagnostic.
func (c *Cache) Invalidated(perPkg map[string]string) []string {
	data, err := os.ReadFile(c.manifestPath())
	if err != nil {
		return nil
	}
	var m cacheManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil
	}
	changed := map[string]bool{}
	for path, h := range perPkg {
		if m.Packages[path] != h {
			changed[path] = true
		}
	}
	for path := range m.Packages {
		if _, ok := perPkg[path]; !ok {
			changed[path] = true
		}
	}
	var out []string
	for path := range changed {
		out = append(out, path)
	}
	sort.Strings(out)
	return out
}
