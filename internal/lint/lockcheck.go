package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Lockcheck returns the mutex-discipline analyzer. Struct fields carry
//
//	// auditlint:guardedby(mu)
//
// annotations naming a sibling mutex field; every read or write of such
// a field must then happen with that mutex held. "Held" is established
// lexically, scanning the statements of each enclosing block before the
// access for, on the same base expression as the access (`e`, `sh`,
// `c.s`, ...):
//
//   - base.mu.Lock() / base.mu.RLock()           (cleared by Unlock/RUnlock)
//   - if !base.mu.TryLock() { return/continue }  (the guard-clause idiom)
//   - if base.mu.TryLock() { ...access... }
//   - a call to a function annotated // auditlint:acquires(mu) with base
//     as an argument, or assigning its result to base — for lock-wrapper
//     helpers and lookup functions that return an entity locked.
//
// Two escape hatches keep the pass honest without path-sensitive
// analysis: functions whose name ends in "Locked" are exempt (the
// repo-wide convention for "caller holds the lock"), and individual
// accesses can carry //auditlint:allow lockcheck <reason>.
//
// A `go func() { ... }` literal starts a fresh lock context: locks held
// by the spawner do not protect the goroutine's body.
func Lockcheck() *Analyzer {
	return &Analyzer{
		Name: "lockcheck",
		Doc:  "guardedby-annotated fields only accessed under their mutex",
		Run:  runLockcheck,
	}
}

type guardInfo struct {
	Mutex  string // sibling mutex field name
	Struct string // declaring struct's type name, for diagnostics
}

// collectGuards gathers field -> guardInfo from guardedby annotations
// and func -> mutex from acquires annotations, program-wide. Annotations
// naming a mutex field that does not exist in the struct are reported.
func collectGuards(prog *Program) (map[*types.Var]guardInfo, map[*types.Func]string, []Finding) {
	fields := map[*types.Var]guardInfo{}
	acquires := map[*types.Func]string{}
	var bad []Finding
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Doc == nil {
						continue
					}
					for _, c := range d.Doc.List {
						if mu, ok := parenDirective(c.Text, "acquires"); ok {
							if fn, ok := prog.Info.Defs[d.Name].(*types.Func); ok {
								acquires[fn] = mu
							}
						}
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						st, ok := ts.Type.(*ast.StructType)
						if !ok {
							continue
						}
						bad = append(bad, collectStructGuards(prog, ts.Name.Name, st, fields)...)
					}
				}
			}
		}
	}
	return fields, acquires, bad
}

func collectStructGuards(prog *Program, structName string, st *ast.StructType, fields map[*types.Var]guardInfo) []Finding {
	names := map[string]bool{}
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			names[n.Name] = true
		}
	}
	var bad []Finding
	for _, f := range st.Fields.List {
		mu := ""
		for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				if arg, ok := parenDirective(c.Text, "guardedby"); ok {
					mu = arg
				}
			}
		}
		if mu == "" {
			continue
		}
		if !names[mu] {
			bad = append(bad, Finding{
				Analyzer: "lockcheck",
				Pos:      prog.Fset.Position(f.Pos()),
				Message:  "guardedby names mutex " + mu + ", which is not a field of " + structName,
				Hint:     "name a sibling sync.Mutex/RWMutex field",
			})
			continue
		}
		for _, n := range f.Names {
			if v, ok := prog.Info.Defs[n].(*types.Var); ok {
				fields[v] = guardInfo{Mutex: mu, Struct: structName}
			}
		}
	}
	return bad
}

func runLockcheck(prog *Program) []Finding {
	fields, acquires, out := collectGuards(prog)
	if len(fields) == 0 {
		return out
	}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if strings.HasSuffix(fd.Name.Name, "Locked") {
					continue // convention: caller holds the lock
				}
				out = append(out, checkFunc(prog, fd, fields, acquires)...)
			}
		}
	}
	return out
}

// checkFunc flags guarded-field accesses in fd not covered by a lock.
func checkFunc(prog *Program, fd *ast.FuncDecl, fields map[*types.Var]guardInfo, acquires map[*types.Func]string) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v, ok := prog.Info.Uses[sel.Sel].(*types.Var)
		if !ok || !v.IsField() {
			return true
		}
		gi, guarded := fields[v]
		if !guarded {
			return true
		}
		base := exprString(sel.X)
		if lockHeldAt(prog, fd.Body, sel, base, gi.Mutex, acquires) {
			return true
		}
		out = append(out, Finding{
			Analyzer: "lockcheck",
			Pos:      prog.Fset.Position(sel.Sel.Pos()),
			Message:  gi.Struct + "." + v.Name() + " (guardedby " + gi.Mutex + ") accessed without holding " + base + "." + gi.Mutex,
			Hint:     "lock " + base + "." + gi.Mutex + " first, rename the function with a Locked suffix if the caller holds it, or annotate the lock-acquiring helper with auditlint:acquires(" + gi.Mutex + ")",
		})
		return true
	})
	return out
}

// pathTo returns the chain of nodes from root down to target, inclusive.
func pathTo(root ast.Node, target ast.Node) []ast.Node {
	var stack, found []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if n == target {
			found = append([]ast.Node(nil), stack...)
			return false
		}
		return true
	})
	return found
}

// lockHeldAt reports whether base's mutex mu is lexically held at the
// access node: some enclosing statement list shows a net acquire on
// (base, mu) before the statement containing the access. Levels outside
// the nearest enclosing `go func` literal do not count.
func lockHeldAt(prog *Program, body *ast.BlockStmt, access ast.Node, base, mu string, acquires map[*types.Func]string) bool {
	path := pathTo(body, access)
	if path == nil {
		return false
	}
	// A goroutine body is a fresh context: drop everything above the
	// func literal launched by the innermost go statement on the path.
	// (The path runs GoStmt → CallExpr → FuncLit, so scan forward for the
	// literal; an access inside a go-call *argument* never enters it.)
	start := 0
	for i := 0; i+1 < len(path); i++ {
		g, ok := path[i].(*ast.GoStmt)
		if !ok {
			continue
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			continue
		}
		for j := i + 1; j < len(path); j++ {
			if path[j] == ast.Node(lit) {
				start = j
				break
			}
		}
	}
	for i := start; i < len(path)-1; i++ {
		// `if base.mu.TryLock() { ... }` with the access inside the body.
		if ifs, ok := path[i].(*ast.IfStmt); ok && i+1 < len(path) && path[i+1] == ast.Node(ifs.Body) {
			if isMutexCall(prog, ifs.Cond, base, mu, "TryLock", "TryRLock") {
				return true
			}
		}
		stmts := stmtList(path[i])
		if stmts == nil {
			continue
		}
		// The direct child of this list on the path to the access.
		child := path[i+1]
		if scanStmts(prog, stmts, child, base, mu, acquires) {
			return true
		}
	}
	return false
}

// stmtList extracts the statement list of block-like nodes.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

// scanStmts walks stmts up to (but not including) the one containing the
// access, tracking lock state for (base, mu).
func scanStmts(prog *Program, stmts []ast.Stmt, upto ast.Node, base, mu string, acquires map[*types.Func]string) bool {
	locked := false
	for _, stmt := range stmts {
		if stmt == upto {
			return locked
		}
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if isMutexCall(prog, s.X, base, mu, "Lock", "RLock") {
				locked = true
			} else if isMutexCall(prog, s.X, base, mu, "Unlock", "RUnlock") {
				locked = false
			} else if callAcquires(prog, s.X, base, mu, nil, acquires) {
				locked = true
			}
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 && callAcquires(prog, s.Rhs[0], base, mu, s.Lhs, acquires) {
				locked = true
			}
		case *ast.IfStmt:
			// Guard clause: if !base.mu.TryLock() { return/continue/... }
			if u, ok := ast.Unparen(s.Cond).(*ast.UnaryExpr); ok && u.Op.String() == "!" &&
				isMutexCall(prog, u.X, base, mu, "TryLock", "TryRLock") && terminates(s.Body) {
				locked = true
			}
		case *ast.DeferStmt:
			// defer base.mu.Unlock() releases at return, not here.
		}
	}
	return locked
}

// isMutexCall matches `base.mu.<method>()` for any of the given method
// names, comparing the base expression textually.
func isMutexCall(prog *Program, e ast.Expr, base, mu string, methods ...string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	found := false
	for _, m := range methods {
		if sel.Sel.Name == m {
			found = true
		}
	}
	if !found {
		return false
	}
	muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || muSel.Sel.Name != mu {
		return false
	}
	return exprString(muSel.X) == base
}

// callAcquires reports whether e calls a function annotated
// auditlint:acquires(mu) in a way that locks base's mu: base appears
// among the arguments, or among the assignment left-hand sides receiving
// the call's results.
func callAcquires(prog *Program, e ast.Expr, base, mu string, lhs []ast.Expr, acquires map[*types.Func]string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(prog.Info, call)
	if fn == nil || acquires[fn] != mu {
		return false
	}
	for _, arg := range call.Args {
		if exprString(arg) == base {
			return true
		}
	}
	for _, l := range lhs {
		if exprString(l) == base {
			return true
		}
	}
	return false
}

// terminates reports whether a block's last statement unconditionally
// leaves the enclosing list (return, branch, or a panic call).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
