package lint

// Module-specific analyzer configuration: which import paths count as
// decision paths, which as probability/bound arithmetic, and which
// package owns raw file writes. New decision-path packages must be added
// here (the determinism regression test in guard_test.go pins the
// current set).

// DecisionPathPrefixes are the packages whose code decides or samples:
// everything under the auditors, the coloring sampler, the Monte Carlo
// engine, the attack game, the cluster placement logic (router and
// shards must compute identical owners from the descriptor alone, so
// the ring is a decision path too), and the retrospective pipeline
// (reports are reproducible artifacts: same inputs, same bytes).
// detrand runs here.
var DecisionPathPrefixes = []string{
	"queryaudit/internal/audit",
	"queryaudit/internal/auditlog",
	"queryaudit/internal/coloring",
	"queryaudit/internal/mcpar",
	"queryaudit/internal/game",
	"queryaudit/internal/cluster",
}

// FloatEqPrefixes are the packages doing probability and bound
// arithmetic, where exact float comparison is suspect. floateq runs
// here.
var FloatEqPrefixes = []string{
	"queryaudit/internal/audit",
	"queryaudit/internal/interval",
	"queryaudit/internal/stats",
}

// PersistPaths is the one package allowed to touch files directly.
var PersistPaths = []string{"queryaudit/internal/persist"}

// CtxLeakPrefixes are the long-running service packages whose background
// goroutines must be lifecycle-bounded: a demoted or draining node with
// ghost workers still mutating state is a forked history. ctxleak runs
// here.
var CtxLeakPrefixes = []string{
	"queryaudit/internal/replica",
	"queryaudit/internal/cluster",
	"queryaudit/internal/server",
	"queryaudit/internal/auditlog",
}

// DefaultAnalyzers returns the eight analyzers configured for this
// module.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		Detrand(DecisionPathPrefixes),
		RNGShare(),
		Lockcheck(),
		AtomicWrite(PersistPaths),
		FloatEq(FloatEqPrefixes),
		LockOrder(),
		CtxLeak(CtxLeakPrefixes),
		ErrSink(PersistPaths),
	}
}
