package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The loader type-checks the module with the standard library only:
// `go list -deps -export -json` enumerates the package graph and hands
// us compiler export data for out-of-module dependencies (the go command
// builds and caches it), while packages of the main module are parsed
// and type-checked from source so analyzers see their syntax, comments
// and full types.Info. This is the same split x/tools/go/packages makes,
// shrunk to what auditlint needs.

type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct {
		Path string
		Main bool
	}
	Error *struct {
		Err string
	}
}

type loader struct {
	fset    *token.FileSet
	info    *types.Info
	exports map[string]string   // dep import path -> export data file
	locals  map[string]*listPkg // main-module packages, from source
	checked map[string]*Package
	stack   []string // cycle guard (shouldn't trigger on a buildable module)
	gc      types.Importer
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

func newLoader(fset *token.FileSet) *loader {
	l := &loader{
		fset:    fset,
		info:    newInfo(),
		exports: map[string]string{},
		locals:  map[string]*listPkg{},
		checked: map[string]*Package{},
	}
	l.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("auditlint: no export data for %q", path)
		}
		return os.Open(f)
	})
	return l
}

// Import implements types.Importer over the split package graph.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if lp, ok := l.locals[path]; ok {
		pkg, err := l.check(lp)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.gc.Import(path)
}

// check parses and type-checks one main-module package (memoized).
func (l *loader) check(lp *listPkg) (*Package, error) {
	if p, ok := l.checked[lp.ImportPath]; ok {
		return p, nil
	}
	for _, s := range l.stack {
		if s == lp.ImportPath {
			return nil, fmt.Errorf("auditlint: import cycle through %q", lp.ImportPath)
		}
	}
	l.stack = append(l.stack, lp.ImportPath)
	defer func() { l.stack = l.stack[:len(l.stack)-1] }()

	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(lp.ImportPath, l.fset, files, l.info)
	if err != nil {
		return nil, fmt.Errorf("auditlint: type-checking %s: %w", lp.ImportPath, err)
	}
	p := &Package{Path: lp.ImportPath, Dir: lp.Dir, Files: files, Pkg: tpkg}
	l.checked[lp.ImportPath] = p
	return p, nil
}

func goList(dir string, args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// PackageList is the result of the `go list` phase, before any parsing
// or type-checking: enough to fingerprint every analysis input (see
// Fingerprint) without paying for a load, and to Load the Program when
// the fingerprint misses the cache.
type PackageList struct {
	dir  string
	pkgs []*listPkg
}

// ListPackages enumerates the package graph for the main-module
// packages matched by patterns, rooted at dir. This is the cheap half
// of LoadPackages: no file is parsed or type-checked.
func ListPackages(dir string, patterns ...string) (*PackageList, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"-deps", "-export", "-json=Dir,ImportPath,Name,Export,GoFiles,Standard,Module,Error"}, patterns...)
	pkgs, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, errors.New("go list: " + p.Error.Err)
		}
	}
	return &PackageList{dir: dir, pkgs: pkgs}, nil
}

// MainPackages returns the import paths of the listed main-module
// packages (the ones analysis covers), sorted.
func (pl *PackageList) MainPackages() []string {
	var out []string
	for _, p := range pl.pkgs {
		if p.Module != nil && p.Module.Main {
			out = append(out, p.ImportPath)
		}
	}
	sort.Strings(out)
	return out
}

// Load parses and type-checks the listed main-module packages into a
// Program. Out-of-module dependencies are satisfied by compiler export
// data and do not appear in the returned Program.
func (pl *PackageList) Load() (*Program, error) {
	l := newLoader(token.NewFileSet())
	var order []string
	for _, p := range pl.pkgs {
		if p.Module != nil && p.Module.Main {
			l.locals[p.ImportPath] = p
			order = append(order, p.ImportPath)
		} else {
			l.exports[p.ImportPath] = p.Export
		}
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("auditlint: no main-module packages listed")
	}
	prog := &Program{Fset: l.fset, Info: l.info}
	// -deps emits dependencies first, so iterating in order type-checks
	// each package after everything it imports.
	for _, path := range order {
		p, err := l.check(l.locals[path])
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, p)
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	return prog, nil
}

// LoadPackages loads the main-module packages matched by patterns
// (plus, from source, any main-module packages they depend on), rooted
// at dir: ListPackages followed by Load.
func LoadPackages(dir string, patterns ...string) (*Program, error) {
	pl, err := ListPackages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return pl.Load()
}

// LoadDir loads the single package in dir (non-test files only) under
// the given import path, resolving its imports — which must all be
// standard library — via export data. This is the testdata loader: the
// import path is caller-chosen so path-scoped analyzers can be pointed
// at or away from a fixture.
func LoadDir(dir, importPath string) (*Program, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	l := newLoader(token.NewFileSet())
	var files []*ast.File
	imports := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, err
			}
			imports[path] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("auditlint: no Go files in %s", dir)
	}
	if len(imports) > 0 {
		var paths []string
		for p := range imports {
			if p == "unsafe" {
				continue
			}
			paths = append(paths, p)
		}
		sort.Strings(paths)
		pkgs, err := goList(dir, append([]string{"-deps", "-export", "-json=ImportPath,Export,Standard,Error"}, paths...)...)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Error != nil {
				return nil, errors.New("go list: " + p.Error.Err)
			}
			if !p.Standard {
				return nil, fmt.Errorf("auditlint: testdata package imports non-stdlib %q", p.ImportPath)
			}
			l.exports[p.ImportPath] = p.Export
		}
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.fset, files, l.info)
	if err != nil {
		return nil, fmt.Errorf("auditlint: type-checking %s: %w", dir, err)
	}
	return &Program{
		Fset: l.fset,
		Info: l.info,
		Pkgs: []*Package{{Path: importPath, Dir: dir, Files: files, Pkg: tpkg}},
	}, nil
}

// FixturePkg names one fixture package for LoadDirs: where its sources
// live and the import path it is type-checked under. The path is
// caller-chosen for the same reason as LoadDir's: path-scoped analyzers
// can be pointed at or away from the fixture — including a fixture that
// impersonates a module package (queryaudit/internal/persist/...) so
// cross-package seeds fire without importing the real module.
type FixturePkg struct {
	Dir        string
	ImportPath string
}

// LoadDirs loads several fixture packages into ONE Program sharing a
// FileSet and types.Info, resolving imports between them by their
// declared import paths. This is the cross-package golden harness: a
// taint root in one fixture package, the flagged call site in another.
// Packages must be listed dependencies-first; imports that are neither
// a listed fixture nor standard library are an error.
func LoadDirs(pkgs []FixturePkg) (*Program, error) {
	l := newLoader(token.NewFileSet())
	fixture := map[string]bool{}
	for _, fp := range pkgs {
		fixture[fp.ImportPath] = true
	}
	imports := map[string]bool{}
	for _, fp := range pkgs {
		entries, err := os.ReadDir(fp.Dir)
		if err != nil {
			return nil, err
		}
		lp := &listPkg{Dir: fp.Dir, ImportPath: fp.ImportPath}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(l.fset, filepath.Join(fp.Dir, name), nil, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			lp.GoFiles = append(lp.GoFiles, name)
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					return nil, err
				}
				if !fixture[path] && path != "unsafe" {
					imports[path] = true
				}
			}
		}
		if len(lp.GoFiles) == 0 {
			return nil, fmt.Errorf("auditlint: no Go files in %s", fp.Dir)
		}
		l.locals[fp.ImportPath] = lp
	}
	if len(imports) > 0 {
		var paths []string
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(pkgs[0].Dir, append([]string{"-deps", "-export", "-json=ImportPath,Export,Standard,Error"}, paths...)...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, errors.New("go list: " + p.Error.Err)
			}
			if !p.Standard {
				return nil, fmt.Errorf("auditlint: fixture package imports non-stdlib, non-fixture %q", p.ImportPath)
			}
			l.exports[p.ImportPath] = p.Export
		}
	}
	prog := &Program{Fset: l.fset, Info: l.info}
	for _, fp := range pkgs {
		p, err := l.check(l.locals[fp.ImportPath])
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, p)
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	return prog, nil
}

// ModuleRoot walks up from start to the directory containing go.mod.
func ModuleRoot(start string) (string, error) {
	dir, err := filepath.Abs(start)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("auditlint: no go.mod above %s", start)
		}
		dir = parent
	}
}
