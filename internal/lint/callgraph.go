package lint

// The interprocedural engine: a module-wide call graph computed from the
// single shared types.Info, with per-function summaries propagated to a
// fixed point. v1's analyzers were purely lexical — they saw one
// function at a time — which was enough for the original engine code but
// cannot follow the lock, context, and RNG plumbing the replication,
// sharding, and retrospective-audit layers thread through deep call
// chains. The engine gives every analyzer the same two primitives:
//
//   - Callees/Callers: static call edges (direct calls to module
//     functions) plus class-hierarchy edges for interface method calls
//     (a call through an interface fans out to the method on every
//     module type that implements it — "interfaces actually bound in
//     the module", no whole-program soundness pretensions beyond that);
//
//   - Propagate: a deterministic BFS that lifts a per-function seed set
//     ("calls time.Now here") to its transitive callers, recording for
//     every reached function the next hop toward the seed so findings
//     can print the full witness chain.
//
// Function literals are attributed to their enclosing declared function:
// a call made inside a closure is a call the declaring function may
// make. Goroutine-spawn sites are NOT edges (the spawned body runs on
// its own schedule); ctxleak walks them explicitly.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Edge is one call-graph edge: caller invokes callee at Pos. Dynamic
// marks interface-dispatch edges (the callee is one possible target).
type Edge struct {
	Caller  *types.Func
	Callee  *types.Func
	Pos     token.Pos
	Dynamic bool
}

// Graph is the module call graph plus the decl index analyzers need to
// walk function bodies.
type Graph struct {
	prog *Program
	// Decls maps every module function (and method) that has a body to
	// its syntax and package.
	Decls map[*types.Func]*FuncInfo
	// callees/callers are the edge lists, sorted by source position so
	// every traversal below is deterministic.
	callees map[*types.Func][]Edge
	callers map[*types.Func][]Edge
	// funcs is Decls' key set in source order.
	funcs []*types.Func
}

// FuncInfo ties a module function to its syntax.
type FuncInfo struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// NewGraph builds the call graph for prog. The result is deterministic:
// all edge lists and traversal orders follow source positions in the
// shared FileSet.
func NewGraph(prog *Program) *Graph {
	g := &Graph{
		prog:    prog,
		Decls:   map[*types.Func]*FuncInfo{},
		callees: map[*types.Func][]Edge{},
		callers: map[*types.Func][]Edge{},
	}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := prog.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.Decls[fn] = &FuncInfo{Pkg: pkg, Decl: fd}
			}
		}
	}
	impls := g.interfaceImpls()
	for fn, info := range g.Decls {
		caller := fn
		ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(prog.Info, call)
			if callee == nil {
				return true
			}
			if _, local := g.Decls[callee]; local {
				g.addEdge(Edge{Caller: caller, Callee: callee, Pos: call.Pos()})
				return true
			}
			// An interface method call: fan out to the method on every
			// module type implementing the interface.
			if targets := impls[callee]; len(targets) > 0 {
				for _, t := range targets {
					g.addEdge(Edge{Caller: caller, Callee: t, Pos: call.Pos(), Dynamic: true})
				}
			}
			return true
		})
	}
	for fn := range g.Decls {
		g.funcs = append(g.funcs, fn)
	}
	sort.Slice(g.funcs, func(i, j int) bool { return g.funcs[i].Pos() < g.funcs[j].Pos() })
	for _, edges := range g.callees {
		sortEdges(edges)
	}
	for _, edges := range g.callers {
		sortEdges(edges)
	}
	return g
}

func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Pos != edges[j].Pos {
			return edges[i].Pos < edges[j].Pos
		}
		return edges[i].Callee.Pos() < edges[j].Callee.Pos()
	})
}

func (g *Graph) addEdge(e Edge) {
	g.callees[e.Caller] = append(g.callees[e.Caller], e)
	g.callers[e.Callee] = append(g.callers[e.Callee], e)
}

// Callees returns fn's outgoing edges in source order.
func (g *Graph) Callees(fn *types.Func) []Edge { return g.callees[fn] }

// Callers returns fn's incoming edges in source order.
func (g *Graph) Callers(fn *types.Func) []Edge { return g.callers[fn] }

// Funcs returns every module function with a body, in source order.
func (g *Graph) Funcs() []*types.Func { return g.funcs }

// EnclosingFunc returns the declared function whose body contains pos
// (function literals attribute to their enclosing declaration), or nil.
func (g *Graph) EnclosingFunc(pos token.Pos) *types.Func {
	for _, fn := range g.funcs {
		info := g.Decls[fn]
		if info.Decl.Pos() <= pos && pos < info.Decl.End() {
			return fn
		}
	}
	return nil
}

// interfaceImpls maps each interface method used somewhere in the module
// to the concrete methods of module-declared types that implement the
// interface — the "actually bound in the module" dispatch set.
func (g *Graph) interfaceImpls() map[*types.Func][]*types.Func {
	// Gather the named (non-interface) types declared by module packages.
	var concrete []types.Type
	for _, pkg := range g.prog.Pkgs {
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			concrete = append(concrete, named)
		}
	}
	sort.Slice(concrete, func(i, j int) bool {
		return concrete[i].String() < concrete[j].String()
	})

	impls := map[*types.Func][]*types.Func{}
	// Every *types.Func used as a call target whose receiver is an
	// interface is a dispatch point.
	seen := map[*types.Func]bool{}
	for _, obj := range g.prog.Info.Uses {
		m, ok := obj.(*types.Func)
		if !ok || seen[m] {
			continue
		}
		seen[m] = true
		sig, ok := m.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		for _, t := range concrete {
			ptr := types.NewPointer(t)
			if !types.Implements(t, iface) && !types.Implements(ptr, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
			target, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			if _, local := g.Decls[target]; local {
				impls[m] = append(impls[m], target)
			}
		}
		sort.Slice(impls[m], func(i, j int) bool { return impls[m][i].Pos() < impls[m][j].Pos() })
	}
	return impls
}

// Taint is one function's relation to a seed fact: the position where
// the fact enters the function (a direct occurrence, or the call that
// reaches it) and the next function toward the root (nil at a seed).
type Taint struct {
	Root string // what the chain bottoms out at, e.g. "time.Now"
	Pos  token.Pos
	Next *types.Func
}

// TaintMap is the result of one propagation: every function from which
// the seed fact is reachable, with its witness hop.
type TaintMap map[*types.Func]*Taint

// Propagate lifts seeds to all transitive callers. BFS over the caller
// edges in deterministic order, so each function records the shortest
// (ties: source-order earliest) chain to a seed. Seed entries must have
// Next == nil and Pos set to the direct occurrence.
func (g *Graph) Propagate(seeds TaintMap) TaintMap {
	out := TaintMap{}
	var frontier []*types.Func
	for _, fn := range g.funcs {
		if t, ok := seeds[fn]; ok {
			out[fn] = t
			frontier = append(frontier, fn)
		}
	}
	for len(frontier) > 0 {
		var next []*types.Func
		for _, fn := range frontier {
			for _, e := range g.Callers(fn) {
				if _, done := out[e.Caller]; done {
					continue
				}
				out[e.Caller] = &Taint{Root: out[fn].Root, Pos: e.Pos, Next: fn}
				next = append(next, e.Caller)
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i].Pos() < next[j].Pos() })
		frontier = next
	}
	return out
}

// Chain renders the witness call chain for fn's taint as WitnessSteps,
// from fn's hop down to the root occurrence.
func (g *Graph) Chain(fn *types.Func, tm TaintMap) []WitnessStep {
	var steps []WitnessStep
	for cur := fn; cur != nil; {
		t := tm[cur]
		if t == nil {
			break
		}
		step := WitnessStep{Pos: g.prog.Fset.Position(t.Pos)}
		if t.Next != nil {
			step.Func = FuncDisplayName(t.Next)
			step.Note = "call"
		} else {
			step.Func = t.Root
			step.Note = "root"
		}
		steps = append(steps, step)
		cur = t.Next
	}
	return steps
}

// WitnessString renders a chain compactly for plain-text diagnostics:
// "a.F → b.G → time.Now".
func WitnessString(entry string, steps []WitnessStep) string {
	parts := []string{entry}
	for _, s := range steps {
		parts = append(parts, s.Func)
	}
	return strings.Join(parts, " → ")
}

// FuncDisplayName renders a function for diagnostics: package-qualified,
// with pointer receivers, module prefix trimmed to keep lines readable.
func FuncDisplayName(fn *types.Func) string {
	name := fn.FullName()
	return strings.ReplaceAll(name, "queryaudit/", "")
}

// engine caches the expensive shared structures on the Program so the
// analyzers build them once per Run.
type engine struct {
	graph *Graph
}

// Engine returns the program's lazily built interprocedural engine.
func (p *Program) Engine() *Graph {
	if p.eng == nil {
		p.eng = &engine{graph: NewGraph(p)}
	}
	return p.eng.graph
}
