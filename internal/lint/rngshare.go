package lint

import (
	"go/ast"
	"go/types"
)

// RNGShare returns the shared-RNG analyzer. *math/rand.Rand is not safe
// for concurrent use, and — worse for this codebase — sharing one across
// goroutines makes the draw sequence depend on the scheduler, which
// destroys bit-identical replay (the exact hazard class removed in the
// Monte Carlo engine rewrite). Two patterns are flagged:
//
//   - a `go func() { ... }` literal that captures a *rand.Rand declared
//     outside it: every capture is a share, since the spawner keeps a
//     reference too. Handing a Rand to a goroutine as a call argument of
//     the go statement is NOT flagged — that reads as ownership transfer.
//
//   - a struct field of type *rand.Rand: structs travel, and a Rand
//     riding inside one can silently cross a goroutine boundary. Types
//     that are genuinely confined to one worker (e.g. a per-worker
//     sampler) document that with //auditlint:allow rngshare <reason>.
//
//   - interprocedurally: a goroutine body that OBTAINS a *rand.Rand by
//     calling a function whose summary says the returned generator is
//     stored state (a field accessor, or a wrapper forwarding one) —
//     the escape the two lexical checks cannot see, because the closure
//     captures the struct, not the Rand.
func RNGShare() *Analyzer {
	return &Analyzer{
		Name: "rngshare",
		Doc:  "no *rand.Rand captured by goroutine closures, smuggled in struct fields, or drawn from escaping accessors",
		Run: func(prog *Program) []Finding {
			var out []Finding
			shared := sharedRandReturns(prog.Engine())
			for _, pkg := range prog.Pkgs {
				for _, file := range pkg.Files {
					ast.Inspect(file, func(n ast.Node) bool {
						switch n := n.(type) {
						case *ast.GoStmt:
							if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
								out = append(out, checkGoCapture(prog, lit)...)
								out = append(out, checkGoObtains(prog, lit, shared)...)
							}
						case *ast.StructType:
							out = append(out, checkRandField(prog, n)...)
						}
						return true
					})
				}
			}
			return out
		},
	}
}

// checkGoObtains reports calls inside a goroutine literal that obtain a
// *rand.Rand from a function returning stored (shared) generator state.
func checkGoObtains(prog *Program, lit *ast.FuncLit, shared TaintMap) []Finding {
	g := prog.Engine()
	var out []Finding
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(prog.Info, call)
		if fn == nil || shared[fn] == nil {
			return true
		}
		witness := append([]WitnessStep{{
			Func: FuncDisplayName(fn),
			Pos:  prog.Fset.Position(call.Pos()),
			Note: "call",
		}}, g.Chain(fn, shared)...)
		out = append(out, Finding{
			Analyzer: "rngshare",
			Pos:      prog.Fset.Position(call.Pos()),
			Message: "goroutine obtains a *rand.Rand from " + FuncDisplayName(fn) +
				", which returns stored generator state shared with other holders",
			Hint:    "derive a per-goroutine stream (randx.Stream / randx.Split) instead of sharing the stored generator",
			Witness: witness,
		})
		return true
	})
	return out
}

// checkGoCapture reports free *rand.Rand variables used inside a
// goroutine func literal: variables whose declaration lies outside the
// literal's body.
func checkGoCapture(prog *Program, lit *ast.FuncLit) []Finding {
	var out []Finding
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := prog.Info.Uses[id].(*types.Var)
		if !ok || seen[v] || !isRandRand(v.Type()) {
			return true
		}
		// Declared inside the literal (params included)? Then it's owned.
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true
		}
		seen[v] = true
		out = append(out, Finding{
			Analyzer: "rngshare",
			Pos:      prog.Fset.Position(id.Pos()),
			Message:  "goroutine closure captures *rand.Rand " + id.Name + " shared with its spawner",
			Hint:     "derive a per-goroutine stream (randx.Stream / randx.Split) and pass it as a go-call argument",
		})
		return true
	})
	return out
}

func checkRandField(prog *Program, st *ast.StructType) []Finding {
	var out []Finding
	for _, field := range st.Fields.List {
		tv, ok := prog.Info.Types[field.Type]
		if !ok || !isRandRand(tv.Type) {
			continue
		}
		name := "(embedded)"
		if len(field.Names) > 0 {
			name = field.Names[0].Name
		}
		out = append(out, Finding{
			Analyzer: "rngshare",
			Pos:      prog.Fset.Position(field.Pos()),
			Message:  "struct field " + name + " holds a *rand.Rand, which must never cross goroutines",
			Hint:     "pass the rng per call, or keep the struct worker-confined and add //auditlint:allow rngshare <why it never escapes>",
		})
	}
	return out
}
