// Package lint implements auditlint, the repo's custom static-analysis
// suite. The paper's central requirement — auditor decisions must be a
// deterministic, simulatable function of the decision history (§2.2) —
// is enforced operationally by replay, digest chains, and replication
// (PRs 2–4), but those layers are only sound if the code below them
// keeps a handful of invariants:
//
//   - no wall-clock or global-RNG reads in decision paths (detrand)
//   - no *rand.Rand shared across goroutines (rngshare)
//   - mutex-guarded engine state accessed only under its lock (lockcheck)
//   - snapshot/journal writes only via persist.WriteAtomic (atomicwrite)
//   - no exact float equality in probability/bound logic (floateq)
//
// Each analyzer is a purely syntactic+type-based pass over the module,
// built on go/parser, go/ast and go/types alone — no x/tools — honoring
// the module's stdlib-only rule. Findings are suppressible only by an
// explicit
//
//	//auditlint:allow <analyzer> <reason>
//
// comment on the offending line or the line above it; a bare allow with
// no reason is itself reported. See docs/LINTING.md for the annotation
// grammar and how to add an analyzer.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic: where, which analyzer, what, and how to
// fix. Interprocedural findings carry the witness call chain from the
// flagged site down to the root fact (a time.Now call, a Lock, a raw
// write) so the diagnostic is checkable by a reader without rerunning
// the analysis.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
	Hint     string         `json:"hint,omitempty"`
	Witness  []WitnessStep  `json:"witness,omitempty"`
}

// WitnessStep is one hop of a witness chain: the function (or root
// fact) reached, at which position, and why it is on the chain.
type WitnessStep struct {
	Func string         `json:"func"`
	Pos  token.Position `json:"pos"`
	Note string         `json:"note,omitempty"`
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
	if f.Hint != "" {
		s += " (fix: " + f.Hint + ")"
	}
	for _, w := range f.Witness {
		s += fmt.Sprintf("\n\t%s: %s (%s)", w.Pos, w.Func, w.Note)
	}
	return s
}

// sameFinding reports duplicate diagnostics (a file shared by two load
// patterns); witness chains are derived, so position+message identity is
// enough.
func sameFinding(a, b Finding) bool {
	return a.Analyzer == b.Analyzer && a.Pos == b.Pos && a.Message == b.Message && a.Hint == b.Hint
}

// Package is one type-checked package of the program under analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
}

// Program is the unit analyzers run over: every loaded package sharing
// one FileSet and one merged types.Info, so objects resolved in one
// package are identical to the same objects seen from a dependent one.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
	Info *types.Info

	// eng lazily holds the interprocedural engine shared by the
	// summary-based analyzers; see Program.Engine.
	eng *engine
	// allows lazily caches the //auditlint:allow index for Allowed.
	allows allowSet
}

// Allowed reports whether an //auditlint:allow <analyzer> ... comment
// covers pos. Run applies allows to finding sites; the interprocedural
// seed collectors use Allowed to apply them to ROOT facts as well, so
// one reasoned allow at the root (a metric time stamp, say) suppresses
// the whole reachability cone instead of forcing an annotation at every
// transitive call site.
func (p *Program) Allowed(analyzer string, pos token.Pos) bool {
	if p.allows == nil {
		set, _ := collectAllows(p)
		if set == nil {
			set = allowSet{}
		}
		p.allows = set
	}
	return p.allows.suppressed(analyzer, p.Fset.Position(pos))
}

// Analyzer is one named pass. Run sees the whole program so passes like
// lockcheck can collect annotations in one package and check accesses in
// another.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program) []Finding
}

// Run applies the analyzers, drops findings suppressed by well-formed
// //auditlint:allow comments, reports malformed allow comments, and
// returns the remainder sorted by position.
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	allows, bad := collectAllows(prog)
	out := append([]Finding(nil), bad...)
	for _, a := range analyzers {
		for _, f := range a.Run(prog) {
			if allows.suppressed(a.Name, f.Pos) {
				continue
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	// Dedup identical diagnostics (a file shared by two load patterns).
	dedup := out[:0]
	for i, f := range out {
		if i > 0 && sameFinding(f, out[i-1]) {
			continue
		}
		dedup = append(dedup, f)
	}
	return dedup
}

// pathMatches reports whether importPath is pkg or a subpackage of any
// prefix in prefixes. Empty prefixes matches everything.
func pathMatches(importPath string, prefixes []string) bool {
	if len(prefixes) == 0 {
		return true
	}
	for _, p := range prefixes {
		if importPath == p || strings.HasPrefix(importPath, p+"/") {
			return true
		}
	}
	return false
}

// exprString renders a (small) expression for use in diagnostics and for
// matching lock bases textually: `c.s`, `sh`, `m`.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.BasicLit:
		return e.Value
	case *ast.CallExpr:
		return exprString(e.Fun) + "(…)"
	case *ast.BinaryExpr:
		return exprString(e.X) + e.Op.String() + exprString(e.Y)
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// calleeFunc resolves a call to the *types.Func it invokes (package-level
// function or method), or nil for builtins, conversions and fun values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// stdCall reports whether call invokes <pkgPath>.<name> (a package-level
// function, not a method).
func stdCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// isRandRand reports whether t is *math/rand.Rand.
func isRandRand(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "math/rand" && obj.Name() == "Rand"
}
