package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCacheRoundTrip(t *testing.T) {
	c := &Cache{Dir: filepath.Join(t.TempDir(), "cache")}
	if _, ok := c.Lookup("k1"); ok {
		t.Fatal("empty cache reported a hit")
	}
	findings := []Finding{{
		Analyzer: "detrand",
		Pos:      token.Position{Filename: "a.go", Line: 3, Column: 2},
		Message:  "wall-clock read time.Now in a decision path",
		Hint:     "hoist it",
		Witness: []WitnessStep{
			{Func: "time.Now", Pos: token.Position{Filename: "b.go", Line: 9, Column: 1}, Note: "root"},
		},
	}}
	if err := c.Store("k1", map[string]string{"p": "h"}, findings); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Lookup("k1")
	if !ok || len(got) != 1 {
		t.Fatalf("Lookup(k1) = %v, %v", got, ok)
	}
	if got[0].Message != findings[0].Message || len(got[0].Witness) != 1 ||
		got[0].Witness[0].Func != "time.Now" || got[0].Pos.Line != 3 {
		t.Fatalf("cached finding lost fidelity: %+v", got[0])
	}
	if _, ok := c.Lookup("k2"); ok {
		t.Fatal("stale key reported a hit")
	}

	// A clean (empty) run caches as a hit too — that is the common case
	// `make lint` accelerates.
	if err := c.Store("k3", nil, nil); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Lookup("k3"); !ok || len(got) != 0 {
		t.Fatalf("clean-run Lookup = %v, %v; want empty hit", got, ok)
	}

	// A torn manifest is a miss, never an error.
	if err := os.WriteFile(filepath.Join(c.Dir, "manifest.json"), []byte(`{"schema":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup("k3"); ok {
		t.Fatal("torn manifest reported a hit")
	}
}

// writeTempModule lays out a two-package module for fingerprint tests.
func writeTempModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":        "module example.com/fpmod\n\ngo 1.22\n",
		"top.go":        "package fpmod\n\nimport \"example.com/fpmod/inner\"\n\nfunc Top() int { return inner.V() }\n",
		"inner/util.go": "package inner\n\nfunc V() int { return 1 }\n",
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestFingerprintInvalidation is the summary-cache invalidation test:
// the key is stable across repeated lists of an unchanged module,
// changes when any source file changes, names the invalidating package,
// and returns to the original key when the change is reverted.
func TestFingerprintInvalidation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the go list loader; skipped in -short")
	}
	dir := writeTempModule(t)
	analyzers := []string{"detrand", "errsink"}

	fp := func() (string, map[string]string) {
		t.Helper()
		list, err := ListPackages(dir, "./...")
		if err != nil {
			t.Fatal(err)
		}
		key, perPkg, err := list.Fingerprint(analyzers)
		if err != nil {
			t.Fatal(err)
		}
		return key, perPkg
	}

	key1, pkgs1 := fp()
	key2, _ := fp()
	if key1 != key2 {
		t.Fatalf("fingerprint unstable on unchanged module: %s vs %s", key1, key2)
	}
	c := &Cache{Dir: filepath.Join(dir, ".auditlint-cache")}
	if err := c.Store(key1, pkgs1, nil); err != nil {
		t.Fatal(err)
	}

	inner := filepath.Join(dir, "inner", "util.go")
	orig, err := os.ReadFile(inner)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(inner, []byte("package inner\n\nfunc V() int { return 2 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	key3, pkgs3 := fp()
	if key3 == key1 {
		t.Fatal("fingerprint did not change after editing a source file")
	}
	if _, ok := c.Lookup(key3); ok {
		t.Fatal("edited module hit the stale cache entry")
	}
	stale := c.Invalidated(pkgs3)
	if len(stale) != 1 || !strings.Contains(stale[0], "example.com/fpmod/inner") {
		t.Fatalf("Invalidated = %v, want exactly the edited package", stale)
	}

	// A different analyzer set is a different key even on identical
	// sources.
	list, err := ListPackages(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	keyOther, _, err := list.Fingerprint([]string{"detrand"})
	if err != nil {
		t.Fatal(err)
	}
	if keyOther == key3 {
		t.Fatal("analyzer set not part of the fingerprint")
	}

	if err := os.WriteFile(inner, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	key4, _ := fp()
	if key4 != key1 {
		t.Fatalf("fingerprint did not return after revert: %s vs %s", key4, key1)
	}
	if _, ok := c.Lookup(key4); !ok {
		t.Fatal("reverted module missed the original cache entry")
	}
}
