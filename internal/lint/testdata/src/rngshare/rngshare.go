// Package fixture exercises the rngshare analyzer, which runs on every
// package (no path scoping).
package fixture

import (
	"math/rand"
	"sync"
)

// Launch shares rng between spawner and goroutine — flagged.
func Launch(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = rng.Intn(10) // want `goroutine closure captures \*rand\.Rand rng shared with its spawner`
	}()
	_ = rng.Intn(10)
	wg.Wait()
}

// Handoff transfers ownership as a go-call argument — not flagged.
func Handoff(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	done := make(chan struct{})
	go func(r *rand.Rand) {
		_ = r.Intn(10)
		close(done)
	}(rng)
	<-done
}

// Owned derives its stream inside the goroutine — not flagged.
func Owned(seed int64) {
	done := make(chan struct{})
	go func() {
		rng := rand.New(rand.NewSource(seed))
		_ = rng.Intn(10)
		close(done)
	}()
	<-done
}

// Carrier smuggles a Rand in a struct field — flagged.
type Carrier struct {
	rng *rand.Rand // want `struct field rng holds a \*rand\.Rand`
}

// Sampler documents worker confinement — suppressed.
type Sampler struct {
	rng *rand.Rand //auditlint:allow rngshare fixture sampler never leaves its worker
}

// Draw uses the fields so they are not dead code.
func Draw(c *Carrier, s *Sampler) int { return c.rng.Intn(10) + s.rng.Intn(10) }
