// Package fixture exercises the errsink analyzer: discarded and
// blanked errors from calls that visibly write a response or fsync a
// file, directly and through a helper whose summary reaches the sink,
// plus the defer exemption and a reasoned allow.
package fixture

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
)

// Handler drops response-write errors three ways — all flagged — and
// handles one properly.
func Handler(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte("hi")) // want `error from \(net/http\.ResponseWriter\)\.Write discarded; the call reaches http\.ResponseWriter\.Write`

	_, _ = fmt.Fprintf(w, "n=%d\n", 7) // want `error from fmt\.Fprintf assigned to _; the call reaches fmt\.Fprintf\(ResponseWriter\)`

	json.NewEncoder(w).Encode(r.URL.Query()) // want `error from \(\*encoding/json\.Encoder\)\.Encode discarded; the call reaches json\.Encoder\.Encode\(ResponseWriter\)`

	if _, err := w.Write([]byte("bye")); err != nil { // handled — clean
		return
	}

	//auditlint:allow errsink best-effort trailer after the body committed
	_, _ = w.Write([]byte("\n"))
}

// Relay drops a helper's error; the site itself is the evidence — an
// error-returning function handed the ResponseWriter.
func Relay(w http.ResponseWriter) {
	writeGreeting(w) // want `error from .*writeGreeting discarded; the call reaches .*writeGreeting\(ResponseWriter\)`
}

func writeGreeting(w http.ResponseWriter) error {
	_, err := fmt.Fprintf(w, "hello\n")
	return err
}

// Flush drops an fsync error — flagged: a Sync is only ever issued for
// durability.
func Flush(f *os.File) {
	f.Sync()        // want `error from \(\*os\.File\)\.Sync discarded; the call reaches os\.File\.Sync`
	defer f.Close() // defer is exempt — clean
}

// Settle drops the error of a helper with no sink visible at the site:
// only the helper's engine summary knows it reaches an fsync — flagged
// with the witness chain.
func Settle(f *os.File) {
	settleFile(f) // want `error from .*settleFile discarded; the call reaches os\.File\.Sync`
}

func settleFile(f *os.File) error {
	if _, err := f.Write([]byte{0}); err != nil {
		return err
	}
	return f.Sync()
}
