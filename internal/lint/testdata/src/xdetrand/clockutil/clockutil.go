// Package clockutil is the out-of-scope helper package for the
// cross-package detrand fixture: the wall-clock read is two calls deep
// behind Stamp, in a package no analyzer scopes to.
package clockutil

import "time"

// Stamp returns the current unix time via a private helper.
func Stamp() int64 { return nowUnix() }

func nowUnix() int64 { return time.Now().Unix() }
