// Package decide is the in-scope half of the cross-package detrand
// fixture: loaded under a decision-path import path, its call into
// clockutil must be flagged with the full two-hop witness chain.
package decide

import "example.com/clockutil"

// Choose is decision logic that (wrongly) folds a timestamp in.
func Choose(n int) int64 {
	if n > 0 {
		return clockutil.Stamp() // want `call to example\.com/clockutil\.Stamp reaches a wall-clock read in a decision path`
	}
	return 0
}
