// Package svc is the in-scope half of the cross-package ctxleak
// fixture: it spawns runner loops with the ctx threaded through — or
// dropped on the floor.
package svc

import (
	"context"

	"example.com/xctx/runner"
)

// StartLeak has a ctx and doesn't pass it down: the spawned loop is
// unbounded — flagged.
func StartLeak(ctx context.Context) {
	go runner.Loop() // want `goroutine loops forever \(go → example\.com/xctx/runner\.Loop → for\{\}\) with no reachable lifecycle bound`
}

// StartBounded threads the same ctx one call deep — clean.
func StartBounded(ctx context.Context) {
	go runner.LoopCtx(ctx)
}
