// Package runner is the out-of-scope half of the cross-package ctxleak
// fixture: the forever loops live here, one call away from the service
// package that spawns them.
package runner

import "context"

// Loop runs forever with no lifecycle bound.
func Loop() {
	for {
		tick()
	}
}

// LoopCtx runs forever but observes ctx each iteration.
func LoopCtx(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		tick()
	}
}

func tick() {}
