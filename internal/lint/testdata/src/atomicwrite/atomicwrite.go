// Package fixture exercises the atomicwrite analyzer. The runner loads
// it twice: under a neutral import path (every want fires) and under the
// persistence layer's path (exempt, zero findings).
package fixture

import "os"

// Dump uses every raw mutation primitive — all flagged off the persist
// path.
func Dump(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o644); err != nil { // want `raw os\.WriteFile outside internal/persist`
		return err
	}
	f, err := os.Create(path + ".new") // want `raw os\.Create outside internal/persist`
	if err != nil {
		return err
	}
	f.Close()
	g, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644) // want `raw os\.OpenFile outside internal/persist`
	if err != nil {
		return err
	}
	g.Close()
	return os.Rename(path+".new", path) // want `raw os\.Rename outside internal/persist`
}

// ReadBack opens read-only — not flagged.
func ReadBack(path string) ([]byte, error) {
	f, err := os.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return os.ReadFile(path)
}

// Journal documents an append-only stream — suppressed.
func Journal(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644) //auditlint:allow atomicwrite fixture append-only journal stream
}
