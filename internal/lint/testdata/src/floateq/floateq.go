// Package fixture exercises the floateq analyzer. The runner loads it
// twice: under a probability/bounds import path (wants fire) and under a
// neutral one (zero findings — floateq is path-scoped).
package fixture

const eps = 1e-9

// Same compares floats exactly — flagged.
func Same(a, b float64) bool {
	return a == b // want `exact == on floating-point operands`
}

// Differs compares floats exactly — flagged.
func Differs(a, b float64) bool {
	return a != b // want `exact != on floating-point operands`
}

// Close compares with an epsilon — sanctioned.
func Close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}

// IntsEqual has no float operands — not flagged.
func IntsEqual(a, b int) bool { return a == b }

// ZeroSentinel is exact by construction and says so — suppressed.
func ZeroSentinel(x float64) bool {
	return x == 0 //auditlint:allow floateq fixture zero is a stored sentinel, never computed
}

// folded is compared entirely at compile time — not flagged.
const folded = 1.0 == 2.0
