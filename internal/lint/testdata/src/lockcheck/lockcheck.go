// Package fixture exercises the lockcheck analyzer: guardedby
// annotations, the Locked-suffix and TryLock idioms, acquires-annotated
// helpers, goroutine lock-context resets, and a malformed annotation.
package fixture

import "sync"

// Counter guards its count with mu.
type Counter struct {
	mu sync.Mutex
	// auditlint:guardedby(mu)
	n int
}

// Bad reads n without the lock — flagged.
func (c *Counter) Bad() int {
	return c.n // want `Counter\.n \(guardedby mu\) accessed without holding c\.mu`
}

// Good locks around the access — clean.
func (c *Counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// bumpLocked relies on the caller-holds-the-lock naming convention.
func (c *Counter) bumpLocked() { c.n++ }

// Bump drives bumpLocked so it is not dead code.
func (c *Counter) Bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bumpLocked()
}

// Try uses the TryLock guard-clause idiom — clean.
func (c *Counter) Try() (int, bool) {
	if !c.mu.TryLock() {
		return 0, false
	}
	n := c.n
	c.mu.Unlock()
	return n, true
}

// Spawn holds the lock, but a goroutine body is a fresh lock context —
// the access inside the closure is flagged.
func (c *Counter) Spawn() {
	c.mu.Lock()
	defer c.mu.Unlock()
	done := make(chan struct{})
	go func() {
		c.n++ // want `Counter\.n \(guardedby mu\) accessed without holding c\.mu`
		close(done)
	}()
	<-done
}

// lock wraps the acquisition for its argument.
//
// auditlint:acquires(mu)
func lock(c *Counter) { c.mu.Lock() }

// Wrapped goes through the acquires-annotated helper — clean.
func Wrapped(c *Counter) int {
	lock(c)
	n := c.n
	c.mu.Unlock()
	return n
}

// Peek documents why its unlocked read is safe — suppressed.
func Peek(c *Counter) int {
	return c.n //auditlint:allow lockcheck fixture counter is freshly constructed and unshared
}

// Orphan's annotation names a mutex that is not a sibling field —
// reported as a malformed annotation.
type Orphan struct {
	// auditlint:guardedby(lock)
	n int // want `guardedby names mutex lock, which is not a field of Orphan`
}

// Read uses Orphan so it is not dead code; n is unguarded (the
// annotation was rejected), so this is clean.
func Read(o *Orphan) int { return o.n }
