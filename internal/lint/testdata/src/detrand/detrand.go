// Package fixture exercises the detrand analyzer. The runner loads it
// twice: under a decision-path import path (every want fires) and under
// a neutral one (zero findings — detrand is path-scoped).
package fixture

import (
	"math/rand"
	"time"
)

// Decide stamps and samples — both forbidden on a decision path.
func Decide(votes []int) int {
	start := time.Now() // want `wall-clock read time\.Now in a decision path`
	_ = start
	pick := rand.Intn(len(votes)) // want `global math/rand\.Intn in a decision path`
	return votes[pick]
}

// Sample draws from an explicit seeded stream: sanctioned.
func Sample(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}

// Keys builds output in map-iteration order — flagged.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration feeds ordered output`
		out = append(out, k)
	}
	return out
}

// Total folds order-insensitively — not flagged.
func Total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Stamp carries a justified suppression — no finding.
func Stamp() time.Time {
	return time.Now() //auditlint:allow detrand fixture demonstrates an allowed metric stamp
}
