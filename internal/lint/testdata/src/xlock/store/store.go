// Package store is half of the cross-package lockorder fixture: it
// holds Store.mu while notifying subscribers through an interface, so
// the reverse edge only exists via dynamic dispatch to a type declared
// in the notify package.
package store

import "sync"

// Notifier is implemented (only) by notify.Hub.
type Notifier interface {
	Notify()
}

// Store guards its counter and subscriber list with mu.
type Store struct {
	mu   sync.Mutex
	n    int
	subs []Notifier
}

// Add mutates under the lock and notifies subscribers while still
// holding it — the Store.mu → Hub.mu edge, via interface dispatch.
func (s *Store) Add(delta int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n += delta
	for _, sub := range s.subs {
		sub.Notify() // want `lock-order cycle \(deadlock risk\): example\.com/xlock/store\.Store\.mu → example\.com/xlock/notify\.Hub\.mu → example\.com/xlock/store\.Store\.mu`
	}
}

// Snapshot reads the counter under the lock.
func (s *Store) Snapshot() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
