// Package notify is the other half of the cross-package lockorder
// fixture: Hub.Notify (dispatched from store while Store.mu is held)
// takes Hub.mu, and Refresh takes Hub.mu then calls back into the
// store — closing the two-package cycle.
package notify

import (
	"sync"

	"example.com/xlock/store"
)

// Hub mirrors the store's counter under its own lock.
type Hub struct {
	mu   sync.Mutex
	last int
	src  *store.Store
}

// Notify implements store.Notifier.
func (h *Hub) Notify() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.last++
}

// Refresh holds Hub.mu across a Snapshot — the Hub.mu → Store.mu edge.
func (h *Hub) Refresh() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.last = h.src.Snapshot()
}
