// Package fixture exercises the ctxleak analyzer: forever-looping
// goroutines with and without a lifecycle bound, with the loop and the
// bound both directly in the spawned body and one call deep.
package fixture

import "context"

// Pump owns background workers and a stop channel its Close path
// closes.
type Pump struct {
	stop chan struct{}
	work chan int
}

// Leak spawns an inline forever loop with no bound — flagged. (A
// receive from a struct-field channel would read as the Close-path
// idiom, so the leaky loop polls instead.)
func (p *Pump) Leak() {
	go func() { // want `goroutine loops forever \(go → for\{\}\) with no reachable lifecycle bound`
		for {
			process(poll())
		}
	}()
}

// BoundedByCtx selects on ctx.Done inside the loop — clean.
func (p *Pump) BoundedByCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-p.work:
				process(v)
			}
		}
	}()
}

// BoundedByStop receives from the stop field channel — clean: Close
// closes p.stop and the loop exits.
func (p *Pump) BoundedByStop() {
	go func() {
		for {
			select {
			case <-p.stop:
				return
			case v := <-p.work:
				process(v)
			}
		}
	}()
}

// LeakDeep spawns a named runner whose loop is one call deep and
// unbounded — flagged, with the witness naming the runner.
func (p *Pump) LeakDeep() {
	go p.spin() // want `goroutine loops forever \(go → .*Pump\)\.spin → for\{\}\) with no reachable lifecycle bound`
}

func (p *Pump) spin() {
	for {
		process(poll())
	}
}

// RunDeep spawns a runner that loops one call deep but threads ctx
// down and observes it two calls deep — clean.
func (p *Pump) RunDeep(ctx context.Context) {
	go p.run(ctx)
}

func (p *Pump) run(ctx context.Context) {
	for {
		if stopped(ctx) {
			return
		}
		process(poll())
	}
}

func stopped(ctx context.Context) bool {
	return ctx.Err() != nil
}

// Finite spawns a bounded-iteration goroutine — clean: no forever
// loop, nothing to bound.
func (p *Pump) Finite() {
	go func() {
		for i := 0; i < 8; i++ {
			process(i)
		}
	}()
}

func process(int) {}

// poll stands in for draining an external source.
func poll() int { return 0 }
