// Package fixture carries a reason-less allow comment; the runner
// asserts it surfaces as an auditlint finding (a suppression must say
// what it suppresses and why).
package fixture

// Answer is fine; its suppression is not.
func Answer() int {
	//auditlint:allow floateq
	return 42
}
