// Package fixture exercises the lockorder analyzer: a two-class
// acquisition cycle, a summary-propagated self-deadlock, the TryLock
// fast-path exemption, and an acquires-annotated helper closing a
// cycle the syntax alone would miss.
package fixture

import "sync"

// A and B are two independently locked structures.
type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

// LockAB acquires A.mu then B.mu.
func LockAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock-order cycle \(deadlock risk\).*A\.mu → .*B\.mu → .*A\.mu`
	b.n++
	b.mu.Unlock()
}

// LockBA acquires them in the opposite order — together with LockAB
// this is the deadlock pair. The cycle is reported once, anchored at
// the first edge in source order (in LockAB above).
func LockBA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}

// C self-deadlocks through a helper: Outer holds C.mu when it calls
// lockedHelper, whose summary says it blocks on C.mu again.
type C struct {
	mu sync.Mutex
	n  int
}

func (c *C) Outer(other *C) {
	c.mu.Lock()
	defer c.mu.Unlock()
	other.lockedHelper() // want `lock .*C\.mu acquired while an instance of the same class is already held`
}

func (c *C) lockedHelper() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// D and E order against each other only through TryLock fast paths:
// the reverse edge is non-blocking, so no deadlock cycle exists.
type D struct {
	mu sync.Mutex
	n  int
}

type E struct {
	mu sync.Mutex
	n  int
}

func LockDE(d *D, e *E) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e.mu.Lock()
	e.n++
	e.mu.Unlock()
}

func TryED(d *D, e *E) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !d.mu.TryLock() { // fails fast: not a blocking edge, no cycle
		return false
	}
	d.n++
	d.mu.Unlock()
	return true
}

// F and G cycle through an annotated helper: touchF carries
// auditlint:acquires(mu) instead of visible lock syntax (imagine the
// lock buried behind build tags), and the annotation alone must supply
// the G.mu → F.mu edge.
type F struct {
	mu sync.Mutex
	n  int
}

type G struct {
	mu sync.Mutex
	n  int
}

func LockFG(f *F, g *G) {
	f.mu.Lock()
	defer f.mu.Unlock()
	g.mu.Lock() // want `lock-order cycle \(deadlock risk\).*F\.mu → .*G\.mu → .*F\.mu`
	g.n++
	g.mu.Unlock()
}

func LockGThenTouchF(f *F, g *G) {
	g.mu.Lock()
	defer g.mu.Unlock()
	touchF(f)
}

// auditlint:acquires(mu)
func touchF(f *F) {
	f.n++ // the annotation asserts the lock; lockcheck trusts it too
}
