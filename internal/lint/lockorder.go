package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder returns the deadlock analyzer. It abstracts every mutex in
// the module to a lock CLASS — a named struct type plus mutex field
// name (replica.Node.mu), or a package-level variable — and builds the
// acquisition-order graph: an edge A → B whenever some goroutine can
// acquire a B-class mutex while holding an A-class one. Acquisitions
// are observed three ways:
//
//   - directly: base.mu.Lock()/RLock()/TryLock() in a function body,
//     tracked by a lexical held-set scan (Unlock pops, TryLock guard
//     clauses push, `go` literals start a fresh context);
//
//   - through calls: holding A and calling any module function whose
//     engine summary says it (transitively) acquires B adds A → B, so
//     the classic two-package deadlock — replica holds its mu and calls
//     into session, session holds its mu and calls into replica — is
//     visible even though no single function shows both locks;
//
//   - through annotations: a function marked // auditlint:acquires(mu)
//     counts as acquiring mu of the entity type in its signature, and
//     calling it pushes that class onto the held set (matching
//     lockcheck's reading of the same annotation).
//
// A cycle in the class graph is a deadlock risk; each distinct cycle is
// reported once, with a witness chain showing every acquisition on the
// cycle down to the concrete Lock call. A self-edge A → A (acquiring a
// class already held) is reported too unless both acquisitions are read
// locks. Classes are types, not instances: hand-over-hand locking of
// two objects of one type is indistinguishable from re-locking the same
// object and needs an //auditlint:allow lockorder <reason> stating the
// instance-ordering argument.
func LockOrder() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "no cycles in the mutex-class acquisition graph (deadlock risk)",
		Run:  runLockOrder,
	}
}

// lockClass identifies a mutex statically.
type lockClass struct {
	pkg  string // import path
	typ  string // enclosing named type; "" for package-level vars
	name string // field or variable name
}

func (c lockClass) String() string {
	p := strings.TrimPrefix(c.pkg, "queryaudit/")
	if c.typ != "" {
		return p + "." + c.typ + "." + c.name
	}
	return p + "." + c.name
}

var lockOps = map[string]bool{"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true}
var unlockOps = map[string]bool{"Unlock": true, "RUnlock": true}

func readOp(op string) bool { return op == "RLock" || op == "TryRLock" }

// tryOp reports a non-blocking acquisition. A TryLock cannot be the
// blocking edge of a deadlock cycle: the goroutine fails fast instead
// of waiting, so Try* edges participate in held-set tracking (locks
// obtained that way ARE held afterwards) but never close a cycle.
func tryOp(op string) bool { return op == "TryLock" || op == "TryRLock" }

// mutexOp classifies a call as a mutex operation on a lock class:
// base.mu.Lock(), pkgMu.Lock(), or x.Lock() through an embedded mutex.
func mutexOp(prog *Program, call *ast.CallExpr) (lockClass, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockClass{}, "", false
	}
	fn, ok := prog.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return lockClass{}, "", false
	}
	op := fn.Name()
	if !lockOps[op] && !unlockOps[op] {
		return lockClass{}, "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isMutexType(sig.Recv().Type()) {
		return lockClass{}, "", false
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr: // base.mu.Lock()
		if v, ok := prog.Info.Uses[x.Sel].(*types.Var); ok {
			if v.IsField() {
				if s, ok := prog.Info.Selections[x]; ok {
					if named := namedOf(s.Recv()); named != nil && named.Obj().Pkg() != nil {
						return lockClass{named.Obj().Pkg().Path(), named.Obj().Name(), v.Name()}, op, true
					}
				}
			} else if pkgLevelVar(v) {
				return lockClass{v.Pkg().Path(), "", v.Name()}, op, true
			}
		}
	case *ast.Ident: // mu.Lock() on a package-level var
		if v, ok := prog.Info.Uses[x].(*types.Var); ok && pkgLevelVar(v) {
			return lockClass{v.Pkg().Path(), "", v.Name()}, op, true
		}
	}
	// x.Lock() promoted through an embedded mutex field.
	if s, ok := prog.Info.Selections[sel]; ok && len(s.Index()) > 1 {
		if named := namedOf(s.Recv()); named != nil && named.Obj().Pkg() != nil {
			if st, ok := named.Underlying().(*types.Struct); ok && s.Index()[0] < st.NumFields() {
				return lockClass{named.Obj().Pkg().Path(), named.Obj().Name(), st.Field(s.Index()[0]).Name()}, op, true
			}
		}
	}
	return lockClass{}, "", false
}

func isMutexType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func pkgLevelVar(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() != nil && v.Parent() == v.Pkg().Scope()
}

// lockAcq is one entry of a function's acquisition summary: the class,
// the operation, where (a direct Lock, or the call leading toward one),
// and the next hop (nil at a direct acquisition).
type lockAcq struct {
	class lockClass
	op    string
	pos   token.Pos
	next  *types.Func
}

func findAcq(list []lockAcq, c lockClass) *lockAcq {
	for i := range list {
		if list[i].class == c {
			return &list[i]
		}
	}
	return nil
}

// collectAcquires computes the per-function acquisition summaries to a
// fixed point, plus the directly annotated classes (acquires(mu)).
func collectAcquires(prog *Program, g *Graph) (map[*types.Func][]lockAcq, map[*types.Func]lockClass) {
	acq := map[*types.Func][]lockAcq{}
	for _, fn := range g.Funcs() {
		fnAcq := acq[fn]
		inspectOwn(g.Decls[fn].Decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return true // non-go literals still run on the caller's schedule
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if c, op, ok := mutexOp(prog, call); ok && lockOps[op] {
				if prev := findAcq(fnAcq, c); prev == nil {
					fnAcq = append(fnAcq, lockAcq{class: c, op: op, pos: call.Pos()})
				} else if tryOp(prev.op) && !tryOp(op) {
					// A blocking acquisition outranks a Try fast path
					// (the lockShard idiom: TryLock, else blocking Lock).
					*prev = lockAcq{class: c, op: op, pos: call.Pos()}
				}
			}
			return true
		})
		acq[fn] = fnAcq
	}
	_, acquires, _ := collectGuards(prog)
	anno := map[*types.Func]lockClass{}
	for fn, mu := range acquires {
		if c, ok := annotatedClass(fn, mu); ok {
			anno[fn] = c
			if findAcq(acq[fn], c) == nil {
				acq[fn] = append(acq[fn], lockAcq{class: c, op: "Lock", pos: fn.Pos()})
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.Funcs() {
			for _, e := range g.Callees(fn) {
				for _, a := range acq[e.Callee] {
					prev := findAcq(acq[fn], a.class)
					if prev == nil {
						acq[fn] = append(acq[fn], lockAcq{class: a.class, op: a.op, pos: e.Pos, next: e.Callee})
						changed = true
					} else if tryOp(prev.op) && !tryOp(a.op) {
						*prev = lockAcq{class: a.class, op: a.op, pos: e.Pos, next: e.Callee}
						changed = true
					}
				}
			}
		}
	}
	return acq, anno
}

// annotatedClass resolves an acquires(mu) annotation to the class it
// locks: the first result or parameter type whose struct carries a
// mutex field named mu (matching lockcheck's entity-based reading).
func annotatedClass(fn *types.Func, mu string) (lockClass, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return lockClass{}, false
	}
	var cands []types.Type
	for i := 0; i < sig.Results().Len(); i++ {
		cands = append(cands, sig.Results().At(i).Type())
	}
	for i := 0; i < sig.Params().Len(); i++ {
		cands = append(cands, sig.Params().At(i).Type())
	}
	for _, t := range cands {
		named := namedOf(t)
		if named == nil || named.Obj().Pkg() == nil {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); f.Name() == mu && isMutexType(f.Type()) {
				return lockClass{named.Obj().Pkg().Path(), named.Obj().Name(), mu}, true
			}
		}
	}
	return lockClass{}, false
}

// orderEdge records "toClass acquired while fromClass held" with enough
// context to print a witness.
type orderEdge struct {
	from, to     lockClass
	fromOp, toOp string
	pos          token.Pos   // acquisition or call site of `to`
	fromPos      token.Pos   // where `from` was locked
	via          *types.Func // non-nil: `to` acquired inside this callee
	fn           *types.Func // function containing the edge
}

type heldLock struct {
	class lockClass
	op    string
	pos   token.Pos
}

type orderScanner struct {
	prog  *Program
	g     *Graph
	acq   map[*types.Func][]lockAcq
	anno  map[*types.Func]lockClass
	edges []orderEdge
	keys  map[[2]lockClass]bool
}

func (s *orderScanner) note(fn *types.Func, held []heldLock, to lockClass, toOp string, pos token.Pos, via *types.Func) {
	for _, h := range held {
		if h.class == to && readOp(h.op) && readOp(toOp) {
			continue // RLock while RLock-held: shared, not an order fact
		}
		key := [2]lockClass{h.class, to}
		if s.keys[key] {
			continue
		}
		s.keys[key] = true
		s.edges = append(s.edges, orderEdge{
			from: h.class, to: to, fromOp: h.op, toOp: toOp,
			pos: pos, fromPos: h.pos, via: via, fn: fn,
		})
	}
}

// scanExpr walks e for mutex operations and summary-bearing calls,
// returning the updated held set. Function literals are skipped: they
// run on their own schedule (go) or are rare enough inline that the
// lexical model would lie about them.
func (s *orderScanner) scanExpr(fn *types.Func, e ast.Expr, held []heldLock) []heldLock {
	if e == nil {
		return held
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if c, op, ok := mutexOp(s.prog, call); ok {
			if lockOps[op] {
				s.note(fn, held, c, op, call.Pos(), nil)
				held = append(held, heldLock{class: c, op: op, pos: call.Pos()})
			} else {
				held = removeHeld(held, c)
			}
			return false
		}
		callee := calleeFunc(s.prog.Info, call)
		if callee == nil {
			return true
		}
		if _, local := s.g.Decls[callee]; !local {
			// An interface method call: the graph's dynamic edges at this
			// position name every module-bound implementation; each
			// target's summary contributes order edges, exactly as a
			// static call to it would.
			for _, e := range s.g.Callees(fn) {
				if !e.Dynamic || e.Pos != call.Pos() {
					continue
				}
				for _, a := range s.acq[e.Callee] {
					s.note(fn, held, a.class, a.op, call.Pos(), e.Callee)
				}
			}
			return true
		}
		for _, a := range s.acq[callee] {
			via := callee
			if a.next == nil && a.pos == callee.Pos() {
				via = nil // annotation-only summary: the callee IS the acquisition
			}
			s.note(fn, held, a.class, a.op, call.Pos(), via)
		}
		if c, ok := s.anno[callee]; ok {
			// The annotated helper returns with the entity locked.
			held = append(held, heldLock{class: c, op: "Lock", pos: call.Pos()})
		}
		return true
	})
	return held
}

func removeHeld(held []heldLock, c lockClass) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].class == c {
			return append(append([]heldLock{}, held[:i]...), held[i+1:]...)
		}
	}
	return held
}

func copyHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

// scanStmt processes one statement, scanning nested control-flow bodies
// with a copy of the held set (their effects are conditional) and
// returning the held set after the statement for straight-line flow.
func (s *orderScanner) scanStmt(fn *types.Func, st ast.Stmt, held []heldLock) []heldLock {
	switch st := st.(type) {
	case *ast.ExprStmt:
		return s.scanExpr(fn, st.X, held)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			held = s.scanExpr(fn, r, held)
		}
		return held
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						held = s.scanExpr(fn, v, held)
					}
				}
			}
		}
		return held
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			held = s.scanExpr(fn, r, held)
		}
		return held
	case *ast.SendStmt:
		held = s.scanExpr(fn, st.Chan, held)
		return s.scanExpr(fn, st.Value, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held = s.scanStmt(fn, st.Init, held)
		}
		// `if base.mu.TryLock() { ... }`: body runs with the lock held.
		if c, op, ok := condTryLock(s.prog, st.Cond); ok {
			s.note(fn, held, c, op, st.Cond.Pos(), nil)
			s.scanList(fn, st.Body.List, append(copyHeld(held), heldLock{class: c, op: op, pos: st.Cond.Pos()}))
			if st.Else != nil {
				s.scanElse(fn, st.Else, copyHeld(held))
			}
			return held
		}
		// `if !base.mu.TryLock() { return }`: the rest of the list runs
		// with the lock held.
		if u, ok := ast.Unparen(st.Cond).(*ast.UnaryExpr); ok && u.Op == token.NOT {
			if c, op, ok := condTryLock(s.prog, u.X); ok && terminates(st.Body) {
				s.note(fn, held, c, op, st.Cond.Pos(), nil)
				s.scanList(fn, st.Body.List, copyHeld(held))
				return append(held, heldLock{class: c, op: op, pos: st.Cond.Pos()})
			}
		}
		held = s.scanExpr(fn, st.Cond, held)
		s.scanList(fn, st.Body.List, copyHeld(held))
		if st.Else != nil {
			s.scanElse(fn, st.Else, copyHeld(held))
		}
		return held
	case *ast.ForStmt:
		if st.Init != nil {
			held = s.scanStmt(fn, st.Init, held)
		}
		held = s.scanExpr(fn, st.Cond, held)
		inner := copyHeld(held)
		inner = s.scanList(fn, st.Body.List, inner)
		if st.Post != nil {
			s.scanStmt(fn, st.Post, inner)
		}
		return held
	case *ast.RangeStmt:
		held = s.scanExpr(fn, st.X, held)
		s.scanList(fn, st.Body.List, copyHeld(held))
		return held
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = s.scanStmt(fn, st.Init, held)
		}
		held = s.scanExpr(fn, st.Tag, held)
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				s.scanList(fn, cc.Body, copyHeld(held))
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				s.scanList(fn, cc.Body, copyHeld(held))
			}
		}
		return held
	case *ast.SelectStmt:
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				inner := copyHeld(held)
				if cc.Comm != nil {
					inner = s.scanStmt(fn, cc.Comm, inner)
				}
				s.scanList(fn, cc.Body, inner)
			}
		}
		return held
	case *ast.BlockStmt:
		s.scanList(fn, st.List, copyHeld(held))
		return held
	case *ast.LabeledStmt:
		return s.scanStmt(fn, st.Stmt, held)
	case *ast.DeferStmt, *ast.GoStmt:
		// defer Unlock releases at return (the lock stays held for the
		// rest of the scan — correct); goroutines get a fresh context at
		// their own scan below.
		return held
	}
	return held
}

func (s *orderScanner) scanElse(fn *types.Func, st ast.Stmt, held []heldLock) {
	switch st := st.(type) {
	case *ast.BlockStmt:
		s.scanList(fn, st.List, held)
	default:
		s.scanStmt(fn, st, held)
	}
}

func (s *orderScanner) scanList(fn *types.Func, stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, st := range stmts {
		held = s.scanStmt(fn, st, held)
	}
	return held
}

// condTryLock matches `base.mu.TryLock()` (no negation) as a condition.
func condTryLock(prog *Program, e ast.Expr) (lockClass, string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return lockClass{}, "", false
	}
	c, op, ok := mutexOp(prog, call)
	if !ok || (op != "TryLock" && op != "TryRLock") {
		return lockClass{}, "", false
	}
	return c, op, true
}

func runLockOrder(prog *Program) []Finding {
	g := prog.Engine()
	acq, anno := collectAcquires(prog, g)
	s := &orderScanner{prog: prog, g: g, acq: acq, anno: anno, keys: map[[2]lockClass]bool{}}
	for _, fn := range g.Funcs() {
		body := g.Decls[fn].Decl.Body
		s.scanList(fn, body.List, nil)
		// Goroutine literals start a fresh, empty lock context.
		ast.Inspect(body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				s.scanList(fn, lit.Body.List, nil)
			}
			return true
		})
	}
	return reportCycles(prog, g, s, acq)
}

// reportCycles finds cycles in the class graph and reports each
// distinct one once, anchored at its first recorded edge.
func reportCycles(prog *Program, g *Graph, s *orderScanner, acq map[*types.Func][]lockAcq) []Finding {
	// Only blocking acquisitions can close a deadlock cycle; Try* edges
	// fail fast instead of waiting.
	var blocking []orderEdge
	for _, e := range s.edges {
		if !tryOp(e.toOp) {
			blocking = append(blocking, e)
		}
	}
	adj := map[lockClass][]orderEdge{}
	for _, e := range blocking {
		adj[e.from] = append(adj[e.from], e)
	}
	for _, list := range adj {
		sort.Slice(list, func(i, j int) bool { return list[i].to.String() < list[j].to.String() })
	}
	var out []Finding
	seen := map[string]bool{}
	for _, e := range blocking {
		cycle := closeCycle(adj, e)
		if cycle == nil {
			continue
		}
		names := make([]string, len(cycle))
		for i, ce := range cycle {
			names[i] = ce.from.String()
		}
		canon := append([]string(nil), names...)
		sort.Strings(canon)
		key := strings.Join(canon, "|")
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, cycleFinding(prog, g, cycle, names, acq))
	}
	return out
}

// closeCycle returns the cycle through e (e first), or nil: e itself if
// it is a self-edge, otherwise e plus the shortest path e.to ⇝ e.from.
func closeCycle(adj map[lockClass][]orderEdge, e orderEdge) []orderEdge {
	if e.from == e.to {
		return []orderEdge{e}
	}
	type node struct {
		class lockClass
		path  []orderEdge
	}
	frontier := []node{{class: e.to}}
	visited := map[lockClass]bool{e.to: true}
	for len(frontier) > 0 {
		var next []node
		for _, n := range frontier {
			for _, oe := range adj[n.class] {
				if oe.to == e.from {
					return append([]orderEdge{e}, append(append([]orderEdge(nil), n.path...), oe)...)
				}
				if visited[oe.to] {
					continue
				}
				visited[oe.to] = true
				next = append(next, node{class: oe.to, path: append(append([]orderEdge(nil), n.path...), oe)})
			}
		}
		frontier = next
	}
	return nil
}

func cycleFinding(prog *Program, g *Graph, cycle []orderEdge, names []string, acq map[*types.Func][]lockAcq) Finding {
	var witness []WitnessStep
	for _, e := range cycle {
		step := WitnessStep{
			Func: "acquire " + e.to.String() + " while holding " + e.from.String(),
			Pos:  prog.Fset.Position(e.pos),
			Note: "in " + FuncDisplayName(e.fn),
		}
		witness = append(witness, step)
		// Expand the summary chain from the call site down to the Lock.
		for via := e.via; via != nil; {
			a := findAcq(acq[via], e.to)
			if a == nil {
				break
			}
			hop := WitnessStep{Pos: prog.Fset.Position(a.pos)}
			if a.next != nil {
				hop.Func = FuncDisplayName(a.next)
				hop.Note = "call"
			} else {
				hop.Func = a.op + " " + e.to.String()
				hop.Note = "root"
			}
			witness = append(witness, hop)
			via = a.next
		}
	}
	anchor := cycle[0]
	if len(cycle) == 1 {
		return Finding{
			Analyzer: "lockorder",
			Pos:      prog.Fset.Position(anchor.pos),
			Message: "lock " + anchor.to.String() + " acquired while an instance of the same class is already held" +
				" (self-deadlock if it is the same instance)",
			Hint:    "release before re-acquiring, use a *Locked helper, or allow with the instance-ordering argument",
			Witness: witness,
		}
	}
	return Finding{
		Analyzer: "lockorder",
		Pos:      prog.Fset.Position(anchor.pos),
		Message:  "lock-order cycle (deadlock risk): " + strings.Join(append(names, names[0]), " → "),
		Hint:     "pick one global acquisition order for these mutexes, or collapse them into a single lock",
		Witness:  witness,
	}
}
