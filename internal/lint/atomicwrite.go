package lint

import (
	"go/ast"
	"strings"
)

// AtomicWrite returns the persistence analyzer: outside the packages in
// exempt (the persistence layer itself), code may not call the raw file
// mutation primitives — os.WriteFile, os.Create, os.Rename, or
// os.OpenFile with a writing flag. Snapshots and journals must go
// through persist.WriteAtomic (temp file + fsync + rename) so a crash
// mid-write can never leave a torn snapshot for restore/replay to trip
// over. A torn snapshot is indistinguishable from divergence to the
// replication layer, so this invariant protects the digest chain too.
func AtomicWrite(exempt []string) *Analyzer {
	return &Analyzer{
		Name: "atomicwrite",
		Doc:  "file writes outside the persistence layer must use persist.WriteAtomic",
		Run: func(prog *Program) []Finding {
			var out []Finding
			for _, pkg := range prog.Pkgs {
				if pathMatches(pkg.Path, exempt) {
					continue
				}
				for _, file := range pkg.Files {
					ast.Inspect(file, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						name, bad := rawWriteCall(prog, call)
						if !bad {
							return true
						}
						out = append(out, Finding{
							Analyzer: "atomicwrite",
							Pos:      prog.Fset.Position(call.Pos()),
							Message:  "raw os." + name + " outside internal/persist",
							Hint:     "route the write through persist.WriteAtomic so a crash cannot leave a torn file",
						})
						return true
					})
				}
			}
			return out
		},
	}
}

// rawWriteCall reports whether call is one of the raw mutation
// primitives. os.OpenFile only counts when its flag argument's source
// mentions a writing mode — read-only opens are fine.
func rawWriteCall(prog *Program, call *ast.CallExpr) (string, bool) {
	for _, name := range []string{"WriteFile", "Create", "Rename"} {
		if stdCall(prog.Info, call, "os", name) {
			return name, true
		}
	}
	if stdCall(prog.Info, call, "os", "OpenFile") && len(call.Args) >= 2 {
		flags := exprString(call.Args[1])
		for _, w := range []string{"O_WRONLY", "O_RDWR", "O_CREATE", "O_APPEND", "O_TRUNC"} {
			if strings.Contains(flags, w) {
				return "OpenFile", true
			}
		}
	}
	return "", false
}
