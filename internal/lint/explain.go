package lint

// Explain is the -why backend: given a function name, it recomputes the
// engine's interprocedural facts and prints, for that function, which
// facts hold and the full witness chain from the function down to each
// root occurrence. The analyzers only report facts at in-scope sites;
// -why answers the follow-up question every finding provokes — "why
// does auditlint believe THIS helper reaches time.Now?" — for any
// module function, in or out of scope.

import (
	"fmt"
	"sort"
	"strings"

	"go/types"
)

// FindFuncs resolves a user-supplied name to module functions. The name
// matches a function when it equals the display name, a path-boundary
// suffix of it ("mcpar.Vote" for "internal/mcpar.Vote"), or the same
// with receiver punctuation stripped ("session.Manager.lockShard" for
// "(*internal/session.Manager).lockShard").
func FindFuncs(prog *Program, name string) []*types.Func {
	g := prog.Engine()
	var out []*types.Func
	for _, fn := range g.Funcs() {
		display := FuncDisplayName(fn)
		norm := strings.NewReplacer("(", "", ")", "", "*", "").Replace(display)
		if display == name || norm == name ||
			strings.HasSuffix(display, "/"+name) || strings.HasSuffix(norm, "/"+name) {
			out = append(out, fn)
		}
	}
	return out
}

// Explain renders the engine's facts for every function matching name.
// ok is false when nothing matched.
func Explain(prog *Program, name string) (string, bool) {
	fns := FindFuncs(prog, name)
	if len(fns) == 0 {
		return "", false
	}
	g := prog.Engine()
	wall := g.Propagate(dropAllowedSeeds(prog, "detrand", wallClockSeeds(g)))
	grand := g.Propagate(dropAllowedSeeds(prog, "detrand", globalRandSeeds(g)))
	sinks := g.Propagate(persistSinkSeeds(g, PersistPaths))
	loops := g.Propagate(loopForeverSeeds(g))
	life := g.Propagate(lifecycleSeeds(g))
	shared := sharedRandReturns(g)
	acq, _ := collectAcquires(prog, g)

	var b strings.Builder
	for i, fn := range fns {
		if i > 0 {
			b.WriteString("\n")
		}
		explainFunc(&b, prog, g, fn, wall, grand, sinks, loops, life, shared, acq)
	}
	return b.String(), true
}

func explainFunc(b *strings.Builder, prog *Program, g *Graph, fn *types.Func,
	wall, grand, sinks, loops, life, shared TaintMap, acq map[*types.Func][]lockAcq) {
	display := FuncDisplayName(fn)
	fmt.Fprintf(b, "%s\n  declared at %s\n", display, prog.Fset.Position(fn.Pos()))
	fmt.Fprintf(b, "  call graph: %d callee edge(s), %d caller edge(s)\n",
		len(g.Callees(fn)), len(g.Callers(fn)))

	taints := []struct {
		tm    TaintMap
		label string
	}{
		{wall, "detrand: reaches a wall-clock read"},
		{grand, "detrand: reaches the global math/rand source"},
		{shared, "rngshare: returns a shared *rand.Rand"},
		{sinks, "errsink: reaches a persistence/response sink"},
		{loops, "ctxleak: contains or reaches an unconditional loop"},
		{life, "ctxleak: observes or reaches a lifecycle bound"},
	}
	for _, t := range taints {
		if t.tm[fn] == nil {
			fmt.Fprintf(b, "  - %s: no\n", t.label)
			continue
		}
		steps := g.Chain(fn, t.tm)
		fmt.Fprintf(b, "  + %s: %s\n", t.label, WitnessString(display, steps))
		for _, s := range steps {
			fmt.Fprintf(b, "      %s: %s (%s)\n", s.Pos, s.Func, s.Note)
		}
	}

	if list := acq[fn]; len(list) > 0 {
		classes := append([]lockAcq(nil), list...)
		sort.Slice(classes, func(i, j int) bool { return classes[i].class.String() < classes[j].class.String() })
		fmt.Fprintf(b, "  + lockorder: acquires %d class(es):\n", len(classes))
		for _, a := range classes {
			how := "directly"
			if a.next != nil {
				how = "via " + FuncDisplayName(a.next)
			}
			fmt.Fprintf(b, "      %s (%s, %s at %s)\n", a.class, a.op, how, prog.Fset.Position(a.pos))
		}
	} else {
		fmt.Fprintf(b, "  - lockorder: acquires no lock classes\n")
	}
}
