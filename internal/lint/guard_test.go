package lint

import "testing"

// TestDecisionPathsStayDeterministic is the determinism regression
// guard: the packages that decide or sample — the auditors, the Monte
// Carlo engine, the coloring sampler — must stay free of unsuppressed
// detrand and rngshare findings. Replay, digest chains and replication
// (PRs 2–4) all assume decisions are a pure function of history (§2.2);
// a wall-clock read or a scheduler-dependent RNG draw sneaking into a
// decision path silently breaks every one of those layers, so the lint
// invariant is pinned here as a plain test, not only in `make lint`.
func TestDecisionPathsStayDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the go list loader; skipped in -short")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := LoadPackages(root, "./internal/audit/...", "./internal/auditlog", "./internal/mcpar", "./internal/coloring", "./internal/cluster")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(prog, []*Analyzer{Detrand(DecisionPathPrefixes), RNGShare()})
	for _, f := range findings {
		t.Errorf("decision path regression: %s", f)
	}
	if len(findings) > 0 {
		t.Log("fix the nondeterminism (preferred) or justify it with //auditlint:allow <analyzer> <reason>")
	}
}

// TestServiceLayersStayConcurrencyClean pins the concurrency-discipline
// invariants the same way: the replication and sharding layers — the
// packages that spawn followers, janitors and mirror workers and nest
// the deepest lock chains — must stay free of unsuppressed ctxleak and
// lockorder findings. A ghost goroutine surviving a demotion, or a
// lock-order cycle between the journal and the session table, is a
// split-history bug replication cannot detect from inside.
func TestServiceLayersStayConcurrencyClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the go list loader; skipped in -short")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := LoadPackages(root, "./internal/replica/...", "./internal/cluster/...")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(prog, []*Analyzer{CtxLeak(CtxLeakPrefixes), LockOrder()})
	for _, f := range findings {
		t.Errorf("service layer regression: %s", f)
	}
	if len(findings) > 0 {
		t.Log("bound the goroutine / order the locks (preferred) or justify with //auditlint:allow <analyzer> <reason>")
	}
}
