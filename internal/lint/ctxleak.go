package lint

import (
	"go/ast"
	"go/types"
)

// CtxLeak returns the goroutine-lifetime analyzer for the long-running
// service packages (those whose import path starts with one of paths).
// The replication, sharding, and server layers spawn background
// goroutines — followers, janitors, long-poll pumps, mirror workers —
// and every one of them must have a lifetime bound: otherwise a node
// that is demoted, drained, or shut down keeps ghost workers mutating
// state behind the new primary's back, which is precisely the split
// history the paper's simulatability property forbids.
//
// A `go` statement is flagged when the spawned computation loops
// forever (an unconditional `for`/`for {}` loop, directly in the body
// or in any module function it transitively calls) and neither the body
// nor anything it calls observes a lifecycle bound: a ctx.Done()/Err()
// check, a receive from a shutdown channel (struct field, package var,
// or a local named done/stop/quit/...), or an accessor returning such a
// channel — the reachable-Close-path idiom, since Close() closes the
// field channel the loop selects on.
//
// Both facts are interprocedural, computed by the shared engine: the
// loop may be one call deep (go n.runFollower(ctx)) and the bound two
// calls deep. Goroutines the spawned body itself spawns are judged at
// their own go statements, not the outer one.
func CtxLeak(paths []string) *Analyzer {
	return &Analyzer{
		Name: "ctxleak",
		Doc:  "service-layer goroutines that loop forever must be bounded by ctx, a done channel, or a Close path",
		Run: func(prog *Program) []Finding {
			g := prog.Engine()
			loops := g.Propagate(loopForeverSeeds(g))
			life := g.Propagate(lifecycleSeeds(g))
			var out []Finding
			for _, pkg := range prog.Pkgs {
				if !pathMatches(pkg.Path, paths) {
					continue
				}
				for _, file := range pkg.Files {
					ast.Inspect(file, func(n ast.Node) bool {
						gs, ok := n.(*ast.GoStmt)
						if !ok {
							return true
						}
						out = append(out, checkGoStmt(prog, g, gs, loops, life)...)
						return true
					})
				}
			}
			return out
		},
	}
}

// checkGoStmt judges one go statement: does the spawned computation
// loop forever, and if so, is it lifecycle-bounded?
func checkGoStmt(prog *Program, g *Graph, gs *ast.GoStmt, loops, life TaintMap) []Finding {
	info := prog.Info
	var loopWitness []WitnessStep
	bounded := false

	considerCallee := func(fn *types.Func, pos ast.Node) {
		if fn == nil {
			return
		}
		if _, local := g.Decls[fn]; !local {
			return
		}
		if loopWitness == nil && loops[fn] != nil {
			loopWitness = append([]WitnessStep{{
				Func: FuncDisplayName(fn),
				Pos:  prog.Fset.Position(pos.Pos()),
				Note: "call",
			}}, g.Chain(fn, loops)...)
		}
		if life[fn] != nil {
			bounded = true
		}
	}

	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		// go func() { ... }(): judge the literal's own body plus every
		// module function it calls.
		if pos, ok := loopForeverIn(lit.Body); ok {
			loopWitness = []WitnessStep{{Func: "for{}", Pos: prog.Fset.Position(pos), Note: "root"}}
		}
		if _, _, ok := lifecycleObsIn(info, lit.Body); ok {
			bounded = true
		}
		inspectOwn(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				considerCallee(calleeFunc(info, call), call)
			}
			return true
		})
	} else {
		// go n.run(ctx): judge the named callee's summary.
		considerCallee(calleeFunc(info, gs.Call), gs.Call)
	}

	if loopWitness == nil || bounded {
		return nil
	}
	return []Finding{{
		Analyzer: "ctxleak",
		Pos:      prog.Fset.Position(gs.Pos()),
		Message: "goroutine loops forever (" + WitnessString("go", loopWitness) +
			") with no reachable lifecycle bound",
		Hint:    "select on ctx.Done() or a stop/done channel inside the loop, or exit when the owner's Close path closes the channel the loop reads",
		Witness: loopWitness,
	}}
}
