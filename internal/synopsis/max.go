// Package synopsis implements the synopsis-computing blackbox B of
// Section 2.2 (after Chin '86): an incrementally maintained, O(n)-size
// representation of everything derivable from a history of answered max
// (and, by mirroring, min) queries over a duplicate-free dataset.
//
// A max synopsis is a set of predicates, each one of
//
//	[max(S) = M]  — every x_i (i ∈ S) is ≤ M and exactly one equals M;
//	[max(S) < M]  — every x_i (i ∈ S) is strictly below M;
//	[max(S) ≤ M]  — every x_i (i ∈ S) is at most M, with no witness
//	                claim (arises only when a database update retires an
//	                equality predicate's potential witness),
//
// whose query sets S are pairwise disjoint; each element of the dataset
// appears in at most one predicate. The no-duplicates assumption is what
// allows a new query to be folded into this form in O(|Q|) amortized
// time: when two equality predicates would share a value, their unique
// witness must lie in the intersection of their sets.
//
// The combined max+min synopsis additionally applies the paper's
// normalization: a max predicate and a min predicate with the same value
// M must share exactly one element x_j, which is pinned to M and split
// out of both sets.
package synopsis

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"queryaudit/internal/query"
)

// ErrInconsistent reports that a query/answer pair contradicts the
// information already in the synopsis. The synopsis is left unchanged.
var ErrInconsistent = errors.New("synopsis: answer inconsistent with history")

// Op is the relation a predicate asserts between max(Set) and Value.
type Op int

const (
	// OpEq asserts max(Set) = Value: exactly one element attains Value.
	OpEq Op = iota
	// OpLt asserts every element of Set is strictly below Value.
	OpLt
	// OpLe asserts every element of Set is at most Value, with no
	// witness obligation. Only database updates produce OpLe: when the
	// modified record might have been an equality predicate's witness,
	// the surviving elements keep the bound but lose the guarantee that
	// one of them attains it.
	OpLe
)

func (o Op) symbol() string {
	switch o {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	default:
		return "<="
	}
}

// Pred is one synopsis predicate over a max synopsis. For a min synopsis
// the mirrored reading applies: OpEq is [min(Set) = Value], OpLt is
// [min(Set) > Value], OpLe is [min(Set) ≥ Value].
type Pred struct {
	// ID is a stable identifier, unique within one synopsis instance.
	ID    int
	Set   query.Set
	Value float64
	Op    Op
}

// Eq reports whether the predicate is an equality (witness-carrying)
// predicate.
func (p Pred) Eq() bool { return p.Op == OpEq }

func (p Pred) String() string {
	return fmt.Sprintf("[max%s %s %g]", p.Set, p.Op.symbol(), p.Value)
}

// Max is the incrementally maintained max-query synopsis.
type Max struct {
	n      int
	nextID int
	preds  map[int]*Pred
	// elem[i] is the predicate ID containing element i, or -1.
	elem []int
	// eqVal maps an equality predicate's value to its ID. Equality
	// values are unique by construction.
	eqVal map[float64]int
	// singletonEq counts equality predicates with a one-element set —
	// each pins its element exactly, i.e. classical compromise.
	singletonEq int
	// leCount counts OpLe predicates (they exist only after updates).
	leCount int
}

// NewMax returns an empty synopsis over n elements.
func NewMax(n int) *Max {
	m := &Max{
		n:     n,
		preds: make(map[int]*Pred),
		elem:  make([]int, n),
		eqVal: make(map[float64]int),
	}
	for i := range m.elem {
		m.elem[i] = -1
	}
	return m
}

// N returns the number of dataset elements the synopsis covers.
func (m *Max) N() int { return m.n }

// Clone returns a deep copy.
func (m *Max) Clone() *Max {
	c := &Max{
		n:           m.n,
		nextID:      m.nextID,
		preds:       make(map[int]*Pred, len(m.preds)),
		elem:        append([]int(nil), m.elem...),
		eqVal:       make(map[float64]int, len(m.eqVal)),
		singletonEq: m.singletonEq,
		leCount:     m.leCount,
	}
	for id, p := range m.preds {
		cp := *p
		cp.Set = p.Set.Clone()
		c.preds[id] = &cp
	}
	for v, id := range m.eqVal {
		c.eqVal[v] = id
	}
	return c
}

// CopyInto overwrites dst with a deep copy of m, reusing dst's maps,
// predicate objects and set slices — the allocation-lean sibling of
// Clone for hot loops that repeatedly reset one scratch synopsis to a
// base state (the probabilistic max auditor re-copies the trail once per
// Monte Carlo sample). dst must not share structure with m.
func (m *Max) CopyInto(dst *Max) {
	dst.n = m.n
	dst.nextID = m.nextID
	dst.singletonEq = m.singletonEq
	dst.leCount = m.leCount
	if cap(dst.elem) < m.n {
		dst.elem = make([]int, m.n)
	}
	dst.elem = dst.elem[:m.n]
	copy(dst.elem, m.elem)
	if dst.preds == nil {
		dst.preds = make(map[int]*Pred, len(m.preds))
	}
	for id := range dst.preds {
		if _, ok := m.preds[id]; !ok {
			delete(dst.preds, id)
		}
	}
	for id, p := range m.preds {
		cp := dst.preds[id]
		if cp == nil {
			cp = &Pred{}
			dst.preds[id] = cp
		}
		cp.ID = p.ID
		cp.Set = append(cp.Set[:0], p.Set...)
		cp.Value = p.Value
		cp.Op = p.Op
	}
	if dst.eqVal == nil {
		dst.eqVal = make(map[float64]int, len(m.eqVal))
	}
	for v := range dst.eqVal {
		delete(dst.eqVal, v)
	}
	for v, id := range m.eqVal {
		dst.eqVal[v] = id
	}
}

// Preds returns the predicates sorted by ID (deep copies).
func (m *Max) Preds() []Pred {
	ids := make([]int, 0, len(m.preds))
	for id := range m.preds {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]Pred, 0, len(ids))
	for _, id := range ids {
		p := m.preds[id]
		out = append(out, Pred{ID: p.ID, Set: p.Set.Clone(), Value: p.Value, Op: p.Op})
	}
	return out
}

// PredOf returns the predicate containing element i, if any.
func (m *Max) PredOf(i int) (Pred, bool) {
	id := m.elem[i]
	if id < 0 {
		return Pred{}, false
	}
	p := m.preds[id]
	return Pred{ID: p.ID, Set: p.Set.Clone(), Value: p.Value, Op: p.Op}, true
}

// UpperBound returns the upper bound on element i derivable from the
// synopsis: value v with strict=false meaning x_i ≤ v (equality possible)
// or strict=true meaning x_i < v. ok is false when i is unconstrained.
func (m *Max) UpperBound(i int) (v float64, strict, ok bool) {
	id := m.elem[i]
	if id < 0 {
		return 0, false, false
	}
	p := m.preds[id]
	return p.Value, p.Op == OpLt, true
}

// canAchieve reports whether element i could take the value a under the
// current synopsis.
func (m *Max) canAchieve(i int, a float64) bool {
	id := m.elem[i]
	if id < 0 {
		return true
	}
	p := m.preds[id]
	if p.Op == OpLt {
		return a < p.Value
	}
	return a <= p.Value
}

func (m *Max) newPred(set query.Set, value float64, op Op) *Pred {
	p := &Pred{ID: m.nextID, Set: set, Value: value, Op: op}
	m.nextID++
	m.preds[p.ID] = p
	for _, i := range set {
		m.elem[i] = p.ID
	}
	if op == OpEq {
		m.eqVal[value] = p.ID
		if len(set) == 1 {
			m.singletonEq++
		}
	}
	if op == OpLe {
		m.leCount++
	}
	return p
}

func (m *Max) deletePred(p *Pred) {
	for _, i := range p.Set {
		if m.elem[i] == p.ID {
			m.elem[i] = -1
		}
	}
	m.forgetEq(p, len(p.Set))
	if p.Op == OpLe {
		m.leCount--
	}
	delete(m.preds, p.ID)
}

// forgetEq clears equality bookkeeping for p, whose set had the given
// length while registered.
func (m *Max) forgetEq(p *Pred, setLen int) {
	if p.Op != OpEq {
		return
	}
	if id, ok := m.eqVal[p.Value]; ok && id == p.ID {
		delete(m.eqVal, p.Value)
	}
	if setLen == 1 {
		m.singletonEq--
	}
}

// detach removes element i from its current predicate (if any),
// shrinking or deleting the predicate. Detaching a non-witness from an
// equality predicate is information-preserving because the detached
// element is known to lie strictly below the predicate's value.
func (m *Max) detach(i int) {
	id := m.elem[i]
	if id < 0 {
		return
	}
	p := m.preds[id]
	p.Set = p.Set.Minus(query.Set{i})
	m.elem[i] = -1
	if p.Op == OpEq {
		switch len(p.Set) {
		case 0:
			m.singletonEq-- // was a singleton, now gone
		case 1:
			m.singletonEq++ // shrank into a singleton
		}
	}
	if len(p.Set) == 0 {
		if p.Op == OpEq {
			if id2, ok := m.eqVal[p.Value]; ok && id2 == p.ID {
				delete(m.eqVal, p.Value)
			}
		}
		if p.Op == OpLe {
			m.leCount--
		}
		delete(m.preds, p.ID)
	}
}

// Add folds the answered query [max(Q) = a] into the synopsis. On
// inconsistency the synopsis is unchanged and ErrInconsistent returned.
func (m *Max) Add(q query.Set, a float64) error {
	if len(q) == 0 {
		return errors.New("synopsis: empty query set")
	}
	for _, i := range q {
		if i < 0 || i >= m.n {
			return fmt.Errorf("synopsis: element %d out of range 0..%d", i, m.n-1)
		}
	}

	// --- Consistency checks (state untouched until they all pass). ---

	// (1) Some element of Q must be able to take the value a.
	witnessable := false
	for _, i := range q {
		if m.canAchieve(i, a) {
			witnessable = true
			break
		}
	}
	if !witnessable {
		return ErrInconsistent
	}
	// (2) No equality predicate with value > a may be wholly inside Q:
	// that would force max(Q) above a.
	for _, p := range m.preds {
		if p.Op == OpEq && p.Value > a && p.Set.Minus(q).Size() == 0 {
			return ErrInconsistent
		}
	}
	// (3) If an equality predicate already pins the value a, its unique
	// witness must be available to Q.
	if id, ok := m.eqVal[a]; ok {
		if !m.preds[id].Set.Overlaps(q) {
			return ErrInconsistent
		}
	}

	// --- Fold the new fact in. ---

	if id, ok := m.eqVal[a]; ok {
		// The element equal to a is unique; it lies in S ∩ Q. Split the
		// old predicate: [max(S∩Q) = a], [max(S\Q) < a]; everything else
		// in Q is strictly below a.
		old := m.preds[id]
		inter := old.Set.Intersect(q)
		outside := old.Set.Minus(q)
		m.deletePred(old)
		m.newPred(inter, a, OpEq)
		if len(outside) > 0 {
			m.newPred(outside, a, OpLt)
		}
		// Elements of Q outside the old set learn x < a.
		m.tightenBelow(q.Minus(inter), a)
		return nil
	}

	// No existing predicate pins a. The witness is one of the elements of
	// Q that can achieve a; they form the new equality group. Elements of
	// Q that cannot achieve a are already known to be strictly below it
	// (strict bounds) — except OpLe elements exactly at a, which tighten.
	var witnesses query.Set
	var nonWitnesses query.Set
	for _, i := range q {
		if m.canAchieve(i, a) {
			witnesses = append(witnesses, i)
		} else {
			nonWitnesses = append(nonWitnesses, i)
		}
	}
	for _, i := range witnesses {
		m.detach(i)
	}
	m.newPred(witnesses, a, OpEq)
	m.tightenBelow(nonWitnesses, a)
	return nil
}

// tightenBelow records x_i < a for each element of set whose current
// bound does not already imply it, regrouping them into a fresh strict
// predicate [max(moved) < a].
func (m *Max) tightenBelow(set query.Set, a float64) {
	var moved query.Set
	for _, i := range set {
		id := m.elem[i]
		if id < 0 {
			moved = append(moved, i)
			continue
		}
		p := m.preds[id]
		switch {
		case (p.Op == OpEq || p.Op == OpLe) && p.Value < a:
			// Already below a (x_i ≤ p.Value < a); keep grouping.
		case p.Op == OpLt && p.Value <= a:
			// Already strictly below a.
		default:
			// Bound is looser than a; the element cannot be the witness
			// of its old equality group (it is strictly below a ≤ its
			// old bound), so detaching is information-preserving.
			m.detach(i)
			moved = append(moved, i)
		}
	}
	if len(moved) > 0 {
		m.newPred(moved, a, OpLt)
	}
}

// ForceStrictBelow publicly records the fact x_i < a for every element of
// set. The combined max+min normalization uses it when splitting a
// shared-value witness out of a predicate pair.
func (m *Max) ForceStrictBelow(set query.Set, a float64) {
	m.tightenBelow(set, a)
}

// SingletonEqCount returns the number of equality predicates whose set
// has exactly one element. Each such predicate pins its element's value —
// classical compromise — so full-disclosure auditors deny any query that
// could make this count positive.
func (m *Max) SingletonEqCount() int { return m.singletonEq }

// WeakPredCount returns the number of OpLe predicates. They only exist
// after database updates; their presence means the cheap singleton-based
// compromise test is incomplete and a full extreme-element analysis is
// required.
func (m *Max) WeakPredCount() int { return m.leCount }

// PinExactly records x_i = a as a singleton equality predicate. The
// caller must have established that i can achieve a and that no other
// equality predicate holds a.
func (m *Max) PinExactly(i int, a float64) {
	m.detach(i)
	m.newPred(query.Set{i}, a, OpEq)
}

// EqValues returns the set of values currently held by equality
// predicates. Candidate-answer generators must pick interval
// representatives avoiding these: a representative that collides with a
// foreign equality value is spuriously inconsistent and would mask its
// whole interval.
func (m *Max) EqValues() map[float64]bool {
	out := make(map[float64]bool, len(m.eqVal))
	for v := range m.eqVal {
		out[v] = true
	}
	return out
}

// EqPredWithValue returns the equality predicate holding value a, if any.
func (m *Max) EqPredWithValue(a float64) (Pred, bool) {
	id, ok := m.eqVal[a]
	if !ok {
		return Pred{}, false
	}
	p := m.preds[id]
	return Pred{ID: p.ID, Set: p.Set.Clone(), Value: p.Value, Op: p.Op}, true
}

// Update reacts to a modification of record i's sensitive value: every
// bound previously derived for i is irrelevant to the new value, and if
// i might have been an equality predicate's witness, the survivors keep
// only the non-strict bound (the predicate demotes to OpLe, since the
// old witness guarantee may have walked away with the update).
func (m *Max) Update(i int) {
	id := m.elem[i]
	if id < 0 {
		return
	}
	p := m.preds[id]
	wasEq := p.Op == OpEq
	m.detach(i)
	if !wasEq {
		return
	}
	if p2, ok := m.preds[id]; ok {
		// Demote the surviving equality predicate: max(S\{i}) ≤ M.
		m.forgetEq(p2, len(p2.Set))
		p2.Op = OpLe
		m.leCount++
	}
}

// Snapshot is a serializable image of a synopsis (persistence support).
type Snapshot struct {
	N      int            `json:"n"`
	NextID int            `json:"next_id"`
	Preds  []PredSnapshot `json:"preds"`
}

// PredSnapshot is one predicate in a Snapshot.
type PredSnapshot struct {
	ID    int     `json:"id"`
	Set   []int   `json:"set"`
	Value float64 `json:"value"`
	Op    int     `json:"op"`
}

// Snapshot captures the synopsis state for persistence.
func (m *Max) Snapshot() Snapshot {
	s := Snapshot{N: m.n, NextID: m.nextID}
	for _, p := range m.Preds() {
		s.Preds = append(s.Preds, PredSnapshot{ID: p.ID, Set: p.Set, Value: p.Value, Op: int(p.Op)})
	}
	return s
}

// RestoreMax rebuilds a synopsis from a snapshot, re-validating every
// structural invariant (snapshots may come from untrusted storage).
func RestoreMax(s Snapshot) (*Max, error) {
	if s.N < 0 {
		return nil, fmt.Errorf("synopsis: negative n in snapshot")
	}
	m := NewMax(s.N)
	for _, ps := range s.Preds {
		if ps.Op < int(OpEq) || ps.Op > int(OpLe) {
			return nil, fmt.Errorf("synopsis: bad op %d in snapshot", ps.Op)
		}
		set := query.NewSet(ps.Set...)
		if len(set) == 0 {
			return nil, fmt.Errorf("synopsis: empty predicate set in snapshot")
		}
		for _, i := range set {
			if i < 0 || i >= s.N {
				return nil, fmt.Errorf("synopsis: element %d out of range in snapshot", i)
			}
			if m.elem[i] != -1 {
				return nil, fmt.Errorf("synopsis: element %d in two predicates in snapshot", i)
			}
		}
		if ps.Op == int(OpEq) {
			if _, dup := m.eqVal[ps.Value]; dup {
				return nil, fmt.Errorf("synopsis: duplicate equality value %g in snapshot", ps.Value)
			}
		}
		p := m.newPred(set, ps.Value, Op(ps.Op))
		// Preserve original IDs so EqPredWithValue references stay stable.
		delete(m.preds, p.ID)
		p.ID = ps.ID
		m.preds[ps.ID] = p
		for _, i := range set {
			m.elem[i] = ps.ID
		}
		if p.Op == OpEq {
			m.eqVal[p.Value] = ps.ID
		}
		if ps.ID >= m.nextID {
			m.nextID = ps.ID + 1
		}
	}
	if s.NextID > m.nextID {
		m.nextID = s.NextID
	}
	if err := m.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("synopsis: snapshot invalid: %w", err)
	}
	return m, nil
}

// Snapshot captures the min synopsis (values stored max-oriented).
func (m *Min) Snapshot() Snapshot { return m.inner.Snapshot() }

// RestoreMin rebuilds a min synopsis from its snapshot.
func RestoreMin(s Snapshot) (*Min, error) {
	inner, err := RestoreMax(s)
	if err != nil {
		return nil, err
	}
	return &Min{inner: inner}, nil
}

// MaxMinSnapshot images a combined synopsis. The ambient bounds are
// stored with explicit infinity flags because JSON cannot encode ±Inf.
type MaxMinSnapshot struct {
	Max      Snapshot `json:"max"`
	Min      Snapshot `json:"min"`
	Alpha    float64  `json:"alpha"`
	Beta     float64  `json:"beta"`
	AlphaInf bool     `json:"alpha_inf"`
	BetaInf  bool     `json:"beta_inf"`
}

// Snapshot captures the combined synopsis.
func (b *MaxMin) Snapshot() MaxMinSnapshot {
	s := MaxMinSnapshot{Max: b.max.Snapshot(), Min: b.min.Snapshot()}
	if math.IsInf(b.alpha, -1) {
		s.AlphaInf = true
	} else {
		s.Alpha = b.alpha
	}
	if math.IsInf(b.beta, 1) {
		s.BetaInf = true
	} else {
		s.Beta = b.beta
	}
	return s
}

// RestoreMaxMin rebuilds a combined synopsis from its snapshot.
func RestoreMaxMin(s MaxMinSnapshot) (*MaxMin, error) {
	mx, err := RestoreMax(s.Max)
	if err != nil {
		return nil, err
	}
	mn, err := RestoreMin(s.Min)
	if err != nil {
		return nil, err
	}
	alpha, beta := s.Alpha, s.Beta
	if s.AlphaInf {
		alpha = math.Inf(-1)
	}
	if s.BetaInf {
		beta = math.Inf(1)
	}
	b := &MaxMin{max: mx, min: mn, alpha: alpha, beta: beta}
	if err := b.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("synopsis: combined snapshot invalid: %w", err)
	}
	return b, nil
}

// CheckInvariants validates the structural invariants (disjoint sets,
// element index consistency, unique equality values). Property tests call
// this after every operation.
func (m *Max) CheckInvariants() error {
	seen := make(map[int]int)
	for id, p := range m.preds {
		if p.ID != id {
			return fmt.Errorf("pred id mismatch: %d vs %d", p.ID, id)
		}
		if len(p.Set) == 0 {
			return fmt.Errorf("pred %d: empty set", id)
		}
		for _, i := range p.Set {
			if prev, dup := seen[i]; dup {
				return fmt.Errorf("element %d in preds %d and %d", i, prev, id)
			}
			seen[i] = id
			if m.elem[i] != id {
				return fmt.Errorf("elem[%d]=%d, want %d", i, m.elem[i], id)
			}
		}
		if p.Op == OpEq {
			if got, ok := m.eqVal[p.Value]; !ok || got != id {
				return fmt.Errorf("eqVal missing or wrong for pred %d", id)
			}
		}
	}
	for i, id := range m.elem {
		if id >= 0 {
			if _, ok := seen[i]; !ok {
				return fmt.Errorf("elem[%d]=%d but element not in any pred set", i, id)
			}
		}
	}
	for v, id := range m.eqVal {
		p, ok := m.preds[id]
		if !ok || p.Op != OpEq || p.Value != v {
			return fmt.Errorf("eqVal[%g]=%d stale", v, id)
		}
	}
	singles := 0
	for _, p := range m.preds {
		if p.Op == OpEq && len(p.Set) == 1 {
			singles++
		}
	}
	if singles != m.singletonEq {
		return fmt.Errorf("singletonEq=%d, actual %d", m.singletonEq, singles)
	}
	les := 0
	for _, p := range m.preds {
		if p.Op == OpLe {
			les++
		}
	}
	if les != m.leCount {
		return fmt.Errorf("leCount=%d, actual %d", m.leCount, les)
	}
	return nil
}

func (m *Max) String() string {
	preds := m.Preds()
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " ")
}
