package synopsis_test

import (
	"fmt"

	"queryaudit/internal/query"
	"queryaudit/internal/synopsis"
)

// ExampleMax reproduces the Section 2.2 blackbox example: two max
// queries with a shared answer pin the witness into their intersection.
func ExampleMax() {
	b := synopsis.NewMax(3) // x_a=0, x_b=1, x_c=2
	b.Add(query.NewSet(0, 1, 2), 9)
	b.Add(query.NewSet(0, 1), 9)
	for _, p := range b.Preds() {
		fmt.Println(p)
	}
	// Output:
	// [max{0,1} = 9]
	// [max{2} < 9]
}

// ExampleMaxMin shows the combined normalization: a max and a min
// predicate sharing a value pin their unique common element.
func ExampleMaxMin() {
	b := synopsis.NewMaxMin(4, 0, 10)
	b.AddMax(query.NewSet(0, 1, 2), 5)
	b.AddMin(query.NewSet(2, 3), 5)
	r := b.RangeOf(2)
	fmt.Printf("x2 pinned: %v (value %g)\n", r.Pinned(), r.Lo)
	// Output:
	// x2 pinned: true (value 5)
}

// ExampleMax_Add_inconsistent shows tamper detection: duplicate-free
// data cannot give two disjoint queries the same max.
func ExampleMax_Add_inconsistent() {
	b := synopsis.NewMax(4)
	b.Add(query.NewSet(0, 1), 9)
	err := b.Add(query.NewSet(2, 3), 9)
	fmt.Println(err)
	// Output:
	// synopsis: answer inconsistent with history
}
