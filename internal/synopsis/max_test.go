package synopsis

import (
	"math/rand"
	"sort"
	"testing"

	"queryaudit/internal/query"
)

// TestPaperExampleSplit reproduces the Section 2.2 example: after
// max{a,b,c}=9 and max{a,b}=9 the synopsis must hold [max{a,b}=9] and
// [max{c}<9].
func TestPaperExampleSplit(t *testing.T) {
	m := NewMax(3) // a=0, b=1, c=2
	if err := m.Add(query.NewSet(0, 1, 2), 9); err != nil {
		t.Fatalf("first add: %v", err)
	}
	if err := m.Add(query.NewSet(0, 1), 9); err != nil {
		t.Fatalf("second add: %v", err)
	}
	preds := m.Preds()
	if len(preds) != 2 {
		t.Fatalf("got %d predicates, want 2: %v", len(preds), preds)
	}
	var eq, lt *Pred
	for i := range preds {
		if preds[i].Eq() {
			eq = &preds[i]
		} else {
			lt = &preds[i]
		}
	}
	if eq == nil || lt == nil {
		t.Fatalf("expected one eq and one strict predicate, got %v", preds)
	}
	if !eq.Set.Equal(query.NewSet(0, 1)) || eq.Value != 9 {
		t.Errorf("eq predicate = %v, want [max{0,1}=9]", eq)
	}
	if !lt.Set.Equal(query.NewSet(2)) || lt.Value != 9 {
		t.Errorf("strict predicate = %v, want [max{2}<9]", lt)
	}
}

// TestDisjointEqualAnswersInconsistent: two max queries with disjoint
// sets cannot share an answer when values are duplicate-free.
func TestDisjointEqualAnswersInconsistent(t *testing.T) {
	m := NewMax(4)
	if err := m.Add(query.NewSet(0, 1), 9); err != nil {
		t.Fatalf("first add: %v", err)
	}
	if err := m.Add(query.NewSet(2, 3), 9); err != ErrInconsistent {
		t.Fatalf("second add: got %v, want ErrInconsistent", err)
	}
	// State must be unchanged after the failed add.
	if got := len(m.Preds()); got != 1 {
		t.Errorf("predicates after failed add = %d, want 1", got)
	}
}

// TestAnswerAboveAllBounds: a max answer exceeding every member's known
// bound is impossible.
func TestAnswerAboveAllBounds(t *testing.T) {
	m := NewMax(3)
	if err := m.Add(query.NewSet(0, 1, 2), 5); err != nil {
		t.Fatalf("add: %v", err)
	}
	if err := m.Add(query.NewSet(0, 1), 7); err != ErrInconsistent {
		t.Fatalf("got %v, want ErrInconsistent (all members are ≤ 5)", err)
	}
}

// TestForcedHigherMax: a subset wholly containing an equality predicate
// with a larger value cannot have a smaller max.
func TestForcedHigherMax(t *testing.T) {
	m := NewMax(4)
	if err := m.Add(query.NewSet(0, 1), 9); err != nil {
		t.Fatalf("add: %v", err)
	}
	if err := m.Add(query.NewSet(0, 1, 2, 3), 5); err != ErrInconsistent {
		t.Fatalf("got %v, want ErrInconsistent (max must be ≥ 9)", err)
	}
}

// TestLowerAnswerRefines: a smaller answer on a subset moves its
// elements below the old witness group.
func TestLowerAnswerRefines(t *testing.T) {
	m := NewMax(3)
	if err := m.Add(query.NewSet(0, 1, 2), 9); err != nil {
		t.Fatalf("add: %v", err)
	}
	if err := m.Add(query.NewSet(0, 1), 4); err != nil {
		t.Fatalf("add: %v", err)
	}
	// Now x2 must be the 9-witness: [max{2}=9], and [max{0,1}=4].
	p2, ok := m.PredOf(2)
	if !ok || !p2.Eq() || p2.Value != 9 || len(p2.Set) != 1 {
		t.Errorf("element 2 predicate = %v, want singleton [max{2}=9]", p2)
	}
	p0, _ := m.PredOf(0)
	if !p0.Eq() || p0.Value != 4 || !p0.Set.Equal(query.NewSet(0, 1)) {
		t.Errorf("element 0 predicate = %v, want [max{0,1}=4]", p0)
	}
}

// TestUpperBoundSemantics checks the derived bounds.
func TestUpperBoundSemantics(t *testing.T) {
	m := NewMax(4)
	if err := m.Add(query.NewSet(0, 1, 2), 9); err != nil {
		t.Fatalf("add: %v", err)
	}
	if err := m.Add(query.NewSet(0, 1), 9); err != nil {
		t.Fatalf("add: %v", err)
	}
	if v, strict, ok := m.UpperBound(0); !ok || strict || v != 9 {
		t.Errorf("bound(0) = (%g,%v,%v), want (9,false,true)", v, strict, ok)
	}
	if v, strict, ok := m.UpperBound(2); !ok || !strict || v != 9 {
		t.Errorf("bound(2) = (%g,%v,%v), want (9,true,true)", v, strict, ok)
	}
	if _, _, ok := m.UpperBound(3); ok {
		t.Error("bound(3) should be unconstrained")
	}
}

// TestAddConsistentWithTruth feeds answers computed from a real dataset
// and verifies the synopsis never rejects the truth and all derived
// bounds hold for the true values.
func TestAddConsistentWithTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(8)
		xs := distinctValues(rng, n)
		m := NewMax(n)
		for step := 0; step < 12; step++ {
			q := randomSet(rng, n)
			a := maxOf(xs, q)
			if err := m.Add(q, a); err != nil {
				t.Fatalf("trial %d step %d: true answer rejected: %v\nsynopsis: %v\nquery %v=%g", trial, step, err, m, q, a)
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("trial %d step %d: invariant: %v", trial, step, err)
			}
			for i := 0; i < n; i++ {
				v, strict, ok := m.UpperBound(i)
				if !ok {
					continue
				}
				if strict && xs[i] >= v {
					t.Fatalf("trial %d: derived x%d < %g but x%d = %g", trial, i, v, i, xs[i])
				}
				if !strict && xs[i] > v {
					t.Fatalf("trial %d: derived x%d <= %g but x%d = %g", trial, i, v, i, xs[i])
				}
			}
			// Every equality predicate's value must be attained by
			// exactly one member.
			for _, p := range m.Preds() {
				if !p.Eq() {
					continue
				}
				hits := 0
				for _, i := range p.Set {
					if xs[i] == p.Value {
						hits++
					}
				}
				if hits != 1 {
					t.Fatalf("trial %d: predicate %v attained by %d members", trial, p, hits)
				}
			}
		}
	}
}

func distinctValues(rng *rand.Rand, n int) []float64 {
	for {
		xs := make([]float64, n)
		for i := range xs {
			// Small integer grid to force value collisions across
			// queries (the interesting regime for merging).
			xs[i] = float64(rng.Intn(50))
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		ok := true
		for i := 1; i < len(s); i++ {
			if s[i] == s[i-1] {
				ok = false
				break
			}
		}
		if ok {
			return xs
		}
	}
}

func randomSet(rng *rand.Rand, n int) query.Set {
	for {
		var q []int
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				q = append(q, i)
			}
		}
		if len(q) > 0 {
			return query.NewSet(q...)
		}
	}
}

func maxOf(xs []float64, q query.Set) float64 {
	best := xs[q[0]]
	for _, i := range q[1:] {
		if xs[i] > best {
			best = xs[i]
		}
	}
	return best
}

func minOf(xs []float64, q query.Set) float64 {
	best := xs[q[0]]
	for _, i := range q[1:] {
		if xs[i] < best {
			best = xs[i]
		}
	}
	return best
}

// TestCloneIndependence verifies deep copying.
func TestCloneIndependence(t *testing.T) {
	m := NewMax(3)
	if err := m.Add(query.NewSet(0, 1, 2), 9); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if err := c.Add(query.NewSet(0, 1), 9); err != nil {
		t.Fatal(err)
	}
	if len(m.Preds()) != 1 {
		t.Errorf("original mutated by clone's Add: %v", m)
	}
	if len(c.Preds()) != 2 {
		t.Errorf("clone missing update: %v", c)
	}
}
