package synopsis

import (
	"testing"

	"queryaudit/internal/query"
)

// FuzzMaxAdd: arbitrary (set, answer) streams must never panic or break
// the structural invariants; inconsistent answers must leave state
// untouched. Bytes drive set membership; answers come from a small grid
// to force merge/split paths.
func FuzzMaxAdd(f *testing.F) {
	f.Add([]byte{0b1011, 3, 0b0110, 3, 0b0001, 1}, uint8(4))
	f.Add([]byte{0xFF, 9, 0x0F, 9, 0xF0, 9}, uint8(8))
	f.Add([]byte{}, uint8(2))
	f.Fuzz(func(t *testing.T, ops []byte, nRaw uint8) {
		n := int(nRaw%10) + 1
		m := NewMax(n)
		for i := 0; i+1 < len(ops); i += 2 {
			var set query.Set
			for b := 0; b < n && b < 8; b++ {
				if ops[i]&(1<<b) != 0 {
					set = append(set, b)
				}
			}
			if len(set) == 0 {
				continue
			}
			before := m.String()
			err := m.Add(set, float64(ops[i+1]%16))
			if err != nil && m.String() != before {
				t.Fatalf("failed Add mutated state: %q -> %q", before, m.String())
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("invariants after Add: %v", err)
			}
		}
	})
}

// FuzzMaxMinAdd mirrors FuzzMaxAdd for the combined synopsis, including
// the normalization paths.
func FuzzMaxMinAdd(f *testing.F) {
	f.Add([]byte{0b1011, 3, 1, 0b0110, 3, 0, 0b0001, 1, 1}, uint8(4))
	f.Add([]byte{0xFF, 9, 0, 0x0F, 9, 1}, uint8(8))
	f.Fuzz(func(t *testing.T, ops []byte, nRaw uint8) {
		n := int(nRaw%8) + 2
		b := NewMaxMin(n, -1, 17)
		for i := 0; i+2 < len(ops); i += 3 {
			var set query.Set
			for bit := 0; bit < n && bit < 8; bit++ {
				if ops[i]&(1<<bit) != 0 {
					set = append(set, bit)
				}
			}
			if len(set) == 0 {
				continue
			}
			ans := float64(ops[i+1] % 16)
			var err error
			if ops[i+2]%2 == 0 {
				err = b.AddMax(set, ans)
			} else {
				err = b.AddMin(set, ans)
			}
			_ = err
			if err := b.CheckInvariants(); err != nil {
				t.Fatalf("invariants: %v", err)
			}
			for j := 0; j < n; j++ {
				if b.RangeOf(j).Empty() {
					t.Fatalf("empty range for element %d after successful ops", j)
				}
			}
		}
	})
}
