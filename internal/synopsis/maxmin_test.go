package synopsis

import (
	"math/rand"
	"testing"

	"queryaudit/internal/query"
)

// TestMinMirror checks the min synopsis against the paper's reading:
// min{a,b,c}=2 then min{a,b}=2 yields [min{a,b}=2] and [min{c}>2].
func TestMinMirror(t *testing.T) {
	m := NewMin(3)
	if err := m.Add(query.NewSet(0, 1, 2), 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(query.NewSet(0, 1), 2); err != nil {
		t.Fatal(err)
	}
	preds := m.Preds()
	if len(preds) != 2 {
		t.Fatalf("got %d predicates, want 2: %v", len(preds), preds)
	}
	for _, p := range preds {
		if p.Eq() {
			if !p.Set.Equal(query.NewSet(0, 1)) || p.Value != 2 {
				t.Errorf("eq predicate %v, want [min{0,1}=2]", p)
			}
		} else {
			if !p.Set.Equal(query.NewSet(2)) || p.Value != 2 {
				t.Errorf("strict predicate %v, want [min{2}>2]", p)
			}
		}
	}
	if v, strict, ok := m.LowerBound(2); !ok || !strict || v != 2 {
		t.Errorf("lower bound(2) = (%g,%v,%v), want (2,true,true)", v, strict, ok)
	}
}

// TestSharedValueNormalization exercises the paper's max/min same-value
// rule: [max(S1)=M] and [min(S2)=M] pin the unique common element.
func TestSharedValueNormalization(t *testing.T) {
	b := NewMaxMin(4, 0, 10)
	if err := b.AddMax(query.NewSet(0, 1, 2), 5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddMin(query.NewSet(2, 3), 5); err != nil {
		t.Fatal(err)
	}
	// Element 2 must now be pinned to 5.
	r := b.RangeOf(2)
	if !r.Pinned() || r.Lo != 5 {
		t.Fatalf("range of pinned element = %+v, want exactly 5", r)
	}
	// Elements 0,1 strictly below 5; element 3 strictly above.
	for _, i := range []int{0, 1} {
		r := b.RangeOf(i)
		if !(r.Hi == 5 && r.HiStrict) {
			t.Errorf("range of %d = %+v, want strict upper bound 5", i, r)
		}
	}
	r3 := b.RangeOf(3)
	if !(r3.Lo == 5 && r3.LoStrict) {
		t.Errorf("range of 3 = %+v, want strict lower bound 5", r3)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

// TestSharedValueDisjointInconsistent: max and min answers equal but the
// query sets share nothing — impossible without duplicates.
func TestSharedValueDisjointInconsistent(t *testing.T) {
	b := NewMaxMin(4, 0, 10)
	if err := b.AddMax(query.NewSet(0, 1), 5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddMin(query.NewSet(2, 3), 5); err != ErrInconsistent {
		t.Fatalf("got %v, want ErrInconsistent", err)
	}
	// Rollback must leave the min side empty.
	if got := len(b.MinPreds()); got != 0 {
		t.Errorf("min predicates after rollback = %d, want 0", got)
	}
}

// TestSharedValueWideIntersectionInconsistent: a two-element overlap
// would force two elements to equal the shared value.
func TestSharedValueWideIntersectionInconsistent(t *testing.T) {
	b := NewMaxMin(4, 0, 10)
	if err := b.AddMax(query.NewSet(0, 1), 5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddMin(query.NewSet(0, 1, 2), 5); err != ErrInconsistent {
		t.Fatalf("got %v, want ErrInconsistent", err)
	}
}

// TestCrossRangeInconsistent: min forces values above what max allows.
func TestCrossRangeInconsistent(t *testing.T) {
	b := NewMaxMin(3, 0, 10)
	if err := b.AddMin(query.NewSet(0, 1), 7); err != nil {
		t.Fatal(err)
	}
	if err := b.AddMax(query.NewSet(0, 1), 3); err != ErrInconsistent {
		t.Fatalf("got %v, want ErrInconsistent (all elements ≥ 7)", err)
	}
}

// TestPaperExampleRanges reproduces the Section 3.2 example:
// [max{a,b,c}=1] and [min{a,b}=0.2] give x_a,x_b ∈ [0.2,1], x_c ∈ [0,1].
func TestPaperExampleRanges(t *testing.T) {
	b := NewMaxMin(3, 0, 1)
	if err := b.AddMax(query.NewSet(0, 1, 2), 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddMin(query.NewSet(0, 1), 0.2); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1} {
		r := b.RangeOf(i)
		if r.Lo != 0.2 || r.Hi != 1 {
			t.Errorf("range of %d = %+v, want [0.2, 1]", i, r)
		}
	}
	r := b.RangeOf(2)
	if r.Lo != 0 || r.Hi != 1 {
		t.Errorf("range of 2 = %+v, want [0, 1]", r)
	}
}

// TestMaxMinTruthStream: feeding true answers from a random duplicate-
// free dataset must never be inconsistent, and derived ranges must
// contain the true values.
func TestMaxMinTruthStream(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(8)
		xs := distinctValues(rng, n)
		b := NewMaxMin(n, -1, 50)
		for step := 0; step < 14; step++ {
			q := randomSet(rng, n)
			var err error
			if rng.Intn(2) == 0 {
				err = b.AddMax(q, maxOf(xs, q))
			} else {
				err = b.AddMin(q, minOf(xs, q))
			}
			if err != nil {
				t.Fatalf("trial %d step %d: true answer rejected: %v\nmax: %v\nmin: %v", trial, step, err, b.max, b.min)
			}
			if err := b.CheckInvariants(); err != nil {
				t.Fatalf("trial %d step %d: invariants: %v", trial, step, err)
			}
			for i := 0; i < n; i++ {
				if r := b.RangeOf(i); !r.Contains(xs[i]) {
					t.Fatalf("trial %d step %d: range %+v of x%d excludes true value %g", trial, step, r, i, xs[i])
				}
			}
		}
	}
}
