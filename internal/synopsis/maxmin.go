package synopsis

import (
	"math"

	"queryaudit/internal/query"
)

// Range is the value range an element is confined to by the combined
// synopsis: Lo {<, ≤} x {<, ≤} Hi according to the strictness flags.
type Range struct {
	Lo, Hi             float64
	LoStrict, HiStrict bool
}

// Pinned reports whether the range determines the value exactly.
func (r Range) Pinned() bool {
	return r.Lo == r.Hi && !r.LoStrict && !r.HiStrict
}

// Empty reports whether no value satisfies the range.
func (r Range) Empty() bool {
	if r.Lo > r.Hi {
		return true
	}
	if r.Lo == r.Hi {
		return r.LoStrict || r.HiStrict
	}
	return false
}

// Length returns the measure Hi − Lo (zero when pinned or empty).
func (r Range) Length() float64 {
	if r.Empty() {
		return 0
	}
	return r.Hi - r.Lo
}

// Contains reports whether v satisfies the range constraints.
func (r Range) Contains(v float64) bool {
	if v < r.Lo || (v == r.Lo && r.LoStrict) {
		return false
	}
	if v > r.Hi || (v == r.Hi && r.HiStrict) {
		return false
	}
	return true
}

// MaxMin is the combined synopsis B = (B_max, B_min) of Sections 3.2 and
// 4, including the paper's normalization: whenever a max equality
// predicate and a min equality predicate hold the same value M, their
// unique common element is pinned to M and split out of both sets.
type MaxMin struct {
	max *Max
	min *Min
	// alpha/beta bound the data range for Range computations; classical
	// (full-disclosure) callers use ±Inf.
	alpha, beta float64
}

// NewMaxMin returns an empty combined synopsis over n elements with data
// range [alpha, beta]. Use math.Inf bounds for the unbounded classical
// setting.
func NewMaxMin(n int, alpha, beta float64) *MaxMin {
	return &MaxMin{max: NewMax(n), min: NewMin(n), alpha: alpha, beta: beta}
}

// N returns the number of elements covered.
func (b *MaxMin) N() int { return b.max.N() }

// Alpha returns the lower end of the data range.
func (b *MaxMin) Alpha() float64 { return b.alpha }

// Beta returns the upper end of the data range.
func (b *MaxMin) Beta() float64 { return b.beta }

// Clone returns a deep copy.
func (b *MaxMin) Clone() *MaxMin {
	return &MaxMin{max: b.max.Clone(), min: b.min.Clone(), alpha: b.alpha, beta: b.beta}
}

// MaxPreds returns the current max-side predicates.
func (b *MaxMin) MaxPreds() []Pred { return b.max.Preds() }

// MinPreds returns the current min-side predicates (min orientation).
func (b *MaxMin) MinPreds() []Pred { return b.min.Preds() }

// AddMax folds [max(Q) = a] into the synopsis, applying normalization.
// On inconsistency the synopsis is unchanged.
func (b *MaxMin) AddMax(q query.Set, a float64) error {
	snapMax, snapMin := b.max.Clone(), b.min.Clone()
	if err := b.max.Add(q, a); err != nil {
		return err
	}
	if err := b.normalizeAndCheck(a); err != nil {
		b.max, b.min = snapMax, snapMin
		return err
	}
	return nil
}

// AddMin folds [min(Q) = a] into the synopsis, applying normalization.
func (b *MaxMin) AddMin(q query.Set, a float64) error {
	snapMax, snapMin := b.max.Clone(), b.min.Clone()
	if err := b.min.Add(q, a); err != nil {
		return err
	}
	if err := b.normalizeAndCheck(a); err != nil {
		b.max, b.min = snapMax, snapMin
		return err
	}
	return nil
}

// normalizeAndCheck applies the shared-value split for value a (the only
// value a fresh Add can newly collide on) and re-verifies global
// consistency of element ranges and witness feasibility.
func (b *MaxMin) normalizeAndCheck(a float64) error {
	maxP, okMax := b.max.EqPredWithValue(a)
	minP, okMin := b.min.EqPredWithValue(a)
	if okMax && okMin && !(len(maxP.Set) == 1 && maxP.Set.Equal(minP.Set)) {
		inter := maxP.Set.Intersect(minP.Set)
		if len(inter) != 1 {
			// Zero common elements would require two distinct elements
			// with the same value; two or more would force a duplicate
			// among the non-witnesses. Either way: inconsistent.
			return ErrInconsistent
		}
		j := inter[0]
		// Pin x_j = a: everything else in the max set is strictly below
		// a, everything else in the min set strictly above. The equality
		// predicates then shrink to the singleton {j} on both sides.
		b.max.ForceStrictBelow(maxP.Set.Minus(query.Set{j}), a)
		b.min.ForceStrictAbove(minP.Set.Minus(query.Set{j}), a)
	}
	return b.checkConsistent()
}

// checkConsistent verifies that every element's range is non-empty and
// every equality predicate retains a feasible witness.
func (b *MaxMin) checkConsistent() error {
	n := b.N()
	for i := 0; i < n; i++ {
		if b.RangeOf(i).Empty() {
			return ErrInconsistent
		}
	}
	for _, p := range b.max.Preds() {
		if p.Eq() && !b.hasFeasibleWitness(p) {
			return ErrInconsistent
		}
	}
	for _, p := range b.min.Preds() {
		if p.Eq() && !b.hasFeasibleWitness(p) {
			return ErrInconsistent
		}
	}
	return nil
}

// hasFeasibleWitness reports whether some element of the equality
// predicate p can actually take the value p.Value given the combined
// bounds from both synopsis sides.
func (b *MaxMin) hasFeasibleWitness(p Pred) bool {
	for _, i := range p.Set {
		if b.RangeOf(i).Contains(p.Value) {
			return true
		}
	}
	return false
}

// RangeOf returns the range element i is confined to, combining both
// synopsis sides with the ambient data range [alpha, beta].
func (b *MaxMin) RangeOf(i int) Range {
	r := Range{Lo: b.alpha, Hi: b.beta}
	if v, strict, ok := b.max.UpperBound(i); ok && (v < r.Hi || (v == r.Hi && strict)) {
		r.Hi, r.HiStrict = v, strict
	}
	if v, strict, ok := b.min.LowerBound(i); ok && (v > r.Lo || (v == r.Lo && strict)) {
		r.Lo, r.LoStrict = v, strict
	}
	return r
}

// EqValues returns every value held by an equality predicate on either
// side (candidate generators must avoid them for interval
// representatives).
func (b *MaxMin) EqValues() map[float64]bool {
	out := b.max.EqValues()
	for v := range b.min.EqValues() {
		out[v] = true
	}
	return out
}

// MaxPredOf returns the max-side predicate containing i, if any.
func (b *MaxMin) MaxPredOf(i int) (Pred, bool) { return b.max.PredOf(i) }

// MinPredOf returns the min-side predicate containing i, if any.
func (b *MaxMin) MinPredOf(i int) (Pred, bool) { return b.min.PredOf(i) }

// SingletonEqCount returns the total number of one-element equality
// predicates on both sides. A pinned element contributes two (one per
// side) after normalization, or one if only a single side pins it.
func (b *MaxMin) SingletonEqCount() int {
	return b.max.SingletonEqCount() + b.min.SingletonEqCount()
}

// WeakPredCount returns the total number of OpLe predicates on both
// sides. When positive, weak bounds can pin elements without producing a
// singleton equality predicate, so compromise detection must fall back to
// the full extreme-element analysis.
func (b *MaxMin) WeakPredCount() int {
	return b.max.WeakPredCount() + b.min.WeakPredCount()
}

// Update reacts to a modification of record i's sensitive value (see
// Max.Update): i's bounds are dropped and any equality predicate that
// might have had i as its witness demotes to a witness-free bound.
func (b *MaxMin) Update(i int) {
	b.max.Update(i)
	b.min.Update(i)
}

// CheckInvariants validates both sides plus the combined normal form: no
// max equality value may coincide with a min equality value except as a
// pinned singleton shared by both.
func (b *MaxMin) CheckInvariants() error {
	if err := b.max.CheckInvariants(); err != nil {
		return err
	}
	if err := b.min.CheckInvariants(); err != nil {
		return err
	}
	for _, p := range b.max.Preds() {
		if !p.Eq() {
			continue
		}
		if mp, ok := b.min.EqPredWithValue(p.Value); ok {
			if !(len(p.Set) == 1 && p.Set.Equal(mp.Set)) {
				return errNotNormalized(p.Value)
			}
		}
	}
	return nil
}

type errNotNormalized float64

func (e errNotNormalized) Error() string {
	return "synopsis: max/min equality predicates share value without pinned singleton"
}

// Unbounded returns ±Inf ambient bounds for the classical setting.
func Unbounded() (alpha, beta float64) {
	return math.Inf(-1), math.Inf(1)
}
