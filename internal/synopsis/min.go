package synopsis

import (
	"fmt"

	"queryaudit/internal/query"
)

// Min is the min-query synopsis B_min. It is the exact mirror image of
// Max — min(S) = −max(−S) — and is implemented by delegating to an inner
// Max over negated values, so the (subtle) folding logic exists once.
type Min struct {
	inner *Max
}

// NewMin returns an empty min synopsis over n elements.
func NewMin(n int) *Min { return &Min{inner: NewMax(n)} }

// N returns the number of dataset elements the synopsis covers.
func (m *Min) N() int { return m.inner.N() }

// Clone returns a deep copy.
func (m *Min) Clone() *Min { return &Min{inner: m.inner.Clone()} }

// Add folds the answered query [min(Q) = a] into the synopsis.
func (m *Min) Add(q query.Set, a float64) error { return m.inner.Add(q, -a) }

// Preds returns the predicates in min orientation: OpEq means
// [min(Set) = Value], OpLt means [min(Set) > Value], OpLe means
// [min(Set) ≥ Value].
func (m *Min) Preds() []Pred {
	ps := m.inner.Preds()
	for i := range ps {
		ps[i].Value = -ps[i].Value
	}
	return ps
}

// PredOf returns the predicate containing element i, in min orientation.
func (m *Min) PredOf(i int) (Pred, bool) {
	p, ok := m.inner.PredOf(i)
	if ok {
		p.Value = -p.Value
	}
	return p, ok
}

// LowerBound returns the lower bound on element i: x_i ≥ v
// (strict=false) or x_i > v (strict=true). ok is false when i is
// unconstrained.
func (m *Min) LowerBound(i int) (v float64, strict, ok bool) {
	nv, st, ok := m.inner.UpperBound(i)
	return -nv, st, ok
}

// EqValues returns the values held by min equality predicates (min
// orientation).
func (m *Min) EqValues() map[float64]bool {
	out := make(map[float64]bool)
	for v := range m.inner.EqValues() {
		out[-v] = true
	}
	return out
}

// EqPredWithValue returns the equality predicate pinning min value a.
func (m *Min) EqPredWithValue(a float64) (Pred, bool) {
	p, ok := m.inner.EqPredWithValue(-a)
	if ok {
		p.Value = -p.Value
	}
	return p, ok
}

// ForceStrictAbove records x_i > a for every element of set.
func (m *Min) ForceStrictAbove(set query.Set, a float64) { m.inner.ForceStrictBelow(set, -a) }

// PinExactly records x_i = a as a singleton equality predicate.
func (m *Min) PinExactly(i int, a float64) { m.inner.PinExactly(i, -a) }

// SingletonEqCount returns the number of one-element equality predicates
// (each pins its element exactly).
func (m *Min) SingletonEqCount() int { return m.inner.SingletonEqCount() }

// WeakPredCount returns the number of OpLe predicates (update residue).
func (m *Min) WeakPredCount() int { return m.inner.WeakPredCount() }

// Update reacts to a modification of record i (see Max.Update).
func (m *Min) Update(i int) { m.inner.Update(i) }

// CheckInvariants validates structural invariants.
func (m *Min) CheckInvariants() error { return m.inner.CheckInvariants() }

func (m *Min) String() string {
	preds := m.Preds()
	s := ""
	for i, p := range preds {
		if i > 0 {
			s += " "
		}
		op := ">"
		if p.Eq() {
			op = "="
		}
		s += fmt.Sprintf("[min%s %s %g]", p.Set, op, p.Value)
	}
	return s
}
