package synopsis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"queryaudit/internal/query"
)

// script is a randomly generated interaction against one synopsis: a
// dataset plus a stream of query sets, answered truthfully, with
// interleaved updates. quick generates the raw bytes; decode shapes them.
type script struct {
	Seed    int64
	N       uint8
	Ops     []opByte
	Updates []uint8
}

type opByte struct {
	Mask uint16
	Kind uint8 // 0 max, 1 min, 2 update
}

// TestQuickMaxMinInvariants drives random scripts through the combined
// synopsis: truthful answers are never rejected, structural invariants
// hold after every operation, derived ranges always contain the truth.
func TestQuickMaxMinInvariants(t *testing.T) {
	check := func(s script) bool {
		n := int(s.N%8) + 2
		rng := rand.New(rand.NewSource(s.Seed))
		xs := make([]float64, n)
		used := map[float64]bool{}
		for i := range xs {
			v := float64(rng.Intn(40))
			for used[v] {
				v = float64(rng.Intn(40))
			}
			used[v] = true
			xs[i] = v
		}
		b := NewMaxMin(n, -1, 41)
		for _, op := range s.Ops {
			if op.Kind%3 == 2 {
				i := int(op.Mask) % n
				b.Update(i)
				v := float64(rng.Intn(40))
				for used[v] {
					v = float64(rng.Intn(40))
				}
				used[v] = true
				xs[i] = v
			} else {
				var set query.Set
				for i := 0; i < n; i++ {
					if op.Mask&(1<<i) != 0 {
						set = append(set, i)
					}
				}
				if len(set) == 0 {
					continue
				}
				var err error
				if op.Kind%3 == 0 {
					err = b.AddMax(set, maxOf(xs, set))
				} else {
					err = b.AddMin(set, minOf(xs, set))
				}
				if err != nil {
					return false // truth rejected
				}
			}
			if err := b.CheckInvariants(); err != nil {
				return false
			}
			for i := 0; i < n; i++ {
				if !b.RangeOf(i).Contains(xs[i]) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 250, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCloneIsolation: mutating a clone never affects the original.
func TestQuickCloneIsolation(t *testing.T) {
	check := func(seed int64, mask uint16) bool {
		n := 6
		rng := rand.New(rand.NewSource(seed))
		xs := distinctValues(rng, n)
		m := NewMax(n)
		for step := 0; step < 4; step++ {
			set := randomSet(rng, n)
			if m.Add(set, maxOf(xs, set)) != nil {
				return false
			}
		}
		before := m.String()
		c := m.Clone()
		var set query.Set
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				set = append(set, i)
			}
		}
		if len(set) > 0 {
			_ = c.Add(set, maxOf(xs, set))
			c.Update(set[0])
		}
		return m.String() == before && m.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBoundMonotone: folding more answers only tightens bounds.
func TestQuickBoundMonotone(t *testing.T) {
	check := func(seed int64) bool {
		n := 7
		rng := rand.New(rand.NewSource(seed))
		xs := distinctValues(rng, n)
		m := NewMax(n)
		prev := make([]float64, n)
		for i := range prev {
			prev[i] = 1e18
		}
		for step := 0; step < 8; step++ {
			set := randomSet(rng, n)
			if m.Add(set, maxOf(xs, set)) != nil {
				return false
			}
			for i := 0; i < n; i++ {
				v, _, ok := m.UpperBound(i)
				if !ok {
					continue
				}
				if v > prev[i] {
					return false // bound loosened
				}
				prev[i] = v
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
