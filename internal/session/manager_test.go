package session

import (
	"errors"
	"sync"
	"testing"
	"time"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/maxminfull"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
)

// fullSpec builds the exact-disclosure stack (sumfull + joint maxmin)
// over ds.
func fullSpec(ds *dataset.Dataset) *core.EngineSpec {
	sp := core.NewEngineSpec(ds)
	n := ds.N()
	sp.Register(func() (audit.Auditor, error) { return sumfull.New(n), nil }, query.Sum)
	sp.Register(func() (audit.Auditor, error) { return maxminfull.New(n), nil }, query.Max, query.Min)
	return sp
}

// countingObserver tallies lifecycle events for assertions.
type countingObserver struct {
	mu                                   sync.Mutex
	created, evicted, expired, rejected  int
	replays, replayEvents, live, waiters int
}

func (o *countingObserver) ObserveSessionCreated() {
	o.mu.Lock()
	o.created++
	o.mu.Unlock()
}
func (o *countingObserver) ObserveSessionEvicted() {
	o.mu.Lock()
	o.evicted++
	o.mu.Unlock()
}
func (o *countingObserver) ObserveSessionExpired() {
	o.mu.Lock()
	o.expired++
	o.mu.Unlock()
}
func (o *countingObserver) ObserveSessionRejected() {
	o.mu.Lock()
	o.rejected++
	o.mu.Unlock()
}
func (o *countingObserver) ObserveReplay(events int, _ time.Duration) {
	o.mu.Lock()
	o.replays++
	o.replayEvents += events
	o.mu.Unlock()
}
func (o *countingObserver) ObserveLive(delta int) {
	o.mu.Lock()
	o.live += delta
	o.mu.Unlock()
}
func (o *countingObserver) ObserveShardWait(_, delta int) {
	o.mu.Lock()
	o.waiters += delta
	o.mu.Unlock()
}

func newTestManager(t *testing.T, cfg Config, vals []float64) *Manager {
	t.Helper()
	cfg.NoJanitor = true
	m, err := NewManager(fullSpec(dataset.FromValues(vals)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// TestSessionIsolationBasic: one analyst's pinned total never restricts
// another analyst's identical complement.
func TestSessionIsolationBasic(t *testing.T) {
	m := newTestManager(t, Config{}, []float64{1, 2, 3, 4, 5})
	total := query.New(query.Sum, 0, 1, 2, 3, 4)
	rest := query.New(query.Sum, 1, 2, 3, 4)
	if resp, err := m.Ask("alice", total); err != nil || resp.Denied {
		t.Fatalf("alice total: %+v %v", resp, err)
	}
	if resp, err := m.Ask("alice", rest); err != nil || !resp.Denied {
		t.Fatalf("alice complement should be denied: %+v %v", resp, err)
	}
	if resp, err := m.Ask("bob", rest); err != nil || resp.Denied {
		t.Fatalf("bob's first query should be answered: %+v %v", resp, err)
	}
	if st := m.Stats("alice"); st.Answered != 1 || st.Denied != 1 {
		t.Fatalf("alice stats: %+v", st)
	}
	if st := m.Stats("bob"); st.Answered != 1 || st.Denied != 0 {
		t.Fatalf("bob stats: %+v", st)
	}
}

// TestAdmissionControl: beyond MaxSessions new analysts are refused with
// ErrTooManySessions; existing analysts keep working.
func TestAdmissionControl(t *testing.T) {
	obs := &countingObserver{}
	m := newTestManager(t, Config{MaxSessions: 2, Observer: obs}, []float64{1, 2, 3})
	q := query.New(query.Count, 0)
	if _, err := m.Ask("alice", q); err != nil { // session 2 of 2 (default is 1)
		t.Fatal(err)
	}
	if _, err := m.Ask("mallory", q); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("third analyst: got %v, want ErrTooManySessions", err)
	}
	if _, err := m.Ask("alice", q); err != nil {
		t.Fatalf("admitted analyst must keep working: %v", err)
	}
	if obs.rejected != 1 {
		t.Fatalf("rejected=%d, want 1", obs.rejected)
	}
	if m.Tracked() != 2 {
		t.Fatalf("tracked=%d, want 2", m.Tracked())
	}
}

// TestLRUEviction: MaxLive bounds materialized engines; the LRU victim
// is evicted to its log and rebuilt by replay when it returns, with its
// history intact.
func TestLRUEviction(t *testing.T) {
	obs := &countingObserver{}
	m := newTestManager(t, Config{MaxLive: 2, Observer: obs}, []float64{1, 2, 3, 4, 5})
	total := query.New(query.Sum, 0, 1, 2, 3, 4)
	rest := query.New(query.Sum, 1, 2, 3, 4)

	if _, err := m.Ask("alice", total); err != nil { // default evicted or alice builds
		t.Fatal(err)
	}
	if _, err := m.Ask("bob", query.New(query.Count, 0)); err != nil {
		t.Fatal(err)
	}
	if m.Live() > 2 {
		t.Fatalf("live=%d exceeds MaxLive=2", m.Live())
	}
	// Alice was evicted at some point or not; force it, then her denial
	// decision must be identical post-replay.
	m.EvictEngine("alice")
	if resp, err := m.Ask("alice", rest); err != nil || !resp.Denied {
		t.Fatalf("post-replay complement should be denied: %+v %v", resp, err)
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.evicted == 0 || obs.replays == 0 || obs.replayEvents == 0 {
		t.Fatalf("expected evictions and replays, got %+v", obs)
	}
}

// TestTTLSweep: sessions idle past the TTL are removed, log included —
// the analyst restarts with a fresh (empty) history.
func TestTTLSweep(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	obs := &countingObserver{}
	m := newTestManager(t, Config{TTL: time.Minute, Clock: clock, Observer: obs}, []float64{1, 2, 3})
	if _, err := m.Ask("alice", query.New(query.Sum, 0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if n := m.Sweep(now); n != 0 {
		t.Fatalf("nothing should expire yet, swept %d", n)
	}
	now = now.Add(2 * time.Minute)
	// The default session is pinned only in single mode; here it is spec
	// built and expires alongside alice.
	if n := m.Sweep(now); n != 2 {
		t.Fatalf("swept %d, want 2 (alice + default)", n)
	}
	if m.Tracked() != 0 || m.Live() != 0 {
		t.Fatalf("tracked=%d live=%d after sweep", m.Tracked(), m.Live())
	}
	if st := m.Stats("alice"); st.Answered != 0 || st.LogEvents != 0 {
		t.Fatalf("expired session should be forgotten: %+v", st)
	}
	// Returning after expiry starts a fresh session (and budget).
	if resp, err := m.Ask("alice", query.New(query.Sum, 1, 2)); err != nil || resp.Denied {
		t.Fatalf("fresh session should answer: %+v %v", resp, err)
	}
	if obs.expired != 2 {
		t.Fatalf("expired=%d, want 2", obs.expired)
	}
}

// TestSingleMode: a wrapped pre-built engine serves only the default
// analyst; it is pinned (never evicted/expired) and other analysts are
// refused.
func TestSingleMode(t *testing.T) {
	ds := dataset.FromValues([]float64{1, 2, 3})
	eng, err := fullSpec(ds).Build()
	if err != nil {
		t.Fatal(err)
	}
	m := Single(eng, Config{})
	defer m.Close()
	if resp, err := m.Ask(DefaultAnalyst, query.New(query.Sum, 0, 1, 2)); err != nil || resp.Denied {
		t.Fatalf("default analyst: %+v %v", resp, err)
	}
	if _, err := m.Ask("alice", query.New(query.Count, 0)); !errors.Is(err, ErrMultiAnalystDisabled) {
		t.Fatalf("non-default analyst: got %v, want ErrMultiAnalystDisabled", err)
	}
	if m.EvictEngine(DefaultAnalyst) {
		t.Fatal("pinned default must not be evictable")
	}
	if n := m.Sweep(time.Now().Add(24 * time.Hour)); n != 0 {
		t.Fatalf("pinned default must not expire, swept %d", n)
	}
	if st := m.Stats(DefaultAnalyst); st.Answered != 1 || !st.Live {
		t.Fatalf("default stats: %+v", st)
	}
}

// TestUpdateBroadcast: an update mutates the shared dataset once and is
// journaled into every session's timeline; a session evicted after the
// update replays to the same post-update state.
func TestUpdateBroadcast(t *testing.T) {
	m := newTestManager(t, Config{}, []float64{1, 2, 3, 4})
	total := query.New(query.Sum, 0, 1, 2, 3)
	past := query.New(query.Sum, 1, 2, 3)
	fresh := query.New(query.Sum, 0, 1)
	if resp, err := m.Ask("alice", total); err != nil || resp.Denied {
		t.Fatalf("total: %+v %v", resp, err)
	}
	if err := m.Update(0, 42); err != nil {
		t.Fatal(err)
	}
	if m.Dataset().Sensitive(0) != 42 {
		t.Fatal("dataset not updated")
	}
	check := func(label string) {
		t.Helper()
		if resp, err := m.Ask("alice", past); err != nil || !resp.Denied {
			t.Fatalf("%s: past-value reveal must stay denied: %+v %v", label, resp, err)
		}
		if resp, err := m.Ask("alice", fresh); err != nil || resp.Denied {
			t.Fatalf("%s: fresh-version query should pass: %+v %v", label, resp, err)
		}
	}
	check("live")
	if !m.EvictEngine("alice") {
		t.Fatal("evict failed")
	}
	check("replayed")
	// Bob's session — created after the update — is unaffected but his
	// journal still carries the marker via Update's broadcast only if he
	// existed; a new session simply starts clean.
	if resp, err := m.Ask("bob", past); err != nil || resp.Denied {
		t.Fatalf("bob: %+v %v", resp, err)
	}
	if err := m.Update(99, 1); err == nil {
		t.Fatal("out-of-range update should fail")
	}
}

// TestStatsDoesNotCreateSessions: polling stats for an unknown analyst
// must not admit a session (that would let an unauthenticated monitor
// exhaust the session budget).
func TestStatsDoesNotCreateSessions(t *testing.T) {
	m := newTestManager(t, Config{}, []float64{1, 2})
	before := m.Tracked()
	st := m.Stats("nobody")
	if st.Answered != 0 || st.Live || st.LogEvents != 0 {
		t.Fatalf("unknown analyst stats: %+v", st)
	}
	if m.Tracked() != before {
		t.Fatalf("Stats created a session: %d -> %d", before, m.Tracked())
	}
	if st.Records != 2 {
		t.Fatalf("records=%d, want 2", st.Records)
	}
}

// TestSessionsListing: the admin view reports every tracked session with
// tallies, sorted by analyst.
func TestSessionsListing(t *testing.T) {
	m := newTestManager(t, Config{}, []float64{1, 2, 3})
	if _, err := m.Ask("zoe", query.New(query.Count, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ask("abe", query.New(query.Sum, 0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	infos := m.Sessions()
	if len(infos) != 3 { // abe, default, zoe
		t.Fatalf("listed %d sessions, want 3", len(infos))
	}
	if infos[0].Analyst != "abe" || infos[1].Analyst != DefaultAnalyst || infos[2].Analyst != "zoe" {
		t.Fatalf("not sorted: %+v", infos)
	}
	if infos[0].Answered != 1 || infos[0].LogEvents != 1 {
		t.Fatalf("abe info: %+v", infos[0])
	}
}

// TestRestoreRoundTrip: LogSnapshots → Restore on a fresh manager over
// an identical dataset reproduces every session's decision state.
func TestRestoreRoundTrip(t *testing.T) {
	vals := []float64{2, 4, 6, 8}
	m1 := newTestManager(t, Config{}, vals)
	total := query.New(query.Sum, 0, 1, 2, 3)
	rest := query.New(query.Sum, 1, 2, 3)
	if _, err := m1.Ask("alice", total); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Ask("alice", rest); err != nil { // denied, journaled
		t.Fatal(err)
	}
	if _, err := m1.Ask("bob", query.New(query.Max, 0, 1)); err != nil {
		t.Fatal(err)
	}
	snaps := m1.LogSnapshots()
	if len(snaps) != 3 {
		t.Fatalf("snapshots: %d, want 3", len(snaps))
	}

	m2 := newTestManager(t, Config{}, vals)
	if err := m2.Restore(snaps); err != nil {
		t.Fatal(err)
	}
	// Alice's budget is restored: the complement stays denied and her
	// tallies survive.
	if resp, err := m2.Ask("alice", rest); err != nil || !resp.Denied {
		t.Fatalf("restored alice complement: %+v %v", resp, err)
	}
	st := m2.Stats("alice")
	if st.Answered != 1 || st.Denied != 2 { // 1 restored denial + the probe
		t.Fatalf("restored alice stats: %+v", st)
	}
	// A corrupt snapshot is rejected wholesale.
	bad := m1.LogSnapshots()
	bad[0].Events = append(bad[0].Events, EventSnapshot{Op: "nonsense"})
	m3 := newTestManager(t, Config{}, vals)
	if err := m3.Restore(bad); err == nil {
		t.Fatal("corrupt snapshot should be rejected")
	}
}
