package session

import (
	"testing"
)

// digestOf returns the analyst's (seq, digest) as exposed by the
// public surfaces — LogSnapshot and Sessions() — after asserting the
// two agree with each other.
func digestOf(t *testing.T, m *Manager, analyst string) (uint64, string) {
	t.Helper()
	var fromSnap *LogSnapshot
	for _, snap := range m.LogSnapshots() {
		if snap.Analyst == analyst {
			s := snap
			fromSnap = &s
			break
		}
	}
	if fromSnap == nil {
		t.Fatalf("no log snapshot for analyst %q", analyst)
	}
	var fromInfo *Info
	for _, info := range m.Sessions() {
		if info.Analyst == analyst {
			i := info
			fromInfo = &i
			break
		}
	}
	if fromInfo == nil {
		t.Fatalf("no session info for analyst %q", analyst)
	}
	if fromInfo.Seq != fromSnap.Seq || fromInfo.Digest != fromSnap.Digest {
		t.Fatalf("Sessions() reports %d/%s but LogSnapshot holds %d/%s",
			fromInfo.Seq, fromInfo.Digest, fromSnap.Seq, fromSnap.Digest)
	}
	return fromSnap.Seq, fromSnap.Digest
}

// TestDigestStability is the satellite table test for the transcript
// digest: the same scripted workload must land on the exact same
// (seq, digest) pair whether the engine lives through the whole game,
// is evicted and replayed after every step, or is carried through a
// snapshot/restore — and, for the Monte Carlo stacks, regardless of the
// worker-pool width. The digest is the replication subsystem's
// divergence oracle, so any instability here silently breaks failover.
func TestDigestStability(t *testing.T) {
	type variant struct {
		name string
		run  func(t *testing.T, f family, steps []step) (uint64, string)
	}
	variants := []variant{
		{"uninterrupted", func(t *testing.T, f family, steps []step) (uint64, string) {
			m := f.newManager(t)
			play(t, m, "alice", steps, false)
			return digestOf(t, m, "alice")
		}},
		{"evict-each-step", func(t *testing.T, f family, steps []step) (uint64, string) {
			m := f.newManager(t)
			play(t, m, "alice", steps, true)
			return digestOf(t, m, "alice")
		}},
		{"snapshot-restore", func(t *testing.T, f family, steps []step) (uint64, string) {
			m := f.newManager(t)
			play(t, m, "alice", steps, false)
			m2 := f.newManager(t)
			// A restarting process reloads the dataset with its mutations
			// already applied; simulate directly on the dataset so no new
			// journal events are minted.
			for _, st := range steps {
				if st.update {
					m2.Dataset().SetSensitive(st.idx, st.val)
				}
			}
			if err := m2.Restore(m.LogSnapshots()); err != nil {
				t.Fatalf("restore: %v", err)
			}
			return digestOf(t, m2, "alice")
		}},
	}

	for _, f := range determinismFamilies() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			steps := script(42, f.n, f.rounds, f.kinds, f.withUpdates)
			wantSeq, wantDigest := variants[0].run(t, f, steps)
			if wantSeq == 0 || wantDigest == "" {
				t.Fatalf("degenerate reference transcript: seq=%d digest=%q", wantSeq, wantDigest)
			}
			for _, v := range variants[1:] {
				gotSeq, gotDigest := v.run(t, f, steps)
				if gotSeq != wantSeq || gotDigest != wantDigest {
					t.Errorf("%s: (seq, digest) = (%d, %s), want (%d, %s)",
						v.name, gotSeq, gotDigest, wantSeq, wantDigest)
				}
			}
		})
	}

	// Worker-pool width must not leak into the digest: the prob families
	// share one workload, so their digests must agree across widths.
	t.Run("workers-invariant", func(t *testing.T) {
		fams := determinismFamilies()
		seen := map[string]string{} // workload signature -> digest
		for _, f := range fams {
			if f.name == "full" {
				continue
			}
			steps := script(42, f.n, f.rounds, f.kinds, f.withUpdates)
			m := f.newManager(t)
			play(t, m, "alice", steps, false)
			_, digest := digestOf(t, m, "alice")
			if prev, ok := seen["prob"]; ok && prev != digest {
				t.Fatalf("%s: digest %s differs from other worker count's %s", f.name, digest, prev)
			}
			seen["prob"] = digest
		}
		if len(seen) == 0 {
			t.Fatal("no prob families exercised")
		}
	})
}
