package session

import (
	"errors"
	"testing"

	"queryaudit/internal/core"
	"queryaudit/internal/query"
)

// mustParseDigest converts a snapshot's hex digest for DropIfAt.
func mustParseDigest(t *testing.T, s string) core.Digest {
	t.Helper()
	d, err := core.ParseDigest(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// askN issues n distinct sum queries so the journal advances.
func askN(t *testing.T, m *Manager, analyst string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := m.Ask(analyst, query.New(query.Sum, i%4, (i+1)%4)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExportAbsentSession(t *testing.T) {
	m := newTestManager(t, Config{}, []float64{1, 2, 3, 4})
	if _, ok := m.Export("nobody"); ok {
		t.Fatal("exported a session that does not exist")
	}
}

// TestExportImportRoundTrip: export from one manager, import into a
// fresh one over the same dataset, verify the replayed position is
// bit-identical, and confirm the migrated session continues the game
// exactly where the original would.
func TestExportImportRoundTrip(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	m1 := newTestManager(t, Config{}, vals)
	askN(t, m1, "alice", 5)
	snap, ok := m1.Export("alice")
	if !ok {
		t.Fatal("no snapshot")
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, Config{}, vals)
	seq, digest, err := m2.Import(snap)
	if err != nil {
		t.Fatal(err)
	}
	if seq != snap.Seq || digest.Hex() != snap.Digest {
		t.Fatalf("import replayed to (seq %d, %s), exported (seq %d, %s)",
			seq, digest.Hex(), snap.Seq, snap.Digest)
	}

	// The same next query must produce the same outcome on both copies.
	q := query.New(query.Sum, 1, 2)
	r1, err1 := m1.Ask("alice", q)
	r2, err2 := m2.Ask("alice", q)
	if (err1 == nil) != (err2 == nil) || r1.Denied != r2.Denied || r1.Answer != r2.Answer {
		t.Fatalf("migrated session diverged: %+v/%v vs %+v/%v", r1, err1, r2, err2)
	}
}

// TestImportIsPrefixTolerant: re-delivering the same journal is a
// no-op, and a LONGER journal whose chain extends the resident copy
// replaces it — the shape a migration retry produces after live
// traffic grew the source journal.
func TestImportIsPrefixTolerant(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	m1 := newTestManager(t, Config{}, vals)
	askN(t, m1, "alice", 3)
	short, _ := m1.Export("alice")
	askN(t, m1, "alice", 3)
	long, _ := m1.Export("alice")

	m2 := newTestManager(t, Config{}, vals)
	if _, _, err := m2.Import(short); err != nil {
		t.Fatal(err)
	}
	// Exact re-delivery: idempotent.
	seq, digest, err := m2.Import(short)
	if err != nil || seq != short.Seq || digest.Hex() != short.Digest {
		t.Fatalf("re-import of identical journal: (%d, %s), %v", seq, digest.Hex(), err)
	}
	// Extension over the verified prefix: accepted, lands at the head.
	seq, digest, err = m2.Import(long)
	if err != nil || seq != long.Seq || digest.Hex() != long.Digest {
		t.Fatalf("import of extended journal: (%d, %s), %v, want (%d, %s)",
			seq, digest.Hex(), err, long.Seq, long.Digest)
	}
}

// TestImportRefusesDivergentTimeline: a resident session whose history
// is NOT a prefix of the imported journal is an unresolvable conflict.
func TestImportRefusesDivergentTimeline(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	m1 := newTestManager(t, Config{}, vals)
	askN(t, m1, "alice", 4)
	snap, _ := m1.Export("alice")

	m2 := newTestManager(t, Config{}, vals)
	// Give m2's alice a different first move — divergent from step one.
	if _, err := m2.Ask("alice", query.New(query.Sum, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m2.Import(snap); !errors.Is(err, ErrImportConflict) {
		t.Fatalf("err = %v, want ErrImportConflict", err)
	}
	// A resident journal LONGER than the import is equally fatal.
	m3 := newTestManager(t, Config{}, vals)
	askN(t, m3, "alice", 6)
	shortSnap := snap
	if _, _, err := m3.Import(shortSnap); !errors.Is(err, ErrImportConflict) {
		t.Fatalf("import of a strict-prefix journal: err = %v, want ErrImportConflict", err)
	}
}

// TestDropIfAt covers the conditional-drop cut: wrong position refused
// with ErrPositionMoved, right position drops, absent session is a
// no-op success (idempotent re-delivery of the forget).
func TestDropIfAt(t *testing.T) {
	m := newTestManager(t, Config{}, []float64{1, 2, 3, 4})
	askN(t, m, "alice", 3)
	snap, _ := m.Export("alice")
	digest := mustParseDigest(t, snap.Digest)

	if err := m.DropIfAt("alice", snap.Seq+1, digest); !errors.Is(err, ErrPositionMoved) {
		t.Fatalf("wrong seq: err = %v, want ErrPositionMoved", err)
	}
	// Advance the journal, then try the now-stale cut.
	askN(t, m, "alice", 1)
	if err := m.DropIfAt("alice", snap.Seq, digest); !errors.Is(err, ErrPositionMoved) {
		t.Fatalf("stale cut: err = %v, want ErrPositionMoved", err)
	}
	cur, _ := m.Export("alice")
	if err := m.DropIfAt("alice", cur.Seq, mustParseDigest(t, cur.Digest)); err != nil {
		t.Fatalf("drop at current position: %v", err)
	}
	if _, ok := m.Export("alice"); ok {
		t.Fatal("session still exportable after drop")
	}
	// Re-delivered forget: success, not an error.
	if err := m.DropIfAt("alice", cur.Seq, mustParseDigest(t, cur.Digest)); err != nil {
		t.Fatalf("idempotent re-drop: %v", err)
	}
}
