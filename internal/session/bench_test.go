package session

import (
	"fmt"
	"sync/atomic"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

// openAuditor answers everything — a stub that reduces Ask to pure
// session-layer cost (shard lookup, session lock, journal append), so
// BenchmarkSessionLookup measures the manager, not the auditors.
type openAuditor struct{}

func (openAuditor) Name() string                               { return "open" }
func (openAuditor) Decide(query.Query) (audit.Decision, error) { return audit.Answer, nil }
func (openAuditor) Record(query.Query, float64)                {}

func benchValues(n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	return vals
}

// BenchmarkSessionLookup: hot-path routing cost (shard lookup, session
// lock, journal append) with many live sessions under parallel load,
// auditor cost stubbed out.
func BenchmarkSessionLookup(b *testing.B) {
	const analysts = 256
	sp := core.NewEngineSpec(dataset.FromValues(benchValues(64)))
	sp.Register(func() (audit.Auditor, error) { return openAuditor{}, nil }, query.Sum)
	m, err := NewManager(sp, Config{Shards: 16, NoJanitor: true})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	names := make([]string, analysts)
	q := query.New(query.Sum, 1, 2, 3)
	for i := range names {
		names[i] = fmt.Sprintf("analyst-%03d", i)
		if _, err := m.Ask(names[i], q); err != nil {
			b.Fatal(err)
		}
	}
	var rr atomic.Int64
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			a := names[int(rr.Add(1))%analysts]
			if _, err := m.Ask(a, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSessionChurn: 1000 analysts cycling through a MaxLive=64
// manager with the real full-disclosure auditors — every miss pays an
// engine build plus a full journal replay, the worst-case steady state
// of an over-subscribed deployment.
func BenchmarkSessionChurn(b *testing.B) {
	const analysts = 1000
	rng := randx.New(3)
	m, err := NewManager(fullSpec(dataset.FromValues(benchValues(32))), Config{
		MaxLive: 64, Shards: 16, NoJanitor: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := fmt.Sprintf("analyst-%04d", i%analysts)
		perm := rng.Perm(32)
		q := query.New(query.Sum, perm[:4+rng.Intn(8)]...)
		if _, err := m.Ask(a, q); err != nil {
			b.Fatal(err)
		}
	}
}
