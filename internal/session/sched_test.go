package session

import (
	"fmt"
	"sync"
	"testing"

	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/mcpar"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

// Scheduler-path determinism: many analysts deciding at once over ONE
// shared assist pool (the server deployment shape) must produce exactly
// the transcripts a sequential, scheduler-free run produces, and their
// journals must replay bit-identically through the scheduler path. Run
// under -race in CI: the test also exercises the pool's concurrency.

func schedDS() *dataset.Dataset {
	// The Section 3 auditors protect values normalized to [0,1].
	return dataset.UniformDuplicateFree(randx.New(9), 12, 0, 1)
}

// probSchedSpec is probSpec with every engine pointed at one shared
// scheduler — the multiplexing configuration under test.
func probSchedSpec(ds *dataset.Dataset, workers int, sched *mcpar.Scheduler) *core.EngineSpec {
	sp := probSpec(ds, workers)
	sp.SetMCScheduler(sched)
	return sp
}

// analystScripts builds one deterministic game per analyst. No updates:
// the scripts run concurrently, and updates mutate the shared dataset.
func analystScripts(analysts int) [][]step {
	kinds := []query.Kind{query.Sum, query.Max, query.Min}
	scripts := make([][]step, analysts)
	for i := range scripts {
		scripts[i] = script(int64(100+i), 12, 8, kinds, false)
	}
	return scripts
}

// TestConcurrentAnalystsSharedSchedulerDeterministic races several
// analysts' sessions over one small scheduler and requires every
// transcript to match the same analyst's sequential, unscheduled run.
func TestConcurrentAnalystsSharedSchedulerDeterministic(t *testing.T) {
	const analysts = 6
	scripts := analystScripts(analysts)

	ref, err := NewManager(probSpec(schedDS(), 1), Config{NoJanitor: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := make([][]outcome, analysts)
	for i, sc := range scripts {
		want[i] = play(t, ref, fmt.Sprintf("analyst-%d", i), sc, false)
	}

	sched := mcpar.NewScheduler(3)
	defer sched.Close()
	m, err := NewManager(probSchedSpec(schedDS(), 4, sched), Config{NoJanitor: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	got := make([][]outcome, analysts)
	var wg sync.WaitGroup
	for i := range scripts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = play(t, m, fmt.Sprintf("analyst-%d", i), scripts[i], false)
		}(i)
	}
	wg.Wait()
	for i := range scripts {
		compareTranscripts(t, fmt.Sprintf("analyst-%d", i), want[i], got[i])
	}
}

// TestJournalReplayThroughScheduler journals sessions under concurrent
// scheduled load, replays them into a fresh manager (itself running on a
// scheduler), and requires the continuation of every game to match the
// sequential reference — eviction/replay and the scheduler compose.
func TestJournalReplayThroughScheduler(t *testing.T) {
	const analysts = 4
	scripts := analystScripts(analysts)
	more := make([][]step, analysts)
	kinds := []query.Kind{query.Sum, query.Max, query.Min}
	for i := range more {
		more[i] = script(int64(200+i), 12, 5, kinds, false)
	}

	// Sequential reference: full game per analyst, no scheduler.
	ref, err := NewManager(probSpec(schedDS(), 1), Config{NoJanitor: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := make([][]outcome, analysts)
	for i := range scripts {
		a := fmt.Sprintf("analyst-%d", i)
		play(t, ref, a, scripts[i], false)
		want[i] = play(t, ref, a, more[i], false)
	}

	// First half under concurrent scheduled load, then snapshot.
	sched1 := mcpar.NewScheduler(3)
	defer sched1.Close()
	m1, err := NewManager(probSchedSpec(schedDS(), 4, sched1), Config{NoJanitor: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()
	var wg sync.WaitGroup
	for i := range scripts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			play(t, m1, fmt.Sprintf("analyst-%d", i), scripts[i], false)
		}(i)
	}
	wg.Wait()
	snaps := m1.LogSnapshots()

	// Restore into a fresh scheduled manager; replay runs through the
	// scheduler path too. The continuations must match the reference.
	sched2 := mcpar.NewScheduler(2)
	defer sched2.Close()
	m2, err := NewManager(probSchedSpec(schedDS(), 8, sched2), Config{NoJanitor: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if err := m2.Restore(snaps); err != nil {
		t.Fatalf("replay through scheduler: %v", err)
	}
	for i := range more {
		got := play(t, m2, fmt.Sprintf("analyst-%d", i), more[i], false)
		compareTranscripts(t, fmt.Sprintf("analyst-%d continuation", i), want[i], got)
	}
}
