package session

import (
	"fmt"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/maxminprob"
	"queryaudit/internal/audit/sumprob"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

// The eviction/replay determinism property — the tentpole's correctness
// claim: for a simulatable auditor stack, a session evicted (and later
// rebuilt by replaying its journal) produces a transcript bit-identical
// to an uninterrupted run, for both the exact-disclosure and the
// probabilistic auditors, at any Monte Carlo worker count.

// step is one scripted move in the game: a query or a dataset update.
type step struct {
	q      query.Query
	update bool
	idx    int
	val    float64
}

// outcome is the observable result of one step, compared bitwise.
type outcome struct {
	denied bool
	answer float64
	errStr string
}

// script generates a deterministic pseudo-random game over n records.
// Updates are interleaved only when withUpdates (the probabilistic
// auditors do not observe updates).
func script(seed int64, n, rounds int, kinds []query.Kind, withUpdates bool) []step {
	rng := randx.New(seed)
	var steps []step
	for i := 0; i < rounds; i++ {
		if withUpdates && i > 0 && i%5 == 0 {
			steps = append(steps, step{update: true, idx: rng.Intn(n), val: float64(rng.Intn(50) + 1)})
			continue
		}
		size := 1 + rng.Intn(n-1)
		perm := rng.Perm(n)
		steps = append(steps, step{q: query.New(kinds[rng.Intn(len(kinds))], perm[:size]...)})
	}
	return steps
}

// play runs the script against one analyst's session, optionally
// evicting the engine after EVERY step so each subsequent step replays
// the whole journal.
func play(t *testing.T, m *Manager, analyst string, steps []step, evictEach bool) []outcome {
	t.Helper()
	var out []outcome
	for _, st := range steps {
		var o outcome
		if st.update {
			if err := m.Update(st.idx, st.val); err != nil {
				t.Fatalf("update %d: %v", st.idx, err)
			}
		} else {
			resp, err := m.Ask(analyst, st.q)
			o = outcome{denied: resp.Denied, answer: resp.Answer}
			if err != nil {
				o.errStr = err.Error()
			}
		}
		out = append(out, o)
		if evictEach {
			m.EvictEngine(analyst)
		}
	}
	return out
}

// family bundles one auditor configuration under test.
type family struct {
	name        string
	n, rounds   int
	kinds       []query.Kind
	withUpdates bool
	makeDS      func() *dataset.Dataset
	makeSpec    func(ds *dataset.Dataset) *core.EngineSpec
}

func probSpec(ds *dataset.Dataset, workers int) *core.EngineSpec {
	sp := core.NewEngineSpec(ds)
	n := ds.N()
	sp.Register(func() (audit.Auditor, error) {
		return maxminprob.New(n, maxminprob.Params{
			Lambda: 0.45, Gamma: 2, Delta: 0.2, T: 2,
			OuterSamples: 8, InnerSamples: 8, MixFactor: 1,
			Workers: workers, Seed: 12,
		})
	}, query.Max, query.Min)
	sp.Register(func() (audit.Auditor, error) {
		return sumprob.New(n, sumprob.Params{
			Lambda: 0.6, Gamma: 2, Delta: 0.2, T: 2,
			OuterSamples: 6, Workers: workers, Seed: 13,
		})
	}, query.Sum)
	return sp
}

func determinismFamilies() []family {
	fams := []family{{
		name: "full", n: 12, rounds: 24,
		kinds:       []query.Kind{query.Sum, query.Max, query.Min, query.Count},
		withUpdates: true,
		makeDS: func() *dataset.Dataset {
			return dataset.UniformDuplicateFree(randx.New(7), 12, 1, 100)
		},
		makeSpec: func(ds *dataset.Dataset) *core.EngineSpec { return fullSpec(ds) },
	}}
	for _, workers := range []int{1, 8} {
		w := workers
		fams = append(fams, family{
			name: fmt.Sprintf("prob-workers-%d", w), n: 12, rounds: 10,
			kinds: []query.Kind{query.Sum, query.Max, query.Min},
			makeDS: func() *dataset.Dataset {
				// The Section 3 auditors protect values normalized to [0,1].
				return dataset.UniformDuplicateFree(randx.New(9), 12, 0, 1)
			},
			makeSpec: func(ds *dataset.Dataset) *core.EngineSpec { return probSpec(ds, w) },
		})
	}
	return fams
}

func (f family) newManager(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(f.makeSpec(f.makeDS()), Config{NoJanitor: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func compareTranscripts(t *testing.T, label string, want, got []outcome) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: transcript lengths differ: %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: step %d diverged: uninterrupted %+v vs %+v", label, i, want[i], got[i])
		}
	}
}

// TestEvictReplayTranscriptIdentical evicts the analyst's engine after
// every single step, forcing a full journal replay per step, and
// requires the transcript to match an uninterrupted run exactly.
func TestEvictReplayTranscriptIdentical(t *testing.T) {
	for _, f := range determinismFamilies() {
		t.Run(f.name, func(t *testing.T) {
			steps := script(42, f.n, f.rounds, f.kinds, f.withUpdates)
			base := play(t, f.newManager(t), "alice", steps, false)
			answered, denied := 0, 0
			for _, o := range base {
				if o.errStr != "" {
					continue
				}
				if o.denied {
					denied++
				} else {
					answered++
				}
			}
			if answered == 0 || denied == 0 {
				t.Fatalf("degenerate transcript (answered=%d denied=%d) exercises only one decision path", answered, denied)
			}
			evicted := play(t, f.newManager(t), "alice", steps, true)
			compareTranscripts(t, "evict-each-step", base, evicted)
		})
	}
}

// TestSnapshotRestoreMidGame interrupts the game at the midpoint,
// carries the session across a simulated restart (LogSnapshots →
// Restore into a fresh manager over an identically-mutated dataset),
// and requires the remainder of the game to match the uninterrupted run.
func TestSnapshotRestoreMidGame(t *testing.T) {
	for _, f := range determinismFamilies() {
		t.Run(f.name, func(t *testing.T) {
			steps := script(43, f.n, f.rounds, f.kinds, f.withUpdates)
			base := play(t, f.newManager(t), "alice", steps, false)

			mid := len(steps) / 2
			m1 := f.newManager(t)
			first := play(t, m1, "alice", steps[:mid], false)
			snaps := m1.LogSnapshots()

			m2 := f.newManager(t)
			// A restarting process reloads the dataset with its mutations;
			// simulate by re-applying the first half's updates.
			for _, st := range steps[:mid] {
				if st.update {
					m2.Dataset().SetSensitive(st.idx, st.val)
				}
			}
			if err := m2.Restore(snaps); err != nil {
				t.Fatal(err)
			}
			second := play(t, m2, "alice", steps[mid:], false)
			compareTranscripts(t, "restart", base, append(first, second...))
		})
	}
}

// TestReplayAcrossWorkerCounts: a session journaled at Workers=1 replays
// bit-identically into engines built with Workers=8 — worker count is a
// performance knob, never a semantic one, so logs are portable across
// deployment resizes.
func TestReplayAcrossWorkerCounts(t *testing.T) {
	steps := script(44, 12, 10, []query.Kind{query.Sum, query.Max, query.Min}, false)
	makeDS := func() *dataset.Dataset { return dataset.UniformDuplicateFree(randx.New(9), 12, 0, 1) }

	m1, err := NewManager(probSpec(makeDS(), 1), Config{NoJanitor: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()
	play(t, m1, "alice", steps, false)
	snaps := m1.LogSnapshots()

	m8, err := NewManager(probSpec(makeDS(), 8), Config{NoJanitor: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m8.Close()
	if err := m8.Restore(snaps); err != nil {
		t.Fatalf("replay at workers=8 of a workers=1 journal: %v", err)
	}
	// Continue the game on the restored 8-worker manager and on the
	// original: identical futures.
	more := script(45, 12, 6, []query.Kind{query.Sum, query.Max, query.Min}, false)
	compareTranscripts(t, "continuation", play(t, m1, "alice", more, false), play(t, m8, "alice", more, false))
}
