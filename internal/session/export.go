package session

import (
	"errors"
	"fmt"

	"queryaudit/internal/core"
)

// Journal export/import/drop: the session-manager half of cross-shard
// migration (internal/cluster). A migration is replay — the same
// mechanism that rebuilds an evicted session rebuilds it on a different
// node — so the only new machinery here is the handoff discipline:
// import verifies the replayed position against the exported one, and
// the drop is conditional on the journal not having moved since export.

// ErrImportConflict reports an import refused because the analyst
// already has a session here whose timeline is NOT a prefix of the
// imported journal — two divergent histories for one analyst, which no
// automatic resolution may collapse.
var ErrImportConflict = errors.New("session: import conflicts with an existing session timeline")

// ErrPositionMoved reports a conditional drop refused because the
// session's journal advanced past the expected position.
var ErrPositionMoved = errors.New("session: journal position moved")

// Export returns a snapshot of the analyst's journal (digest chain
// included) without creating, materializing or touching the session.
// The snapshot is internally consistent — Log.Snapshot holds the log
// lock — so a concurrent decision lands either wholly before or wholly
// after the cut, and a conditional drop at the snapshot's position
// detects either way.
func (m *Manager) Export(analyst string) (LogSnapshot, bool) {
	s := m.peek(analyst)
	if s == nil {
		return LogSnapshot{}, false
	}
	return s.log.Snapshot(analyst), true
}

// Import admits a migrated session journal: validate the digest chain,
// replay it into a fresh engine, and return the resulting position for
// the caller to verify against the exporter's. Idempotent and
// prefix-tolerant: if the analyst already has a session whose current
// (seq, digest) matches the imported journal's chain at that seq, the
// existing copy is a stale prefix from an earlier migration round and
// is replaced (or, at equal seq, kept as-is). Any other existing
// timeline fails with ErrImportConflict — the caller must not retry.
func (m *Manager) Import(snap LogSnapshot) (uint64, core.Digest, error) {
	if m.spec == nil {
		return 0, core.Digest{}, ErrMultiAnalystDisabled
	}
	if snap.Analyst == "" {
		return 0, core.Digest{}, errors.New("session: import with empty analyst id")
	}
	lg, err := logFromSnapshot(snap)
	if err != nil {
		return 0, core.Digest{}, fmt.Errorf("session: importing %q: %w", snap.Analyst, err)
	}
	newSeq, newDigest := lg.Position()

	m.dsMu.RLock()
	defer m.dsMu.RUnlock()
	s, err := m.lookupOrCreate(snap.Analyst)
	if err != nil {
		return 0, core.Digest{}, err
	}
	defer s.mu.Unlock()
	if s.pinned {
		return 0, core.Digest{}, fmt.Errorf("session: importing %q: session is pinned", snap.Analyst)
	}
	curSeq, curDigest := s.log.Position()
	if curSeq > 0 {
		if curSeq > newSeq {
			return 0, core.Digest{}, fmt.Errorf(
				"%w: %q is at seq %d here, imported journal ends at %d",
				ErrImportConflict, snap.Analyst, curSeq, newSeq)
		}
		if prefixDigest(snap, curSeq) != curDigest {
			return 0, core.Digest{}, fmt.Errorf(
				"%w: %q digest at seq %d differs from the imported journal's chain",
				ErrImportConflict, snap.Analyst, curSeq)
		}
		if curSeq == newSeq {
			return curSeq, curDigest, nil // exact re-delivery
		}
	}

	// Swap in the imported journal and rebuild the engine by replay. On
	// replay failure restore the previous journal: a half-imported
	// session must not shadow the (still authoritative) source copy.
	oldLog := s.log
	wasLive := s.eng != nil
	if wasLive {
		m.dropEngineLocked(s)
	}
	m.wireLog(snap.Analyst, lg)
	s.log = lg
	if err := m.materializeLocked(s); err != nil {
		s.log = oldLog
		return 0, core.Digest{}, fmt.Errorf("session: importing %q: %w", snap.Analyst, err)
	}
	return newSeq, newDigest, nil
}

// prefixDigest recomputes the snapshot's digest chain through its first
// seq events (snap is already validated; decode errors cannot occur).
func prefixDigest(snap LogSnapshot, seq uint64) core.Digest {
	var d core.Digest
	for i := uint64(0); i < seq && i < uint64(len(snap.Events)); i++ {
		ev, err := DecodeEvent(snap.Events[i])
		if err != nil {
			return core.Digest{}
		}
		d = ev.chain(d)
	}
	return d
}

// DropIfAt removes the analyst's session — engine and journal — if and
// only if its journal is still exactly at (seq, digest): the atomic cut
// of a migration handoff. An absent session reports success (the drop
// is idempotent); a session at any other position fails with
// ErrPositionMoved and the caller re-exports. Pinned sessions are
// refused outright.
func (m *Manager) DropIfAt(analyst string, seq uint64, digest core.Digest) error {
	sh, idx := m.shardOf(analyst)
	m.lockShard(sh, idx)
	s := sh.sessions[analyst]
	sh.mu.Unlock()
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gone {
		return nil
	}
	if s.pinned {
		return fmt.Errorf("session: %q is pinned and cannot be dropped", analyst)
	}
	curSeq, curDigest := s.log.Position()
	if curSeq != seq || curDigest != digest {
		return fmt.Errorf("%w: %q expected (seq %d, digest %s), now (seq %d, digest %s)",
			ErrPositionMoved, analyst, seq, digest.Hex(), curSeq, curDigest.Hex())
	}
	if s.eng != nil {
		m.dropEngineLocked(s)
	}
	s.gone = true
	m.lockShard(sh, idx)
	if sh.sessions[analyst] == s {
		delete(sh.sessions, analyst)
	}
	sh.mu.Unlock()
	m.total.Add(-1)
	m.obs.ObserveSessionExpired()
	return nil
}
