// Package session gives each analyst an isolated auditor stack over one
// shared dataset — the multi-analyst deployment shape the paper's
// per-analyst compromise definitions assume. The Manager keys sessions
// by analyst ID across N lock shards, bounds live memory with TTL expiry
// and LRU engine eviction, and applies admission control beyond a hard
// session cap.
//
// The subsystem leans on the paper's simulatability property (§2.2): a
// simulatable auditor's state is a pure function of its query/decision
// history and never of the data, so the compact per-session Log — just
// the ordered (query, outcome, released answer) sequence plus update
// markers — is a complete, replayable representation of a session. An
// evicted or restarted session is rebuilt bit-identically by replaying
// its log into a fresh engine from the deployment's core.EngineSpec.
// Non-simulatable (answer-dependent) auditors cannot be replayed, and
// core.Engine.Replay refuses them; only simulatable stacks belong behind
// this manager.
package session

import (
	"fmt"
	"sync"

	"queryaudit/internal/core"
	"queryaudit/internal/query"
)

// Event is one session-log entry: either a committed protocol decision
// (exactly as journaled by the engine's Recorder hook) or a marker that
// the shared dataset was updated at this point in the session's
// timeline. Update markers matter for replay order: an answer recorded
// before an update is retired by it, so the interleaving must be
// preserved.
type Event struct {
	// Update distinguishes the two arms.
	Update bool
	// Decision is set when Update is false.
	Decision core.DecisionEvent
	// Index is the updated record when Update is true.
	Index int
}

// Log is a session's append-only journal. It implements core.Recorder,
// so installing it on an engine (core.Engine.SetRecorder) journals every
// state-changing protocol step automatically. Appends are O(1) and keep
// running answered/denied tallies so session stats never require a
// materialized engine.
type Log struct {
	mu       sync.Mutex
	events   []Event
	answered int
	denied   int
}

// NewLog returns an empty journal.
func NewLog() *Log { return &Log{} }

// RecordDecision implements core.Recorder. It runs under the engine
// lock; the append is a few pointer writes.
func (l *Log) RecordDecision(ev core.DecisionEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{Decision: ev})
	switch ev.Outcome {
	case core.OutcomeAnswered:
		l.answered++
	case core.OutcomeDenied:
		l.denied++
	}
}

// AppendUpdate journals a dataset update marker.
func (l *Log) AppendUpdate(i int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{Update: true, Index: i})
}

// Len returns the number of journaled events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Tallies returns the running answered/denied counts.
func (l *Log) Tallies() (answered, denied int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.answered, l.denied
}

// Events returns a copy of the journal for replay.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// LogSnapshot is the serializable form of one session's journal, used
// by internal/persist to carry sessions across restarts.
type LogSnapshot struct {
	Analyst string          `json:"analyst"`
	Events  []EventSnapshot `json:"events"`
}

// EventSnapshot is the serializable form of one Event.
type EventSnapshot struct {
	// Op is "query" or "update".
	Op string `json:"op"`
	// Query fields (Op == "query").
	Kind    string  `json:"kind,omitempty"`
	Indices []int   `json:"indices,omitempty"`
	Outcome string  `json:"outcome,omitempty"`
	Answer  float64 `json:"answer,omitempty"`
	// Index is the updated record (Op == "update").
	Index int `json:"index,omitempty"`
}

// Snapshot exports the journal under the given analyst name.
func (l *Log) Snapshot(analyst string) LogSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	es := make([]EventSnapshot, len(l.events))
	for i, ev := range l.events {
		if ev.Update {
			es[i] = EventSnapshot{Op: "update", Index: ev.Index}
			continue
		}
		es[i] = EventSnapshot{
			Op:      "query",
			Kind:    ev.Decision.Query.Kind.String(),
			Indices: append([]int(nil), ev.Decision.Query.Set...),
			Outcome: ev.Decision.Outcome.String(),
			Answer:  ev.Decision.Answer,
		}
	}
	return LogSnapshot{Analyst: analyst, Events: es}
}

// Validate checks the structural invariants of a snapshot (snapshots may
// come from untrusted storage): known ops, parsable kinds and outcomes,
// non-empty index sets for queries, non-negative indices. Range checks
// against the dataset happen during replay.
func (s LogSnapshot) Validate() error {
	for i, ev := range s.Events {
		switch ev.Op {
		case "update":
			if ev.Index < 0 {
				return fmt.Errorf("session: event %d: negative update index %d", i, ev.Index)
			}
		case "query":
			if _, err := query.ParseKind(ev.Kind); err != nil {
				return fmt.Errorf("session: event %d: %w", i, err)
			}
			if _, err := core.ParseOutcome(ev.Outcome); err != nil {
				return fmt.Errorf("session: event %d: %w", i, err)
			}
			if len(ev.Indices) == 0 {
				return fmt.Errorf("session: event %d: query with empty index set", i)
			}
			for _, idx := range ev.Indices {
				if idx < 0 {
					return fmt.Errorf("session: event %d: negative index %d", i, idx)
				}
			}
		default:
			return fmt.Errorf("session: event %d: unknown op %q", i, ev.Op)
		}
	}
	return nil
}

// logFromSnapshot rebuilds a Log (with recomputed tallies) from a
// validated snapshot.
func logFromSnapshot(s LogSnapshot) (*Log, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	l := NewLog()
	l.events = make([]Event, 0, len(s.Events))
	for _, ev := range s.Events {
		if ev.Op == "update" {
			l.events = append(l.events, Event{Update: true, Index: ev.Index})
			continue
		}
		kind, _ := query.ParseKind(ev.Kind)
		outcome, _ := core.ParseOutcome(ev.Outcome)
		l.events = append(l.events, Event{Decision: core.DecisionEvent{
			Query:   query.New(kind, ev.Indices...),
			Outcome: outcome,
			Answer:  ev.Answer,
		}})
		switch outcome {
		case core.OutcomeAnswered:
			l.answered++
		case core.OutcomeDenied:
			l.denied++
		}
	}
	return l, nil
}
