// Package session gives each analyst an isolated auditor stack over one
// shared dataset — the multi-analyst deployment shape the paper's
// per-analyst compromise definitions assume. The Manager keys sessions
// by analyst ID across N lock shards, bounds live memory with TTL expiry
// and LRU engine eviction, and applies admission control beyond a hard
// session cap.
//
// The subsystem leans on the paper's simulatability property (§2.2): a
// simulatable auditor's state is a pure function of its query/decision
// history and never of the data, so the compact per-session Log — just
// the ordered (query, outcome, released answer) sequence plus update
// markers — is a complete, replayable representation of a session. An
// evicted or restarted session is rebuilt bit-identically by replaying
// its log into a fresh engine from the deployment's core.EngineSpec.
// Non-simulatable (answer-dependent) auditors cannot be replayed, and
// core.Engine.Replay refuses them; only simulatable stacks belong behind
// this manager.
//
// Every log additionally maintains a monotonic per-session sequence
// number and a transcript digest (a hash chain over its events, see
// core.ChainDecision). The pair (seq, digest) names a unique point of
// the session's timeline and commits the full auditor state at that
// point, which is what the replication subsystem (internal/replica)
// ships, acks and compares for divergence.
package session

import (
	"fmt"
	"sync"

	"queryaudit/internal/core"
	"queryaudit/internal/query"
)

// Event is one session-log entry: either a committed protocol decision
// (exactly as journaled by the engine's Recorder hook) or a marker that
// the shared dataset was updated at this point in the session's
// timeline. Update markers matter for replay order: an answer recorded
// before an update is retired by it, so the interleaving must be
// preserved.
type Event struct {
	// Update distinguishes the two arms.
	Update bool
	// Decision is set when Update is false.
	Decision core.DecisionEvent
	// Index is the updated record when Update is true.
	Index int
}

// chain extends a transcript digest with this event.
func (ev Event) chain(prev core.Digest) core.Digest {
	if ev.Update {
		return core.ChainUpdate(prev, ev.Index)
	}
	return core.ChainDecision(prev, ev.Decision)
}

// Log is a session's append-only journal. It implements core.Recorder,
// so installing it on an engine (core.Engine.SetRecorder) journals every
// state-changing protocol step automatically. Appends are O(1) and keep
// running answered/denied tallies so session stats never require a
// materialized engine, plus the running (seq, digest) position used by
// replication.
type Log struct {
	mu       sync.Mutex
	events   []Event
	answered int
	denied   int
	// seq is the 1-based sequence number of the last appended event
	// (== len(events); logs are never truncated).
	seq uint64
	// digest is the transcript hash chain after the last event.
	digest core.Digest
	// notify, when set, receives every decision appended through the
	// engine Recorder path (live traffic), under l.mu so per-session
	// sequence order is preserved. Replicated applies (appendApplied) and
	// update markers do NOT notify: the Manager taps those itself.
	notify func(seq uint64, ev core.DecisionEvent, digest core.Digest)
}

// NewLog returns an empty journal.
func NewLog() *Log { return &Log{} }

// append adds ev, advancing tallies, seq and digest; callers hold l.mu.
func (l *Log) append(ev Event) (uint64, core.Digest) {
	l.events = append(l.events, ev)
	l.seq++
	l.digest = ev.chain(l.digest)
	if !ev.Update {
		switch ev.Decision.Outcome {
		case core.OutcomeAnswered:
			l.answered++
		case core.OutcomeDenied:
			l.denied++
		}
	}
	return l.seq, l.digest
}

// RecordDecision implements core.Recorder. It runs under the engine
// lock; the append is a few pointer writes plus one SHA-256 block for
// the digest chain. The notify hook (replication tap) fires under l.mu
// so taps observe each session's events in sequence order.
func (l *Log) RecordDecision(ev core.DecisionEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq, d := l.append(Event{Decision: ev})
	if l.notify != nil {
		l.notify(seq, ev, d)
	}
}

// appendApplied journals a decision replicated from a primary — same
// append as RecordDecision but without the notify hook, so a follower
// applying shipped events does not re-tap them into its own feed (the
// replica layer mirrors the primary's records verbatim instead).
func (l *Log) appendApplied(ev core.DecisionEvent) (uint64, core.Digest) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.append(Event{Decision: ev})
}

// AppendUpdate journals a dataset update marker and returns the log
// position after it. Updates are tapped once globally by the Manager
// (they touch every session), so no per-log notify fires here.
func (l *Log) AppendUpdate(i int) (uint64, core.Digest) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.append(Event{Update: true, Index: i})
}

// Len returns the number of journaled events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Tallies returns the running answered/denied counts.
func (l *Log) Tallies() (answered, denied int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.answered, l.denied
}

// Position returns the log's current (seq, digest) pair: the sequence
// number of the last event and the transcript digest after it.
func (l *Log) Position() (uint64, core.Digest) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq, l.digest
}

// Seq returns the sequence number of the last appended event (0 for an
// empty journal).
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Digest returns the transcript digest after the last event.
func (l *Log) Digest() core.Digest {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.digest
}

// Events returns a copy of the journal for replay.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// LogSnapshot is the serializable form of one session's journal, used
// by internal/persist to carry sessions across restarts and by the
// replication snapshot RPC to seed followers.
type LogSnapshot struct {
	Analyst string `json:"analyst"`
	// Seq is the sequence number of the last event (== len(Events)).
	Seq uint64 `json:"seq,omitempty"`
	// Digest is the hex transcript digest after the last event; loaders
	// recompute the chain and refuse a snapshot whose digest mismatches
	// (journal corruption surfaces at restore time, not replay time).
	Digest string          `json:"digest,omitempty"`
	Events []EventSnapshot `json:"events"`
}

// EventSnapshot is the serializable form of one Event.
type EventSnapshot struct {
	// Op is "query" or "update".
	Op string `json:"op"`
	// Query fields (Op == "query").
	Kind    string  `json:"kind,omitempty"`
	Indices []int   `json:"indices,omitempty"`
	Outcome string  `json:"outcome,omitempty"`
	Answer  float64 `json:"answer,omitempty"`
	// Index is the updated record (Op == "update").
	Index int `json:"index,omitempty"`
}

// EncodeEvent converts an Event to its serializable snapshot form.
func EncodeEvent(ev Event) EventSnapshot {
	if ev.Update {
		return EventSnapshot{Op: "update", Index: ev.Index}
	}
	return EventSnapshot{
		Op:      "query",
		Kind:    ev.Decision.Query.Kind.String(),
		Indices: append([]int(nil), ev.Decision.Query.Set...),
		Outcome: ev.Decision.Outcome.String(),
		Answer:  ev.Decision.Answer,
	}
}

// DecodeEvent inverts EncodeEvent, validating the structural invariants
// (snapshots and replication records may come from untrusted storage or
// a wire): known ops, parsable kinds and outcomes, non-empty index sets,
// non-negative indices. Range checks against the dataset happen during
// replay.
func DecodeEvent(es EventSnapshot) (Event, error) {
	switch es.Op {
	case "update":
		if es.Index < 0 {
			return Event{}, fmt.Errorf("session: negative update index %d", es.Index)
		}
		return Event{Update: true, Index: es.Index}, nil
	case "query":
		kind, err := query.ParseKind(es.Kind)
		if err != nil {
			return Event{}, err
		}
		outcome, err := core.ParseOutcome(es.Outcome)
		if err != nil {
			return Event{}, err
		}
		if len(es.Indices) == 0 {
			return Event{}, fmt.Errorf("session: query with empty index set")
		}
		for _, idx := range es.Indices {
			if idx < 0 {
				return Event{}, fmt.Errorf("session: negative index %d", idx)
			}
		}
		return Event{Decision: core.DecisionEvent{
			Query:   query.New(kind, es.Indices...),
			Outcome: outcome,
			Answer:  es.Answer,
		}}, nil
	default:
		return Event{}, fmt.Errorf("session: unknown op %q", es.Op)
	}
}

// Snapshot exports the journal under the given analyst name, including
// its current sequence number and transcript digest.
func (l *Log) Snapshot(analyst string) LogSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	es := make([]EventSnapshot, len(l.events))
	for i, ev := range l.events {
		es[i] = EncodeEvent(ev)
	}
	return LogSnapshot{Analyst: analyst, Seq: l.seq, Digest: l.digest.Hex(), Events: es}
}

// Validate checks the structural invariants of a snapshot (snapshots may
// come from untrusted storage) and, when the snapshot carries a seq or
// digest, that they agree with the recomputed hash chain — a truncated
// or bit-flipped journal is rejected here instead of replaying into a
// silently different auditor.
func (s LogSnapshot) Validate() error {
	var d core.Digest
	for i, es := range s.Events {
		ev, err := DecodeEvent(es)
		if err != nil {
			return fmt.Errorf("session: event %d: %w", i, err)
		}
		d = ev.chain(d)
	}
	if s.Seq != 0 && s.Seq != uint64(len(s.Events)) {
		return fmt.Errorf("session: snapshot seq %d does not match %d events", s.Seq, len(s.Events))
	}
	if s.Digest != "" {
		want, err := core.ParseDigest(s.Digest)
		if err != nil {
			return fmt.Errorf("session: %w", err)
		}
		if want != d {
			return fmt.Errorf("session: snapshot digest %s does not match journal (recomputed %s) — corrupt or tampered journal", s.Digest, d.Hex())
		}
	}
	return nil
}

// logFromSnapshot rebuilds a Log (with recomputed tallies, seq and
// digest) from a validated snapshot.
func logFromSnapshot(s LogSnapshot) (*Log, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	l := NewLog()
	l.events = make([]Event, 0, len(s.Events))
	for _, es := range s.Events {
		ev, err := DecodeEvent(es)
		if err != nil {
			return nil, err // unreachable after Validate; defensive
		}
		l.append(ev)
	}
	return l, nil
}
