package session

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"queryaudit/internal/audit"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/qindex"
	"queryaudit/internal/query"
)

// DefaultAnalyst is the session used when a request carries no analyst
// identity — the back-compat path for single-analyst clients.
const DefaultAnalyst = "default"

var (
	// ErrTooManySessions reports admission-control refusal; HTTP callers
	// map it to 503 with Retry-After.
	ErrTooManySessions = errors.New("session: session limit reached")
	// ErrMultiAnalystDisabled reports that this deployment wraps a single
	// pre-built engine and cannot construct per-analyst sessions.
	ErrMultiAnalystDisabled = errors.New("session: multi-analyst sessions are disabled (single-engine deployment)")
	// ErrApplyStale reports a replicated event whose sequence number the
	// session has already applied (harmless re-delivery after a snapshot
	// resync; the caller skips it).
	ErrApplyStale = errors.New("session: replicated event already applied")
	// ErrApplyGap reports a replicated event that skips ahead of the
	// session's journal — events were lost and the follower must resync
	// from a fresh primary snapshot.
	ErrApplyGap = errors.New("session: replicated event leaves a sequence gap")
)

// Mark names a position in one session's journal: the sequence number of
// an event and the transcript digest after it. Replication ships a Mark
// with every record so the receiving side can verify, event by event,
// that its rebuilt timeline is bit-identical to the sender's.
type Mark struct {
	Analyst string
	Seq     uint64
	Digest  core.Digest
}

// Tap receives every journal append committed by live traffic, for the
// replication feed. TapDecision fires once per committed protocol
// decision, under the session's log lock, in per-session sequence order.
// TapUpdate fires once per global dataset update (which appends one
// marker to EVERY session's journal), with the per-session marks, while
// the dataset lock is still held exclusively — so the feed observes the
// update at the same point of every session's timeline as the journals
// do. Implementations must be fast and must not call back into the
// manager.
type Tap interface {
	TapDecision(analyst string, seq uint64, ev core.DecisionEvent, digest core.Digest)
	TapUpdate(index int, value float64, marks []Mark)
}

// Observer receives session lifecycle events for instrumentation.
// Callbacks run on session hot paths (some under shard locks), so
// implementations must be fast and lock-free; metrics.SessionCollector
// qualifies.
type Observer interface {
	ObserveSessionCreated()
	ObserveSessionEvicted()
	ObserveSessionExpired()
	ObserveSessionRejected()
	// ObserveReplay reports one engine rebuild: how many log events were
	// replayed and how long the rebuild took.
	ObserveReplay(events int, d time.Duration)
	// ObserveLive reports live-engine count changes (+1/-1).
	ObserveLive(delta int)
	// ObserveShardWait reports shard-lock contention: +1 when a goroutine
	// starts waiting on shard's lock, -1 once it acquires it.
	ObserveShardWait(shard, delta int)
}

type nopObserver struct{}

func (nopObserver) ObserveSessionCreated()           {}
func (nopObserver) ObserveSessionEvicted()           {}
func (nopObserver) ObserveSessionExpired()           {}
func (nopObserver) ObserveSessionRejected()          {}
func (nopObserver) ObserveReplay(int, time.Duration) {}
func (nopObserver) ObserveLive(int)                  {}
func (nopObserver) ObserveShardWait(int, int)        {}

// Config are the manager's memory-bounding knobs.
type Config struct {
	// MaxSessions caps tracked sessions (live engines + evicted logs).
	// Admission beyond the cap fails with ErrTooManySessions. 0 means
	// unlimited.
	MaxSessions int
	// MaxLive caps materialized engines: materializing one more evicts
	// the least-recently-used idle engine down to its log. Sessions whose
	// engines are all busy are skipped, so the bound is soft under
	// extreme concurrency (it can overshoot by the number of in-flight
	// requests, never more). 0 means unlimited.
	MaxLive int
	// TTL removes sessions idle longer than this — log included, so a
	// returning analyst starts a fresh privacy budget; size it to the
	// analyst credential lifetime (see docs/DEPLOYMENT.md §11). 0 means
	// never expire.
	TTL time.Duration
	// Shards is the lock-shard count for the session table (0 → 16).
	Shards int
	// Observer receives lifecycle events (nil → none).
	Observer Observer
	// Clock overrides time.Now for tests.
	Clock func() time.Time
	// NoJanitor disables the background TTL sweeper; tests drive Sweep
	// directly.
	NoJanitor bool
}

// Session is one analyst's isolated audit state: a replayable journal
// plus, while materialized, an engine whose auditors have replayed it.
type Session struct {
	analyst string
	// mu serializes this session's protocol steps and engine lifecycle
	// (materialize/evict). Lock order: Manager.dsMu → shard.mu → mu.
	mu sync.Mutex
	// log is internally synchronized and its pointer is only swapped
	// (Restore) with mu held before the session serves traffic, so it is
	// deliberately not guardedby-annotated.
	log *Log
	// eng is nil when evicted to the log.
	// auditlint:guardedby(mu)
	eng *core.Engine
	// pinned sessions (an adopted single-engine default) are never
	// evicted or expired — their engine is not rebuildable from the log.
	pinned bool
	// gone marks a session removed from its shard; holders of a stale
	// pointer must retry the lookup.
	// auditlint:guardedby(mu)
	gone bool
	// liveFlag mirrors eng != nil for lock-free eviction scans.
	liveFlag  atomic.Bool
	lastTouch atomic.Int64 // unix nanos of last access
}

func (s *Session) touch(t time.Time) { s.lastTouch.Store(t.UnixNano()) }

type shard struct {
	mu sync.Mutex
	// auditlint:guardedby(mu)
	sessions map[string]*Session
}

// Manager is the session layer between transport and engine: it routes
// each analyst to an isolated engine built from one shared EngineSpec,
// bounds memory by evicting idle engines down to their logs, and
// reconstructs evicted sessions bit-identically by replay.
type Manager struct {
	spec  *core.EngineSpec // nil in single-engine (adopted) mode
	ds    *dataset.Dataset
	cfg   Config
	obs   Observer
	clock func() time.Time

	shards []*shard
	// dsMu guards the shared dataset's mutable half (sensitive values):
	// queries hold it shared, updates exclusively — an update is a global
	// barrier across every session. Lock order: dsMu before shard.mu
	// before Session.mu.
	dsMu  sync.RWMutex
	total atomic.Int64 // tracked sessions
	live  atomic.Int64 // materialized engines

	// tap is the replication feed (a Tap), installed once before the
	// manager serves traffic; nil Value means no feed.
	tap atomic.Value

	supportsUpdates bool

	// resOnce/res back Resolver in single-engine mode (no spec to own
	// the deployment-shared resolver).
	resOnce sync.Once
	res     *qindex.Resolver

	stop     chan struct{}
	stopOnce sync.Once
}

// NewManager builds a sharded session manager over spec. The default
// session is materialized eagerly, so the deployment fails fast if the
// spec cannot build and the common single-analyst path never pays a
// first-request build.
func NewManager(spec *core.EngineSpec, cfg Config) (*Manager, error) {
	if spec == nil {
		return nil, errors.New("session: nil EngineSpec")
	}
	m := newManager(spec.Dataset(), spec, cfg)
	// Eager default: also determines once whether the stack supports
	// updates (factories are homogeneous across sessions).
	m.dsMu.RLock()
	s, err := m.acquire(DefaultAnalyst)
	m.dsMu.RUnlock()
	if err != nil {
		return nil, err
	}
	m.supportsUpdates = s.eng.SupportsUpdates()
	s.mu.Unlock()
	if cfg.TTL > 0 && !m.cfg.NoJanitor {
		go m.janitor()
	}
	return m, nil
}

// Single wraps one pre-built engine as a manager serving only the
// default session (pinned: never evicted, never expired, not replayable
// — the engine was not built from a spec). Requests for any other
// analyst fail with ErrMultiAnalystDisabled. The engine's journal is
// installed here, so install Single before the engine serves traffic.
func Single(eng *core.Engine, cfg Config) *Manager {
	m := newManager(eng.Dataset(), nil, cfg)
	s := &Session{analyst: DefaultAnalyst, log: NewLog(), pinned: true}
	m.wireLog(DefaultAnalyst, s.log)
	s.touch(m.clock())
	eng.SetRecorder(s.log)
	s.eng = eng //auditlint:allow lockcheck fresh session, not yet published to its shard
	s.liveFlag.Store(true)
	sh, _ := m.shardOf(DefaultAnalyst)
	sh.sessions[DefaultAnalyst] = s //auditlint:allow lockcheck constructor runs before the manager serves traffic
	m.total.Store(1)
	m.live.Store(1)
	m.obs.ObserveSessionCreated()
	m.obs.ObserveLive(1)
	m.supportsUpdates = eng.SupportsUpdates()
	return m
}

func newManager(ds *dataset.Dataset, spec *core.EngineSpec, cfg Config) *Manager {
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	obs := cfg.Observer
	if obs == nil {
		obs = nopObserver{}
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	m := &Manager{
		spec:   spec,
		ds:     ds,
		cfg:    cfg,
		obs:    obs,
		clock:  clock,
		shards: make([]*shard, cfg.Shards),
		stop:   make(chan struct{}),
	}
	for i := range m.shards {
		m.shards[i] = &shard{sessions: map[string]*Session{}}
	}
	return m
}

// Close stops the background TTL sweeper (idempotent).
func (m *Manager) Close() { m.stopOnce.Do(func() { close(m.stop) }) }

// SetTap installs the replication feed. Install it before the manager
// serves traffic; events committed while no tap is installed are not
// replayable from the feed (a follower recovers them via a snapshot
// resync instead).
func (m *Manager) SetTap(t Tap) { m.tap.Store(t) }

// loadTap returns the installed tap, if any.
func (m *Manager) loadTap() Tap {
	t, _ := m.tap.Load().(Tap)
	return t
}

// wireLog points a (new, not yet shared) log's notify hook at the
// manager's replication tap. Every log a session ever owns — created on
// admission, restored from a snapshot — must pass through here, or its
// live decisions would be invisible to replication.
func (m *Manager) wireLog(analyst string, lg *Log) {
	lg.notify = func(seq uint64, ev core.DecisionEvent, d core.Digest) {
		if t := m.loadTap(); t != nil {
			t.TapDecision(analyst, seq, ev, d)
		}
	}
}

// Dataset returns the shared dataset.
func (m *Manager) Dataset() *dataset.Dataset { return m.ds }

// Resolver returns the deployment-shared indexed query resolver over
// the dataset: one index and one interner for ALL sessions, so the
// transport layer resolves each statement once and routes the interned
// set to any analyst's engine. Spec-backed managers share the spec's
// resolver (so out-of-band consumers of the spec see the same canonical
// sets); single-engine managers build their own lazily.
func (m *Manager) Resolver() *qindex.Resolver {
	if m.spec != nil {
		return m.spec.Resolver()
	}
	m.resOnce.Do(func() { m.res = qindex.NewResolver(m.ds, qindex.Options{}) })
	return m.res
}

// Live returns the number of materialized engines.
func (m *Manager) Live() int { return int(m.live.Load()) }

// Tracked returns the number of tracked sessions (live + evicted logs).
func (m *Manager) Tracked() int { return int(m.total.Load()) }

// AdoptDefault replaces the default session's engine with a pre-built,
// pinned one — the legacy path for a deployment restoring a persisted
// single-analyst audit trail that a factory cannot reproduce. Call
// before serving traffic; a pinned session is never evicted, so the
// adopted auditor instances stay addressable for shutdown snapshots.
func (m *Manager) AdoptDefault(eng *core.Engine) {
	sh, idx := m.shardOf(DefaultAnalyst)
	m.lockShard(sh, idx)
	s := sh.sessions[DefaultAnalyst]
	if s == nil {
		s = &Session{analyst: DefaultAnalyst, log: NewLog()}
		m.wireLog(DefaultAnalyst, s.log)
		sh.sessions[DefaultAnalyst] = s
		m.total.Add(1)
		m.obs.ObserveSessionCreated()
	}
	sh.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.eng == nil {
		m.live.Add(1)
		m.obs.ObserveLive(1)
	}
	eng.SetRecorder(s.log)
	s.eng = eng
	s.liveFlag.Store(true)
	s.pinned = true
	s.touch(m.clock())
	m.supportsUpdates = eng.SupportsUpdates()
}

func (m *Manager) shardOf(analyst string) (*shard, int) {
	h := fnv.New32a()
	_, _ = h.Write([]byte(analyst))
	i := int(h.Sum32() % uint32(len(m.shards)))
	return m.shards[i], i
}

// lockShard acquires a shard lock, reporting contention to the observer.
//
// auditlint:acquires(mu)
func (m *Manager) lockShard(sh *shard, idx int) {
	if sh.mu.TryLock() {
		return
	}
	m.obs.ObserveShardWait(idx, 1)
	sh.mu.Lock()
	m.obs.ObserveShardWait(idx, -1)
}

// acquire returns the analyst's session with its mutex HELD and its
// engine materialized; the caller must Unlock. Callers hold dsMu (any
// mode).
//
// auditlint:acquires(mu)
func (m *Manager) acquire(analyst string) (*Session, error) {
	s, err := m.lookupOrCreate(analyst)
	if err != nil {
		return nil, err
	}
	if s.eng == nil {
		if err := m.materializeLocked(s); err != nil {
			s.mu.Unlock()
			return nil, err
		}
	}
	return s, nil
}

// lookupOrCreate returns the analyst's session with its mutex HELD but
// possibly no engine (evicted sessions stay evicted — journal-only
// operations like replicated update markers don't pay a rebuild).
// Callers hold dsMu (any mode).
//
// auditlint:acquires(mu)
func (m *Manager) lookupOrCreate(analyst string) (*Session, error) {
	for {
		sh, idx := m.shardOf(analyst)
		m.lockShard(sh, idx)
		s := sh.sessions[analyst]
		created := false
		if s == nil {
			if m.spec == nil {
				sh.mu.Unlock()
				return nil, ErrMultiAnalystDisabled
			}
			if m.cfg.MaxSessions > 0 && int(m.total.Load()) >= m.cfg.MaxSessions {
				sh.mu.Unlock()
				m.obs.ObserveSessionRejected()
				return nil, fmt.Errorf("%w (max %d analysts)", ErrTooManySessions, m.cfg.MaxSessions)
			}
			s = &Session{analyst: analyst, log: NewLog()}
			m.wireLog(analyst, s.log)
			s.touch(m.clock())
			sh.sessions[analyst] = s
			m.total.Add(1)
			created = true
		}
		sh.mu.Unlock()
		if created {
			m.obs.ObserveSessionCreated()
		}
		s.mu.Lock()
		if s.gone {
			// Expired between lookup and lock; retry with a fresh entry.
			s.mu.Unlock()
			continue
		}
		s.touch(m.clock())
		return s, nil
	}
}

// materializeLocked rebuilds s's engine from its journal; s.mu is held.
func (m *Manager) materializeLocked(s *Session) error {
	if m.spec == nil {
		return ErrMultiAnalystDisabled
	}
	m.evictForCapacity()
	start := time.Now()
	eng, err := m.spec.Build()
	if err != nil {
		return err
	}
	events := s.log.Events()
	for i, ev := range events {
		if ev.Update {
			if err := eng.NoteUpdate(ev.Index); err != nil {
				return fmt.Errorf("session: %q event %d: %w", s.analyst, i, err)
			}
			continue
		}
		if err := eng.Replay(ev.Decision); err != nil {
			return fmt.Errorf("session: %q event %d: %w", s.analyst, i, err)
		}
	}
	// Journal only after the journal has been drained, or replay would
	// re-append every event.
	eng.SetRecorder(s.log)
	s.eng = eng
	s.liveFlag.Store(true)
	m.live.Add(1)
	m.obs.ObserveLive(1)
	if len(events) > 0 {
		m.obs.ObserveReplay(len(events), time.Since(start))
	}
	return nil
}

// evictForCapacity drops least-recently-used idle engines until the
// MaxLive bound has room for one more build.
func (m *Manager) evictForCapacity() {
	if m.cfg.MaxLive <= 0 {
		return
	}
	for int(m.live.Load()) >= m.cfg.MaxLive {
		if !m.evictOldest() {
			return // every candidate busy or pinned: soft bound
		}
	}
}

// evictOldest finds the least-recently-touched live, unpinned, idle
// session and evicts its engine down to the log. Busy sessions (mutex
// held by an in-flight request) are skipped via TryLock, which also
// rules out deadlock with concurrent materializations.
func (m *Manager) evictOldest() bool {
	type cand struct {
		s     *Session
		touch int64
	}
	var cands []cand
	for idx, sh := range m.shards {
		m.lockShard(sh, idx)
		for _, s := range sh.sessions {
			if s.liveFlag.Load() && !s.pinned {
				cands = append(cands, cand{s, s.lastTouch.Load()})
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].touch < cands[j].touch })
	for _, c := range cands {
		if !c.s.mu.TryLock() {
			continue
		}
		if c.s.eng == nil || c.s.pinned || c.s.gone {
			c.s.mu.Unlock()
			continue
		}
		m.dropEngineLocked(c.s)
		m.obs.ObserveSessionEvicted()
		c.s.mu.Unlock()
		return true
	}
	return false
}

// dropEngineLocked discards s's engine (the log remains); s.mu is held.
func (m *Manager) dropEngineLocked(s *Session) {
	s.eng = nil
	s.liveFlag.Store(false)
	m.live.Add(-1)
	m.obs.ObserveLive(-1)
}

// EvictEngine forcibly evicts one session's engine down to its log
// (admin/testing hook). Reports whether an engine was dropped; pinned
// sessions and unknown analysts are left alone.
func (m *Manager) EvictEngine(analyst string) bool {
	sh, idx := m.shardOf(analyst)
	m.lockShard(sh, idx)
	s := sh.sessions[analyst]
	sh.mu.Unlock()
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.eng == nil || s.pinned || s.gone {
		return false
	}
	m.dropEngineLocked(s)
	m.obs.ObserveSessionEvicted()
	return true
}

// Ask routes one query to the analyst's session, creating or
// rematerializing it as needed.
func (m *Manager) Ask(analyst string, q query.Query) (core.Response, error) {
	m.dsMu.RLock()
	defer m.dsMu.RUnlock()
	s, err := m.acquire(analyst)
	if err != nil {
		return core.Response{Denied: true}, err
	}
	defer s.mu.Unlock()
	return s.eng.Ask(q)
}

// Prime answers the analyst's must-have queries up front (the paper's §7
// remedy), scoped to that analyst's session.
func (m *Manager) Prime(analyst string, qs []query.Query) error {
	m.dsMu.RLock()
	defer m.dsMu.RUnlock()
	s, err := m.acquire(analyst)
	if err != nil {
		return err
	}
	defer s.mu.Unlock()
	return s.eng.Prime(qs)
}

// Knowledge reports the analyst's per-record exposure (materializing the
// session if needed — the report requires auditor state).
func (m *Manager) Knowledge(analyst string) (map[string][]audit.ElementKnowledge, error) {
	m.dsMu.RLock()
	defer m.dsMu.RUnlock()
	s, err := m.acquire(analyst)
	if err != nil {
		return nil, err
	}
	defer s.mu.Unlock()
	return s.eng.KnowledgeSnapshot(), nil
}

// Update modifies record i's sensitive value GLOBALLY: the dataset is
// shared, so the mutation is applied once, and every session — live or
// evicted — journals the update at the current position of its timeline
// (live engines additionally retire stale constraints immediately).
// Updates exclude all queries for their duration (dsMu held
// exclusively), making the cross-session ordering well-defined.
func (m *Manager) Update(i int, v float64) error {
	m.dsMu.Lock()
	defer m.dsMu.Unlock()
	if i < 0 || i >= m.ds.N() {
		return fmt.Errorf("session: index %d out of range", i)
	}
	if !m.supportsUpdates {
		return errors.New("session: auditor stack does not support updates")
	}
	m.ds.SetSensitive(i, v)
	var sessions []*Session
	for idx, sh := range m.shards {
		m.lockShard(sh, idx)
		for _, s := range sh.sessions {
			sessions = append(sessions, s)
		}
		sh.mu.Unlock()
	}
	marks := make([]Mark, 0, len(sessions))
	for _, s := range sessions {
		s.mu.Lock()
		if !s.gone {
			seq, d := s.log.AppendUpdate(i)
			marks = append(marks, Mark{Analyst: s.analyst, Seq: seq, Digest: d})
			if s.eng != nil {
				if err := s.eng.NoteUpdate(i); err != nil {
					s.mu.Unlock()
					return err
				}
			}
		}
		s.mu.Unlock()
	}
	// Tap the update ONCE, globally, while dsMu is still held exclusively:
	// the feed sees it at exactly the journal position every session
	// recorded, and no decision can interleave (decisions hold dsMu
	// shared).
	if t := m.loadTap(); t != nil {
		t.TapUpdate(i, v, marks)
	}
	return nil
}

// ApplyDecision applies one replicated protocol decision to the
// analyst's session: the engine retraces the decision exactly as the
// primary took it (core.Engine.Replay — simulatability makes that a
// deterministic function of journal history) and the journal appends it
// WITHOUT re-tapping it into this node's feed. seq is the primary's
// per-session sequence number for the event; out-of-order delivery is
// rejected (ErrApplyStale / ErrApplyGap) so a follower can detect lost
// records and fall back to a snapshot resync. The returned digest is the
// local transcript digest after the event — the caller compares it with
// the primary's to detect divergence.
func (m *Manager) ApplyDecision(analyst string, seq uint64, ev core.DecisionEvent) (core.Digest, error) {
	m.dsMu.RLock()
	defer m.dsMu.RUnlock()
	s, err := m.acquire(analyst)
	if err != nil {
		return core.Digest{}, err
	}
	defer s.mu.Unlock()
	cur := s.log.Seq()
	if seq <= cur {
		return core.Digest{}, fmt.Errorf("%w: have %d, got %d", ErrApplyStale, cur, seq)
	}
	if seq != cur+1 {
		return core.Digest{}, fmt.Errorf("%w: have %d, got %d", ErrApplyGap, cur, seq)
	}
	if err := s.eng.Replay(ev); err != nil {
		return core.Digest{}, err
	}
	_, d := s.log.appendApplied(ev)
	return d, nil
}

// ApplyOutcome reports one session's result of ApplyUpdate: the local
// journal position after the marker, or the error that prevented it.
type ApplyOutcome struct {
	Analyst string
	Seq     uint64
	Digest  core.Digest
	Err     error
}

// ApplyUpdate applies one replicated global dataset update: the
// sensitive-value mutation exactly once, plus a journal marker for
// precisely the sessions the primary listed (its session set at the time
// of the update; a session unknown here is created, so an update can be
// the first event of a session's timeline). Marks whose sequence number
// is already applied are skipped as re-delivery; if EVERY mark is stale
// the mutation itself is skipped too, keeping the modification counter
// aligned with the primary's. Per-session failures (sequence gaps,
// admission refusal) are reported in the outcomes, not fatal to the
// other sessions.
func (m *Manager) ApplyUpdate(index int, value float64, marks []Mark) ([]ApplyOutcome, error) {
	m.dsMu.Lock()
	defer m.dsMu.Unlock()
	if index < 0 || index >= m.ds.N() {
		return nil, fmt.Errorf("session: update index %d out of range", index)
	}
	if !m.supportsUpdates {
		return nil, errors.New("session: auditor stack does not support updates")
	}
	stale := 0
	for _, mk := range marks {
		if s := m.peek(mk.Analyst); s != nil && s.log.Seq() >= mk.Seq {
			stale++
		}
	}
	if len(marks) > 0 && stale == len(marks) {
		return nil, fmt.Errorf("%w: update already applied to all %d sessions", ErrApplyStale, stale)
	}
	m.ds.SetSensitive(index, value)
	out := make([]ApplyOutcome, 0, len(marks))
	for _, mk := range marks {
		out = append(out, m.applyUpdateMark(index, mk))
	}
	return out, nil
}

// applyUpdateMark appends one session's update marker; dsMu is held
// exclusively. The session's engine is NOT materialized for this — an
// evicted journal takes the marker directly and any later rebuild
// replays it in order — but a live engine is notified immediately, like
// Update does.
func (m *Manager) applyUpdateMark(index int, mk Mark) ApplyOutcome {
	o := ApplyOutcome{Analyst: mk.Analyst}
	s, err := m.lookupOrCreate(mk.Analyst)
	if err != nil {
		o.Err = err
		return o
	}
	defer s.mu.Unlock()
	cur := s.log.Seq()
	if mk.Seq <= cur {
		o.Seq, o.Digest = s.log.Position()
		o.Err = fmt.Errorf("%w: have %d, got %d", ErrApplyStale, cur, mk.Seq)
		return o
	}
	if mk.Seq != cur+1 {
		o.Err = fmt.Errorf("%w: have %d, got %d", ErrApplyGap, cur, mk.Seq)
		return o
	}
	if s.eng != nil {
		if err := s.eng.NoteUpdate(index); err != nil {
			o.Err = err
			return o
		}
	}
	o.Seq, o.Digest = s.log.AppendUpdate(index)
	return o
}

// peek returns the analyst's session without creating, materializing or
// touching it (nil if unknown).
func (m *Manager) peek(analyst string) *Session {
	sh, idx := m.shardOf(analyst)
	m.lockShard(sh, idx)
	defer sh.mu.Unlock()
	return sh.sessions[analyst]
}

// SeqOf returns the analyst's current journal sequence number and
// whether the session exists, without creating or materializing it.
func (m *Manager) SeqOf(analyst string) (uint64, bool) {
	s := m.peek(analyst)
	if s == nil {
		return 0, false
	}
	return s.log.Seq(), true
}

// PositionOf returns the analyst's current journal position (seq and
// transcript digest) and whether the session exists, without creating or
// materializing it.
func (m *Manager) PositionOf(analyst string) (uint64, core.Digest, bool) {
	s := m.peek(analyst)
	if s == nil {
		return 0, core.Digest{}, false
	}
	seq, d := s.log.Position()
	return seq, d, true
}

// Drop removes one session outright — engine AND journal — regardless of
// TTL (pinned sessions are refused). Replication uses it when a primary
// restarts an analyst's timeline (a shipped event with sequence number 1
// for a session this node knows at a higher sequence) and when an
// operator clears a quarantined session. Reports whether a session was
// removed.
func (m *Manager) Drop(analyst string) bool {
	sh, idx := m.shardOf(analyst)
	m.lockShard(sh, idx)
	s := sh.sessions[analyst]
	sh.mu.Unlock()
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pinned || s.gone {
		return false
	}
	if s.eng != nil {
		m.dropEngineLocked(s)
	}
	s.gone = true
	m.lockShard(sh, idx)
	if sh.sessions[analyst] == s {
		delete(sh.sessions, analyst)
	}
	sh.mu.Unlock()
	m.total.Add(-1)
	m.obs.ObserveSessionExpired()
	return true
}

// Stats is a session-scoped view of the protocol counters plus the
// global dataset tallies. It never creates or materializes a session:
// counters come from the journal's running tallies, so polling stats for
// an evicted (or unknown) analyst stays O(1).
type Stats struct {
	Analyst       string
	Answered      int
	Denied        int
	Live          bool
	LogEvents     int
	Records       int
	Modifications int
}

// Stats returns the analyst's session stats (zeros for an unknown one).
func (m *Manager) Stats(analyst string) Stats {
	st := Stats{Analyst: analyst}
	m.dsMu.RLock()
	st.Records = m.ds.N()
	st.Modifications = m.ds.Modifications()
	m.dsMu.RUnlock()
	sh, idx := m.shardOf(analyst)
	m.lockShard(sh, idx)
	s := sh.sessions[analyst]
	sh.mu.Unlock()
	if s != nil {
		st.Answered, st.Denied = s.log.Tallies()
		st.LogEvents = s.log.Len()
		st.Live = s.liveFlag.Load()
	}
	return st
}

// Info is one row of the admin session listing. Seq and Digest name the
// session's journal position: the last applied sequence number and the
// transcript digest after it — comparable across primary and replicas to
// spot lag or divergence at a glance.
type Info struct {
	Analyst   string  `json:"analyst"`
	Live      bool    `json:"live"`
	Pinned    bool    `json:"pinned"`
	LogEvents int     `json:"log_events"`
	Seq       uint64  `json:"seq"`
	Digest    string  `json:"digest,omitempty"`
	Answered  int     `json:"answered"`
	Denied    int     `json:"denied"`
	IdleSecs  float64 `json:"idle_seconds"`
}

// Sessions lists every tracked session, sorted by analyst ID. The
// slice is non-nil so an empty table serializes as [], not null.
func (m *Manager) Sessions() []Info {
	now := m.clock()
	out := []Info{}
	for idx, sh := range m.shards {
		m.lockShard(sh, idx)
		for _, s := range sh.sessions {
			a, d := s.log.Tallies()
			seq, dig := s.log.Position()
			out = append(out, Info{
				Analyst:   s.analyst,
				Live:      s.liveFlag.Load(),
				Pinned:    s.pinned,
				LogEvents: s.log.Len(),
				Seq:       seq,
				Digest:    dig.Hex(),
				Answered:  a,
				Denied:    d,
				IdleSecs:  now.Sub(time.Unix(0, s.lastTouch.Load())).Seconds(),
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Analyst < out[j].Analyst })
	return out
}

// LogSnapshots exports every session's journal (sorted by analyst) for
// persistence. Pinned adopted sessions are included: their journal is
// valid even though this process adopted their engine, and a restoring
// process WITH a spec can replay it.
//
// The dataset lock is held shared across the WHOLE export, so a
// concurrent Update (which appends a marker to every journal under the
// exclusive lock) can never be captured half-applied — some sessions
// with the marker, others without. Replication's snapshot-then-stream
// handoff depends on that atomicity: a torn capture would make the
// update record partially stale for a restoring follower.
func (m *Manager) LogSnapshots() []LogSnapshot {
	m.dsMu.RLock()
	defer m.dsMu.RUnlock()
	return m.logSnapshotsLocked()
}

// logSnapshotsLocked is the body of LogSnapshots; callers hold dsMu.
func (m *Manager) logSnapshotsLocked() []LogSnapshot {
	var out []LogSnapshot
	for idx, sh := range m.shards {
		m.lockShard(sh, idx)
		for _, s := range sh.sessions {
			out = append(out, s.log.Snapshot(s.analyst))
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Analyst < out[j].Analyst })
	return out
}

// ReplicaSnapshot captures every session journal AND the dataset's
// mutable half in one consistent cut under the shared dataset lock: no
// update can land between the two, so a follower seeded from the pair
// sees values exactly as of the journals' positions.
func (m *Manager) ReplicaSnapshot() ([]LogSnapshot, dataset.SensitiveState) {
	m.dsMu.RLock()
	defer m.dsMu.RUnlock()
	return m.logSnapshotsLocked(), m.ds.SensitiveState()
}

// RestoreSensitiveState overwrites the shared dataset's mutable half
// under the exclusive dataset lock — the follower-resync counterpart of
// ReplicaSnapshot. Live engines' auditors are NOT notified: callers
// restore journals (whose update markers carry the notifications) in the
// same resync.
func (m *Manager) RestoreSensitiveState(st dataset.SensitiveState) error {
	m.dsMu.Lock()
	defer m.dsMu.Unlock()
	return m.ds.RestoreSensitive(st)
}

// Restore loads persisted session journals and replays each into a
// fresh engine, eagerly, so a ready-gated server only starts answering
// once every analyst's privacy state is reconstructed. Call before
// serving traffic. Restoring the default session replaces its eager
// empty journal.
func (m *Manager) Restore(snaps []LogSnapshot) error {
	if m.spec == nil {
		return ErrMultiAnalystDisabled
	}
	for _, snap := range snaps {
		if snap.Analyst == "" {
			return errors.New("session: snapshot with empty analyst id")
		}
		lg, err := logFromSnapshot(snap)
		if err != nil {
			return fmt.Errorf("session: restoring %q: %w", snap.Analyst, err)
		}
		m.dsMu.RLock()
		s, err := m.acquire(snap.Analyst)
		if err != nil {
			m.dsMu.RUnlock()
			return fmt.Errorf("session: restoring %q: %w", snap.Analyst, err)
		}
		// Swap in the restored journal and rebuild from it.
		m.dropEngineLocked(s)
		m.wireLog(snap.Analyst, lg)
		s.log = lg
		err = m.materializeLocked(s)
		s.mu.Unlock()
		m.dsMu.RUnlock()
		if err != nil {
			return fmt.Errorf("session: restoring %q: %w", snap.Analyst, err)
		}
	}
	return nil
}

// Sweep removes sessions idle longer than the TTL (log included — see
// Config.TTL for the privacy implications) and reports how many were
// expired. Busy sessions are skipped and caught by a later sweep.
func (m *Manager) Sweep(now time.Time) int {
	if m.cfg.TTL <= 0 {
		return 0
	}
	cutoff := now.Add(-m.cfg.TTL).UnixNano()
	expired := 0
	for idx, sh := range m.shards {
		m.lockShard(sh, idx)
		for name, s := range sh.sessions {
			if s.pinned || s.lastTouch.Load() > cutoff {
				continue
			}
			if !s.mu.TryLock() {
				continue
			}
			if s.gone || s.lastTouch.Load() > cutoff {
				s.mu.Unlock()
				continue
			}
			if s.eng != nil {
				m.dropEngineLocked(s)
			}
			s.gone = true
			delete(sh.sessions, name)
			m.total.Add(-1)
			expired++
			m.obs.ObserveSessionExpired()
			s.mu.Unlock()
		}
		sh.mu.Unlock()
	}
	return expired
}

// janitor periodically sweeps expired sessions until Close.
func (m *Manager) janitor() {
	interval := m.cfg.TTL / 4
	if interval < time.Second {
		interval = time.Second
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.Sweep(m.clock())
		}
	}
}
