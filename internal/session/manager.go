package session

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"queryaudit/internal/audit"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
)

// DefaultAnalyst is the session used when a request carries no analyst
// identity — the back-compat path for single-analyst clients.
const DefaultAnalyst = "default"

var (
	// ErrTooManySessions reports admission-control refusal; HTTP callers
	// map it to 503 with Retry-After.
	ErrTooManySessions = errors.New("session: session limit reached")
	// ErrMultiAnalystDisabled reports that this deployment wraps a single
	// pre-built engine and cannot construct per-analyst sessions.
	ErrMultiAnalystDisabled = errors.New("session: multi-analyst sessions are disabled (single-engine deployment)")
)

// Observer receives session lifecycle events for instrumentation.
// Callbacks run on session hot paths (some under shard locks), so
// implementations must be fast and lock-free; metrics.SessionCollector
// qualifies.
type Observer interface {
	ObserveSessionCreated()
	ObserveSessionEvicted()
	ObserveSessionExpired()
	ObserveSessionRejected()
	// ObserveReplay reports one engine rebuild: how many log events were
	// replayed and how long the rebuild took.
	ObserveReplay(events int, d time.Duration)
	// ObserveLive reports live-engine count changes (+1/-1).
	ObserveLive(delta int)
	// ObserveShardWait reports shard-lock contention: +1 when a goroutine
	// starts waiting on shard's lock, -1 once it acquires it.
	ObserveShardWait(shard, delta int)
}

type nopObserver struct{}

func (nopObserver) ObserveSessionCreated()           {}
func (nopObserver) ObserveSessionEvicted()           {}
func (nopObserver) ObserveSessionExpired()           {}
func (nopObserver) ObserveSessionRejected()          {}
func (nopObserver) ObserveReplay(int, time.Duration) {}
func (nopObserver) ObserveLive(int)                  {}
func (nopObserver) ObserveShardWait(int, int)        {}

// Config are the manager's memory-bounding knobs.
type Config struct {
	// MaxSessions caps tracked sessions (live engines + evicted logs).
	// Admission beyond the cap fails with ErrTooManySessions. 0 means
	// unlimited.
	MaxSessions int
	// MaxLive caps materialized engines: materializing one more evicts
	// the least-recently-used idle engine down to its log. Sessions whose
	// engines are all busy are skipped, so the bound is soft under
	// extreme concurrency (it can overshoot by the number of in-flight
	// requests, never more). 0 means unlimited.
	MaxLive int
	// TTL removes sessions idle longer than this — log included, so a
	// returning analyst starts a fresh privacy budget; size it to the
	// analyst credential lifetime (see docs/DEPLOYMENT.md §11). 0 means
	// never expire.
	TTL time.Duration
	// Shards is the lock-shard count for the session table (0 → 16).
	Shards int
	// Observer receives lifecycle events (nil → none).
	Observer Observer
	// Clock overrides time.Now for tests.
	Clock func() time.Time
	// NoJanitor disables the background TTL sweeper; tests drive Sweep
	// directly.
	NoJanitor bool
}

// Session is one analyst's isolated audit state: a replayable journal
// plus, while materialized, an engine whose auditors have replayed it.
type Session struct {
	analyst string
	// mu serializes this session's protocol steps and engine lifecycle
	// (materialize/evict). Lock order: Manager.dsMu → shard.mu → mu.
	mu  sync.Mutex
	log *Log
	eng *core.Engine // nil when evicted to the log
	// pinned sessions (an adopted single-engine default) are never
	// evicted or expired — their engine is not rebuildable from the log.
	pinned bool
	// gone marks a session removed from its shard; holders of a stale
	// pointer must retry the lookup.
	gone bool
	// liveFlag mirrors eng != nil for lock-free eviction scans.
	liveFlag  atomic.Bool
	lastTouch atomic.Int64 // unix nanos of last access
}

func (s *Session) touch(t time.Time) { s.lastTouch.Store(t.UnixNano()) }

type shard struct {
	mu       sync.Mutex
	sessions map[string]*Session
}

// Manager is the session layer between transport and engine: it routes
// each analyst to an isolated engine built from one shared EngineSpec,
// bounds memory by evicting idle engines down to their logs, and
// reconstructs evicted sessions bit-identically by replay.
type Manager struct {
	spec  *core.EngineSpec // nil in single-engine (adopted) mode
	ds    *dataset.Dataset
	cfg   Config
	obs   Observer
	clock func() time.Time

	shards []*shard
	// dsMu guards the shared dataset's mutable half (sensitive values):
	// queries hold it shared, updates exclusively — an update is a global
	// barrier across every session. Lock order: dsMu before shard.mu
	// before Session.mu.
	dsMu  sync.RWMutex
	total atomic.Int64 // tracked sessions
	live  atomic.Int64 // materialized engines

	supportsUpdates bool

	stop     chan struct{}
	stopOnce sync.Once
}

// NewManager builds a sharded session manager over spec. The default
// session is materialized eagerly, so the deployment fails fast if the
// spec cannot build and the common single-analyst path never pays a
// first-request build.
func NewManager(spec *core.EngineSpec, cfg Config) (*Manager, error) {
	if spec == nil {
		return nil, errors.New("session: nil EngineSpec")
	}
	m := newManager(spec.Dataset(), spec, cfg)
	// Eager default: also determines once whether the stack supports
	// updates (factories are homogeneous across sessions).
	m.dsMu.RLock()
	s, err := m.acquire(DefaultAnalyst)
	m.dsMu.RUnlock()
	if err != nil {
		return nil, err
	}
	m.supportsUpdates = s.eng.SupportsUpdates()
	s.mu.Unlock()
	if cfg.TTL > 0 && !m.cfg.NoJanitor {
		go m.janitor()
	}
	return m, nil
}

// Single wraps one pre-built engine as a manager serving only the
// default session (pinned: never evicted, never expired, not replayable
// — the engine was not built from a spec). Requests for any other
// analyst fail with ErrMultiAnalystDisabled. The engine's journal is
// installed here, so install Single before the engine serves traffic.
func Single(eng *core.Engine, cfg Config) *Manager {
	m := newManager(eng.Dataset(), nil, cfg)
	s := &Session{analyst: DefaultAnalyst, log: NewLog(), pinned: true}
	s.touch(m.clock())
	eng.SetRecorder(s.log)
	s.eng = eng
	s.liveFlag.Store(true)
	sh, _ := m.shardOf(DefaultAnalyst)
	sh.sessions[DefaultAnalyst] = s
	m.total.Store(1)
	m.live.Store(1)
	m.obs.ObserveSessionCreated()
	m.obs.ObserveLive(1)
	m.supportsUpdates = eng.SupportsUpdates()
	return m
}

func newManager(ds *dataset.Dataset, spec *core.EngineSpec, cfg Config) *Manager {
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	obs := cfg.Observer
	if obs == nil {
		obs = nopObserver{}
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	m := &Manager{
		spec:   spec,
		ds:     ds,
		cfg:    cfg,
		obs:    obs,
		clock:  clock,
		shards: make([]*shard, cfg.Shards),
		stop:   make(chan struct{}),
	}
	for i := range m.shards {
		m.shards[i] = &shard{sessions: map[string]*Session{}}
	}
	return m
}

// Close stops the background TTL sweeper (idempotent).
func (m *Manager) Close() { m.stopOnce.Do(func() { close(m.stop) }) }

// Dataset returns the shared dataset.
func (m *Manager) Dataset() *dataset.Dataset { return m.ds }

// Live returns the number of materialized engines.
func (m *Manager) Live() int { return int(m.live.Load()) }

// Tracked returns the number of tracked sessions (live + evicted logs).
func (m *Manager) Tracked() int { return int(m.total.Load()) }

// AdoptDefault replaces the default session's engine with a pre-built,
// pinned one — the legacy path for a deployment restoring a persisted
// single-analyst audit trail that a factory cannot reproduce. Call
// before serving traffic; a pinned session is never evicted, so the
// adopted auditor instances stay addressable for shutdown snapshots.
func (m *Manager) AdoptDefault(eng *core.Engine) {
	sh, idx := m.shardOf(DefaultAnalyst)
	m.lockShard(sh, idx)
	s := sh.sessions[DefaultAnalyst]
	if s == nil {
		s = &Session{analyst: DefaultAnalyst, log: NewLog()}
		sh.sessions[DefaultAnalyst] = s
		m.total.Add(1)
		m.obs.ObserveSessionCreated()
	}
	sh.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.eng == nil {
		m.live.Add(1)
		m.obs.ObserveLive(1)
	}
	eng.SetRecorder(s.log)
	s.eng = eng
	s.liveFlag.Store(true)
	s.pinned = true
	s.touch(m.clock())
	m.supportsUpdates = eng.SupportsUpdates()
}

func (m *Manager) shardOf(analyst string) (*shard, int) {
	h := fnv.New32a()
	_, _ = h.Write([]byte(analyst))
	i := int(h.Sum32() % uint32(len(m.shards)))
	return m.shards[i], i
}

// lockShard acquires a shard lock, reporting contention to the observer.
func (m *Manager) lockShard(sh *shard, idx int) {
	if sh.mu.TryLock() {
		return
	}
	m.obs.ObserveShardWait(idx, 1)
	sh.mu.Lock()
	m.obs.ObserveShardWait(idx, -1)
}

// acquire returns the analyst's session with its mutex HELD and its
// engine materialized; the caller must Unlock. Callers hold dsMu (any
// mode).
func (m *Manager) acquire(analyst string) (*Session, error) {
	for {
		sh, idx := m.shardOf(analyst)
		m.lockShard(sh, idx)
		s := sh.sessions[analyst]
		created := false
		if s == nil {
			if m.spec == nil {
				sh.mu.Unlock()
				return nil, ErrMultiAnalystDisabled
			}
			if m.cfg.MaxSessions > 0 && int(m.total.Load()) >= m.cfg.MaxSessions {
				sh.mu.Unlock()
				m.obs.ObserveSessionRejected()
				return nil, fmt.Errorf("%w (max %d analysts)", ErrTooManySessions, m.cfg.MaxSessions)
			}
			s = &Session{analyst: analyst, log: NewLog()}
			s.touch(m.clock())
			sh.sessions[analyst] = s
			m.total.Add(1)
			created = true
		}
		sh.mu.Unlock()
		if created {
			m.obs.ObserveSessionCreated()
		}
		s.mu.Lock()
		if s.gone {
			// Expired between lookup and lock; retry with a fresh entry.
			s.mu.Unlock()
			continue
		}
		s.touch(m.clock())
		if s.eng == nil {
			if err := m.materializeLocked(s); err != nil {
				s.mu.Unlock()
				return nil, err
			}
		}
		return s, nil
	}
}

// materializeLocked rebuilds s's engine from its journal; s.mu is held.
func (m *Manager) materializeLocked(s *Session) error {
	if m.spec == nil {
		return ErrMultiAnalystDisabled
	}
	m.evictForCapacity()
	start := time.Now()
	eng, err := m.spec.Build()
	if err != nil {
		return err
	}
	events := s.log.Events()
	for i, ev := range events {
		if ev.Update {
			if err := eng.NoteUpdate(ev.Index); err != nil {
				return fmt.Errorf("session: %q event %d: %w", s.analyst, i, err)
			}
			continue
		}
		if err := eng.Replay(ev.Decision); err != nil {
			return fmt.Errorf("session: %q event %d: %w", s.analyst, i, err)
		}
	}
	// Journal only after the journal has been drained, or replay would
	// re-append every event.
	eng.SetRecorder(s.log)
	s.eng = eng
	s.liveFlag.Store(true)
	m.live.Add(1)
	m.obs.ObserveLive(1)
	if len(events) > 0 {
		m.obs.ObserveReplay(len(events), time.Since(start))
	}
	return nil
}

// evictForCapacity drops least-recently-used idle engines until the
// MaxLive bound has room for one more build.
func (m *Manager) evictForCapacity() {
	if m.cfg.MaxLive <= 0 {
		return
	}
	for int(m.live.Load()) >= m.cfg.MaxLive {
		if !m.evictOldest() {
			return // every candidate busy or pinned: soft bound
		}
	}
}

// evictOldest finds the least-recently-touched live, unpinned, idle
// session and evicts its engine down to the log. Busy sessions (mutex
// held by an in-flight request) are skipped via TryLock, which also
// rules out deadlock with concurrent materializations.
func (m *Manager) evictOldest() bool {
	type cand struct {
		s     *Session
		touch int64
	}
	var cands []cand
	for idx, sh := range m.shards {
		m.lockShard(sh, idx)
		for _, s := range sh.sessions {
			if s.liveFlag.Load() && !s.pinned {
				cands = append(cands, cand{s, s.lastTouch.Load()})
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].touch < cands[j].touch })
	for _, c := range cands {
		if !c.s.mu.TryLock() {
			continue
		}
		if c.s.eng == nil || c.s.pinned || c.s.gone {
			c.s.mu.Unlock()
			continue
		}
		m.dropEngineLocked(c.s)
		m.obs.ObserveSessionEvicted()
		c.s.mu.Unlock()
		return true
	}
	return false
}

// dropEngineLocked discards s's engine (the log remains); s.mu is held.
func (m *Manager) dropEngineLocked(s *Session) {
	s.eng = nil
	s.liveFlag.Store(false)
	m.live.Add(-1)
	m.obs.ObserveLive(-1)
}

// EvictEngine forcibly evicts one session's engine down to its log
// (admin/testing hook). Reports whether an engine was dropped; pinned
// sessions and unknown analysts are left alone.
func (m *Manager) EvictEngine(analyst string) bool {
	sh, idx := m.shardOf(analyst)
	m.lockShard(sh, idx)
	s := sh.sessions[analyst]
	sh.mu.Unlock()
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.eng == nil || s.pinned || s.gone {
		return false
	}
	m.dropEngineLocked(s)
	m.obs.ObserveSessionEvicted()
	return true
}

// Ask routes one query to the analyst's session, creating or
// rematerializing it as needed.
func (m *Manager) Ask(analyst string, q query.Query) (core.Response, error) {
	m.dsMu.RLock()
	defer m.dsMu.RUnlock()
	s, err := m.acquire(analyst)
	if err != nil {
		return core.Response{Denied: true}, err
	}
	defer s.mu.Unlock()
	return s.eng.Ask(q)
}

// Prime answers the analyst's must-have queries up front (the paper's §7
// remedy), scoped to that analyst's session.
func (m *Manager) Prime(analyst string, qs []query.Query) error {
	m.dsMu.RLock()
	defer m.dsMu.RUnlock()
	s, err := m.acquire(analyst)
	if err != nil {
		return err
	}
	defer s.mu.Unlock()
	return s.eng.Prime(qs)
}

// Knowledge reports the analyst's per-record exposure (materializing the
// session if needed — the report requires auditor state).
func (m *Manager) Knowledge(analyst string) (map[string][]audit.ElementKnowledge, error) {
	m.dsMu.RLock()
	defer m.dsMu.RUnlock()
	s, err := m.acquire(analyst)
	if err != nil {
		return nil, err
	}
	defer s.mu.Unlock()
	return s.eng.KnowledgeSnapshot(), nil
}

// Update modifies record i's sensitive value GLOBALLY: the dataset is
// shared, so the mutation is applied once, and every session — live or
// evicted — journals the update at the current position of its timeline
// (live engines additionally retire stale constraints immediately).
// Updates exclude all queries for their duration (dsMu held
// exclusively), making the cross-session ordering well-defined.
func (m *Manager) Update(i int, v float64) error {
	m.dsMu.Lock()
	defer m.dsMu.Unlock()
	if i < 0 || i >= m.ds.N() {
		return fmt.Errorf("session: index %d out of range", i)
	}
	if !m.supportsUpdates {
		return errors.New("session: auditor stack does not support updates")
	}
	m.ds.SetSensitive(i, v)
	var sessions []*Session
	for idx, sh := range m.shards {
		m.lockShard(sh, idx)
		for _, s := range sh.sessions {
			sessions = append(sessions, s)
		}
		sh.mu.Unlock()
	}
	for _, s := range sessions {
		s.mu.Lock()
		if !s.gone {
			s.log.AppendUpdate(i)
			if s.eng != nil {
				if err := s.eng.NoteUpdate(i); err != nil {
					s.mu.Unlock()
					return err
				}
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// Stats is a session-scoped view of the protocol counters plus the
// global dataset tallies. It never creates or materializes a session:
// counters come from the journal's running tallies, so polling stats for
// an evicted (or unknown) analyst stays O(1).
type Stats struct {
	Analyst       string
	Answered      int
	Denied        int
	Live          bool
	LogEvents     int
	Records       int
	Modifications int
}

// Stats returns the analyst's session stats (zeros for an unknown one).
func (m *Manager) Stats(analyst string) Stats {
	st := Stats{Analyst: analyst}
	m.dsMu.RLock()
	st.Records = m.ds.N()
	st.Modifications = m.ds.Modifications()
	m.dsMu.RUnlock()
	sh, idx := m.shardOf(analyst)
	m.lockShard(sh, idx)
	s := sh.sessions[analyst]
	sh.mu.Unlock()
	if s != nil {
		st.Answered, st.Denied = s.log.Tallies()
		st.LogEvents = s.log.Len()
		st.Live = s.liveFlag.Load()
	}
	return st
}

// Info is one row of the admin session listing.
type Info struct {
	Analyst   string  `json:"analyst"`
	Live      bool    `json:"live"`
	Pinned    bool    `json:"pinned"`
	LogEvents int     `json:"log_events"`
	Answered  int     `json:"answered"`
	Denied    int     `json:"denied"`
	IdleSecs  float64 `json:"idle_seconds"`
}

// Sessions lists every tracked session, sorted by analyst ID. The
// slice is non-nil so an empty table serializes as [], not null.
func (m *Manager) Sessions() []Info {
	now := m.clock()
	out := []Info{}
	for idx, sh := range m.shards {
		m.lockShard(sh, idx)
		for _, s := range sh.sessions {
			a, d := s.log.Tallies()
			out = append(out, Info{
				Analyst:   s.analyst,
				Live:      s.liveFlag.Load(),
				Pinned:    s.pinned,
				LogEvents: s.log.Len(),
				Answered:  a,
				Denied:    d,
				IdleSecs:  now.Sub(time.Unix(0, s.lastTouch.Load())).Seconds(),
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Analyst < out[j].Analyst })
	return out
}

// LogSnapshots exports every session's journal (sorted by analyst) for
// persistence. Pinned adopted sessions are included: their journal is
// valid even though this process adopted their engine, and a restoring
// process WITH a spec can replay it.
func (m *Manager) LogSnapshots() []LogSnapshot {
	var out []LogSnapshot
	for idx, sh := range m.shards {
		m.lockShard(sh, idx)
		for _, s := range sh.sessions {
			out = append(out, s.log.Snapshot(s.analyst))
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Analyst < out[j].Analyst })
	return out
}

// Restore loads persisted session journals and replays each into a
// fresh engine, eagerly, so a ready-gated server only starts answering
// once every analyst's privacy state is reconstructed. Call before
// serving traffic. Restoring the default session replaces its eager
// empty journal.
func (m *Manager) Restore(snaps []LogSnapshot) error {
	if m.spec == nil {
		return ErrMultiAnalystDisabled
	}
	for _, snap := range snaps {
		if snap.Analyst == "" {
			return errors.New("session: snapshot with empty analyst id")
		}
		lg, err := logFromSnapshot(snap)
		if err != nil {
			return fmt.Errorf("session: restoring %q: %w", snap.Analyst, err)
		}
		m.dsMu.RLock()
		s, err := m.acquire(snap.Analyst)
		if err != nil {
			m.dsMu.RUnlock()
			return fmt.Errorf("session: restoring %q: %w", snap.Analyst, err)
		}
		// Swap in the restored journal and rebuild from it.
		m.dropEngineLocked(s)
		s.log = lg
		err = m.materializeLocked(s)
		s.mu.Unlock()
		m.dsMu.RUnlock()
		if err != nil {
			return fmt.Errorf("session: restoring %q: %w", snap.Analyst, err)
		}
	}
	return nil
}

// Sweep removes sessions idle longer than the TTL (log included — see
// Config.TTL for the privacy implications) and reports how many were
// expired. Busy sessions are skipped and caught by a later sweep.
func (m *Manager) Sweep(now time.Time) int {
	if m.cfg.TTL <= 0 {
		return 0
	}
	cutoff := now.Add(-m.cfg.TTL).UnixNano()
	expired := 0
	for idx, sh := range m.shards {
		m.lockShard(sh, idx)
		for name, s := range sh.sessions {
			if s.pinned || s.lastTouch.Load() > cutoff {
				continue
			}
			if !s.mu.TryLock() {
				continue
			}
			if s.gone || s.lastTouch.Load() > cutoff {
				s.mu.Unlock()
				continue
			}
			if s.eng != nil {
				m.dropEngineLocked(s)
			}
			s.gone = true
			delete(sh.sessions, name)
			m.total.Add(-1)
			expired++
			m.obs.ObserveSessionExpired()
			s.mu.Unlock()
		}
		sh.mu.Unlock()
	}
	return expired
}

// janitor periodically sweeps expired sessions until Close.
func (m *Manager) janitor() {
	interval := m.cfg.TTL / 4
	if interval < time.Second {
		interval = time.Second
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.Sweep(m.clock())
		}
	}
}
