package session

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

// recordingTap captures the replication feed in commit order.
type recordingTap struct {
	mu        sync.Mutex
	decisions []struct {
		analyst string
		seq     uint64
		ev      core.DecisionEvent
		digest  core.Digest
	}
	updates []struct {
		index int
		value float64
		marks []Mark
	}
}

func (t *recordingTap) TapDecision(analyst string, seq uint64, ev core.DecisionEvent, digest core.Digest) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.decisions = append(t.decisions, struct {
		analyst string
		seq     uint64
		ev      core.DecisionEvent
		digest  core.Digest
	}{analyst, seq, ev, digest})
}

func (t *recordingTap) TapUpdate(index int, value float64, marks []Mark) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cp := append([]Mark(nil), marks...)
	t.updates = append(t.updates, struct {
		index int
		value float64
		marks []Mark
	}{index, value, cp})
}

// TestTapFeedMirrorsIntoFollower drives a primary manager with the tap
// installed and applies the captured feed to a second manager via
// ApplyDecision/ApplyUpdate — the in-process core of the replication
// path — asserting the follower lands on the identical (seq, digest)
// position for every session.
func TestTapFeedMirrorsIntoFollower(t *testing.T) {
	for _, f := range determinismFamilies() {
		t.Run(f.name, func(t *testing.T) {
			primary := f.newManager(t)
			tap := &recordingTap{}
			primary.SetTap(tap)
			follower := f.newManager(t)

			steps := script(46, f.n, f.rounds, f.kinds, f.withUpdates)
			for i, st := range steps {
				if st.update {
					if err := primary.Update(st.idx, st.val); err != nil {
						t.Fatalf("step %d: %v", i, err)
					}
					continue
				}
				analyst := []string{"alice", "bob"}[i%2]
				if _, err := primary.Ask(analyst, st.q); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
			}

			// Interleave the two feeds exactly as committed: decisions and
			// updates each carry enough ordering (per-session seqs / marks)
			// to replay in commit order. Replay decisions first per session
			// ordering; updates are totally ordered against each session's
			// decisions by their marks, so apply everything sorted by each
			// session's next-expected seq, simplest as: walk decisions and
			// updates in captured order, merged by trying whichever applies.
			di, ui := 0, 0
			for di < len(tap.decisions) || ui < len(tap.updates) {
				if di < len(tap.decisions) {
					d := tap.decisions[di]
					cur, _ := follower.SeqOf(d.analyst)
					if d.seq == cur+1 {
						dig, err := follower.ApplyDecision(d.analyst, d.seq, d.ev)
						if err != nil {
							t.Fatalf("apply decision %d: %v", di, err)
						}
						if dig != d.digest {
							t.Fatalf("decision %d: digest %s, primary tapped %s", di, dig, d.digest)
						}
						di++
						continue
					}
				}
				if ui >= len(tap.updates) {
					t.Fatalf("feed stuck: decision %d/%d not applicable, no updates left", di, len(tap.decisions))
				}
				u := tap.updates[ui]
				outs, err := follower.ApplyUpdate(u.index, u.value, u.marks)
				if err != nil {
					t.Fatalf("apply update %d: %v", ui, err)
				}
				want := map[string]Mark{}
				for _, mk := range u.marks {
					want[mk.Analyst] = mk
				}
				for _, o := range outs {
					if o.Err != nil {
						t.Fatalf("update %d, session %s: %v", ui, o.Analyst, o.Err)
					}
					if mk := want[o.Analyst]; o.Seq != mk.Seq || o.Digest != mk.Digest {
						t.Fatalf("update %d, session %s: %d/%s vs primary mark %d/%s",
							ui, o.Analyst, o.Seq, o.Digest, mk.Seq, mk.Digest)
					}
				}
				ui++
			}

			for _, analyst := range []string{"alice", "bob"} {
				pseq, pdig, _ := primary.PositionOf(analyst)
				fseq, fdig, ok := follower.PositionOf(analyst)
				if !ok || fseq != pseq || fdig != pdig {
					t.Fatalf("%s: follower at %d/%s, primary at %d/%s", analyst, fseq, fdig, pseq, pdig)
				}
			}
			pv, fv := primary.Dataset().Values(), follower.Dataset().Values()
			for i := range pv {
				if pv[i] != fv[i] {
					t.Fatalf("dataset[%d]: %v vs %v", i, fv[i], pv[i])
				}
			}
		})
	}
}

// TestApplyDecisionOrdering: stale and gapped sequence numbers are
// rejected with their sentinel errors, and the journal is untouched.
func TestApplyDecisionOrdering(t *testing.T) {
	f := determinismFamilies()[0]
	primary := f.newManager(t)
	tap := &recordingTap{}
	primary.SetTap(tap)
	follower := f.newManager(t)

	for _, q := range []query.Query{
		query.New(query.Sum, 0, 1, 2),
		query.New(query.Max, 3, 4, 5),
		query.New(query.Sum, 6, 7),
	} {
		if _, err := primary.Ask("alice", q); err != nil {
			t.Fatal(err)
		}
	}
	d0, d1 := tap.decisions[0], tap.decisions[1]

	// A gap (seq 2 before seq 1) must be refused.
	if _, err := follower.ApplyDecision("alice", d1.seq, d1.ev); !errors.Is(err, ErrApplyGap) {
		t.Fatalf("gapped apply: %v, want ErrApplyGap", err)
	}
	if _, err := follower.ApplyDecision("alice", d0.seq, d0.ev); err != nil {
		t.Fatal(err)
	}
	// Re-delivery of seq 1 is stale, not fatal.
	if _, err := follower.ApplyDecision("alice", d0.seq, d0.ev); !errors.Is(err, ErrApplyStale) {
		t.Fatalf("stale apply: %v, want ErrApplyStale", err)
	}
	if seq, ok := follower.SeqOf("alice"); !ok || seq != 1 {
		t.Fatalf("journal at %d after rejections, want 1", seq)
	}

	// An update already applied to every session is stale as a whole.
	if err := primary.Update(2, 50); err != nil {
		t.Fatal(err)
	}
	u := tap.updates[0]
	aliceOnly := []Mark{}
	for _, mk := range u.marks {
		if mk.Analyst == "alice" {
			// Pretend alice already holds the marker.
			aliceOnly = append(aliceOnly, Mark{Analyst: "alice", Seq: 1, Digest: mk.Digest})
		}
	}
	if _, err := follower.ApplyUpdate(u.index, u.value, aliceOnly); !errors.Is(err, ErrApplyStale) {
		t.Fatalf("fully-stale update: %v, want ErrApplyStale", err)
	}
	if _, err := follower.ApplyUpdate(-1, 1, nil); err == nil {
		t.Fatal("out-of-range update index accepted")
	}
}

// TestDropSession: Drop removes a session so its timeline can restart,
// refuses pinned sessions, and reports unknown analysts.
func TestDropSession(t *testing.T) {
	f := determinismFamilies()[0]
	m := f.newManager(t)
	if _, err := m.Ask("alice", query.New(query.Sum, 0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if !m.Drop("alice") {
		t.Fatal("drop of live session failed")
	}
	if _, ok := m.SeqOf("alice"); ok {
		t.Fatal("dropped session still tracked")
	}
	if m.Drop("alice") {
		t.Fatal("second drop reported success")
	}
	if m.Drop("nobody") {
		t.Fatal("drop of unknown analyst reported success")
	}
	// A spec-built default session is droppable like any other (the
	// primary may legitimately restart its timeline)...
	if !m.Drop(DefaultAnalyst) {
		t.Fatal("spec-built default session refused Drop")
	}
	// ...but an adopted (hand-built, pinned) default is not rebuildable
	// from factories and must survive Drop.
	spec := f.makeSpec(f.makeDS())
	m2, err := NewManager(spec, Config{NoJanitor: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m2.Close)
	eng, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	m2.AdoptDefault(eng)
	if m2.Drop(DefaultAnalyst) {
		t.Fatal("pinned default session dropped")
	}
	if _, ok := m2.SeqOf(DefaultAnalyst); !ok {
		t.Fatal("pinned default session gone")
	}
}

// TestReplicaSnapshotConsistentCut: the snapshot pairs journals and
// dataset state from one cut, and RestoreSensitiveState carries the
// values into a fresh manager.
func TestReplicaSnapshotConsistentCut(t *testing.T) {
	f := determinismFamilies()[0]
	m := f.newManager(t)
	play(t, m, "alice", script(47, f.n, f.rounds, f.kinds, true), false)

	logs, sens := m.ReplicaSnapshot()
	if len(logs) == 0 {
		t.Fatal("snapshot has no sessions")
	}
	var alice *LogSnapshot
	for i := range logs {
		if logs[i].Analyst == "alice" {
			alice = &logs[i]
		}
		if err := logs[i].Validate(); err != nil {
			t.Fatalf("snapshot journal %s invalid: %v", logs[i].Analyst, err)
		}
	}
	seq, dig, _ := m.PositionOf("alice")
	if alice == nil || alice.Seq != seq || alice.Digest != dig.Hex() {
		t.Fatalf("snapshot position %+v, live position %d/%s", alice, seq, dig)
	}

	m2 := f.newManager(t)
	if err := m2.RestoreSensitiveState(sens); err != nil {
		t.Fatal(err)
	}
	a, b := m.Dataset().Values(), m2.Dataset().Values()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("restored dataset[%d] = %v, want %v", i, b[i], a[i])
		}
	}
	if err := m2.Restore(logs); err != nil {
		t.Fatalf("restore journals over restored values: %v", err)
	}
	if fseq, fdig, ok := m2.PositionOf("alice"); !ok || fseq != seq || fdig != dig {
		t.Fatalf("restored position %d/%s, want %d/%s", fseq, fdig, seq, dig)
	}

	// A wrong-shape state must be refused.
	bad := dataset.UniformDuplicateFree(randx.New(3), f.n+1, 0, 1).SensitiveState()
	if err := m2.RestoreSensitiveState(bad); err == nil {
		t.Fatal("mismatched sensitive state accepted")
	}
}

// TestEventWireCodec: EncodeEvent/DecodeEvent round-trip both event
// shapes and reject junk.
func TestEventWireCodec(t *testing.T) {
	dec := Event{Decision: core.DecisionEvent{
		Query:   query.New(query.Max, 4, 2, 9),
		Outcome: core.OutcomeDenied,
	}}
	upd := Event{Update: true, Index: 7}
	for _, ev := range []Event{dec, upd} {
		snap := EncodeEvent(ev)
		back, err := DecodeEvent(snap)
		if err != nil {
			t.Fatalf("decode %+v: %v", snap, err)
		}
		if back.Update != ev.Update || back.Index != ev.Index {
			t.Fatalf("round trip %+v -> %+v", ev, back)
		}
		if !ev.Update {
			if back.Decision.Outcome != ev.Decision.Outcome ||
				back.Decision.Query.Kind != ev.Decision.Query.Kind {
				t.Fatalf("decision round trip %+v -> %+v", ev, back)
			}
		}
		if ev.chain(core.Digest{}) != back.chain(core.Digest{}) {
			t.Fatal("round trip changes the digest chain")
		}
	}
	if _, err := DecodeEvent(EventSnapshot{Op: "query", Kind: "nonsense"}); err == nil {
		t.Fatal("bad kind decoded")
	}
	if _, err := DecodeEvent(EventSnapshot{Op: "waffle"}); err == nil {
		t.Fatal("bad op decoded")
	}
}

// TestSnapshotValidate: a corrupted journal digest is refused at
// validation time with an error naming the digest.
func TestSnapshotValidate(t *testing.T) {
	f := determinismFamilies()[0]
	m := f.newManager(t)
	play(t, m, "alice", script(48, f.n, 6, f.kinds, false), false)
	logs := m.LogSnapshots()
	var snap LogSnapshot
	for _, l := range logs {
		if l.Analyst == "alice" {
			snap = l
		}
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("clean snapshot invalid: %v", err)
	}
	// Tamper with one answer; the stored digest no longer matches.
	tampered := snap
	tampered.Events = append([]EventSnapshot(nil), snap.Events...)
	tampered.Events[0].Answer += 1
	if err := tampered.Validate(); err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("tampered snapshot validated: %v", err)
	}
	// Seq disagreeing with the event count is also structural corruption.
	short := snap
	short.Seq = snap.Seq + 5
	if err := short.Validate(); err == nil {
		t.Fatal("wrong-seq snapshot validated")
	}
}
