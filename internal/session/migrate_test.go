package session

import (
	"fmt"
	"testing"
)

// The cross-shard migration determinism property — the cluster
// tentpole's correctness claim, the sibling of replay_test.go's
// eviction property: for a simulatable auditor stack, migrating a
// session to a different shard (export → replay-import → verified
// conditional drop, exactly what cluster.Migrate drives over HTTP) at
// ANY point in the game produces a transcript bit-identical to an
// uninterrupted single-shard run. Updates are applied to BOTH managers
// throughout, mirroring the router's dataset-update broadcast: every
// shard's synopsis sees every update, whether or not it currently
// hosts the session.

// migrateSession performs the manager-level half of cluster.Migrate:
// export from one manager, replay-import into the other, verify the
// replayed position bit-for-bit, then conditionally drop the source
// copy at exactly that cut. A session that does not exist yet simply
// starts fresh on the target — migrating an analyst who never queried
// moves nothing.
func migrateSession(t *testing.T, from, to *Manager, analyst string) {
	t.Helper()
	snap, ok := from.Export(analyst)
	if !ok {
		return
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("exported journal invalid: %v", err)
	}
	seq, digest, err := to.Import(snap)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if seq != snap.Seq || digest.Hex() != snap.Digest {
		t.Fatalf("target replayed to (seq %d, %s), exported (seq %d, %s)",
			seq, digest.Hex(), snap.Seq, snap.Digest)
	}
	if err := from.DropIfAt(analyst, seq, digest); err != nil {
		t.Fatalf("conditional drop at verified cut: %v", err)
	}
}

// playAcrossMigration runs the scripted game against a two-shard pair,
// migrating the session from shard A to shard B just before step cut
// (cut == len(steps) migrates after the final step). Dataset updates go
// to both managers, as the router broadcasts them fleet-wide.
func playAcrossMigration(t *testing.T, f family, steps []step, cut int) []outcome {
	t.Helper()
	mA, mB := f.newManager(t), f.newManager(t)
	var out []outcome
	for i, st := range steps {
		if i == cut {
			migrateSession(t, mA, mB, "alice")
		}
		var o outcome
		if st.update {
			if err := mA.Update(st.idx, st.val); err != nil {
				t.Fatalf("update on shard A: %v", err)
			}
			if err := mB.Update(st.idx, st.val); err != nil {
				t.Fatalf("update on shard B: %v", err)
			}
		} else {
			m := mA
			if i >= cut {
				m = mB
			}
			resp, err := m.Ask("alice", st.q)
			o = outcome{denied: resp.Denied, answer: resp.Answer}
			if err != nil {
				o.errStr = err.Error()
			}
		}
		out = append(out, o)
	}
	if cut == len(steps) {
		migrateSession(t, mA, mB, "alice")
		if _, ok := mA.Export("alice"); ok {
			t.Fatal("source shard still holds the session after migration")
		}
		if _, ok := mB.Export("alice"); !ok {
			t.Fatal("target shard did not receive the session")
		}
	}
	return out
}

// TestMigrationAtEveryEventIndex migrates the session at every possible
// cut point — before the first event, between every adjacent pair, and
// after the last — for both the exact-disclosure and the probabilistic
// stacks, and requires each interrupted transcript to equal the
// uninterrupted run exactly.
func TestMigrationAtEveryEventIndex(t *testing.T) {
	for _, f := range determinismFamilies() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			steps := script(42, f.n, f.rounds, f.kinds, f.withUpdates)
			base := play(t, f.newManager(t), "alice", steps, false)
			for cut := 0; cut <= len(steps); cut++ {
				migrated := playAcrossMigration(t, f, steps, cut)
				compareTranscripts(t, fmt.Sprintf("migrate-at-%d", cut), base, migrated)
			}
		})
	}
}
