package linalg

import (
	"math/rand"
	"testing"

	"queryaudit/internal/field"
)

func newGF(ncols int) *Echelon[field.Elem61, field.GF61] {
	return NewEchelon[field.Elem61, field.GF61](field.GF61{}, ncols)
}

func vec(ncols int, support ...int) []field.Elem61 {
	return VectorFromSupport[field.Elem61, field.GF61](field.GF61{}, ncols, support)
}

// TestAddAndRank: independent vectors grow rank, dependent ones don't.
func TestAddAndRank(t *testing.T) {
	e := newGF(4)
	if !e.Add(vec(4, 0, 1)) {
		t.Fatal("first add should be independent")
	}
	if !e.Add(vec(4, 1, 2)) {
		t.Fatal("second add should be independent")
	}
	if e.Add(vec(4, 0, 1)) {
		t.Fatal("duplicate should be dependent")
	}
	// {0,1} + {1,2} spans {0,2}? (1,1,0,0)+(0,1,1,0): over GF(p),
	// (1,0,-1,0) = v1 - v2 is in the span, but (1,0,1,0) is not.
	f := field.GF61{}
	v := make([]field.Elem61, 4)
	v[0] = f.One()
	v[2] = f.Neg(f.One())
	v[1], v[3] = f.Zero(), f.Zero()
	if !e.InSpan(v) {
		t.Error("(1,0,-1,0) should be in span")
	}
	if e.InSpan(vec(4, 0, 2)) {
		t.Error("(1,0,1,0) should not be in span")
	}
	if got := e.Rank(); got != 2 {
		t.Errorf("rank = %d, want 2", got)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

// TestElementaryDetection: the classic sum-compromise pattern
// sum{0,1}, sum{1,2}, sum{0,2} determines each element.
func TestElementaryDetection(t *testing.T) {
	e := newGF(3)
	e.Add(vec(3, 0, 1))
	e.Add(vec(3, 1, 2))
	if _, ok := e.ElementaryInSpan(); ok {
		t.Fatal("no elementary vector should be in span yet")
	}
	if !e.WouldCreateElementary(vec(3, 0, 2)) {
		t.Fatal("adding {0,2} must reveal elements")
	}
	e.Add(vec(3, 0, 2))
	cols := e.ElementaryColumns()
	if len(cols) != 3 {
		t.Errorf("elementary columns = %v, want all three", cols)
	}
}

// TestWouldCreateElementaryNoCommit verifies the hypothetical check does
// not mutate state.
func TestWouldCreateElementaryNoCommit(t *testing.T) {
	e := newGF(3)
	e.Add(vec(3, 0, 1))
	e.Add(vec(3, 1, 2))
	before := e.Rank()
	_ = e.WouldCreateElementary(vec(3, 0, 2))
	if e.Rank() != before {
		t.Fatal("WouldCreateElementary mutated the basis")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.ElementaryInSpan(); ok {
		t.Fatal("state leaked from hypothetical add")
	}
}

// TestWouldCreateElementaryDependent: dependent vectors add nothing.
func TestWouldCreateElementaryDependent(t *testing.T) {
	e := newGF(3)
	e.Add(vec(3, 0, 1))
	if e.WouldCreateElementary(vec(3, 0, 1)) {
		t.Fatal("a dependent vector cannot create compromise")
	}
}

// TestSingletonQueryIsElementary: a size-1 sum query is itself
// compromising.
func TestSingletonQueryIsElementary(t *testing.T) {
	e := newGF(3)
	if !e.WouldCreateElementary(vec(3, 1)) {
		t.Fatal("singleton query must be flagged")
	}
}

// TestAppendColumns models an update: widen, then the old relation no
// longer blocks a refreshed query.
func TestAppendColumns(t *testing.T) {
	e := newGF(3)
	e.Add(vec(3, 0, 1, 2))
	e.AppendColumns(1) // element 0's new version occupies column 3
	if e.NumCols() != 4 {
		t.Fatalf("cols = %d, want 4", e.NumCols())
	}
	// Query {0', 1} now maps to columns {3, 1}.
	if e.WouldCreateElementary(vec(4, 3, 1)) {
		t.Fatal("{v0',v1} with old {v0,v1,v2} must not reveal anything")
	}
	e.Add(vec(4, 3, 1))
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGF61MatchesRat cross-checks rank and compromise decisions between
// the fast field and exact rationals on random 0/1 matrices.
func TestGF61MatchesRat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(5)
		gf := newGF(n)
		rat := NewEchelon[field.RatElem, field.Rat](field.Rat{}, n)
		for step := 0; step < 2*n; step++ {
			var support []int
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					support = append(support, i)
				}
			}
			if len(support) == 0 {
				continue
			}
			vg := vec(n, support...)
			vr := VectorFromSupport[field.RatElem, field.Rat](field.Rat{}, n, support)
			if got, want := gf.WouldCreateElementary(vg), rat.WouldCreateElementary(vr); got != want {
				t.Fatalf("trial %d: WouldCreateElementary GF=%v Rat=%v support=%v", trial, got, want, support)
			}
			if got, want := gf.InSpan(vg), rat.InSpan(vr); got != want {
				t.Fatalf("trial %d: InSpan mismatch", trial)
			}
			gf.Add(vg)
			rat.Add(vr)
			if gf.Rank() != rat.Rank() {
				t.Fatalf("trial %d: rank GF=%d Rat=%d", trial, gf.Rank(), rat.Rank())
			}
			if err := gf.CheckInvariants(); err != nil {
				t.Fatalf("gf invariants: %v", err)
			}
			if err := rat.CheckInvariants(); err != nil {
				t.Fatalf("rat invariants: %v", err)
			}
		}
	}
}

// TestRandomRankAgainstRecomputation: incremental rank equals from-
// scratch Gaussian elimination.
func TestRandomRankAgainstRecomputation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(6)
		var vectors [][]field.Elem61
		e := newGF(n)
		for k := 0; k < n+3; k++ {
			var support []int
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					support = append(support, i)
				}
			}
			if len(support) == 0 {
				continue
			}
			v := vec(n, support...)
			vectors = append(vectors, v)
			e.Add(v)
		}
		fresh := newGF(n)
		for _, v := range vectors {
			fresh.Add(append([]field.Elem61(nil), v...))
		}
		if e.Rank() != fresh.Rank() {
			t.Fatalf("incremental rank %d != fresh rank %d", e.Rank(), fresh.Rank())
		}
	}
}
