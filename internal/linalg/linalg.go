// Package linalg implements the incremental linear algebra behind the
// classical sum auditor of Sections 5 and 6: a row space of 0/1 query
// vectors maintained in reduced row-echelon form (RREF), with span
// membership tests and detection of elementary (axis-parallel) vectors.
//
// The central fact the auditor relies on (and that this package's tests
// verify) is: for a basis in RREF, an elementary vector e_i lies in the
// row space if and only if some basis row *is* e_i up to scaling — that
// is, some row has exactly one nonzero entry. Compromise detection is
// therefore a scan for singleton rows.
//
// The package is generic over internal/field so that the same code runs
// on the fast GF(2^61−1) field and on exact rationals.
package linalg

import (
	"fmt"

	"queryaudit/internal/field"
)

// Echelon maintains a growing row space in reduced row-echelon form.
// Rows are added one at a time; dependent rows are discarded. Columns may
// be appended to model database updates (each modification of a record
// opens a fresh column for its new version).
type Echelon[E any, F field.Field[E]] struct {
	f     F
	ncols int
	// rows[i] is a dense row of length ncols. Invariants:
	//   - rows[i][pivot[i]] == 1 and it is the first nonzero of rows[i];
	//   - every other row has a zero in column pivot[i];
	//   - pivot columns are strictly increasing in row order.
	rows  [][]E
	pivot []int
	// rowOfPivot maps a pivot column to its row index, or -1.
	rowOfPivot []int
}

// NewEchelon returns an empty row space over ncols columns.
func NewEchelon[E any, F field.Field[E]](f F, ncols int) *Echelon[E, F] {
	e := &Echelon[E, F]{f: f, ncols: ncols}
	e.rowOfPivot = make([]int, ncols)
	for i := range e.rowOfPivot {
		e.rowOfPivot[i] = -1
	}
	return e
}

// Rank returns the current dimension of the row space.
func (e *Echelon[E, F]) Rank() int { return len(e.rows) }

// NumCols returns the current number of columns.
func (e *Echelon[E, F]) NumCols() int { return e.ncols }

// AppendColumns widens the matrix by k zero columns (used when a database
// update introduces new value versions).
func (e *Echelon[E, F]) AppendColumns(k int) {
	if k <= 0 {
		return
	}
	z := e.f.Zero()
	for i, row := range e.rows {
		wide := make([]E, e.ncols+k)
		copy(wide, row)
		for c := e.ncols; c < e.ncols+k; c++ {
			wide[c] = z
		}
		e.rows[i] = wide
	}
	for c := 0; c < k; c++ {
		e.rowOfPivot = append(e.rowOfPivot, -1)
	}
	e.ncols += k
}

// VectorFromSupport builds the 0/1 vector of length ncols with ones at
// the given (not necessarily sorted) column indices.
func VectorFromSupport[E any, F field.Field[E]](f F, ncols int, support []int) []E {
	v := make([]E, ncols)
	z, one := f.Zero(), f.One()
	for i := range v {
		v[i] = z
	}
	for _, c := range support {
		if c < 0 || c >= ncols {
			panic(fmt.Sprintf("linalg: support index %d out of range 0..%d", c, ncols-1))
		}
		v[c] = one
	}
	return v
}

// Reduce returns the residual of v after elimination against the current
// basis. The residual is zero everywhere iff v is in the row space. The
// input is not modified.
func (e *Echelon[E, F]) Reduce(v []E) []E {
	if len(v) != e.ncols {
		panic(fmt.Sprintf("linalg: vector length %d, want %d", len(v), e.ncols))
	}
	r := make([]E, e.ncols)
	copy(r, v)
	for i, row := range e.rows {
		p := e.pivot[i]
		if e.f.IsZero(r[p]) {
			continue
		}
		c := r[p] // row's pivot entry is 1, so the multiplier is r[p] itself
		for j := p; j < e.ncols; j++ {
			if !e.f.IsZero(row[j]) {
				r[j] = e.f.Sub(r[j], e.f.Mul(c, row[j]))
			}
		}
	}
	return r
}

// IsZeroVector reports whether every entry of r is zero.
func (e *Echelon[E, F]) IsZeroVector(r []E) bool {
	for _, x := range r {
		if !e.f.IsZero(x) {
			return false
		}
	}
	return true
}

// InSpan reports whether v lies in the current row space.
func (e *Echelon[E, F]) InSpan(v []E) bool {
	return e.IsZeroVector(e.Reduce(v))
}

// normalize scales r so its leading nonzero (at column p) becomes 1.
func (e *Echelon[E, F]) normalize(r []E, p int) {
	inv := e.f.Inv(r[p])
	for j := p; j < e.ncols; j++ {
		if !e.f.IsZero(r[j]) {
			r[j] = e.f.Mul(r[j], inv)
		}
	}
}

// leading returns the index of the first nonzero entry of r, or -1.
func (e *Echelon[E, F]) leading(r []E) int {
	for j, x := range r {
		if !e.f.IsZero(x) {
			return j
		}
	}
	return -1
}

// Add inserts v into the row space, returning true if the rank grew
// (false means v was already in the span). RREF is restored before
// returning.
func (e *Echelon[E, F]) Add(v []E) bool {
	r := e.Reduce(v)
	p := e.leading(r)
	if p < 0 {
		return false
	}
	e.addReduced(r, p)
	return true
}

// addReduced commits an already-reduced residual r with leading column p.
func (e *Echelon[E, F]) addReduced(r []E, p int) {
	e.normalize(r, p)
	// Eliminate column p from all existing rows (zeros above the pivot).
	for _, row := range e.rows {
		if e.f.IsZero(row[p]) {
			continue
		}
		c := row[p]
		for j := p; j < e.ncols; j++ {
			if !e.f.IsZero(r[j]) {
				row[j] = e.f.Sub(row[j], e.f.Mul(c, r[j]))
			}
		}
	}
	// Insert keeping pivot columns sorted.
	at := len(e.rows)
	for i, pc := range e.pivot {
		if pc > p {
			at = i
			break
		}
	}
	e.rows = append(e.rows, nil)
	copy(e.rows[at+1:], e.rows[at:])
	e.rows[at] = r
	e.pivot = append(e.pivot, 0)
	copy(e.pivot[at+1:], e.pivot[at:])
	e.pivot[at] = p
	for c := range e.rowOfPivot {
		if e.rowOfPivot[c] >= at && c != p {
			e.rowOfPivot[c]++
		}
	}
	e.rowOfPivot[p] = at
}

// supportSize returns the number of nonzero entries of row.
func (e *Echelon[E, F]) supportSize(row []E) int {
	n := 0
	for _, x := range row {
		if !e.f.IsZero(x) {
			n++
		}
	}
	return n
}

// ElementaryInSpan returns the column index of some elementary vector in
// the row space, or (-1, false) if none exists. Requires RREF, where an
// elementary vector is in the span iff some basis row is a singleton.
func (e *Echelon[E, F]) ElementaryInSpan() (int, bool) {
	for i, row := range e.rows {
		if e.supportSize(row) == 1 {
			return e.pivot[i], true
		}
	}
	return -1, false
}

// ElementaryColumns returns the set of columns whose elementary vectors
// lie in the row space.
func (e *Echelon[E, F]) ElementaryColumns() []int {
	var cols []int
	for i, row := range e.rows {
		if e.supportSize(row) == 1 {
			cols = append(cols, e.pivot[i])
		}
	}
	return cols
}

// WouldCreateElementary reports whether adding v to the row space would
// put some elementary vector into the span that is not already there.
// It performs the hypothetical elimination without mutating the basis.
// If v is already in the span it reports false: answering a dependent
// query adds no information.
func (e *Echelon[E, F]) WouldCreateElementary(v []E) bool {
	r := e.Reduce(v)
	p := e.leading(r)
	if p < 0 {
		return false
	}
	// Hypothetical new row: r normalized.
	inv := e.f.Inv(r[p])
	// Singleton new row?
	if e.supportSize(r) == 1 {
		return true
	}
	// Existing rows with a nonzero in column p lose that entry; check
	// whether any becomes a singleton.
	for _, row := range e.rows {
		if e.f.IsZero(row[p]) {
			continue
		}
		c := e.f.Mul(row[p], inv)
		nz := 0
		for j := 0; j < e.ncols; j++ {
			var val E
			if j >= p {
				val = e.f.Sub(row[j], e.f.Mul(c, r[j]))
			} else {
				val = row[j]
			}
			if !e.f.IsZero(val) {
				nz++
				if nz > 1 {
					break
				}
			}
		}
		if nz == 1 {
			return true
		}
	}
	return false
}

// Rows returns a deep copy of the current basis rows (for inspection and
// tests; the auditor itself never needs it).
func (e *Echelon[E, F]) Rows() [][]E {
	out := make([][]E, len(e.rows))
	for i, row := range e.rows {
		out[i] = append([]E(nil), row...)
	}
	return out
}

// Pivots returns a copy of the pivot columns in row order.
func (e *Echelon[E, F]) Pivots() []int {
	return append([]int(nil), e.pivot...)
}

// CheckInvariants verifies the RREF invariants, returning a descriptive
// error when one is violated. It is used by property tests.
func (e *Echelon[E, F]) CheckInvariants() error {
	one := e.f.One()
	for i, row := range e.rows {
		p := e.pivot[i]
		if l := e.leading(row); l != p {
			return fmt.Errorf("row %d: leading column %d, recorded pivot %d", i, l, p)
		}
		if !e.f.Equal(row[p], one) {
			return fmt.Errorf("row %d: pivot entry not 1", i)
		}
		if i > 0 && e.pivot[i-1] >= p {
			return fmt.Errorf("pivots not strictly increasing at row %d", i)
		}
		for k, other := range e.rows {
			if k != i && !e.f.IsZero(other[p]) {
				return fmt.Errorf("row %d has nonzero in pivot column %d of row %d", k, p, i)
			}
		}
	}
	for c, ri := range e.rowOfPivot {
		if ri == -1 {
			continue
		}
		if ri < 0 || ri >= len(e.rows) || e.pivot[ri] != c {
			return fmt.Errorf("rowOfPivot[%d]=%d inconsistent", c, ri)
		}
	}
	return nil
}
