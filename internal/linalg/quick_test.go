package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"queryaudit/internal/field"
)

// TestQuickRankProperties: rank never exceeds min(#adds, ncols), a
// re-added vector is always dependent, and invariants hold throughout.
func TestQuickRankProperties(t *testing.T) {
	check := func(seed int64, masks []uint16) bool {
		const n = 9
		e := newGF(n)
		rng := rand.New(rand.NewSource(seed))
		adds := 0
		var kept [][]field.Elem61
		for _, m := range masks {
			var support []int
			for i := 0; i < n; i++ {
				if m&(1<<i) != 0 {
					support = append(support, i)
				}
			}
			if len(support) == 0 {
				continue
			}
			v := vec(n, support...)
			if e.Add(append([]field.Elem61(nil), v...)) {
				adds++
				kept = append(kept, v)
			}
			if e.Rank() != adds {
				return false
			}
			if e.Rank() > n {
				return false
			}
			if err := e.CheckInvariants(); err != nil {
				return false
			}
			// Any previously kept vector must now be in the span.
			if len(kept) > 0 {
				probe := kept[rng.Intn(len(kept))]
				if !e.InSpan(probe) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSpanClosure: the span is closed under random linear
// combinations of basis rows.
func TestQuickSpanClosure(t *testing.T) {
	f := field.GF61{}
	check := func(seed int64, masks []uint16, coeffs []uint32) bool {
		const n = 8
		e := newGF(n)
		for _, m := range masks {
			var support []int
			for i := 0; i < n; i++ {
				if m&(1<<i) != 0 {
					support = append(support, i)
				}
			}
			if len(support) > 0 {
				e.Add(vec(n, support...))
			}
		}
		rows := e.Rows()
		if len(rows) == 0 {
			return true
		}
		comb := make([]field.Elem61, n)
		for j := range comb {
			comb[j] = f.Zero()
		}
		for k, row := range rows {
			var c field.Elem61
			if k < len(coeffs) {
				c = f.FromInt(int64(coeffs[k]))
			} else {
				c = f.One()
			}
			for j := range comb {
				comb[j] = f.Add(comb[j], f.Mul(c, row[j]))
			}
		}
		return e.InSpan(comb)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWouldCreateElementaryIsPredictive: the hypothetical check
// agrees with actually committing the vector.
func TestQuickWouldCreateElementaryIsPredictive(t *testing.T) {
	check := func(seed int64, masks []uint16, probeMask uint16) bool {
		const n = 8
		e := newGF(n)
		for _, m := range masks {
			var support []int
			for i := 0; i < n; i++ {
				if m&(1<<i) != 0 {
					support = append(support, i)
				}
			}
			if len(support) < 2 {
				continue
			}
			v := vec(n, support...)
			if !e.WouldCreateElementary(v) {
				e.Add(v)
			}
		}
		var support []int
		for i := 0; i < n; i++ {
			if probeMask&(1<<i) != 0 {
				support = append(support, i)
			}
		}
		if len(support) == 0 {
			return true
		}
		probe := vec(n, support...)
		predicted := e.WouldCreateElementary(probe)
		// Commit on a rebuilt copy and compare.
		cp := newGF(n)
		for _, row := range e.Rows() {
			cp.Add(row)
		}
		_, before := cp.ElementaryInSpan()
		cp.Add(probe)
		_, after := cp.ElementaryInSpan()
		actual := after && !before
		return predicted == actual
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
