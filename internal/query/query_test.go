package query

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestNewSetNormalizes: sorting and dedup.
func TestNewSetNormalizes(t *testing.T) {
	s := NewSet(5, 1, 3, 1, 5)
	want := Set{1, 3, 5}
	if !s.Equal(want) {
		t.Fatalf("got %v, want %v", s, want)
	}
}

// TestSetOpsAgainstMaps property-checks set algebra against map-based
// reference implementations.
func TestSetOpsAgainstMaps(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}
	check := func(a, b []uint8) bool {
		sa := fromBytes(a)
		sb := fromBytes(b)
		ma := toMap(sa)
		mb := toMap(sb)

		inter := sa.Intersect(sb)
		for _, v := range inter {
			if !ma[v] || !mb[v] {
				return false
			}
		}
		union := sa.Union(sb)
		minus := sa.Minus(sb)
		if len(union) != len(ma)+len(mb)-len(inter) {
			return false
		}
		if len(minus) != len(ma)-len(inter) {
			return false
		}
		if sa.Overlaps(sb) != (len(inter) > 0) {
			return false
		}
		for _, s := range []Set{inter, union, minus} {
			if !sort.IntsAreSorted(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func fromBytes(bs []uint8) Set {
	ints := make([]int, len(bs))
	for i, b := range bs {
		ints[i] = int(b % 32)
	}
	return NewSet(ints...)
}

func toMap(s Set) map[int]bool {
	m := make(map[int]bool, len(s))
	for _, v := range s {
		m[v] = true
	}
	return m
}

// TestContains via binary search.
func TestContains(t *testing.T) {
	s := NewSet(2, 4, 8)
	for _, v := range []int{2, 4, 8} {
		if !s.Contains(v) {
			t.Errorf("should contain %d", v)
		}
	}
	for _, v := range []int{1, 3, 9} {
		if s.Contains(v) {
			t.Errorf("should not contain %d", v)
		}
	}
}

// TestEvalAggregates checks each aggregate against hand values.
func TestEvalAggregates(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	set := []int{0, 1, 2, 3} // values 5,1,4,2
	cases := []struct {
		kind Kind
		want float64
	}{
		{Sum, 12}, {Max, 5}, {Min, 1}, {Count, 4}, {Avg, 3}, {Median, 2},
	}
	for _, c := range cases {
		got := New(c.kind, set...).Eval(xs)
		if got != c.want {
			t.Errorf("%v = %g, want %g", c.kind, got, c.want)
		}
	}
}

// TestParseKindRoundTrip: every kind parses from its own name.
func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{Sum, Max, Min, Count, Avg, Median} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("mode"); err == nil {
		t.Error("unknown aggregate must fail")
	}
}

// TestEmptyEvalPanics documents the engine-boundary contract.
func TestEmptyEvalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty set")
		}
	}()
	Query{Kind: Sum}.Eval([]float64{1})
}
