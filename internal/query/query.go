// Package query defines the statistical-query model of Section 1: a query
// q = (Q, f) names a subset Q ⊆ {1..n} of record indices and an aggregate
// function f; the result is f applied to the multiset {x_i | i ∈ Q} of
// sensitive values.
package query

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind enumerates the aggregate functions the library understands. The
// paper's auditors cover Sum, Max and Min (and bags of Max and Min);
// Count, Avg and Median are supported by the SDB engine for completeness
// (Avg over a known-size set is Sum-equivalent for auditing purposes and
// is routed to the sum auditor by the engine).
type Kind int

const (
	// Sum is the sum aggregate.
	Sum Kind = iota
	// Max is the maximum aggregate.
	Max
	// Min is the minimum aggregate.
	Min
	// Count is the cardinality aggregate (public in this model: query
	// sets are specified over public attributes, so counts leak nothing
	// about the sensitive attribute).
	Count
	// Avg is the arithmetic mean.
	Avg
	// Median is the (lower) median.
	Median
)

// String returns the lower-case SQL-ish name of the aggregate.
func (k Kind) String() string {
	switch k {
	case Sum:
		return "sum"
	case Max:
		return "max"
	case Min:
		return "min"
	case Count:
		return "count"
	case Avg:
		return "avg"
	case Median:
		return "median"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts an aggregate name to its Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "sum":
		return Sum, nil
	case "max":
		return Max, nil
	case "min":
		return Min, nil
	case "count":
		return Count, nil
	case "avg", "average", "mean":
		return Avg, nil
	case "median":
		return Median, nil
	default:
		return 0, fmt.Errorf("query: unknown aggregate %q", s)
	}
}

// Set is a query set: a sorted, duplicate-free slice of 0-based record
// indices.
type Set []int

// NewSet normalizes indices into a Set (sorting and removing duplicates).
func NewSet(indices ...int) Set {
	s := append([]int(nil), indices...)
	sort.Ints(s)
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return Set(out)
}

// Size returns |Q|.
func (s Set) Size() int { return len(s) }

// Contains reports whether idx ∈ Q, by binary search.
func (s Set) Contains(idx int) bool {
	i := sort.SearchInts(s, idx)
	return i < len(s) && s[i] == idx
}

// Intersect returns Q ∩ other.
func (s Set) Intersect(other Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		switch {
		case s[i] < other[j]:
			i++
		case s[i] > other[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Minus returns Q \ other.
func (s Set) Minus(other Set) Set {
	var out Set
	j := 0
	for _, v := range s {
		for j < len(other) && other[j] < v {
			j++
		}
		if j < len(other) && other[j] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

// Union returns Q ∪ other.
func (s Set) Union(other Set) Set {
	out := make(Set, 0, len(s)+len(other))
	i, j := 0, 0
	for i < len(s) || j < len(other) {
		switch {
		case j >= len(other) || (i < len(s) && s[i] < other[j]):
			out = append(out, s[i])
			i++
		case i >= len(s) || other[j] < s[i]:
			out = append(out, other[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Overlaps reports whether Q ∩ other ≠ ∅ without materializing it.
func (s Set) Overlaps(other Set) bool {
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		switch {
		case s[i] < other[j]:
			i++
		case s[i] > other[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// Equal reports whether two sets contain the same indices.
func (s Set) Equal(other Set) bool {
	if len(s) != len(other) {
		return false
	}
	for i := range s {
		if s[i] != other[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s Set) Clone() Set { return append(Set(nil), s...) }

func (s Set) String() string {
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = fmt.Sprint(v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Query is a statistical query (Q, f).
type Query struct {
	Set  Set
	Kind Kind
}

// New builds a query over the given indices.
func New(kind Kind, indices ...int) Query {
	return Query{Set: NewSet(indices...), Kind: kind}
}

func (q Query) String() string {
	return fmt.Sprintf("%s%s", q.Kind, q.Set)
}

// Eval applies the query's aggregate to the dataset values xs. It panics
// on an empty query set or out-of-range index — queries are validated at
// the engine boundary before evaluation.
func (q Query) Eval(xs []float64) float64 {
	if len(q.Set) == 0 {
		panic("query: evaluating empty query set")
	}
	switch q.Kind {
	case Sum:
		t := 0.0
		for _, i := range q.Set {
			t += xs[i]
		}
		return t
	case Max:
		t := math.Inf(-1)
		for _, i := range q.Set {
			if xs[i] > t {
				t = xs[i]
			}
		}
		return t
	case Min:
		t := math.Inf(1)
		for _, i := range q.Set {
			if xs[i] < t {
				t = xs[i]
			}
		}
		return t
	case Count:
		return float64(len(q.Set))
	case Avg:
		t := 0.0
		for _, i := range q.Set {
			t += xs[i]
		}
		return t / float64(len(q.Set))
	case Median:
		vals := make([]float64, 0, len(q.Set))
		for _, i := range q.Set {
			vals = append(vals, xs[i])
		}
		sort.Float64s(vals)
		return vals[(len(vals)-1)/2]
	default:
		panic(fmt.Sprintf("query: unknown kind %v", q.Kind))
	}
}

// Answered pairs a query with the exact answer that was released for it.
// Denied queries never appear in an Answered log: under simulatability a
// denial carries no information beyond what the attacker could compute.
type Answered struct {
	Query  Query
	Answer float64
}

func (a Answered) String() string {
	return fmt.Sprintf("%v=%g", a.Query, a.Answer)
}
