// Package interval implements the interval machinery of the partial
// disclosure (probabilistic compromise) definition of Section 2.2: the
// partition of the data range [α, β] into γ equal intervals, per-element
// value ranges derived from max/min predicates, and the (1−λ) posterior /
// prior ratio window.
package interval

import "fmt"

// Interval is a half-open interval [Lo, Hi) over the reals, except that
// the final partition cell is treated as closed at β so the partition
// covers [α, β] exactly.
type Interval struct {
	Lo, Hi float64
}

// Length returns Hi − Lo (zero for degenerate or inverted intervals).
func (iv Interval) Length() float64 {
	if iv.Hi <= iv.Lo {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Contains reports whether x ∈ [Lo, Hi).
func (iv Interval) Contains(x float64) bool {
	return x >= iv.Lo && x < iv.Hi
}

// Intersect returns the overlap of iv and other (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if other.Lo > lo {
		lo = other.Lo
	}
	if other.Hi < hi {
		hi = other.Hi
	}
	if hi < lo {
		hi = lo
	}
	return Interval{Lo: lo, Hi: hi}
}

// OverlapFraction returns |iv ∩ other| / |iv|, the probability that a
// value uniform on iv lands in other. Degenerate iv yields 0.
func (iv Interval) OverlapFraction(other Interval) float64 {
	l := iv.Length()
	if l == 0 { //auditlint:allow floateq Length returns exact 0 for degenerate intervals; this is a sentinel, not arithmetic
		return 0
	}
	return iv.Intersect(other).Length() / l
}

func (iv Interval) String() string {
	return fmt.Sprintf("[%g,%g)", iv.Lo, iv.Hi)
}

// Partition is the set I of γ equal-width intervals covering [α, β],
// exactly as defined in Section 2.2:
//
//	I_j = [α + (j−1)(β−α)/γ, α + j(β−α)/γ]  for j = 1..γ.
type Partition struct {
	Alpha, Beta float64
	Gamma       int
}

// NewPartition builds the γ-cell partition of [alpha, beta]. It panics on
// gamma < 1 or beta <= alpha since these are programmer errors: the
// security parameters are fixed by the DBA at configuration time.
func NewPartition(alpha, beta float64, gamma int) Partition {
	if gamma < 1 {
		panic("interval: gamma must be >= 1")
	}
	if beta <= alpha {
		panic("interval: need beta > alpha")
	}
	return Partition{Alpha: alpha, Beta: beta, Gamma: gamma}
}

// Width returns the common width (β−α)/γ of the partition cells.
func (p Partition) Width() float64 {
	return (p.Beta - p.Alpha) / float64(p.Gamma)
}

// Cell returns the j-th interval for j = 1..γ (1-indexed, following the
// paper). The final cell's Hi is β itself.
func (p Partition) Cell(j int) Interval {
	if j < 1 || j > p.Gamma {
		panic(fmt.Sprintf("interval: cell index %d out of range 1..%d", j, p.Gamma))
	}
	w := p.Width()
	return Interval{
		Lo: p.Alpha + float64(j-1)*w,
		Hi: p.Alpha + float64(j)*w,
	}
}

// CellIndex returns the 1-based index of the cell containing x, clamping
// x = β into the final cell. Values outside [α, β] return 0.
func (p Partition) CellIndex(x float64) int {
	if x < p.Alpha || x > p.Beta {
		return 0
	}
	if x == p.Beta { //auditlint:allow floateq the closed upper endpoint is clamped by exact comparison per the Section 2.2 partition
		return p.Gamma
	}
	j := int((x-p.Alpha)/p.Width()) + 1
	if j > p.Gamma {
		j = p.Gamma
	}
	return j
}

// Prior returns the prior probability that a value uniform on [α, β] lies
// in any single cell, i.e. 1/γ.
func (p Partition) Prior() float64 {
	return 1 / float64(p.Gamma)
}

// RatioWindow is the acceptance window of the safety predicate S_{λ,i,I}:
// a posterior/prior ratio is safe iff it lies in [1−λ, 1/(1−λ)].
type RatioWindow struct {
	Lambda float64
}

// Safe reports whether ratio ∈ [1−λ, 1/(1−λ)].
func (w RatioWindow) Safe(ratio float64) bool {
	lo := 1 - w.Lambda
	hi := 1 / (1 - w.Lambda)
	return ratio >= lo && ratio <= hi
}

// SafePosterior reports whether a posterior probability is safe against a
// prior, treating a zero prior as safe only when the posterior is also
// zero (both say "impossible", so the attacker learns nothing).
func (w RatioWindow) SafePosterior(posterior, prior float64) bool {
	if prior == 0 { //auditlint:allow floateq zero prior is an exact sentinel: both sides say impossible
		return posterior == 0 //auditlint:allow floateq zero posterior matches the zero-prior sentinel exactly
	}
	return w.Safe(posterior / prior)
}
