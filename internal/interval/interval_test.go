package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPartitionCells: cells tile [α, β] exactly.
func TestPartitionCells(t *testing.T) {
	p := NewPartition(0, 1, 4)
	if w := p.Width(); w != 0.25 {
		t.Fatalf("width = %g", w)
	}
	if p.Prior() != 0.25 {
		t.Fatalf("prior = %g", p.Prior())
	}
	prevHi := 0.0
	for j := 1; j <= 4; j++ {
		c := p.Cell(j)
		if c.Lo != prevHi {
			t.Errorf("cell %d: lo %g, want %g", j, c.Lo, prevHi)
		}
		prevHi = c.Hi
	}
	if prevHi != 1 {
		t.Errorf("final hi = %g, want 1", prevHi)
	}
}

// TestCellIndexInverse: CellIndex(Cell(j) members) == j.
func TestCellIndexInverse(t *testing.T) {
	p := NewPartition(-2, 3, 7)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		x := -2 + rng.Float64()*5
		j := p.CellIndex(x)
		if j < 1 || j > 7 {
			t.Fatalf("index %d out of range for %g", j, x)
		}
		if !p.Cell(j).Contains(x) && !(j == 7 && x == 3) {
			t.Fatalf("cell %d %v does not contain %g", j, p.Cell(j), x)
		}
	}
	if p.CellIndex(3) != 7 {
		t.Error("β must land in the final cell")
	}
	if p.CellIndex(-2.1) != 0 || p.CellIndex(3.1) != 0 {
		t.Error("out-of-range values must return 0")
	}
}

// TestOverlapFraction against analytic cases.
func TestOverlapFraction(t *testing.T) {
	iv := Interval{Lo: 0.2, Hi: 0.8}
	cases := []struct {
		other Interval
		want  float64
	}{
		{Interval{0, 1}, 1},
		{Interval{0, 0.2}, 0},
		{Interval{0.8, 1}, 0},
		{Interval{0.2, 0.5}, 0.5},
		{Interval{0.5, 0.8}, 0.5},
		{Interval{0.45, 0.55}, 1.0 / 6},
	}
	for _, c := range cases {
		got := iv.OverlapFraction(c.other)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("overlap with %v = %g, want %g", c.other, got, c.want)
		}
	}
}

// TestOverlapFractionProperties: bounded in [0,1], monotone under
// widening.
func TestOverlapFractionProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}
	check := func(a, b, c, d float64) bool {
		a, b = math.Abs(math.Mod(a, 10)), math.Abs(math.Mod(b, 10))
		c, d = math.Abs(math.Mod(c, 10)), math.Abs(math.Mod(d, 10))
		iv := Interval{Lo: math.Min(a, b), Hi: math.Max(a, b) + 0.1}
		other := Interval{Lo: math.Min(c, d), Hi: math.Max(c, d)}
		f := iv.OverlapFraction(other)
		if f < 0 || f > 1 || math.IsNaN(f) {
			return false
		}
		wider := Interval{Lo: other.Lo - 1, Hi: other.Hi + 1}
		return iv.OverlapFraction(wider) >= f
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRatioWindow boundary semantics.
func TestRatioWindow(t *testing.T) {
	w := RatioWindow{Lambda: 0.25}
	if !w.Safe(0.75) || !w.Safe(1) || !w.Safe(1/0.75) {
		t.Error("boundary ratios are safe")
	}
	if w.Safe(0.74) || w.Safe(1.34) {
		t.Error("outside ratios are unsafe")
	}
	if !w.SafePosterior(0, 0) {
		t.Error("0/0: both impossible — safe")
	}
	if w.SafePosterior(0.1, 0) {
		t.Error("positive posterior over zero prior is unsafe")
	}
}

// TestPartitionPanics: invalid construction is a programmer error.
func TestPartitionPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewPartition(0, 1, 0) },
		func() { NewPartition(1, 1, 3) },
		func() { NewPartition(0, 1, 3).Cell(0) },
		func() { NewPartition(0, 1, 3).Cell(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
