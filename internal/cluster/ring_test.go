package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func testKeys(k int) []string {
	keys := make([]string, k)
	for i := range keys {
		keys[i] = fmt.Sprintf("analyst-%d", i)
	}
	return keys
}

func shardIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("shard-%d", i)
	}
	return ids
}

func mustRing(t *testing.T, ids []string) *Ring {
	t.Helper()
	r, err := NewRing(ids, DefaultVNodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRingStability pins the two consistent-hashing properties the
// rebalance path depends on. Adding one shard to an N-shard ring must
// (1) move roughly K/(N+1) of K analysts — not the ~K(N/(N+1)) a mod-N
// scheme reshuffles — and (2) move them ONLY onto the new shard: an
// analyst whose owner survives the change keeps it, exactly. Property
// (2) is what bounds a scale-out's migration traffic to the new
// shard's share.
func TestRingStability(t *testing.T) {
	const k = 1000
	keys := testKeys(k)
	for n := 1; n <= 7; n++ {
		n := n
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			before := mustRing(t, shardIDs(n))
			after := mustRing(t, shardIDs(n+1))
			newID := fmt.Sprintf("shard-%d", n)
			moved := 0
			for _, key := range keys {
				was, is := before.Owner(key), after.Owner(key)
				if was == is {
					continue
				}
				moved++
				if is != newID {
					t.Fatalf("key %q moved %s -> %s, not onto the new shard %s", key, was, is, newID)
				}
			}
			// The expected share is k/(n+1); vnode placement makes the
			// realized count vary around it. 2x is far below the ~k·n/(n+1)
			// a naive mod-N reshuffle would move.
			bound := 2 * ((k + n) / (n + 1))
			if moved > bound {
				t.Fatalf("adding shard %d moved %d of %d keys (> bound %d)", n, moved, k, bound)
			}
			if moved == 0 {
				t.Fatalf("adding a shard moved no keys — the new shard would stay empty")
			}
		})
	}
}

// TestRingOrderIndependence: the ring must be a pure function of the
// shard SET — the descriptor order, map iteration order or any other
// enumeration order the caller happens to use must not matter, or
// router and node could disagree on placement.
func TestRingOrderIndependence(t *testing.T) {
	keys := testKeys(200)
	base := mustRing(t, shardIDs(5))
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		ids := shardIDs(5)
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		r := mustRing(t, ids)
		for _, key := range keys {
			if got, want := r.Owner(key), base.Owner(key); got != want {
				t.Fatalf("shuffled build %d: owner(%q) = %s, want %s", trial, key, got, want)
			}
		}
	}
}

// TestRingConcurrentOwners: Owner is read-only and must return
// identical placements from any number of goroutines (the router calls
// it on every request).
func TestRingConcurrentOwners(t *testing.T) {
	r := mustRing(t, shardIDs(4))
	keys := testKeys(500)
	want := make([]string, len(keys))
	for i, key := range keys {
		want[i] = r.Owner(key)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, key := range keys {
				if got := r.Owner(key); got != want[i] {
					t.Errorf("concurrent owner(%q) = %s, want %s", key, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestRingSpread: every shard owns a share; no shard is starved or
// overloaded beyond 3x the fair share at 1000 keys and 128 vnodes.
func TestRingSpread(t *testing.T) {
	const k, n = 1000, 5
	r := mustRing(t, shardIDs(n))
	spread := r.Spread(testKeys(k))
	if len(spread) != n {
		t.Fatalf("spread has %d shards, want %d", len(spread), n)
	}
	total := 0
	for id, c := range spread {
		total += c
		if c == 0 {
			t.Errorf("shard %s owns no keys", id)
		}
		if c > 3*k/n {
			t.Errorf("shard %s owns %d of %d keys (> 3x fair share)", id, c, k)
		}
	}
	if total != k {
		t.Fatalf("spread sums to %d, want %d", total, k)
	}
}

// TestAssignBounded: the planning helper must respect its capacity
// ceiling and assign every key exactly once.
func TestAssignBounded(t *testing.T) {
	const k, n = 1000, 4
	r := mustRing(t, shardIDs(n))
	keys := testKeys(k)
	assign, err := r.AssignBounded(keys, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != k {
		t.Fatalf("assigned %d keys, want %d", len(assign), k)
	}
	capacity := (k*125/100 + n - 1) / n
	members := r.shardSet()
	counts := map[string]int{}
	for key, id := range assign {
		counts[id]++
		if !members[id] {
			t.Fatalf("key %q assigned to unknown shard %q", key, id)
		}
	}
	for id, c := range counts {
		if c > capacity {
			t.Errorf("shard %s assigned %d keys (> capacity %d)", id, c, capacity)
		}
	}
}

// shardSet is a test helper exposing the ring membership as a set.
func (r *Ring) shardSet() map[string]bool {
	set := make(map[string]bool, len(r.shards))
	for _, id := range r.shards {
		set[id] = true
	}
	return set
}

// TestRingRejectsBadInput covers the constructor's error paths.
func TestRingRejectsBadInput(t *testing.T) {
	if _, err := NewRing(nil, DefaultVNodes, 0); err == nil {
		t.Error("empty shard list accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, DefaultVNodes, 0); err == nil {
		t.Error("duplicate shard IDs accepted")
	}
	if _, err := NewRing([]string{"a", ""}, DefaultVNodes, 0); err == nil {
		t.Error("empty shard ID accepted")
	}
}

// TestRingSeedChangesPlacement: different seeds yield different rings,
// so a descriptor's seed is part of the placement contract.
func TestRingSeedChangesPlacement(t *testing.T) {
	a, err := NewRing(shardIDs(4), DefaultVNodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(shardIDs(4), DefaultVNodes, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	keys := testKeys(500)
	for _, key := range keys {
		if a.Owner(key) == b.Owner(key) {
			same++
		}
	}
	if same == len(keys) {
		t.Error("seed change left every placement identical")
	}
}

// TestRingSortedShards: Shards() reports the membership sorted, the
// order metric registration and status endpoints rely on.
func TestRingSortedShards(t *testing.T) {
	r := mustRing(t, []string{"c", "a", "b"})
	ids := r.Shards()
	if !sort.StringsAreSorted(ids) {
		t.Fatalf("Shards() not sorted: %v", ids)
	}
}
