package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
)

// ShardSpec is one shard pair in the fleet descriptor: a stable ID (the
// ring hashes IDs, not URLs, so a pair can be re-hosted without moving
// a single analyst), the primary's base URL, an optional replica base
// URL, and the replication epoch the pair was last known at (nodes
// adopt at least this epoch on boot, so a restarted shard resumes its
// fence instead of epoch 0).
type ShardSpec struct {
	ID      string `json:"id"`
	Primary string `json:"primary"`
	Replica string `json:"replica,omitempty"`
	Epoch   uint64 `json:"epoch,omitempty"`
}

// Fleet is the static-membership fleet descriptor, shared verbatim by
// the router and every node (-cluster-config). Routing is a pure
// function of this document: same descriptor, same placements,
// everywhere.
type Fleet struct {
	// Seed salts the ring hash; change it only with a full rebalance.
	Seed uint64 `json:"seed,omitempty"`
	// VNodes is the virtual-node count per shard (0 → DefaultVNodes).
	VNodes int         `json:"vnodes,omitempty"`
	Shards []ShardSpec `json:"shards"`

	ringOnce sync.Once
	ring     *Ring
	ringErr  error
}

// ParseFleet decodes and validates a fleet descriptor.
func ParseFleet(r io.Reader) (*Fleet, error) {
	var f Fleet
	dec := json.NewDecoder(io.LimitReader(r, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("cluster: parsing fleet descriptor: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// LoadFleet reads and validates the fleet descriptor at path.
func LoadFleet(path string) (*Fleet, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	defer fh.Close()
	f, err := ParseFleet(fh)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return f, nil
}

// validShardID restricts shard IDs to letters, digits, dot, dash and
// underscore: they become vnode labels, metric name suffixes and URL
// query values, so anything fancier would need escaping in three
// different grammars.
func validShardID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '-' || c == '_':
		default:
			return false
		}
	}
	return true
}

// validBaseURL accepts absolute http(s) URLs without path, query or
// fragment — node base URLs that endpoint paths are appended to.
func validBaseURL(raw string) error {
	u, err := url.Parse(raw)
	if err != nil {
		return err
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("scheme must be http or https, got %q", u.Scheme)
	}
	if u.Host == "" {
		return fmt.Errorf("missing host")
	}
	if strings.TrimSuffix(u.Path, "/") != "" || u.RawQuery != "" || u.Fragment != "" {
		return fmt.Errorf("must be a base URL without path or query")
	}
	return nil
}

// Validate checks the structural invariants of the descriptor: at least
// one shard, unique well-formed IDs, parseable base URLs, a primary on
// every shard.
func (f *Fleet) Validate() error {
	if len(f.Shards) == 0 {
		return fmt.Errorf("cluster: fleet descriptor lists no shards")
	}
	if f.VNodes < 0 {
		return fmt.Errorf("cluster: vnodes must be >= 0, got %d", f.VNodes)
	}
	seen := make(map[string]bool, len(f.Shards))
	for i, sh := range f.Shards {
		if !validShardID(sh.ID) {
			return fmt.Errorf("cluster: shard %d: invalid id %q (want 1-64 chars of [a-zA-Z0-9._-])", i, sh.ID)
		}
		if seen[sh.ID] {
			return fmt.Errorf("cluster: duplicate shard id %q", sh.ID)
		}
		seen[sh.ID] = true
		if sh.Primary == "" {
			return fmt.Errorf("cluster: shard %q: missing primary URL", sh.ID)
		}
		if err := validBaseURL(sh.Primary); err != nil {
			return fmt.Errorf("cluster: shard %q: primary %q: %v", sh.ID, sh.Primary, err)
		}
		if sh.Replica != "" {
			if err := validBaseURL(sh.Replica); err != nil {
				return fmt.Errorf("cluster: shard %q: replica %q: %v", sh.ID, sh.Replica, err)
			}
		}
	}
	return nil
}

// ShardIDs returns the descriptor's shard IDs in sorted order.
func (f *Fleet) ShardIDs() []string {
	ids := make([]string, len(f.Shards))
	for i, sh := range f.Shards {
		ids[i] = sh.ID
	}
	sort.Strings(ids)
	return ids
}

// Shard looks up one shard spec by ID.
func (f *Fleet) Shard(id string) (ShardSpec, bool) {
	for _, sh := range f.Shards {
		if sh.ID == id {
			return sh, true
		}
	}
	return ShardSpec{}, false
}

// Ring returns the fleet's consistent-hash ring, built once.
func (f *Fleet) Ring() (*Ring, error) {
	f.ringOnce.Do(func() {
		f.ring, f.ringErr = NewRing(f.ShardIDs(), f.VNodes, f.Seed)
	})
	return f.ring, f.ringErr
}

// Owner returns the shard spec owning the given analyst.
func (f *Fleet) Owner(analyst string) (ShardSpec, error) {
	r, err := f.Ring()
	if err != nil {
		return ShardSpec{}, err
	}
	sh, ok := f.Shard(r.Owner(analyst))
	if !ok {
		// Unreachable: the ring is built from this fleet's IDs.
		return ShardSpec{}, fmt.Errorf("cluster: ring owner %q not in fleet", r.Owner(analyst))
	}
	return sh, nil
}
