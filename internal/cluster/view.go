package cluster

import (
	"fmt"
	"sync"
)

// NodeView is one node's live view of the cluster: which shard it is,
// what the fleet looks like, and which analysts were just migrated away.
// The fleet half is swappable at runtime (POST /v1/cluster/config pushes
// a new descriptor during a rebalance) so ownership fencing converges
// without restarts. Safe for concurrent use.
type NodeView struct {
	shardID string

	mu    sync.RWMutex
	fleet *Fleet // auditlint:guardedby(mu)
	ring  *Ring  // auditlint:guardedby(mu)
	// moved fences analysts whose sessions this shard handed off before
	// the NEW fleet descriptor reached it: between the Forget step of a
	// migration and the config push, the old descriptor still names this
	// shard as owner, and without the fence a request slipping in would
	// silently start a FRESH session here — forking the analyst's audit
	// timeline across two shards. Entries clear on Reload (the new
	// descriptor carries the real ownership from then on).
	moved map[string]ShardSpec // auditlint:guardedby(mu)
	// reloads counts descriptor swaps, for the ring-rebuild metric.
	reloads uint64 // auditlint:guardedby(mu)
}

// NewNodeView builds the view for one node. The shard ID must appear in
// the descriptor — a node configured into a fleet that does not know it
// would blackhole every analyst hashed to it.
func NewNodeView(f *Fleet, shardID string) (*NodeView, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if _, ok := f.Shard(shardID); !ok {
		return nil, fmt.Errorf("cluster: shard id %q not present in the fleet descriptor (shards: %v)", shardID, f.ShardIDs())
	}
	ring, err := f.Ring()
	if err != nil {
		return nil, err
	}
	return &NodeView{
		shardID: shardID,
		fleet:   f,
		ring:    ring,
		moved:   make(map[string]ShardSpec),
	}, nil
}

// ShardID returns this node's shard ID (fixed for the process lifetime).
func (v *NodeView) ShardID() string { return v.shardID }

// Fleet returns the current fleet descriptor.
func (v *NodeView) Fleet() *Fleet {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.fleet
}

// Owner returns the shard spec owning the analyst under the current
// view: the moved fence first (a just-migrated analyst's new owner),
// then the ring.
func (v *NodeView) Owner(analyst string) ShardSpec {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if sp, ok := v.moved[analyst]; ok {
		return sp
	}
	sh, _ := v.fleet.Shard(v.ring.Owner(analyst))
	return sh
}

// Owns reports whether this node's shard owns the analyst, returning
// the owning spec either way (for the 421 body naming the real owner).
func (v *NodeView) Owns(analyst string) (ShardSpec, bool) {
	sp := v.Owner(analyst)
	return sp, sp.ID == v.shardID
}

// MarkMoved fences one analyst to a successor shard until the next
// descriptor reload — the Forget step of a migration calls this on the
// old owner so no fresh session can form in the propagation window.
func (v *NodeView) MarkMoved(analyst string, to ShardSpec) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.moved[analyst] = to
}

// Reload swaps in a new fleet descriptor (validating it and that this
// node's shard is still a member), clears the moved fence, and returns
// the cumulative reload count. An invalid descriptor leaves the current
// view untouched.
func (v *NodeView) Reload(f *Fleet) (uint64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if _, ok := f.Shard(v.shardID); !ok {
		return 0, fmt.Errorf("cluster: refusing descriptor that drops this node's shard %q", v.shardID)
	}
	ring, err := f.Ring()
	if err != nil {
		return 0, err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.fleet = f
	v.ring = ring
	v.moved = make(map[string]ShardSpec)
	v.reloads++
	return v.reloads, nil
}

// Reloads returns how many descriptor swaps the view has absorbed.
func (v *NodeView) Reloads() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.reloads
}
