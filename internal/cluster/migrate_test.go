package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/session"
)

// testSnapshots drives a real session to produce digest-chain-valid
// journals: one export after half the queries, one after all of them
// (a strict extension — the shape a forget-conflict retry sees).
func testSnapshots(t *testing.T, analyst string) (short, long session.LogSnapshot) {
	t.Helper()
	ds := dataset.UniformDuplicateFree(randx.New(5), 8, 1, 100)
	sp := core.NewEngineSpec(ds)
	n := ds.N()
	sp.Register(func() (audit.Auditor, error) { return sumfull.New(n), nil }, query.Sum)
	m, err := session.NewManager(sp, session.Config{NoJanitor: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	ask := func(rounds int) {
		for i := 0; i < rounds; i++ {
			if _, err := m.Ask(analyst, query.New(query.Sum, i%n, (i+1)%n)); err != nil {
				t.Fatal(err)
			}
		}
	}
	ask(3)
	var ok bool
	if short, ok = m.Export(analyst); !ok {
		t.Fatal("no session to export")
	}
	ask(3)
	if long, ok = m.Export(analyst); !ok {
		t.Fatal("no session to export")
	}
	if long.Seq <= short.Seq {
		t.Fatalf("long journal (seq %d) does not extend short (seq %d)", long.Seq, short.Seq)
	}
	return short, long
}

// fakeSource serves the export/forget half of the protocol with a
// scriptable journal, simulating live traffic landing mid-migration.
type fakeSource struct {
	mu      sync.Mutex
	snaps   []session.LogSnapshot // snaps[0] served; forget-409 pops to the next
	dropped bool
}

func (f *fakeSource) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster/journal", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		if len(f.snaps) == 0 || f.dropped {
			http.Error(w, `{"error":"no session"}`, http.StatusNotFound)
			return
		}
		_ = json.NewEncoder(w).Encode(JournalResponse{Shard: "src", Snapshot: f.snaps[0]})
	})
	mux.HandleFunc("POST /v1/cluster/forget", func(w http.ResponseWriter, r *http.Request) {
		var req ForgetRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		f.mu.Lock()
		defer f.mu.Unlock()
		cur := f.snaps[0]
		if req.Seq != cur.Seq || req.Digest != cur.Digest {
			// Live traffic moved the journal past the requested cut.
			http.Error(w, `{"error":"position moved"}`, http.StatusConflict)
			return
		}
		if len(f.snaps) > 1 {
			// Scripted interleaving: the journal grew before the forget
			// landed — refuse and serve the longer journal from now on.
			f.snaps = f.snaps[1:]
			http.Error(w, `{"error":"position moved"}`, http.StatusConflict)
			return
		}
		f.dropped = true
		_ = json.NewEncoder(w).Encode(ForgetResponse{Dropped: true})
	})
	return mux
}

// fakeTarget records imports and echoes the replayed position
// (optionally scripted to conflict or diverge).
type fakeTarget struct {
	mu       sync.Mutex
	imported []session.LogSnapshot
	conflict bool
	diverge  bool
}

func (f *fakeTarget) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/import", func(w http.ResponseWriter, r *http.Request) {
		var req ImportRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.conflict {
			http.Error(w, `{"error":"conflicting timeline"}`, http.StatusConflict)
			return
		}
		f.imported = append(f.imported, req.Snapshot)
		ir := ImportResponse{Analyst: req.Snapshot.Analyst, Seq: req.Snapshot.Seq, Digest: req.Snapshot.Digest}
		if f.diverge {
			ir.Digest = strings.Repeat("00", 32)
		}
		_ = json.NewEncoder(w).Encode(ir)
	})
	return mux
}

func startMigrationPair(t *testing.T, src *fakeSource, dst *fakeTarget) (fromURL, toURL string) {
	t.Helper()
	s := httptest.NewServer(src.handler())
	t.Cleanup(s.Close)
	d := httptest.NewServer(dst.handler())
	t.Cleanup(d.Close)
	return s.URL, d.URL
}

func TestMigrateHappyPath(t *testing.T) {
	short, _ := testSnapshots(t, "alice")
	src := &fakeSource{snaps: []session.LogSnapshot{short}}
	dst := &fakeTarget{}
	from, to := startMigrationPair(t, src, dst)
	res, err := NewMigrator(nil, 3).Migrate(context.Background(), from, to, "dst", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped || res.Seq != short.Seq || res.Digest != short.Digest || res.Attempts != 1 {
		t.Fatalf("result = %+v, want seq %d digest %s in 1 attempt", res, short.Seq, short.Digest)
	}
	if !src.dropped {
		t.Fatal("source kept its copy after a verified handoff")
	}
	if len(dst.imported) != 1 {
		t.Fatalf("target imported %d journals, want 1", len(dst.imported))
	}
}

func TestMigrateNoSessionSkips(t *testing.T) {
	src := &fakeSource{}
	dst := &fakeTarget{}
	from, to := startMigrationPair(t, src, dst)
	res, err := NewMigrator(nil, 3).Migrate(context.Background(), from, to, "dst", "ghost")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Skipped {
		t.Fatalf("result = %+v, want Skipped", res)
	}
	if len(dst.imported) != 0 {
		t.Fatal("skipped migration still imported a journal")
	}
}

// TestMigrateRetriesOnForgetConflict: live traffic lands between the
// export and the forget. The source refuses the stale cut (409), the
// migrator re-exports the grown journal and hands off at the new
// position — and only then does the source drop.
func TestMigrateRetriesOnForgetConflict(t *testing.T) {
	short, long := testSnapshots(t, "alice")
	src := &fakeSource{snaps: []session.LogSnapshot{short, long}}
	dst := &fakeTarget{}
	from, to := startMigrationPair(t, src, dst)
	res, err := NewMigrator(nil, 3).Migrate(context.Background(), from, to, "dst", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 2 || res.Seq != long.Seq || res.Digest != long.Digest {
		t.Fatalf("result = %+v, want the LONG journal (seq %d) in 2 attempts", res, long.Seq)
	}
	if !src.dropped {
		t.Fatal("source kept its copy")
	}
	if len(dst.imported) != 2 {
		t.Fatalf("target saw %d imports, want 2 (stale then extended)", len(dst.imported))
	}
}

// TestMigrateFatalOnImportConflict: a target already holding a
// DIFFERENT timeline is never resolved automatically.
func TestMigrateFatalOnImportConflict(t *testing.T) {
	short, _ := testSnapshots(t, "alice")
	src := &fakeSource{snaps: []session.LogSnapshot{short}}
	dst := &fakeTarget{conflict: true}
	from, to := startMigrationPair(t, src, dst)
	_, err := NewMigrator(nil, 3).Migrate(context.Background(), from, to, "dst", "alice")
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict", err)
	}
	if src.dropped {
		t.Fatal("source dropped its copy despite the conflict")
	}
}

// TestMigrateFatalOnDivergence: a target whose replayed digest does not
// match the export must abort the migration before the forget.
func TestMigrateFatalOnDivergence(t *testing.T) {
	short, _ := testSnapshots(t, "alice")
	src := &fakeSource{snaps: []session.LogSnapshot{short}}
	dst := &fakeTarget{diverge: true}
	from, to := startMigrationPair(t, src, dst)
	_, err := NewMigrator(nil, 3).Migrate(context.Background(), from, to, "dst", "alice")
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("err = %v, want divergence error", err)
	}
	if src.dropped {
		t.Fatal("source dropped its copy despite the divergence")
	}
}

// TestMigrateGivesUpAfterRetries: a journal that keeps taking writes
// exhausts the retry budget with the source copy intact.
func TestMigrateGivesUpAfterRetries(t *testing.T) {
	short, long := testSnapshots(t, "alice")
	// The journal grows past the first cut, but the budget (1 attempt)
	// is exhausted before the migrator can chase the new position.
	src := &fakeSource{snaps: []session.LogSnapshot{short, long}}
	dst := &fakeTarget{}
	from, to := startMigrationPair(t, src, dst)
	_, err := NewMigrator(nil, 1).Migrate(context.Background(), from, to, "dst", "alice")
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict after exhausted retries", err)
	}
	if src.dropped {
		t.Fatal("source dropped its copy despite never verifying a cut")
	}
}
