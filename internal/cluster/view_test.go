package cluster

import (
	"strings"
	"testing"
)

func TestNodeViewOwnership(t *testing.T) {
	f := parseTestFleet(t, twoShardFleet)
	va, err := NewNodeView(f, "shard-a")
	if err != nil {
		t.Fatal(err)
	}
	vb, err := NewNodeView(f, "shard-b")
	if err != nil {
		t.Fatal(err)
	}
	// Both views agree on every placement, and exactly one claims each
	// analyst.
	for _, analyst := range testKeys(100) {
		spA, ownsA := va.Owns(analyst)
		spB, ownsB := vb.Owns(analyst)
		if spA.ID != spB.ID {
			t.Fatalf("views disagree on owner(%q): %s vs %s", analyst, spA.ID, spB.ID)
		}
		if ownsA == ownsB {
			t.Fatalf("analyst %q owned by %d shards", analyst, btoi(ownsA)+btoi(ownsB))
		}
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestNewNodeViewRejectsUnknownShard(t *testing.T) {
	f := parseTestFleet(t, twoShardFleet)
	if _, err := NewNodeView(f, "shard-z"); err == nil {
		t.Fatal("view built for a shard the descriptor does not know")
	}
}

// TestNodeViewMovedFence: a migrated-away analyst is fenced to the
// successor even while the OLD descriptor still names this shard as
// owner, and the fence clears on the next descriptor reload.
func TestNodeViewMovedFence(t *testing.T) {
	f := parseTestFleet(t, twoShardFleet)
	v, err := NewNodeView(f, "shard-a")
	if err != nil {
		t.Fatal(err)
	}
	// Find an analyst this shard owns.
	var analyst string
	for _, a := range testKeys(100) {
		if _, owns := v.Owns(a); owns {
			analyst = a
			break
		}
	}
	if analyst == "" {
		t.Fatal("shard-a owns none of the test analysts")
	}
	succ := ShardSpec{ID: "shard-b", Primary: "http://127.0.0.1:9003"}
	v.MarkMoved(analyst, succ)
	if sp, owns := v.Owns(analyst); owns || sp.ID != "shard-b" {
		t.Fatalf("after MarkMoved: owns=%v owner=%s, want fenced to shard-b", owns, sp.ID)
	}
	if _, err := v.Reload(parseTestFleet(t, twoShardFleet)); err != nil {
		t.Fatal(err)
	}
	if _, owns := v.Owns(analyst); !owns {
		t.Fatal("reload did not clear the moved fence")
	}
	if v.Reloads() != 1 {
		t.Fatalf("Reloads = %d, want 1", v.Reloads())
	}
}

// TestNodeViewReloadRefusesDroppingSelf: a descriptor push that removes
// this node's shard must be rejected, leaving the old view intact.
func TestNodeViewReloadRefusesDroppingSelf(t *testing.T) {
	f := parseTestFleet(t, twoShardFleet)
	v, err := NewNodeView(f, "shard-a")
	if err != nil {
		t.Fatal(err)
	}
	onlyB, err := ParseFleet(strings.NewReader(
		`{"shards": [{"id": "shard-b", "primary": "http://127.0.0.1:9003"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Reload(onlyB); err == nil {
		t.Fatal("descriptor dropping this node's shard accepted")
	}
	if v.Fleet() != f {
		t.Fatal("failed reload replaced the fleet")
	}
}
