package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"queryaudit/internal/session"
)

// Wire types of the migration protocol (served by internal/server's
// /v1/cluster endpoints, driven by Migrator). Migration IS replay: the
// old owner exports the session journal, the new owner replays it into
// a fresh engine (simulatability §2.2 — the journal is the complete
// auditor state), and only when the new owner's recomputed digest chain
// lands on the exact exported (seq, digest) does the old owner drop its
// copy. At every instant the analyst has exactly one live timeline.

// JournalResponse is the body of GET /v1/cluster/journal?analyst=X.
type JournalResponse struct {
	Shard    string              `json:"shard"`
	Snapshot session.LogSnapshot `json:"snapshot"`
}

// ImportRequest is the body of POST /v1/cluster/import.
type ImportRequest struct {
	Snapshot session.LogSnapshot `json:"snapshot"`
}

// ImportResponse reports the importing node's journal position after
// replay; the migrator compares it against the exported snapshot.
type ImportResponse struct {
	Analyst string `json:"analyst"`
	Seq     uint64 `json:"seq"`
	Digest  string `json:"digest"`
}

// ForgetRequest is the body of POST /v1/cluster/forget: drop the
// analyst's session if and only if its journal is still exactly at
// (Seq, Digest) — the atomic cut of the handoff. SuccessorShard and
// SuccessorURL let the old owner fence stragglers to the new one until
// the next descriptor reload.
type ForgetRequest struct {
	Analyst        string `json:"analyst"`
	Seq            uint64 `json:"seq"`
	Digest         string `json:"digest"`
	SuccessorShard string `json:"successor_shard,omitempty"`
	SuccessorURL   string `json:"successor_url,omitempty"`
}

// ForgetResponse is the body of a successful forget.
type ForgetResponse struct {
	Dropped bool `json:"dropped"`
}

// ConfigRequest is the body of POST /v1/cluster/config: the new fleet
// descriptor a rebalance pushes to every node.
type ConfigRequest struct {
	Fleet json.RawMessage `json:"fleet"`
}

// ConfigResponse reports a node's view after a descriptor reload.
type ConfigResponse struct {
	Shard   string `json:"shard"`
	Shards  int    `json:"shards"`
	Reloads uint64 `json:"reloads"`
}

// NodeStatus is the body of GET /v1/cluster/node: one node's cluster
// identity plus its replication status, aggregated by the router into
// the fleet-wide GET /v1/cluster view.
type NodeStatus struct {
	Shard           string   `json:"shard"`
	Role            string   `json:"role"`
	Epoch           uint64   `json:"epoch"`
	SessionsTracked int      `json:"sessions_tracked"`
	SessionsLive    int      `json:"sessions_live"`
	Head            uint64   `json:"head,omitempty"`
	Applied         uint64   `json:"applied,omitempty"`
	Lag             uint64   `json:"lag,omitempty"`
	Quarantined     []string `json:"quarantined,omitempty"`
	Reloads         uint64   `json:"reloads"`
}

// MisdirectedBody is the JSON envelope of a 421 from a clustered node.
// It extends the replication layer's misdirected envelope with the
// owning shard ID, so a proxy can tell a role redirect WITHIN a shard
// pair (follow and update that shard's active URL) from an ownership
// redirect to a DIFFERENT shard (follow one hop, leave the view alone).
type MisdirectedBody struct {
	Error      string `json:"error"`
	Shard      string `json:"shard,omitempty"`
	Role       string `json:"role,omitempty"`
	Epoch      uint64 `json:"epoch,omitempty"`
	PrimaryURL string `json:"primary_url,omitempty"`
}

// ErrConflict reports a forget or import refused because the session's
// position changed — live traffic landed between export and handoff.
// The migrator retries the whole export from scratch on it.
var ErrConflict = errors.New("cluster: session position changed during migration")

// MoveResult describes one completed migration.
type MoveResult struct {
	Analyst string
	// Seq and Digest are the verified position the session moved at.
	Seq    uint64
	Digest string
	// Attempts counts export rounds (>1 means live traffic interleaved).
	Attempts int
	// Skipped is true when the source had no session to move.
	Skipped bool
}

// Migrator ships session journals between shards over the /v1/cluster
// endpoints. The zero value is not usable; use NewMigrator.
type Migrator struct {
	client *http.Client
	// retries bounds export re-rounds when live traffic keeps landing on
	// the session mid-migration.
	retries int
}

// NewMigrator builds a migrator. A nil client uses http.DefaultClient;
// retries <= 0 defaults to 3.
func NewMigrator(client *http.Client, retries int) *Migrator {
	if client == nil {
		client = http.DefaultClient
	}
	if retries <= 0 {
		retries = 3
	}
	return &Migrator{client: client, retries: retries}
}

// Migrate moves one analyst's session from the node at fromURL to the
// node at toURL (owning shard toShard): export → validate → import →
// verify digest → forget. The session is only ever dropped at the exact
// (seq, digest) that was verified on the target, so a crash or conflict
// at any step leaves the analyst with exactly one authoritative
// timeline (possibly still the old one — the migration is then simply
// incomplete, never split).
func (m *Migrator) Migrate(ctx context.Context, fromURL, toURL, toShard, analyst string) (MoveResult, error) {
	res := MoveResult{Analyst: analyst}
	for attempt := 1; attempt <= m.retries; attempt++ {
		res.Attempts = attempt

		// Export the source journal.
		var jr JournalResponse
		status, err := m.call(ctx, http.MethodGet, fromURL,
			"/v1/cluster/journal?analyst="+urlQueryEscape(analyst), nil, &jr)
		if status == http.StatusNotFound {
			res.Skipped = true // nothing to move
			return res, nil
		}
		if err != nil {
			return res, fmt.Errorf("cluster: export %q from %s: %w", analyst, fromURL, err)
		}
		snap := jr.Snapshot
		if snap.Analyst != analyst {
			return res, fmt.Errorf("cluster: export %q returned journal for %q", analyst, snap.Analyst)
		}
		// Validate the chain locally before shipping it anywhere: a
		// corrupt journal must fail the migration, not poison the target.
		if err := snap.Validate(); err != nil {
			return res, fmt.Errorf("cluster: export %q: %w", analyst, err)
		}

		// Import on the target; its recomputed position must be
		// bit-identical to the export.
		var ir ImportResponse
		status, err = m.call(ctx, http.MethodPost, toURL, "/v1/cluster/import", ImportRequest{Snapshot: snap}, &ir)
		if status == http.StatusConflict {
			// The target already holds a DIFFERENT timeline for this
			// analyst. That is not retryable — dropping either copy would
			// destroy audit history. Surface it for the operator.
			return res, fmt.Errorf("cluster: import %q into %s: %w: %v", analyst, toURL, ErrConflict, err)
		}
		if err != nil {
			return res, fmt.Errorf("cluster: import %q into %s: %w", analyst, toURL, err)
		}
		if ir.Seq != snap.Seq || ir.Digest != snap.Digest {
			return res, fmt.Errorf(
				"cluster: import %q into %s diverged: exported (seq %d, digest %s), target replayed to (seq %d, digest %s)",
				analyst, toURL, snap.Seq, snap.Digest, ir.Seq, ir.Digest)
		}

		// Drop the source copy — only at the verified position. A 409
		// means live traffic advanced the session after our export; the
		// target holds a stale (but valid prefix) copy that the next
		// round's idempotent import extends.
		fr := ForgetRequest{
			Analyst:        analyst,
			Seq:            snap.Seq,
			Digest:         snap.Digest,
			SuccessorShard: toShard,
			SuccessorURL:   toURL,
		}
		var fres ForgetResponse
		status, err = m.call(ctx, http.MethodPost, fromURL, "/v1/cluster/forget", fr, &fres)
		if status == http.StatusConflict {
			continue // re-export the grown journal
		}
		if err != nil {
			return res, fmt.Errorf("cluster: forget %q on %s: %w", analyst, fromURL, err)
		}
		res.Seq = snap.Seq
		res.Digest = snap.Digest
		return res, nil
	}
	return res, fmt.Errorf("cluster: migrating %q: %w after %d attempts (session kept taking writes)",
		analyst, ErrConflict, m.retries)
}

// call performs one JSON round trip, returning the HTTP status (0 on
// transport error) and an error for any non-200.
func (m *Migrator) call(ctx context.Context, method, base, path string, body, out any) (int, error) {
	url := strings.TrimSuffix(base, "/") + path
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return resp.StatusCode, fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	return resp.StatusCode, json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(out)
}

// urlQueryEscape is a minimal query-value escaper for analyst IDs
// (validated printable ASCII; only the URL-special subset needs care).
func urlQueryEscape(s string) string {
	const hex = "0123456789ABCDEF"
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-' || c == '_' || c == '.' || c == '~':
			b.WriteByte(c)
		default:
			b.WriteByte('%')
			b.WriteByte(hex[c>>4])
			b.WriteByte(hex[c&0xf])
		}
	}
	return b.String()
}
