package cluster

import (
	"strings"
	"testing"
)

const twoShardFleet = `{
	"seed": 7,
	"shards": [
		{"id": "shard-a", "primary": "http://127.0.0.1:9001", "replica": "http://127.0.0.1:9002", "epoch": 3},
		{"id": "shard-b", "primary": "http://127.0.0.1:9003"}
	]
}`

func parseTestFleet(t *testing.T, doc string) *Fleet {
	t.Helper()
	f, err := ParseFleet(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseFleet(t *testing.T) {
	f := parseTestFleet(t, twoShardFleet)
	if got := f.ShardIDs(); len(got) != 2 || got[0] != "shard-a" || got[1] != "shard-b" {
		t.Fatalf("ShardIDs = %v", got)
	}
	sp, ok := f.Shard("shard-a")
	if !ok || sp.Replica != "http://127.0.0.1:9002" || sp.Epoch != 3 {
		t.Fatalf("Shard(shard-a) = %+v, %v", sp, ok)
	}
	if _, ok := f.Shard("shard-z"); ok {
		t.Fatal("unknown shard resolved")
	}
}

func TestParseFleetRejects(t *testing.T) {
	cases := map[string]string{
		"no shards":       `{"shards": []}`,
		"unknown field":   `{"shards": [{"id": "a", "primary": "http://h"}], "zone": "us"}`,
		"missing primary": `{"shards": [{"id": "a"}]}`,
		"bad id":          `{"shards": [{"id": "a/b", "primary": "http://h"}]}`,
		"empty id":        `{"shards": [{"id": "", "primary": "http://h"}]}`,
		"duplicate id":    `{"shards": [{"id": "a", "primary": "http://h"}, {"id": "a", "primary": "http://g"}]}`,
		"bad scheme":      `{"shards": [{"id": "a", "primary": "ftp://h"}]}`,
		"url with path":   `{"shards": [{"id": "a", "primary": "http://h/v1"}]}`,
		"bad replica":     `{"shards": [{"id": "a", "primary": "http://h", "replica": "nope"}]}`,
		"negative vnodes": `{"vnodes": -1, "shards": [{"id": "a", "primary": "http://h"}]}`,
		"not json":        `shards: [a]`,
	}
	for name, doc := range cases {
		if _, err := ParseFleet(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted %s", name, doc)
		}
	}
}

// TestFleetOwner: ownership is a pure function of the descriptor —
// parsing the same document twice yields identical placements, and
// every resolved owner is a descriptor shard.
func TestFleetOwner(t *testing.T) {
	f1 := parseTestFleet(t, twoShardFleet)
	f2 := parseTestFleet(t, twoShardFleet)
	for _, analyst := range testKeys(100) {
		o1, err := f1.Owner(analyst)
		if err != nil {
			t.Fatal(err)
		}
		o2, err := f2.Owner(analyst)
		if err != nil {
			t.Fatal(err)
		}
		if o1.ID != o2.ID {
			t.Fatalf("owner(%q) differs across parses: %s vs %s", analyst, o1.ID, o2.ID)
		}
		if _, ok := f1.Shard(o1.ID); !ok {
			t.Fatalf("owner %q not in descriptor", o1.ID)
		}
	}
}
