// Package cluster scales the audited database horizontally: analysts are
// hashed onto N primary/replica shard pairs by a deterministic
// consistent-hash ring, so per-node memory and CPU stay bounded no
// matter how large the analyst population grows. The paper's
// simulatability property (§2.2) is what makes the scale-out shape
// sound: an analyst's entire auditor state is a pure function of their
// session journal, so a session can live on exactly one shard at a time
// and MOVE between shards by shipping and replaying its journal
// (Migrator), with the transcript digest chain proving the move was
// bit-identical before the old owner drops its copy.
//
// The package is deliberately split along the determinism boundary
// enforced by auditlint's detrand analyzer: everything here — the ring,
// the fleet descriptor, the ownership view, the migration protocol — is
// a pure function of its inputs (no clocks, no global randomness, no
// map-ordered output), because routing decisions must agree across the
// router and every node given the same fleet descriptor. Time-dependent
// policy (circuit breaking, retry pacing) lives in cmd/auditrouter,
// outside the audited core.
package cluster

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per shard when the fleet
// descriptor does not set one. 128 vnodes keep the expected max/mean
// load ratio within a few percent for small fleets while the ring stays
// a few KiB.
const DefaultVNodes = 128

// hash64 is the ring's hash: FNV-1a seeded by XOR-ing the seed into the
// offset basis, then finished with a splitmix64-style avalanche so
// short, similar keys (analyst-1, analyst-2, ...) still spread across
// the whole 64-bit space. It is a pure function of (seed, key): every
// consumer of the same fleet descriptor computes identical placements,
// on any platform, in any process.
func hash64(seed uint64, key string) uint64 {
	h := uint64(14695981039346656037) ^ seed
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash  uint64
	shard int // index into Ring.shards
}

// Ring is a consistent-hash ring over shard IDs: vnodes virtual nodes
// per shard, placed by the seeded hash. Owner is a pure function of
// (key, membership, vnodes, seed) — adding or removing one shard moves
// only the keys whose arc changed hands (≈ K/N of them), which is what
// keeps rebalances proportional to the membership change instead of the
// analyst population. A Ring is immutable after construction and safe
// for concurrent use.
type Ring struct {
	seed   uint64
	vnodes int
	shards []string // sorted unique shard IDs
	points []ringPoint
}

// NewRing builds a ring over the given shard IDs. IDs must be non-empty
// and unique; vnodes <= 0 takes DefaultVNodes. The input slice is not
// retained.
func NewRing(shardIDs []string, vnodes int, seed uint64) (*Ring, error) {
	if len(shardIDs) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	shards := append([]string(nil), shardIDs...)
	sort.Strings(shards)
	for i, id := range shards {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty shard id")
		}
		if i > 0 && shards[i-1] == id {
			return nil, fmt.Errorf("cluster: duplicate shard id %q", id)
		}
	}
	r := &Ring{
		seed:   seed,
		vnodes: vnodes,
		shards: shards,
		points: make([]ringPoint, 0, len(shards)*vnodes),
	}
	for si, id := range shards {
		for v := 0; v < vnodes; v++ {
			// Shard IDs are validated (fleet.go) to exclude '#', so the
			// vnode label cannot collide across shards.
			r.points = append(r.points, ringPoint{
				hash:  hash64(seed, id+"#"+strconv.Itoa(v)),
				shard: si,
			})
		}
	}
	// Ties (two vnodes at the same 64-bit point) are broken by shard
	// index — itself derived from the sorted ID order — so placement
	// stays deterministic even across a hash collision.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Seed returns the hash seed the ring was built with.
func (r *Ring) Seed() uint64 { return r.seed }

// VNodes returns the per-shard virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Shards returns the ring's shard IDs in sorted order. The caller must
// not mutate the returned slice.
func (r *Ring) Shards() []string { return r.shards }

// Owner returns the shard ID owning key: the first virtual node at or
// clockwise of the key's hash, wrapping at the top of the space.
func (r *Ring) Owner(key string) string {
	h := hash64(r.seed, key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.shards[r.points[i].shard]
}

// Spread counts how many of the given keys each shard owns — the
// diagnostic behind rebalance planning and the ring-stability tests.
// Every shard appears in the result, zero-count shards included.
func (r *Ring) Spread(keys []string) map[string]int {
	out := make(map[string]int, len(r.shards))
	for _, id := range r.shards {
		out[id] = 0
	}
	for _, k := range keys {
		out[r.Owner(k)]++
	}
	return out
}

// AssignBounded computes a bounded-load assignment of keys to shards
// (consistent hashing with bounded loads): each key goes to the first
// shard clockwise of its hash whose load is still below the capacity
// ceil(c·K/N), so no shard ends up with more than a factor c of the
// mean load even under a skewed key population. The assignment is a
// deterministic function of (keys, ring, c): duplicate keys are
// collapsed and the unique keys are processed in sorted order, so any
// caller — router, node, test — computes the identical plan. c must be
// >= 1; c == 1 packs shards to exactly the ceiling mean.
//
// The per-request Owner path deliberately does NOT use bounded loads:
// request routing must be agreed between router and nodes without
// shared load state. AssignBounded is the PLANNING arm — rebalance
// plans and capacity checks — where the full key population is known.
func (r *Ring) AssignBounded(keys []string, c float64) (map[string]string, error) {
	if c < 1 {
		return nil, fmt.Errorf("cluster: bounded-load factor must be >= 1, got %g", c)
	}
	uniq := append([]string(nil), keys...)
	sort.Strings(uniq)
	n := 0
	for i, k := range uniq {
		if i == 0 || uniq[i-1] != k {
			uniq[n] = k
			n++
		}
	}
	uniq = uniq[:n]
	if n == 0 {
		return map[string]string{}, nil
	}
	capacity := (int(float64(n)*c) + len(r.shards) - 1) / len(r.shards)
	if capacity < 1 {
		capacity = 1
	}
	load := make([]int, len(r.shards))
	out := make(map[string]string, n)
	for _, k := range uniq {
		h := hash64(r.seed, k)
		i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
		placed := false
		for probe := 0; probe < len(r.points); probe++ {
			p := r.points[(i+probe)%len(r.points)]
			if load[p.shard] < capacity {
				load[p.shard]++
				out[k] = r.shards[p.shard]
				placed = true
				break
			}
		}
		if !placed {
			// Unreachable: capacity*len(shards) >= n by construction.
			return nil, fmt.Errorf("cluster: no shard below capacity %d for key %q", capacity, k)
		}
	}
	return out, nil
}
