package core

import (
	"strings"
	"testing"
)

// FuzzParse: the parser must never panic and must produce either a valid
// statement or an error — fuzzing guards the tokenizer edge cases
// (unterminated strings, exotic numbers, deep nesting of AND).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT sum(salary)",
		"SELECT sum(salary) FROM t WHERE age BETWEEN 30 AND 40",
		"SELECT max(x) WHERE zip = '94305' AND age >= 18 AND age <= 65",
		"select AVG ( s ) from t",
		"SELECT min(x) WHERE a = 1e3 AND b = -2.5",
		"SELECT count(x) WHERE s = 'it''s'",
		"SELECT sum(x) WHERE a BETWEEN 1 AND",
		"SELECT sum(x WHERE",
		"'unterminated",
		"", " ", "(", ">=",
		"SELECT sum(x) WHERE a >= 1 trailing garbage",
		"ＳＥＬＥＣＴ sum(x)",
		"SELECT sum(x) WHERE α BETWEEN 0 AND 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		st, err := Parse(sql)
		if err != nil {
			return
		}
		// A successful parse must yield a usable statement.
		if st.Target == "" {
			t.Fatalf("parsed %q into empty target", sql)
		}
		if pred := st.Predicate(); pred == nil {
			t.Fatalf("parsed %q into nil predicate", sql)
		}
		// Statements must round-trip through the grammar's invariants:
		// BETWEEN bounds ordered, which the parser enforces.
		_ = strings.ToUpper(sql)
	})
}
