package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
)

// This file defines the transcript digest: a hash chain over a session's
// committed journal events. Because a simulatable auditor's state is a
// pure function of its decision history (Section 2.2), the digest after
// event k commits the ENTIRE auditor state at that point — two timelines
// with equal digests have bit-identical auditors. Replication uses it as
// the cheap divergence check: a follower that replays a shipped event and
// lands on a different digest than the primary is provably serving a
// different transcript and must quarantine the session rather than keep
// answering from it.

// Digest is one link of the transcript hash chain (SHA-256). The zero
// Digest is the chain origin of an empty journal.
type Digest [sha256.Size]byte

// IsZero reports whether d is the empty-journal origin.
func (d Digest) IsZero() bool { return d == Digest{} }

// Hex renders the digest as lower-case hex.
func (d Digest) Hex() string { return hex.EncodeToString(d[:]) }

// String implements fmt.Stringer (short prefix for logs).
func (d Digest) String() string { return d.Hex()[:12] }

// ParseDigest inverts Hex. The empty string parses to the zero digest,
// so wire formats can omit the field for empty journals.
func ParseDigest(s string) (Digest, error) {
	var d Digest
	if s == "" {
		return d, nil
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return d, fmt.Errorf("core: malformed digest %q: %w", s, err)
	}
	if len(b) != len(d) {
		return d, fmt.Errorf("core: digest %q has %d bytes, want %d", s, len(b), len(d))
	}
	copy(d[:], b)
	return d, nil
}

// Domain-separation tags for the two journal event arms. A decision and
// an update can never collide even if their field encodings overlap.
const (
	chainTagDecision = 0x01
	chainTagUpdate   = 0x02
)

// ChainDecision extends the chain with one committed protocol decision.
// The encoding is canonical: fixed-width big-endian fields, the query set
// length-prefixed, the answer hashed as its IEEE-754 bit pattern so the
// digest distinguishes values JSON round-trips conflate (-0 vs 0).
func ChainDecision(prev Digest, ev DecisionEvent) Digest {
	h := sha256.New()
	h.Write(prev[:])
	var buf [8]byte
	h.Write([]byte{chainTagDecision, byte(ev.Outcome)})
	binary.BigEndian.PutUint64(buf[:], uint64(ev.Query.Kind))
	h.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], uint64(len(ev.Query.Set)))
	h.Write(buf[:])
	for _, i := range ev.Query.Set {
		binary.BigEndian.PutUint64(buf[:], uint64(i))
		h.Write(buf[:])
	}
	binary.BigEndian.PutUint64(buf[:], math.Float64bits(ev.Answer))
	h.Write(buf[:])
	var out Digest
	h.Sum(out[:0])
	return out
}

// ChainUpdate extends the chain with a dataset-update marker at this
// point of the session's timeline.
func ChainUpdate(prev Digest, index int) Digest {
	h := sha256.New()
	h.Write(prev[:])
	var buf [8]byte
	h.Write([]byte{chainTagUpdate})
	binary.BigEndian.PutUint64(buf[:], uint64(index))
	h.Write(buf[:])
	var out Digest
	h.Sum(out[:0])
	return out
}

// ChainAll is a convenience for tests and tools: the digest of a whole
// decision list from the zero origin.
func ChainAll(evs []DecisionEvent) Digest {
	var d Digest
	for _, ev := range evs {
		d = ChainDecision(d, ev)
	}
	return d
}
