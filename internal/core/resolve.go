package core

import (
	"queryaudit/internal/qindex"
	"queryaudit/internal/query"
)

// SQLResolver is the serving-path SQL front-end: ResolveSQL with a
// statement-string memo when the underlying Selector is a
// *qindex.Resolver. A repeated statement — the dominant shape under
// hot-key-skewed production traffic — then costs one cache probe and
// returns a query whose Set is the canonical interned instance, shared
// read-only across every analyst session, so resolution allocates
// nothing and every engine (and the replay/replication machinery
// downstream of the journal) sees identical sets.
//
// Errors are never cached; a malformed or unresolvable statement
// re-parses each time and reports exactly what the uncached path would.
type SQLResolver struct {
	sel Selector
	// res is sel when it is a qindex resolver; nil selects the uncached
	// path (naive scan per statement).
	res *qindex.Resolver
}

// NewSQLResolver wraps a Selector. When sel is a *qindex.Resolver the
// statement memo and set interning are enabled; any other Selector
// (e.g. *dataset.Dataset) resolves uncached.
func NewSQLResolver(sel Selector) *SQLResolver {
	r := &SQLResolver{sel: sel}
	if qr, ok := sel.(*qindex.Resolver); ok {
		r.res = qr
	}
	return r
}

// Selector returns the underlying predicate-resolution path.
func (r *SQLResolver) Selector() Selector { return r.sel }

// Indexed reports whether statements resolve through the qindex cache.
func (r *SQLResolver) Indexed() bool { return r.res != nil }

// Intern canonicalizes an externally built set (the explicit queryset
// path) when interning is enabled; otherwise returns s unchanged.
func (r *SQLResolver) Intern(s query.Set) query.Set {
	if r.res == nil {
		return s
	}
	return r.res.Intern(s)
}

// ResolveSQL parses and resolves one statement for the given sensitive
// attribute, memoized per (sensitive, sql) pair when indexed.
func (r *SQLResolver) ResolveSQL(sensitive, sql string) (query.Query, error) {
	if r.res == nil {
		return ResolveSQL(r.sel, sensitive, sql)
	}
	// The separator cannot appear in an identifier, so the key is
	// collision-free across sensitive-attribute names.
	key := sensitive + "\x00" + sql
	return r.res.CachedQuery(key, func() (query.Query, error) {
		return ResolveSQL(r.sel, sensitive, sql)
	})
}
