package core

import (
	"testing"
	"time"

	"queryaudit/internal/audit/maxminfull"
	"queryaudit/internal/audit/maxprob"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

type nopMCObserver struct{ calls int }

func (o *nopMCObserver) ObserveMC(_, _, _, _ int, _, _ time.Duration) { o.calls++ }

// SetMCWorkers / SetMCObserver must reach every MC-tunable auditor
// exactly once (even when registered for several kinds) and skip the
// exact-disclosure family.
func TestEngineMCForwarding(t *testing.T) {
	const n = 10
	ds := dataset.UniformDuplicateFree(randx.New(1), n, 0, 1)
	eng := NewEngine(ds)

	if got := eng.SetMCWorkers(4); got != 0 {
		t.Fatalf("empty engine reached %d auditors", got)
	}

	mp, err := maxprob.New(n, maxprob.Params{Lambda: 0.45, Gamma: 4, Delta: 0.2, T: 12})
	if err != nil {
		t.Fatal(err)
	}
	eng.Use(mp, query.Max, query.Min) // one auditor, two registrations
	eng.Use(maxminfull.New(n), query.Sum)

	if got := eng.SetMCWorkers(4); got != 1 {
		t.Fatalf("SetMCWorkers reached %d auditors, want 1 (maxprob only, deduplicated)", got)
	}
	obs := &nopMCObserver{}
	if got := eng.SetMCObserver(obs); got != 1 {
		t.Fatalf("SetMCObserver reached %d auditors, want 1", got)
	}
}
