package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"

	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
)

// Parse turns a SQL-ish statement into a Statement. Grammar (case-
// insensitive keywords):
//
//	SELECT agg ( ident ) [FROM ident] [WHERE pred {AND pred}]
//	pred := ident BETWEEN num AND num
//	      | ident = 'string'
//	      | ident >= num
//	      | ident <= num
func Parse(sql string) (Statement, error) {
	toks, err := tokenize(sql)
	if err != nil {
		return Statement{}, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return Statement{}, fmt.Errorf("core: parse %q: %w", sql, err)
	}
	return stmt, nil
}

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokString
	tokSymbol // ( ) = >= <=
)

type token struct {
	kind tokKind
	text string
}

func tokenize(s string) ([]token, error) {
	var toks []token
	i := 0
	rs := []rune(s)
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '(' || r == ')' || r == '=':
			toks = append(toks, token{tokSymbol, string(r)})
			i++
		case r == '>' || r == '<':
			if i+1 < len(rs) && rs[i+1] == '=' {
				toks = append(toks, token{tokSymbol, string(r) + "="})
				i += 2
			} else {
				return nil, fmt.Errorf("unsupported operator %q (only >=, <=, =, BETWEEN)", string(r))
			}
		case r == '\'':
			j := i + 1
			for j < len(rs) && rs[j] != '\'' {
				j++
			}
			if j >= len(rs) {
				return nil, fmt.Errorf("unterminated string literal")
			}
			toks = append(toks, token{tokString, string(rs[i+1 : j])})
			i = j + 1
		case unicode.IsDigit(r) || r == '-' || r == '.':
			j := i + 1
			for j < len(rs) && (unicode.IsDigit(rs[j]) || rs[j] == '.' || rs[j] == 'e' || rs[j] == 'E' || rs[j] == '+' || rs[j] == '-') {
				// Allow scientific notation; '-'/'+' only after e/E.
				if (rs[j] == '-' || rs[j] == '+') && !(rs[j-1] == 'e' || rs[j-1] == 'E') {
					break
				}
				j++
			}
			toks = append(toks, token{tokNumber, string(rs[i:j])})
			i = j
		case unicode.IsLetter(r) || r == '_':
			j := i + 1
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, string(rs[i:j])})
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q", string(r))
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

func (p *parser) expectKeyword(kw string) error {
	t, ok := p.next()
	if !ok || t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("expected %s, got %q", kw, t.text)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	t, ok := p.next()
	if !ok || t.kind != tokSymbol || t.text != sym {
		return fmt.Errorf("expected %q, got %q", sym, t.text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t, ok := p.next()
	if !ok || t.kind != tokIdent {
		return "", fmt.Errorf("expected identifier, got %q", t.text)
	}
	return t.text, nil
}

func (p *parser) number() (float64, error) {
	t, ok := p.next()
	if !ok || t.kind != tokNumber {
		return 0, fmt.Errorf("expected number, got %q", t.text)
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q: %v", t.text, err)
	}
	return v, nil
}

func (p *parser) statement() (Statement, error) {
	var st Statement
	if err := p.expectKeyword("SELECT"); err != nil {
		return st, err
	}
	aggName, err := p.ident()
	if err != nil {
		return st, err
	}
	st.Agg, err = query.ParseKind(aggName)
	if err != nil {
		return st, err
	}
	if err := p.expectSymbol("("); err != nil {
		return st, err
	}
	st.Target, err = p.ident()
	if err != nil {
		return st, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return st, err
	}
	if t, ok := p.peek(); ok && t.kind == tokIdent && strings.EqualFold(t.text, "FROM") {
		p.next()
		if _, err := p.ident(); err != nil {
			return st, err
		}
	}
	if t, ok := p.peek(); ok {
		if t.kind != tokIdent || !strings.EqualFold(t.text, "WHERE") {
			return st, fmt.Errorf("unexpected token %q", t.text)
		}
		p.next()
		for {
			pred, err := p.pred()
			if err != nil {
				return st, err
			}
			st.Preds = append(st.Preds, pred)
			t, ok := p.peek()
			if !ok {
				break
			}
			if t.kind == tokIdent && strings.EqualFold(t.text, "AND") {
				p.next()
				continue
			}
			return st, fmt.Errorf("unexpected token %q", t.text)
		}
	}
	if t, ok := p.peek(); ok {
		return st, fmt.Errorf("trailing input at %q", t.text)
	}
	return st, nil
}

func (p *parser) pred() (dataset.Predicate, error) {
	attr, err := p.ident()
	if err != nil {
		return nil, err
	}
	t, ok := p.next()
	if !ok {
		return nil, fmt.Errorf("incomplete predicate on %q", attr)
	}
	switch {
	case t.kind == tokIdent && strings.EqualFold(t.text, "BETWEEN"):
		lo, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.number()
		if err != nil {
			return nil, err
		}
		if hi < lo {
			return nil, fmt.Errorf("BETWEEN bounds inverted: %g > %g", lo, hi)
		}
		return dataset.RangePred{Attr: attr, Lo: lo, Hi: hi}, nil
	case t.kind == tokSymbol && t.text == "=":
		v, ok := p.next()
		if !ok {
			return nil, fmt.Errorf("missing value after =")
		}
		switch v.kind {
		case tokString:
			return dataset.EqPred{Attr: attr, Val: v.text}, nil
		case tokNumber:
			x, err := strconv.ParseFloat(v.text, 64)
			if err != nil {
				return nil, err
			}
			return dataset.RangePred{Attr: attr, Lo: x, Hi: x}, nil
		default:
			return nil, fmt.Errorf("bad literal %q after =", v.text)
		}
	case t.kind == tokSymbol && t.text == ">=":
		x, err := p.number()
		if err != nil {
			return nil, err
		}
		return dataset.RangePred{Attr: attr, Lo: x, Hi: inf()}, nil
	case t.kind == tokSymbol && t.text == "<=":
		x, err := p.number()
		if err != nil {
			return nil, err
		}
		return dataset.RangePred{Attr: attr, Lo: -inf(), Hi: x}, nil
	default:
		return nil, fmt.Errorf("unsupported predicate operator %q", t.text)
	}
}

// inf is the open-bound sentinel for one-sided comparisons. It must be
// a true infinity, not a large finite number: with a finite sentinel
// like 1e308, a record whose value is ±1.5e308 (or exactly MaxFloat64
// on the <= side) would silently fall OUT of a ">=" / "<=" predicate
// that semantically has no upper/lower bound.
func inf() float64 { return math.Inf(1) }
