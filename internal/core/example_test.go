package core_test

import (
	"fmt"

	"queryaudit/internal/audit/maxminfull"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
)

// Example shows the minimal protocol: open an engine over sensitive
// values, audit sums, watch the complement get denied.
func Example() {
	ds := dataset.FromValues([]float64{10, 20, 30})
	eng := core.NewEngine(ds)
	eng.Use(sumfull.New(ds.N()), query.Sum)

	total, _ := eng.Ask(query.New(query.Sum, 0, 1, 2))
	fmt.Println("total:", total.Answer)

	probe, _ := eng.Ask(query.New(query.Sum, 1, 2))
	fmt.Println("complement denied:", probe.Denied)
	// Output:
	// total: 60
	// complement denied: true
}

// ExampleParse shows the SQL-ish grammar.
func ExampleParse() {
	st, err := core.Parse("SELECT max(salary) FROM t WHERE age BETWEEN 30 AND 40 AND dept = 'eng'")
	if err != nil {
		panic(err)
	}
	fmt.Println(st.Agg, st.Target, len(st.Preds))
	// Output:
	// max salary 2
}

// ExampleSDB runs a statement end to end through predicates.
func ExampleSDB() {
	schema := dataset.Schema{{Name: "age", Kind: dataset.Numeric}}
	rows := []dataset.Record{
		{Public: []dataset.Value{dataset.NumValue(30)}, Sensitive: 1000},
		{Public: []dataset.Value{dataset.NumValue(40)}, Sensitive: 2000},
		{Public: []dataset.Value{dataset.NumValue(50)}, Sensitive: 4000},
	}
	ds := dataset.New(schema, rows)
	eng := core.NewEngine(ds)
	eng.Use(sumfull.New(3), query.Sum)
	sdb := core.NewSDB(eng, "salary")

	resp, _ := sdb.Query("SELECT sum(salary) WHERE age >= 35")
	fmt.Println(resp.Answer)
	// Output:
	// 6000
}

// ExampleEngine_Update shows the paper's update effect: a modification
// retires the old equation and restores query room.
func ExampleEngine_Update() {
	ds := dataset.FromValues([]float64{10, 20, 30})
	eng := core.NewEngine(ds)
	eng.Use(sumfull.New(3), query.Sum)

	eng.Ask(query.New(query.Sum, 0, 1, 2))
	before, _ := eng.Ask(query.New(query.Sum, 0, 1))
	eng.Update(0, 15)
	after, _ := eng.Ask(query.New(query.Sum, 0, 1))

	fmt.Println("before update denied:", before.Denied)
	fmt.Println("after update denied: ", after.Denied)
	// Output:
	// before update denied: true
	// after update denied:  false
}

// ExampleEngine_Prime pins "important" queries so they stay answerable.
func ExampleEngine_Prime() {
	ds := dataset.FromValues([]float64{1, 2, 3, 4})
	eng := core.NewEngine(ds)
	eng.Use(maxminfull.New(4), query.Max, query.Min)

	err := eng.Prime([]query.Query{query.New(query.Max, 0, 1, 2, 3)})
	fmt.Println("primed:", err == nil)

	resp, _ := eng.Ask(query.New(query.Max, 0, 1, 2, 3))
	fmt.Println("still answerable:", !resp.Denied)
	// Output:
	// primed: true
	// still answerable: true
}
