package core

import (
	"strings"
	"testing"

	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
)

// TestParseFullStatement covers the whole grammar.
func TestParseFullStatement(t *testing.T) {
	st, err := Parse("SELECT sum(salary) FROM employees WHERE age BETWEEN 30 AND 40 AND zip = '94305' AND age >= 18")
	if err != nil {
		t.Fatal(err)
	}
	if st.Agg != query.Sum || st.Target != "salary" {
		t.Fatalf("agg/target = %v/%q", st.Agg, st.Target)
	}
	if len(st.Preds) != 3 {
		t.Fatalf("preds = %v", st.Preds)
	}
	r, ok := st.Preds[0].(dataset.RangePred)
	if !ok || r.Attr != "age" || r.Lo != 30 || r.Hi != 40 {
		t.Fatalf("pred0 = %#v", st.Preds[0])
	}
	e, ok := st.Preds[1].(dataset.EqPred)
	if !ok || e.Attr != "zip" || e.Val != "94305" {
		t.Fatalf("pred1 = %#v", st.Preds[1])
	}
}

// TestParseMinimal: no FROM, no WHERE.
func TestParseMinimal(t *testing.T) {
	st, err := Parse("select max(severity)")
	if err != nil {
		t.Fatal(err)
	}
	if st.Agg != query.Max || st.Target != "severity" || len(st.Preds) != 0 {
		t.Fatalf("%+v", st)
	}
}

// TestParseCaseInsensitiveKeywords.
func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("SeLeCt AVG(x) fRoM t wHeRe a >= 1"); err != nil {
		t.Fatal(err)
	}
}

// TestParseNumericEquality: attr = number becomes a point range.
func TestParseNumericEquality(t *testing.T) {
	st, err := Parse("SELECT sum(x) WHERE age = 30")
	if err != nil {
		t.Fatal(err)
	}
	r, ok := st.Preds[0].(dataset.RangePred)
	if !ok || r.Lo != 30 || r.Hi != 30 {
		t.Fatalf("%#v", st.Preds[0])
	}
}

// TestParseErrors: each malformed input yields a descriptive error.
func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"DROP TABLE employees",
		"SELECT mode(x)",
		"SELECT sum x",
		"SELECT sum(x",
		"SELECT sum(x) WHERE",
		"SELECT sum(x) WHERE age BETWEEN 40 AND 30",
		"SELECT sum(x) WHERE age > 5",
		"SELECT sum(x) WHERE name = unquoted",
		"SELECT sum(x) WHERE age BETWEEN 1 AND 2 OR age >= 9",
		"SELECT sum(x) trailing",
		"SELECT sum(x) WHERE s = 'unterminated",
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

// TestSDBEndToEnd: parse → select → audit → answer/deny.
func TestSDBEndToEnd(t *testing.T) {
	schema := dataset.Schema{{Name: "age", Kind: dataset.Numeric}}
	rows := []dataset.Record{
		{Public: []dataset.Value{dataset.NumValue(25)}, Sensitive: 10},
		{Public: []dataset.Value{dataset.NumValue(35)}, Sensitive: 20},
		{Public: []dataset.Value{dataset.NumValue(45)}, Sensitive: 30},
	}
	ds := dataset.New(schema, rows)
	eng := NewEngine(ds)
	eng.Use(sumfull.New(3), query.Sum)
	sdb := NewSDB(eng, "salary")

	resp, err := sdb.Query("SELECT sum(salary) WHERE age >= 20")
	if err != nil || resp.Denied || resp.Answer != 60 {
		t.Fatalf("total: %+v %v", resp, err)
	}
	resp, err = sdb.Query("SELECT sum(salary) WHERE age >= 30")
	if err != nil || !resp.Denied {
		t.Fatalf("complement must be denied: %+v %v", resp, err)
	}
	if _, err := sdb.Query("SELECT sum(bonus) WHERE age >= 30"); err == nil ||
		!strings.Contains(err.Error(), "sensitive attribute") {
		t.Fatalf("wrong target must error, got %v", err)
	}
	if _, err := sdb.Query("SELECT sum(salary) WHERE age >= 99"); err == nil {
		t.Fatal("empty selection must error")
	}
}

// TestParseOneSidedUnbounded: ">=" / "<=" predicates are genuinely
// unbounded on the open side. With the old finite sentinel (1e308), a
// record whose attribute value is larger — MaxFloat64, or the ±Inf a
// loader might produce — silently fell out of the selection.
func TestParseOneSidedUnbounded(t *testing.T) {
	huge := 1.7976931348623157e308 // MaxFloat64 > 1e308
	schema := dataset.Schema{{Name: "age", Kind: dataset.Numeric}}
	rows := []dataset.Record{
		{Public: []dataset.Value{dataset.NumValue(25)}, Sensitive: 1},
		{Public: []dataset.Value{dataset.NumValue(huge)}, Sensitive: 2},
		{Public: []dataset.Value{dataset.NumValue(-huge)}, Sensitive: 4},
	}
	ds := dataset.New(schema, rows)
	for _, tc := range []struct {
		sql  string
		want []int
	}{
		{"SELECT sum(s) WHERE age >= 0", []int{0, 1}},
		{"SELECT sum(s) WHERE age >= 1000000", []int{1}},
		{"SELECT sum(s) WHERE age <= 0", []int{2}},
		{"SELECT sum(s) WHERE age <= 1000000", []int{0, 2}},
	} {
		q, err := ResolveSQL(ds, "s", tc.sql)
		if err != nil {
			t.Fatalf("%s: %v", tc.sql, err)
		}
		want := query.NewSet(tc.want...)
		if !q.Set.Equal(want) {
			t.Errorf("%s: set = %v, want %v", tc.sql, q.Set, want)
		}
	}
}
