package core

import (
	"errors"
	"fmt"

	"queryaudit/internal/audit"
	"queryaudit/internal/query"
)

// This file is the engine half of session replay. The paper's
// simulatability property (Section 2.2) says a safe auditor's state is a
// pure function of the query/decision history — never of the data — so
// the compact log of (query, outcome, released answer) triples emitted
// through Recorder is sufficient to rebuild an auditor stack
// bit-identically with Replay. Non-simulatable auditors (the naive
// answer-dependent baselines) are exactly the ones this cannot work for,
// and Replay refuses them.

// Outcome classifies one committed protocol step for the session log.
type Outcome uint8

const (
	// OutcomeAnswered: the query was answered; Answer holds the exact
	// value passed to the auditor's Record.
	OutcomeAnswered Outcome = iota
	// OutcomeDenied: the auditor refused the query (a normal protocol
	// outcome; no answer was computed).
	OutcomeDenied
	// OutcomeErrored: the auditor's Decide returned an error. Errored
	// queries are still logged because a Decide call may advance internal
	// auditor state (the probabilistic auditors' decision counter) even
	// when it fails, and replay must retrace every Decide to stay exact.
	OutcomeErrored
)

// String names the outcome for snapshots and diagnostics.
func (o Outcome) String() string {
	switch o {
	case OutcomeAnswered:
		return "answered"
	case OutcomeDenied:
		return "denied"
	case OutcomeErrored:
		return "errored"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// ParseOutcome inverts Outcome.String.
func ParseOutcome(s string) (Outcome, error) {
	switch s {
	case "answered":
		return OutcomeAnswered, nil
	case "denied":
		return OutcomeDenied, nil
	case "errored":
		return OutcomeErrored, nil
	default:
		return 0, fmt.Errorf("core: unknown outcome %q", s)
	}
}

// DecisionEvent is one committed protocol step: the query exactly as the
// auditor saw it (Avg queries appear as their equivalent Sum, because
// that is what touches auditor state) and what happened to it.
type DecisionEvent struct {
	Query   query.Query
	Outcome Outcome
	// Answer is the exact released value when Outcome is OutcomeAnswered,
	// 0 otherwise.
	Answer float64
}

// Recorder receives committed protocol events, in order, while the
// engine lock is held — implementations must be fast and must not call
// back into the engine. Queries rejected before reaching an auditor
// (malformed sets, out-of-range indices, unregistered kinds) are not
// reported: they change no auditor state, so replay does not need them.
type Recorder interface {
	RecordDecision(ev DecisionEvent)
}

// SetRecorder installs the session-log hook (nil disables). Install it
// before the engine serves traffic; with a recorder attached, every
// state-changing protocol step is journaled and the engine can later be
// rebuilt exactly by feeding the journal to a fresh engine's Replay.
func (e *Engine) SetRecorder(r Recorder) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rec = r
}

// recordLocked forwards one committed event to the recorder; callers hold mu.
func (e *Engine) recordLocked(q query.Query, o Outcome, ans float64) {
	if e.rec != nil {
		e.rec.RecordDecision(DecisionEvent{Query: q, Outcome: o, Answer: ans})
	}
}

// ErrReplayDiverged reports that a replayed decision did not match the
// logged outcome — the log is corrupt, belongs to a different auditor
// configuration, or the auditor is not simulatable.
var ErrReplayDiverged = errors.New("core: replay diverged from logged outcome")

// Replay retraces one logged protocol step against this engine's
// auditors: Decide runs exactly as it did live (for a simulatable
// auditor it is a deterministic function of auditor state), the decision
// is checked against the logged outcome, and answered queries are
// committed with the LOGGED answer rather than re-evaluating the dataset
// — the dataset may have been updated since, and simulatability
// guarantees the logged answer is the only data the auditor ever saw.
//
// Replay does not fire the protocol Observer (a replayed decision is not
// a new decision) and does not re-journal through the Recorder; install
// the recorder after the journal has been drained.
func (e *Engine) Replay(ev DecisionEvent) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	q := ev.Query
	if len(q.Set) == 0 {
		return fmt.Errorf("%w: logged query has empty set", ErrReplayDiverged)
	}
	for _, i := range q.Set {
		if i < 0 || i >= e.ds.N() {
			return fmt.Errorf("%w: logged index %d out of range", ErrReplayDiverged, i)
		}
	}
	switch q.Kind {
	case query.Count:
		if ev.Outcome != OutcomeAnswered {
			return fmt.Errorf("%w: count logged as %v", ErrReplayDiverged, ev.Outcome)
		}
		e.answered++
		return nil
	case query.Avg:
		// Avg never reaches the journal: the engine logs the inner Sum it
		// routes to, with the exact sum answer the auditor recorded.
		return fmt.Errorf("%w: avg cannot appear in a session log", ErrReplayDiverged)
	}
	if a, ok := e.auditors[q.Kind]; ok {
		d, err := a.Decide(q)
		switch ev.Outcome {
		case OutcomeErrored:
			if err == nil {
				return fmt.Errorf("%w: %v logged errored but decided %v", ErrReplayDiverged, q, d)
			}
			return nil
		case OutcomeDenied:
			if err != nil || d != audit.Deny {
				return fmt.Errorf("%w: %v logged denied but decided %v (err=%v)", ErrReplayDiverged, q, d, err)
			}
			e.denied++
			return nil
		case OutcomeAnswered:
			if err != nil || d != audit.Answer {
				return fmt.Errorf("%w: %v logged answered but decided %v (err=%v)", ErrReplayDiverged, q, d, err)
			}
			a.Record(q, ev.Answer)
			e.answered++
			return nil
		default:
			return fmt.Errorf("%w: unknown outcome %v", ErrReplayDiverged, ev.Outcome)
		}
	}
	if _, ok := e.naive[q.Kind]; ok {
		// A denial by an answer-dependent auditor depends on the true
		// answer, which a denied log entry cannot carry — the paper's
		// point about non-simulatable auditors, restated as a replay
		// impossibility.
		return fmt.Errorf("core: cannot replay %v: answer-dependent auditors are not simulatable", q.Kind)
	}
	return fmt.Errorf("core: replay: %w for kind %v", ErrNoAuditor, q.Kind)
}

// SupportsUpdates reports whether every registered simulatable auditor
// can observe database updates (audit.UpdateObserver) — the same
// condition Update enforces per call, exposed so a session manager can
// check once per deployment instead of once per session.
func (e *Engine) SupportsUpdates() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, a := range e.auditors {
		if _, ok := a.(audit.UpdateObserver); !ok {
			return false
		}
	}
	return true
}

// NoteUpdate notifies every auditor that record i's sensitive value was
// modified, WITHOUT touching the dataset — for deployments where the
// dataset is shared by many engines and the mutation is applied exactly
// once by their coordinator (internal/session.Manager). Like Update, it
// refuses if any registered auditor cannot observe updates.
func (e *Engine) NoteUpdate(i int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if i < 0 || i >= e.ds.N() {
		return fmt.Errorf("core: index %d out of range", i)
	}
	return e.noteUpdateLocked(i)
}

// noteUpdateLocked is the lock-held core of NoteUpdate, shared with Update.
func (e *Engine) noteUpdateLocked(i int) error {
	seen := map[audit.Auditor]bool{}
	for _, a := range e.auditors {
		if seen[a] {
			continue
		}
		seen[a] = true
		if _, ok := a.(audit.UpdateObserver); !ok {
			return fmt.Errorf("core: auditor %q does not support updates", a.Name())
		}
	}
	for a := range seen {
		a.(audit.UpdateObserver).NoteUpdate(i)
	}
	return nil
}
