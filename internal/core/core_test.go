package core

import (
	"errors"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/maxfull"
	"queryaudit/internal/audit/naive"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
)

func newTestEngine() (*Engine, *dataset.Dataset) {
	ds := dataset.FromValues([]float64{10, 20, 30, 40})
	eng := NewEngine(ds)
	eng.Use(sumfull.New(ds.N()), query.Sum)
	eng.Use(maxfull.New(ds.N()), query.Max)
	return eng, ds
}

// TestEngineProtocol: answer, deny, counters.
func TestEngineProtocol(t *testing.T) {
	eng, _ := newTestEngine()
	resp, err := eng.Ask(query.New(query.Sum, 0, 1, 2, 3))
	if err != nil || resp.Denied || resp.Answer != 100 {
		t.Fatalf("total = %+v, %v", resp, err)
	}
	resp, err = eng.Ask(query.New(query.Sum, 1, 2, 3))
	if err != nil || !resp.Denied {
		t.Fatalf("complement should be denied: %+v, %v", resp, err)
	}
	if eng.Answered() != 1 || eng.Denied() != 1 {
		t.Fatalf("counters: answered=%d denied=%d", eng.Answered(), eng.Denied())
	}
}

// TestCountIsFree: counts depend only on public attributes.
func TestCountIsFree(t *testing.T) {
	eng, _ := newTestEngine()
	resp, err := eng.Ask(query.New(query.Count, 0, 2))
	if err != nil || resp.Denied || resp.Answer != 2 {
		t.Fatalf("count = %+v, %v", resp, err)
	}
}

// TestAvgRoutesThroughSum: avg audits as its sum and divides.
func TestAvgRoutesThroughSum(t *testing.T) {
	eng, _ := newTestEngine()
	resp, err := eng.Ask(query.New(query.Avg, 0, 1))
	if err != nil || resp.Denied || resp.Answer != 15 {
		t.Fatalf("avg = %+v, %v", resp, err)
	}
	// The avg consumed the sum budget: avg{0,1} + the total determine
	// sum{2,3} (answered for free, it adds nothing), while sum{1,2,3}
	// would expose x0 — denied.
	resp, _ = eng.Ask(query.New(query.Avg, 0, 1, 2, 3))
	if resp.Denied {
		t.Fatal("whole-table avg should still pass")
	}
	resp, _ = eng.Ask(query.New(query.Sum, 2, 3))
	if resp.Denied {
		t.Fatal("span-dependent sum{2,3} is free information — answered")
	}
	resp, _ = eng.Ask(query.New(query.Sum, 1, 2, 3))
	if !resp.Denied {
		t.Fatal("sum{1,2,3} must be denied after avg{0,1} and avg{all}")
	}
}

// TestNoAuditorRegistered: unsupported kinds are refused with an error.
func TestNoAuditorRegistered(t *testing.T) {
	eng, _ := newTestEngine()
	_, err := eng.Ask(query.New(query.Median, 0, 1))
	if !errors.Is(err, ErrNoAuditor) {
		t.Fatalf("got %v, want ErrNoAuditor", err)
	}
}

// TestUpdateRefusedWithoutSupport: an auditor lacking update support
// blocks engine updates (soundness guard).
func TestUpdateRefusedWithoutSupport(t *testing.T) {
	ds := dataset.FromValues([]float64{1, 2})
	eng := NewEngine(ds)
	eng.Use(naive.DenyAll{}, query.Sum)
	if err := eng.Update(0, 5); err == nil {
		t.Fatal("update must be refused when an auditor cannot observe it")
	}
}

// TestUpdateFlow: updates modify data and notify auditors.
func TestUpdateFlow(t *testing.T) {
	eng, ds := newTestEngine()
	if _, err := eng.Ask(query.New(query.Sum, 0, 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Update(0, 15); err != nil {
		t.Fatal(err)
	}
	if ds.Sensitive(0) != 15 || ds.Version(0) != 1 {
		t.Fatal("dataset not updated")
	}
	// sum{1,2,3} stays denied: with the old total it reveals x0's OLD
	// value, and the paper's criterion protects past values too.
	resp, err := eng.Ask(query.New(query.Sum, 1, 2, 3))
	if err != nil || !resp.Denied {
		t.Fatalf("past-value reveal must stay denied: %+v %v", resp, err)
	}
	// But sum{0,1} — which references the fresh version of x0 — is
	// answerable now, exactly the paper's update example.
	resp, err = eng.Ask(query.New(query.Sum, 0, 1))
	if err != nil || resp.Denied {
		t.Fatalf("fresh-version query should pass: %+v %v", resp, err)
	}
}

// TestAnswerDependentPath: naive auditors receive the true answer.
func TestAnswerDependentPath(t *testing.T) {
	ds := dataset.FromValues([]float64{1, 5, 3})
	eng := NewEngine(ds)
	eng.UseAnswerDependent(naive.NewMax(ds.N()), query.Max)
	resp, err := eng.Ask(query.New(query.Max, 0, 1, 2))
	if err != nil || resp.Denied || resp.Answer != 5 {
		t.Fatalf("naive max = %+v, %v", resp, err)
	}
	// Probe without the witness: naive denies (and thereby leaks).
	resp, err = eng.Ask(query.New(query.Max, 0, 2))
	if err != nil || !resp.Denied {
		t.Fatalf("naive probe should be denied: %+v, %v", resp, err)
	}
}

// TestValidation: empty and out-of-range sets.
func TestValidation(t *testing.T) {
	eng, _ := newTestEngine()
	if _, err := eng.Ask(query.Query{Kind: query.Sum}); err == nil {
		t.Fatal("empty set must error")
	}
	if _, err := eng.Ask(query.New(query.Sum, 0, 99)); err == nil {
		t.Fatal("out-of-range index must error")
	}
}

// TestPrime: primed "important" queries stay answerable forever
// (Section 7's remedy), and priming fails loudly on an unsafe set.
func TestPrime(t *testing.T) {
	eng, _ := newTestEngine()
	important := []query.Query{
		query.New(query.Sum, 0, 1, 2, 3), // the "total cancer patients" query
		query.New(query.Sum, 0, 1),
	}
	if err := eng.Prime(important); err != nil {
		t.Fatal(err)
	}
	// Re-asking primed queries is always answered (span-dependent).
	for _, q := range important {
		resp, err := eng.Ask(q)
		if err != nil || resp.Denied {
			t.Fatalf("primed query %v denied later: %+v %v", q, resp, err)
		}
	}
	// A mutually unsafe prime set is rejected.
	eng2, _ := newTestEngine()
	bad := []query.Query{
		query.New(query.Sum, 0, 1, 2, 3),
		query.New(query.Sum, 1, 2, 3), // would expose x0
	}
	if err := eng2.Prime(bad); err == nil {
		t.Fatal("unsafe prime set must fail")
	}
}

// simulatabilityProbe wraps an auditor and fails the test if Record is
// called before Decide, or Decide is called twice without Record —
// guarding the engine's protocol ordering.
type simulatabilityProbe struct {
	t       *testing.T
	inner   audit.Auditor
	pending bool
}

func (p *simulatabilityProbe) Name() string { return "probe" }

func (p *simulatabilityProbe) Decide(q query.Query) (audit.Decision, error) {
	d, err := p.inner.Decide(q)
	p.pending = d == audit.Answer && err == nil
	return d, err
}

func (p *simulatabilityProbe) Record(q query.Query, ans float64) {
	if !p.pending {
		p.t.Fatal("Record without a positive Decide")
	}
	p.pending = false
	p.inner.Record(q, ans)
}

// TestEngineOrdering: the engine always decides before evaluating.
func TestEngineOrdering(t *testing.T) {
	ds := dataset.FromValues([]float64{1, 2, 3})
	eng := NewEngine(ds)
	probe := &simulatabilityProbe{t: t, inner: sumfull.New(3)}
	eng.Use(probe, query.Sum)
	for _, q := range []query.Query{
		query.New(query.Sum, 0, 1, 2),
		query.New(query.Sum, 0, 1),
		query.New(query.Sum, 2), // denied
	} {
		if _, err := eng.Ask(q); err != nil {
			t.Fatal(err)
		}
	}
}
