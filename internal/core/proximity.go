package core

import (
	"math"

	"queryaudit/internal/audit"
)

// Proximity condenses a knowledge snapshot into the distance-to-
// compromise figures the retrospective pipeline (internal/auditlog)
// reports per analyst: how many records the answered history already
// pins exactly (classical compromise, §2), how many it confines to a
// finite interval, and how tight the tightest such interval is. A
// history with pinned records IS a compromise; a history whose minimum
// interval width is shrinking is approaching one.
type Proximity struct {
	// Records is the dataset size the auditor reports over.
	Records int `json:"records"`
	// Pinned counts records whose value is exactly determined.
	Pinned int `json:"pinned"`
	// Bounded counts records confined to a finite interval on both
	// sides but not pinned.
	Bounded int `json:"bounded"`
	// MinWidth is the width of the tightest finite, non-pinned interval
	// (0 when no record is bounded).
	MinWidth float64 `json:"min_width"`
	// MeanWidth is the mean width over the bounded records (0 when no
	// record is bounded).
	MeanWidth float64 `json:"mean_width"`
	// Score orders analysts by danger in [0,1]: 1 when any record is
	// pinned, 1/(1+MinWidth) when records are bounded (tighter bounds
	// approach 1), 0 when the history exposes no finite interval.
	Score float64 `json:"score"`
}

// ProximityOf folds one auditor's per-element knowledge into its
// compromise-proximity summary.
func ProximityOf(ks []audit.ElementKnowledge) Proximity {
	p := Proximity{Records: len(ks)}
	var widthSum float64
	for _, k := range ks {
		if k.Pinned {
			p.Pinned++
			continue
		}
		w := k.Upper - k.Lower
		if math.IsInf(w, 0) || math.IsNaN(w) || w < 0 {
			continue
		}
		if p.Bounded == 0 || w < p.MinWidth {
			p.MinWidth = w
		}
		p.Bounded++
		widthSum += w
	}
	if p.Bounded > 0 {
		p.MeanWidth = widthSum / float64(p.Bounded)
	}
	switch {
	case p.Pinned > 0:
		p.Score = 1
	case p.Bounded > 0:
		p.Score = 1 / (1 + p.MinWidth)
	}
	return p
}

// KnowledgeProximity reports, per reporting auditor (by name), how close
// the answered history stands to compromising each record — the whole
// report built under one engine lock acquisition, like
// KnowledgeSnapshot, so it reflects a single instant of the protocol.
func (e *Engine) KnowledgeProximity() map[string]Proximity {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := map[string]Proximity{}
	seen := map[audit.Auditor]bool{}
	for _, a := range e.auditors {
		if seen[a] {
			continue
		}
		seen[a] = true
		kr, ok := a.(audit.KnowledgeReporter)
		if !ok {
			continue
		}
		out[a.Name()] = ProximityOf(kr.Knowledge())
	}
	return out
}
