package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
)

// slowSeqAuditor answers everything, sleeps inside Decide to widen race
// windows, and records the order of protocol events. The engine lock
// serializes all calls, so the events slice needs no extra locking —
// exactly the discipline under test (run with -race).
type slowSeqAuditor struct {
	delay  time.Duration
	events []string
}

func (a *slowSeqAuditor) Name() string { return "slow-seq" }

func (a *slowSeqAuditor) Decide(q query.Query) (audit.Decision, error) {
	a.events = append(a.events, fmt.Sprintf("decide:%v", []int(q.Set)))
	time.Sleep(a.delay)
	return audit.Answer, nil
}

func (a *slowSeqAuditor) Record(q query.Query, _ float64) {
	a.events = append(a.events, fmt.Sprintf("record:%v", []int(q.Set)))
}

// TestPrimeHoldsLockAcrossList: a user query issued while Prime is
// mid-list must not interleave between two primed queries — the lock is
// held across the whole list.
func TestPrimeHoldsLockAcrossList(t *testing.T) {
	ds := dataset.FromValues([]float64{1, 2, 3, 4})
	eng := NewEngine(ds)
	aud := &slowSeqAuditor{delay: 30 * time.Millisecond}
	eng.Use(aud, query.Sum)

	primeStarted := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(primeStarted)
		done <- eng.Prime([]query.Query{
			query.New(query.Sum, 0, 1, 2, 3),
			query.New(query.Sum, 0, 1),
		})
	}()
	<-primeStarted
	time.Sleep(10 * time.Millisecond) // let Prime take the lock and enter query 1
	if _, err := eng.Ask(query.New(query.Sum, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// The user query's decide must come after BOTH primed decides.
	if len(aud.events) != 6 {
		t.Fatalf("events = %v, want 3 decide/record pairs", aud.events)
	}
	userPos := -1
	for i, ev := range aud.events {
		if ev == "decide:[2 3]" {
			userPos = i
		}
	}
	if userPos != 4 {
		t.Fatalf("user decide interleaved with prime: %v", aud.events)
	}
}

// TestStatsSnapshotConsistent: hammer Ask from many goroutines while
// reading Stats; the pair must always satisfy answered+denied ==
// (queries completed so far), i.e. never a torn read where one counter
// moved and the other hasn't. With separate Answered()/Denied() calls
// this invariant is unverifiable; Stats reads both under one lock.
func TestStatsSnapshotConsistent(t *testing.T) {
	ds := dataset.FromValues(make([]float64, 32))
	eng := NewEngine(ds)
	eng.Use(sumfull.New(32), query.Sum)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				lo := (g*7 + i) % 24
				eng.Ask(query.New(query.Sum, lo, lo+1, lo+2, lo+3))
			}
		}(g)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := eng.Stats()
			if st.Answered < 0 || st.Denied < 0 || st.Answered+st.Denied > 800 {
				t.Errorf("impossible snapshot: %+v", st)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
	st := eng.Stats()
	if st.Answered+st.Denied != 800 {
		t.Fatalf("final counters: %+v, want answered+denied == 800", st)
	}
}

// TestKnowledgeSnapshotConcurrent: reading knowledge while queries run
// must be race-free (the old path called auditor.Knowledge() without
// the engine lock; run with -race to see it).
func TestKnowledgeSnapshotConcurrent(t *testing.T) {
	ds := dataset.FromValues(make([]float64, 24))
	eng := NewEngine(ds)
	eng.Use(sumfull.New(24), query.Sum)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			lo := i % 20
			eng.Ask(query.New(query.Sum, lo, lo+1, lo+2))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			snap := eng.KnowledgeSnapshot()
			if ks, ok := snap["sum-full-disclosure"]; ok && len(ks) != 24 {
				t.Errorf("knowledge entries = %d, want 24", len(ks))
				return
			}
		}
	}()
	wg.Wait()
}

// TestObserverEvents: the instrumentation hook sees every decided query
// and prime outcome, and runs under the engine lock (appends below are
// unsynchronized on purpose; -race verifies the serialization).
type recordingObserver struct {
	decisions []string
	primes    []string
}

func (o *recordingObserver) ObserveDecision(k query.Kind, denied bool, _ time.Duration) {
	o.decisions = append(o.decisions, fmt.Sprintf("%v:%v", k, denied))
}

func (o *recordingObserver) ObservePrime(committed int, ok bool) {
	o.primes = append(o.primes, fmt.Sprintf("%d:%v", committed, ok))
}

func TestObserverEvents(t *testing.T) {
	eng, _ := newTestEngine()
	obs := &recordingObserver{}
	eng.SetObserver(obs)
	eng.Ask(query.New(query.Sum, 0, 1, 2, 3)) // answered
	eng.Ask(query.New(query.Sum, 1, 2, 3))    // denied (complement)
	eng.Ask(query.New(query.Avg, 0, 1))       // one event, not two (Avg→Sum recursion)
	if err := eng.Prime([]query.Query{query.New(query.Max, 0, 1)}); err != nil {
		t.Fatal(err)
	}
	want := []string{"sum:false", "sum:true", "avg:false", "max:false"}
	if len(obs.decisions) != len(want) {
		t.Fatalf("decisions = %v, want %v", obs.decisions, want)
	}
	for i := range want {
		if obs.decisions[i] != want[i] {
			t.Fatalf("decision %d = %q, want %q", i, obs.decisions[i], want[i])
		}
	}
	if len(obs.primes) != 1 || obs.primes[0] != "1:true" {
		t.Fatalf("primes = %v, want [1:true]", obs.primes)
	}
}
