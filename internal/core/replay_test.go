package core

import (
	"errors"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/maxminfull"
	"queryaudit/internal/audit/naive"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
)

// journal collects DecisionEvents for tests.
type journal struct {
	events []DecisionEvent
}

func (j *journal) RecordDecision(ev DecisionEvent) { j.events = append(j.events, ev) }

func fullSpec(t *testing.T, ds *dataset.Dataset) *EngineSpec {
	t.Helper()
	sp := NewEngineSpec(ds)
	n := ds.N()
	sp.Register(func() (audit.Auditor, error) { return sumfull.New(n), nil }, query.Sum)
	sp.Register(func() (audit.Auditor, error) { return maxminfull.New(n), nil }, query.Max, query.Min)
	return sp
}

// TestEngineSpecBuildIsolated: two engines from one spec hold independent
// auditor instances — history on one never leaks into the other.
func TestEngineSpecBuildIsolated(t *testing.T) {
	ds := dataset.FromValues([]float64{1, 2, 3, 4, 5})
	sp := fullSpec(t, ds)
	a, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust a's sum budget: total then a complement missing one record
	// must be denied on a...
	all := query.New(query.Sum, 0, 1, 2, 3, 4)
	rest := query.New(query.Sum, 1, 2, 3, 4)
	if resp, err := a.Ask(all); err != nil || resp.Denied {
		t.Fatalf("total on a: %+v %v", resp, err)
	}
	if resp, err := a.Ask(rest); err != nil || !resp.Denied {
		t.Fatalf("complement on a should be denied: %+v %v", resp, err)
	}
	// ...while b, which never saw the total, answers the same complement.
	if resp, err := b.Ask(rest); err != nil || resp.Denied {
		t.Fatalf("complement on fresh b should be answered: %+v %v", resp, err)
	}
}

// TestReplayRebuildsEngine: journal a mixed answered/denied game, replay
// it into a fresh engine from the same spec, and check the rebuilt
// engine agrees with the original on counters and on the next decision.
func TestReplayRebuildsEngine(t *testing.T) {
	ds := dataset.FromValues([]float64{3, 1, 4, 1.5, 9, 2.6})
	sp := fullSpec(t, ds)
	live, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	j := &journal{}
	live.SetRecorder(j)

	game := []query.Query{
		query.New(query.Sum, 0, 1, 2, 3, 4, 5),
		query.New(query.Sum, 1, 2, 3, 4, 5), // denied: complement of the total
		query.New(query.Max, 0, 1, 2),
		query.New(query.Count, 2, 3),
		query.New(query.Avg, 0, 1), // journaled as its inner sum
		query.New(query.Min, 3, 4, 5),
	}
	for _, q := range game {
		if _, err := live.Ask(q); err != nil {
			t.Fatalf("ask %v: %v", q, err)
		}
	}
	if len(j.events) != len(game) {
		t.Fatalf("journaled %d events, want %d", len(j.events), len(game))
	}
	for _, ev := range j.events {
		if ev.Query.Kind == query.Avg {
			t.Fatalf("avg leaked into the journal: %+v", ev)
		}
	}

	rebuilt, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range j.events {
		if err := rebuilt.Replay(ev); err != nil {
			t.Fatalf("replay event %d (%+v): %v", i, ev, err)
		}
	}
	ls, rs := live.Stats(), rebuilt.Stats()
	if ls.Answered != rs.Answered || ls.Denied != rs.Denied {
		t.Fatalf("stats diverge: live %+v rebuilt %+v", ls, rs)
	}
	// Both engines must agree on a decision that depends on the whole
	// history (another complement probe).
	probe := query.New(query.Sum, 0, 1)
	lr, err1 := live.Ask(probe)
	rr, err2 := rebuilt.Ask(probe)
	if err1 != nil || err2 != nil {
		t.Fatalf("probe errors: %v %v", err1, err2)
	}
	if lr.Denied != rr.Denied || lr.Answer != rr.Answer {
		t.Fatalf("probe diverged: live %+v rebuilt %+v", lr, rr)
	}
}

// TestReplayUsesLoggedAnswer: replay commits the journaled answer, never
// re-evaluating a dataset that may have changed since.
func TestReplayUsesLoggedAnswer(t *testing.T) {
	ds := dataset.FromValues([]float64{10, 20})
	sp := fullSpec(t, ds)
	live, _ := sp.Build()
	j := &journal{}
	live.SetRecorder(j)
	if _, err := live.Ask(query.New(query.Sum, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if j.events[0].Answer != 30 {
		t.Fatalf("logged answer %v, want 30", j.events[0].Answer)
	}
	// Mutate the dataset out from under the log, then replay: the rebuilt
	// auditor must hold the ORIGINAL answer 30 (the only value the live
	// auditor ever saw), which pins sum{0,1}=30 — so sum{0} would release
	// record 1 exactly and must be denied, same as on the live engine.
	ds.SetSensitive(0, 1000)
	rebuilt, _ := sp.Build()
	if err := rebuilt.Replay(j.events[0]); err != nil {
		t.Fatal(err)
	}
	resp, err := rebuilt.Ask(query.New(query.Sum, 0))
	if err != nil || !resp.Denied {
		t.Fatalf("single record after replayed total should be denied: %+v %v", resp, err)
	}
}

// TestReplayDivergence: a tampered log (denied flipped to answered) is
// detected as ErrReplayDiverged.
func TestReplayDivergence(t *testing.T) {
	ds := dataset.FromValues([]float64{1, 2, 3})
	sp := fullSpec(t, ds)
	live, _ := sp.Build()
	j := &journal{}
	live.SetRecorder(j)
	if _, err := live.Ask(query.New(query.Sum, 0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := live.Ask(query.New(query.Sum, 1, 2)); err != nil {
		t.Fatal(err)
	}
	rebuilt, _ := sp.Build()
	if err := rebuilt.Replay(j.events[0]); err != nil {
		t.Fatal(err)
	}
	tampered := j.events[1]
	if tampered.Outcome != OutcomeDenied {
		t.Fatalf("setup: complement should have been denied, got %+v", tampered)
	}
	tampered.Outcome = OutcomeAnswered
	tampered.Answer = 5
	if err := rebuilt.Replay(tampered); !errors.Is(err, ErrReplayDiverged) {
		t.Fatalf("tampered outcome: got %v, want ErrReplayDiverged", err)
	}
}

// TestReplayRejectsBadEvents: avg events, empty sets, out-of-range
// indices and naive auditors are all refused.
func TestReplayRejectsBadEvents(t *testing.T) {
	ds := dataset.FromValues([]float64{1, 2, 3})
	eng, _ := fullSpec(t, ds).Build()
	cases := []DecisionEvent{
		{Query: query.New(query.Avg, 0, 1), Outcome: OutcomeAnswered, Answer: 1.5},
		{Query: query.Query{Kind: query.Sum}, Outcome: OutcomeAnswered},
		{Query: query.New(query.Sum, 0, 99), Outcome: OutcomeAnswered, Answer: 1},
	}
	for _, ev := range cases {
		if err := eng.Replay(ev); !errors.Is(err, ErrReplayDiverged) {
			t.Fatalf("%+v: got %v, want ErrReplayDiverged", ev, err)
		}
	}
	// Count logged as denied can only come from a corrupt log.
	if err := eng.Replay(DecisionEvent{Query: query.New(query.Count, 0), Outcome: OutcomeDenied}); !errors.Is(err, ErrReplayDiverged) {
		t.Fatalf("denied count: want ErrReplayDiverged, got %v", err)
	}

	naiveEng := NewEngine(ds)
	naiveEng.UseAnswerDependent(naive.NewMax(ds.N()), query.Max)
	err := naiveEng.Replay(DecisionEvent{Query: query.New(query.Max, 0, 1), Outcome: OutcomeAnswered, Answer: 2})
	if err == nil {
		t.Fatal("naive replay should be refused")
	}
}

// TestSupportsUpdatesAndNoteUpdate: the full stack supports updates;
// NoteUpdate retires constraints exactly like Update without touching
// the dataset.
func TestSupportsUpdatesAndNoteUpdate(t *testing.T) {
	ds := dataset.FromValues([]float64{1, 2, 3, 4})
	sp := fullSpec(t, ds)
	eng, _ := sp.Build()
	if !eng.SupportsUpdates() {
		t.Fatal("full stack should support updates")
	}
	// Pin the total, then retire it via NoteUpdate: the complement that
	// was unsafe becomes answerable because the constraint is stale.
	if resp, err := eng.Ask(query.New(query.Sum, 0, 1, 2, 3)); err != nil || resp.Denied {
		t.Fatalf("total: %+v %v", resp, err)
	}
	if resp, err := eng.Ask(query.New(query.Sum, 1, 2, 3)); err != nil || !resp.Denied {
		t.Fatalf("complement should be denied pre-update: %+v %v", resp, err)
	}
	mods := ds.Modifications()
	if err := eng.NoteUpdate(0); err != nil {
		t.Fatal(err)
	}
	if ds.Modifications() != mods {
		t.Fatal("NoteUpdate must not touch the dataset")
	}
	// The complement stays denied (it would reveal record 0's OLD value;
	// past values are protected too), but a query referencing the fresh
	// version of record 0 is answerable — the paper's update example.
	if resp, err := eng.Ask(query.New(query.Sum, 1, 2, 3)); err != nil || !resp.Denied {
		t.Fatalf("past-value reveal must stay denied: %+v %v", resp, err)
	}
	if resp, err := eng.Ask(query.New(query.Sum, 0, 1)); err != nil || resp.Denied {
		t.Fatalf("fresh-version query should pass: %+v %v", resp, err)
	}
	if err := eng.NoteUpdate(-1); err == nil {
		t.Fatal("out-of-range NoteUpdate should fail")
	}
}

// TestOutcomeRoundTrip: String/ParseOutcome invert each other.
func TestOutcomeRoundTrip(t *testing.T) {
	for _, o := range []Outcome{OutcomeAnswered, OutcomeDenied, OutcomeErrored} {
		got, err := ParseOutcome(o.String())
		if err != nil || got != o {
			t.Fatalf("round trip %v: %v %v", o, got, err)
		}
	}
	if _, err := ParseOutcome("bogus"); err == nil {
		t.Fatal("bogus outcome should not parse")
	}
	if s := Outcome(99).String(); s != "Outcome(99)" {
		t.Fatalf("unknown outcome string %q", s)
	}
}
