// Package core ties the substrate together into the statistical database
// of Section 1: a dataset with public attributes and one sensitive
// attribute, an online auditor guarding it, and a small SQL-ish query
// surface ("SELECT sum(salary) FROM t WHERE zip = '94305'").
//
// The Engine enforces the simulatability protocol: for a simulatable
// auditor the decision is taken *before* the true answer is computed, so
// no code path can leak the answer into the denial; for the naive
// answer-dependent baselines the engine deliberately computes the answer
// first, reproducing the unsafe behaviour the paper's Section 2.2 example
// warns about.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"queryaudit/internal/audit"
	"queryaudit/internal/dataset"
	"queryaudit/internal/mcpar"
	"queryaudit/internal/query"
)

// Response is the outcome of one audited query.
type Response struct {
	// Denied reports whether the auditor refused the query.
	Denied bool
	// Answer is the exact aggregate when Denied is false.
	Answer float64
}

// ErrNoAuditor is returned when the engine has no auditor for the query's
// aggregate kind.
var ErrNoAuditor = errors.New("core: no auditor registered for this aggregate")

// Engine runs the online auditing protocol over one dataset. Auditors
// are registered per aggregate kind: a deployment audits sums with the
// sum auditor and max/min bags with the joint max∧min auditor.
//
// Register Max and Min with ONE joint auditor (maxminfull), never with
// two independent ones: equal max and min answers pin their shared
// element, an inference neither single-kind auditor can see. The
// experiments package's CrossAggregate measurement demonstrates the
// resulting breach. (Sum information composing with max/min is the
// NP-hard offline problem — see internal/audit/offline.AuditSumMax — and
// no online auditor for the mix is known; the paper treats the classes
// separately, as does this engine.)
//
// # Locking discipline
//
// One mutex (mu) guards ALL mutable engine state: the auditor
// registries, every auditor's internal state (auditors are not
// goroutine-safe; see audit.Auditor), the protocol counters, and the
// dataset's sensitive values and modification count. Every exported
// method acquires mu for its whole duration, so each is an atomic step
// of the protocol:
//
//   - Ask runs decide/evaluate/record as one critical section.
//   - Prime holds the lock across the ENTIRE list, so user queries
//     cannot interleave mid-prime and spuriously deny a must-have query.
//   - Stats and KnowledgeSnapshot read counters and auditor knowledge
//     in one acquisition — no torn snapshots.
//
// Auditor-returned state (audit.KnowledgeReporter, Log.Answered, the
// persist package's savers) must only be touched through the engine's
// snapshot methods once the engine is serving concurrent traffic;
// reaching around the engine to an auditor races with Ask.
type Engine struct {
	// mu serializes the protocol: auditors are stateful and their
	// Decide/Record pairs must not interleave across requests.
	mu       sync.Mutex
	ds       *dataset.Dataset
	auditors map[query.Kind]audit.Auditor         // auditlint:guardedby(mu)
	naive    map[query.Kind]audit.AnswerDependent // auditlint:guardedby(mu)
	obs      Observer                             // auditlint:guardedby(mu)
	// rec journals committed protocol steps for session replay (see
	// replay.go); nil disables journaling.
	rec Recorder // auditlint:guardedby(mu)
	// stats
	answered int // auditlint:guardedby(mu)
	denied   int // auditlint:guardedby(mu)
}

// Observer receives engine protocol events for instrumentation. The
// callbacks run while the engine lock is held, so implementations must
// be fast and lock-free (atomic counters / histograms) and must not call
// back into the engine.
type Observer interface {
	// ObserveDecision reports one completed top-level query: its
	// aggregate kind, whether it was denied, and the wall-clock time the
	// decide/evaluate/record critical section took. Queries that fail
	// with an error (malformed, unsupported) are not reported.
	ObserveDecision(kind query.Kind, denied bool, elapsed time.Duration)
	// ObservePrime reports one Prime call: how many queries were
	// committed before it stopped, and whether the whole list succeeded.
	ObservePrime(committed int, ok bool)
}

// NewEngine returns an engine over ds with no auditors registered.
func NewEngine(ds *dataset.Dataset) *Engine {
	return &Engine{
		ds:       ds,
		auditors: make(map[query.Kind]audit.Auditor),
		naive:    make(map[query.Kind]audit.AnswerDependent),
	}
}

// Dataset returns the underlying dataset. The dataset itself is not
// goroutine-safe: while the engine serves concurrent traffic, read its
// mutable fields (sensitive values, modification count) through
// engine methods (Stats, Update) rather than directly.
func (e *Engine) Dataset() *dataset.Dataset { return e.ds }

// Auditor returns the simulatable auditor registered for kind, if any.
// The returned auditor's state is guarded by the engine lock — do not
// call its methods while the engine serves concurrent traffic (use
// KnowledgeSnapshot for exposure reports).
func (e *Engine) Auditor(k query.Kind) (audit.Auditor, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	a, ok := e.auditors[k]
	return a, ok
}

// Use registers a simulatable auditor for the given aggregate kinds.
func (e *Engine) Use(a audit.Auditor, kinds ...query.Kind) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, k := range kinds {
		e.auditors[k] = a
	}
}

// UseAnswerDependent registers a non-simulatable auditor (baselines
// only).
func (e *Engine) UseAnswerDependent(a audit.AnswerDependent, kinds ...query.Kind) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, k := range kinds {
		e.naive[k] = a
	}
}

// SetObserver installs the instrumentation hook (nil disables). See
// Observer for the constraints on implementations.
func (e *Engine) SetObserver(o Observer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.obs = o
}

// MCTunable is satisfied by auditors whose decisions run on the shared
// parallel Monte Carlo engine (internal/mcpar): the probabilistic
// auditors expose a worker-pool knob and a per-decision observer hook.
type MCTunable interface {
	// SetWorkers bounds the Monte Carlo pool per decision
	// (0 = GOMAXPROCS, 1 = sequential).
	SetWorkers(n int)
	// SetMCObserver installs the per-decision accounting hook (nil
	// disables). metrics.MCCollector implements mcpar.Observer.
	SetMCObserver(o mcpar.Observer)
}

// SetMCWorkers sets the Monte Carlo pool size on every registered auditor
// that supports it and reports how many auditors it reached. Non-Monte-
// Carlo auditors (the full-disclosure family, the naive baselines) are
// unaffected.
func (e *Engine) SetMCWorkers(n int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.forEachMCTunableLocked(func(t MCTunable) { t.SetWorkers(n) })
}

// SetMCObserver installs the Monte Carlo accounting observer on every
// registered auditor that supports it and reports how many it reached.
func (e *Engine) SetMCObserver(o mcpar.Observer) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.forEachMCTunableLocked(func(t MCTunable) { t.SetMCObserver(o) })
}

// MCSchedulable is satisfied by auditors whose decisions can share a
// cross-decision assist pool (mcpar.Scheduler). It is separate from
// MCTunable so auditors may adopt the scheduler incrementally.
type MCSchedulable interface {
	// SetScheduler points the auditor at a shared assist pool (nil
	// selects the process-wide default).
	SetScheduler(s *mcpar.Scheduler)
}

// SetMCScheduler installs the shared decision scheduler on every
// registered auditor that supports it and reports how many it reached.
// All of a deployment's engines should share ONE scheduler: that is what
// bounds the process's concurrent sample evaluation at the pool size
// regardless of how many analyst sessions are deciding at once.
func (e *Engine) SetMCScheduler(s *mcpar.Scheduler) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	seen := map[audit.Auditor]bool{}
	reached := 0
	for _, a := range e.auditors {
		if seen[a] {
			continue
		}
		seen[a] = true
		if t, ok := a.(MCSchedulable); ok {
			t.SetScheduler(s)
			reached++
		}
	}
	return reached
}

// forEachMCTunableLocked applies f once per distinct MC-tunable auditor;
// callers hold mu.
func (e *Engine) forEachMCTunableLocked(f func(MCTunable)) int {
	seen := map[audit.Auditor]bool{}
	reached := 0
	for _, a := range e.auditors {
		if seen[a] {
			continue
		}
		seen[a] = true
		if t, ok := a.(MCTunable); ok {
			f(t)
			reached++
		}
	}
	return reached
}

// Answered returns how many queries were answered.
func (e *Engine) Answered() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.answered
}

// Denied returns how many queries were refused.
func (e *Engine) Denied() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.denied
}

// Stats is a consistent snapshot of the protocol counters and dataset
// tallies, taken under one lock acquisition.
type Stats struct {
	// Answered and Denied count protocol outcomes; their sum is the
	// number of well-formed queries the engine has decided.
	Answered int
	Denied   int
	// Records is the dataset size; Modifications counts sensitive-value
	// updates applied through Update.
	Records       int
	Modifications int
}

// Stats returns a torn-free snapshot of the counters. Unlike separate
// Answered()/Denied() calls, the pair is read in one critical section,
// so answered+denied always equals the number of decided queries at
// some single instant.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		Answered:      e.answered,
		Denied:        e.denied,
		Records:       e.ds.N(),
		Modifications: e.ds.Modifications(),
	}
}

// KnowledgeSnapshot reports, per reporting auditor (by name), what the
// answered history exposes about each record. The whole report is built
// under the engine lock, so it reflects one instant of the protocol —
// calling auditors' Knowledge() directly instead races with Ask.
// Auditors registered for several kinds appear once.
func (e *Engine) KnowledgeSnapshot() map[string][]audit.ElementKnowledge {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := map[string][]audit.ElementKnowledge{}
	seen := map[audit.Auditor]bool{}
	for _, a := range e.auditors {
		if seen[a] {
			continue
		}
		seen[a] = true
		kr, ok := a.(audit.KnowledgeReporter)
		if !ok {
			continue
		}
		out[a.Name()] = append([]audit.ElementKnowledge(nil), kr.Knowledge()...)
	}
	return out
}

// Ask runs one query through the protocol. It is safe for concurrent
// use: the decide/evaluate/record triplet runs atomically per query.
func (e *Engine) Ask(q query.Query) (Response, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.askObservedLocked(q)
}

// askObservedLocked wraps askLocked with the instrumentation hook; it reports only
// top-level queries (the Avg→Sum recursion inside ask stays one event).
func (e *Engine) askObservedLocked(q query.Query) (Response, error) {
	start := time.Now() //auditlint:allow detrand latency metric stamp for the observer hook; never a decision input
	resp, err := e.askLocked(q)
	if e.obs != nil && err == nil {
		e.obs.ObserveDecision(q.Kind, resp.Denied, time.Since(start))
	}
	return resp, err
}

// askLocked is the core of Ask; callers hold mu (Avg recursion stays under one lock).
func (e *Engine) askLocked(q query.Query) (Response, error) {
	if len(q.Set) == 0 {
		return Response{Denied: true}, errors.New("core: empty query set")
	}
	for _, i := range q.Set {
		if i < 0 || i >= e.ds.N() {
			return Response{Denied: true}, fmt.Errorf("core: index %d out of range", i)
		}
	}
	switch q.Kind {
	case query.Count:
		// Query sets are defined by public attributes; counts carry no
		// information about the sensitive attribute.
		e.answered++
		e.recordLocked(q, OutcomeAnswered, float64(len(q.Set)))
		return Response{Answer: float64(len(q.Set))}, nil
	case query.Avg:
		// avg = sum/|Q| with |Q| public: audit as the equivalent sum.
		sumQ := query.Query{Set: q.Set, Kind: query.Sum}
		resp, err := e.askLocked(sumQ)
		if err != nil || resp.Denied {
			return resp, err
		}
		resp.Answer /= float64(len(q.Set))
		return resp, nil
	}
	if a, ok := e.auditors[q.Kind]; ok {
		d, err := a.Decide(q)
		if err != nil {
			// Journaled even though it is not a protocol outcome: a failed
			// Decide may still have advanced auditor-internal state (the
			// probabilistic auditors' per-decision seed counter), and
			// replay must retrace it.
			e.recordLocked(q, OutcomeErrored, 0)
			return Response{Denied: true}, err
		}
		if d == audit.Deny {
			e.denied++
			e.recordLocked(q, OutcomeDenied, 0)
			return Response{Denied: true}, nil
		}
		ans := e.ds.Eval(q)
		a.Record(q, ans)
		e.answered++
		e.recordLocked(q, OutcomeAnswered, ans)
		return Response{Answer: ans}, nil
	}
	if a, ok := e.naive[q.Kind]; ok {
		ans := e.ds.Eval(q) // deliberately unsafe: answer computed first
		d, err := a.DecideWithAnswer(q, ans)
		if err != nil {
			e.recordLocked(q, OutcomeErrored, 0)
			return Response{Denied: true}, err
		}
		if d == audit.Deny {
			e.denied++
			e.recordLocked(q, OutcomeDenied, 0)
			return Response{Denied: true}, nil
		}
		a.Record(q, ans)
		e.answered++
		e.recordLocked(q, OutcomeAnswered, ans)
		return Response{Answer: ans}, nil
	}
	return Response{Denied: true}, ErrNoAuditor
}

// Prime answers a list of must-have queries up front, before any user
// interaction — the paper's Section 7 remedy for "important, fairly
// generic queries that the world would always like to have answered"
// (e.g. the total number of cancer patients in a hospital): folding them
// into the answered pool first guarantees they remain answerable forever
// (repeats add no information), at the cost of whatever query room they
// consume. Prime fails if any primed query is itself denied.
//
// The engine lock is held across the WHOLE list: concurrent user
// queries cannot interleave between two primed queries and consume the
// query room a later must-have query needs. A denial mid-list still
// leaves earlier primes committed (they were answered, so the auditor
// remembers them) and reports the offending query.
func (e *Engine) Prime(qs []query.Query) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	committed := 0
	var err error
	for _, q := range qs {
		var resp Response
		resp, err = e.askObservedLocked(q)
		if err != nil {
			err = fmt.Errorf("core: priming %v: %w", q, err)
			break
		}
		if resp.Denied {
			err = fmt.Errorf("core: priming %v: denied — primed queries must be mutually safe", q)
			break
		}
		committed++
	}
	if e.obs != nil {
		e.obs.ObservePrime(committed, err == nil)
	}
	return err
}

// Update modifies record i's sensitive value and notifies every auditor
// that supports updates. Auditors without update support keep their old
// constraints, which is unsound after modification — the engine therefore
// refuses the update if any registered auditor cannot observe it.
func (e *Engine) Update(i int, v float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if i < 0 || i >= e.ds.N() {
		return fmt.Errorf("core: index %d out of range", i)
	}
	// Check support before mutating, so an unsupported stack refuses the
	// update without applying it.
	seen := map[audit.Auditor]bool{}
	for _, a := range e.auditors {
		if seen[a] {
			continue
		}
		seen[a] = true
		if _, ok := a.(audit.UpdateObserver); !ok {
			return fmt.Errorf("core: auditor %q does not support updates", a.Name())
		}
	}
	e.ds.SetSensitive(i, v)
	return e.noteUpdateLocked(i)
}
