package core

import (
	"fmt"
	"sync"

	"queryaudit/internal/audit"
	"queryaudit/internal/dataset"
	"queryaudit/internal/mcpar"
	"queryaudit/internal/qindex"
	"queryaudit/internal/query"
)

// AuditorFactory constructs one fresh auditor instance. Factories are
// the unit of the per-session registry: every analyst session calls the
// same factories the deployment was configured with, so each session's
// auditor stack starts from the identical (empty) state and evolves only
// with that analyst's own answered history.
type AuditorFactory func() (audit.Auditor, error)

// EngineSpec is a reusable recipe for building identical engines over
// one shared dataset: the auditor factories with their aggregate-kind
// registrations, plus the instrumentation to install at construction
// time.
//
// Observers are installed by Build BEFORE the engine is returned — never
// via SetObserver on an engine that is already serving traffic — so
// session-created engines are born fully instrumented and there is no
// window in which a decision can slip past the collector (or race with
// its installation).
//
// A joint auditor guarding several kinds (the max∧min family) must be
// registered with ONE Register call listing all its kinds; registering
// the kinds separately would build two independent instances and lose
// the cross-aggregate inference the joint auditor exists to see.
type EngineSpec struct {
	ds      *dataset.Dataset
	entries []specEntry
	obs     Observer
	mcObs   mcpar.Observer
	workers int
	sched   *mcpar.Scheduler
	// resOnce/res: the deployment-shared indexed resolver over ds, built
	// lazily so specs that never resolve SQL (replay, pure queryset
	// traffic) skip the index build.
	resOnce sync.Once
	res     *qindex.Resolver
}

type specEntry struct {
	build AuditorFactory
	kinds []query.Kind
}

// NewEngineSpec starts an empty spec over ds.
func NewEngineSpec(ds *dataset.Dataset) *EngineSpec {
	return &EngineSpec{ds: ds}
}

// Dataset returns the shared dataset every built engine serves.
func (sp *EngineSpec) Dataset() *dataset.Dataset { return sp.ds }

// Resolver returns the spec's shared indexed resolver over the dataset,
// building it on first use. Every consumer of the spec (the HTTP
// server, replay, tools) resolving through this one instance is what
// makes repeated statements across sessions land on the same interned,
// pointer-equal query sets — so primary, replica and replayed engines
// all see identical sets for identical SQL.
func (sp *EngineSpec) Resolver() *qindex.Resolver {
	sp.resOnce.Do(func() { sp.res = qindex.NewResolver(sp.ds, qindex.Options{}) })
	return sp.res
}

// Register adds a factory for the given aggregate kinds. One factory
// call produces one auditor instance registered for all listed kinds.
func (sp *EngineSpec) Register(f AuditorFactory, kinds ...query.Kind) {
	sp.entries = append(sp.entries, specEntry{build: f, kinds: kinds})
}

// SetObserver sets the protocol observer installed on every built
// engine. Collectors backed by atomic registries (metrics.
// EngineCollector) are safe to share across all sessions' engines.
func (sp *EngineSpec) SetObserver(o Observer) { sp.obs = o }

// SetMCObserver sets the Monte Carlo observer installed on every built
// engine's MC-tunable auditors.
func (sp *EngineSpec) SetMCObserver(o mcpar.Observer) { sp.mcObs = o }

// SetMCWorkers sets the Monte Carlo pool size applied to every built
// engine (0 leaves auditors at their own default).
func (sp *EngineSpec) SetMCWorkers(n int) { sp.workers = n }

// SetMCScheduler sets the shared decision scheduler installed on every
// built engine's schedulable auditors. One scheduler per deployment:
// sessions built from the same spec then multiplex their decisions over
// one machine-sized pool instead of fanning out per decision.
func (sp *EngineSpec) SetMCScheduler(s *mcpar.Scheduler) { sp.sched = s }

// Build constructs a fresh engine: new auditor instances from every
// factory, observers and MC knobs installed before the engine is
// published to any other goroutine.
func (sp *EngineSpec) Build() (*Engine, error) {
	e := NewEngine(sp.ds)
	for _, en := range sp.entries {
		a, err := en.build()
		if err != nil {
			return nil, fmt.Errorf("core: building auditor: %w", err)
		}
		e.Use(a, en.kinds...)
	}
	if sp.obs != nil {
		e.SetObserver(sp.obs)
	}
	if sp.mcObs != nil {
		e.SetMCObserver(sp.mcObs)
	}
	if sp.workers != 0 {
		e.SetMCWorkers(sp.workers)
	}
	if sp.sched != nil {
		e.SetMCScheduler(sp.sched)
	}
	return e, nil
}
