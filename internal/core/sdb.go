package core

import (
	"fmt"

	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
)

// SDB is the user-facing statistical database: an engine plus the
// SQL-ish query surface over public attributes.
type SDB struct {
	eng *Engine
	// sensitive is the name accepted inside aggregate parentheses, e.g.
	// "salary" in sum(salary).
	sensitive string
}

// NewSDB wraps an engine; sensitive names the aggregate target column.
func NewSDB(eng *Engine, sensitive string) *SDB {
	return &SDB{eng: eng, sensitive: sensitive}
}

// Engine exposes the underlying engine.
func (s *SDB) Engine() *Engine { return s.eng }

// Query parses and runs one SQL-ish statement:
//
//	SELECT <agg>(<sensitive>) [FROM <ident>] [WHERE <pred> {AND <pred>}]
//	pred := <attr> BETWEEN <num> AND <num>
//	      | <attr> = '<string>'
//	      | <attr> >= <num> | <attr> <= <num>
//
// The FROM clause is accepted and ignored (the SDB hosts one table).
func (s *SDB) Query(sql string) (Response, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return Response{Denied: true}, err
	}
	return s.Run(stmt)
}

// Run executes a parsed statement.
func (s *SDB) Run(stmt Statement) (Response, error) {
	if stmt.Target != s.sensitive {
		return Response{Denied: true}, fmt.Errorf("core: unknown aggregate target %q (sensitive attribute is %q)", stmt.Target, s.sensitive)
	}
	set := s.eng.Dataset().Select(stmt.Predicate())
	if len(set) == 0 {
		return Response{Denied: true}, fmt.Errorf("core: predicate selects no records")
	}
	return s.eng.Ask(query.Query{Set: set, Kind: stmt.Agg})
}

// Statement is a parsed SQL-ish query.
type Statement struct {
	Agg    query.Kind
	Target string
	Preds  []dataset.Predicate
}

// Predicate returns the conjunction of the WHERE predicates (TRUE when
// absent).
func (st Statement) Predicate() dataset.Predicate {
	if len(st.Preds) == 0 {
		return dataset.TruePred{}
	}
	if len(st.Preds) == 1 {
		return st.Preds[0]
	}
	return dataset.AndPred(st.Preds)
}
