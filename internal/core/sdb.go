package core

import (
	"fmt"

	"queryaudit/internal/dataset"
	"queryaudit/internal/qindex"
	"queryaudit/internal/query"
)

// Selector resolves a public-attribute predicate to its query set. Both
// *dataset.Dataset (the naive O(n · preds) row scan) and
// *qindex.Resolver (indexed, interned, memoized) implement it; the two
// are semantically identical by qindex's equivalence property tests, so
// every resolution path below accepts either.
type Selector interface {
	Select(dataset.Predicate) query.Set
}

// SDB is the user-facing statistical database: an engine plus the
// SQL-ish query surface over public attributes.
type SDB struct {
	eng *Engine
	// sensitive is the name accepted inside aggregate parentheses, e.g.
	// "salary" in sum(salary).
	sensitive string
	// res resolves SQL statements; by default an indexed, memoizing
	// resolver over the engine's dataset (see SQLResolver).
	res *SQLResolver
}

// NewSDB wraps an engine; sensitive names the aggregate target column.
// Statements are resolved through a qindex.Resolver built over the
// engine's dataset — O(log n + |result|) per predicate with interned
// result sets — rather than the naive row scan. Use SetSelector to
// install a different resolution path (e.g. the plain dataset for
// baseline measurements).
func NewSDB(eng *Engine, sensitive string) *SDB {
	return &SDB{
		eng:       eng,
		sensitive: sensitive,
		res:       NewSQLResolver(qindex.NewResolver(eng.Dataset(), qindex.Options{})),
	}
}

// Engine exposes the underlying engine.
func (s *SDB) Engine() *Engine { return s.eng }

// Sensitive returns the aggregate target column name.
func (s *SDB) Sensitive() string { return s.sensitive }

// Resolver returns the SQL resolution front-end the SDB routes through.
func (s *SDB) Resolver() *SQLResolver { return s.res }

// SetSelector replaces the predicate-resolution path. Passing the
// engine's own dataset selects the naive scan (the pre-index behaviour);
// passing a *qindex.Resolver restores indexed resolution with caching.
func (s *SDB) SetSelector(sel Selector) { s.res = NewSQLResolver(sel) }

// ResolveSQL parses one SQL-ish statement and resolves its predicate
// through sel into an auditable query, without running it — the front-
// end half of Query, split out so a multi-session server can parse once
// and route the query to any analyst's engine. Predicate resolution
// touches only the public attributes, which are immutable after
// generation, so ResolveSQL is safe to call concurrently with
// sensitive-value updates. Uncached: see SQLResolver for the memoized
// serving-path variant.
func ResolveSQL(sel Selector, sensitive, sql string) (query.Query, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return query.Query{}, err
	}
	return ResolveStatement(sel, sensitive, stmt)
}

// ResolveStatement resolves a parsed statement through sel.
func ResolveStatement(sel Selector, sensitive string, stmt Statement) (query.Query, error) {
	if stmt.Target != sensitive {
		return query.Query{}, fmt.Errorf("core: unknown aggregate target %q (sensitive attribute is %q)", stmt.Target, sensitive)
	}
	set := sel.Select(stmt.Predicate())
	if len(set) == 0 {
		return query.Query{}, fmt.Errorf("core: predicate selects no records")
	}
	return query.Query{Set: set, Kind: stmt.Agg}, nil
}

// Query parses and runs one SQL-ish statement:
//
//	SELECT <agg>(<sensitive>) [FROM <ident>] [WHERE <pred> {AND <pred>}]
//	pred := <attr> BETWEEN <num> AND <num>
//	      | <attr> = '<string>'
//	      | <attr> >= <num> | <attr> <= <num>
//
// The FROM clause is accepted and ignored (the SDB hosts one table).
func (s *SDB) Query(sql string) (Response, error) {
	q, err := s.res.ResolveSQL(s.sensitive, sql)
	if err != nil {
		return Response{Denied: true}, err
	}
	return s.eng.Ask(q)
}

// Run executes a parsed statement.
func (s *SDB) Run(stmt Statement) (Response, error) {
	q, err := ResolveStatement(s.res.Selector(), s.sensitive, stmt)
	if err != nil {
		return Response{Denied: true}, err
	}
	return s.eng.Ask(q)
}

// Statement is a parsed SQL-ish query.
type Statement struct {
	Agg    query.Kind
	Target string
	Preds  []dataset.Predicate
}

// Predicate returns the conjunction of the WHERE predicates (TRUE when
// absent).
func (st Statement) Predicate() dataset.Predicate {
	if len(st.Preds) == 0 {
		return dataset.TruePred{}
	}
	if len(st.Preds) == 1 {
		return st.Preds[0]
	}
	return dataset.AndPred(st.Preds)
}
