package core

import (
	"fmt"

	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
)

// SDB is the user-facing statistical database: an engine plus the
// SQL-ish query surface over public attributes.
type SDB struct {
	eng *Engine
	// sensitive is the name accepted inside aggregate parentheses, e.g.
	// "salary" in sum(salary).
	sensitive string
}

// NewSDB wraps an engine; sensitive names the aggregate target column.
func NewSDB(eng *Engine, sensitive string) *SDB {
	return &SDB{eng: eng, sensitive: sensitive}
}

// Engine exposes the underlying engine.
func (s *SDB) Engine() *Engine { return s.eng }

// Sensitive returns the aggregate target column name.
func (s *SDB) Sensitive() string { return s.sensitive }

// ResolveSQL parses one SQL-ish statement and resolves its predicate
// against ds into an auditable query, without running it — the front-end
// half of Query, split out so a multi-session server can parse once and
// route the query to any analyst's engine. Predicate resolution touches
// only the public attributes, which are immutable after generation, so
// ResolveSQL is safe to call concurrently with sensitive-value updates.
func ResolveSQL(ds *dataset.Dataset, sensitive, sql string) (query.Query, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return query.Query{}, err
	}
	return ResolveStatement(ds, sensitive, stmt)
}

// ResolveStatement resolves a parsed statement against ds.
func ResolveStatement(ds *dataset.Dataset, sensitive string, stmt Statement) (query.Query, error) {
	if stmt.Target != sensitive {
		return query.Query{}, fmt.Errorf("core: unknown aggregate target %q (sensitive attribute is %q)", stmt.Target, sensitive)
	}
	set := ds.Select(stmt.Predicate())
	if len(set) == 0 {
		return query.Query{}, fmt.Errorf("core: predicate selects no records")
	}
	return query.Query{Set: set, Kind: stmt.Agg}, nil
}

// Query parses and runs one SQL-ish statement:
//
//	SELECT <agg>(<sensitive>) [FROM <ident>] [WHERE <pred> {AND <pred>}]
//	pred := <attr> BETWEEN <num> AND <num>
//	      | <attr> = '<string>'
//	      | <attr> >= <num> | <attr> <= <num>
//
// The FROM clause is accepted and ignored (the SDB hosts one table).
func (s *SDB) Query(sql string) (Response, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return Response{Denied: true}, err
	}
	return s.Run(stmt)
}

// Run executes a parsed statement.
func (s *SDB) Run(stmt Statement) (Response, error) {
	q, err := ResolveStatement(s.eng.Dataset(), s.sensitive, stmt)
	if err != nil {
		return Response{Denied: true}, err
	}
	return s.eng.Ask(q)
}

// Statement is a parsed SQL-ish query.
type Statement struct {
	Agg    query.Kind
	Target string
	Preds  []dataset.Predicate
}

// Predicate returns the conjunction of the WHERE predicates (TRUE when
// absent).
func (st Statement) Predicate() dataset.Predicate {
	if len(st.Preds) == 0 {
		return dataset.TruePred{}
	}
	if len(st.Preds) == 1 {
		return st.Preds[0]
	}
	return dataset.AndPred(st.Preds)
}
