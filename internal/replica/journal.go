package replica

import (
	"context"
	"sync"
	"time"
)

// Journal is the node-local, totally-ordered replication log: every
// decision and update the node has journaled (as primary) or mirrored
// (as follower), tagged with a dense global sequence number. It retains
// a bounded tail — followers further behind than the tail resync from a
// snapshot — and supports long-poll reads, which is what turns the
// stream endpoint into a push-shaped feed over plain HTTP.
//
// A follower mirrors the primary's records verbatim, keeping the
// primary's sequence numbers, so after a promote the new primary's
// journal continues the same numbering and surviving followers keep
// their cursors.
type Journal struct {
	mu sync.Mutex
	// recs holds sequences base+1 .. base+len(recs).
	recs []Record
	// base is the highest trimmed-away sequence (0 if nothing trimmed).
	base uint64
	// next is the sequence the next Append will assign.
	next uint64
	// retain bounds len(recs); older records are trimmed.
	retain int
	// changed is closed and replaced on every append (broadcast).
	changed chan struct{}
}

// NewJournal returns an empty journal retaining at most retain records.
func NewJournal(retain int) *Journal {
	if retain < 1 {
		retain = 1
	}
	return &Journal{next: 1, retain: retain, changed: make(chan struct{})}
}

// Append assigns the next sequence number to r, appends it, and returns
// the assigned sequence. Primary-side use.
func (j *Journal) Append(r Record) uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	r.Seq = j.next
	j.appendLocked(r)
	return r.Seq
}

// Mirror appends a record keeping its existing sequence number —
// follower-side use, replaying the primary's journal verbatim. Records
// at or below the current head are ignored (re-delivery after a
// snapshot handoff).
func (j *Journal) Mirror(r Record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if r.Seq < j.next {
		return
	}
	// A gap would mean the stream skipped records; the follower loop
	// never lets that happen (it resyncs instead), so keep the journal
	// dense by trusting the caller's ordering.
	j.next = r.Seq
	j.appendLocked(r)
}

// appendLocked does the shared append + trim + broadcast; j.mu held,
// r.Seq must equal j.next.
func (j *Journal) appendLocked(r Record) {
	j.recs = append(j.recs, r)
	j.next = r.Seq + 1
	if over := len(j.recs) - j.retain; over > 0 {
		j.base += uint64(over)
		j.recs = append(j.recs[:0], j.recs[over:]...)
	}
	close(j.changed)
	j.changed = make(chan struct{})
}

// Head returns the highest appended sequence (0 if empty).
func (j *Journal) Head() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next - 1
}

// Reset empties the journal and restarts numbering after cursor, as if
// everything up to cursor had been trimmed. Used when a follower seeds
// itself from a snapshot taken at cursor.
func (j *Journal) Reset(cursor uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.recs = j.recs[:0]
	j.base = cursor
	j.next = cursor + 1
	close(j.changed)
	j.changed = make(chan struct{})
}

// ReadAfter returns up to max records with sequence > after, long-polling
// up to wait if none are available yet. trimmed reports that `after`
// precedes the retained tail — the caller must resync from a snapshot
// because the journal can no longer serve a contiguous continuation.
func (j *Journal) ReadAfter(ctx context.Context, after uint64, max int, wait time.Duration) (recs []Record, head uint64, trimmed bool) {
	if max < 1 {
		max = 1
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		j.mu.Lock()
		if after < j.base {
			j.mu.Unlock()
			return nil, 0, true
		}
		head = j.next - 1
		if after < head {
			lo := after - j.base
			hi := uint64(len(j.recs))
			if hi-lo > uint64(max) {
				hi = lo + uint64(max)
			}
			recs = append([]Record(nil), j.recs[lo:hi]...)
			j.mu.Unlock()
			return recs, head, false
		}
		changed := j.changed
		j.mu.Unlock()
		select {
		case <-changed:
		case <-deadline.C:
			return nil, head, false
		case <-ctx.Done():
			return nil, head, false
		}
	}
}
