package replica

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Handler returns the node's replication HTTP surface, with full `/v1/
// replication/...` paths so the server can mount it next to the serving
// API. The endpoints are operator/peer-facing: status, snapshot, stream,
// promote, demote.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replication/status", n.handleStatus)
	mux.HandleFunc("GET /v1/replication/snapshot", n.handleSnapshot)
	mux.HandleFunc("POST /v1/replication/stream", n.handleStream)
	mux.HandleFunc("POST /v1/replication/promote", n.handlePromote)
	mux.HandleFunc("POST /v1/replication/demote", n.handleDemote)
	return mux
}

// writeJSON mirrors the server package's envelope discipline, including
// its buffer-first rule: the status line goes out only after the body
// has encoded cleanly, so an encode failure surfaces as a logged 500
// instead of a torn 200 body a follower would half-parse.
func (n *Node) writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		n.logger.Printf("replica: encoding response: %v", err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"error":"internal error encoding response"}` + "\n")) //auditlint:allow errsink client disconnect on the error path; the failure is already logged
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes()) //auditlint:allow errsink client disconnect mid-response is the follower's failure to retry, not torn state
}

// misdirected answers 421 with enough context for the caller to find the
// real primary.
func (n *Node) misdirected(w http.ResponseWriter, msg string) {
	n.writeJSON(w, http.StatusMisdirectedRequest, errorBody{
		Error:      msg,
		Role:       n.Role().String(),
		Epoch:      n.Epoch(),
		PrimaryURL: n.PrimaryURL(),
	})
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	n.writeJSON(w, http.StatusOK, n.Status())
}

// handleSnapshot serves the follower-seed snapshot. The stream cursor is
// captured BEFORE the state cut, so any record journaled between the two
// is both inside the snapshot and re-delivered by the stream — the
// follower skips the overlap as stale, and nothing can fall into a gap.
func (n *Node) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if n.Role() != RolePrimary {
		n.misdirected(w, "snapshot requires the primary")
		return
	}
	cursor := n.journal.Head()
	logs, sensitive := n.mgr.ReplicaSnapshot()
	n.writeJSON(w, http.StatusOK, SnapshotResponse{
		Epoch:     n.Epoch(),
		Cursor:    cursor,
		Sessions:  logs,
		Sensitive: sensitive,
	})
}

// handleStream serves one long-poll of the replication journal. A
// request carrying a higher epoch than ours is the fencing signal: some
// follower was promoted while we thought we were primary, so we demote
// before answering. A 410 tells the follower its cursor fell behind the
// retained tail and it must resync from a snapshot.
func (n *Node) handleStream(w http.ResponseWriter, r *http.Request) {
	var req StreamRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		n.writeJSON(w, http.StatusBadRequest, errorBody{Error: "malformed stream request: " + err.Error()})
		return
	}
	if req.Epoch > n.Epoch() {
		n.Demote(req.Epoch)
		n.misdirected(w, "fenced: a node with a higher epoch is primary")
		return
	}
	if n.Role() != RolePrimary {
		n.misdirected(w, "stream requires the primary")
		return
	}
	for _, ack := range req.Acks {
		n.checkAck(ack)
	}
	wait := n.cfg.PollWait
	if req.WaitMS > 0 && time.Duration(req.WaitMS)*time.Millisecond < wait {
		wait = time.Duration(req.WaitMS) * time.Millisecond
	}
	max := n.cfg.MaxBatch
	if req.Max > 0 && req.Max < max {
		max = req.Max
	}
	recs, head, trimmed := n.journal.ReadAfter(r.Context(), req.After, max, wait)
	if trimmed {
		n.writeJSON(w, http.StatusGone, errorBody{
			Error: "cursor precedes the retained journal tail; resync from snapshot",
			Role:  n.Role().String(),
			Epoch: n.Epoch(),
		})
		return
	}
	n.obs.ObserveStreamPoll()
	if len(recs) > 0 {
		n.obs.ObserveShipped(len(recs))
	}
	n.writeJSON(w, http.StatusOK, StreamResponse{Epoch: n.Epoch(), Records: recs, Head: head})
}

// handlePromote executes the operator-driven failover step on a replica.
// Idempotent: promoting a primary reports its current epoch.
func (n *Node) handlePromote(w http.ResponseWriter, r *http.Request) {
	epoch, err := n.Promote()
	if err != nil {
		n.writeJSON(w, http.StatusConflict, errorBody{Error: err.Error(), Role: n.Role().String(), Epoch: n.Epoch()})
		return
	}
	n.writeJSON(w, http.StatusOK, PromoteResponse{Role: n.Role().String(), Epoch: epoch})
}

// handleDemote is the push side of fencing: the freshly promoted node
// tells the old primary (best effort) that a higher epoch exists.
func (n *Node) handleDemote(w http.ResponseWriter, r *http.Request) {
	var req DemoteRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		n.writeJSON(w, http.StatusBadRequest, errorBody{Error: "malformed demote request: " + err.Error()})
		return
	}
	n.Demote(req.Epoch)
	n.writeJSON(w, http.StatusOK, PromoteResponse{Role: n.Role().String(), Epoch: n.Epoch()})
}
