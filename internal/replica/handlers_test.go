package replica

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
)

// writeJSON used to stream the encoder straight into the ResponseWriter
// after the status line, so an encode failure produced a torn 200 body a
// follower would half-parse. It now buffers first: encode failures are a
// clean 500, successes carry a Content-Length.
func TestWriteJSONBufferFirst(t *testing.T) {
	n := &Node{logger: quiet}

	rec := httptest.NewRecorder()
	n.writeJSON(rec, http.StatusOK, math.NaN()) // NaN is unencodable
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("encode failure produced status %d, want 500", rec.Code)
	}

	rec = httptest.NewRecorder()
	n.writeJSON(rec, http.StatusOK, map[string]int{"seq": 7})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	body, _ := io.ReadAll(rec.Body)
	if cl := rec.Header().Get("Content-Length"); cl != strconv.Itoa(len(body)) {
		t.Fatalf("Content-Length = %q, body is %d bytes", cl, len(body))
	}
}
