package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/maxminfull"
	"queryaudit/internal/audit/maxminprob"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/audit/sumprob"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/metrics"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/session"
)

// quiet discards replication lifecycle logs in tests.
var quiet = log.New(io.Discard, "", 0)

// step is one scripted move: a query by an analyst, or a dataset update.
type step struct {
	analyst string
	q       query.Query
	update  bool
	idx     int
	val     float64
}

// script generates a deterministic pseudo-random multi-analyst game.
func script(seed int64, n, rounds int, kinds []query.Kind, withUpdates bool) []step {
	rng := randx.New(seed)
	analysts := []string{"alice", "bob", session.DefaultAnalyst}
	var steps []step
	for i := 0; i < rounds; i++ {
		if withUpdates && i > 0 && i%5 == 0 {
			steps = append(steps, step{update: true, idx: rng.Intn(n), val: float64(rng.Intn(50) + 1)})
			continue
		}
		size := 1 + rng.Intn(n-1)
		perm := rng.Perm(n)
		steps = append(steps, step{
			analyst: analysts[rng.Intn(len(analysts))],
			q:       query.New(kinds[rng.Intn(len(kinds))], perm[:size]...),
		})
	}
	return steps
}

// family bundles one auditor configuration under test.
type family struct {
	name        string
	n, rounds   int
	kinds       []query.Kind
	withUpdates bool
	makeDS      func() *dataset.Dataset
	makeSpec    func(ds *dataset.Dataset) *core.EngineSpec
}

func fullSpec(ds *dataset.Dataset) *core.EngineSpec {
	sp := core.NewEngineSpec(ds)
	n := ds.N()
	sp.Register(func() (audit.Auditor, error) { return sumfull.New(n), nil }, query.Sum)
	sp.Register(func() (audit.Auditor, error) { return maxminfull.New(n), nil }, query.Max, query.Min)
	return sp
}

func probSpec(ds *dataset.Dataset, workers int) *core.EngineSpec {
	sp := core.NewEngineSpec(ds)
	n := ds.N()
	sp.Register(func() (audit.Auditor, error) {
		return maxminprob.New(n, maxminprob.Params{
			Lambda: 0.45, Gamma: 2, Delta: 0.2, T: 2,
			OuterSamples: 8, InnerSamples: 8, MixFactor: 1,
			Workers: workers, Seed: 12,
		})
	}, query.Max, query.Min)
	sp.Register(func() (audit.Auditor, error) {
		return sumprob.New(n, sumprob.Params{
			Lambda: 0.6, Gamma: 2, Delta: 0.2, T: 2,
			OuterSamples: 6, Workers: workers, Seed: 13,
		})
	}, query.Sum)
	return sp
}

func replicationFamilies() []family {
	return []family{
		{
			name: "full", n: 10, rounds: 16,
			kinds:       []query.Kind{query.Sum, query.Max, query.Min, query.Count},
			withUpdates: true,
			makeDS: func() *dataset.Dataset {
				return dataset.UniformDuplicateFree(randx.New(7), 10, 1, 100)
			},
			makeSpec: fullSpec,
		},
		{
			name: "prob", n: 10, rounds: 8,
			kinds: []query.Kind{query.Sum, query.Max, query.Min},
			makeDS: func() *dataset.Dataset {
				// The Section 3 auditors protect values normalized to [0,1].
				return dataset.UniformDuplicateFree(randx.New(9), 10, 0, 1)
			},
			makeSpec: func(ds *dataset.Dataset) *core.EngineSpec { return probSpec(ds, 4) },
		},
	}
}

func (f family) newManager(t *testing.T) *session.Manager {
	t.Helper()
	m, err := session.NewManager(f.makeSpec(f.makeDS()), session.Config{NoJanitor: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// drive executes steps against a manager, ignoring per-query outcomes
// (denials are normal; the transcript digest captures everything).
func drive(t *testing.T, m *session.Manager, steps []step) {
	t.Helper()
	for i, st := range steps {
		if st.update {
			if err := m.Update(st.idx, st.val); err != nil {
				t.Fatalf("step %d: update: %v", i, err)
			}
			continue
		}
		if _, err := m.Ask(st.analyst, st.q); err != nil {
			t.Fatalf("step %d: ask %s: %v", i, st.analyst, err)
		}
	}
}

// positions captures every session's (seq, digest) plus dataset values.
func positions(m *session.Manager) map[string]string {
	out := map[string]string{}
	for _, info := range m.Sessions() {
		out[info.Analyst] = fmt.Sprintf("%d:%s", info.Seq, info.Digest)
	}
	return out
}

func testConfig(obs Observer) Config {
	return Config{
		PollWait: 200 * time.Millisecond,
		RetryMin: 5 * time.Millisecond,
		RetryMax: 50 * time.Millisecond,
		Logger:   quiet,
		Observer: obs,
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// caughtUp reports whether the follower has applied everything the
// primary has journaled.
func caughtUp(p, f *Node) func() bool {
	return func() bool { return f.applied.Load() >= p.journal.Head() }
}

// TestFailoverEveryIndex is the failover property test: for every prefix
// length of a scripted workload, run the prefix on a primary, replicate
// it to a follower, kill the primary, promote the follower, run the
// suffix there, and require the combined transcript — every session's
// (seq, digest) and the dataset values — to be bit-identical to an
// uninterrupted single-node run. Covers the exact-disclosure and the
// Monte Carlo probabilistic stacks.
func TestFailoverEveryIndex(t *testing.T) {
	if testing.Short() {
		t.Skip("failover sweep is a long test")
	}
	for _, fam := range replicationFamilies() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			steps := script(21, fam.n, fam.rounds, fam.kinds, fam.withUpdates)

			// Reference: the uninterrupted single-node run.
			ref := fam.newManager(t)
			drive(t, ref, steps)
			wantPos := positions(ref)
			wantVals := ref.Dataset().Values()

			for cut := 0; cut <= len(steps); cut++ {
				cut := cut
				t.Run(fmt.Sprintf("cut-%d", cut), func(t *testing.T) {
					t.Parallel()
					pm := fam.newManager(t)
					pnode := NewNode(pm, RolePrimary, 1, "", testConfig(nil))
					psrv := httptest.NewServer(pnode.Handler())
					defer psrv.Close()
					drive(t, pm, steps[:cut])

					fm := fam.newManager(t)
					fnode := NewNode(fm, RoleReplica, 1, psrv.URL, testConfig(nil))
					ctx, cancel := context.WithCancel(context.Background())
					defer cancel()
					if err := fnode.StartFollower(ctx); err != nil {
						t.Fatal(err)
					}
					waitFor(t, "follower catch-up", caughtUp(pnode, fnode))

					// Kill the primary mid-stream, then promote.
					psrv.Close()
					epoch, err := fnode.Promote()
					if err != nil {
						t.Fatalf("promote: %v", err)
					}
					if epoch != 2 {
						t.Fatalf("promoted epoch = %d, want 2", epoch)
					}
					if !fnode.Writable() {
						t.Fatal("promoted node is not writable")
					}

					drive(t, fm, steps[cut:])

					if got := positions(fm); !equalPos(got, wantPos) {
						t.Fatalf("cut %d: transcript diverged:\n got %v\nwant %v", cut, got, wantPos)
					}
					got := fm.Dataset().Values()
					for i := range wantVals {
						if got[i] != wantVals[i] {
							t.Fatalf("cut %d: dataset[%d] = %v, want %v", cut, i, got[i], wantVals[i])
						}
					}
				})
			}
		})
	}
}

func equalPos(got, want map[string]string) bool {
	if len(got) != len(want) {
		return false
	}
	for k, v := range want {
		if got[k] != v {
			return false
		}
	}
	return true
}

// TestDivergenceQuarantine injects journal corruption on the wire — a
// tampered answer for one analyst's records — and requires the follower
// to catch it via the transcript digest, quarantine exactly that
// session, surface it through replica_divergence_total, and keep
// replicating the untouched sessions.
func TestDivergenceQuarantine(t *testing.T) {
	fam := replicationFamilies()[0]
	pm := fam.newManager(t)
	pnode := NewNode(pm, RolePrimary, 1, "", testConfig(nil))
	inner := pnode.Handler()

	// Corrupting proxy: bump every journaled answer of analyst "bob" by
	// one (keeping the primary's digest), exactly what bit-rot or a
	// tampering middlebox would produce.
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/replication/stream" {
			inner.ServeHTTP(w, r)
			return
		}
		rec := httptest.NewRecorder()
		inner.ServeHTTP(rec, r)
		if rec.Code != http.StatusOK {
			w.WriteHeader(rec.Code)
			io.Copy(w, rec.Body)
			return
		}
		var resp StreamResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Errorf("proxy decode: %v", err)
		}
		for i := range resp.Records {
			if resp.Records[i].Kind == RecordDecision && resp.Records[i].Analyst == "bob" {
				resp.Records[i].Event.Answer++
			}
		}
		var buf bytes.Buffer
		json.NewEncoder(&buf).Encode(resp)
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf.Bytes())
	}))
	defer proxy.Close()

	reg := metrics.NewRegistry()
	fm := fam.newManager(t)
	fnode := NewNode(fm, RoleReplica, 1, proxy.URL, testConfig(metrics.NewReplicaCollector(reg)))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := fnode.StartFollower(ctx); err != nil {
		t.Fatal(err)
	}

	// Only now drive traffic, so every record arrives via the corrupting
	// stream rather than inside the (clean) snapshot.
	waitFor(t, "initial resync", func() bool { return fnode.Status().Applied >= 0 && reg.Snapshot().Counters["replica_resync_total"] >= 1 })
	steps := script(33, fam.n, fam.rounds, fam.kinds, false)
	drive(t, pm, steps)
	waitFor(t, "follower catch-up", caughtUp(pnode, fnode))

	if _, bad := fnode.Quarantined("bob"); !bad {
		t.Fatal("tampered session was not quarantined")
	}
	if _, bad := fnode.Quarantined("alice"); bad {
		t.Fatal("untampered session was quarantined")
	}
	if got := reg.Snapshot().Counters["replica_divergence_total"]; got < 1 {
		t.Fatalf("replica_divergence_total = %d, want >= 1", got)
	}
	if got := reg.Snapshot().Gauges["replica_quarantined_sessions"]; got != 1 {
		t.Fatalf("replica_quarantined_sessions = %d, want 1", got)
	}

	// Untouched sessions replicated bit-identically.
	for _, analyst := range []string{"alice", session.DefaultAnalyst} {
		pseq, pdig, _ := pm.PositionOf(analyst)
		fseq, fdig, ok := fm.PositionOf(analyst)
		if !ok || fseq != pseq || fdig != pdig {
			t.Fatalf("analyst %s: follower at %d/%s, primary at %d/%s", analyst, fseq, fdig, pseq, pdig)
		}
	}

	// A resync lifts the quarantine: trigger one by trimming the primary
	// past the follower's cursor... simplest honest path: stop, restart
	// the follower loop (it always resyncs first) against the CLEAN
	// endpoint.
	cancel()
	fnode.StopFollower()
	clean := httptest.NewServer(inner)
	defer clean.Close()
	fnode.primaryURL.Store(clean.URL)
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	if err := fnode.StartFollower(ctx2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "quarantine lifted after clean resync", func() bool {
		_, bad := fnode.Quarantined("bob")
		return !bad
	})
	waitFor(t, "follower re-catch-up", caughtUp(pnode, fnode))
	pseq, pdig, _ := pm.PositionOf("bob")
	waitFor(t, "bob bit-identical after resync", func() bool {
		fseq, fdig, ok := fm.PositionOf("bob")
		return ok && fseq == pseq && fdig == pdig
	})
}

// TestPromoteFencing verifies the epoch fence: after a follower is
// promoted, the old primary demotes the moment it sees the higher epoch
// (via a stream request), and a stale demote can never unseat a current
// primary.
func TestPromoteFencing(t *testing.T) {
	fam := replicationFamilies()[0]
	pm := fam.newManager(t)
	pnode := NewNode(pm, RolePrimary, 1, "", testConfig(nil))
	psrv := httptest.NewServer(pnode.Handler())
	defer psrv.Close()
	drive(t, pm, script(5, fam.n, 6, fam.kinds, false))

	fm := fam.newManager(t)
	fnode := NewNode(fm, RoleReplica, 1, psrv.URL, testConfig(nil))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := fnode.StartFollower(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "follower catch-up", caughtUp(pnode, fnode))

	// Stale demote: must be ignored.
	pnode.Demote(1)
	if pnode.Role() != RolePrimary {
		t.Fatal("stale demote unseated the primary")
	}

	if _, err := fnode.Promote(); err != nil {
		t.Fatal(err)
	}
	// The promoted node pushes a best-effort demote; the old primary also
	// fences itself on any stream request carrying the higher epoch. Send
	// one explicitly so the test does not depend on the async push.
	body, _ := json.Marshal(StreamRequest{After: 0, Epoch: fnode.Epoch()})
	resp, err := http.Post(psrv.URL+"/v1/replication/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("stream with higher epoch: status %d, want 421", resp.StatusCode)
	}
	waitFor(t, "old primary demoted", func() bool { return pnode.Role() == RoleReplica })
	if pnode.Epoch() != fnode.Epoch() {
		t.Fatalf("old primary epoch %d, want %d", pnode.Epoch(), fnode.Epoch())
	}
	if pnode.Writable() {
		t.Fatal("demoted node still writable")
	}
}

// TestTrimForcesResync starves a follower behind a tiny journal tail and
// requires it to recover via snapshot resync (410 → snapshot → stream)
// and still land bit-identical.
func TestTrimForcesResync(t *testing.T) {
	fam := replicationFamilies()[0]
	pm := fam.newManager(t)
	cfg := testConfig(nil)
	cfg.Retention = 4
	pnode := NewNode(pm, RolePrimary, 1, "", cfg)
	psrv := httptest.NewServer(pnode.Handler())
	defer psrv.Close()

	// Journal far more than the tail retains before the follower exists.
	steps := script(44, fam.n, fam.rounds, fam.kinds, fam.withUpdates)
	drive(t, pm, steps)
	if head := pnode.journal.Head(); head <= 4 {
		t.Fatalf("journal head %d, want > retention", head)
	}

	reg := metrics.NewRegistry()
	fm := fam.newManager(t)
	fnode := NewNode(fm, RoleReplica, 1, psrv.URL, testConfig(metrics.NewReplicaCollector(reg)))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := fnode.StartFollower(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "follower catch-up from snapshot", caughtUp(pnode, fnode))

	for analyst := range positions(pm) {
		pseq, pdig, _ := pm.PositionOf(analyst)
		fseq, fdig, ok := fm.PositionOf(analyst)
		if !ok || fseq != pseq || fdig != pdig {
			t.Fatalf("analyst %s: follower at %d/%s, primary at %d/%s", analyst, fseq, fdig, pseq, pdig)
		}
	}
	if reg.Snapshot().Counters["replica_resync_total"] < 1 {
		t.Fatal("no resync recorded")
	}
}

// TestJournalReadAfter covers the journal's long-poll and trim edges.
func TestJournalReadAfter(t *testing.T) {
	j := NewJournal(3)
	for i := 0; i < 5; i++ {
		j.Append(Record{Kind: RecordDecision, Analyst: "a"})
	}
	if got := j.Head(); got != 5 {
		t.Fatalf("head = %d, want 5", got)
	}
	// Seqs 1..2 are trimmed (retention 3 keeps 3..5).
	if _, _, trimmed := j.ReadAfter(context.Background(), 1, 10, 0); !trimmed {
		t.Fatal("cursor 1 should be trimmed")
	}
	recs, head, trimmed := j.ReadAfter(context.Background(), 2, 10, 0)
	if trimmed || head != 5 || len(recs) != 3 || recs[0].Seq != 3 {
		t.Fatalf("ReadAfter(2) = %d recs head %d trimmed %v", len(recs), head, trimmed)
	}
	// Max batches.
	recs, _, _ = j.ReadAfter(context.Background(), 2, 2, 0)
	if len(recs) != 2 || recs[1].Seq != 4 {
		t.Fatalf("batched read returned %d records", len(recs))
	}
	// Long-poll wakes on append.
	done := make(chan []Record, 1)
	go func() {
		recs, _, _ := j.ReadAfter(context.Background(), 5, 10, 5*time.Second)
		done <- recs
	}()
	time.Sleep(10 * time.Millisecond)
	j.Append(Record{Kind: RecordUpdate, Index: 1})
	select {
	case recs := <-done:
		if len(recs) != 1 || recs[0].Seq != 6 {
			t.Fatalf("long-poll returned %+v", recs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never woke")
	}
	// Empty wait times out with no records (heartbeat).
	recs, head, trimmed = j.ReadAfter(context.Background(), 6, 10, 10*time.Millisecond)
	if len(recs) != 0 || head != 6 || trimmed {
		t.Fatalf("heartbeat read = %d recs head %d trimmed %v", len(recs), head, trimmed)
	}
}
