// Package replica implements journal-shipping replication for the audit
// server: a primary journals every committed session decision and every
// dataset update into a totally-ordered log, and followers long-poll
// that log over HTTP, rebuilding bit-identical auditor state through the
// simulatability replay in internal/core. Followers serve read-only
// traffic; writes are fenced to whichever node holds the highest cluster
// epoch. Every shipped record carries the primary's transcript digest,
// and a follower whose replay lands on a different digest quarantines
// that session instead of serving provably-divergent answers.
package replica

import (
	"log"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"queryaudit/internal/core"
	"queryaudit/internal/session"
)

// Role is a node's position in the cluster.
type Role int32

const (
	// RoleReplica serves reads from replayed state and rejects writes.
	RoleReplica Role = iota
	// RolePrimary accepts writes and ships its journal to followers.
	RolePrimary
)

// String renders the role for wire and log use.
func (r Role) String() string {
	if r == RolePrimary {
		return "primary"
	}
	return "replica"
}

// Observer receives structural replication events; the metrics package
// adapts it onto the registry (metrics.ReplicaCollector). Implementations
// must be cheap and non-blocking.
type Observer interface {
	// ObserveRole fires on every role or epoch transition.
	ObserveRole(primary bool, epoch uint64)
	// ObserveShipped counts records served to stream polls (primary side).
	ObserveShipped(records int)
	// ObserveStreamPoll counts stream polls served (heartbeats included).
	ObserveStreamPoll()
	// ObserveApplied counts records applied by the follower loop and the
	// time one batch took to apply.
	ObserveApplied(records int, d time.Duration)
	// ObserveLag reports follower lag in journal records after each poll.
	ObserveLag(records uint64)
	// ObserveDivergence counts transcript digest mismatches (either end).
	ObserveDivergence()
	// ObserveQuarantine reports the current quarantined-session count.
	ObserveQuarantine(sessions int)
	// ObserveResync counts snapshot resyncs performed by the follower.
	ObserveResync()
	// ObserveReconnect counts stream reconnect attempts after errors.
	ObserveReconnect()
}

// NopObserver is an Observer that ignores everything.
type NopObserver struct{}

func (NopObserver) ObserveRole(bool, uint64)             {}
func (NopObserver) ObserveShipped(int)                   {}
func (NopObserver) ObserveStreamPoll()                   {}
func (NopObserver) ObserveApplied(int, time.Duration)    {}
func (NopObserver) ObserveLag(uint64)                    {}
func (NopObserver) ObserveDivergence()                   {}
func (NopObserver) ObserveQuarantine(int)                {}
func (NopObserver) ObserveResync()                       {}
func (NopObserver) ObserveReconnect()                    {}

// Config tunes a replication node. Zero values take the defaults below.
type Config struct {
	// Retention bounds the journal tail; a follower further behind than
	// this resyncs from a snapshot. Default 4096 records.
	Retention int
	// PollWait bounds how long the primary holds a stream poll open
	// (server side) and how long a follower asks it to (client side).
	// Default 10s.
	PollWait time.Duration
	// MaxBatch bounds records per stream response. Default 256.
	MaxBatch int
	// RetryMin/RetryMax bound the follower's jittered reconnect backoff.
	// Defaults 100ms / 5s.
	RetryMin time.Duration
	RetryMax time.Duration
	// Client performs the follower's HTTP calls. Default: a client whose
	// timeout exceeds PollWait enough to never cut a healthy long poll.
	Client *http.Client
	// Logger receives replication lifecycle logs. Default log.Default().
	Logger *log.Logger
	// Observer receives structural events. Default NopObserver.
	Observer Observer
}

func (c Config) withDefaults() Config {
	if c.Retention <= 0 {
		c.Retention = 4096
	}
	if c.PollWait <= 0 {
		c.PollWait = 10 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.RetryMin <= 0 {
		c.RetryMin = 100 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 5 * time.Second
	}
	if c.RetryMax < c.RetryMin {
		c.RetryMax = c.RetryMin
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: c.PollWait + 30*time.Second}
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	if c.Observer == nil {
		c.Observer = NopObserver{}
	}
	return c
}

// Node is one replication endpoint: a session.Manager plus a journal,
// a role, and a cluster epoch. The same Node type serves both roles —
// promotion is a state change, not a restart.
type Node struct {
	mgr     *session.Manager
	cfg     Config
	obs     Observer
	logger  *log.Logger
	journal *Journal

	role  atomic.Int32
	epoch atomic.Uint64
	// primaryURL is the upstream base URL ("" on a boot-primary).
	primaryURL atomic.Value

	// applied is the follower's journal cursor; lag is head-applied from
	// the last poll.
	applied atomic.Uint64
	lag     atomic.Uint64

	// quarMu guards quarantined: analyst -> human-readable reason.
	quarMu      sync.Mutex
	quarantined map[string]string // auditlint:guardedby(quarMu)

	// mu serializes role transitions and follower start/stop.
	mu           sync.Mutex
	stopFollower func() // auditlint:guardedby(mu)
	followerDone chan struct{} // auditlint:guardedby(mu)

	// ackMu guards pending follower acks, drained into each stream poll.
	ackMu sync.Mutex
	acks  map[string]WireMark // auditlint:guardedby(ackMu)
}

// NewNode builds a node in the given role at the given epoch. A replica
// node needs StartFollower to begin streaming from primaryURL.
func NewNode(mgr *session.Manager, role Role, epoch uint64, primaryURL string, cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		mgr:         mgr,
		cfg:         cfg,
		obs:         cfg.Observer,
		logger:      cfg.Logger,
		journal:     NewJournal(cfg.Retention),
		quarantined: make(map[string]string),
		acks:        make(map[string]WireMark),
	}
	n.role.Store(int32(role))
	n.epoch.Store(epoch)
	n.primaryURL.Store(primaryURL)
	mgr.SetTap(n)
	n.obs.ObserveRole(role == RolePrimary, epoch)
	return n
}

// Role returns the node's current role.
func (n *Node) Role() Role { return Role(n.role.Load()) }

// Epoch returns the node's current cluster epoch.
func (n *Node) Epoch() uint64 { return n.epoch.Load() }

// Writable reports whether the node currently accepts writes.
func (n *Node) Writable() bool { return n.Role() == RolePrimary }

// PrimaryURL returns the configured upstream base URL, if any.
func (n *Node) PrimaryURL() string {
	s, _ := n.primaryURL.Load().(string)
	return s
}

// Status summarizes the node for the status endpoint and logs.
func (n *Node) Status() StatusResponse {
	st := StatusResponse{
		Role:       n.Role().String(),
		Epoch:      n.Epoch(),
		Head:       n.journal.Head(),
		Applied:    n.applied.Load(),
		Lag:        n.lag.Load(),
		Sessions:   n.mgr.Tracked(),
		PrimaryURL: n.PrimaryURL(),
	}
	n.quarMu.Lock()
	for a := range n.quarantined {
		st.Quarantined = append(st.Quarantined, a)
	}
	n.quarMu.Unlock()
	sort.Strings(st.Quarantined)
	return st
}

// Quarantined reports whether the analyst's session is quarantined on
// this node (divergence detected; serving it would return answers from a
// transcript the primary never produced).
func (n *Node) Quarantined(analyst string) (string, bool) {
	n.quarMu.Lock()
	defer n.quarMu.Unlock()
	reason, ok := n.quarantined[analyst]
	return reason, ok
}

// Quarantine marks the analyst's session divergent by hand. The
// follower loop calls the same path automatically on digest mismatch;
// the exported form exists for operators who spot trouble out of band
// (e.g. a bad disk on the primary) and want a session fenced before the
// next resync. A snapshot resync lifts it like any other quarantine.
func (n *Node) Quarantine(analyst, reason string) { n.quarantine(analyst, reason) }

// quarantine marks the analyst's session divergent and fires the metric.
func (n *Node) quarantine(analyst, reason string) {
	n.quarMu.Lock()
	_, already := n.quarantined[analyst]
	if !already {
		n.quarantined[analyst] = reason
	}
	count := len(n.quarantined)
	n.quarMu.Unlock()
	if already {
		return
	}
	n.obs.ObserveDivergence()
	n.obs.ObserveQuarantine(count)
	n.logger.Printf("replica: QUARANTINE session %q: %s", analyst, reason)
}

// clearQuarantine lifts all quarantines (after a snapshot resync the
// node's state is a fresh verified copy of the primary's).
func (n *Node) clearQuarantine() {
	n.quarMu.Lock()
	cleared := len(n.quarantined)
	n.quarantined = make(map[string]string)
	n.quarMu.Unlock()
	if cleared > 0 {
		n.logger.Printf("replica: cleared %d quarantined session(s) after resync", cleared)
	}
	n.obs.ObserveQuarantine(0)
}

// TapDecision implements session.Tap: journal one committed decision for
// shipping. Only a primary journals its own traffic — on a follower the
// live write path is fenced, and replicated applies bypass the tap by
// design (the follower mirrors the primary's records instead).
func (n *Node) TapDecision(analyst string, seq uint64, ev core.DecisionEvent, digest core.Digest) {
	if n.Role() != RolePrimary {
		return
	}
	n.journal.Append(Record{
		Kind:       RecordDecision,
		Analyst:    analyst,
		SessionSeq: seq,
		Event:      session.EncodeEvent(session.Event{Decision: ev}),
		Digest:     digest.Hex(),
	})
}

// TapUpdate implements session.Tap: journal one dataset update with the
// per-session marks it appended.
func (n *Node) TapUpdate(index int, value float64, marks []session.Mark) {
	if n.Role() != RolePrimary {
		return
	}
	wire := make([]WireMark, len(marks))
	for i, m := range marks {
		wire[i] = WireMark{Analyst: m.Analyst, Seq: m.Seq, Digest: m.Digest.Hex()}
	}
	n.journal.Append(Record{
		Kind:     RecordUpdate,
		Index:    index,
		Value:    value,
		Sessions: wire,
	})
}

// JournalSessionImport journals a whole migrated-in session for the
// followers. A cross-shard import replays the journal directly into the
// manager (session.Manager.Import), bypassing the decision tap — so
// without this record a follower would see the session's NEXT event
// arrive at a sequence far past 1 and quarantine it as a gap. Call it
// on the primary immediately after a successful import, while still
// serving the import request (no decision for the analyst can land in
// between: the session was not owned here before the import, and
// ownership traffic follows the migration).
func (n *Node) JournalSessionImport(snap session.LogSnapshot) {
	if n.Role() != RolePrimary {
		return
	}
	n.journal.Append(Record{
		Kind:     RecordSession,
		Analyst:  snap.Analyst,
		Snapshot: &snap,
	})
}

// JournalSessionForget journals a migrated-away session's drop so
// followers drop their copy too instead of carrying an orphaned
// timeline into a future promotion.
func (n *Node) JournalSessionForget(analyst string) {
	if n.Role() != RolePrimary {
		return
	}
	n.journal.Append(Record{Kind: RecordForget, Analyst: analyst})
}

// Promote makes a replica the primary: stops the follower loop, bumps
// the cluster epoch past everything this node has seen, and fences the
// old primary (best effort — the epoch carried by any surviving
// follower's stream request fences it too). Idempotent on a primary.
func (n *Node) Promote() (uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.Role() == RolePrimary {
		return n.Epoch(), nil
	}
	n.stopFollowerLocked()
	epoch := n.Epoch() + 1
	n.epoch.Store(epoch)
	n.role.Store(int32(RolePrimary))
	n.lag.Store(0)
	n.obs.ObserveRole(true, epoch)
	n.logger.Printf("replica: PROMOTED to primary at epoch %d (journal head %d)", epoch, n.journal.Head())
	if url := n.PrimaryURL(); url != "" {
		go n.sendDemote(url, epoch)
	}
	return epoch, nil
}

// AdoptEpoch raises the node's epoch to at least e without changing its
// role — the restart path: a node rejoining the cluster resumes the
// fence it last persisted instead of epoch 0, which any promoted peer
// would immediately override. Never lowers the epoch.
func (n *Node) AdoptEpoch(e uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if e <= n.Epoch() {
		return
	}
	n.epoch.Store(e)
	n.obs.ObserveRole(n.Role() == RolePrimary, e)
}

// Demote steps a primary down after seeing a higher epoch — the fencing
// arm of promotion. A demoted node stops accepting writes immediately;
// pointing it at the new primary as a follower is an operator action
// (restart with -role=replica), not automatic.
func (n *Node) Demote(epoch uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if epoch <= n.Epoch() {
		return // stale fencing notice; a primary never steps down for it
	}
	n.epoch.Store(epoch)
	if n.Role() == RolePrimary {
		n.role.Store(int32(RoleReplica))
		n.logger.Printf("replica: DEMOTED at epoch %d (a node with a higher epoch is primary)", n.Epoch())
	}
	n.obs.ObserveRole(n.Role() == RolePrimary, n.Epoch())
}

// stopFollowerLocked cancels the follower loop and waits it out; n.mu held.
func (n *Node) stopFollowerLocked() {
	if n.stopFollower == nil {
		return
	}
	n.stopFollower()
	<-n.followerDone
	n.stopFollower = nil
	n.followerDone = nil
}

// pendAck queues the follower's applied position of one session for the
// next stream poll.
func (n *Node) pendAck(analyst string, seq uint64, digest core.Digest) {
	n.ackMu.Lock()
	n.acks[analyst] = WireMark{Analyst: analyst, Seq: seq, Digest: digest.Hex()}
	n.ackMu.Unlock()
}

// drainAcks returns and clears the pending acks.
func (n *Node) drainAcks() []WireMark {
	n.ackMu.Lock()
	defer n.ackMu.Unlock()
	if len(n.acks) == 0 {
		return nil
	}
	out := make([]WireMark, 0, len(n.acks))
	for _, m := range n.acks {
		out = append(out, m)
	}
	n.acks = make(map[string]WireMark)
	sort.Slice(out, func(i, j int) bool { return out[i].Analyst < out[j].Analyst })
	return out
}

// checkAck cross-checks a follower-reported position against the local
// session (primary side). Digest comparison is only meaningful when the
// follower acks the exact sequence the primary is at; historical acks
// are skipped (the primary keeps no digest history).
func (n *Node) checkAck(m WireMark) {
	seq, digest, ok := n.mgr.PositionOf(m.Analyst)
	if !ok || m.Seq != seq {
		return
	}
	want, err := core.ParseDigest(m.Digest)
	if err != nil || want == digest {
		return
	}
	n.obs.ObserveDivergence()
	n.logger.Printf("replica: DIVERGENCE acked by follower for session %q at seq %d: follower digest %s, primary %s",
		m.Analyst, m.Seq, m.Digest, digest.Hex())
}
