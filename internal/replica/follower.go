package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"queryaudit/internal/core"
	"queryaudit/internal/session"
)

// Sentinel conditions of the stream protocol.
var (
	// errTrimmed: the primary trimmed past our cursor; resync required.
	errTrimmed = errors.New("replica: cursor behind primary's retained journal")
	// errFenced: the upstream node answered with a role/epoch conflict.
	errFenced = errors.New("replica: upstream refused the stream (role or epoch conflict)")
)

// StartFollower launches the replication loop streaming from the node's
// configured primary URL. It returns immediately; the loop runs until
// ctx is cancelled or the node is promoted. Calling it on a primary or
// twice without stopping is an error.
func (n *Node) StartFollower(ctx context.Context) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.Role() != RoleReplica {
		return fmt.Errorf("replica: StartFollower on a %s node", n.Role())
	}
	if n.stopFollower != nil {
		return errors.New("replica: follower already running")
	}
	if n.PrimaryURL() == "" {
		return errors.New("replica: follower needs a primary URL")
	}
	fctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	n.stopFollower = cancel
	n.followerDone = done
	go func() {
		defer close(done)
		n.runFollower(fctx)
	}()
	return nil
}

// StopFollower stops the replication loop if it is running.
func (n *Node) StopFollower() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stopFollowerLocked()
}

// runFollower is the replication loop: snapshot resync, then long-poll
// the stream, applying and verifying each record. Any transport or
// protocol error backs off with jitter and reconnects; a trimmed cursor
// forces a fresh resync.
func (n *Node) runFollower(ctx context.Context) {
	backoff := n.cfg.RetryMin
	needResync := true // a follower ALWAYS starts from a snapshot
	for ctx.Err() == nil && n.Role() == RoleReplica {
		if needResync {
			if err := n.resync(ctx); err != nil {
				if ctx.Err() != nil {
					return
				}
				n.logger.Printf("replica: resync failed: %v (retrying in %s)", err, backoff)
				n.obs.ObserveReconnect()
				backoff = n.sleep(ctx, backoff)
				continue
			}
			needResync = false
			backoff = n.cfg.RetryMin
		}
		resp, err := n.poll(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			if errors.Is(err, errTrimmed) {
				n.logger.Printf("replica: stream cursor trimmed upstream; resyncing from snapshot")
				needResync = true
				continue
			}
			n.logger.Printf("replica: stream poll failed: %v (retrying in %s)", err, backoff)
			n.obs.ObserveReconnect()
			backoff = n.sleep(ctx, backoff)
			continue
		}
		backoff = n.cfg.RetryMin
		if resp.Epoch > n.Epoch() {
			// A promotion happened upstream of our upstream; adopt it.
			n.epoch.Store(resp.Epoch)
			n.obs.ObserveRole(n.Role() == RolePrimary, resp.Epoch)
		}
		start := time.Now()
		for _, rec := range resp.Records {
			n.applyRecord(rec)
		}
		if len(resp.Records) > 0 {
			n.obs.ObserveApplied(len(resp.Records), time.Since(start))
		}
		applied := n.applied.Load()
		var lag uint64
		if resp.Head > applied {
			lag = resp.Head - applied
		}
		n.lag.Store(lag)
		n.obs.ObserveLag(lag)
	}
}

// sleep waits the backoff duration with ±25% jitter (decorrelating the
// retry storms of many followers) and returns the doubled, capped next
// backoff.
func (n *Node) sleep(ctx context.Context, backoff time.Duration) time.Duration {
	jittered := backoff/2 + backoff/4 + time.Duration(rand.Int63n(int64(backoff/2)+1))
	t := time.NewTimer(jittered)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
	next := backoff * 2
	if next > n.cfg.RetryMax {
		next = n.cfg.RetryMax
	}
	return next
}

// resync seeds the follower from a primary snapshot: restore the dataset
// state and every session journal (rebuilding auditor state by replay),
// drop sessions the primary no longer tracks, and point the journal
// cursor at the snapshot's cut. All quarantines lift — the node's state
// is a fresh verified copy.
func (n *Node) resync(ctx context.Context) error {
	var snap SnapshotResponse
	if err := n.call(ctx, http.MethodGet, n.PrimaryURL(), "/v1/replication/snapshot", nil, &snap); err != nil {
		return err
	}
	if snap.Epoch < n.Epoch() {
		return fmt.Errorf("%w: snapshot from epoch %d, ours is %d", errFenced, snap.Epoch, n.Epoch())
	}
	if err := n.mgr.RestoreSensitiveState(snap.Sensitive); err != nil {
		return fmt.Errorf("replica: snapshot dataset state: %w", err)
	}
	if err := n.mgr.Restore(snap.Sessions); err != nil {
		return fmt.Errorf("replica: snapshot sessions: %w", err)
	}
	keep := make(map[string]bool, len(snap.Sessions))
	for _, ls := range snap.Sessions {
		keep[ls.Analyst] = true
	}
	for _, info := range n.mgr.Sessions() {
		if !keep[info.Analyst] {
			n.mgr.Drop(info.Analyst)
		}
	}
	if snap.Epoch > n.Epoch() {
		n.epoch.Store(snap.Epoch)
		n.obs.ObserveRole(n.Role() == RolePrimary, snap.Epoch)
	}
	n.journal.Reset(snap.Cursor)
	n.applied.Store(snap.Cursor)
	n.clearQuarantine()
	n.obs.ObserveResync()
	n.logger.Printf("replica: resynced from snapshot: %d session(s), cursor %d, epoch %d",
		len(snap.Sessions), snap.Cursor, snap.Epoch)
	return nil
}

// poll performs one long-poll of the primary's stream endpoint.
func (n *Node) poll(ctx context.Context) (StreamResponse, error) {
	req := StreamRequest{
		After:  n.applied.Load(),
		Epoch:  n.Epoch(),
		WaitMS: n.cfg.PollWait.Milliseconds(),
		Max:    n.cfg.MaxBatch,
		Acks:   n.drainAcks(),
	}
	var resp StreamResponse
	err := n.call(ctx, http.MethodPost, n.PrimaryURL(), "/v1/replication/stream", req, &resp)
	return resp, err
}

// sendDemote is the push arm of fencing: a freshly promoted node tells
// its old primary, best effort, that a higher epoch exists. Failure is
// fine — the old primary also fences itself on the next stream request
// it sees carrying the higher epoch.
func (n *Node) sendDemote(base string, epoch uint64) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var resp PromoteResponse
	if err := n.call(ctx, http.MethodPost, base, "/v1/replication/demote", DemoteRequest{Epoch: epoch}, &resp); err != nil {
		n.logger.Printf("replica: best-effort demote of %s failed: %v", base, err)
		return
	}
	n.logger.Printf("replica: old primary %s acknowledged demote (now %s at epoch %d)", base, resp.Role, resp.Epoch)
}

// call performs one JSON round trip against a peer node.
func (n *Node) call(ctx context.Context, method, base, path string, body, out any) error {
	url := strings.TrimSuffix(base, "/") + path
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(out)
	case http.StatusGone:
		return errTrimmed
	case http.StatusMisdirectedRequest:
		var eb errorBody
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&eb)
		return fmt.Errorf("%w: %s", errFenced, eb.Error)
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return fmt.Errorf("replica: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
	}
}

// applyRecord applies one shipped journal record, verifies the resulting
// transcript digest against the primary's, mirrors the record into the
// local journal (preserving global sequence numbers across a future
// promote), and advances the cursor. A digest mismatch or replay error
// quarantines the affected session; the stream keeps flowing for the
// rest.
func (n *Node) applyRecord(rec Record) {
	if rec.Seq <= n.applied.Load() {
		return // re-delivery across a snapshot handoff
	}
	switch rec.Kind {
	case RecordDecision:
		n.applyDecision(rec)
	case RecordUpdate:
		n.applyUpdate(rec)
	case RecordSession:
		n.applySession(rec)
	case RecordForget:
		n.mgr.Drop(rec.Analyst)
	default:
		n.logger.Printf("replica: unknown record kind %q at seq %d (skipped)", rec.Kind, rec.Seq)
	}
	n.journal.Mirror(rec)
	n.applied.Store(rec.Seq)
}

func (n *Node) applyDecision(rec Record) {
	if _, bad := n.Quarantined(rec.Analyst); bad {
		return // mirror only; the session is already known-divergent
	}
	// Session sequence 1 means the primary restarted this session's
	// timeline (expiry and re-creation); drop any stale local copy so the
	// new timeline starts clean.
	if rec.SessionSeq == 1 {
		if seq, ok := n.mgr.SeqOf(rec.Analyst); ok && seq > 0 {
			n.mgr.Drop(rec.Analyst)
		}
	}
	ev, err := session.DecodeEvent(rec.Event)
	if err != nil || ev.Update {
		n.quarantine(rec.Analyst, fmt.Sprintf("malformed decision record at seq %d: %v", rec.Seq, err))
		return
	}
	digest, err := n.mgr.ApplyDecision(rec.Analyst, rec.SessionSeq, ev.Decision)
	if err != nil {
		if errors.Is(err, session.ErrApplyStale) {
			return // snapshot already contained this event
		}
		n.quarantine(rec.Analyst, fmt.Sprintf("apply at session seq %d: %v", rec.SessionSeq, err))
		return
	}
	want, err := core.ParseDigest(rec.Digest)
	if err != nil {
		n.quarantine(rec.Analyst, fmt.Sprintf("malformed digest at seq %d: %v", rec.Seq, err))
		return
	}
	if digest != want {
		n.quarantine(rec.Analyst, fmt.Sprintf(
			"transcript digest mismatch at session seq %d: local %s, primary %s",
			rec.SessionSeq, digest.Hex(), want.Hex()))
		return
	}
	n.pendAck(rec.Analyst, rec.SessionSeq, digest)
}

// applySession applies a migrated-in session journal (cross-shard
// import on the primary): rebuild the session by replaying the shipped
// journal, exactly as the primary's import did. The snapshot's own
// digest chain authenticates the payload (Manager.Import validates it);
// an existing local timeline that is not a prefix of the shipped one is
// dropped and re-imported — the primary's copy is authoritative.
func (n *Node) applySession(rec Record) {
	if _, bad := n.Quarantined(rec.Analyst); bad {
		return
	}
	if rec.Snapshot == nil || rec.Snapshot.Analyst != rec.Analyst {
		n.quarantine(rec.Analyst, fmt.Sprintf("malformed session record at seq %d", rec.Seq))
		return
	}
	_, _, err := n.mgr.Import(*rec.Snapshot)
	if errors.Is(err, session.ErrImportConflict) {
		n.mgr.Drop(rec.Analyst)
		_, _, err = n.mgr.Import(*rec.Snapshot)
	}
	if err != nil {
		n.quarantine(rec.Analyst, fmt.Sprintf("session import at seq %d: %v", rec.Seq, err))
		return
	}
	if seq, digest, ok := n.mgr.PositionOf(rec.Analyst); ok {
		n.pendAck(rec.Analyst, seq, digest)
	}
}

func (n *Node) applyUpdate(rec Record) {
	marks := make([]session.Mark, 0, len(rec.Sessions))
	for _, wm := range rec.Sessions {
		if _, bad := n.Quarantined(wm.Analyst); bad {
			continue
		}
		d, err := core.ParseDigest(wm.Digest)
		if err != nil {
			n.quarantine(wm.Analyst, fmt.Sprintf("malformed update mark digest at seq %d: %v", rec.Seq, err))
			continue
		}
		marks = append(marks, session.Mark{Analyst: wm.Analyst, Seq: wm.Seq, Digest: d})
	}
	outcomes, err := n.mgr.ApplyUpdate(rec.Index, rec.Value, marks)
	if err != nil {
		if errors.Is(err, session.ErrApplyStale) {
			return // snapshot already reflected this update
		}
		// A global failure (index out of range, non-updatable stack) means
		// this node's deployment disagrees with the primary's; that is
		// divergence of every session the update names.
		for _, m := range marks {
			n.quarantine(m.Analyst, fmt.Sprintf("update at seq %d: %v", rec.Seq, err))
		}
		return
	}
	for _, out := range outcomes {
		if out.Err != nil {
			if errors.Is(out.Err, session.ErrApplyStale) {
				continue
			}
			n.quarantine(out.Analyst, fmt.Sprintf("update mark at session seq %d: %v", out.Seq, out.Err))
			continue
		}
		var want core.Digest
		for _, m := range marks {
			if m.Analyst == out.Analyst {
				want = m.Digest
				break
			}
		}
		if out.Digest != want {
			n.quarantine(out.Analyst, fmt.Sprintf(
				"transcript digest mismatch after update at session seq %d: local %s, primary %s",
				out.Seq, out.Digest.Hex(), want.Hex()))
			continue
		}
		n.pendAck(out.Analyst, out.Seq, out.Digest)
	}
}
