package replica

import (
	"queryaudit/internal/dataset"
	"queryaudit/internal/session"
)

// Wire types for the replication protocol. Everything is JSON over the
// deployment's ordinary HTTP surface (see handlers.go); the protocol is
// deliberately dumb — a single totally-ordered journal, shipped in
// batches by long-poll — because the hard part (rebuilding auditor state
// bit-identically) is already solved by the simulatability replay in
// internal/core, and the digest chain makes any transport or replay
// defect detectable instead of trusted-away.

// Record kinds.
const (
	// RecordDecision carries one committed protocol decision of one
	// session, exactly as journaled by the primary.
	RecordDecision = "decision"
	// RecordUpdate carries one global dataset update: the mutation itself
	// plus the journal marks it appended to every session that existed on
	// the primary at that instant.
	RecordUpdate = "update"
	// RecordSession carries one whole session journal, shipped when a
	// cross-shard migration imports a session onto this primary: the
	// imported history never passed through the decision tap, so the
	// follower receives it as a unit and rebuilds by replay, exactly as
	// the primary did.
	RecordSession = "session"
	// RecordForget announces that a session was migrated away (dropped at
	// a verified position); the follower drops its copy too.
	RecordForget = "forget"
)

// WireMark is a session journal position on the wire: analyst, sequence
// number, and hex transcript digest after the event at that sequence.
type WireMark struct {
	Analyst string `json:"analyst"`
	Seq     uint64 `json:"seq"`
	Digest  string `json:"digest"`
}

// Record is one entry of the global replication journal.
type Record struct {
	// Seq is the global journal sequence number (1-based, dense).
	Seq uint64 `json:"seq"`
	// Kind is RecordDecision or RecordUpdate.
	Kind string `json:"kind"`

	// Decision fields (Kind == RecordDecision).
	Analyst string `json:"analyst,omitempty"`
	// SessionSeq is the per-session sequence number of the event.
	SessionSeq uint64 `json:"session_seq,omitempty"`
	// Event is the decision in its serializable journal form.
	Event session.EventSnapshot `json:"event,omitempty"`
	// Digest is the primary's transcript digest after this event; the
	// follower recomputes its own and quarantines the session on
	// mismatch.
	Digest string `json:"digest,omitempty"`

	// Update fields (Kind == RecordUpdate).
	Index int     `json:"index,omitempty"`
	Value float64 `json:"value,omitempty"`
	// Sessions are the per-session marker positions the update appended.
	Sessions []WireMark `json:"sessions,omitempty"`

	// Snapshot is the whole-journal payload (Kind == RecordSession). The
	// snapshot's own digest chain authenticates it; Analyst names the
	// session for RecordSession and RecordForget alike.
	Snapshot *session.LogSnapshot `json:"snapshot,omitempty"`
}

// StreamRequest is the body of POST /v1/replication/stream: a long-poll
// for journal records after a cursor. Acks report the follower's applied
// positions since its previous poll so the primary can cross-check
// digests (divergence is detected on BOTH ends) and export lag.
type StreamRequest struct {
	// After is the highest global sequence the follower has applied.
	After uint64 `json:"after"`
	// Epoch is the follower's cluster epoch; a request carrying a higher
	// epoch than the serving node fences it (the old primary demotes).
	Epoch uint64 `json:"epoch"`
	// WaitMS bounds how long the primary may hold the poll open waiting
	// for records (capped by the primary's own configured maximum).
	WaitMS int64 `json:"wait_ms,omitempty"`
	// Max bounds the batch size (capped by the primary).
	Max int `json:"max,omitempty"`
	// Acks are per-session positions the follower applied since the last
	// poll.
	Acks []WireMark `json:"acks,omitempty"`
}

// StreamResponse is the body of a successful stream poll. An empty
// Records slice after the wait window is the heartbeat: the connection
// and the primary are alive, there is just nothing to ship.
type StreamResponse struct {
	Epoch   uint64   `json:"epoch"`
	Records []Record `json:"records"`
	// Head is the primary's current journal head, for lag accounting.
	Head uint64 `json:"head"`
}

// SnapshotResponse is the body of GET /v1/replication/snapshot: a
// consistent seed for follower catch-up. The follower restores the
// session journals (rebuilding auditor state by replay), overwrites its
// dataset's mutable half, and then streams from Cursor; records at or
// below Cursor that reappear in the stream are skipped as re-delivery.
type SnapshotResponse struct {
	Epoch  uint64 `json:"epoch"`
	Cursor uint64 `json:"cursor"`
	// Sessions are every tracked session's journal, digests included.
	Sessions []session.LogSnapshot `json:"sessions"`
	// Sensitive is the dataset's mutable half as of the same cut.
	Sensitive dataset.SensitiveState `json:"sensitive"`
}

// PromoteResponse is the body of POST /v1/replication/promote.
type PromoteResponse struct {
	Role  string `json:"role"`
	Epoch uint64 `json:"epoch"`
}

// DemoteRequest is the body of POST /v1/replication/demote: a fencing
// notice that a node with the given (higher) epoch is now primary.
type DemoteRequest struct {
	Epoch uint64 `json:"epoch"`
}

// StatusResponse is the body of GET /v1/replication/status.
type StatusResponse struct {
	Role    string `json:"role"`
	Epoch   uint64 `json:"epoch"`
	Head    uint64 `json:"head"`
	Applied uint64 `json:"applied"`
	Lag     uint64 `json:"lag"`
	// Sessions is the node's tracked-session count, surfaced so the
	// cluster ring (GET /v1/cluster) can report per-shard load.
	Sessions    int      `json:"sessions"`
	PrimaryURL  string   `json:"primary_url,omitempty"`
	Quarantined []string `json:"quarantined,omitempty"`
}

// errorBody mirrors the server package's error envelope, with the
// role-aware fields a misdirected client needs to find the primary.
type errorBody struct {
	Error      string `json:"error"`
	Role       string `json:"role,omitempty"`
	Epoch      uint64 `json:"epoch,omitempty"`
	PrimaryURL string `json:"primary_url,omitempty"`
}
