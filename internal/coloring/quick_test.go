package coloring

import (
	"math/rand"
	"testing"
	"testing/quick"

	"queryaudit/internal/query"
	"queryaudit/internal/synopsis"
)

// randomTruthSynopsis builds a consistent synopsis by answering random
// max/min queries from a real duplicate-free dataset on [0,1].
func randomTruthSynopsis(seed int64, n, steps int) (*synopsis.MaxMin, []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	used := map[float64]bool{}
	for i := range xs {
		v := rng.Float64()
		for used[v] {
			v = rng.Float64()
		}
		used[v] = true
		xs[i] = v
	}
	b := synopsis.NewMaxMin(n, 0, 1)
	for s := 0; s < steps; s++ {
		var idx []int
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			continue
		}
		set := query.NewSet(idx...)
		q := query.Query{Set: set, Kind: query.Max}
		if rng.Intn(2) == 0 {
			q.Kind = query.Min
		}
		ans := q.Eval(xs)
		if q.Kind == query.Max {
			_ = b.AddMax(set, ans)
		} else {
			_ = b.AddMin(set, ans)
		}
	}
	return b, xs
}

// TestQuickGraphWellFormed: graphs from consistent synopses always admit
// the dataset-induced coloring, which is always valid; the chain never
// leaves the valid set; sampled datasets always satisfy the synopsis.
func TestQuickGraphWellFormed(t *testing.T) {
	check := func(seed int64) bool {
		b, xs := randomTruthSynopsis(seed, 6, 5)
		g, err := Build(b)
		if err != nil {
			return false
		}
		c, err := g.ColoringFromDataset(xs)
		if err != nil || !g.Valid(c) {
			return false
		}
		rng := rand.New(rand.NewSource(seed + 1))
		s, err := NewSamplerFrom(g, rng, c)
		if err != nil {
			return false
		}
		for step := 0; step < 50; step++ {
			s.Step()
			if !g.Valid(s.Coloring()) {
				return false
			}
		}
		// Lemma 1 sampling: the result must satisfy every predicate.
		ys := s.SampleDataset(rng)
		return satisfies(b, ys)
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(61))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// satisfies checks a dataset against all synopsis predicates.
func satisfies(b *synopsis.MaxMin, xs []float64) bool {
	for _, p := range b.MaxPreds() {
		m := xs[p.Set[0]]
		for _, i := range p.Set[1:] {
			if xs[i] > m {
				m = xs[i]
			}
		}
		switch p.Op {
		case synopsis.OpEq:
			if m != p.Value {
				return false
			}
		case synopsis.OpLt:
			if m >= p.Value {
				return false
			}
		case synopsis.OpLe:
			if m > p.Value {
				return false
			}
		}
	}
	for _, p := range b.MinPreds() {
		m := xs[p.Set[0]]
		for _, i := range p.Set[1:] {
			if xs[i] < m {
				m = xs[i]
			}
		}
		switch p.Op {
		case synopsis.OpEq:
			if m != p.Value {
				return false
			}
		case synopsis.OpLt:
			if m <= p.Value {
				return false
			}
		case synopsis.OpLe:
			if m < p.Value {
				return false
			}
		}
	}
	return true
}

// TestQuickInitialColoringAgreesWithExistence: whenever enumeration
// finds a valid coloring, the backtracking search finds one too.
func TestQuickInitialColoringAgreesWithExistence(t *testing.T) {
	check := func(seed int64) bool {
		b, _ := randomTruthSynopsis(seed, 5, 4)
		g, err := Build(b)
		if err != nil {
			return false
		}
		all := enumerate(g)
		c, err := g.InitialColoring()
		if len(all) == 0 {
			return err != nil
		}
		return err == nil && g.Valid(c)
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(67))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
