package coloring

import (
	"math"
	"math/rand"
	"testing"

	"queryaudit/internal/query"
	"queryaudit/internal/synopsis"
)

// TestPaperVolumeExample reproduces the Section 3.2 worked example
// numerically: with predicates [max{x_a,x_b,x_c} = 1] and
// [min{x_a,x_b} = 0.2], enumerating the consistent line segments gives
// total volume 3.6 and Pr{x_a = 1 | B} = 1/3.6 = 5/18. In the coloring
// view that probability is π_a(max-node): the stationary probability
// that a is the max witness.
func TestPaperVolumeExample(t *testing.T) {
	// Use a slightly sub-1 bound so the ambient range [0,1] keeps the
	// exact geometry of the paper (M = 1 works too; ranges are [0.2, 1]
	// for a, b and [0, 1] for c either way).
	b := synopsis.NewMaxMin(3, 0, 1)
	if err := b.AddMax(query.NewSet(0, 1, 2), 1); err != nil { // a=0,b=1,c=2
		t.Fatal(err)
	}
	if err := b.AddMin(query.NewSet(0, 1), 0.2); err != nil {
		t.Fatal(err)
	}
	g, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}

	// Exact: P̃(c) ∝ ∏ ℓ_{c(v)} over valid colorings; the max witness
	// probabilities follow by summation. ℓ_a = ℓ_b = 1/0.8, ℓ_c = 1.
	exact := map[string]float64{}
	var z float64
	for _, c := range enumerate(g) {
		w := g.Weight(c)
		exact[key(c)] += w
		z += w
	}
	// Pr{x_a = 1} = Σ over colorings where the max node picks a.
	var maxNode int
	for vi, v := range g.Nodes {
		if v.IsMax {
			maxNode = vi
		}
	}
	pA := 0.0
	for _, c := range enumerate(g) {
		if c[maxNode] == 0 {
			pA += g.Weight(c) / z
		}
	}
	want := 5.0 / 18
	if math.Abs(pA-want) > 1e-12 {
		t.Fatalf("exact P(x_a = 1) = %g, paper says 5/18 = %g", pA, want)
	}

	// And the Markov chain agrees.
	rng := rand.New(rand.NewSource(5))
	s, err := NewSampler(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	s.Mix(5)
	hits := 0
	const samples = 80000
	for i := 0; i < samples; i++ {
		for k := 0; k < 6; k++ {
			s.Step()
		}
		if s.Coloring()[maxNode] == 0 {
			hits++
		}
	}
	got := float64(hits) / samples
	if math.Abs(got-want) > 0.012 {
		t.Fatalf("chain P(x_a = 1) = %g, want %g", got, want)
	}
}
