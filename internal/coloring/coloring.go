// Package coloring implements the graph-coloring view of posterior
// inference for bags of max and min queries (Section 3.2, Lemmas 1–3).
//
// Each equality predicate of the combined synopsis becomes a node; its
// available colors are the elements of its query set that could actually
// attain its value. Two nodes are adjacent when their query sets
// intersect (and their values differ — a pinned element legitimately
// witnesses both of its singleton predicates). A valid coloring assigns
// each node a witness such that adjacent nodes pick different elements;
// the target distribution is
//
//	P̃(c) ∝ ∏_v ℓ_{c(v)},  ℓ_i = 1/|R_i|,
//
// and Lemma 1 shows that sampling a coloring from P̃, fixing the chosen
// witnesses, and filling every other element uniformly from its range
// samples a dataset exactly from the posterior P(X | B).
//
// The Markov chain is the paper's Metropolized single-site update: pick a
// node uniformly, propose a color from its palette with probability
// proportional to ℓ, accept iff the result stays valid. Lemma 2 gives
// the stationarity of P̃; Lemma 3 gives O(k log k) mixing under the
// degree condition |S(v)| ≥ d_v + 2 that the auditor enforces by outright
// denial.
package coloring

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/synopsis"
)

// ErrNoValidColoring reports that no witness assignment satisfies the
// constraints — the synopsis state is inconsistent.
var ErrNoValidColoring = errors.New("coloring: no valid coloring exists")

// Node is one equality predicate in the coloring graph.
type Node struct {
	// Value is the predicate's answer A(v).
	Value float64
	// IsMax records which side the predicate came from (diagnostics).
	IsMax bool
	// Set is the predicate's full query set S(v).
	Set query.Set
	// Colors are the feasible witnesses: elements of Set whose range
	// admits Value.
	Colors []int
	// Weights[i] is ℓ_{Colors[i]} = 1/|R_{Colors[i]}| (pinned elements
	// get weight 1; they are forced anyway).
	Weights []float64
	// Adj lists adjacent node indices (intersecting sets, different
	// values).
	Adj []int
}

// Graph is the coloring graph of a synopsis.
type Graph struct {
	Nodes []Node
	n     int
	b     *synopsis.MaxMin
}

// Build constructs the coloring graph from a combined synopsis. Ranges
// (and hence weights) use the synopsis's ambient [α, β] bounds, which
// must be finite for weights to be meaningful.
func Build(b *synopsis.MaxMin) (*Graph, error) {
	if math.IsInf(b.Alpha(), 0) || math.IsInf(b.Beta(), 0) {
		return nil, fmt.Errorf("coloring: synopsis must have finite data range, got [%g,%g]", b.Alpha(), b.Beta())
	}
	g := &Graph{n: b.N(), b: b}
	add := func(p synopsis.Pred, isMax bool) error {
		if !p.Eq() {
			return nil
		}
		node := Node{Value: p.Value, IsMax: isMax, Set: p.Set}
		for _, i := range p.Set {
			r := b.RangeOf(i)
			if !r.Contains(p.Value) {
				continue
			}
			w := 1.0
			if l := r.Length(); l > 0 {
				w = 1 / l
			}
			node.Colors = append(node.Colors, i)
			node.Weights = append(node.Weights, w)
		}
		if len(node.Colors) == 0 {
			return ErrNoValidColoring
		}
		g.Nodes = append(g.Nodes, node)
		return nil
	}
	for _, p := range b.MaxPreds() {
		if err := add(p, true); err != nil {
			return nil, err
		}
	}
	for _, p := range b.MinPreds() {
		if err := add(p, false); err != nil {
			return nil, err
		}
	}
	// Adjacency: intersecting sets with different values. Same-side sets
	// are disjoint, so only max–min pairs can meet.
	for i := range g.Nodes {
		for j := i + 1; j < len(g.Nodes); j++ {
			if g.Nodes[i].Value == g.Nodes[j].Value {
				continue // the pinned singleton pair shares its witness
			}
			if g.Nodes[i].Set.Overlaps(g.Nodes[j].Set) {
				g.Nodes[i].Adj = append(g.Nodes[i].Adj, j)
				g.Nodes[j].Adj = append(g.Nodes[j].Adj, i)
			}
		}
	}
	return g, nil
}

// K returns the number of nodes (equality predicates).
func (g *Graph) K() int { return len(g.Nodes) }

// MeetsLemma2 reports whether every node satisfies the paper's degree
// condition |S(v)| ≥ d_v + 2 guaranteeing ergodicity and O(k log k)
// mixing. Forced nodes (a single feasible color) are exempt: the chain
// never needs to move them.
func (g *Graph) MeetsLemma2() bool {
	for _, v := range g.Nodes {
		if len(v.Colors) == 1 {
			continue
		}
		if len(v.Set) < len(v.Adj)+2 {
			return false
		}
	}
	return true
}

// Valid reports whether assignment c (node index → element) is a valid
// coloring: every node colored from its palette and no adjacent pair
// sharing an element.
func (g *Graph) Valid(c []int) bool {
	if len(c) != len(g.Nodes) {
		return false
	}
	for vi, v := range g.Nodes {
		ok := false
		for _, col := range v.Colors {
			if col == c[vi] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
		for _, u := range v.Adj {
			if c[u] == c[vi] {
				return false
			}
		}
	}
	return true
}

// Weight returns the unnormalized P̃ weight ∏ ℓ_{c(v)} of a coloring.
func (g *Graph) Weight(c []int) float64 {
	w := 1.0
	for vi, v := range g.Nodes {
		for k, col := range v.Colors {
			if col == c[vi] {
				w *= v.Weights[k]
				break
			}
		}
	}
	return w
}

// InitialColoring finds some valid coloring by backtracking over nodes in
// most-constrained-first order. The attacker can run the same procedure,
// so using it keeps the auditor simulatable.
func (g *Graph) InitialColoring() ([]int, error) {
	k := len(g.Nodes)
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	// Most constrained (fewest colors) first.
	for i := 1; i < k; i++ {
		for j := i; j > 0 && len(g.Nodes[order[j]].Colors) < len(g.Nodes[order[j-1]].Colors); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	c := make([]int, k)
	for i := range c {
		c[i] = -1
	}
	var rec func(pos int) bool
	rec = func(pos int) bool {
		if pos == k {
			return true
		}
		vi := order[pos]
		v := g.Nodes[vi]
		for _, col := range v.Colors {
			clash := false
			for _, u := range v.Adj {
				if c[u] == col && g.Nodes[u].Value != v.Value {
					clash = true
					break
				}
			}
			if clash {
				continue
			}
			c[vi] = col
			if rec(pos + 1) {
				return true
			}
			c[vi] = -1
		}
		return false
	}
	if !rec(0) {
		return nil, ErrNoValidColoring
	}
	return c, nil
}

// ColoringFromDataset reconstructs the unique coloring a concrete dataset
// induces (Lemma 1's correspondence): each equality predicate's witness
// is the element attaining its value.
func (g *Graph) ColoringFromDataset(xs []float64) ([]int, error) {
	c := make([]int, len(g.Nodes))
	for vi, v := range g.Nodes {
		c[vi] = -1
		for _, i := range v.Set {
			if xs[i] == v.Value {
				c[vi] = i
				break
			}
		}
		if c[vi] == -1 {
			return nil, fmt.Errorf("coloring: dataset does not attain predicate value %g", v.Value)
		}
	}
	return c, nil
}

// SpaceSize returns the product of palette sizes — an upper bound on the
// number of colorings — saturating at cap.
func (g *Graph) SpaceSize(cap int) int {
	size := 1
	for _, v := range g.Nodes {
		size *= len(v.Colors)
		if size >= cap || size < 0 {
			return cap
		}
	}
	return size
}

// ExactWitnessProbs computes the exact marginal witness probabilities
// π_i(v) under P̃ by enumerating all valid colorings — the paper's
// Section 3.2 fallback for graphs that fail Lemma 2's degree condition
// ("it is also possible to convert the problem to one of inference …").
// It refuses (ok=false) when the coloring space exceeds limit. probs is
// indexed like the node palettes: probs[v][ci] is the probability node v
// picks its ci-th color.
func ExactWitnessProbs(g *Graph, limit int) (probs [][]float64, ok bool) {
	if g.SpaceSize(limit) >= limit {
		return nil, false
	}
	probs = make([][]float64, g.K())
	for v := range probs {
		probs[v] = make([]float64, len(g.Nodes[v].Colors))
	}
	var z float64
	c := make([]int, g.K())
	idx := make([]int, g.K())
	var rec func(v int, w float64)
	rec = func(v int, w float64) {
		if v == g.K() {
			z += w
			for u := range c {
				probs[u][idx[u]] += w
			}
			return
		}
		node := g.Nodes[v]
	next:
		for ci, col := range node.Colors {
			for _, u := range node.Adj {
				if u < v && c[u] == col {
					continue next
				}
			}
			c[v] = col
			idx[v] = ci
			rec(v+1, w*node.Weights[ci])
		}
	}
	rec(0, 1)
	if z == 0 {
		return nil, false // no valid coloring: inconsistent state
	}
	for v := range probs {
		for ci := range probs[v] {
			probs[v][ci] /= z
		}
	}
	return probs, true
}

// Sampler runs the paper's Markov chain over valid colorings.
type Sampler struct {
	g *Graph
	// rng is bound at construction/Reset time by the owning worker.
	//auditlint:allow rngshare sampler is per-worker scratch; mcpar derives a fresh stream per worker per decision
	rng *rand.Rand
	c   []int
	// steps counts chain steps taken (diagnostics).
	steps int
}

// NewSampler builds a sampler starting from a backtracking-found valid
// coloring.
func NewSampler(g *Graph, rng *rand.Rand) (*Sampler, error) {
	c, err := g.InitialColoring()
	if err != nil {
		return nil, err
	}
	return &Sampler{g: g, rng: rng, c: c}, nil
}

// NewSamplerFrom builds a sampler starting from the given valid coloring
// (e.g. the one induced by the true database state).
func NewSamplerFrom(g *Graph, rng *rand.Rand, c []int) (*Sampler, error) {
	if !g.Valid(c) {
		return nil, fmt.Errorf("coloring: initial coloring invalid")
	}
	return &Sampler{g: g, rng: rng, c: append([]int(nil), c...)}, nil
}

// Step performs one transition of the chain: pick a node uniformly,
// propose a color with probability ∝ ℓ, keep the old color if the
// proposal collides with a neighbor.
func (s *Sampler) Step() {
	k := len(s.g.Nodes)
	if k == 0 {
		return
	}
	vi := s.rng.Intn(k)
	v := s.g.Nodes[vi]
	if len(v.Colors) == 1 {
		s.steps++
		return
	}
	pick := randx.WeightedIndex(s.rng, v.Weights)
	if pick < 0 {
		s.steps++
		return
	}
	col := v.Colors[pick]
	for _, u := range v.Adj {
		if s.c[u] == col {
			s.steps++
			return // invalid proposal: stay
		}
	}
	s.c[vi] = col
	s.steps++
}

// MixSteps returns the O(k log k) step budget with the given constant
// factor (Lemma 3).
func MixSteps(k int, factor float64) int {
	if k <= 1 {
		return 1
	}
	return int(math.Ceil(factor * float64(k) * math.Log(float64(k)+1)))
}

// Mix advances the chain by MixSteps(k, factor) transitions.
func (s *Sampler) Mix(factor float64) {
	for i, n := 0, MixSteps(len(s.g.Nodes), factor); i < n; i++ {
		s.Step()
	}
}

// Coloring returns a copy of the current coloring.
func (s *Sampler) Coloring() []int { return append([]int(nil), s.c...) }

// Current returns the live coloring without copying. The slice aliases the
// sampler's state: callers must read it before the next Step and never
// mutate it. It exists for hot loops (witness-probability counting) where
// the per-iteration copy of Coloring dominates the profile.
func (s *Sampler) Current() []int { return s.c }

// Reset rebases the sampler for reuse: randomness moves onto rng, the
// coloring is restored to c (copied into the existing buffer), and the
// step counter clears. It is the per-sample path of the parallel Monte
// Carlo workers, which keep one sampler per worker and rebase it onto a
// fresh random stream for every sample.
func (s *Sampler) Reset(rng *rand.Rand, c []int) error {
	if !s.g.Valid(c) {
		return fmt.Errorf("coloring: reset coloring invalid")
	}
	s.rng = rng
	s.c = append(s.c[:0], c...)
	s.steps = 0
	return nil
}

// Steps returns the number of chain transitions taken so far.
func (s *Sampler) Steps() int { return s.steps }

// SampleDataset draws a full dataset from P(X | B) given the current
// coloring (Lemma 1): witnesses take their predicate values; every other
// element is uniform on its range.
func (s *Sampler) SampleDataset(rng *rand.Rand) []float64 {
	return DatasetFromColoring(s.g, s.c, rng)
}

// SampleDatasetInto is SampleDataset over caller-owned buffers (both of
// length n) — the allocation-free path of the parallel workers.
func (s *Sampler) SampleDatasetInto(rng *rand.Rand, xs []float64, fixed []bool) {
	DatasetFromColoringInto(s.g, s.c, rng, xs, fixed)
}

// DatasetFromColoring implements Lemma 1's steps 2–3 for an arbitrary
// valid coloring.
func DatasetFromColoring(g *Graph, c []int, rng *rand.Rand) []float64 {
	xs := make([]float64, g.n)
	fixed := make([]bool, g.n)
	DatasetFromColoringInto(g, c, rng, xs, fixed)
	return xs
}

// DatasetFromColoringInto is DatasetFromColoring over caller-owned scratch
// (fixed is reset in place).
func DatasetFromColoringInto(g *Graph, c []int, rng *rand.Rand, xs []float64, fixed []bool) {
	for i := range fixed {
		fixed[i] = false
	}
	for vi, v := range g.Nodes {
		xs[c[vi]] = v.Value
		fixed[c[vi]] = true
	}
	for i := 0; i < g.n; i++ {
		if fixed[i] {
			continue
		}
		r := g.b.RangeOf(i)
		if r.Pinned() {
			xs[i] = r.Lo
			continue
		}
		xs[i] = r.Lo + rng.Float64()*(r.Hi-r.Lo)
	}
}
