package coloring

import (
	"math"
	"math/rand"
	"testing"

	"queryaudit/internal/query"
	"queryaudit/internal/synopsis"
)

// buildSynopsis folds the given answered queries into a fresh [0,1]
// synopsis, failing the test on inconsistency.
func buildSynopsis(t *testing.T, n int, adds func(b *synopsis.MaxMin) error) *synopsis.MaxMin {
	t.Helper()
	b := synopsis.NewMaxMin(n, 0, 1)
	if err := adds(b); err != nil {
		t.Fatalf("building synopsis: %v", err)
	}
	return b
}

// TestGraphShapePaperExample builds the Section 3.2 example —
// [max{a,b,c}=1], [min{a,b}=0.2] — and checks the graph structure.
func TestGraphShapePaperExample(t *testing.T) {
	b := buildSynopsis(t, 3, func(b *synopsis.MaxMin) error {
		if err := b.AddMax(query.NewSet(0, 1, 2), 1); err != nil {
			return err
		}
		return b.AddMin(query.NewSet(0, 1), 0.2)
	})
	g, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.K() != 2 {
		t.Fatalf("K = %d, want 2 nodes", g.K())
	}
	for _, v := range g.Nodes {
		if v.IsMax && len(v.Colors) != 3 {
			t.Errorf("max node colors = %v, want 3", v.Colors)
		}
		if !v.IsMax && len(v.Colors) != 2 {
			t.Errorf("min node colors = %v, want 2", v.Colors)
		}
		if len(v.Adj) != 1 {
			t.Errorf("node adjacency = %v, want 1 edge", v.Adj)
		}
	}
}

// enumerate all valid colorings by brute force.
func enumerate(g *Graph) [][]int {
	var out [][]int
	c := make([]int, g.K())
	var rec func(v int)
	rec = func(v int) {
		if v == g.K() {
			if g.Valid(c) {
				out = append(out, append([]int(nil), c...))
			}
			return
		}
		for _, col := range g.Nodes[v].Colors {
			c[v] = col
			rec(v + 1)
		}
	}
	rec(0)
	return out
}

// TestChainMatchesExactDistribution runs the Markov chain on a small
// graph and compares empirical coloring frequencies with P̃ computed by
// enumeration. Total variation must be small.
func TestChainMatchesExactDistribution(t *testing.T) {
	b := buildSynopsis(t, 4, func(b *synopsis.MaxMin) error {
		if err := b.AddMax(query.NewSet(0, 1, 2), 0.9); err != nil {
			return err
		}
		return b.AddMin(query.NewSet(1, 2, 3), 0.2)
	})
	g, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}
	all := enumerate(g)
	if len(all) < 3 {
		t.Fatalf("expected several valid colorings, got %d", len(all))
	}
	exact := make(map[string]float64)
	var z float64
	for _, c := range all {
		w := g.Weight(c)
		exact[key(c)] = w
		z += w
	}
	for k := range exact {
		exact[k] /= z
	}

	rng := rand.New(rand.NewSource(3))
	s, err := NewSampler(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	s.Mix(5) // burn-in
	emp := make(map[string]float64)
	const samples = 60000
	for i := 0; i < samples; i++ {
		for j := 0; j < 4; j++ {
			s.Step()
		}
		emp[key(s.Coloring())]++
	}
	tv := 0.0
	for k, p := range exact {
		tv += math.Abs(p - emp[k]/samples)
	}
	for k, cnt := range emp {
		if _, ok := exact[k]; !ok {
			t.Fatalf("chain visited invalid coloring %s (%g times)", k, cnt)
		}
	}
	tv /= 2
	if tv > 0.02 {
		t.Fatalf("total variation %g too large (exact=%v)", tv, exact)
	}
}

func key(c []int) string {
	out := ""
	for _, v := range c {
		out += string(rune('a' + v))
	}
	return out
}

// TestLemma1DatasetSampler compares Lemma 1's two-stage sampler with
// direct rejection sampling on the probability that a specific element
// exceeds a threshold.
func TestLemma1DatasetSampler(t *testing.T) {
	b := buildSynopsis(t, 3, func(b *synopsis.MaxMin) error {
		return b.AddMax(query.NewSet(0, 1, 2), 0.8)
	})
	g, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	s, err := NewSampler(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	s.Mix(5)
	const samples = 40000
	hit := 0
	for i := 0; i < samples; i++ {
		s.Step()
		xs := s.SampleDataset(rng)
		// Check constraint satisfaction always.
		m := math.Max(xs[0], math.Max(xs[1], xs[2]))
		if m != 0.8 {
			t.Fatalf("sampled dataset violates max=0.8: %v", xs)
		}
		if xs[0] > 0.5 {
			hit++
		}
	}
	got := float64(hit) / samples
	// Analytic: x0 = 0.8 w.p. 1/3; else uniform [0,0.8): P(>0.5)=3/8.
	want := 1.0/3 + (2.0/3)*(0.3/0.8)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("P(x0 > 0.5) = %g, want ≈ %g", got, want)
	}
}

// TestPinnedPairNoEdge: a pinned element's two singleton predicates must
// share their witness without an edge conflict.
func TestPinnedPairNoEdge(t *testing.T) {
	b := buildSynopsis(t, 3, func(b *synopsis.MaxMin) error {
		if err := b.AddMax(query.NewSet(0, 1), 0.5); err != nil {
			return err
		}
		return b.AddMin(query.NewSet(1, 2), 0.5) // pins x1 = 0.5
	})
	g, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}
	c, err := g.InitialColoring()
	if err != nil {
		t.Fatalf("no valid coloring for pinned pair: %v", err)
	}
	if !g.Valid(c) {
		t.Fatal("initial coloring invalid")
	}
}

// TestMeetsLemma2 flags under-sized palettes.
func TestMeetsLemma2(t *testing.T) {
	// Two nodes sharing elements with |S| = 2 and degree 1: 2 < 1+2.
	b := buildSynopsis(t, 3, func(b *synopsis.MaxMin) error {
		if err := b.AddMax(query.NewSet(0, 1), 0.9); err != nil {
			return err
		}
		return b.AddMin(query.NewSet(0, 1), 0.1)
	})
	g, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.MeetsLemma2() {
		t.Fatal("2-color degree-1 nodes must fail Lemma 2's condition")
	}
	// One isolated predicate over 3 elements: 3 ≥ 0+2.
	b2 := buildSynopsis(t, 3, func(b *synopsis.MaxMin) error {
		return b.AddMax(query.NewSet(0, 1, 2), 0.9)
	})
	g2, err := Build(b2)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.MeetsLemma2() {
		t.Fatal("an isolated 3-element predicate satisfies Lemma 2")
	}
}

// TestColoringFromDataset reconstructs witnesses from a concrete state.
func TestColoringFromDataset(t *testing.T) {
	b := buildSynopsis(t, 3, func(b *synopsis.MaxMin) error {
		return b.AddMax(query.NewSet(0, 1, 2), 0.8)
	})
	g, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}
	c, err := g.ColoringFromDataset([]float64{0.1, 0.8, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if c[0] != 1 {
		t.Fatalf("witness = %d, want element 1", c[0])
	}
	if _, err := g.ColoringFromDataset([]float64{0.1, 0.2, 0.3}); err == nil {
		t.Fatal("dataset not attaining the bound must be rejected")
	}
}

// TestExactWitnessProbsMatchesEnumeration: the exact marginals equal
// direct enumeration over P̃, and match the paper's 5/18 example.
func TestExactWitnessProbsMatchesEnumeration(t *testing.T) {
	b := buildSynopsis(t, 3, func(b *synopsis.MaxMin) error {
		if err := b.AddMax(query.NewSet(0, 1, 2), 1); err != nil {
			return err
		}
		return b.AddMin(query.NewSet(0, 1), 0.2)
	})
	g, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}
	probs, ok := ExactWitnessProbs(g, 10000)
	if !ok {
		t.Fatal("small graph must be enumerable")
	}
	for vi, v := range g.Nodes {
		if !v.IsMax {
			continue
		}
		for ci, col := range v.Colors {
			if col == 0 { // element a
				want := 5.0 / 18
				if math.Abs(probs[vi][ci]-want) > 1e-12 {
					t.Fatalf("P(witness=a) = %g, want %g", probs[vi][ci], want)
				}
			}
		}
	}
	// Marginals sum to 1 per node.
	for vi := range probs {
		total := 0.0
		for _, p := range probs[vi] {
			total += p
		}
		if math.Abs(total-1) > 1e-12 {
			t.Fatalf("node %d marginals sum to %g", vi, total)
		}
	}
	// Limit respected.
	if _, ok := ExactWitnessProbs(g, 2); ok {
		t.Fatal("limit must refuse large spaces")
	}
}
