package game

import (
	"math/rand"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/maxminprob"
	"queryaudit/internal/audit/maxprob"
	"queryaudit/internal/audit/sumprob"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

// randomSetAttacker poses queries over random sets from a private rng, so
// two attackers built with the same seed pose identical sequences.
func randomSetAttacker(seed int64, n, minSize, spread int, kinds []query.Kind) Attacker {
	rng := randx.New(seed)
	return RandomAttacker{Gen: func() query.Query {
		size := minSize + rng.Intn(spread)
		perm := rng.Perm(n)
		return query.New(kinds[rng.Intn(len(kinds))], perm[:size]...)
	}}
}

// The full privacy-game harness must produce identical answer/deny
// transcripts at Workers=1 and Workers=8 for a fixed seed — the
// user-visible form of the engine's determinism guarantee, across all
// three probabilistic auditors. The parameters are tuned so each
// transcript mixes answers and denials; an all-deny log would exercise
// only one decision path.
func TestGameTranscriptsInvariantAcrossWorkers(t *testing.T) {
	cases := []struct {
		name            string
		n               int
		rounds          int
		minSize, spread int
		attackerSeed    int64
		kinds           []query.Kind
		auditors        func(n, workers int) (map[query.Kind]audit.Auditor, error)
	}{
		{
			name: "maxprob", n: 30, rounds: 12, minSize: 6, spread: 10,
			attackerSeed: 77, kinds: []query.Kind{query.Max},
			auditors: func(n, workers int) (map[query.Kind]audit.Auditor, error) {
				a, err := maxprob.New(n, maxprob.Params{
					Lambda: 0.45, Gamma: 2, Delta: 0.2, T: 2,
					Samples: 64, Workers: workers, Seed: 11,
				})
				return map[query.Kind]audit.Auditor{query.Max: a}, err
			},
		},
		{
			name: "maxminprob", n: 20, rounds: 8, minSize: 5, spread: 8,
			attackerSeed: 78, kinds: []query.Kind{query.Max, query.Min},
			auditors: func(n, workers int) (map[query.Kind]audit.Auditor, error) {
				a, err := maxminprob.New(n, maxminprob.Params{
					Lambda: 0.45, Gamma: 2, Delta: 0.2, T: 2,
					OuterSamples: 8, InnerSamples: 8, MixFactor: 1,
					Workers: workers, Seed: 12,
				})
				return map[query.Kind]audit.Auditor{query.Max: a, query.Min: a}, err
			},
		},
		{
			name: "sumprob", n: 12, rounds: 6, minSize: 8, spread: 5,
			attackerSeed: 79, kinds: []query.Kind{query.Sum},
			auditors: func(n, workers int) (map[query.Kind]audit.Auditor, error) {
				a, err := sumprob.New(n, sumprob.Params{
					Lambda: 0.6, Gamma: 2, Delta: 0.2, T: 2,
					OuterSamples: 6, Workers: workers, Seed: 13,
				})
				return map[query.Kind]audit.Auditor{query.Sum: a}, err
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(workers int) []Outcome {
				ds := dataset.UniformDuplicateFree(rand.New(rand.NewSource(99)), tc.n, 0, 1)
				eng := core.NewEngine(ds)
				auds, err := tc.auditors(tc.n, workers)
				if err != nil {
					t.Fatal(err)
				}
				for k, a := range auds {
					eng.Use(a, k)
				}
				att := randomSetAttacker(tc.attackerSeed, tc.n, tc.minSize, tc.spread, tc.kinds)
				return Run(eng, att, tc.rounds)
			}
			want := run(1)
			answered, denied := 0, 0
			for _, o := range want {
				if o.Denied {
					denied++
				} else {
					answered++
				}
			}
			if answered == 0 || denied == 0 {
				t.Fatalf("degenerate transcript (answered=%d denied=%d) exercises only one decision path", answered, denied)
			}
			got := run(8)
			if len(got) != len(want) {
				t.Fatalf("transcript lengths differ: %d vs %d", len(got), len(want))
			}
			for i := range want {
				if got[i].Denied != want[i].Denied || got[i].Answer != want[i].Answer {
					t.Fatalf("round %d: workers=8 gave %+v, workers=1 gave %+v", i, got[i], want[i])
				}
			}
		})
	}
}
