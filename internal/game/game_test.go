package game

import (
	"math/rand"
	"testing"

	"queryaudit/internal/audit/maxfull"
	"queryaudit/internal/audit/naive"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

// TestRunRespectsT: the harness poses at most T queries and logs
// outcomes faithfully.
func TestRunRespectsT(t *testing.T) {
	ds := dataset.FromValues([]float64{1, 2, 3, 4})
	eng := core.NewEngine(ds)
	eng.Use(maxfull.New(4), query.Max)
	rng := rand.New(rand.NewSource(1))
	att := RandomAttacker{Gen: func() query.Query {
		return query.New(query.Max, randx.SubsetSizeBetween(rng, 4, 2, 4)...)
	}}
	hist := Run(eng, att, 9)
	if len(hist) != 9 {
		t.Fatalf("history length %d, want 9", len(hist))
	}
	for _, o := range hist {
		if !o.Denied && o.Answer == 0 {
			t.Fatalf("answered outcome with zero answer: %+v", o)
		}
	}
}

// TestAttackerEarlyStop honours ok=false.
func TestAttackerEarlyStop(t *testing.T) {
	ds := dataset.FromValues([]float64{1, 2})
	eng := core.NewEngine(ds)
	eng.Use(maxfull.New(2), query.Max)
	stopAfter := 3
	att := stopper{limit: stopAfter}
	if got := len(Run(eng, &att, 100)); got != stopAfter {
		t.Fatalf("ran %d rounds, want %d", got, stopAfter)
	}
}

type stopper struct{ limit, asked int }

func (s *stopper) Name() string { return "stopper" }

func (s *stopper) NextQuery(int, []Outcome) (query.Query, bool) {
	if s.asked >= s.limit {
		return query.Query{}, false
	}
	s.asked++
	return query.New(query.Max, 0, 1), true
}

// TestMaxDenialAttackContrast: the attack extracts real values from the
// naive auditor and (statistically) nothing from the simulatable one.
func TestMaxDenialAttackContrast(t *testing.T) {
	const n = 60
	naiveCorrect, simCorrect := 0, 0
	for seed := int64(0); seed < 5; seed++ {
		rng := randx.New(seed)
		xs := randx.DuplicateFreeDataset(rng, n, 0, 1)

		dsN := dataset.FromValues(xs)
		engN := core.NewEngine(dsN)
		engN.UseAnswerDependent(naive.NewMax(n), query.Max)
		rN := MaxDenialAttack(engN, randx.Split(rng), 2000)
		naiveCorrect += rN.Correct

		dsS := dataset.FromValues(xs)
		engS := core.NewEngine(dsS)
		engS.Use(maxfull.New(n), query.Max)
		rS := MaxDenialAttack(engS, randx.Split(rng), 2000)
		simCorrect += rS.Correct
	}
	if naiveCorrect <= 2*simCorrect {
		t.Fatalf("attack contrast too weak: naive=%d simulatable=%d", naiveCorrect, simCorrect)
	}
	if naiveCorrect < 20 {
		t.Fatalf("attack should strip many values from the naive auditor, got %d", naiveCorrect)
	}
}

// TestAttackDeductionsSoundAgainstNaive: every value deduced from the
// naive auditor is correct (the denial rule is exact there).
func TestAttackDeductionsSoundAgainstNaive(t *testing.T) {
	rng := randx.New(9)
	xs := randx.DuplicateFreeDataset(rng, 40, 0, 1)
	ds := dataset.FromValues(xs)
	eng := core.NewEngine(ds)
	eng.UseAnswerDependent(naive.NewMax(40), query.Max)
	r := MaxDenialAttack(eng, randx.Split(rng), 2000)
	if r.Correct != len(r.Revealed) {
		t.Fatalf("against the naive auditor all %d deductions must be correct, got %d",
			len(r.Revealed), r.Correct)
	}
	if len(r.Revealed) == 0 {
		t.Fatal("attack extracted nothing")
	}
}

// TestSumComplementAttackContrast: the subtraction attack strips an
// unaudited table completely and extracts nothing from an audited one.
func TestSumComplementAttackContrast(t *testing.T) {
	const n = 30
	xs := randx.UniformDataset(randx.New(4), n, 0, 1)

	open := core.NewEngine(dataset.FromValues(xs))
	open.Use(naive.Oblivious{}, query.Sum)
	rOpen := SumComplementAttack(open)
	if rOpen.Correct != n {
		t.Fatalf("unaudited engine should leak all %d values, got %d", n, rOpen.Correct)
	}

	guarded := core.NewEngine(dataset.FromValues(xs))
	guarded.Use(sumfull.New(n), query.Sum)
	rGuarded := SumComplementAttack(guarded)
	if rGuarded.Correct != 0 {
		t.Fatalf("audited engine leaked %d values", rGuarded.Correct)
	}
	if rGuarded.Denials != n {
		t.Fatalf("every complement must be denied: %d/%d", rGuarded.Denials, n)
	}
}
