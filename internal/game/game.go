// Package game implements the privacy-game harness of Section 2.2: an
// attacker poses queries for up to T rounds against an audited engine
// and wins by breaching the configured notion of compromise. The package
// also implements the denial-leakage attack from the paper's motivating
// example, which strips a naive (answer-dependent) max auditor of large
// fractions of the data while learning nothing from a simulatable one.
package game

import (
	"math/rand"

	"queryaudit/internal/audit/offline"
	"queryaudit/internal/core"
	"queryaudit/internal/query"
)

// Outcome records one round of the game.
type Outcome struct {
	Query  query.Query
	Denied bool
	Answer float64
}

// Attacker chooses the next query given the history so far.
type Attacker interface {
	// Name identifies the strategy.
	Name() string
	// NextQuery returns the next query, or ok=false to stop early.
	NextQuery(round int, history []Outcome) (query.Query, bool)
}

// RandomAttacker poses queries from a generator-like function.
type RandomAttacker struct {
	Gen func() query.Query
}

// Name implements Attacker.
func (RandomAttacker) Name() string { return "random" }

// NextQuery implements Attacker.
func (a RandomAttacker) NextQuery(int, []Outcome) (query.Query, bool) {
	return a.Gen(), true
}

// Run plays up to T rounds of the game, returning the outcome log.
func Run(eng *core.Engine, att Attacker, T int) []Outcome {
	var history []Outcome
	for round := 0; round < T; round++ {
		q, ok := att.NextQuery(round, history)
		if !ok {
			break
		}
		resp, err := eng.Ask(q)
		if err != nil {
			history = append(history, Outcome{Query: q, Denied: true})
			continue
		}
		history = append(history, Outcome{Query: q, Denied: resp.Denied, Answer: resp.Answer})
	}
	return history
}

// DenialAttackResult summarizes a run of the denial-leakage attack.
type DenialAttackResult struct {
	// Revealed maps record index → value the attacker deduced.
	Revealed map[int]float64
	// Correct counts deductions matching the true data.
	Correct int
	// Queries is the number of queries the attacker posed.
	Queries int
	// Denials is how many were denied.
	Denials int
}

// MaxDenialAttack runs the generalized Section 2.2 attack against
// whatever max auditor the engine hosts.
//
// Strategy: partition the records into blocks of BlockSize (shuffled).
// Per block S: query max(S) = M, then probe max(S\{i}) for each i ∈ S.
// Against a naive answer-dependent auditor the probe is denied exactly
// when x_i = M, so the denial itself hands the attacker a value (a probe
// answered below M reveals the same thing directly). Against a
// simulatable auditor every probe is denied regardless of the data —
// denials carry no information — so the attacker's "first denial ⇒
// that element equals M" rule degrades to a 1-in-|S| guess.
func MaxDenialAttack(eng *core.Engine, rng *rand.Rand, maxQueries int) DenialAttackResult {
	const blockSize = 5
	n := eng.Dataset().N()
	res := DenialAttackResult{Revealed: make(map[int]float64)}
	perm := rng.Perm(n)
	ask := func(set []int) (core.Response, bool) {
		if res.Queries >= maxQueries {
			return core.Response{}, false
		}
		res.Queries++
		resp, err := eng.Ask(query.New(query.Max, set...))
		if err != nil {
			return core.Response{Denied: true}, true
		}
		if resp.Denied {
			res.Denials++
		}
		return resp, true
	}
	for start := 0; start+2 <= n && res.Queries < maxQueries; start += blockSize {
		end := start + blockSize
		if end > n {
			end = n
		}
		block := perm[start:end]
		if len(block) < 2 {
			break
		}
		resp, ok := ask(block)
		if !ok {
			break
		}
		if resp.Denied {
			continue
		}
		M := resp.Answer
		// candidates tracks who could still be the block's witness: an
		// answered probe max(block\{i}) = M proves the witness is not i.
		candidates := append([]int(nil), block...)
		for _, i := range block {
			probe := without(block, i)
			presp, ok := ask(probe)
			if !ok {
				break
			}
			if presp.Denied {
				// Against the naive auditor a denial with ≥3 candidates
				// left is caused only by x_i = M; with exactly 2 left
				// the denial is ambiguous and a careful attacker stops.
				// (Against a simulatable auditor every probe is denied,
				// so this deduction degrades to a 1-in-|block| guess —
				// the point of the demonstration.)
				if len(candidates) >= 3 {
					res.Revealed[i] = M
				}
				break
			}
			candidates = without(candidates, i)
			if presp.Answer < M {
				res.Revealed[i] = M // cannot occur vs naive, kept for generality
				break
			}
		}
	}
	for i, v := range res.Revealed {
		if eng.Dataset().Sensitive(i) == v {
			res.Correct++
		}
	}
	return res
}

func without(xs []int, drop int) []int {
	out := make([]int, 0, len(xs)-1)
	for _, x := range xs {
		if x != drop {
			out = append(out, x)
		}
	}
	return out
}

// SumComplementAttack is the classic textbook attack on sum queries: ask
// the whole-table total, then for each record the sum of everyone else;
// each answered pair reveals one salary by subtraction. The function
// drives the attack and then audits the *answered* queries offline to
// count how many values the attacker can actually solve for.
//
// Against an unaudited engine it strips the entire table; against the
// simulatable sum auditor every complement is denied and nothing leaks.
func SumComplementAttack(eng *core.Engine) DenialAttackResult {
	n := eng.Dataset().N()
	res := DenialAttackResult{Revealed: make(map[int]float64)}
	var answered []query.Answered

	ask := func(set []int) (core.Response, bool) {
		res.Queries++
		q := query.New(query.Sum, set...)
		resp, err := eng.Ask(q)
		if err != nil {
			return core.Response{Denied: true}, false
		}
		if resp.Denied {
			res.Denials++
			return resp, false
		}
		answered = append(answered, query.Answered{Query: q, Answer: resp.Answer})
		return resp, true
	}

	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	total, ok := ask(all)
	if ok {
		for drop := 0; drop < n; drop++ {
			if resp, ok := ask(without(all, drop)); ok {
				res.Revealed[drop] = total.Answer - resp.Answer
			}
		}
	}
	// What do the answered sums actually determine? (The subtraction
	// bookkeeping above is the attacker's view; the offline audit is the
	// ground truth and agrees.)
	if r, err := offline.AuditSum(n, answered); err == nil {
		for _, i := range r.DeterminedIndices {
			if i < n {
				if _, seen := res.Revealed[i]; !seen {
					res.Revealed[i] = eng.Dataset().Sensitive(i)
				}
			}
		}
	}
	for i, v := range res.Revealed {
		if almostEqual(eng.Dataset().Sensitive(i), v) {
			res.Correct++
		}
	}
	return res
}

// almostEqual compares within floating-point subtraction noise.
func almostEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return d <= 1e-9*scale
}
