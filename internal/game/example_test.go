package game_test

import (
	"fmt"

	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/game"
	"queryaudit/internal/query"
)

// ExampleSumComplementAttack shows the textbook subtraction attack
// bouncing off the simulatable sum auditor.
func ExampleSumComplementAttack() {
	eng := core.NewEngine(dataset.FromValues([]float64{10, 20, 30, 40}))
	eng.Use(sumfull.New(4), query.Sum)
	r := game.SumComplementAttack(eng)
	fmt.Printf("extracted %d values, %d denials\n", r.Correct, r.Denials)
	// Output:
	// extracted 0 values, 4 denials
}
