package auditlog

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"queryaudit/internal/core"
	"queryaudit/internal/mcpar"
	"queryaudit/internal/qindex"
	"queryaudit/internal/query"
)

// Verdict is the replay outcome for one entry: what the offline stack
// decided, what the live system recorded (when the source carries it),
// and whether the two agree.
type Verdict struct {
	Pos     int    `json:"pos"`
	Source  string `json:"source,omitempty"`
	Line    int    `json:"line,omitempty"`
	Kind    string `json:"kind,omitempty"`
	Breadth int    `json:"breadth,omitempty"`
	// Offline is the offline stack's verdict ("answered", "denied",
	// "errored"; empty when the entry was skipped or diverged before a
	// verdict existed).
	Offline string  `json:"offline,omitempty"`
	Answer  float64 `json:"answer,omitempty"`
	// Recorded is the live outcome the source carried ("" = none).
	Recorded string `json:"recorded,omitempty"`
	// Mismatch is set when a recorded outcome exists and the offline
	// stack disagreed (outcome or released answer) — the bit-for-bit
	// diff the pipeline exists to compute.
	Mismatch bool   `json:"mismatch,omitempty"`
	Skipped  bool   `json:"skipped,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// AnalystReplay is one analyst's full offline history.
type AnalystReplay struct {
	Analyst  string `json:"analyst"`
	Entries  int    `json:"entries"`
	Answered int    `json:"answered"`
	Denied   int    `json:"denied"`
	Errored  int    `json:"errored"`
	Updates  int    `json:"updates"`
	Skipped  int    `json:"skipped"`
	// Compared counts entries that carried a recorded live outcome;
	// Mismatches counts how many the offline stack contradicted.
	Compared   int       `json:"compared"`
	Mismatches int       `json:"mismatches"`
	Verdicts   []Verdict `json:"verdicts"`
	// Proximity is the compromise-proximity summary per reporting
	// auditor, taken from the rebuilt engine's knowledge snapshot after
	// the whole history replayed.
	Proximity map[string]core.Proximity `json:"proximity,omitempty"`
}

// ReplayResult is the replay stage's output, analysts sorted by name.
type ReplayResult struct {
	Analysts   []AnalystReplay `json:"analysts"`
	Entries    int             `json:"entries"`
	Compared   int             `json:"compared"`
	Mismatches int             `json:"mismatches"`
	Skipped    int             `json:"skipped"`
}

// Replayer rebuilds analyst histories offline. Analysts are independent
// — each gets its own freshly generated dataset and engine (update
// isolation) — so replay fans out across a bounded worker pool; Sched,
// when set, is the process-wide Monte Carlo scheduler every engine's
// probabilistic decisions multiplex over, mirroring the live server.
type Replayer struct {
	Stack StackConfig
	// Workers bounds the analyst-level fan-out (0 = GOMAXPROCS).
	Workers int
	// Sched is the shared mcpar assist pool (optional).
	Sched *mcpar.Scheduler
	// Sensitive names the aggregate target for SQL resolution
	// ("salary" for the built-in schema).
	Sensitive string
}

// Replay runs every analyst's history through a fresh offline stack.
// Output order is input-independent of scheduling: analysts are sorted,
// verdicts keep stream order, and results land in indexed slots.
func (r *Replayer) Replay(entries []Entry) (ReplayResult, error) {
	if err := r.Stack.Validate(); err != nil {
		return ReplayResult{}, err
	}
	byAnalyst := map[string][]Entry{}
	var names []string
	for _, e := range entries {
		if _, ok := byAnalyst[e.Analyst]; !ok {
			names = append(names, e.Analyst)
		}
		byAnalyst[e.Analyst] = append(byAnalyst[e.Analyst], e)
	}
	sort.Strings(names)

	// One shared SQL resolver over a pristine dataset: predicates touch
	// only the immutable public attributes, so resolution is identical
	// across analysts and safe under concurrency.
	sel := qindex.NewResolver(r.Stack.NewDataset(), qindex.Options{})

	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]AnalystReplay, len(names))
	errs := make([]error, len(names))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = r.replayAnalyst(name, byAnalyst[name], sel)
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return ReplayResult{}, fmt.Errorf("auditlog: analyst %q: %w", names[i], err)
		}
	}
	var out ReplayResult
	out.Analysts = results
	for _, a := range results {
		out.Entries += a.Entries
		out.Compared += a.Compared
		out.Mismatches += a.Mismatches
		out.Skipped += a.Skipped
	}
	return out, nil
}

// replayAnalyst rebuilds one analyst's stack and feeds it the history.
func (r *Replayer) replayAnalyst(name string, entries []Entry, sel core.Selector) (AnalystReplay, error) {
	spec := core.NewEngineSpec(r.Stack.NewDataset())
	if err := r.Stack.RegisterAuditors(spec); err != nil {
		return AnalystReplay{}, err
	}
	spec.SetMCWorkers(r.Stack.MCWorkers)
	if r.Sched != nil {
		spec.SetMCScheduler(r.Sched)
	}
	eng, err := spec.Build()
	if err != nil {
		return AnalystReplay{}, err
	}
	res := AnalystReplay{Analyst: name, Entries: len(entries)}
	for _, e := range entries {
		v := Verdict{Pos: e.Pos, Source: e.Source, Line: e.Line, Kind: e.Kind, Recorded: e.Outcome}
		switch e.Op {
		case OpUpdate:
			if err := eng.NoteUpdate(e.Index); err != nil {
				v.Skipped = true
				v.Detail = err.Error()
				res.Skipped++
			} else {
				res.Updates++
				continue // updates produce no verdict of their own
			}
		case OpQuery:
			r.replayQuery(eng, sel, e, &v, &res)
		}
		res.Verdicts = append(res.Verdicts, v)
	}
	res.Proximity = eng.KnowledgeProximity()
	return res, nil
}

// replayQuery replays one query entry, preferring the exact journal
// path (explicit indices + recorded outcome → Engine.Replay, which
// re-runs Decide and diffs against the log) and falling back to full
// re-resolution and re-decision for external statements.
func (r *Replayer) replayQuery(eng *core.Engine, sel core.Selector, e Entry, v *Verdict, res *AnalystReplay) {
	if e.Outcome == "error" {
		// A transport-level failure: the query may never have reached an
		// auditor, so replaying it could desynchronize every later
		// decision. Skip it, visibly.
		v.Skipped = true
		v.Detail = "transport error in source log; not replayed"
		res.Skipped++
		return
	}
	q, err := r.entryQuery(sel, e)
	if err != nil {
		v.Skipped = true
		v.Detail = err.Error()
		res.Skipped++
		return
	}
	v.Breadth = len(q.Set)
	if v.Kind == "" {
		v.Kind = q.Kind.String()
	}
	if rec, err := core.ParseOutcome(e.Outcome); err == nil && len(e.Indices) > 0 {
		// Journal-grade entry: retrace the logged step bit-for-bit.
		ev := core.DecisionEvent{Query: q, Outcome: rec, Answer: e.Answer}
		res.Compared++
		if err := eng.Replay(ev); err != nil {
			v.Mismatch = true
			v.Detail = err.Error()
			res.Mismatches++
			return
		}
		v.Offline = rec.String()
		v.Answer = e.Answer
		r.countOutcome(rec, res)
		return
	}
	// External statement: decide afresh against the rebuilt state. The
	// offline dataset is the deterministic regeneration of the live one,
	// so answered values are comparable bit-for-bit too.
	resp, err := eng.Ask(q)
	switch {
	case err != nil:
		v.Offline = core.OutcomeErrored.String()
		v.Detail = err.Error()
		res.Errored++
	case resp.Denied:
		v.Offline = core.OutcomeDenied.String()
		res.Denied++
	default:
		v.Offline = core.OutcomeAnswered.String()
		v.Answer = resp.Answer
		res.Answered++
	}
	if rec, perr := core.ParseOutcome(e.Outcome); perr == nil {
		res.Compared++
		if rec.String() != v.Offline {
			v.Mismatch = true
			res.Mismatches++
		} else if rec == core.OutcomeAnswered && e.HasAnswer && e.Answer != v.Answer {
			v.Mismatch = true
			v.Detail = fmt.Sprintf("answer mismatch: live %v, offline %v", e.Answer, v.Answer)
			res.Mismatches++
		}
	}
}

// entryQuery materializes the entry's query: explicit indices when the
// source carried them, otherwise the statement resolved through sel.
func (r *Replayer) entryQuery(sel core.Selector, e Entry) (query.Query, error) {
	if len(e.Indices) > 0 {
		k, err := query.ParseKind(e.Kind)
		if err != nil {
			return query.Query{}, err
		}
		return query.Query{Set: query.NewSet(e.Indices...), Kind: k}, nil
	}
	sensitive := r.Sensitive
	if sensitive == "" {
		sensitive = "salary"
	}
	return core.ResolveSQL(sel, sensitive, e.SQL)
}

// countOutcome tallies one offline verdict.
func (r *Replayer) countOutcome(o core.Outcome, res *AnalystReplay) {
	switch o {
	case core.OutcomeAnswered:
		res.Answered++
	case core.OutcomeDenied:
		res.Denied++
	case core.OutcomeErrored:
		res.Errored++
	}
}
