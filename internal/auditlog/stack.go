package auditlog

import (
	"fmt"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/maxminfull"
	"queryaudit/internal/audit/maxminprob"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/audit/sumprob"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

// StackConfig describes one auditor stack plus the dataset it guards —
// the exact construction a live auditserver performs, factored out so
// the offline replay builds a bit-identical stack from the same
// parameters. Every seed-bearing knob lives here: two deployments (or
// one deployment and one retrospective replay) with equal StackConfigs
// produce engines whose decisions agree bit-for-bit.
type StackConfig struct {
	// Family selects the auditor family: "full" (exact disclosure
	// auditors) or "prob" (the Section 3 probabilistic auditors).
	Family string `json:"family"`
	// N and Seed parameterize the synthetic company table.
	N    int   `json:"n"`
	Seed int64 `json:"seed"`

	// Prob-family parameters (ignored for "full"). MaxMin auditors use
	// ProbSeed, the sum auditor ProbSeed+1 — the same split the live
	// server applies, so the two stacks' Monte Carlo streams line up.
	Lambda        float64 `json:"lambda,omitempty"`
	Gamma         int     `json:"gamma,omitempty"`
	Delta         float64 `json:"delta,omitempty"`
	T             int     `json:"t,omitempty"`
	MCWorkers     int     `json:"mc_workers,omitempty"`
	AdaptiveAlpha float64 `json:"adaptive_alpha,omitempty"`
	ProbSeed      int64   `json:"prob_seed,omitempty"`
}

// DefaultStackConfig mirrors auditserver's flag defaults.
func DefaultStackConfig() StackConfig {
	return StackConfig{
		Family:   "full",
		N:        300,
		Seed:     1,
		Lambda:   0.45,
		Gamma:    4,
		Delta:    0.2,
		T:        12,
		ProbSeed: 1,
	}
}

// Validate rejects configs no server would accept.
func (c StackConfig) Validate() error {
	if c.Family != "full" && c.Family != "prob" {
		return fmt.Errorf("auditlog: unknown auditor family %q (want full or prob)", c.Family)
	}
	if c.N <= 0 {
		return fmt.Errorf("auditlog: dataset size %d must be positive", c.N)
	}
	return nil
}

// DatasetConfig returns the company-table configuration the stack
// guards. The prob family normalizes sensitive values to [0,1] — the
// range its interval partition and polytope box protect — exactly as
// the live server does, so recorded answers stay consistent.
func (c StackConfig) DatasetConfig() dataset.CompanyConfig {
	cfg := dataset.DefaultCompanyConfig(c.N)
	if c.Family == "prob" {
		cfg.MinSalary, cfg.MaxSalary = 0, 1
	}
	return cfg
}

// NewDataset generates the deterministic synthetic table.
func (c StackConfig) NewDataset() *dataset.Dataset {
	return dataset.GenerateCompany(randx.New(c.Seed), c.DatasetConfig())
}

// RegisterAuditors installs the family's auditor factories on spec.
// Observers and the shared Monte Carlo scheduler stay the caller's
// responsibility — they affect reporting and parallelism, never the
// decisions themselves.
func (c StackConfig) RegisterAuditors(spec *core.EngineSpec) error {
	if err := c.Validate(); err != nil {
		return err
	}
	n := c.N
	switch c.Family {
	case "full":
		spec.Register(func() (audit.Auditor, error) { return sumfull.New(n), nil }, query.Sum)
		spec.Register(func() (audit.Auditor, error) { return maxminfull.New(n), nil }, query.Max, query.Min)
	case "prob":
		mmP := maxminprob.Params{
			Lambda: c.Lambda, Gamma: c.Gamma, Delta: c.Delta, T: c.T,
			Workers: c.MCWorkers, Seed: c.ProbSeed, AdaptiveAlpha: c.AdaptiveAlpha,
		}
		sP := sumprob.Params{
			Lambda: c.Lambda, Gamma: c.Gamma, Delta: c.Delta, T: c.T,
			Workers: c.MCWorkers, Seed: c.ProbSeed + 1, AdaptiveAlpha: c.AdaptiveAlpha,
		}
		spec.Register(func() (audit.Auditor, error) { return maxminprob.New(n, mmP) }, query.Max, query.Min)
		spec.Register(func() (audit.Auditor, error) { return sumprob.New(n, sP) }, query.Sum)
	}
	return nil
}

// NewSpec builds a fresh dataset plus a spec with the family's auditors
// registered — the one-call path for offline consumers that need a
// whole stack per analyst.
func (c StackConfig) NewSpec() (*core.EngineSpec, error) {
	spec := core.NewEngineSpec(c.NewDataset())
	if err := c.RegisterAuditors(spec); err != nil {
		return nil, err
	}
	return spec, nil
}
