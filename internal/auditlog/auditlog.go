// Package auditlog is the retrospective-auditing pipeline: it ingests
// historical audit logs, scores each query's sensitivity risk, replays
// every analyst's history offline through the same auditor stack a live
// server runs, and reports which queries would have been denied and
// which analysts' histories approach compromise.
//
// The paper's auditors are online-only — a query is judged the moment
// it arrives — but a deployment also needs the backward question:
// given this auditor configuration, what does the history we already
// served expose? Simulatability (§2.2) is what makes the answer exact:
// a safe auditor's state is a pure function of its query/decision
// history, so feeding the recorded history to a fresh stack rebuilds
// the live auditor bit-for-bit, and the offline verdicts ARE the live
// verdicts.
//
// The pipeline has four stages, each usable on its own:
//
//	parse  — normalize external audit logs (pgAudit-style CSV, ndjson)
//	         and our own exported session journals into one Entry
//	         stream, with per-line error recovery.
//	enrich — score each query against a sensitivity dictionary:
//	         attributes touched × sensitivity weight × aggregation
//	         breadth, emitted as enriched ndjson.
//	replay — rebuild each analyst's history offline through a chosen
//	         core.EngineSpec stack, diffing offline verdicts against
//	         recorded live outcomes where the source carries them.
//	report — fold everything into a deterministic JSON artifact
//	         (per-analyst denial rates, top-risk queries, compromise
//	         proximity) written via persist.WriteAtomic.
//
// The whole pipeline is deterministic: no wall-clock reads, no global
// RNG, no map-ordered output (enforced by auditlint's detrand pass —
// this package is a decision path). Running it twice over the same
// input yields byte-identical reports, so a report is a reproducible
// compliance artifact, not a log of one run.
package auditlog

import "fmt"

// Op distinguishes the two entry arms of the normalized stream.
type Op string

const (
	// OpQuery is an audited query (the common case).
	OpQuery Op = "query"
	// OpUpdate marks a sensitive-value modification at this point of
	// the analyst's timeline (session journals only; external audit
	// logs carry no update markers).
	OpUpdate Op = "update"
)

// Entry is one normalized audit-log record. External logs carry the
// statement text (resolved to a query set at replay time); session
// journals carry the explicit resolved index set plus the recorded
// outcome and released answer, which is what enables bit-for-bit
// verdict verification.
type Entry struct {
	// Source names where the entry came from (file path or
	// "journal:<analyst>"); Line is its 1-based line number there
	// (0 for journal events, which are positions, not lines).
	Source string `json:"source,omitempty"`
	Line   int    `json:"line,omitempty"`
	// Pos is the entry's position in the merged input stream; the
	// report uses it to join enrichment and replay results.
	Pos int `json:"-"`

	Analyst string `json:"analyst"`
	// Time is the original timestamp text, passed through verbatim
	// (the pipeline never parses or compares wall-clock values).
	Time string `json:"ts,omitempty"`
	Op   Op     `json:"op"`

	// SQL is the statement text (external logs); empty for journal
	// entries, which carry the resolved set instead.
	SQL string `json:"sql,omitempty"`
	// Kind is the aggregate kind when known ("sum", "max", ...).
	Kind string `json:"kind,omitempty"`
	// Indices is the explicit resolved query set (journal entries).
	Indices []int `json:"indices,omitempty"`

	// Outcome is the recorded live outcome when the source carries one:
	// "answered", "denied", "errored" (auditor Decide failed), or
	// "error" (transport/HTTP failure — the query may never have
	// reached an auditor). Empty means unknown.
	Outcome string `json:"outcome,omitempty"`
	// Answer is the recorded released answer; HasAnswer distinguishes
	// a genuine 0 from absence.
	Answer    float64 `json:"answer,omitempty"`
	HasAnswer bool    `json:"-"`

	// Index is the updated record (Op == OpUpdate).
	Index int `json:"index,omitempty"`
}

// Validate checks the structural invariants a replayable entry needs.
func (e Entry) Validate() error {
	if e.Analyst == "" {
		return fmt.Errorf("auditlog: entry without analyst")
	}
	switch e.Op {
	case OpUpdate:
		if e.Index < 0 {
			return fmt.Errorf("auditlog: negative update index %d", e.Index)
		}
		return nil
	case OpQuery:
		if e.SQL == "" && len(e.Indices) == 0 {
			return fmt.Errorf("auditlog: query entry with neither SQL nor indices")
		}
		for _, i := range e.Indices {
			if i < 0 {
				return fmt.Errorf("auditlog: negative index %d", i)
			}
		}
		return nil
	default:
		return fmt.Errorf("auditlog: unknown op %q", e.Op)
	}
}
