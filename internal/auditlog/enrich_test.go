package auditlog

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

// TestScoreDefaultDict: the scoring formula is exactly
// attr-weight-sum × kind-factor × breadth-factor on the built-in
// dictionary.
func TestScoreDefaultDict(t *testing.T) {
	en := &Enricher{Dict: DefaultDict(), Records: 64, Sensitive: "salary"}

	// salary (1.0) + age (0.6) = 1.6; max factor 1.3; breadth unknown → 1.
	r, err := en.Score(Entry{Analyst: "a", Op: OpQuery, SQL: "SELECT max(salary) WHERE age >= 30"})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r.AttrScore, 1.6) || !almost(r.KindFactor, 1.3) || !almost(r.BreadthFactor, 1) {
		t.Fatalf("factors: %+v", r)
	}
	if !almost(r.Score, 1.6*1.3) {
		t.Fatalf("score = %v, want %v", r.Score, 1.6*1.3)
	}
	if strings.Join(r.Attrs, ",") != "age,salary" {
		t.Fatalf("attrs = %v (want sorted, deduped)", r.Attrs)
	}

	// Journal entry: indices give breadth 4 of 64 → factor 1+log2(16)=5.
	r, err = en.Score(Entry{Analyst: "a", Op: OpQuery, Kind: "sum", Indices: []int{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r.BreadthFactor, 5) {
		t.Fatalf("breadth factor = %v, want 5", r.BreadthFactor)
	}
	if !almost(r.Score, 1.0*1.0*5) { // salary only, sum factor 1
		t.Fatalf("journal score = %v, want 5", r.Score)
	}

	// Duplicate attribute counted once: salary target + salary predicate.
	r, err = en.Score(Entry{Analyst: "a", Op: OpQuery, SQL: "SELECT sum(salary) WHERE age >= 20 AND age <= 40"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Attrs) != 2 || !almost(r.AttrScore, 1.6) {
		t.Fatalf("dedup failed: %+v", r)
	}
}

// TestEnrichErrors: unparseable SQL is carried as an Error with zero
// risk, and updates pass through unscored — the stream never drops an
// entry.
func TestEnrichErrors(t *testing.T) {
	en := &Enricher{Dict: DefaultDict(), Records: 64, Sensitive: "salary"}
	out := en.Enrich([]Entry{
		{Analyst: "a", Op: OpQuery, SQL: "DROP TABLE salaries"},
		{Analyst: "a", Op: OpUpdate, Index: 3},
		{Analyst: "a", Op: OpQuery, SQL: "SELECT sum(salary) WHERE age >= 30"},
	})
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0].Error == "" || out[0].Risk.Score != 0 {
		t.Fatalf("bad SQL not flagged: %+v", out[0])
	}
	if out[1].Error != "" || out[1].Risk.Score != 0 {
		t.Fatalf("update scored: %+v", out[1])
	}
	if out[2].Error != "" || out[2].Risk.Score <= 0 {
		t.Fatalf("valid query not scored: %+v", out[2])
	}
}

// TestLoadDict: a valid dictionary round-trips; undefined classes,
// unknown fields, and empty class maps are rejected with the file name
// in the error.
func TestLoadDict(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	good := write("good.json", `{
		"classes": {"hot": 2, "cold": 0.5},
		"attributes": {"salary": "hot", "dept": "cold"},
		"kinds": {"sum": 1.5},
		"default_class": "cold"
	}`)
	d, err := LoadDict(good)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(d.attrWeight("salary"), 2) || !almost(d.attrWeight("unknown"), 0.5) {
		t.Fatalf("weights: %+v", d)
	}
	if !almost(d.kindFactor("sum"), 1.5) || !almost(d.kindFactor("max"), 1) {
		t.Fatalf("kind factors: %+v", d)
	}

	bad := []struct{ name, content, wantErr string }{
		{"noclasses.json", `{"attributes":{"salary":"hot"}}`, "no classes"},
		{"undef.json", `{"classes":{"hot":1},"attributes":{"salary":"warm"}}`, "undefined class"},
		{"defundef.json", `{"classes":{"hot":1},"default_class":"warm"}`, "undefined"},
		{"unknownfield.json", `{"classes":{"hot":1},"surprise":true}`, "unknown field"},
		{"notjson.json", `{`, "unexpected"},
	}
	for _, tc := range bad {
		path := write(tc.name, tc.content)
		if _, err := LoadDict(path); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
	if _, err := LoadDict(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestWriteEnrichedDeterministic: the enriched ndjson is byte-identical
// across runs — same inputs, same artifact.
func TestWriteEnrichedDeterministic(t *testing.T) {
	en := &Enricher{Dict: DefaultDict(), Records: 64, Sensitive: "salary"}
	entries := []Entry{
		{Source: "s", Line: 1, Analyst: "a", Op: OpQuery, SQL: "SELECT sum(salary) WHERE age >= 30"},
		{Source: "s", Line: 2, Analyst: "b", Op: OpQuery, Kind: "max", Indices: []int{0, 1}},
		{Source: "s", Line: 3, Analyst: "a", Op: OpUpdate, Index: 9},
	}
	var prev []byte
	for i := 0; i < 3; i++ {
		var buf bytes.Buffer
		if err := WriteEnriched(&buf, en.Enrich(entries)); err != nil {
			t.Fatal(err)
		}
		if prev != nil && !bytes.Equal(prev, buf.Bytes()) {
			t.Fatal("enriched output differs across runs")
		}
		prev = buf.Bytes()
	}
	if lines := bytes.Count(prev, []byte("\n")); lines != 3 {
		t.Fatalf("expected 3 ndjson lines, got %d", lines)
	}
}
