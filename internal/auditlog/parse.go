package auditlog

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"queryaudit/internal/core"
	"queryaudit/internal/persist"
	"queryaudit/internal/session"
)

// Format names an ingestible audit-log format.
type Format string

const (
	// FormatAuto sniffs the format: a session journal if the input
	// decodes as one (persist envelope, snapshot, or snapshot list),
	// else ndjson when the first byte is '{', else pgAudit-style CSV.
	FormatAuto Format = "auto"
	// FormatPGAuditCSV is a pgAudit-style CSV line per statement:
	//
	//	timestamp,user,database,session_line,class,command,statement
	//
	// Only READ/SELECT rows become entries; other classes (WRITE, DDL,
	// ROLE, ...) are counted as skipped, not malformed.
	FormatPGAuditCSV Format = "pgaudit-csv"
	// FormatNDJSON is one JSON object per line, the schema loadgen's
	// -emit-audit-log writes:
	//
	//	{"ts":"...","analyst":"a","sql":"SELECT ...","kind":"sum",
	//	 "outcome":"answered","answer":1.5}
	FormatNDJSON Format = "ndjson"
	// FormatJournal is an exported session journal: a persist
	// session-logs snapshot file, a single session.LogSnapshot (what
	// GET /v1/journal returns), a {"snapshot": {...}} wrapper (the
	// cluster journal response), or a JSON array of snapshots. Journals
	// are digest-verified as a unit — a corrupt journal is a hard
	// error, not a recoverable line.
	FormatJournal Format = "journal"
)

// ParseFormat validates a format name from a flag.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatAuto, FormatPGAuditCSV, FormatNDJSON, FormatJournal:
		return Format(s), nil
	default:
		return "", fmt.Errorf("auditlog: unknown format %q (want auto, pgaudit-csv, ndjson or journal)", s)
	}
}

// SourceStats accounts for one parsed source: every line is classified
// as an entry, malformed (counted and recovered past, never fatal for
// the line-oriented formats), or skipped (structurally valid but not an
// auditable query — comments, blank lines, non-SELECT audit classes,
// transport-error rows).
type SourceStats struct {
	Source    string `json:"source"`
	Format    string `json:"format"`
	Lines     int    `json:"lines"`
	Entries   int    `json:"entries"`
	Malformed int    `json:"malformed"`
	Skipped   int    `json:"skipped"`
}

// ParseFile reads one audit-log file.
func ParseFile(path string, format Format) ([]Entry, SourceStats, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, SourceStats{}, err
	}
	return ParseBytes(data, path, format)
}

// Parse normalizes one audit-log source into the Entry stream.
func Parse(r io.Reader, source string, format Format) ([]Entry, SourceStats, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, SourceStats{}, err
	}
	return ParseBytes(data, source, format)
}

// ParseBytes normalizes one in-memory audit-log source. The
// line-oriented formats recover per line: a malformed line increments
// Malformed and parsing continues, so one corrupt record never discards
// a day of history. Journal sources are validated as a unit (their
// digest chain either verifies or the file is rejected).
func ParseBytes(data []byte, source string, format Format) ([]Entry, SourceStats, error) {
	if format == FormatAuto {
		format = detectFormat(data)
	}
	st := SourceStats{Source: source, Format: string(format)}
	switch format {
	case FormatJournal:
		entries, err := parseJournal(data, source, &st)
		return entries, st, err
	case FormatNDJSON:
		return parseLines(data, source, &st, parseNDJSONLine), st, nil
	case FormatPGAuditCSV:
		return parseLines(data, source, &st, parseCSVLine), st, nil
	default:
		return nil, st, fmt.Errorf("auditlog: unknown format %q", format)
	}
}

// detectFormat sniffs the input: journal decodes win, then a leading
// '{' selects ndjson, anything else is treated as CSV.
func detectFormat(data []byte) Format {
	if _, err := decodeJournal(data); err == nil {
		return FormatJournal
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && (trimmed[0] == '{' || trimmed[0] == '[') {
		return FormatNDJSON
	}
	return FormatPGAuditCSV
}

// parseLines runs a per-line parser with error recovery. parse returns
// (entry, ok, skip): !ok counts malformed; skip counts structurally
// valid non-entries.
func parseLines(data []byte, source string, st *SourceStats, parse func(line string) (Entry, bool, bool)) []Entry {
	var entries []Entry
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	line := 0
	for sc.Scan() {
		line++
		st.Lines++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			st.Skipped++
			continue
		}
		e, ok, skip := parse(text)
		if skip {
			st.Skipped++
			continue
		}
		if !ok {
			st.Malformed++
			continue
		}
		e.Source = source
		e.Line = line
		if e.Validate() != nil {
			st.Malformed++
			continue
		}
		entries = append(entries, e)
		st.Entries++
	}
	if sc.Err() != nil {
		// A line exceeding the buffer cap is one more malformed record;
		// everything scanned before it was already recovered.
		st.Malformed++
	}
	return entries
}

// pgAudit-style CSV column layout (see FormatPGAuditCSV).
const (
	csvColTime = iota
	csvColUser
	csvColDatabase
	csvColSessionLine
	csvColClass
	csvColCommand
	csvColStatement
	csvNumCols
)

// parseCSVLine parses one pgAudit-style CSV row. The csv reader runs
// per line so a torn quote on one row cannot swallow its successors.
func parseCSVLine(line string) (Entry, bool, bool) {
	cr := csv.NewReader(strings.NewReader(line))
	cr.FieldsPerRecord = -1
	rec, err := cr.Read()
	if err != nil || len(rec) < csvNumCols {
		return Entry{}, false, false
	}
	class := strings.ToUpper(strings.TrimSpace(rec[csvColClass]))
	command := strings.ToUpper(strings.TrimSpace(rec[csvColCommand]))
	if class != "READ" || command != "SELECT" {
		// Structurally fine, just not an auditable aggregate read.
		return Entry{}, true, true
	}
	e := Entry{
		Analyst: strings.TrimSpace(rec[csvColUser]),
		Time:    strings.TrimSpace(rec[csvColTime]),
		Op:      OpQuery,
		SQL:     strings.TrimSpace(rec[csvColStatement]),
	}
	if e.Analyst == "" || e.SQL == "" {
		return Entry{}, false, false
	}
	return e, true, false
}

// ndjsonLine is the wire shape of one ndjson record (the schema
// loadgen's -emit-audit-log writes; unknown fields are ignored).
type ndjsonLine struct {
	TS      string   `json:"ts"`
	Analyst string   `json:"analyst"`
	Op      string   `json:"op"`
	SQL     string   `json:"sql"`
	Kind    string   `json:"kind"`
	Indices []int    `json:"indices"`
	Outcome string   `json:"outcome"`
	Answer  *float64 `json:"answer"`
	Index   int      `json:"index"`
}

// parseNDJSONLine parses one ndjson record.
func parseNDJSONLine(line string) (Entry, bool, bool) {
	var rec ndjsonLine
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		return Entry{}, false, false
	}
	e := Entry{
		Analyst: rec.Analyst,
		Time:    rec.TS,
		Op:      OpQuery,
		SQL:     rec.SQL,
		Kind:    rec.Kind,
		Indices: rec.Indices,
		Outcome: rec.Outcome,
		Index:   rec.Index,
	}
	if rec.Op != "" {
		e.Op = Op(rec.Op)
	}
	if rec.Answer != nil {
		e.Answer = *rec.Answer
		e.HasAnswer = true
	}
	return e, true, false
}

// journalEnvelope probes the JSON wrappers a journal can arrive in.
type journalEnvelope struct {
	// persist envelope discriminators.
	Kind    string          `json:"kind"`
	Payload json.RawMessage `json:"payload"`
	// cluster.JournalResponse wrapper.
	Snapshot *session.LogSnapshot `json:"snapshot"`
	// bare session.LogSnapshot discriminators.
	Analyst string                  `json:"analyst"`
	Events  []session.EventSnapshot `json:"events"`
}

// decodeJournal extracts the journal snapshots from any accepted
// wrapper without validating them (validation happens in parseJournal,
// once, with per-snapshot error context).
func decodeJournal(data []byte) ([]session.LogSnapshot, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var snaps []session.LogSnapshot
		if err := json.Unmarshal(trimmed, &snaps); err != nil {
			return nil, err
		}
		if len(snaps) == 0 || snaps[0].Analyst == "" {
			return nil, fmt.Errorf("auditlog: journal array carries no snapshots")
		}
		return snaps, nil
	}
	var env journalEnvelope
	if err := json.Unmarshal(trimmed, &env); err != nil {
		return nil, err
	}
	switch {
	case env.Kind != "" && env.Payload != nil:
		return persist.LoadSessions(bytes.NewReader(trimmed))
	case env.Snapshot != nil:
		return []session.LogSnapshot{*env.Snapshot}, nil
	case env.Analyst != "" && env.Events != nil:
		var snap session.LogSnapshot
		if err := json.Unmarshal(trimmed, &snap); err != nil {
			return nil, err
		}
		return []session.LogSnapshot{snap}, nil
	default:
		return nil, fmt.Errorf("auditlog: input is not a recognizable session journal")
	}
}

// parseJournal converts exported session journals into the Entry
// stream. Every snapshot's digest chain is verified first: a truncated
// or bit-flipped journal is rejected outright rather than replayed into
// a silently different auditor.
func parseJournal(data []byte, source string, st *SourceStats) ([]Entry, error) {
	snaps, err := decodeJournal(data)
	if err != nil {
		return nil, fmt.Errorf("auditlog: %s: %w", source, err)
	}
	var entries []Entry
	for _, snap := range snaps {
		if snap.Analyst == "" {
			return nil, fmt.Errorf("auditlog: %s: journal snapshot without analyst", source)
		}
		if err := snap.Validate(); err != nil {
			return nil, fmt.Errorf("auditlog: %s: %w", source, err)
		}
		for i, es := range snap.Events {
			ev, err := session.DecodeEvent(es)
			if err != nil {
				return nil, fmt.Errorf("auditlog: %s: analyst %q event %d: %w", source, snap.Analyst, i, err)
			}
			st.Lines++
			e := Entry{
				Source:  source,
				Line:    i + 1,
				Analyst: snap.Analyst,
			}
			if ev.Update {
				e.Op = OpUpdate
				e.Index = ev.Index
			} else {
				e.Op = OpQuery
				e.Kind = ev.Decision.Query.Kind.String()
				e.Indices = append([]int(nil), ev.Decision.Query.Set...)
				e.Outcome = ev.Decision.Outcome.String()
				if ev.Decision.Outcome == core.OutcomeAnswered {
					e.Answer = ev.Decision.Answer
					e.HasAnswer = true
				}
			}
			entries = append(entries, e)
			st.Entries++
		}
	}
	return entries, nil
}
