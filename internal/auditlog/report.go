package auditlog

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"queryaudit/internal/core"
	"queryaudit/internal/persist"
)

// Input describes one ingested source for the report header: its parse
// accounting plus a content digest, so a report names exactly which
// bytes it covers without embedding a wall-clock timestamp (digests,
// unlike timestamps, keep the report reproducible).
type Input struct {
	SourceStats
	SHA256 string `json:"sha256,omitempty"`
}

// RiskEntry is one row of the top-risk table: the highest-scoring
// historical queries joined with their offline verdicts.
type RiskEntry struct {
	Pos     int      `json:"pos"`
	Analyst string   `json:"analyst"`
	SQL     string   `json:"sql,omitempty"`
	Kind    string   `json:"kind,omitempty"`
	Breadth int      `json:"breadth,omitempty"`
	Attrs   []string `json:"attrs,omitempty"`
	Score   float64  `json:"score"`
	// Offline is the replayed verdict for this query ("" when replay
	// skipped it).
	Offline string `json:"offline,omitempty"`
}

// AnalystReport folds one analyst's replay into the compliance view:
// how often the stack would have refused them, whether the offline
// verdicts matched the recorded ones, and how close their answered
// history stands to compromising a record.
type AnalystReport struct {
	Analyst    string  `json:"analyst"`
	Queries    int     `json:"queries"`
	Answered   int     `json:"answered"`
	Denied     int     `json:"denied"`
	Errored    int     `json:"errored"`
	Updates    int     `json:"updates"`
	Skipped    int     `json:"skipped"`
	DenialRate float64 `json:"denial_rate"`
	Compared   int     `json:"compared"`
	Mismatches int     `json:"mismatches"`
	// MaxRisk is the analyst's highest-scoring query.
	MaxRisk float64 `json:"max_risk"`
	// Proximity is per reporting auditor; JSON map keys marshal sorted,
	// so the artifact stays byte-stable.
	Proximity map[string]core.Proximity `json:"proximity,omitempty"`
	// Mismatched lists the diverging verdicts in full (empty for a
	// clean bit-for-bit replay).
	Mismatched []Verdict `json:"mismatched,omitempty"`
}

// Report is the pipeline's final artifact. Given identical inputs it is
// byte-identical: no timestamps, sorted analysts, sorted map keys.
type Report struct {
	Stack    StackConfig `json:"stack"`
	Inputs   []Input     `json:"inputs"`
	Entries  int         `json:"entries"`
	Queries  int         `json:"queries"`
	Updates  int         `json:"updates"`
	Skipped  int         `json:"skipped"`
	Unscored int         `json:"unscored"`
	// Compared/Mismatches summarize the bit-for-bit diff against the
	// recorded live outcomes: Mismatches == 0 means the offline stack
	// reproduced the entire recorded history exactly.
	Compared   int             `json:"compared"`
	Mismatches int             `json:"mismatches"`
	Analysts   []AnalystReport `json:"analysts"`
	TopRisk    []RiskEntry     `json:"top_risk,omitempty"`
}

// BuildReport joins the enriched stream with the replay result (by
// stream position) into the final artifact. topRisk caps the top-risk
// table (<=0 means 10).
func BuildReport(stack StackConfig, inputs []Input, enriched []Enriched, replay ReplayResult, topRisk int) Report {
	if topRisk <= 0 {
		topRisk = 10
	}
	rep := Report{
		Stack:      stack,
		Inputs:     inputs,
		Entries:    replay.Entries,
		Skipped:    replay.Skipped,
		Compared:   replay.Compared,
		Mismatches: replay.Mismatches,
	}

	verdictAt := map[int]Verdict{}
	maxRisk := map[string]float64{}
	for _, a := range replay.Analysts {
		for _, v := range a.Verdicts {
			verdictAt[v.Pos] = v
		}
	}

	var risks []RiskEntry
	for _, e := range enriched {
		switch e.Op {
		case OpUpdate:
			rep.Updates++
			continue
		case OpQuery:
			rep.Queries++
		}
		if e.Error != "" {
			rep.Unscored++
			continue
		}
		if e.Risk.Score > maxRisk[e.Analyst] {
			maxRisk[e.Analyst] = e.Risk.Score
		}
		re := RiskEntry{
			Pos:     e.Pos,
			Analyst: e.Analyst,
			SQL:     e.SQL,
			Kind:    e.Risk.Kind,
			Breadth: e.Risk.Breadth,
			Attrs:   e.Risk.Attrs,
			Score:   e.Risk.Score,
		}
		if v, ok := verdictAt[e.Pos]; ok {
			re.Offline = v.Offline
			if re.Breadth == 0 {
				re.Breadth = v.Breadth
			}
		}
		risks = append(risks, re)
	}
	sort.SliceStable(risks, func(i, j int) bool {
		if risks[i].Score != risks[j].Score {
			return risks[i].Score > risks[j].Score
		}
		return risks[i].Pos < risks[j].Pos
	})
	if len(risks) > topRisk {
		risks = risks[:topRisk]
	}
	rep.TopRisk = risks

	for _, a := range replay.Analysts {
		ar := AnalystReport{
			Analyst:    a.Analyst,
			Queries:    a.Answered + a.Denied + a.Errored,
			Answered:   a.Answered,
			Denied:     a.Denied,
			Errored:    a.Errored,
			Updates:    a.Updates,
			Skipped:    a.Skipped,
			Compared:   a.Compared,
			Mismatches: a.Mismatches,
			MaxRisk:    maxRisk[a.Analyst],
			Proximity:  a.Proximity,
		}
		if decided := a.Answered + a.Denied; decided > 0 {
			ar.DenialRate = float64(a.Denied) / float64(decided)
		}
		for _, v := range a.Verdicts {
			if v.Mismatch {
				ar.Mismatched = append(ar.Mismatched, v)
			}
		}
		rep.Analysts = append(rep.Analysts, ar)
	}
	return rep
}

// WriteReport writes the artifact durably and atomically.
func WriteReport(path string, rep Report) error {
	return persist.WriteAtomic(path, func(w io.Writer) error {
		return EncodeReport(w, rep)
	})
}

// EncodeReport renders the report as indented JSON with a trailing
// newline — the exact bytes WriteReport persists, exposed so tests and
// -o - share one encoder.
func EncodeReport(w io.Writer, rep Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if _, err := w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("auditlog: write report: %w", err)
	}
	return nil
}
