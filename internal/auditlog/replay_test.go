package auditlog

import (
	"encoding/json"
	"fmt"
	"testing"

	"queryaudit/internal/core"
	"queryaudit/internal/session"
)

// newTestManager builds a live session manager over the stack — the
// "live server" half of the replay equivalence tests.
func newTestManager(t *testing.T, stack StackConfig) *session.Manager {
	t.Helper()
	spec, err := stack.NewSpec()
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := session.NewManager(spec, session.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	return mgr
}

// statements is a small workload whose later sums are refused by the
// full auditors (overlapping sets), so both outcomes appear in logs.
var testStatements = []string{
	"SELECT sum(salary) WHERE age >= 21",
	"SELECT sum(salary) WHERE age >= 30",
	"SELECT max(salary) WHERE dept = 'eng'",
	"SELECT sum(salary) WHERE age BETWEEN 30 AND 50",
	"SELECT min(salary) WHERE age >= 40",
	"SELECT avg(salary) WHERE age >= 25",
}

// driveLive runs the workload for several analysts against a live
// stack, returning the journal bytes (array of snapshots) plus the
// live outcome ledger per analyst in issue order.
func driveLive(t *testing.T, stack StackConfig, analysts []string) ([]byte, map[string][]core.Response) {
	t.Helper()
	mgr := newTestManager(t, stack)
	live := map[string][]core.Response{}
	for _, analyst := range analysts {
		for _, sql := range testStatements {
			q, err := core.ResolveSQL(mgr.Resolver(), "salary", sql)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := mgr.Ask(analyst, q)
			if err != nil {
				t.Fatalf("ask %q: %v", sql, err)
			}
			live[analyst] = append(live[analyst], resp)
		}
	}
	var snaps []session.LogSnapshot
	for _, analyst := range analysts {
		snap, ok := mgr.Export(analyst)
		if !ok {
			t.Fatalf("no session for %q", analyst)
		}
		snaps = append(snaps, snap)
	}
	data, err := json.Marshal(snaps)
	if err != nil {
		t.Fatal(err)
	}
	return data, live
}

// TestReplayJournalBitForBit: replaying exported journals through a
// construction-identical offline stack reproduces every recorded
// verdict — zero mismatches, every entry compared.
func TestReplayJournalBitForBit(t *testing.T) {
	stack := StackConfig{Family: "full", N: 60, Seed: 3}
	analysts := []string{"alice", "bob", "carol"}
	data, live := driveLive(t, stack, analysts)

	entries, _, err := ParseBytes(data, "journal", FormatJournal)
	if err != nil {
		t.Fatal(err)
	}
	for i := range entries {
		entries[i].Pos = i
	}
	rp := &Replayer{Stack: stack, Workers: 2}
	result, err := rp.Replay(entries)
	if err != nil {
		t.Fatal(err)
	}
	if result.Mismatches != 0 {
		t.Fatalf("journal replay diverged: %d mismatches", result.Mismatches)
	}
	if result.Compared != len(entries) {
		t.Fatalf("compared %d of %d entries", result.Compared, len(entries))
	}
	if len(result.Analysts) != len(analysts) {
		t.Fatalf("got %d analysts", len(result.Analysts))
	}
	// The offline denial tally must equal the live one, per analyst.
	for _, a := range result.Analysts {
		denied := 0
		for _, resp := range live[a.Analyst] {
			if resp.Denied {
				denied++
			}
		}
		if a.Denied != denied {
			t.Fatalf("analyst %s: offline denied=%d, live denied=%d", a.Analyst, a.Denied, denied)
		}
		if len(a.Proximity) == 0 {
			t.Fatalf("analyst %s: no proximity report", a.Analyst)
		}
	}
}

// TestReplaySQLBitForBit: external-log entries (SQL + recorded outcome
// + recorded answer, the loadgen emission shape) re-resolve and
// re-decide to the same verdicts and the same released values.
func TestReplaySQLBitForBit(t *testing.T) {
	stack := StackConfig{Family: "full", N: 60, Seed: 3}
	mgr := newTestManager(t, stack)
	var entries []Entry
	for _, sql := range testStatements {
		q, err := core.ResolveSQL(mgr.Resolver(), "salary", sql)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := mgr.Ask("alice", q)
		if err != nil {
			t.Fatal(err)
		}
		e := Entry{Analyst: "alice", Op: OpQuery, SQL: sql}
		if resp.Denied {
			e.Outcome = "denied"
		} else {
			e.Outcome = "answered"
			e.Answer = resp.Answer
			e.HasAnswer = true
		}
		e.Pos = len(entries)
		entries = append(entries, e)
	}
	rp := &Replayer{Stack: stack}
	result, err := rp.Replay(entries)
	if err != nil {
		t.Fatal(err)
	}
	if result.Mismatches != 0 || result.Compared != len(entries) {
		t.Fatalf("sql replay: compared=%d mismatches=%d (want %d/0): %+v",
			result.Compared, result.Mismatches, len(entries), result.Analysts[0].Verdicts)
	}
}

// TestReplayDetectsTamper: flipping one recorded outcome makes the
// diff report exactly that divergence.
func TestReplayDetectsTamper(t *testing.T) {
	stack := StackConfig{Family: "full", N: 60, Seed: 3}
	data, _ := driveLive(t, stack, []string{"alice"})
	entries, _, err := ParseBytes(data, "journal", FormatJournal)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the first answered entry to denied (bypassing the journal
	// digest by editing the parsed stream, as a corrupted external
	// pipeline would).
	flipped := -1
	for i := range entries {
		if entries[i].Outcome == "answered" {
			entries[i].Outcome = "denied"
			entries[i].Answer = 0
			entries[i].HasAnswer = false
			flipped = i
			break
		}
	}
	if flipped < 0 {
		t.Fatal("no answered entry to tamper with")
	}
	rp := &Replayer{Stack: stack}
	result, err := rp.Replay(entries)
	if err != nil {
		t.Fatal(err)
	}
	if result.Mismatches == 0 {
		t.Fatal("tampered outcome not detected")
	}
}

// TestReplayJournalWithUpdates: update markers replay through
// NoteUpdate and the post-update history still verifies bit-for-bit.
func TestReplayJournalWithUpdates(t *testing.T) {
	stack := StackConfig{Family: "full", N: 30, Seed: 5}
	mgr := newTestManager(t, stack)
	ask := func(sql string) {
		q, err := core.ResolveSQL(mgr.Resolver(), "salary", sql)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mgr.Ask("alice", q); err != nil {
			t.Fatal(err)
		}
	}
	ask("SELECT sum(salary) WHERE age >= 21")
	if err := mgr.Update(3, 12345); err != nil {
		t.Fatal(err)
	}
	ask("SELECT sum(salary) WHERE age >= 21")
	snap, ok := mgr.Export("alice")
	if !ok {
		t.Fatal("no session")
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	entries, _, err := ParseBytes(data, "journal", FormatJournal)
	if err != nil {
		t.Fatal(err)
	}
	rp := &Replayer{Stack: stack}
	result, err := rp.Replay(entries)
	if err != nil {
		t.Fatal(err)
	}
	if result.Mismatches != 0 {
		t.Fatalf("replay with updates diverged: %+v", result.Analysts[0].Verdicts)
	}
	if result.Analysts[0].Updates != 1 {
		t.Fatalf("updates = %d, want 1", result.Analysts[0].Updates)
	}
}

// TestReplayProbBitForBit: the probabilistic stack is seed-
// deterministic, so journal replay against the same prob parameters
// also verifies bit-for-bit, and the whole result is identical across
// runs and worker counts.
func TestReplayProbBitForBit(t *testing.T) {
	stack := StackConfig{Family: "prob", N: 24, Seed: 3, Lambda: 0.45, Gamma: 4, Delta: 0.2, T: 12, ProbSeed: 7}
	data, _ := driveLive(t, stack, []string{"alice", "bob"})
	entries, _, err := ParseBytes(data, "journal", FormatJournal)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) ReplayResult {
		rp := &Replayer{Stack: stack, Workers: workers}
		result, err := rp.Replay(entries)
		if err != nil {
			t.Fatal(err)
		}
		return result
	}
	r1 := run(1)
	if r1.Mismatches != 0 {
		t.Fatalf("prob journal replay diverged: %d mismatches", r1.Mismatches)
	}
	r2 := run(4)
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if string(b1) != string(b2) {
		t.Fatal("replay result depends on worker count")
	}
}

// TestReplaySkipsTransportErrors: outcome "error" lines (transport
// failures) are skipped, and later entries still verify — the skip
// policy must not desynchronize the stack when the failed query never
// reached an auditor.
func TestReplaySkipsTransportErrors(t *testing.T) {
	stack := StackConfig{Family: "full", N: 60, Seed: 3}
	entries := []Entry{
		{Analyst: "alice", Op: OpQuery, SQL: "SELECT sum(salary) WHERE age >= 21", Outcome: "error"},
		{Analyst: "alice", Op: OpQuery, SQL: "SELECT sum(salary) WHERE age >= 30"},
	}
	for i := range entries {
		entries[i].Pos = i
	}
	rp := &Replayer{Stack: stack}
	result, err := rp.Replay(entries)
	if err != nil {
		t.Fatal(err)
	}
	if result.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", result.Skipped)
	}
	if a := result.Analysts[0]; a.Answered != 1 {
		t.Fatalf("surviving entry not replayed: %+v", a)
	}
}

// TestReplayOrderIndependence: verdict order and content are a
// function of the input, not of goroutine scheduling, across repeated
// runs.
func TestReplayOrderIndependence(t *testing.T) {
	stack := StackConfig{Family: "full", N: 60, Seed: 3}
	var entries []Entry
	for a := 0; a < 4; a++ {
		for _, sql := range testStatements {
			entries = append(entries, Entry{
				Analyst: fmt.Sprintf("analyst-%d", a), Op: OpQuery, SQL: sql, Pos: len(entries),
			})
		}
	}
	var prev []byte
	for i := 0; i < 3; i++ {
		rp := &Replayer{Stack: stack, Workers: 4}
		result, err := rp.Replay(entries)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(result)
		if prev != nil && string(b) != string(prev) {
			t.Fatalf("run %d produced different result bytes", i)
		}
		prev = b
	}
}
